# Development entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: test race bench bench-check smoke large

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./client/ ./internal/server/ ./internal/drill/ ./internal/table/ ./internal/brs/

# bench re-records the search perf trajectory (exact BRS plus the sampled
# million-row drill pipeline: ns/op, allocs/op, search counters) into
# BENCH_4.json; commit the refreshed file alongside perf work. Promote it
# to the regression baseline once the numbers are intentional:
# cp BENCH_4.json BENCH_baseline.json
bench:
	$(GO) run ./cmd/benchjson -out BENCH_4.json

# bench-check is the CI guard: fails when allocs/op regresses >20% against
# the checked-in baseline (allocation counts are machine-stable; wall
# times are recorded but not gated).
bench-check:
	$(GO) run ./cmd/benchjson -out BENCH_4.json -baseline BENCH_baseline.json -check

smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# large runs the gated million-row acceptance check: provisional answers
# within the interactive budget where exact BRS is seconds-slow, refined
# to exact counts on the same session.
large:
	SMARTDRILL_LARGE=1 $(GO) test -run TestMillionRow -v .

# Development entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go

.PHONY: test race bench bench-check smoke

test:
	$(GO) build ./... && $(GO) test ./...

race:
	$(GO) test -race ./internal/server/ ./internal/drill/ ./internal/table/ ./internal/brs/

# bench re-records the BRS perf trajectory (ns/op, allocs/op, search
# counters) into BENCH_3.json; commit the refreshed file alongside perf
# work. Promote it to the regression baseline once the numbers are
# intentional: cp BENCH_3.json BENCH_baseline.json
bench:
	$(GO) run ./cmd/benchjson -out BENCH_3.json

# bench-check is the CI guard: fails when allocs/op regresses >20% against
# the checked-in baseline (allocation counts are machine-stable; wall
# times are recorded but not gated).
bench-check:
	$(GO) run ./cmd/benchjson -out BENCH_3.json -baseline BENCH_baseline.json -check

smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

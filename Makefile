# Development entry points. CI runs the same commands (.github/workflows/ci.yml).

GO ?= go
SDLINT := tools/sdlint/bin/sdlint

.PHONY: check test lint lint-fast sdlint race race-equivalence bench bench-check smoke large chaos

# check is the default pre-commit gate: the sdlint invariants suite plus
# the full test run.
check: lint test

test:
	$(GO) build ./... && $(GO) test ./...

# sdlint builds the repo's analysis suite (tools/sdlint, a nested module
# so the main module stays dependency-free).
sdlint:
	cd tools/sdlint && $(GO) build -o bin/sdlint .

# lint-fast is the pre-commit inner loop: build the vettool and run the
# sdlint analyzers over every package — nothing else. The pass is timed
# and fails above a 120s budget: the analyzers guard every developer's
# edit-lint cycle, so their own cost is an invariant too (CI enforces the
# same bound; the recorded seconds in its log are the trend line).
lint-fast: sdlint
	@start=$$(date +%s); \
	$(GO) vet -vettool=$(CURDIR)/$(SDLINT) ./... || exit 1; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "lint-fast: sdlint vet pass took $${elapsed}s (budget 120s)"; \
	if [ $$elapsed -gt 120 ]; then \
		echo "lint-fast: vet pass blew the 120s budget; profile the analyzers before they poison the pre-commit loop" >&2; \
		exit 1; \
	fi

# lint machine-checks the engine's invariants (see docs/INVARIANTS.md):
# lint-fast's analyzer pass, then the suite's own golden tests.
# staticcheck joins when installed (CI installs a pinned version; locally
# it is optional so the target works in hermetic environments).
lint: lint-fast
	cd tools/sdlint && $(GO) test ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (CI runs it pinned)"; \
	fi

race:
	$(GO) test -race ./client/ ./internal/server/ ./internal/drill/ ./internal/table/ ./internal/brs/ ./internal/search/

# chaos runs the fault-injection end-to-end suite (crash/restart resume,
# 429-storm convergence, dropped connections, flaky-disk snapshots) under
# the race detector across a seed matrix. The fault schedule is
# deterministic per seed; a failing run prints its FAULT_SEED — replay it
# with `make chaos SEEDS=<seed>`.
SEEDS ?= 1 2 3
chaos:
	@for seed in $(SEEDS); do \
		echo "chaos: FAULT_SEED=$$seed"; \
		FAULT_SEED=$$seed $(GO) test -race -count=1 \
			-run 'TestChaos|TestRestartResumes|TestEvictionRehydrates|TestProvisionalRoundTrip|TestPersistFailure' \
			./client/ ./internal/server/ || exit 1; \
		FAULT_SEED=$$seed $(GO) test -race -count=1 ./internal/faultinject/ || exit 1; \
	done

# bench re-records the search perf trajectory (exact BRS, the sampled
# million-row drill pipeline, the cores={1,2,4,max} parallel-scaling
# axis, and the CachedDrill/{cold,warm,concurrent-identical} answer-cache
# axis: ns/op, allocs/op, search counters, cache hit ratio) into
# BENCH_6.json; commit the refreshed file alongside perf work. Promote it
# to the regression baseline once the numbers are intentional:
# cp BENCH_6.json BENCH_baseline.json
# benchjson refuses to shrink an existing emission (-force overrides).
bench:
	$(GO) run ./cmd/benchjson -out BENCH_6.json

# bench-check is the CI guard: fails when allocs/op regresses >20%
# against the checked-in baseline anywhere (allocation counts are
# machine-stable), or when the serial kernel cost — ns/op at cores=1 —
# regresses >20% (one worker is free of scheduler noise; parallel wall
# times are recorded but not gated).
bench-check:
	$(GO) run ./cmd/benchjson -out BENCH_6.json -baseline BENCH_baseline.json -check

# race-equivalence runs the kernel-equivalence and parallel-determinism
# property layer under the race detector: ablation subsets × worker
# counts bit-identical, bitset containers and accumulator merges raced.
race-equivalence:
	$(GO) test -race -run 'Equivalence|Parallel' ./internal/...

smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# large runs the gated million-row acceptance check: provisional answers
# within the interactive budget where exact BRS is seconds-slow, refined
# to exact counts on the same session.
large:
	SMARTDRILL_LARGE=1 $(GO) test -run TestMillionRow -v .

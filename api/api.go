// Package api defines the v1 wire contract of the smart drill-down
// service: the typed request/response DTOs shared by internal/server (the
// producer) and the client SDK (the consumer), the Server-Sent-Event
// payloads of the anytime streaming endpoint, and the uniform error
// envelope with machine-readable codes.
//
// Nodes on the wire are addressed by *stable string IDs* ("n1", "n42"):
// a node keeps its ID from the moment an expansion creates it until a
// collapse or re-expansion removes it from the displayed tree, regardless
// of what happens elsewhere in the tree. The legacy child-index Path
// addressing is still carried on every node and accepted in requests for
// backward compatibility, but paths are positional — a mutation of an
// ancestor's child list silently re-targets them — so new clients should
// address nodes by ID only.
//
// The package deliberately depends on nothing but the standard library:
// importing it pulls in no engine code, so second-language clients can
// treat it as the contract's single source of truth alongside
// docs/openapi.yaml.
package api

// Node is the wire form of one displayed rule.
type Node struct {
	// ID is the node's stable identifier within its session ("n1" is the
	// root). IDs are never reused while a session lives; a node orphaned by
	// collapse or re-expansion resolves to not_found afterwards.
	ID string `json:"id"`
	// Path is the legacy child-index address from the root (root = []).
	// Deprecated: positional — prefer ID.
	Path []int `json:"path"`
	// Rule maps instantiated column names to their values; wildcarded
	// columns are absent.
	Rule map[string]string `json:"rule"`
	// Display is the full decoded rule, one cell per column, stars as "?".
	Display []string `json:"display"`
	// Count is the displayed aggregate (Count or Sum), a sample estimate
	// when Exact is false.
	Count float64 `json:"count"`
	// Exact reports whether Count is authoritative rather than estimated.
	Exact bool `json:"exact"`
	// CI bounds the true count at 95% confidence when Count is an estimate
	// with interval support; omitted for exact counts and for estimates
	// without intervals (Sum aggregates). A present CI may genuinely be
	// [0, 0] — absence, not degeneracy, signals "no interval".
	CI       *[2]float64 `json:"ci,omitempty"`
	Weight   float64     `json:"weight"`
	Children []*Node     `json:"children,omitempty"`
}

// Tree is the wire form of a whole session: POST /v1/sessions and
// GET /v1/sessions/{id}/tree both return it.
type Tree struct {
	ID        string   `json:"id"`
	Dataset   string   `json:"dataset"`
	Columns   []string `json:"columns"`
	Aggregate string   `json:"aggregate"`
	K         int      `json:"k"`
	Root      *Node    `json:"root"`
	// Rendered is the paper-style aligned text table, for terminals.
	Rendered string `json:"rendered"`
}

// Dataset describes one registered dataset (GET /v1/datasets).
type Dataset struct {
	Name     string   `json:"name"`
	Rows     int      `json:"rows"`
	Columns  []string `json:"columns"`
	Measures []string `json:"measures,omitempty"`
}

// DatasetList is the body of GET /v1/datasets.
type DatasetList struct {
	Datasets []Dataset `json:"datasets"`
}

// CacheHealth reports one dataset's answer-cache activity: completed
// expansions currently cached, expansions served from the cache (hits)
// versus executed (misses), requests collapsed onto a concurrent
// identical execution by singleflight, and expansions precomputed by
// background warming.
type CacheHealth struct {
	Entries           int   `json:"entries"`
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	SingleflightWaits int64 `json:"singleflight_waits"`
	Warmed            int64 `json:"warmed"`
}

// DatasetHealth is one dataset's row count and cache activity in the
// health report.
type DatasetHealth struct {
	Name  string       `json:"name"`
	Rows  int          `json:"rows"`
	Cache *CacheHealth `json:"cache,omitempty"`
}

// Health is the body of GET /v1/health (and the legacy /healthz alias).
type Health struct {
	Status   string `json:"status"`
	Version  string `json:"version"`
	Sessions int    `json:"sessions"`
	// PersistFailures counts failed session-snapshot write-throughs since
	// startup (durability degraded, availability intact); always 0 when no
	// snapshot backend is configured.
	PersistFailures uint64          `json:"persist_failures"`
	Datasets        []DatasetHealth `json:"datasets"`
}

// CreateSessionRequest is the body of POST /v1/sessions.
type CreateSessionRequest struct {
	// Dataset names a registered dataset (required).
	Dataset string `json:"dataset"`
	// K is rules per expansion; 0 means the server default.
	K int `json:"k,omitempty"`
	// Weighter is "size" (default), "bits", or "size-1".
	Weighter string `json:"weighter,omitempty"`
	// SampleMemory and MinSampleSize enable dynamic sampling when both are
	// positive (Section 4 of the paper); Prefetch additionally reallocates
	// samples after each expansion.
	SampleMemory  int  `json:"sample_memory,omitempty"`
	MinSampleSize int  `json:"min_sample_size,omitempty"`
	Prefetch      bool `json:"prefetch,omitempty"`
	// SampleThreshold routes expansions by (sub)view size: views that can
	// exceed this many rows are searched on a sample (provisional,
	// confidence-bounded counts, refined to exact afterwards), smaller
	// ones exactly. 0 samples every expansion when sampling is enabled.
	SampleThreshold int `json:"sample_threshold,omitempty"`
	// DisableSampling forces exact search even when the sampling fields
	// are set — the ablation/debugging switch.
	DisableSampling bool `json:"disable_sampling,omitempty"`
	// Sum optimizes the named measure column instead of tuple counts.
	Sum string `json:"sum,omitempty"`
	// Seed fixes the sampling RNG for reproducible sessions.
	Seed int64 `json:"seed,omitempty"`
	// Workers overrides the server's per-expansion BRS parallelism.
	Workers int `json:"workers,omitempty"`
}

// DrillRequest is the body of POST /v1/sessions/{id}/drill and
// /collapse. The target node is addressed by Node (stable ID, preferred)
// or, when Node is empty, by the legacy Path; both empty means the root.
// For drill, a non-empty Column requests the paper's star drill-down on
// that column; collapse ignores Column.
type DrillRequest struct {
	Node   string `json:"node,omitempty"`
	Path   []int  `json:"path,omitempty"`
	Column string `json:"column,omitempty"`
}

// SearchStats mirrors the BRS search counters of one request — clients
// can watch candidate reuse and postings-vs-scan routing per drill.
type SearchStats struct {
	Passes             int   `json:"passes"`
	CandidatesCounted  int   `json:"candidates_counted"`
	CandidatesPruned   int   `json:"candidates_pruned"`
	CandidatesReused   int   `json:"candidates_reused"`
	RowsScanned        int64 `json:"rows_scanned"`
	PostingsRead       int64 `json:"postings_read"`
	BitmapWordsRead    int64 `json:"bitmap_words_read"`
	IndexLevels        int   `json:"index_levels"`
	CandidateCapHit    bool  `json:"candidate_cap_hit"`
	SampledRowsScanned int64 `json:"sampled_rows_scanned"`
	// CacheHits, CacheMisses and SingleflightWaits report the dataset
	// answer cache's part in this request: a cache-hit drill shows
	// cache_hits 1 with zero passes and zero rows scanned; cache_misses
	// counts actual BRS executions; singleflight_waits marks a request
	// served by adopting a concurrent identical run.
	CacheHits         int `json:"cache_hits"`
	CacheMisses       int `json:"cache_misses"`
	SingleflightWaits int `json:"singleflight_waits"`
}

// DrillResponse returns the expanded (or collapsed) subtree plus the
// access method BRS used to obtain tuples ("direct", "Find", "Combine",
// "Create") and, for expansions, the search statistics of the BRS run.
type DrillResponse struct {
	Access string       `json:"access,omitempty"`
	Search *SearchStats `json:"search,omitempty"`
	Node   *Node        `json:"node"`
}

// RefineRequest is the body of POST /v1/sessions/{id}/refine: upgrade one
// provisional (sample-estimated) node to its exact aggregate.
type RefineRequest struct {
	Node string `json:"node,omitempty"`
	Path []int  `json:"path,omitempty"`
}

// RefineResponse reports whether the refinement changed the node, with
// the node's current wire form either way.
type RefineResponse struct {
	Changed bool  `json:"changed"`
	Node    *Node `json:"node"`
}

// TraditionalRequest is the body of POST /v1/sessions/{id}/traditional:
// the classic OLAP drill-down listing on one column under a node
// (read-only; provided for comparison with smart drill-down).
type TraditionalRequest struct {
	Node   string `json:"node,omitempty"`
	Path   []int  `json:"path,omitempty"`
	Column string `json:"column"`
}

// TraditionalGroup is one value group of a traditional drill-down.
type TraditionalGroup struct {
	Value string  `json:"value"`
	Count float64 `json:"count"`
}

// TraditionalResponse is the body returned by /traditional.
type TraditionalResponse struct {
	Groups []TraditionalGroup `json:"groups"`
}

// DeleteResponse is the body of DELETE /v1/sessions/{id}.
type DeleteResponse struct {
	Deleted string `json:"deleted"`
}

// SSE event names emitted by GET /v1/sessions/{id}/drill/stream.
const (
	// EventRule carries a Node: one rule, pushed the moment the greedy
	// search finds it.
	EventRule = "rule"
	// EventRefine carries a Node: a provisional rule re-pushed with its
	// exact count after the search (exact true, no CI).
	EventRefine = "refine"
	// EventDone carries a DoneEvent and ends the stream.
	EventDone = "done"
)

// DoneEvent is the terminal SSE payload summarizing the stream.
type DoneEvent struct {
	// Rules is the number of rule events emitted.
	Rules int `json:"rules"`
	// Refined is the number of refine events emitted.
	Refined int `json:"refined"`
	// Access is how the search obtained tuples ("direct", "Find", …).
	Access    string `json:"access"`
	ElapsedMS int64  `json:"elapsed_ms"`
	// Error and ErrorCode are set when the search ended abnormally;
	// ErrorCode uses the same machine-readable codes as the error
	// envelope (ErrCanceled when the client went away mid-search).
	Error     string    `json:"error,omitempty"`
	ErrorCode ErrorCode `json:"error_code,omitempty"`
}

package api

import (
	"fmt"
	"net/http"
	"time"
)

// ErrorCode is a machine-readable failure class. Clients branch on codes;
// messages are human diagnostics and carry no stability guarantee.
type ErrorCode string

const (
	// ErrBadRequest: the request body or parameters could not be parsed
	// (malformed JSON, unknown fields, non-numeric parameters).
	ErrBadRequest ErrorCode = "bad_request"
	// ErrNotFound: the addressed dataset, session, or node does not exist
	// (expired, evicted, collapsed away, or never created).
	ErrNotFound ErrorCode = "not_found"
	// ErrBadRule: the request addressed the tree inconsistently — an
	// invalid path, a malformed node ID, an unknown column, or a star
	// drill on an already-instantiated column.
	ErrBadRule ErrorCode = "bad_rule"
	// ErrBudget: a budget or limit parameter is out of range (negative
	// budget_ms, oversized k, negative max_rules).
	ErrBudget ErrorCode = "budget"
	// ErrCanceled: the request's context was canceled while the search
	// ran — the client went away or the server is shutting down. The BRS
	// search stops at the next counting-pass boundary; the session stays
	// valid.
	ErrCanceled ErrorCode = "canceled"
	// ErrOverloaded: the server's admission controller shed the request
	// before any work ran — every concurrency slot stayed busy for the
	// whole admission wait. The response carries a Retry-After header
	// (seconds); the request is always safe to retry, including
	// non-idempotent methods, precisely because it never executed.
	ErrOverloaded ErrorCode = "overloaded"
	// ErrInternal: a server-side failure (handler panic).
	ErrInternal ErrorCode = "internal"
)

// StatusCanceled is the HTTP status reported for ErrCanceled — 499
// "client closed request" (the de-facto nginx convention; no standard
// status fits a client that is no longer listening).
const StatusCanceled = 499

// HTTPStatus maps an error code to its HTTP status. Every ErrorCode has
// an explicit case (enforced by sdlint's apicodes check); the default arm
// only catches codes minted by a newer server than this mapping.
func HTTPStatus(code ErrorCode) int {
	switch code {
	case ErrBadRequest, ErrBadRule, ErrBudget:
		return http.StatusBadRequest
	case ErrNotFound:
		return http.StatusNotFound
	case ErrCanceled:
		return StatusCanceled
	case ErrOverloaded:
		return http.StatusTooManyRequests
	case ErrInternal:
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// Error is the uniform failure body. It implements the error interface so
// SDKs can return it directly; errors.As(err, *&api.Error{}) recovers the
// code from any wrapped chain.
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	// HTTPStatus is the transport status the error traveled with. It is
	// not part of the JSON body (the status line already carries it);
	// clients populate it when decoding.
	HTTPStatus int `json:"-"`
	// RetryAfter is the response's Retry-After hint, when the server sent
	// one (overloaded responses always do). Like HTTPStatus it travels as
	// a header, not in the JSON body; clients populate it when decoding.
	// Zero means no hint.
	RetryAfter time.Duration `json:"-"`
}

func (e *Error) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// ErrorEnvelope is the JSON shape of every non-2xx response:
// {"error":{"code":"...","message":"..."}}.
type ErrorEnvelope struct {
	Error *Error `json:"error"`
}

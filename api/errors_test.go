package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

func TestErrorEnvelopeShape(t *testing.T) {
	raw, err := json.Marshal(ErrorEnvelope{Error: &Error{Code: ErrNotFound, Message: "gone"}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"not_found","message":"gone"}}`
	if string(raw) != want {
		t.Fatalf("envelope = %s, want %s", raw, want)
	}
	// HTTPStatus never leaks into the body; the status line carries it.
	var back ErrorEnvelope
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Error.HTTPStatus != 0 {
		t.Fatalf("HTTPStatus round-tripped through JSON: %d", back.Error.HTTPStatus)
	}
}

func TestErrorIsAnError(t *testing.T) {
	var err error = &Error{Code: ErrBadRule, Message: "star on instantiated column"}
	wrapped := fmt.Errorf("drilling: %w", err)
	var apiErr *Error
	if !errors.As(wrapped, &apiErr) || apiErr.Code != ErrBadRule {
		t.Fatalf("errors.As failed to recover *Error from %v", wrapped)
	}
	if got := err.Error(); got != "bad_rule: star on instantiated column" {
		t.Fatalf("Error() = %q", got)
	}
}

func TestHTTPStatusMapping(t *testing.T) {
	cases := map[ErrorCode]int{
		ErrBadRequest: http.StatusBadRequest,
		ErrBadRule:    http.StatusBadRequest,
		ErrBudget:     http.StatusBadRequest,
		ErrNotFound:   http.StatusNotFound,
		ErrCanceled:   StatusCanceled,
		ErrInternal:   http.StatusInternalServerError,
	}
	for code, want := range cases {
		if got := HTTPStatus(code); got != want {
			t.Errorf("HTTPStatus(%s) = %d, want %d", code, got, want)
		}
	}
}

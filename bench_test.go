package smartdrill

// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (Section 5), plus ablations of the design choices
// called out in DESIGN.md. Regenerate the full measurement set with
//
//	go test -bench=. -benchmem
//
// and the printable experiment rows with cmd/figures. EXPERIMENTS.md
// records measured-vs-paper values.

import (
	"fmt"
	"sync"
	"testing"

	"smartdrill/internal/benchcfg"
	"smartdrill/internal/brs"
	"smartdrill/internal/datagen"
	"smartdrill/internal/drill"
	"smartdrill/internal/rule"
	"smartdrill/internal/sampling"
	"smartdrill/internal/score"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
	"smartdrill/internal/workload"
)

// Shared lazily-generated datasets live in internal/benchcfg so
// cmd/benchjson (and its CI regression gate) measures exactly these
// workloads.
const benchCensusN = benchcfg.CensusRows

func benchStore() *table.Table { return benchcfg.StoreSales() }

func benchMarketing() *table.Table { return benchcfg.Marketing() }

func benchCensus() *table.Table { return benchcfg.Census() }

// BenchmarkTables1to3 reproduces the paper's running example end to end:
// expand the trivial rule (Table 2), then the Walmart rule (Table 3).
func BenchmarkTables1to3(b *testing.B) {
	tab := benchStore()
	walmart, err := tab.EncodeRule(map[string]string{"Store": "Walmart"})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(tab, WithK(3))
		if err != nil {
			b.Fatal(err)
		}
		if err := e.DrillDown(e.Root()); err != nil {
			b.Fatal(err)
		}
		n := e.FindNode(walmart)
		if n == nil {
			b.Fatal("Walmart rule missing")
		}
		if err := e.DrillDown(n); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1ExpandEmpty measures the Figure 1 interaction: expanding
// the empty rule on Marketing under Size weighting (k=4, mw=5).
func BenchmarkFig1ExpandEmpty(b *testing.B) {
	tab := benchMarketing()
	for i := 0; i < b.N; i++ {
		e, _ := New(tab, WithK(4), WithMaxWeight(5))
		if err := e.DrillDown(e.Root()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2StarExpand measures the Figure 2 interaction: a star
// drill-down on the Education column of a first-level rule.
func BenchmarkFig2StarExpand(b *testing.B) {
	tab := benchMarketing()
	for i := 0; i < b.N; i++ {
		e, _ := New(tab, WithK(4), WithMaxWeight(5))
		if err := e.DrillDown(e.Root()); err != nil {
			b.Fatal(err)
		}
		if err := e.DrillDownStar(e.Root().Children[1], "Education"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3RuleExpand measures the Figure 3 interaction: expanding a
// first-level rule.
func BenchmarkFig3RuleExpand(b *testing.B) {
	tab := benchMarketing()
	for i := 0; i < b.N; i++ {
		e, _ := New(tab, WithK(4), WithMaxWeight(5))
		if err := e.DrillDown(e.Root()); err != nil {
			b.Fatal(err)
		}
		if err := e.DrillDown(e.Root().Children[2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4 compares traditional drill-down on Age implemented
// natively (GROUP BY) and as a degenerate smart drill-down.
func BenchmarkFig4(b *testing.B) {
	tab := benchMarketing()
	age, err := tab.ColumnIndex("Age")
	if err != nil {
		b.Fatal(err)
	}
	b.Run("baseline-groupby", func(b *testing.B) {
		e, _ := New(tab, WithK(4))
		for i := 0; i < b.N; i++ {
			if _, err := e.TraditionalDrillDown(e.Root(), "Age"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("smart-columndrill", func(b *testing.B) {
		k := tab.DistinctCount(age)
		for i := 0; i < b.N; i++ {
			s, err := drill.NewSession(tab, drill.Config{
				K: k, MaxWeight: 1, Weighter: weight.ColumnDrill{Column: age},
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Expand(s.Root()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig5MW sweeps the mw parameter (Figure 5): expansion time is
// expected to grow roughly linearly with mw on both datasets and both
// weighting functions. As in the paper, Marketing is explored directly
// while Census drill-downs run on a minSS=5000 sample maintained by the
// SampleHandler (the Create scan dominates its first expansion).
func BenchmarkFig5MW(b *testing.B) {
	cases := []struct {
		dataset string
		tab     func() *table.Table
		memory  int // 0 = direct exploration
		minSS   int
	}{
		{"Marketing", benchMarketing, 0, 0},
		{"Census", benchCensus, 50000, 5000},
	}
	for _, c := range cases {
		tab := c.tab()
		weighters := []struct {
			name string
			w    weight.Weighter
		}{
			{"Size", weight.NewSize(tab.NumCols())},
			{"Bits", weight.BitsFor(tab)},
		}
		for _, wt := range weighters {
			for _, mw := range []float64{1, 5, 10, 20} {
				b.Run(fmt.Sprintf("%s/%s/mw=%g", c.dataset, wt.name, mw), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						s, err := drill.NewSession(tab, drill.Config{
							K: 4, MaxWeight: mw, Weighter: wt.w,
							SampleMemory: c.memory, MinSampleSize: c.minSS,
							Seed: int64(i + 1),
						})
						if err != nil {
							b.Fatal(err)
						}
						if err := s.Expand(s.Root()); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig6Bits measures the Figure 6 interaction (Bits weighting,
// mw=20).
func BenchmarkFig6Bits(b *testing.B) {
	tab := benchMarketing()
	w := weight.BitsFor(tab)
	for i := 0; i < b.N; i++ {
		if _, _, err := brs.Run(tab.All(), w, brs.Options{K: 4, MaxWeight: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7SizeMinusOne measures the Figure 7 interaction.
func BenchmarkFig7SizeMinusOne(b *testing.B) {
	tab := benchMarketing()
	for i := 0; i < b.N; i++ {
		if _, _, err := brs.Run(tab.All(), weight.SizeMinusOne{}, brs.Options{K: 4, MaxWeight: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8MinSS sweeps minSS (Figure 8a): the first expansion pays a
// Create scan plus BRS over a minSS-sized sample, so time grows with minSS
// on top of the fixed scan cost.
func BenchmarkFig8MinSS(b *testing.B) {
	tab := benchCensus()
	for _, minSS := range []int{500, 2000, 5000, 8000} {
		b.Run(fmt.Sprintf("minSS=%d", minSS), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := drill.NewSession(tab, drill.Config{
					K: 4, MaxWeight: 5,
					Weighter:      weight.NewSize(tab.NumCols()),
					SampleMemory:  50000,
					MinSampleSize: minSS,
					Seed:          int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Expand(s.Root()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTableScaling verifies the Section 5.2.3 claim that runtime is
// a·|T| + b·minSS: with minSS fixed, time grows linearly in table size.
func BenchmarkTableScaling(b *testing.B) {
	for _, n := range []int{20000, 50000, 100000} {
		tab := datagen.CensusProjected(n, 7, 7)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s, err := drill.NewSession(tab, drill.Config{
					K: 4, MaxWeight: 5,
					Weighter:      weight.NewSize(tab.NumCols()),
					SampleMemory:  20000,
					MinSampleSize: 2000,
					Seed:          int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Expand(s.Root()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCachedDrill measures the dataset answer cache on the full-table
// Census expansion: cold executes the search every iteration (fresh
// service), warm replays a shared service's cached answer into fresh
// sessions, and concurrent-identical stampedes ten sessions into the same
// expansion at once so singleflight collapses them onto one execution.
func BenchmarkCachedDrill(b *testing.B) {
	tab := benchCensus()
	tab.Index().Warm()
	newEngine := func(b *testing.B, svc *SearchService) *Engine {
		b.Helper()
		e, err := New(tab, WithK(4), WithMaxWeight(4), WithSearchService(svc))
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := newEngine(b, NewSearchService(SearchServiceConfig{}))
			if err := e.DrillDown(e.Root()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		svc := NewSearchService(SearchServiceConfig{})
		prime := newEngine(b, svc)
		if err := prime.DrillDown(prime.Root()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := newEngine(b, svc)
			if err := e.DrillDown(e.Root()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent-identical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc := NewSearchService(SearchServiceConfig{})
			var wg sync.WaitGroup
			for g := 0; g < 10; g++ {
				e := newEngine(b, svc)
				wg.Add(1)
				go func(e *Engine) {
					defer wg.Done()
					if err := e.DrillDown(e.Root()); err != nil {
						b.Error(err)
					}
				}(e)
			}
			wg.Wait()
		}
	})
}

// BenchmarkAblationPruning quantifies the value of Algorithm 2's sub-rule
// upper-bound pruning.
func BenchmarkAblationPruning(b *testing.B) {
	tab := benchMarketing()
	w := weight.NewSize(tab.NumCols())
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run("pruning="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := brs.Run(tab.All(), w, brs.Options{K: 4, MaxWeight: 5, DisablePruning: disabled}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationAllocator compares the Problem 5 DP against the
// Problem 6 convex relaxation on a realistic displayed tree.
func BenchmarkAblationAllocator(b *testing.B) {
	root := &sampling.TreeNode{Rule: rule.Trivial(7), Count: float64(benchCensusN)}
	for i := 0; i < 4; i++ {
		mid := &sampling.TreeNode{
			Rule:  rule.Trivial(7).With(i%7, rule.Value(i)),
			Count: float64(benchCensusN) / float64(2+i),
		}
		for j := 0; j < 3; j++ {
			mid.Children = append(mid.Children, &sampling.TreeNode{
				Rule:  mid.Rule.With((i+j+1)%7, rule.Value(j)),
				Count: mid.Count / float64(2+j),
			})
		}
		root.Children = append(root.Children, mid)
	}
	sampling.UniformLeafProbs(root)
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sampling.AllocateDP(root, 50000, 5000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("convex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sampling.AllocateConvex(root, 50000, 5000, sampling.ConvexOptions{})
		}
	})
}

// BenchmarkAblationAccess compares the three SampleHandler mechanisms on
// the same request: Find (resident sample), Combine (assembled from a
// parent sample), Create (full scan).
func BenchmarkAblationAccess(b *testing.B) {
	tab := benchCensus()
	sub, err := tab.EncodeRule(map[string]string{"attr00": "v00_00"})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("find", func(b *testing.B) {
		store := storage.NewStore(tab)
		h, _ := sampling.NewHandler(store, 50000, 5000, sampling.NewTestRNG(1))
		if _, err := h.GetSample(sub); err != nil { // warm: installs the sample
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := h.GetSample(sub)
			if err != nil || v.Method != sampling.Find {
				b.Fatalf("method %v err %v", v.Method, err)
			}
		}
	})
	b.Run("combine", func(b *testing.B) {
		store := storage.NewStore(tab)
		h, _ := sampling.NewHandler(store, 50000, 5000, sampling.NewTestRNG(1))
		root := &sampling.TreeNode{Rule: rule.Trivial(7), Count: float64(tab.NumRows()), Prob: 1}
		// Slack 8 builds a 40k-tuple trivial sample, so the sub-rule's
		// covered share comfortably exceeds minSS and Combine serves it.
		if _, err := h.Prefetch(root, sampling.PrefetchOptions{Slack: 8}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v, err := h.GetSample(sub)
			if err != nil || v.Method != sampling.Combine {
				b.Fatalf("method %v err %v", v.Method, err)
			}
		}
	})
	b.Run("create", func(b *testing.B) {
		store := storage.NewStore(tab)
		for i := 0; i < b.N; i++ {
			h, _ := sampling.NewHandler(store, 50000, 5000, sampling.NewTestRNG(int64(i)))
			v, err := h.GetSample(sub)
			if err != nil || v.Method != sampling.Create {
				b.Fatalf("method %v err %v", v.Method, err)
			}
		}
	})
}

// BenchmarkWorkloadSession measures a 15-interaction simulated analyst
// session on sampled Census under the four Section 4 configurations — the
// end-to-end interactivity metric.
func BenchmarkWorkloadSession(b *testing.B) {
	tab := benchCensus()
	configs := []struct {
		name     string
		prefetch bool
		learned  bool
	}{
		{"sampling", false, false},
		{"sampling+prefetch", true, false},
		{"sampling+prefetch+learned", true, true},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := drill.Config{
					K: 3, MaxWeight: 4,
					Weighter:      weight.NewSize(tab.NumCols()),
					SampleMemory:  50000,
					MinSampleSize: 5000,
					Prefetch:      c.prefetch,
					Seed:          int64(i + 1),
				}
				if c.learned {
					cfg.ProbModel = sampling.NewRankModel()
				}
				s, err := drill.NewSession(tab, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := workload.Run(s, tab, workload.Config{Steps: 15, Seed: int64(i + 7)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFilterScanVsIndex compares answering a rule filter by full scan
// against posting-list intersection on the bundled store-sales data and
// the synthetic Census generator. The index side measures the steady state
// (lists warm), which is what a server session sees after registration.
func BenchmarkFilterScanVsIndex(b *testing.B) {
	cases := []struct {
		name    string
		tab     *table.Table
		pattern map[string]string
	}{
		{"StoreSales", benchStore(), map[string]string{"Store": "Walmart"}},
		{"StoreSales2col", benchStore(), map[string]string{"Store": "Walmart", "Product": "cookies"}},
		{"Census", benchCensus(), map[string]string{"attr00": "v00_00", "attr01": "v01_00"}},
	}
	for _, c := range cases {
		r, err := c.tab.EncodeRule(c.pattern)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/scan", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if rows := c.tab.FilterIndicesScan(r); len(rows) == 0 {
					b.Fatal("empty filter")
				}
			}
		})
		b.Run(c.name+"/index", func(b *testing.B) {
			c.tab.Index().Warm()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if rows := c.tab.FilterIndices(r); len(rows) == 0 {
					b.Fatal("empty filter")
				}
			}
		})
	}
}

// BenchmarkRepeatedDrilldown measures the interactive hot path the index
// layer exists for: repeated drill-downs into the same dataset, comparing
// the old copying pipeline (scan-filter, materialize, BRS) against the
// index-backed zero-copy pipeline (posting-list intersection, view, BRS).
// The drilled rule's selectivity decides which cost dominates: broad rules
// (the zipf-head values) leave BRS over a huge subset as the bottleneck,
// so the two access paths are comparable; mid and selective rules — what
// repeated drilling into a session's tree actually produces — are
// dominated by the O(|T|) discovery scan, which the index eliminates.
func BenchmarkRepeatedDrilldown(b *testing.B) {
	tab := benchCensus()
	w := weight.NewSize(tab.NumCols())
	bases := []struct {
		name    string
		pattern map[string]string
	}{
		{"broad", map[string]string{"attr00": "v00_00"}},                         // ~59k of 100k rows
		{"mid", map[string]string{"attr04": "v04_05"}},                           // ~1.6k rows
		{"selective", map[string]string{"attr00": "v00_01", "attr04": "v04_05"}}, // ~700 rows
		{"deep", map[string]string{ // ~26 rows: a depth-3 drill into the tail
			"attr00": "v00_01", "attr04": "v04_05", "attr05": "v05_06"}},
	}
	for _, c := range bases {
		base, err := tab.EncodeRule(c.pattern)
		if err != nil {
			b.Fatal(err)
		}
		opts := brs.Options{K: 4, MaxWeight: 4, Base: base, BaseCovered: true}
		b.Run(c.name+"/scan-materialize", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sub := tab.Select(tab.FilterIndicesScan(base))
				if _, _, err := brs.Run(sub.All(), w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/index-view", func(b *testing.B) {
			tab.Index().Warm()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := brs.Run(tab.ViewOf(tab.FilterIndices(base)), w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBRS measures the raw BRS hot path — full-table search, K=4 —
// on the three evaluation datasets, with the index warmed (the server's
// steady state after dataset registration). cmd/benchjson records these
// configurations in the BENCH file; the /prior variants run the same search
// with cross-step reuse and postings-driven counting disabled (the
// pre-optimization path) for before/after comparison.
func BenchmarkBRS(b *testing.B) {
	for _, c := range benchcfg.BRSCases() {
		tab := c.Tab()
		w := weight.NewSize(tab.NumCols())
		tab.Index().Warm()
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := brs.Run(tab.All(), w, brs.Options{K: 4, MaxWeight: c.MW}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.Name+"/prior", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := brs.Options{K: 4, MaxWeight: c.MW, DisableReuse: true, DisableIndex: true}
				if _, _, err := brs.Run(tab.All(), w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSampledDrill measures the approximate interactive pipeline's
// cold path at million-row scale: session creation, one Create scan, and
// a provisional BRS expansion over the sample (confidence-bounded counts).
// Exact BRS on the same table is seconds-slow — BenchmarkBRS/Census runs
// ~1.8s at 100k rows and BRS scales linearly — so this is the path that
// keeps million-row drill-downs interactive. The /refine variant measures
// the background half: re-counting each displayed rule exactly with one
// accounted pass. cmd/benchjson records both in the BENCH file.
func BenchmarkSampledDrill(b *testing.B) {
	for _, c := range benchcfg.SampledCases() {
		tab := c.Tab()
		tab.Index().Warm()
		cfg := drill.Config{
			K: 4, MaxWeight: c.MW,
			Weighter:        weight.NewSize(tab.NumCols()),
			SampleMemory:    c.Memory,
			MinSampleSize:   c.MinSS,
			SampleThreshold: c.Threshold,
		}
		b.Run(c.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := cfg
				cfg.Seed = int64(i + 1)
				s, err := drill.NewSession(tab, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Expand(s.Root()); err != nil {
					b.Fatal(err)
				}
				if s.LastMethod == "direct" {
					b.Fatal("expansion was not sampled")
				}
			}
		})
		b.Run(c.Name+"/refine", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				cfg := cfg
				cfg.Seed = int64(i + 1)
				s, err := drill.NewSession(tab, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Expand(s.Root()); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, n := range s.ProvisionalNodes() {
					s.RefineNode(n)
				}
			}
		})
	}
}

// BenchmarkBRSCores measures BRS parallel scaling on the canonical cores
// axis (benchcfg.CoresAxis: 1, 2, 4, and this machine's max) — full-table
// Census, K=4, warmed index, the same configuration cmd/benchjson records
// in the BENCH file's cores=<label> entries and README's perf table. The
// cores=1 point is the machine-comparable serial kernel cost; the rest
// show how the per-candidate fan-out and chunked counting passes use the
// hardware at hand.
func BenchmarkBRSCores(b *testing.B) {
	tab := benchCensus()
	w := weight.NewSize(tab.NumCols())
	tab.Index().Warm()
	for _, pt := range benchcfg.CoresAxis() {
		b.Run("cores="+pt.Label, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := brs.Run(tab.All(), w, brs.Options{K: 4, MaxWeight: 4, Workers: pt.Workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBRSSumAggregate measures the Section 6.3 Sum variant against
// plain Count on the store dataset.
func BenchmarkBRSSumAggregate(b *testing.B) {
	tab := benchStore()
	w := weight.NewSize(tab.NumCols())
	b.Run("count", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := brs.Run(tab.All(), w, brs.Options{K: 3, MaxWeight: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sum", func(b *testing.B) {
		m, err := tab.MeasureIndex("Sales")
		if err != nil {
			b.Fatal(err)
		}
		agg := score.SumAgg{Measure: m, Label: "Sales"}
		for i := 0; i < b.N; i++ {
			if _, _, err := brs.Run(tab.All(), w, brs.Options{K: 3, MaxWeight: 3, Agg: agg}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

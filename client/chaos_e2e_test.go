package client_test

// Chaos end-to-end suite: the SDK driving a real server through injected
// faults — process crash/restart on a shared snapshot directory, a 429
// storm against a single admission slot, and dropped connections. The
// fault schedule is seeded (FAULT_SEED, default 1) and deterministic, so
// `make chaos` can sweep seeds and any failure is replayable by exporting
// the seed it printed. CI runs this suite under -race with the fixed
// default seed.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartdrill/api"
	"smartdrill/client"
	"smartdrill/internal/datagen"
	"smartdrill/internal/faultinject"
	"smartdrill/internal/server"
)

// faultSeed returns the chaos seed, overridable for seed-matrix sweeps.
func faultSeed(t *testing.T) uint64 {
	raw := os.Getenv("FAULT_SEED")
	if raw == "" {
		return 1
	}
	seed, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		t.Fatalf("FAULT_SEED %q: %v", raw, err)
	}
	return seed
}

// newChaosServer builds a durable server on dir, optionally behind a
// fault-injection middleware, and returns its base URL.
func newChaosServer(t *testing.T, dir string, cfg server.Config, plan *faultinject.Plan) (*server.Server, *httptest.Server) {
	t.Helper()
	backend, err := server.NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = backend
	cfg.Logger = log.New(io.Discard, "", 0)
	s := server.New(cfg)
	s.RegisterDataset("store", datagen.StoreSales(42))
	var h http.Handler = s.Handler()
	if plan != nil {
		h = faultinject.Middleware(plan, h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestChaosCrashRestartResume is the headline crash-safety check: a server
// is killed mid-session (connections severed, no graceful shutdown) and a
// new process on the same snapshot directory serves the same session id
// with a byte-identical tree; the SDK then keeps drilling it.
func TestChaosCrashRestartResume(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, ts1 := newChaosServer(t, dir, server.Config{}, nil)
	c1 := client.New(ts1.URL)
	tree, err := c1.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dr, err := c1.Drill(ctx, tree.ID, api.DrillRequest{Node: tree.Root.ID})
	if err != nil {
		t.Fatal(err)
	}
	star, err := c1.Drill(ctx, tree.ID, api.DrillRequest{Node: dr.Node.Children[0].ID, Column: "Region"})
	if err != nil {
		t.Fatal(err)
	}
	before, err := c1.Tree(ctx, tree.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: sever every live connection, then tear the listener down.
	ts1.CloseClientConnections()
	ts1.Close()

	s2, ts2 := newChaosServer(t, dir, server.Config{}, nil)
	if n, err := s2.RecoverSessions(); err != nil || n != 1 {
		t.Fatalf("RecoverSessions = %d, %v; want 1 resumable", n, err)
	}
	c2 := client.New(ts2.URL)
	after, err := c2.Tree(ctx, tree.ID)
	if err != nil {
		t.Fatalf("restarted server does not know session %s: %v", tree.ID, err)
	}
	rawBefore, _ := json.Marshal(before)
	rawAfter, _ := json.Marshal(after)
	if string(rawBefore) != string(rawAfter) {
		t.Fatalf("tree changed across crash/restart:\nbefore: %s\nafter:  %s", rawBefore, rawAfter)
	}

	// The resumed session is live: collapse the star-drilled node by the
	// stable ID minted before the crash, then re-drill it.
	if _, err := c2.Collapse(ctx, tree.ID, api.DrillRequest{Node: star.Node.ID}); err != nil {
		t.Fatalf("collapse after restart: %v", err)
	}
	redrill, err := c2.Drill(ctx, tree.ID, api.DrillRequest{Node: star.Node.ID})
	if err != nil {
		t.Fatalf("drill after restart: %v", err)
	}
	if len(redrill.Node.Children) == 0 {
		t.Fatal("re-drill after restart produced no children")
	}
}

// count429s wraps a transport, counting overload responses passing through.
type count429s struct {
	next http.RoundTripper
	n    atomic.Int64
}

func (c *count429s) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := c.next.RoundTrip(r)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		c.n.Add(1)
	}
	return resp, err
}

// TestChaos429Storm: a fleet of SDK clients hammers a server with a single
// admission slot and injected per-drill latency. Requests are shed with
// 429s, the SDK retries with backoff honoring Retry-After, and every
// client converges to success — the storm drains instead of failing.
func TestChaos429Storm(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second backoff convergence")
	}
	seed := faultSeed(t)
	t.Logf("FAULT_SEED=%d", seed)
	plan := faultinject.New(seed,
		faultinject.Rule{Op: "/drill", Prob: 1, Latency: 50 * time.Millisecond})
	_, ts := newChaosServer(t, t.TempDir(), server.Config{
		MaxConcurrent: 1,
		AdmissionWait: time.Millisecond,
	}, plan)

	counter := &count429s{next: http.DefaultTransport}
	const clients = 5
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := client.New(ts.URL,
				client.WithHTTPClient(&http.Client{Transport: counter}),
				client.WithRetryPolicy(client.RetryPolicy{
					MaxAttempts: 12,
					BaseDelay:   100 * time.Millisecond,
					MaxDelay:    2 * time.Second,
				}))
			ctx := context.Background()
			tree, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", K: 3, Seed: 1})
			if err != nil {
				errs <- err
				return
			}
			node := tree.Root.ID
			for j := 0; j < 2; j++ {
				dr, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: node})
				if err != nil {
					errs <- err
					return
				}
				if len(dr.Node.Children) > 0 {
					node = dr.Node.Children[0].ID
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client did not converge: %v", err)
	}
	shed := counter.n.Load()
	if shed == 0 {
		t.Fatal("storm produced no 429s; admission control never engaged")
	}
	// A retried shed waited out the ≥1s Retry-After floor.
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("%d sheds retried in %v — Retry-After cannot have been honored", shed, elapsed)
	}
	t.Logf("storm: %d requests shed and retried to convergence", shed)
}

// TestChaosDroppedConnections: the fault plan kills a bounded number of
// connections mid-request on idempotent reads; the SDK's transport-error
// retries absorb them.
func TestChaosDroppedConnections(t *testing.T) {
	seed := faultSeed(t)
	t.Logf("FAULT_SEED=%d", seed)
	plan := faultinject.New(seed,
		faultinject.Rule{Op: "GET /v1/sessions", Prob: 1, DropConn: true, MaxCount: 2})
	_, ts := newChaosServer(t, t.TempDir(), server.Config{}, plan)
	c := client.New(ts.URL, client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond,
	}))
	ctx := context.Background()
	tree, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Tree(ctx, tree.ID) // eats both dropped connections, then lands
	if err != nil {
		t.Fatalf("SDK did not absorb dropped connections: %v", err)
	}
	if got.ID != tree.ID {
		t.Fatalf("tree id %q, want %q", got.ID, tree.ID)
	}
	if plan.Total() < 2 {
		t.Fatalf("plan injected %d faults, want ≥ 2", plan.Total())
	}
}

// TestChaosFlakyDisk: snapshot saves fail randomly under the seeded plan;
// serving never fails, and once the disk heals a final mutation persists a
// snapshot a restarted server can resume.
func TestChaosFlakyDisk(t *testing.T) {
	seed := faultSeed(t)
	t.Logf("FAULT_SEED=%d", seed)
	dir := t.TempDir()
	plan := faultinject.New(seed,
		faultinject.Rule{Op: "save", Prob: 0.7, Err: errors.New("injected disk failure"), MaxCount: 20})
	backend, err := server.NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	backend.Inject = plan.InjectFunc()
	s := server.New(server.Config{Backend: backend, Logger: log.New(io.Discard, "", 0)})
	s.RegisterDataset("store", datagen.StoreSales(42))
	ts := httptest.NewServer(s.Handler())

	c := client.New(ts.URL)
	ctx := context.Background()
	tree, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	node := tree.Root.ID
	for j := 0; j < 6; j++ { // enough mutations to hit both fault and success draws
		dr, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: node})
		if err != nil {
			t.Fatalf("drill %d failed under flaky disk: %v", j, err)
		}
		if len(dr.Node.Children) > 0 {
			node = dr.Node.Children[0].ID
		}
		if _, err := c.Collapse(ctx, tree.ID, api.DrillRequest{Node: node}); err != nil {
			t.Fatalf("collapse %d failed under flaky disk: %v", j, err)
		}
	}
	backend.Inject = nil // disk heals
	if _, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: tree.Root.ID}); err != nil {
		t.Fatal(err)
	}
	want, err := c.Tree(ctx, tree.ID)
	if err != nil {
		t.Fatal(err)
	}
	ts.CloseClientConnections()
	ts.Close()

	_, ts2 := newChaosServer(t, dir, server.Config{}, nil)
	got, err := client.New(ts2.URL).Tree(ctx, tree.ID)
	if err != nil {
		t.Fatalf("restart after flaky disk lost the session: %v", err)
	}
	rawWant, _ := json.Marshal(want)
	rawGot, _ := json.Marshal(got)
	if string(rawWant) != string(rawGot) {
		t.Fatalf("healed snapshot diverged:\nwant: %s\ngot:  %s", rawWant, rawGot)
	}
}

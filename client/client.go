// Package client is the Go SDK for the smart drill-down v1 HTTP API
// served by cmd/smartdrilld. It speaks the api package's DTOs verbatim —
// stable node IDs, the uniform error envelope, and the SSE streaming
// events — so anything expressible in the wire contract is expressible
// through the SDK; cmd/smartdrill's -remote mode rebuilds the whole CLI
// on it.
//
// Basic use:
//
//	c := client.New("http://localhost:8080")
//	tree, _ := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store"})
//	resp, _ := c.Drill(ctx, tree.ID, api.DrillRequest{Node: tree.Root.ID})
//	for _, child := range resp.Node.Children {
//		fmt.Println(child.Display, child.Count)
//	}
//
// Failures decode into *api.Error, so callers can branch on the
// machine-readable code:
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.ErrNotFound { ... }
//
// Every method takes a context; canceling it aborts the HTTP request, and
// — because the server threads request contexts into its BRS search — a
// canceled in-flight drill stops the server-side search too.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"smartdrill/api"
)

// Client talks to one smartdrilld server. It is safe for concurrent use.
// By default it retries overload (429) and idempotent transient failures
// with jittered exponential backoff — see RetryPolicy for the exact
// rules, and WithRetryPolicy / NoRetries to tune or disable them.
type Client struct {
	base   string
	http   *http.Client
	retry  RetryPolicy
	jitter func() float64 // full-jitter draw in [0,1); pinned by tests
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client (custom
// transports, timeouts, instrumentation). Streaming calls rely on the
// client not buffering response bodies.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New builds a Client for the server at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:   strings.TrimRight(baseURL, "/"),
		http:   &http.Client{},
		retry:  DefaultRetryPolicy(),
		jitter: defaultJitter,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL reports the server address the client was built with.
func (c *Client) BaseURL() string { return c.base }

// Health fetches the server's health report (status, build version,
// session count, per-dataset row counts).
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var out api.Health
	if err := c.do(ctx, http.MethodGet, "/v1/health", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets lists the server's registered datasets.
func (c *Client) Datasets(ctx context.Context) ([]api.Dataset, error) {
	var out api.DatasetList
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// CreateSession starts a drill-down session and returns its initial tree
// (the root rule covering the whole dataset).
func (c *Client) CreateSession(ctx context.Context, req api.CreateSessionRequest) (*api.Tree, error) {
	var out api.Tree
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Tree fetches a session's full displayed tree.
func (c *Client) Tree(ctx context.Context, sessionID string) (*api.Tree, error) {
	var out api.Tree
	if err := c.do(ctx, http.MethodGet, "/v1/sessions/"+url.PathEscape(sessionID)+"/tree", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Drill expands the addressed node — a smart drill-down, or the paper's
// star drill-down when req.Column is set. Canceling ctx mid-request stops
// the server-side BRS search between counting passes.
func (c *Client) Drill(ctx context.Context, sessionID string, req api.DrillRequest) (*api.DrillResponse, error) {
	var out api.DrillResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/drill", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Collapse rolls up the addressed node (req.Column is ignored).
func (c *Client) Collapse(ctx context.Context, sessionID string, req api.DrillRequest) (*api.DrillResponse, error) {
	var out api.DrillResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/collapse", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Refine upgrades one provisional (sample-estimated) node to its exact
// aggregate with one server-side counting pass.
func (c *Client) Refine(ctx context.Context, sessionID, nodeID string) (*api.RefineResponse, error) {
	var out api.RefineResponse
	req := api.RefineRequest{Node: nodeID}
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/refine", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Traditional runs the classic OLAP drill-down listing on one column under
// the addressed node (read-only).
func (c *Client) Traditional(ctx context.Context, sessionID string, req api.TraditionalRequest) (*api.TraditionalResponse, error) {
	var out api.TraditionalResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions/"+url.PathEscape(sessionID)+"/traditional", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteSession discards a session.
func (c *Client) DeleteSession(ctx context.Context, sessionID string) error {
	return c.do(ctx, http.MethodDelete, "/v1/sessions/"+url.PathEscape(sessionID), nil, nil)
}

// StreamOptions parameterizes DrillStream.
type StreamOptions struct {
	// Node addresses the node to expand by stable ID ("" = root).
	Node string
	// Budget bounds the anytime search; 0 uses the server default. The
	// server additionally caps it at its configured maximum.
	Budget time.Duration
	// MaxRules stops the search after this many rules (0 = budget-bound
	// only).
	MaxRules int
	// OnRule receives each rule the moment the greedy search finds it.
	// Returning false stops consuming the stream (and, by closing the
	// connection, cancels the server-side search). May be nil.
	OnRule func(*api.Node) bool
	// OnRefine receives each provisional rule re-pushed with its exact
	// count after the search. May be nil.
	OnRefine func(*api.Node)
}

// DrillStream runs the paper's anytime drill-down over SSE: rules arrive
// through OnRule as the search finds them, provisional counts are refined
// through OnRefine, and the server's terminal summary is returned.
// Canceling ctx aborts both the stream and the server-side search. When
// OnRule stops the stream early, DrillStream returns (nil, nil): the
// server's summary never arrived, by the caller's own choice.
func (c *Client) DrillStream(ctx context.Context, sessionID string, opts StreamOptions) (*api.DoneEvent, error) {
	q := url.Values{}
	if opts.Node != "" {
		q.Set("node", opts.Node)
	}
	if opts.Budget > 0 {
		q.Set("budget_ms", strconv.FormatInt(opts.Budget.Milliseconds(), 10))
	}
	if opts.MaxRules > 0 {
		q.Set("max_rules", strconv.Itoa(opts.MaxRules))
	}
	target := c.base + "/v1/sessions/" + url.PathEscape(sessionID) + "/drill/stream"
	if len(q) > 0 {
		target += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	return consumeStream(ctx, resp.Body, opts)
}

// do issues one JSON request — retrying per the client's RetryPolicy —
// and decodes a 2xx response into out (which may be nil). Non-2xx
// responses decode into *api.Error. The request body is marshaled once
// and replayed from memory on each attempt.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var raw []byte
	if body != nil {
		var err error
		if raw, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts := c.retry.attempts()
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, raw, body != nil, out)
		if err == nil {
			return nil
		}
		if attempt+1 >= attempts || !retryable(method, err) {
			return err
		}
		if !sleepCtx(ctx, c.backoffDelay(attempt, retryAfterOf(err))) {
			return err // ctx canceled mid-backoff: surface the last failure
		}
	}
}

// doOnce is one HTTP attempt. The response body is always fully drained
// and closed — on every path, error paths included — so the underlying
// connection returns to the pool instead of leaking per attempt.
func (c *Client) doOnce(ctx context.Context, method, path string, raw []byte, hasBody bool, out any) error {
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// drainClose consumes any unread remainder of a response body before
// closing it, the precondition for net/http connection reuse.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, body) //nolint:errcheck // best-effort drain for keep-alive
	body.Close()
}

// decodeError turns a non-2xx response into an *api.Error, synthesizing
// one when the body is not the uniform envelope (a proxy in the way, say).
// It drains and closes the body, and carries any Retry-After hint through
// to the retry layer.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	drainClose(resp.Body)
	retryAfter := parseRetryAfter(resp.Header.Get("Retry-After"))
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err == nil && env.Error != nil && env.Error.Code != "" {
		env.Error.HTTPStatus = resp.StatusCode
		env.Error.RetryAfter = retryAfter
		return env.Error
	}
	return &api.Error{
		Code:       api.ErrInternal,
		Message:    fmt.Sprintf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw)),
		HTTPStatus: resp.StatusCode,
		RetryAfter: retryAfter,
	}
}

package client_test

// End-to-end client↔server round trips: the SDK driving a real
// internal/server instance over httptest, covering drill / star-drill /
// collapse / refine / traditional / SSE streaming with refine events, the
// error envelope, and cancellation. CI runs this suite under -race.

import (
	"context"
	"errors"
	"io"
	"log"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"smartdrill"
	"smartdrill/api"
	"smartdrill/client"
	"smartdrill/internal/datagen"
	"smartdrill/internal/server"
)

var censusTable = sync.OnceValue(func() *smartdrill.Table {
	return datagen.CensusProjected(20000, 7, 7)
})

// newClient spins a server with the store and census datasets and returns
// an SDK client pointed at it.
func newClient(t *testing.T, cfg server.Config) *client.Client {
	t.Helper()
	cfg.Logger = log.New(io.Discard, "", 0)
	s := server.New(cfg)
	s.RegisterDataset("store", datagen.StoreSales(42))
	s.RegisterDataset("census", censusTable())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return client.New(ts.URL)
}

func TestEndToEndExactSession(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Version != smartdrill.Version || len(h.Datasets) != 2 {
		t.Fatalf("health: %+v", h)
	}

	ds, err := c.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 || ds[1].Name != "store" || ds[1].Rows != 6000 {
		t.Fatalf("datasets: %+v", ds)
	}

	tree, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root.ID != "n1" || tree.Root.Count != 6000 || !tree.Root.Exact {
		t.Fatalf("root: %+v", tree.Root)
	}

	// Drill the root by its stable ID; the running example's planted
	// (Walmart,?,?) group must surface with 1000 tuples.
	dr, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: tree.Root.ID})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Access != "direct" || dr.Search == nil || dr.Search.CandidatesCounted == 0 {
		t.Fatalf("drill meta: access %q search %+v", dr.Access, dr.Search)
	}
	var walmart *api.Node
	for _, child := range dr.Node.Children {
		if child.Rule["Store"] == "Walmart" {
			walmart = child
		}
	}
	if walmart == nil || walmart.Count != 1000 {
		t.Fatalf("no (Walmart,?,?) with count 1000 in %+v", dr.Node.Children)
	}

	// Star drill on Region under the Walmart node, again by ID.
	star, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: walmart.ID, Column: "Region"})
	if err != nil {
		t.Fatal(err)
	}
	if len(star.Node.Children) == 0 {
		t.Fatal("star drill returned no children")
	}
	for _, child := range star.Node.Children {
		if child.Rule["Region"] == "" {
			t.Fatalf("star drill child without Region: %+v", child)
		}
	}

	// The node ID held across the sibling mutation: re-fetch and compare.
	full, err := c.Tree(ctx, tree.ID)
	if err != nil {
		t.Fatal(err)
	}
	var again *api.Node
	for _, child := range full.Root.Children {
		if child.ID == walmart.ID {
			again = child
		}
	}
	if again == nil || again.Rule["Store"] != "Walmart" {
		t.Fatalf("stable ID %q did not survive: %+v", walmart.ID, full.Root.Children)
	}

	// Traditional listing under the root.
	trad, err := c.Traditional(ctx, tree.ID, api.TraditionalRequest{Node: tree.Root.ID, Column: "Store"})
	if err != nil {
		t.Fatal(err)
	}
	if len(trad.Groups) == 0 {
		t.Fatal("traditional drill-down returned no groups")
	}

	// Collapse by ID; the node's children (and their IDs) disappear.
	col, err := c.Collapse(ctx, tree.ID, api.DrillRequest{Node: walmart.ID})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Node.Children) != 0 {
		t.Fatalf("collapse left %d children", len(col.Node.Children))
	}
	if _, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: star.Node.Children[0].ID}); err == nil {
		t.Fatal("drilling a collapsed-away node ID should fail")
	} else {
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound {
			t.Fatalf("collapsed node drill error = %v, want api.ErrNotFound", err)
		}
	}

	if err := c.DeleteSession(ctx, tree.ID); err != nil {
		t.Fatal(err)
	}
	_, err = c.Tree(ctx, tree.ID)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound || apiErr.HTTPStatus != 404 {
		t.Fatalf("tree after delete: err %v, want not_found/404", err)
	}
}

// sampledCreate is the canonical sampled census session: large enough to
// actually sample, deterministic via the seed.
func sampledCreate() api.CreateSessionRequest {
	return api.CreateSessionRequest{
		Dataset:         "census",
		K:               4,
		SampleMemory:    20000,
		MinSampleSize:   2000,
		SampleThreshold: 5000,
		Seed:            1,
	}
}

func TestEndToEndSampledRefine(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()

	tree, err := c.CreateSession(ctx, sampledCreate())
	if err != nil {
		t.Fatal(err)
	}
	dr, err := c.Drill(ctx, tree.ID, api.DrillRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if dr.Access == "direct" {
		t.Fatal("census drill should have sampled")
	}
	var prov *api.Node
	for _, child := range dr.Node.Children {
		if !child.Exact {
			prov = child
			break
		}
	}
	if prov == nil {
		t.Fatal("sampled drill returned no provisional children")
	}
	if prov.CI == nil {
		t.Fatalf("provisional child without CI: %+v", prov)
	}

	// Refine the provisional node by ID: the exact count lands, the CI
	// goes away, and the answer is idempotent.
	ref, err := c.Refine(ctx, tree.ID, prov.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Changed || !ref.Node.Exact || ref.Node.CI != nil {
		t.Fatalf("refine: %+v", ref)
	}
	again, err := c.Refine(ctx, tree.ID, prov.ID)
	if err != nil {
		t.Fatal(err)
	}
	if again.Changed || again.Node.Count != ref.Node.Count {
		t.Fatalf("second refine changed the node: %+v vs %+v", again, ref)
	}
}

func TestEndToEndStreamRefineEvents(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()

	tree, err := c.CreateSession(ctx, sampledCreate())
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]*api.Node{}
	refines := map[string]*api.Node{}
	done, err := c.DrillStream(ctx, tree.ID, client.StreamOptions{
		Node:     tree.Root.ID,
		Budget:   10 * time.Second,
		MaxRules: 4,
		OnRule: func(n *api.Node) bool {
			if n.Exact {
				t.Errorf("rule event off the sample claims exactness: %+v", n)
			}
			if n.CI == nil {
				t.Errorf("provisional rule without CI: %+v", n)
			}
			rules[n.ID] = n
			return true
		},
		OnRefine: func(n *api.Node) {
			if _, seen := rules[n.ID]; !seen {
				t.Errorf("refine for %s before its rule event", n.ID)
			}
			if !n.Exact || n.CI != nil {
				t.Errorf("refine event not exact: %+v", n)
			}
			refines[n.ID] = n
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done.Error != "" || done.ErrorCode != "" {
		t.Fatalf("stream error: %+v", done)
	}
	if done.Rules != len(rules) || done.Refined != len(refines) {
		t.Fatalf("done reports %d/%d, callbacks saw %d/%d", done.Rules, done.Refined, len(rules), len(refines))
	}
	if len(rules) == 0 {
		t.Fatal("no rules streamed")
	}
	for id := range rules {
		if _, ok := refines[id]; !ok {
			t.Fatalf("provisional rule %s never refined", id)
		}
	}
}

// TestStreamClientCancel: canceling the context mid-stream aborts with the
// context's error and leaves the session usable — the dropped request does
// not poison it.
func TestStreamClientCancel(t *testing.T) {
	c := newClient(t, server.Config{})
	tree, err := c.CreateSession(context.Background(), api.CreateSessionRequest{Dataset: "census", K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = c.DrillStream(ctx, tree.ID, client.StreamOptions{
		Budget: 30 * time.Second,
		OnRule: func(n *api.Node) bool {
			cancel() // first rule arrived: abandon the request
			return true
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled stream: err %v, want context.Canceled", err)
	}

	// The session still answers — and a full drill works.
	dr, err := c.Drill(context.Background(), tree.ID, api.DrillRequest{})
	if err != nil {
		t.Fatal(err)
	}
	if len(dr.Node.Children) != 4 {
		t.Fatalf("drill after cancel: %d children, want 4", len(dr.Node.Children))
	}
}

// TestStreamEarlyStop: OnRule returning false ends the stream from the
// client side without an error.
func TestStreamEarlyStop(t *testing.T) {
	c := newClient(t, server.Config{})
	tree, err := c.CreateSession(context.Background(), api.CreateSessionRequest{Dataset: "store"})
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	done, err := c.DrillStream(context.Background(), tree.ID, client.StreamOptions{
		Budget: 5 * time.Second,
		OnRule: func(n *api.Node) bool {
			seen++
			return false
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if done != nil {
		t.Fatalf("early-stopped stream returned a done event: %+v", done)
	}
	if seen != 1 {
		t.Fatalf("OnRule ran %d times after returning false, want 1", seen)
	}
}

// TestErrorEnvelope exercises the typed error path for each code class.
func TestErrorEnvelope(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	tree, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store"})
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		call func() error
		want api.ErrorCode
	}{
		{"unknown dataset", func() error {
			_, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "nope"})
			return err
		}, api.ErrNotFound},
		{"oversized k", func() error {
			_, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", K: 9999})
			return err
		}, api.ErrBudget},
		{"malformed node id", func() error {
			_, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: "bogus"})
			return err
		}, api.ErrBadRule},
		{"unknown node id", func() error {
			_, err := c.Drill(ctx, tree.ID, api.DrillRequest{Node: "n99999"})
			return err
		}, api.ErrNotFound},
		{"star on unknown column", func() error {
			_, err := c.Drill(ctx, tree.ID, api.DrillRequest{Column: "Nope"})
			return err
		}, api.ErrBadRule},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			var apiErr *api.Error
			if !errors.As(err, &apiErr) {
				t.Fatalf("err %v is not *api.Error", err)
			}
			if apiErr.Code != tc.want {
				t.Fatalf("code %q, want %q (message %q)", apiErr.Code, tc.want, apiErr.Message)
			}
			if apiErr.HTTPStatus != api.HTTPStatus(tc.want) {
				t.Fatalf("status %d, want %d", apiErr.HTTPStatus, api.HTTPStatus(tc.want))
			}
		})
	}
}

// TestConcurrentClients hammers one server from several SDK clients under
// -race: distinct sessions in parallel, plus one shared session.
func TestConcurrentClients(t *testing.T) {
	c := newClient(t, server.Config{})
	ctx := context.Background()
	shared, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own, err := c.CreateSession(ctx, api.CreateSessionRequest{Dataset: "store", Seed: int64(g + 1)})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Drill(ctx, own.ID, api.DrillRequest{}); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Drill(ctx, shared.ID, api.DrillRequest{}); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	full, err := c.Tree(ctx, shared.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Root.Children) == 0 || len(full.Root.Children) > 3 {
		t.Fatalf("shared tree has %d children after concurrent drills", len(full.Root.Children))
	}
}

package client

import (
	"context"
	"errors"
	"math/rand/v2"
	"net/http"
	"strconv"
	"time"

	"smartdrill/api"
)

// RetryPolicy controls the SDK's automatic retries. The policy is
// deliberately narrow about what it retries:
//
//   - 429 overloaded: retried for every method. The server sheds a request
//     before any engine work runs (see api.ErrOverloaded), so resending a
//     shed drill cannot double-apply it.
//   - 5xx and transport-level failures (connection refused/reset, broken
//     proxies): retried only for idempotent methods (GET, DELETE, HEAD). A
//     POST that died mid-flight may or may not have executed; replaying it
//     could drill the same node twice, so the error is surfaced instead.
//   - 4xx other than 429, and context cancellation: never retried.
//
// Backoff between attempts is capped exponential with full jitter —
// sleep ~ Uniform(0, min(MaxDelay, BaseDelay·2^attempt)) — which spreads a
// thundering herd of retrying clients instead of synchronizing it. A
// server Retry-After hint is honored as a floor on the computed delay, and
// canceling the request context cuts any backoff sleep short.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the initial request
	// included. 1 (or less) disables retries. Default 4.
	MaxAttempts int
	// BaseDelay is the jitter ceiling before the first retry; it doubles
	// each attempt. Default 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the jitter ceiling. Default 5s.
	MaxDelay time.Duration
}

// DefaultRetryPolicy is the policy a new Client starts with.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: 5 * time.Second}
}

// NoRetries disables automatic retries entirely.
func NoRetries() RetryPolicy { return RetryPolicy{MaxAttempts: 1} }

// WithRetryPolicy substitutes the client's retry policy.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// attempts normalizes MaxAttempts to at least one try.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// idempotent reports whether a died-mid-flight request of this method is
// safe to replay.
func idempotent(method string) bool {
	switch method {
	case http.MethodGet, http.MethodHead, http.MethodDelete:
		return true
	}
	return false
}

// retryable classifies one attempt's failure. Context cancellation is
// terminal regardless of how deeply a transport wrapped it.
func retryable(method string, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		if apiErr.Code == api.ErrOverloaded || apiErr.HTTPStatus == http.StatusTooManyRequests {
			return true // shed before executing: safe for any method
		}
		return apiErr.HTTPStatus >= 500 && idempotent(method)
	}
	// No decoded response at all: a transport-level failure.
	return idempotent(method)
}

// retryAfterOf extracts the server's Retry-After hint, if the failure
// carried one.
func retryAfterOf(err error) time.Duration {
	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// backoffDelay computes the sleep before retry number attempt (0-based):
// full jitter under an exponentially growing ceiling, floored by any
// server-provided Retry-After hint.
func (c *Client) backoffDelay(attempt int, retryAfter time.Duration) time.Duration {
	ceil := c.retry.BaseDelay
	for i := 0; i < attempt && ceil < c.retry.MaxDelay; i++ {
		ceil *= 2
	}
	if ceil > c.retry.MaxDelay {
		ceil = c.retry.MaxDelay
	}
	var d time.Duration
	if ceil > 0 {
		d = time.Duration(c.jitter() * float64(ceil))
	}
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// defaultJitter draws the full-jitter fraction. It is a Client field so
// tests can pin it.
func defaultJitter() float64 { return rand.Float64() }

// sleepCtx sleeps for d unless ctx is canceled first, reporting whether
// the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// parseRetryAfter parses a Retry-After header (delta-seconds or HTTP
// date), returning 0 when absent or unparseable.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

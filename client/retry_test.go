package client

// Retry-policy unit tests live in-package so they can pin the jitter draw
// and observe attempt counts deterministically.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"smartdrill/api"
)

// newTestClient points a Client at ts with zero jitter (backoff sleeps are
// exactly the Retry-After floor, usually 0) so retries run at test speed.
func newTestClient(ts *httptest.Server, opts ...Option) *Client {
	c := New(ts.URL, opts...)
	c.jitter = func() float64 { return 0 }
	return c
}

func overloadHandler(fails int32, retryAfter string) (http.HandlerFunc, *int32) {
	var calls int32
	h := func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) <= fails {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"shed"}}`))
			return
		}
		w.Write([]byte(`{"status":"ok","version":"test","sessions":0,"datasets":[]}`))
	}
	return h, &calls
}

// Test429RetriedForPOST: overload sheds are retried even for non-idempotent
// methods — the server never started executing a shed request.
func Test429RetriedForPOST(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"overloaded","message":"shed"}}`))
			return
		}
		w.WriteHeader(http.StatusCreated)
		w.Write([]byte(`{"id":"s1","dataset":"d","columns":[],"aggregate":"Count","k":1,"root":{"id":"n1","path":[]}}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	tree, err := c.CreateSession(context.Background(), api.CreateSessionRequest{Dataset: "d"})
	if err != nil {
		t.Fatalf("POST not retried through 429: %v", err)
	}
	if tree.ID != "s1" || atomic.LoadInt32(&calls) != 2 {
		t.Fatalf("tree %+v after %d calls", tree, calls)
	}
}

// TestRetryAfterHonored: the server's Retry-After floors the backoff delay.
func TestRetryAfterHonored(t *testing.T) {
	h, _ := overloadHandler(1, "1")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := newTestClient(ts)
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 900*time.Millisecond {
		t.Fatalf("retried after %v; Retry-After: 1 not honored", d)
	}
}

// TestRetriesExhausted: a persistent overload surfaces the 429 after
// MaxAttempts tries.
func TestRetriesExhausted(t *testing.T) {
	h, calls := overloadHandler(1000, "")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := newTestClient(ts, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	_, err := c.Health(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrOverloaded {
		t.Fatalf("err = %v, want overloaded", err)
	}
	if got := atomic.LoadInt32(calls); got != 3 {
		t.Fatalf("made %d attempts, want 3", got)
	}
}

// TestNonIdempotent5xxNotRetried: a POST that reaches the server and fails
// may have executed; the SDK must not replay it.
func TestNonIdempotent5xxNotRetried(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := newTestClient(ts)
	if _, err := c.CreateSession(context.Background(), api.CreateSessionRequest{Dataset: "d"}); err == nil {
		t.Fatal("expected error")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("POST attempted %d times, want 1", got)
	}
}

// TestIdempotent5xxRetried: the same failure on a GET is retried.
func TestIdempotent5xxRetried(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"status":"ok","version":"test","sessions":0,"datasets":[]}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("GET not retried through 500: %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 2 {
		t.Fatalf("made %d attempts, want 2", got)
	}
}

// TestBadRequestNotRetried: 4xx (other than 429) is the caller's bug, not
// a transient — no retry even for GET.
func TestBadRequestNotRetried(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		w.Write([]byte(`{"error":{"code":"not_found","message":"nope"}}`))
	}))
	defer ts.Close()
	c := newTestClient(ts)
	_, err := c.Health(context.Background())
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.ErrNotFound {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("made %d attempts, want 1", got)
	}
}

// TestCancelCutsBackoffShort: a context canceled mid-backoff ends the
// retry loop immediately instead of sleeping out the Retry-After.
func TestCancelCutsBackoffShort(t *testing.T) {
	h, _ := overloadHandler(1000, "30")
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := newTestClient(ts)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected error")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancel did not cut the 30s backoff short: %v", d)
	}
}

// TestTransportErrorRetriedForGET: a dropped connection (no response at
// all) is retried for idempotent methods.
func TestTransportErrorRetriedForGET(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if atomic.AddInt32(&calls, 1) == 1 {
			panic(http.ErrAbortHandler) // kill the connection mid-request
		}
		w.Write([]byte(`{"status":"ok","version":"test","sessions":0,"datasets":[]}`))
	}))
	defer ts.Close()
	c := newTestClient(ts, WithRetryPolicy(RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}))
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("GET not retried through dropped connection: %v", err)
	}
}

// TestConnectionsReused: every response body — success and error alike —
// is drained and closed, so a burst of sequential requests rides one
// TCP connection instead of leaking one per call. The counting dialer
// fails the test if any path forgets drainClose.
func TestConnectionsReused(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/health":
			w.Write([]byte(`{"status":"ok","version":"test","sessions":0,"datasets":[]}`))
		default:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":{"code":"not_found","message":"nope"}}`))
		}
	}))
	defer ts.Close()

	var dials int32
	transport := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			atomic.AddInt32(&dials, 1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	defer transport.CloseIdleConnections()
	c := newTestClient(ts, WithHTTPClient(&http.Client{Transport: transport}), WithRetryPolicy(NoRetries()))
	for i := 0; i < 5; i++ {
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Tree(context.Background(), "missing"); err == nil {
			t.Fatal("expected not_found")
		}
	}
	if got := atomic.LoadInt32(&dials); got != 1 {
		t.Fatalf("10 sequential requests used %d connections, want 1 (body not drained/closed somewhere)", got)
	}
}

// TestBackoffDelayGrowth: the jitter ceiling doubles per attempt and caps
// at MaxDelay; Retry-After floors the result.
func TestBackoffDelayGrowth(t *testing.T) {
	c := New("http://unused", WithRetryPolicy(RetryPolicy{
		MaxAttempts: 10, BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond,
	}))
	c.jitter = func() float64 { return 0.999999 }
	approx := func(got, want time.Duration) bool {
		diff := got - want
		return diff > -time.Millisecond && diff < time.Millisecond
	}
	if d := c.backoffDelay(0, 0); !approx(d, 100*time.Millisecond) {
		t.Fatalf("attempt 0: %v", d)
	}
	if d := c.backoffDelay(1, 0); !approx(d, 200*time.Millisecond) {
		t.Fatalf("attempt 1: %v", d)
	}
	if d := c.backoffDelay(5, 0); !approx(d, 400*time.Millisecond) {
		t.Fatalf("attempt 5 should cap at MaxDelay: %v", d)
	}
	if d := c.backoffDelay(0, time.Second); d != time.Second {
		t.Fatalf("Retry-After floor ignored: %v", d)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty: %v", d)
	}
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Fatalf("seconds: %v", d)
	}
	if d := parseRetryAfter("-1"); d != 0 {
		t.Fatalf("negative: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
	future := time.Now().Add(3 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 3*time.Second {
		t.Fatalf("http date: %v", d)
	}
}

package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"smartdrill/api"
)

// Minimal Server-Sent-Events consumer for the drill stream. The server
// emits exactly "event:" + "data:" line pairs separated by blank lines;
// this reader tolerates the other field names the SSE spec allows (id,
// retry, comments) by ignoring them.

// consumeStream dispatches events to the callbacks until the done event,
// the callbacks ask to stop, or ctx/EOF ends the stream.
func consumeStream(ctx context.Context, body io.Reader, opts StreamOptions) (*api.DoneEvent, error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event, data string
	flush := func() (done *api.DoneEvent, stop bool, err error) {
		if event == "" {
			return nil, false, nil
		}
		defer func() { event, data = "", "" }()
		switch event {
		case api.EventRule:
			var n api.Node
			if err := json.Unmarshal([]byte(data), &n); err != nil {
				return nil, false, fmt.Errorf("client: bad rule event %q: %w", data, err)
			}
			if opts.OnRule != nil && !opts.OnRule(&n) {
				return nil, true, nil
			}
		case api.EventRefine:
			var n api.Node
			if err := json.Unmarshal([]byte(data), &n); err != nil {
				return nil, false, fmt.Errorf("client: bad refine event %q: %w", data, err)
			}
			if opts.OnRefine != nil {
				opts.OnRefine(&n)
			}
		case api.EventDone:
			var d api.DoneEvent
			if err := json.Unmarshal([]byte(data), &d); err != nil {
				return nil, false, fmt.Errorf("client: bad done event %q: %w", data, err)
			}
			return &d, true, nil
		}
		return nil, false, nil
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data != "" {
				data += "\n"
			}
			data += strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")
		case line == "":
			done, stop, err := flush()
			if err != nil {
				return nil, err
			}
			if done != nil || stop {
				return done, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return nil, fmt.Errorf("client: stream ended without a done event")
}

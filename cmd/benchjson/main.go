// Command benchjson records the search-performance trajectory: it runs
// the BenchmarkBRS configurations (full-table exact search, K=4, warmed
// index, on the Census, Marketing, and StoreSales datasets) and the
// BenchmarkSampledDrill configurations (cold provisional expansion plus
// exact refinement at million-row scale) through the testing package's
// benchmark driver — the programmatic equivalent of
//
//	go test -bench='BenchmarkBRS|BenchmarkSampledDrill' -benchmem
//
// — captures each run's brs.Stats counters, and writes everything as JSON
// so successive PRs leave a machine-readable perf trail.
//
//	go run ./cmd/benchjson -out BENCH_6.json
//
// plus the parallel-scaling axis: BRS/Census/cores={1,2,4,max}
// (benchcfg.CoresAxis), recording how the chunked counting passes scale
// with worker count on the measuring machine, and the answer-cache axis:
// CachedDrill/{cold,warm,concurrent-identical} (BenchmarkCachedDrill's
// configurations), each entry carrying the fraction of requests served
// without a BRS execution as cache_hit_ratio. The file header records
// GOMAXPROCS and NumCPU so parallel wall times are compared like for like.
//
// With -baseline pointing at a checked-in earlier emission and -check set,
// the tool exits nonzero when any benchmark's allocs/op — or a cores=1
// entry's ns/op — regresses more than -tolerance (default 20%) over the
// baseline: the CI guard that keeps string keys and per-candidate
// allocations from creeping back into the BRS inner loops, and the serial
// kernel cost from silently drifting. allocs/op is gated everywhere
// because it is stable across machines; parallel wall times are recorded
// for humans only.
//
// The tool refuses to overwrite an -out file that holds more benchmarks
// than the current run produced (a shrunken suite usually means a broken
// or partial run, not an intentional retirement); -force overrides.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"smartdrill/internal/benchcfg"
	"smartdrill/internal/brs"
	"smartdrill/internal/drill"
	"smartdrill/internal/search"
	"smartdrill/internal/weight"
)

type benchResult struct {
	Name        string    `json:"name"`
	NsPerOp     int64     `json:"ns_per_op"`
	AllocsPerOp int64     `json:"allocs_per_op"`
	BytesPerOp  int64     `json:"bytes_per_op"`
	Iterations  int       `json:"iterations"`
	Rules       int       `json:"rules"`
	Stats       brs.Stats `json:"brs_stats"`
	// CacheHitRatio is the fraction of the CachedDrill entries' requests
	// served without a BRS execution (cache hit or singleflight adoption);
	// absent on entries that never touch the answer cache.
	CacheHitRatio float64 `json:"cache_hit_ratio,omitempty"`
}

type benchFile struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	// GoMaxProcs and NumCPU pin the measuring machine's parallelism: the
	// cores=N and concurrent-identical wall times are only comparable
	// between emissions that agree on them.
	GoMaxProcs int           `json:"gomaxprocs"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchResult `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_6.json", "output JSON path")
	baseline := flag.String("baseline", "", "earlier benchjson emission to compare against")
	check := flag.Bool("check", false, "exit nonzero when a gated metric regresses past -tolerance vs -baseline")
	tolerance := flag.Float64("tolerance", 0.20, "allowed fractional regression on gated metrics")
	force := flag.Bool("force", false, "overwrite -out even when it holds more benchmarks than this run produced")
	flag.Parse()

	file := benchFile{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}
	for _, c := range benchcfg.BRSCases() {
		name := "BRS/" + c.Name
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", name)
		tab := c.Tab() // generation excluded from timings
		tab.Index().Warm()
		w := weight.NewSize(tab.NumCols())
		opts := brs.Options{K: 4, MaxWeight: c.MW}

		// One instrumented run for result shape and search counters (BRS is
		// deterministic, so every timed iteration repeats these numbers).
		results, stats, err := brs.Run(tab.All(), w, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := brs.Run(tab.All(), w, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		file.Benchmarks = append(file.Benchmarks, benchResult{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Rules:       len(results),
			Stats:       stats,
		})
		fmt.Fprintf(os.Stderr, "benchjson: %s: %d ns/op, %d allocs/op, reused=%d postings=%d\n",
			name, r.NsPerOp(), r.AllocsPerOp(), stats.CandidatesReused, stats.PostingsRead)
	}

	// The parallel-scaling axis: full-table Census K=4 at cores ∈
	// {1, 2, 4, max}. cores=1 is the machine-comparable serial kernel cost
	// (compare() gates its ns/op against the baseline); the other points
	// record how the chunked counting passes scale on the measuring
	// machine, whose core count the file also notes per entry via the
	// label→workers mapping printed here.
	{
		tab := benchcfg.Census()
		tab.Index().Warm()
		w := weight.NewSize(tab.NumCols())
		for _, pt := range benchcfg.CoresAxis() {
			name := "BRS/Census/cores=" + pt.Label
			fmt.Fprintf(os.Stderr, "benchjson: running %s (workers=%d)...\n", name, pt.Workers)
			opts := brs.Options{K: 4, MaxWeight: 4, Workers: pt.Workers}
			results, stats, err := brs.Run(tab.All(), w, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
				os.Exit(1)
			}
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := brs.Run(tab.All(), w, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			file.Benchmarks = append(file.Benchmarks, benchResult{
				Name:        name,
				NsPerOp:     r.NsPerOp(),
				AllocsPerOp: r.AllocsPerOp(),
				BytesPerOp:  r.AllocedBytesPerOp(),
				Iterations:  r.N,
				Rules:       len(results),
				Stats:       stats,
			})
			fmt.Fprintf(os.Stderr, "benchjson: %s: %d ns/op, bitmap_words=%d postings=%d\n",
				name, r.NsPerOp(), stats.BitmapWordsRead, stats.PostingsRead)
		}
	}

	for _, c := range benchcfg.SampledCases() {
		name := "SampledDrill/" + c.Name
		fmt.Fprintf(os.Stderr, "benchjson: running %s...\n", name)
		tab := c.Tab() // generation excluded from timings
		tab.Index().Warm()
		cfg := drill.Config{
			K: 4, MaxWeight: c.MW,
			Weighter:        weight.NewSize(tab.NumCols()),
			SampleMemory:    c.Memory,
			MinSampleSize:   c.MinSS,
			SampleThreshold: c.Threshold,
		}
		// expand runs the cold interactive path: fresh session, one Create
		// scan, provisional BRS over the sample.
		expand := func(seed int64) (*drill.Session, error) {
			cfg := cfg
			cfg.Seed = seed
			s, err := drill.NewSession(tab, cfg)
			if err != nil {
				return nil, err
			}
			return s, s.Expand(s.Root())
		}
		probe, err := expand(1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", name, err)
			os.Exit(1)
		}
		if probe.LastMethod == "direct" {
			// Config drift routed the expansion down the exact path; the
			// numbers would silently stop measuring the sampled pipeline.
			fmt.Fprintf(os.Stderr, "benchjson: %s: expansion was not sampled (threshold/minSS drift?)\n", name)
			os.Exit(1)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := expand(int64(i + 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
		file.Benchmarks = append(file.Benchmarks, benchResult{
			Name:        name,
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			Rules:       len(probe.Root().Children),
			Stats:       probe.LastStats,
		})
		fmt.Fprintf(os.Stderr, "benchjson: %s: %d ns/op, %d allocs/op, sampled_rows=%d\n",
			name, r.NsPerOp(), r.AllocsPerOp(), probe.LastStats.SampledRowsScanned)

		rr := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, err := expand(int64(i + 1))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for _, n := range s.ProvisionalNodes() {
					s.RefineNode(n)
				}
			}
		})
		file.Benchmarks = append(file.Benchmarks, benchResult{
			Name:        name + "/refine",
			NsPerOp:     rr.NsPerOp(),
			AllocsPerOp: rr.AllocsPerOp(),
			BytesPerOp:  rr.AllocedBytesPerOp(),
			Iterations:  rr.N,
			Rules:       len(probe.Root().Children),
		})
		fmt.Fprintf(os.Stderr, "benchjson: %s/refine: %d ns/op\n", name, rr.NsPerOp())
	}

	// The answer-cache axis (BenchmarkCachedDrill's configurations): the
	// full-table Census expansion cold (every iteration executes), warm
	// (fresh sessions replay one shared service's cached answer), and under
	// a 10-way identical stampede (singleflight collapses the herd onto one
	// execution). cache_hit_ratio records the fraction of requests served
	// without running BRS.
	{
		tab := benchcfg.Census()
		tab.Index().Warm()
		newSession := func(svc *search.Service) *drill.Session {
			s, err := drill.NewSession(tab, drill.Config{
				K: 4, MaxWeight: 4,
				Weighter: weight.NewSize(tab.NumCols()),
				Search:   svc,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: CachedDrill: %v\n", err)
				os.Exit(1)
			}
			return s
		}
		expand := func(s *drill.Session) {
			if err := s.Expand(s.Root()); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: CachedDrill: %v\n", err)
				os.Exit(1)
			}
		}
		record := func(name string, r testing.BenchmarkResult, probe *drill.Session, ratio float64) {
			file.Benchmarks = append(file.Benchmarks, benchResult{
				Name:          name,
				NsPerOp:       r.NsPerOp(),
				AllocsPerOp:   r.AllocsPerOp(),
				BytesPerOp:    r.AllocedBytesPerOp(),
				Iterations:    r.N,
				Rules:         len(probe.Root().Children),
				Stats:         probe.LastStats,
				CacheHitRatio: ratio,
			})
			fmt.Fprintf(os.Stderr, "benchjson: %s: %d ns/op, %d allocs/op, hit-ratio=%.2f\n",
				name, r.NsPerOp(), r.AllocsPerOp(), ratio)
		}

		fmt.Fprintln(os.Stderr, "benchjson: running CachedDrill/cold...")
		var coldProbe *drill.Session
		cold := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := newSession(search.NewService(search.Config{}))
				expand(s)
				coldProbe = s
			}
		})
		record("CachedDrill/cold", cold, coldProbe, 0)

		fmt.Fprintln(os.Stderr, "benchjson: running CachedDrill/warm...")
		warmSvc := search.NewService(search.Config{})
		prime := newSession(warmSvc)
		expand(prime)
		var warmProbe *drill.Session
		warm := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := newSession(warmSvc)
				expand(s)
				warmProbe = s
			}
		})
		wc := warmSvc.Counters()
		record("CachedDrill/warm", warm, warmProbe, float64(wc.Hits)/float64(wc.Hits+wc.Misses))

		fmt.Fprintln(os.Stderr, "benchjson: running CachedDrill/concurrent-identical...")
		var stampedeProbe *drill.Session
		var served, total int64
		stampede := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			served, total = 0, 0
			for i := 0; i < b.N; i++ {
				svc := search.NewService(search.Config{})
				var wg sync.WaitGroup
				sessions := make([]*drill.Session, 10)
				for g := range sessions {
					sessions[g] = newSession(svc)
					wg.Add(1)
					go func(s *drill.Session) {
						defer wg.Done()
						expand(s)
					}(sessions[g])
				}
				wg.Wait()
				stampedeProbe = sessions[0]
				c := svc.Counters()
				served += c.Hits + c.SingleflightWaits
				total += int64(len(sessions))
			}
		})
		record("CachedDrill/concurrent-identical", stampede, stampedeProbe, float64(served)/float64(total))
	}

	if !*force {
		if err := guardOverwrite(*out, file); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	buf, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %s\n", *out)

	if *baseline == "" {
		return
	}
	old, err := readBench(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
		os.Exit(1)
	}
	failed := compare(old, file, *tolerance)
	if failed && *check {
		os.Exit(1)
	}
}

// guardOverwrite refuses to clobber an existing emission at path with a
// smaller one: fewer benchmarks means the tool was run with part of the
// suite missing (a renamed case, a partial hand-edit of the runner) and
// overwriting would silently erase recorded trajectory. -force overrides
// after a deliberate suite shrink. A missing or unparseable file never
// blocks — there is nothing meaningful to protect.
func guardOverwrite(path string, fresh benchFile) error {
	old, err := readBench(path)
	if err != nil {
		return nil
	}
	if len(old.Benchmarks) > len(fresh.Benchmarks) {
		return fmt.Errorf("refusing to overwrite %s: it holds %d benchmarks, this run produced %d (use -force after a deliberate suite shrink)",
			path, len(old.Benchmarks), len(fresh.Benchmarks))
	}
	return nil
}

func readBench(path string) (benchFile, error) {
	var f benchFile
	buf, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	return f, json.Unmarshal(buf, &f)
}

// compare reports each benchmark against the baseline and returns true
// when any gated metric regresses past the tolerance (or a baseline
// benchmark disappeared). allocs/op is gated everywhere — allocation
// counts are machine-stable. ns/op is additionally gated on the cores=1
// entries: the serial kernel cost is the one wall time whose trajectory
// must not drift, and at one worker it is free of scheduler noise (CI
// runners vary in cores, not so much in per-core speed).
func compare(old, new benchFile, tolerance float64) (failed bool) {
	byName := make(map[string]benchResult, len(new.Benchmarks))
	for _, b := range new.Benchmarks {
		byName[b.Name] = b
	}
	for _, o := range old.Benchmarks {
		n, ok := byName[o.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: present in baseline, missing from this run\n", o.Name)
			failed = true
			continue
		}
		bad := false
		if o.AllocsPerOp > 0 {
			ratio := float64(n.AllocsPerOp) / float64(o.AllocsPerOp)
			if ratio > 1+tolerance {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: allocs/op %d vs baseline %d (%.0f%% regression > %.0f%% tolerance)\n",
					o.Name, n.AllocsPerOp, o.AllocsPerOp, (ratio-1)*100, tolerance*100)
				bad = true
			}
		}
		if strings.Contains(o.Name, "cores=1") && o.NsPerOp > 0 {
			ratio := float64(n.NsPerOp) / float64(o.NsPerOp)
			if ratio > 1+tolerance {
				fmt.Fprintf(os.Stderr, "benchjson: FAIL %s: ns/op %d vs baseline %d (%.0f%% regression > %.0f%% tolerance)\n",
					o.Name, n.NsPerOp, o.NsPerOp, (ratio-1)*100, tolerance*100)
				bad = true
			}
		}
		if bad {
			failed = true
			continue
		}
		fmt.Fprintf(os.Stderr, "benchjson: ok   %s: allocs/op %d vs baseline %d\n", o.Name, n.AllocsPerOp, o.AllocsPerOp)
	}
	return failed
}

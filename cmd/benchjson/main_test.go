package main

import (
	"os"
	"path/filepath"
	"testing"
)

func emission(names ...string) benchFile {
	f := benchFile{GoVersion: "go-test"}
	for _, n := range names {
		f.Benchmarks = append(f.Benchmarks, benchResult{Name: n, NsPerOp: 100, AllocsPerOp: 10})
	}
	return f
}

func writeEmission(t *testing.T, path string, f benchFile) {
	t.Helper()
	buf := []byte(`{"generated_at":"t","go_version":"go-test","benchmarks":[`)
	for i, b := range f.Benchmarks {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, []byte(`{"name":"`+b.Name+`"}`)...)
	}
	buf = append(buf, []byte(`]}`)...)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGuardOverwrite pins the staleness guard: a fresh emission with
// fewer benchmarks than the file it would replace is refused, equal or
// larger emissions pass, and missing or corrupt existing files never
// block a write.
func TestGuardOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH.json")
	writeEmission(t, path, emission("a", "b", "c"))

	if err := guardOverwrite(path, emission("a", "b")); err == nil {
		t.Fatal("overwriting 3 benchmarks with 2 was allowed")
	}
	if err := guardOverwrite(path, emission()); err == nil {
		t.Fatal("overwriting 3 benchmarks with 0 was allowed")
	}
	if err := guardOverwrite(path, emission("a", "b", "c")); err != nil {
		t.Fatalf("equal-size overwrite refused: %v", err)
	}
	if err := guardOverwrite(path, emission("a", "b", "c", "d")); err != nil {
		t.Fatalf("larger overwrite refused: %v", err)
	}
	if err := guardOverwrite(filepath.Join(dir, "absent.json"), emission("a")); err != nil {
		t.Fatalf("missing file blocked a write: %v", err)
	}
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := guardOverwrite(corrupt, emission("a")); err != nil {
		t.Fatalf("corrupt file blocked a write: %v", err)
	}
}

// TestCompareGates pins the regression gates: allocs/op everywhere,
// ns/op additionally on cores=1 entries only — parallel points may have
// noisy wall times, the serial kernel cost may not drift.
func TestCompareGates(t *testing.T) {
	mk := func(name string, ns, allocs int64) benchResult {
		return benchResult{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
	}
	base := benchFile{Benchmarks: []benchResult{
		mk("BRS/Census", 1000, 100),
		mk("BRS/Census/cores=1", 1000, 100),
		mk("BRS/Census/cores=max", 1000, 100),
	}}

	run := func(results ...benchResult) bool {
		return compare(base, benchFile{Benchmarks: results}, 0.20)
	}

	if run(mk("BRS/Census", 1000, 100), mk("BRS/Census/cores=1", 1000, 100), mk("BRS/Census/cores=max", 1000, 100)) {
		t.Fatal("identical run flagged as regression")
	}
	// Within tolerance on every gated metric.
	if run(mk("BRS/Census", 5000, 115), mk("BRS/Census/cores=1", 1150, 115), mk("BRS/Census/cores=max", 9000, 115)) {
		t.Fatal("within-tolerance run flagged as regression")
	}
	// allocs/op regression anywhere fails.
	if !run(mk("BRS/Census", 1000, 130), mk("BRS/Census/cores=1", 1000, 100), mk("BRS/Census/cores=max", 1000, 100)) {
		t.Fatal("allocs/op regression not flagged")
	}
	// ns/op regression on cores=1 fails...
	if !run(mk("BRS/Census", 1000, 100), mk("BRS/Census/cores=1", 1300, 100), mk("BRS/Census/cores=max", 1000, 100)) {
		t.Fatal("cores=1 ns/op regression not flagged")
	}
	// ...but the same slowdown on other entries is recorded, not gated.
	if run(mk("BRS/Census", 9000, 100), mk("BRS/Census/cores=1", 1000, 100), mk("BRS/Census/cores=max", 9000, 100)) {
		t.Fatal("non-cores=1 wall time was gated")
	}
	// A vanished benchmark fails.
	if !run(mk("BRS/Census", 1000, 100), mk("BRS/Census/cores=1", 1000, 100)) {
		t.Fatal("missing benchmark not flagged")
	}
}

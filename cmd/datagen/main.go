// Command datagen writes the synthetic evaluation datasets to CSV so they
// can be explored with cmd/smartdrill, served by cmd/smartdrilld, or fed
// to external tools.
//
// Usage:
//
//	datagen -dataset store|marketing|census [-n ROWS] [-cols K] [-seed S] -out file.csv
//
// -cols projects the census dataset to its first K columns (the paper's
// experiments use 7), which generates million-row tables in seconds — the
// input for the sampled drill-down demo in the README.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartdrill/internal/datagen"
	"smartdrill/internal/table"
)

func main() {
	log.SetFlags(0)
	var (
		dataset = flag.String("dataset", "", "store, marketing, or census")
		n       = flag.Int("n", 0, "row count (0 = dataset default)")
		cols    = flag.Int("cols", 0, "project census to its first K columns (0 = all 68)")
		seed    = flag.Int64("seed", 42, "generation seed")
		out     = flag.String("out", "", "output CSV path")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("datagen: -out is required")
	}

	var t *table.Table
	switch *dataset {
	case "store":
		t = datagen.StoreSales(*seed)
	case "marketing":
		rows := *n
		if rows <= 0 {
			rows = datagen.MarketingN
		}
		t = datagen.Marketing(rows, *seed)
	case "census":
		rows := *n
		if rows <= 0 {
			rows = 200000
		}
		if *cols > 0 {
			t = datagen.CensusProjected(rows, *cols, *seed)
		} else {
			t = datagen.Census(rows, *seed)
		}
	default:
		log.Fatalf("datagen: unknown -dataset %q", *dataset)
	}
	if err := t.WriteCSVFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d rows × %d columns to %s\n", t.NumRows(), t.NumCols(), *out)
}

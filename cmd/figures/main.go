// Command figures regenerates the paper's tables and figures. Each
// subcommand performs the corresponding experiment and prints the rows or
// rule tables the paper reports.
//
// Usage:
//
//	figures tables            # Tables 1–3 (department-store example)
//	figures fig1 ... fig7     # qualitative Marketing figures
//	figures fig5              # time vs mw sweep
//	figures fig8              # time/error/incorrect vs minSS sweep
//	figures scaling           # Section 5.2.3 table-size sweep
//	figures workload          # simulated-analyst hit-rate extension
//	figures all               # everything
//
// Flags:
//
//	-census-n   rows of synthetic Census data (default 200000)
//	-marketing-n rows of synthetic Marketing data (default 9409)
//	-trials     trials per sweep point (default 3)
//	-seed       dataset seed (default 7)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"smartdrill"
	"smartdrill/internal/datagen"
	"smartdrill/internal/eval"
	"smartdrill/internal/table"
)

var (
	censusN    = flag.Int("census-n", 200000, "synthetic Census rows (paper: 2458285)")
	marketingN = flag.Int("marketing-n", datagen.MarketingN, "synthetic Marketing rows")
	trials     = flag.Int("trials", 3, "trials per sweep point")
	seed       = flag.Int64("seed", 7, "dataset generation seed")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	cmds := flag.Args()
	if len(cmds) == 0 {
		cmds = []string{"all"}
	}
	for _, cmd := range cmds {
		switch cmd {
		case "tables":
			tables()
		case "fig1", "fig2", "fig3", "fig4", "fig6", "fig7":
			qualitative(cmd)
		case "fig5":
			fig5()
		case "fig8":
			fig8()
		case "scaling":
			scaling()
		case "workload":
			workloadCmd()
		case "all":
			tables()
			for _, f := range []string{"fig1", "fig2", "fig3", "fig4", "fig6", "fig7"} {
				qualitative(f)
			}
			fig5()
			fig8()
			scaling()
			workloadCmd()
		default:
			log.Fatalf("figures: unknown subcommand %q", cmd)
		}
	}
}

var marketingCache *table.Table

func marketing7() *table.Table {
	if marketingCache == nil {
		full := datagen.Marketing(*marketingN, *seed)
		t, err := full.ProjectFirst(7)
		if err != nil {
			log.Fatal(err)
		}
		marketingCache = t
	}
	return marketingCache
}

var censusCache *table.Table

func census7() *table.Table {
	if censusCache == nil {
		censusCache = datagen.CensusProjected(*censusN, 7, *seed)
	}
	return censusCache
}

func tables() {
	t := datagen.StoreSales(*seed)
	e, err := smartdrill.New(t, smartdrill.WithK(3))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Table 1 ==")
	fmt.Println(e.Render())
	must(e.DrillDown(e.Root()))
	fmt.Println("== Table 2 ==")
	fmt.Println(e.Render())
	walmart, err := e.EncodeRule(map[string]string{"Store": "Walmart"})
	must(err)
	if n := e.FindNode(walmart); n != nil {
		must(e.DrillDown(n))
	}
	fmt.Println("== Table 3 ==")
	fmt.Println(e.Render())
}

func qualitative(name string) {
	cfg := eval.QualitativeConfig{Marketing: marketing7(), K: 4}
	fmt.Printf("== %s (Marketing, k=4) ==\n", name)
	switch name {
	case "fig1":
		fmt.Println(cfg.Fig1())
	case "fig2":
		out, err := cfg.Fig2()
		must(err)
		fmt.Println(out)
	case "fig3":
		out, err := cfg.Fig3()
		must(err)
		fmt.Println(out)
	case "fig4":
		baselineT, smartT, err := cfg.Fig4()
		must(err)
		fmt.Println("-- traditional GROUP BY drill-down on Age --")
		fmt.Println(baselineT)
		fmt.Println("-- same result via smart drill-down with ColumnDrill weighting --")
		fmt.Println(smartT)
	case "fig6":
		fmt.Println(cfg.Fig6())
	case "fig7":
		fmt.Println(cfg.Fig7())
	}
}

func fig5() {
	fmt.Println("== Figure 5: time to expand the empty rule vs mw ==")
	rows := eval.Fig5Sweep(eval.Fig5Config{
		Datasets: []eval.Dataset{
			{Name: "Marketing", Table: marketing7()},
			{Name: "Census", Table: census7(), Memory: 50000, MinSS: 5000},
		},
		MWs:    []float64{1, 2, 3, 4, 5, 6, 8, 10, 12, 14, 16, 18, 20},
		K:      4,
		Trials: *trials,
	})
	eval.SortFig5(rows)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Weighting,
			strconv.FormatFloat(r.MW, 'g', -1, 64),
			fmt.Sprintf("%.1f", r.Millis),
			strconv.Itoa(r.Passes),
			strconv.Itoa(r.Counted),
			strconv.Itoa(r.Pruned),
		})
	}
	eval.WriteTable(os.Stdout, []string{"Dataset", "Weighting", "mw", "ms", "passes", "counted", "pruned"}, cells)
	fmt.Println()
}

func fig8() {
	fmt.Println("== Figure 8: time / count error / incorrect rules vs minSS ==")
	rows := eval.Fig8Sweep(eval.Fig8Config{
		Datasets: []eval.Dataset{
			{Name: "Marketing", Table: marketing7()},
			{Name: "Census", Table: census7()},
		},
		MinSSs: []int{500, 1000, 2000, 3000, 4000, 5000, 6000, 8000},
		K:      4,
		Trials: *trials,
	})
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Weighting, strconv.Itoa(r.MinSS),
			fmt.Sprintf("%.1f", r.Millis),
			fmt.Sprintf("%.3f", r.PctError),
			fmt.Sprintf("%.2f", r.IncorrectRules),
		})
	}
	eval.WriteTable(os.Stdout, []string{"Dataset", "Weighting", "minSS", "ms", "pct_err", "incorrect"}, cells)
	fmt.Println()
}

func workloadCmd() {
	fmt.Println("== Extension: sampled-session hit rates (simulated analyst, 25 drills) ==")
	rows, err := eval.WorkloadSweep(census7(), 25, 1, 11)
	must(err)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Config, strconv.Itoa(r.Steps), strconv.Itoa(r.Direct),
			strconv.Itoa(r.Find), strconv.Itoa(r.Combine), strconv.Itoa(r.Create),
			strconv.FormatInt(r.FullScans, 10),
			fmt.Sprintf("%.0f%%", 100*r.HitRate),
		})
	}
	eval.WriteTable(os.Stdout,
		[]string{"config", "steps", "direct", "find", "combine", "create", "scans", "hit"}, cells)
	fmt.Println()
}

func scaling() {
	fmt.Println("== Section 5.2.3: expansion time vs table size (minSS=5000) ==")
	rows := eval.ScalingSweep(func(n int) *table.Table {
		return datagen.CensusProjected(n, 7, *seed)
	}, []int{20000, 50000, 100000, 200000, 400000}, 5000, 4)
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			strconv.Itoa(r.Rows), strconv.Itoa(r.MinSS),
			fmt.Sprintf("%.1f", r.Millis), fmt.Sprintf("%.1f", r.ScanMS), r.Method,
		})
	}
	eval.WriteTable(os.Stdout, []string{"rows", "minSS", "ms", "scan_ms", "method"}, cells)
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

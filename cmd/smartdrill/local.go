package main

// localBackend drives an in-process Engine — the original single-binary
// mode.

import (
	"os"
	"time"

	"smartdrill"
)

type localBackend struct {
	e *smartdrill.Engine
}

// nodeAt resolves a display row index (depth-first order as rendered,
// root = 0) to its node, or nil.
func (b *localBackend) nodeAt(idx int) *smartdrill.Node {
	count := 0
	var walk func(n *smartdrill.Node) *smartdrill.Node
	walk = func(n *smartdrill.Node) *smartdrill.Node {
		if count == idx {
			return n
		}
		count++
		for _, c := range n.Children {
			if f := walk(c); f != nil {
				return f
			}
		}
		return nil
	}
	return walk(b.e.Root())
}

// node resolves a row or reports noRowError.
func (b *localBackend) node(row int) (*smartdrill.Node, error) {
	if n := b.nodeAt(row); n != nil {
		return n, nil
	}
	return nil, noRowError(row)
}

func (b *localBackend) render() (string, error) { return b.e.Render(), nil }

func (b *localBackend) expand(row int) (string, string, error) {
	n, err := b.node(row)
	if err != nil {
		return "", "", err
	}
	if err := b.e.DrillDown(n); err != nil {
		return "", "", err
	}
	return b.e.LastAccessMethod(), b.e.Render(), nil
}

func (b *localBackend) star(row int, column string) (string, string, error) {
	n, err := b.node(row)
	if err != nil {
		return "", "", err
	}
	if err := b.e.DrillDownStar(n, column); err != nil {
		return "", "", err
	}
	return b.e.LastAccessMethod(), b.e.Render(), nil
}

func (b *localBackend) collapse(row int) (string, error) {
	n, err := b.node(row)
	if err != nil {
		return "", err
	}
	b.e.Collapse(n)
	return b.e.Render(), nil
}

func (b *localBackend) stream(row int, budget time.Duration, onRule func(string, float64)) (string, error) {
	n, err := b.node(row)
	if err != nil {
		return "", err
	}
	err = b.e.DrillDownStream(n, 0, budget, func(child *smartdrill.Node) bool {
		onRule(b.e.DescribeRule(child), child.Count)
		return true
	})
	if err != nil {
		return "", err
	}
	return b.e.Render(), nil
}

func (b *localBackend) ci(row int) (string, float64, float64, float64, error) {
	n, err := b.node(row)
	if err != nil {
		return "", 0, 0, 0, err
	}
	lo, hi := b.e.ConfidenceInterval(n)
	return b.e.DescribeRule(n), n.Count, lo, hi, nil
}

func (b *localBackend) traditional(row int, column string) ([]group, error) {
	n, err := b.node(row)
	if err != nil {
		return nil, err
	}
	gs, err := b.e.TraditionalDrillDown(n, column)
	if err != nil {
		return nil, err
	}
	out := make([]group, len(gs))
	for i, g := range gs {
		out[i] = group{value: g.Value, count: g.Count}
	}
	return out, nil
}

func (b *localBackend) save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.e.SaveState(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (b *localBackend) load(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	if err := b.e.LoadState(f); err != nil {
		return "", err
	}
	return b.e.Render(), nil
}

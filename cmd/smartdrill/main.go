// Command smartdrill is an interactive smart drill-down REPL over a CSV
// file — the terminal analogue of the paper's web prototype.
//
// Usage:
//
//	smartdrill -csv data.csv [-measures Sales] [-k 3] [-weight size|bits|size-1]
//	           [-sample-mem 50000] [-minss 5000] [-demo store|marketing|census]
//
// Commands at the prompt:
//
//	show                 print the current rule tree
//	expand <row>         smart drill-down on the rule at that display row
//	stream <row> [secs]  anytime drill-down: print rules as found
//	star <row> <column>  star drill-down on a column of that rule
//	collapse <row>       roll up
//	drill <row> <column> traditional drill-down listing (read-only)
//	ci <row>             95% confidence interval on an estimated count
//	save <file> / load <file>  persist or restore the exploration
//	help, quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"smartdrill"
	"smartdrill/internal/datagen"
)

func main() {
	log.SetFlags(0)
	var (
		csvPath   = flag.String("csv", "", "CSV file to explore")
		measures  = flag.String("measures", "", "comma-separated measure column names")
		k         = flag.Int("k", 3, "rules per expansion")
		weightStr = flag.String("weight", "size", "weighting: size, bits, or size-1")
		sampleMem = flag.Int("sample-mem", 0, "sample memory budget in tuples (0 = no sampling)")
		minSS     = flag.Int("minss", 0, "minimum sample size (0 = no sampling)")
		demo      = flag.String("demo", "", "built-in dataset instead of -csv: store, marketing, census")
		sum       = flag.String("sum", "", "optimize Sum over this measure column instead of Count")
	)
	flag.Parse()

	t, err := loadTable(*csvPath, *measures, *demo)
	if err != nil {
		log.Fatal(err)
	}

	opts := []smartdrill.Option{smartdrill.WithK(*k)}
	switch *weightStr {
	case "size":
		opts = append(opts, smartdrill.WithWeighter(smartdrill.SizeWeight(t)))
	case "bits":
		opts = append(opts, smartdrill.WithWeighter(smartdrill.BitsWeight(t)))
	case "size-1":
		opts = append(opts, smartdrill.WithWeighter(smartdrill.SizeMinusOneWeight()))
	default:
		log.Fatalf("unknown -weight %q", *weightStr)
	}
	if *sampleMem > 0 && *minSS > 0 {
		opts = append(opts, smartdrill.WithSampling(*sampleMem, *minSS), smartdrill.WithPrefetch())
	}
	if *sum != "" {
		o, err := smartdrill.WithSum(t, *sum)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, o)
	}

	e, err := smartdrill.New(t, opts...)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("smart drill-down: %d rows × %d columns. Type 'help' for commands.\n\n",
		t.NumRows(), t.NumCols())
	fmt.Println(e.Render())

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Println("show | expand <row> | stream <row> [secs] | star <row> <column> | collapse <row> |")
			fmt.Println("drill <row> <column> | ci <row> | save <file> | load <file> | quit")
		case "save", "load":
			if len(fields) < 2 {
				fmt.Println("usage:", fields[0], "<file>")
				continue
			}
			if err := saveOrLoad(e, fields[0], fields[1]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			if fields[0] == "load" {
				fmt.Println(e.Render())
			} else {
				fmt.Println("saved to", fields[1])
			}
		case "show":
			fmt.Println(e.Render())
		case "expand", "collapse", "star", "drill", "stream", "ci":
			if len(fields) < 2 {
				fmt.Println("need a display row number (root is 0)")
				continue
			}
			idx, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("row must be a number:", err)
				continue
			}
			n := nodeAt(e, idx)
			if n == nil {
				fmt.Printf("no displayed rule at row %d\n", idx)
				continue
			}
			switch fields[0] {
			case "expand":
				if err := e.DrillDown(n); err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("(access: %s)\n%s\n", e.LastAccessMethod(), e.Render())
			case "collapse":
				e.Collapse(n)
				fmt.Println(e.Render())
			case "star":
				if len(fields) < 3 {
					fmt.Println("usage: star <row> <column>")
					continue
				}
				if err := e.DrillDownStar(n, fields[2]); err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Printf("(access: %s)\n%s\n", e.LastAccessMethod(), e.Render())
			case "drill":
				if len(fields) < 3 {
					fmt.Println("usage: drill <row> <column>")
					continue
				}
				groups, err := e.TraditionalDrillDown(n, fields[2])
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				for _, g := range groups {
					fmt.Printf("  %-20s %10.0f\n", g.Value, g.Count)
				}
			case "stream":
				budget := 5 * time.Second
				if len(fields) >= 3 {
					secs, err := strconv.Atoi(fields[2])
					if err != nil || secs <= 0 {
						fmt.Println("seconds must be a positive number")
						continue
					}
					budget = time.Duration(secs) * time.Second
				}
				err := e.DrillDownStream(n, 0, budget, func(child *smartdrill.Node) bool {
					fmt.Printf("  found %-50s count %.0f\n", e.DescribeRule(child), child.Count)
					return true
				})
				if err != nil {
					fmt.Println("error:", err)
					continue
				}
				fmt.Println(e.Render())
			case "ci":
				lo, hi := e.ConfidenceInterval(n)
				fmt.Printf("  %s: count %.0f, 95%% interval [%.0f, %.0f]\n",
					e.DescribeRule(n), n.Count, lo, hi)
			}
		default:
			fmt.Printf("unknown command %q (try 'help')\n", fields[0])
		}
	}
}

func loadTable(csvPath, measures, demo string) (*smartdrill.Table, error) {
	switch demo {
	case "store":
		return datagen.StoreSales(42), nil
	case "marketing":
		t := datagen.Marketing(datagen.MarketingN, 7)
		return t.ProjectFirst(7)
	case "census":
		return datagen.CensusProjected(200000, 7, 7), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown -demo %q (store, marketing, census)", demo)
	}
	if csvPath == "" {
		return nil, fmt.Errorf("either -csv or -demo is required")
	}
	var ms []string
	if measures != "" {
		ms = strings.Split(measures, ",")
	}
	return smartdrill.LoadCSV(csvPath, ms)
}

// saveOrLoad persists or restores the exploration tree.
func saveOrLoad(e *smartdrill.Engine, op, path string) error {
	if op == "save" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := e.SaveState(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return e.LoadState(f)
}

// nodeAt resolves a display row index (depth-first order as rendered,
// root = 0) to its node.
func nodeAt(e *smartdrill.Engine, idx int) *smartdrill.Node {
	count := 0
	var walk func(n *smartdrill.Node) *smartdrill.Node
	walk = func(n *smartdrill.Node) *smartdrill.Node {
		if count == idx {
			return n
		}
		count++
		for _, c := range n.Children {
			if f := walk(c); f != nil {
				return f
			}
		}
		return nil
	}
	return walk(e.Root())
}

// Command smartdrill is an interactive smart drill-down REPL — the
// terminal analogue of the paper's web prototype. It runs in two modes:
//
// Local (default): load a CSV (or a built-in demo dataset) and explore it
// in process.
//
//	smartdrill -csv data.csv [-measures Sales] [-k 3] [-weight size|bits|size-1]
//	           [-sample-mem 50000] [-minss 5000] [-demo store|marketing|census]
//
// Remote: drive a running smartdrilld server through the v1 API and the
// client SDK — the same commands, the same output, with the session (and
// the data) living on the server.
//
//	smartdrill -remote http://localhost:8080 [-dataset store] [-k 3] ...
//
// Commands at the prompt:
//
//	show                 print the current rule tree
//	expand <row>         smart drill-down on the rule at that display row
//	stream <row> [secs]  anytime drill-down: print rules as found
//	star <row> <column>  star drill-down on a column of that rule
//	collapse <row>       roll up
//	drill <row> <column> traditional drill-down listing (read-only)
//	ci <row>             95% confidence interval on an estimated count
//	save <file> / load <file>  persist or restore the exploration (local mode)
//	help, quit
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"smartdrill"
	"smartdrill/api"
	"smartdrill/client"
	"smartdrill/internal/datagen"
)

func main() {
	log.SetFlags(0)
	var (
		csvPath   = flag.String("csv", "", "CSV file to explore (local mode)")
		measures  = flag.String("measures", "", "comma-separated measure column names")
		k         = flag.Int("k", 3, "rules per expansion")
		weightStr = flag.String("weight", "size", "weighting: size, bits, or size-1")
		sampleMem = flag.Int("sample-mem", 0, "sample memory budget in tuples (0 = no sampling)")
		minSS     = flag.Int("minss", 0, "minimum sample size (0 = no sampling)")
		demo      = flag.String("demo", "", "built-in dataset instead of -csv: store, marketing, census")
		sum       = flag.String("sum", "", "optimize Sum over this measure column instead of Count")
		remote    = flag.String("remote", "", "smartdrilld base URL: drive a server through the v1 API instead of exploring locally")
		dataset   = flag.String("dataset", "store", "server-side dataset name (remote mode)")
	)
	flag.Parse()

	var (
		b          backend
		rows, cols int
	)
	if *remote != "" {
		var err error
		b, rows, cols, err = connectRemote(*remote, *dataset, *k, *weightStr, *sampleMem, *minSS, *sum)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		e, err := buildLocalEngine(*csvPath, *measures, *demo, *k, *weightStr, *sampleMem, *minSS, *sum)
		if err != nil {
			log.Fatal(err)
		}
		b = &localBackend{e: e}
		rows, cols = e.Table().NumRows(), e.Table().NumCols()
	}

	fmt.Printf("smart drill-down: %d rows × %d columns. Type 'help' for commands.\n\n", rows, cols)
	rendered, err := b.render()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rendered)
	runREPL(os.Stdin, os.Stdout, b)
}

// buildLocalEngine assembles the in-process session from the flags.
func buildLocalEngine(csvPath, measures, demo string, k int, weightStr string, sampleMem, minSS int, sum string) (*smartdrill.Engine, error) {
	t, err := loadTable(csvPath, measures, demo)
	if err != nil {
		return nil, err
	}
	opts := []smartdrill.Option{smartdrill.WithK(k)}
	w, err := smartdrill.WeighterByName(t, weightStr)
	if err != nil {
		return nil, err
	}
	opts = append(opts, smartdrill.WithWeighter(w))
	if sampleMem > 0 && minSS > 0 {
		opts = append(opts, smartdrill.WithSampling(sampleMem, minSS), smartdrill.WithPrefetch())
	}
	if sum != "" {
		o, err := smartdrill.WithSum(t, sum)
		if err != nil {
			return nil, err
		}
		opts = append(opts, o)
	}
	return smartdrill.New(t, opts...)
}

// connectRemote builds the SDK-backed session from the flags, returning
// the dataset's shape for the banner.
func connectRemote(base, dataset string, k int, weightStr string, sampleMem, minSS int, sum string) (backend, int, int, error) {
	c := client.New(base)
	req := api.CreateSessionRequest{
		Dataset:       dataset,
		K:             k,
		Weighter:      weightStr,
		SampleMemory:  sampleMem,
		MinSampleSize: minSS,
		Prefetch:      sampleMem > 0 && minSS > 0, // mirror local mode's sampling setup
		Sum:           sum,
	}
	b, tree, err := newRemoteBackend(c, req)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("connecting to %s: %w", base, err)
	}
	// The banner reports the dataset's shape, not the root aggregate
	// (which is a Sum under -sum); ask the server for the row count.
	ds, err := c.Datasets(context.Background())
	if err != nil {
		return nil, 0, 0, fmt.Errorf("listing datasets on %s: %w", base, err)
	}
	rows := 0
	for _, d := range ds {
		if d.Name == dataset {
			rows = d.Rows
		}
	}
	return b, rows, len(tree.Columns), nil
}

func loadTable(csvPath, measures, demo string) (*smartdrill.Table, error) {
	switch demo {
	case "store":
		return datagen.StoreSales(42), nil
	case "marketing":
		t := datagen.Marketing(datagen.MarketingN, 7)
		return t.ProjectFirst(7)
	case "census":
		return datagen.CensusProjected(200000, 7, 7), nil
	case "":
	default:
		return nil, fmt.Errorf("unknown -demo %q (store, marketing, census)", demo)
	}
	if csvPath == "" {
		return nil, fmt.Errorf("either -csv or -demo is required (or -remote <url> for server mode)")
	}
	var ms []string
	if measures != "" {
		ms = strings.Split(measures, ",")
	}
	return smartdrill.LoadCSV(csvPath, ms)
}

package main

// remoteBackend rebuilds the whole REPL on the v1 API through the client
// SDK: every command becomes one or two HTTP requests against a
// smartdrilld server, with nodes addressed by their stable wire IDs. Its
// outputs are byte-identical to localBackend's on the same session — the
// proof (transcript-tested) that the wire contract is complete enough to
// build the CLI on.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"smartdrill/api"
	"smartdrill/client"
)

type remoteBackend struct {
	c         *client.Client
	sessionID string
}

// newRemoteBackend creates a session for the REPL on the named dataset.
func newRemoteBackend(c *client.Client, req api.CreateSessionRequest) (*remoteBackend, *api.Tree, error) {
	tree, err := c.CreateSession(context.Background(), req)
	if err != nil {
		return nil, nil, err
	}
	return &remoteBackend{c: c, sessionID: tree.ID}, tree, nil
}

// fetch pulls the session's current tree.
func (b *remoteBackend) fetch() (*api.Tree, error) {
	return b.c.Tree(context.Background(), b.sessionID)
}

// nodeAt resolves a display row (pre-order, root = 0) against a fresh
// tree fetch — the remote analogue of walking the engine's tree.
func (b *remoteBackend) nodeAt(row int) (*api.Node, error) {
	tree, err := b.fetch()
	if err != nil {
		return nil, err
	}
	count := 0
	var walk func(n *api.Node) *api.Node
	walk = func(n *api.Node) *api.Node {
		if count == row {
			return n
		}
		count++
		for _, c := range n.Children {
			if f := walk(c); f != nil {
				return f
			}
		}
		return nil
	}
	if n := walk(tree.Root); n != nil {
		return n, nil
	}
	return nil, noRowError(row)
}

// describe formats a node's rule exactly like Engine.DescribeRule.
func describe(n *api.Node) string {
	return "(" + strings.Join(n.Display, ", ") + ")"
}

// rendered fetches the current rendering after a mutation.
func (b *remoteBackend) rendered() (string, error) {
	tree, err := b.fetch()
	if err != nil {
		return "", err
	}
	return tree.Rendered, nil
}

func (b *remoteBackend) render() (string, error) { return b.rendered() }

func (b *remoteBackend) expand(row int) (string, string, error) {
	n, err := b.nodeAt(row)
	if err != nil {
		return "", "", err
	}
	resp, err := b.c.Drill(context.Background(), b.sessionID, api.DrillRequest{Node: n.ID})
	if err != nil {
		return "", "", err
	}
	rendered, err := b.rendered()
	if err != nil {
		return "", "", err
	}
	return resp.Access, rendered, nil
}

func (b *remoteBackend) star(row int, column string) (string, string, error) {
	n, err := b.nodeAt(row)
	if err != nil {
		return "", "", err
	}
	resp, err := b.c.Drill(context.Background(), b.sessionID, api.DrillRequest{Node: n.ID, Column: column})
	if err != nil {
		return "", "", err
	}
	rendered, err := b.rendered()
	if err != nil {
		return "", "", err
	}
	return resp.Access, rendered, nil
}

func (b *remoteBackend) collapse(row int) (string, error) {
	n, err := b.nodeAt(row)
	if err != nil {
		return "", err
	}
	if _, err := b.c.Collapse(context.Background(), b.sessionID, api.DrillRequest{Node: n.ID}); err != nil {
		return "", err
	}
	return b.rendered()
}

func (b *remoteBackend) stream(row int, budget time.Duration, onRule func(string, float64)) (string, error) {
	n, err := b.nodeAt(row)
	if err != nil {
		return "", err
	}
	done, err := b.c.DrillStream(context.Background(), b.sessionID, client.StreamOptions{
		Node:   n.ID,
		Budget: budget,
		OnRule: func(child *api.Node) bool {
			onRule(describe(child), child.Count)
			return true
		},
	})
	if err != nil {
		return "", err
	}
	// A server-side search failure arrives inside the done event, not as
	// a transport error; surface it like the local engine would.
	if done != nil && done.Error != "" {
		return "", errors.New(done.Error)
	}
	return b.rendered()
}

func (b *remoteBackend) ci(row int) (string, float64, float64, float64, error) {
	n, err := b.nodeAt(row)
	if err != nil {
		return "", 0, 0, 0, err
	}
	lo, hi := n.Count, n.Count
	if n.CI != nil {
		lo, hi = n.CI[0], n.CI[1]
	}
	return describe(n), n.Count, lo, hi, nil
}

func (b *remoteBackend) traditional(row int, column string) ([]group, error) {
	n, err := b.nodeAt(row)
	if err != nil {
		return nil, err
	}
	resp, err := b.c.Traditional(context.Background(), b.sessionID, api.TraditionalRequest{Node: n.ID, Column: column})
	if err != nil {
		return nil, err
	}
	out := make([]group, len(resp.Groups))
	for i, g := range resp.Groups {
		out[i] = group{value: g.Value, count: g.Count}
	}
	return out, nil
}

func (b *remoteBackend) save(string) error {
	return fmt.Errorf("save is not supported in -remote mode (state lives on the server)")
}

func (b *remoteBackend) load(string) (string, error) {
	return "", fmt.Errorf("load is not supported in -remote mode (state lives on the server)")
}

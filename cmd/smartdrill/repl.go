package main

// The REPL proper, factored over a backend interface so the same loop
// (same commands, same output bytes) drives either an in-process Engine
// or a remote smartdrilld server through the client SDK — the -remote
// transcript test asserts the two are bit-identical on a scripted
// session.

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// group is one value group of a traditional drill-down listing.
type group struct {
	value string
	count float64
}

// backend is everything the REPL needs from a drill-down session. Rows are
// display-row indices in the rendered tree (pre-order, root = 0); a
// method given a row with no displayed rule returns a noRowError.
type backend interface {
	// render returns the current rule tree as the paper-style text table.
	render() (string, error)
	// expand smart-drills the rule at row; returns the access method and
	// the updated rendering.
	expand(row int) (access, rendered string, err error)
	// star star-drills the named column of the rule at row.
	star(row int, column string) (access, rendered string, err error)
	// collapse rolls up the rule at row.
	collapse(row int) (rendered string, err error)
	// stream anytime-drills the rule at row, reporting each rule as it is
	// found, and returns the updated rendering.
	stream(row int, budget time.Duration, onRule func(desc string, count float64)) (rendered string, err error)
	// ci returns the rule's description, displayed count, and 95% bounds.
	ci(row int) (desc string, count, lo, hi float64, err error)
	// traditional lists the classic drill-down groups of one column.
	traditional(row int, column string) ([]group, error)
	// save and load persist/restore the exploration (local sessions only).
	save(path string) error
	load(path string) (rendered string, err error)
}

// noRowError reports a display row with no rule behind it.
type noRowError int

func (e noRowError) Error() string { return fmt.Sprintf("no displayed rule at row %d", int(e)) }

// runREPL reads commands from in and writes everything the analyst sees to
// out, until quit or EOF.
func runREPL(in io.Reader, out io.Writer, b backend) {
	sc := bufio.NewScanner(in)
	for {
		fmt.Fprint(out, "> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit", "q":
			return
		case "help":
			fmt.Fprintln(out, "show | expand <row> | stream <row> [secs] | star <row> <column> | collapse <row> |")
			fmt.Fprintln(out, "drill <row> <column> | ci <row> | save <file> | load <file> | quit")
		case "save", "load":
			if len(fields) < 2 {
				fmt.Fprintln(out, "usage:", fields[0], "<file>")
				continue
			}
			if fields[0] == "save" {
				if err := b.save(fields[1]); err != nil {
					fmt.Fprintln(out, "error:", err)
					continue
				}
				fmt.Fprintln(out, "saved to", fields[1])
				continue
			}
			rendered, err := b.load(fields[1])
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, rendered)
		case "show":
			rendered, err := b.render()
			if err != nil {
				fmt.Fprintln(out, "error:", err)
				continue
			}
			fmt.Fprintln(out, rendered)
		case "expand", "collapse", "star", "drill", "stream", "ci":
			if len(fields) < 2 {
				fmt.Fprintln(out, "need a display row number (root is 0)")
				continue
			}
			row, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Fprintln(out, "row must be a number:", err)
				continue
			}
			runNodeCommand(out, b, fields, row)
		default:
			fmt.Fprintf(out, "unknown command %q (try 'help')\n", fields[0])
		}
	}
}

// runNodeCommand dispatches the row-addressed commands. A missing row
// surfaces as the backend's noRowError and prints without the "error:"
// prefix, matching the historical REPL.
func runNodeCommand(out io.Writer, b backend, fields []string, row int) {
	fail := func(err error) {
		var nr noRowError
		if errors.As(err, &nr) {
			fmt.Fprintln(out, err.Error())
			return
		}
		fmt.Fprintln(out, "error:", err)
	}
	switch fields[0] {
	case "expand":
		access, rendered, err := b.expand(row)
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "(access: %s)\n%s\n", access, rendered)
	case "collapse":
		rendered, err := b.collapse(row)
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintln(out, rendered)
	case "star":
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: star <row> <column>")
			return
		}
		access, rendered, err := b.star(row, fields[2])
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "(access: %s)\n%s\n", access, rendered)
	case "drill":
		if len(fields) < 3 {
			fmt.Fprintln(out, "usage: drill <row> <column>")
			return
		}
		groups, err := b.traditional(row, fields[2])
		if err != nil {
			fail(err)
			return
		}
		for _, g := range groups {
			fmt.Fprintf(out, "  %-20s %10.0f\n", g.value, g.count)
		}
	case "stream":
		budget := 5 * time.Second
		if len(fields) >= 3 {
			secs, err := strconv.Atoi(fields[2])
			if err != nil || secs <= 0 {
				fmt.Fprintln(out, "seconds must be a positive number")
				return
			}
			budget = time.Duration(secs) * time.Second
		}
		rendered, err := b.stream(row, budget, func(desc string, count float64) {
			fmt.Fprintf(out, "  found %-50s count %.0f\n", desc, count)
		})
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintln(out, rendered)
	case "ci":
		desc, count, lo, hi, err := b.ci(row)
		if err != nil {
			fail(err)
			return
		}
		fmt.Fprintf(out, "  %s: count %.0f, 95%% interval [%.0f, %.0f]\n", desc, count, lo, hi)
	}
}

package main

// Transcript parity: the acceptance check that -remote rebuilds the CLI
// faithfully on the v1 API. The same scripted session runs against an
// in-process engine and against a real smartdrilld server (httptest)
// through the SDK; the two transcripts must match byte for byte.

import (
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"testing"

	"smartdrill"
	"smartdrill/api"
	"smartdrill/client"
	"smartdrill/internal/datagen"
	"smartdrill/internal/server"
)

// script exercises every remote-capable command: tree display, batch and
// star drills by display row, anytime streaming, traditional listing,
// confidence interval, roll-up, and error paths (missing row, unknown
// command). Exact sessions only — sampled estimates are seed-reproducible
// but the sampled path's displayed estimates differ between a local
// engine and a server session by design of this test (one engine each),
// while exact results are bit-determined by the data.
const script = `show
expand 0
ci 1
star 1 Region
drill 0 Store
collapse 1
stream 0 30
expand 99
bogus 1
quit
`

func runTranscript(t *testing.T, b backend) string {
	t.Helper()
	var out strings.Builder
	runREPL(strings.NewReader(script), &out, b)
	return out.String()
}

func TestRemoteTranscriptBitIdentical(t *testing.T) {
	// Local side: an in-process engine on the paper's running example.
	eng, err := smartdrill.New(datagen.StoreSales(42), smartdrill.WithK(3))
	if err != nil {
		t.Fatal(err)
	}
	local := runTranscript(t, &localBackend{e: eng})

	// Remote side: a real server on the same dataset, driven through the
	// SDK.
	srv := server.New(server.Config{Logger: log.New(io.Discard, "", 0)})
	srv.RegisterDataset("store", datagen.StoreSales(42))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	rb, _, err := newRemoteBackend(client.New(ts.URL), api.CreateSessionRequest{Dataset: "store", K: 3})
	if err != nil {
		t.Fatal(err)
	}
	remote := runTranscript(t, rb)

	if local != remote {
		t.Fatalf("transcripts diverged:\n--- local ---\n%s\n--- remote ---\n%s", local, remote)
	}
	// Paranoia: the transcript actually exercised the session.
	for _, want := range []string{"(access: direct)", "found", "Walmart", "95% interval", "no displayed rule at row 99"} {
		if !strings.Contains(local, want) {
			t.Fatalf("transcript missing %q:\n%s", want, local)
		}
	}
}

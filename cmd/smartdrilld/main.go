// Command smartdrilld serves interactive smart drill-down sessions over a
// JSON HTTP API — the network analogue of the paper's web prototype,
// designed for many concurrent analysts: distinct sessions drill in
// parallel, each expansion can fan out across BRS workers, and large tables
// are served from dynamically maintained in-memory samples.
//
// Usage:
//
//	smartdrilld [-addr :8080] [-dataset name=path.csv[:measure,...]]...
//	            [-demo] [-max-sessions 1024] [-workers N] [-k 3]
//	            [-stream-budget 5s] [-background-refine=true]
//	            [-cache-entries 256] [-cache-off] [-warm-children 2]
//	            [-snapshot-dir DIR] [-max-concurrent N] [-admission-wait 1s]
//	            [-request-timeout 30s] [-read-header-timeout 10s]
//	            [-idle-timeout 2m] [-version]
//
// Each -dataset flag registers one CSV file under a name; the optional
// colon-suffix lists measure (numeric) columns. -demo registers the
// paper's department-store running example as "store". With no -dataset
// flags, -demo is implied so the server is immediately explorable:
//
//	smartdrilld &
//	curl -s localhost:8080/v1/datasets
//	curl -s -X POST localhost:8080/v1/sessions -d '{"dataset":"store"}'
//
// With -snapshot-dir, sessions are durable: every mutation writes through
// to one JSON snapshot file per session, LRU eviction demotes sessions to
// disk instead of destroying them, and a restarted smartdrilld on the same
// directory resumes every session id. Overload behavior (concurrency cap,
// degraded mode, 429 shedding) is tuned by -max-concurrent and friends;
// see docs/OPERATIONS.md.
//
// Every dataset carries a shared answer cache: completed expansions are
// cached (bounded by -cache-entries, LRU beyond it) and repeated identical
// drills — across sessions or within one — are served without re-running
// the search, while concurrent identical searches collapse onto a single
// execution. -warm-children N precomputes the root expansion plus the top
// N level-1 children in the background right after each dataset registers,
// so the first analyst's default drills are cache hits. -cache-off
// disables all of it (the ablation switch).
//
// The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"smartdrill"
	"smartdrill/internal/datagen"
	"smartdrill/internal/server"
)

// datasetFlag collects repeated -dataset name=path[:measures] values.
type datasetFlag struct {
	specs []datasetSpec
}

type datasetSpec struct {
	name     string
	path     string
	measures []string
}

func (f *datasetFlag) String() string {
	parts := make([]string, len(f.specs))
	for i, s := range f.specs {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (f *datasetFlag) Set(raw string) error {
	name, rest, ok := strings.Cut(raw, "=")
	if !ok || name == "" || rest == "" {
		return fmt.Errorf("want name=path.csv[:measure,...], got %q", raw)
	}
	spec := datasetSpec{name: name}
	if path, ms, ok := strings.Cut(rest, ":"); ok {
		spec.path = path
		for _, m := range strings.Split(ms, ",") {
			if m = strings.TrimSpace(m); m != "" {
				spec.measures = append(spec.measures, m)
			}
		}
	} else {
		spec.path = rest
	}
	f.specs = append(f.specs, spec)
	return nil
}

func main() {
	log.SetFlags(0)
	var datasets datasetFlag
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		demo         = flag.Bool("demo", false, "register the paper's department-store example as dataset \"store\"")
		maxSessions  = flag.Int("max-sessions", 1024, "live session cap (LRU eviction beyond it)")
		workers      = flag.Int("workers", 0, "default BRS worker goroutines per expansion (0 = serial)")
		k            = flag.Int("k", 3, "default rules per expansion")
		streamBudget = flag.Duration("stream-budget", 5*time.Second, "default anytime budget for /drill/stream")
		bgRefine     = flag.Bool("background-refine", true, "re-count provisional sampled drill results exactly in the background")
		cacheEntries = flag.Int("cache-entries", 0, "per-dataset answer-cache capacity in completed expansions (0 = default 256)")
		cacheOff     = flag.Bool("cache-off", false, "disable the per-dataset answer cache and singleflight entirely")
		warmChildren = flag.Int("warm-children", 2, "precompute the root expansion plus the top N level-1 children per dataset in the background (0 = no warming)")
		showVersion  = flag.Bool("version", false, "print the build version and exit")

		snapshotDir   = flag.String("snapshot-dir", "", "directory for durable session snapshots (empty = sessions are memory-only)")
		maxConcurrent = flag.Int("max-concurrent", 0, "concurrent work-request cap before shedding with 429 (0 = serving default, negative = unlimited)")
		admissionWait = flag.Duration("admission-wait", 0, "max queueing time for a concurrency slot before shedding (0 = default 1s)")
		reqTimeout    = flag.Duration("request-timeout", 0, "per-request deadline for non-streaming work endpoints (0 = default 30s, negative = none)")
		readHdrTO     = flag.Duration("read-header-timeout", 0, "time limit for reading request headers (0 = default 10s)")
		idleTO        = flag.Duration("idle-timeout", 0, "keep-alive idle connection timeout (0 = default 2m)")
	)
	flag.Var(&datasets, "dataset", "register a CSV dataset as name=path.csv[:measure,...] (repeatable)")
	flag.Parse()

	if *showVersion {
		fmt.Println("smartdrilld", smartdrill.Version)
		return
	}

	logger := log.New(os.Stderr, "smartdrilld ", log.LstdFlags|log.Lmicroseconds)
	var backend server.SessionBackend
	if *snapshotDir != "" {
		b, err := server.NewDirBackend(*snapshotDir)
		if err != nil {
			log.Fatal(err)
		}
		backend = b
		logger.Printf("durable sessions: snapshot directory %s", b.Dir())
	}
	srv := server.New(server.Config{
		MaxSessions:       *maxSessions,
		Workers:           *workers,
		DefaultK:          *k,
		StreamBudget:      *streamBudget,
		BackgroundRefine:  *bgRefine,
		CacheEntries:      *cacheEntries,
		CacheOff:          *cacheOff,
		WarmChildren:      *warmChildren,
		Backend:           backend,
		MaxConcurrent:     *maxConcurrent,
		AdmissionWait:     *admissionWait,
		RequestTimeout:    *reqTimeout,
		ReadHeaderTimeout: *readHdrTO,
		IdleTimeout:       *idleTO,
		Logger:            logger,
	})

	if len(datasets.specs) == 0 {
		*demo = true
	}
	if *demo {
		srv.RegisterDataset("store", datagen.StoreSales(42))
		logger.Printf("registered demo dataset \"store\" (department-store running example, 6000 rows)")
	}
	for _, spec := range datasets.specs {
		t, err := smartdrill.LoadCSV(spec.path, spec.measures)
		if err != nil {
			log.Fatalf("dataset %s: %v", spec.name, err)
		}
		srv.RegisterDataset(spec.name, t)
		logger.Printf("registered dataset %q: %d rows × %d columns from %s",
			spec.name, t.NumRows(), t.NumCols(), spec.path)
	}

	if backend != nil {
		if n, err := srv.RecoverSessions(); err != nil {
			log.Fatalf("session recovery: %v", err)
		} else if n > 0 {
			logger.Printf("resuming %d session(s) from %s", n, *snapshotDir)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		log.Fatal(err)
	}
}

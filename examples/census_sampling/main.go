// Command census_sampling demonstrates Section 4 on a large synthetic
// Census table: the first drill-down pays one full scan (Create), further
// drill-downs are served from in-memory samples (Find/Combine), and
// prefetching keeps likely next drill-downs warm. Scan counts from the
// simulated disk are printed after every step.
package main

import (
	"flag"
	"fmt"
	"log"

	"smartdrill"
	"smartdrill/internal/datagen"
)

func main() {
	n := flag.Int("n", 300000, "census rows to generate")
	flag.Parse()

	fmt.Printf("generating synthetic census table (%d rows, 7 columns)...\n", *n)
	t := datagen.CensusProjected(*n, 7, 11)

	e, err := smartdrill.New(t,
		smartdrill.WithK(4),
		smartdrill.WithSampling(50000, 5000), // the paper's M and minSS
		smartdrill.WithPrefetch(),
		smartdrill.WithSeed(3),
	)
	if err != nil {
		log.Fatal(err)
	}

	must(e.DrillDown(e.Root()))
	fmt.Printf("\n== First expansion (access: %s) ==\n", e.LastAccessMethod())
	fmt.Println(e.Render())

	// Drill into a child that still has wildcard columns: prefetching
	// should have built a sample for it, so no new scan is needed.
	child := firstWithStars(e.Root().Children)
	if child == nil {
		log.Fatal("no expandable child")
	}
	must(e.DrillDown(child))
	fmt.Printf("== Second expansion on %s (access: %s) ==\n",
		e.DescribeRule(child), e.LastAccessMethod())
	fmt.Println(e.Render())

	// Star-expand the first wildcard column of another child.
	var other *smartdrill.Node
	for _, c := range e.Root().Children {
		if c != child && starColumn(c) >= 0 {
			other = c
			break
		}
	}
	if other != nil {
		col := e.Table().ColumnNames()[starColumn(other)]
		must(e.DrillDownStar(other, col))
		fmt.Printf("== Star expansion on %s of %s (access: %s) ==\n",
			col, e.DescribeRule(other), e.LastAccessMethod())
		fmt.Println(e.Render())
	}

	// Counts marked "~" are sample estimates; exact ones were refined by a
	// prefetch pass. Roll up everything and show the I/O bill.
	e.Collapse(e.Root())
	fmt.Println("== After roll-up ==")
	fmt.Println(e.Render())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// starColumn returns the index of n's first wildcard column, or -1.
func starColumn(n *smartdrill.Node) int {
	for c, v := range n.Rule {
		if v == smartdrill.Star {
			return c
		}
	}
	return -1
}

// firstWithStars returns the first node that still has wildcard columns.
func firstWithStars(nodes []*smartdrill.Node) *smartdrill.Node {
	for _, n := range nodes {
		if starColumn(n) >= 0 {
			return n
		}
	}
	return nil
}

// Command marketing walks through the paper's qualitative study
// (Section 5.1) on the synthetic Marketing dataset: expanding the empty
// rule under Size weighting, star-expanding the Education column, plain
// rule expansion, and the alternative Bits and size-minus-one weightings.
package main

import (
	"fmt"
	"log"

	"smartdrill"
	"smartdrill/internal/datagen"
)

func main() {
	full := datagen.Marketing(datagen.MarketingN, 7)
	t, err := full.ProjectFirst(7) // the paper restricts to 7 columns for display
	if err != nil {
		log.Fatal(err)
	}

	// Figure 1: expand the empty rule under the default Size weighting.
	e, err := smartdrill.New(t, smartdrill.WithK(4), smartdrill.WithMaxWeight(5))
	if err != nil {
		log.Fatal(err)
	}
	must(e.DrillDown(e.Root()))
	fmt.Println("== Summary after expanding the empty rule (Size weighting) ==")
	fmt.Println(e.Render())

	// Figure 2: star-expand the Education column of the second rule: every
	// returned rule now instantiates Education.
	second := e.Root().Children[1]
	must(e.DrillDownStar(second, "Education"))
	fmt.Println("== After star expansion on Education ==")
	fmt.Println(e.Render())
	e.Collapse(second)

	// Figure 3: plain expansion of the third rule.
	third := e.Root().Children[2]
	must(e.DrillDown(third))
	fmt.Println("== After expanding the third rule ==")
	fmt.Println(e.Render())

	// Figure 6: Bits weighting favors columns with many distinct values
	// (so the binary Gender column stops dominating).
	eb, err := smartdrill.New(t,
		smartdrill.WithK(4),
		smartdrill.WithWeighter(smartdrill.BitsWeight(t)),
		smartdrill.WithMaxWeight(20))
	if err != nil {
		log.Fatal(err)
	}
	must(eb.DrillDown(eb.Root()))
	fmt.Println("== Bits weighting ==")
	fmt.Println(eb.Render())

	// Figure 7: size-minus-one zeroes single-column rules.
	em, err := smartdrill.New(t,
		smartdrill.WithK(4),
		smartdrill.WithWeighter(smartdrill.SizeMinusOneWeight()))
	if err != nil {
		log.Fatal(err)
	}
	must(em.DrillDown(em.Root()))
	fmt.Println("== Size-minus-one weighting (multi-column rules only) ==")
	fmt.Println(em.Render())

	// Figure 4: traditional drill-down on Age for contrast.
	groups, err := e.TraditionalDrillDown(e.Root(), "Age")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Traditional drill-down on Age (all groups, count order) ==")
	for _, g := range groups {
		fmt.Printf("  %-8s %6.0f\n", g.Value, g.Count)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

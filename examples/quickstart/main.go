// Command quickstart reproduces the paper's running example (Section 1,
// Tables 1–3): a department-store sales table explored with smart
// drill-down. It expands the trivial rule, then drills into the Walmart
// rule, printing the rule tables the paper shows.
package main

import (
	"fmt"
	"log"

	"smartdrill"
	"smartdrill/internal/datagen"
)

func main() {
	t := datagen.StoreSales(42)

	e, err := smartdrill.New(t, smartdrill.WithK(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Table 1: initial summary ==")
	fmt.Println(e.Render())

	if err := e.DrillDown(e.Root()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Table 2: after first smart drill-down ==")
	fmt.Println(e.Render())

	// Find the Walmart rule among the children and drill into it, as the
	// analyst does between Tables 2 and 3.
	walmart, err := e.EncodeRule(map[string]string{"Store": "Walmart"})
	if err != nil {
		log.Fatal(err)
	}
	node := e.FindNode(walmart)
	if node == nil {
		log.Fatalf("expected the Walmart rule among the drill-down results:\n%s", e.Render())
	}
	if err := e.DrillDown(node); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Table 3: after drilling into the Walmart rule ==")
	fmt.Println(e.Render())

	// Bonus beyond the paper's tables: the same drill-down optimizing the
	// Sales measure instead of tuple counts (Section 6.3).
	sumOpt, err := smartdrill.WithSum(t, "Sales")
	if err != nil {
		log.Fatal(err)
	}
	es, err := smartdrill.New(t, smartdrill.WithK(3), sumOpt)
	if err != nil {
		log.Fatal(err)
	}
	if err := es.DrillDown(es.Root()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Extension: drill-down maximizing Sum(Sales) ==")
	fmt.Println(es.Render())
}

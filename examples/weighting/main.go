// Command weighting demonstrates the tunable weighting machinery of
// Sections 2.2 and 6.1: the built-in Size/Bits/size-minus-one functions, a
// custom Linear weighting that favors chosen columns, weighting that
// ignores a column entirely, and traditional drill-down as a degenerate
// smart drill-down.
package main

import (
	"fmt"
	"log"

	"smartdrill"
	"smartdrill/internal/datagen"
)

func main() {
	full := datagen.Marketing(datagen.MarketingN, 21)
	t, err := full.ProjectFirst(7)
	if err != nil {
		log.Fatal(err)
	}

	show := func(title string, w smartdrill.Weighter) {
		if err := smartdrill.Validate(w, t); err != nil {
			log.Fatalf("weighter %q rejected: %v", title, err)
		}
		e, err := smartdrill.New(t, smartdrill.WithK(4), smartdrill.WithWeighter(w))
		if err != nil {
			log.Fatal(err)
		}
		if err := e.DrillDown(e.Root()); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n%s\n", title, e.Render())
	}

	show("Size (default)", smartdrill.SizeWeight(t))
	show("Bits (information-weighted columns)", smartdrill.BitsWeight(t))
	show("Size-minus-one (multi-column rules only)", smartdrill.SizeMinusOneWeight())

	// A custom preference: the analyst cares about Occupation (col 5) and
	// Income (col 0), is indifferent to Gender (col 1, zero weight), and
	// mildly interested elsewhere.
	per := []float64{3, 0, 1, 1, 1, 3, 1}
	show("Custom Linear (favor Income+Occupation, ignore Gender)",
		smartdrill.LinearWeight(per, 1, "Favor(Income,Occupation)"))

	// Squaring the column-weight sum (power=2) rewards rule size
	// super-linearly, pushing toward more specific rules.
	show("Linear power=2 (super-linear size reward)",
		smartdrill.LinearWeight([]float64{1, 1, 1, 1, 1, 1, 1}, 2, "Size^2"))
}

package smartdrill

// Tests for the Section 6 extensions exposed through the public API:
// anytime streaming drill-down, confidence intervals, automatic numeric
// bucketization, column preferences, session persistence, and parallelism.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"smartdrill/internal/datagen"
)

func TestDrillDownStream(t *testing.T) {
	tab := datagen.StoreSales(42)
	e, err := New(tab, WithMaxWeight(3))
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	err = e.DrillDownStream(e.Root(), 0, 0, func(n *Node) bool {
		seen = append(seen, e.DescribeRule(n))
		return len(seen) < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("streamed %d rules, want 2 (stopped by callback)", len(seen))
	}
	if len(e.Root().Children) != 2 {
		t.Fatalf("tree has %d children, want 2", len(e.Root().Children))
	}
	// The greedy stream starts with the highest-score rule: comforters/MA-3.
	if seen[0] != "(?, comforters, MA-3)" {
		t.Fatalf("first streamed rule = %s", seen[0])
	}
}

func TestDrillDownStreamMaxRules(t *testing.T) {
	tab := datagen.StoreSales(42)
	e, _ := New(tab, WithMaxWeight(3))
	if err := e.DrillDownStream(e.Root(), 3, 0, nil); err != nil {
		t.Fatal(err)
	}
	if len(e.Root().Children) != 3 {
		t.Fatalf("children = %d, want 3", len(e.Root().Children))
	}
}

func TestDrillDownStreamBudget(t *testing.T) {
	tab := datagen.StoreSales(42)
	e, _ := New(tab, WithMaxWeight(3))
	// A negative... zero means unbounded; use 1ns so the deadline passes
	// before the first greedy step completes and at most one rule appears.
	if err := e.DrillDownStream(e.Root(), 0, time.Nanosecond, nil); err != nil {
		t.Fatal(err)
	}
	if got := len(e.Root().Children); got > 1 {
		t.Fatalf("children = %d under 1ns budget", got)
	}
}

func TestConfidenceIntervals(t *testing.T) {
	tab := datagen.CensusProjected(30000, 5, 4)
	e, err := New(tab, WithK(3), WithSampling(10000, 2000), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	for _, n := range e.Root().Children {
		lo, hi := e.ConfidenceInterval(n)
		if n.Exact {
			if lo != n.Count || hi != n.Count {
				t.Fatalf("exact node interval [%g,%g] != count %g", lo, hi, n.Count)
			}
			continue
		}
		if lo > n.Count || hi < n.Count {
			t.Fatalf("estimate %g outside its own interval [%g,%g]", n.Count, lo, hi)
		}
		actual := float64(tab.Count(n.Rule))
		if actual < lo || actual > hi {
			// A 95% interval can miss, but on three rules a miss is rare
			// enough to flag — and with these sample sizes the intervals
			// are generous.
			t.Fatalf("true count %g outside interval [%g,%g] for %s",
				actual, lo, hi, e.DescribeRule(n))
		}
	}
}

func TestLoadCSVAutoEndToEnd(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("City,Revenue\n")
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&sb, "c%d,%d\n", i%5, 100+i*7)
	}
	tab, numeric, err := ReadCSVAuto(strings.NewReader(sb.String()), AutoOptions{Buckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 1 || numeric[0] != "Revenue" {
		t.Fatalf("numeric = %v", numeric)
	}
	// The bucketized table drills down normally and can Sum the measure.
	sumOpt, err := WithSum(tab, "Revenue")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tab, WithK(3), sumOpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	if len(e.Root().Children) == 0 {
		t.Fatal("no rules over bucketized data")
	}
	if !strings.Contains(e.Render(), "Revenue_bucket") {
		t.Fatal("render must show the bucket column")
	}
}

func TestWithPreferencesEndToEnd(t *testing.T) {
	tab := datagen.StoreSales(42)
	w, err := WithPreferences(tab, SizeWeight(tab), []string{"Region"}, []string{"Store"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(w, tab); err != nil {
		t.Fatal(err)
	}
	e, err := New(tab, WithK(3), WithWeighter(w), WithMaxWeight(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	// With Store ignored and Region favored, the Walmart rule (store-only)
	// has weight 0 and cannot appear; region rules dominate.
	for _, n := range e.Root().Children {
		if n.Weight <= 0 {
			t.Fatalf("zero-weight rule displayed: %s", e.DescribeRule(n))
		}
		cells := tab.DecodeRule(n.Rule)
		if cells[2] == "?" {
			t.Fatalf("favored Region not instantiated in %s", e.DescribeRule(n))
		}
	}
	if _, err := WithPreferences(tab, SizeWeight(tab), []string{"Nope"}, nil, 1); err == nil {
		t.Fatal("unknown favored column must fail")
	}
	if _, err := WithPreferences(tab, SizeWeight(tab), nil, []string{"Nope"}, 1); err == nil {
		t.Fatal("unknown ignored column must fail")
	}
}

func TestSaveLoadStatePublic(t *testing.T) {
	tab := datagen.StoreSales(42)
	e, _ := New(tab, WithK(3))
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	e2, _ := New(tab, WithK(3))
	if err := e2.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if e.Render() != e2.Render() {
		t.Fatal("state round trip changed the rendered tree")
	}
}

func TestWithWorkersMatchesSerial(t *testing.T) {
	tab := datagen.StoreSales(42)
	serial, _ := New(tab, WithK(3))
	parallel, _ := New(tab, WithK(3), WithWorkers(8))
	if err := serial.DrillDown(serial.Root()); err != nil {
		t.Fatal(err)
	}
	if err := parallel.DrillDown(parallel.Root()); err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Fatal("parallel drill-down differs from serial")
	}
}

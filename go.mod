module smartdrill

go 1.24

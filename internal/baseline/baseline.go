// Package baseline provides the comparators smart drill-down is evaluated
// against: the classical drill-down operator (Section 5.1.2, Figure 4) and
// an exhaustive optimal rule-set search used to validate BRS's greedy
// approximation guarantee on small inputs.
package baseline

import (
	"fmt"
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Group is one row of a traditional drill-down result: a single column
// value and its aggregate mass.
type Group struct {
	Value string
	Rule  rule.Rule
	Count float64
}

// TraditionalDrillDown performs the classic OLAP drill-down on one column:
// group the tuples covered by base by their value in the column and return
// every group, ordered by descending count (ties broken by value). Unlike
// smart drill-down it returns all distinct values — the flood of results
// the paper's operator is designed to avoid.
func TraditionalDrillDown(t *table.Table, base rule.Rule, column int, agg score.Aggregator) ([]Group, error) {
	if column < 0 || column >= t.NumCols() {
		return nil, fmt.Errorf("baseline: column %d out of range [0,%d)", column, t.NumCols())
	}
	if base == nil {
		base = rule.Trivial(t.NumCols())
	}
	if agg == nil {
		agg = score.CountAgg{}
	}
	mass := make([]float64, t.DistinctCount(column))
	col := t.Column(column)
	for i := 0; i < t.NumRows(); i++ {
		if t.Covers(base, i) {
			mass[col[i]] += agg.Mass(t, i)
		}
	}
	var groups []Group
	for v, m := range mass {
		if m == 0 {
			continue
		}
		groups = append(groups, Group{
			Value: t.Dict(column).Decode(rule.Value(v)),
			Rule:  base.With(column, rule.Value(v)),
			Count: m,
		})
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Count != groups[j].Count {
			return groups[i].Count > groups[j].Count
		}
		return groups[i].Value < groups[j].Value
	})
	return groups, nil
}

// ExhaustiveBest finds the true optimal rule set of size ≤ k by enumerating
// all rules with support in the table and searching all k-subsets. Cost is
// exponential; it exists so tests can verify BRS ≥ (1 − 1/e)·OPT and is
// limited to small tables. It returns the best rule set (weight-descending)
// and its exact score.
func ExhaustiveBest(t *table.Table, w weight.Weighter, agg score.Aggregator, k int, maxRules int) ([]rule.Rule, float64, error) {
	if agg == nil {
		agg = score.CountAgg{}
	}
	universe := EnumerateSupportedRules(t)
	if len(universe) > maxRules {
		return nil, 0, fmt.Errorf("baseline: %d candidate rules exceeds cap %d", len(universe), maxRules)
	}
	if k > len(universe) {
		k = len(universe)
	}
	var (
		best      []rule.Rule
		bestScore = -1.0
		cur       = make([]rule.Rule, 0, k)
	)
	var recurse func(start int)
	recurse = func(start int) {
		// Score every prefix too: the optimum may use fewer than k rules
		// when extra rules add nothing (MCount 0 contributes 0 anyway, but
		// checking prefixes costs little and keeps the search exact).
		s := score.SetScore(t, w, agg, cur)
		if s > bestScore {
			bestScore = s
			best = append([]rule.Rule{}, cur...)
		}
		if len(cur) == k {
			return
		}
		for i := start; i < len(universe); i++ {
			cur = append(cur, universe[i])
			recurse(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	recurse(0)
	return score.SortByWeightDesc(w, best), bestScore, nil
}

// EnumerateSupportedRules returns every non-trivial rule with at least one
// covering tuple, by expanding the pattern lattice of each tuple. Intended
// for small tables only (tests, exhaustive baselines).
func EnumerateSupportedRules(t *table.Table) []rule.Rule {
	seen := make(map[string]rule.Rule)
	ncols := t.NumCols()
	row := make([]rule.Value, ncols)
	for i := 0; i < t.NumRows(); i++ {
		t.Row(i, row)
		// Enumerate all non-empty subsets of columns (2^ncols − 1 patterns
		// per row); fine for the ≤ 4-column tables tests use.
		for mask := 1; mask < 1<<ncols; mask++ {
			r := rule.Trivial(ncols)
			for c := 0; c < ncols; c++ {
				if mask&(1<<c) != 0 {
					r[c] = row[c]
				}
			}
			key := r.Key()
			if _, ok := seen[key]; !ok {
				seen[key] = r
			}
		}
	}
	out := make([]rule.Rule, 0, len(seen))
	for _, r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// BestMarginalExhaustive returns the supported rule with the highest exact
// marginal gain relative to selected, breaking ties by rule key. Tests use
// it to validate Algorithm 2's pruning never discards the best rule.
func BestMarginalExhaustive(t *table.Table, w weight.Weighter, agg score.Aggregator, selected []rule.Rule, mw float64) (rule.Rule, float64) {
	if agg == nil {
		agg = score.CountAgg{}
	}
	var best rule.Rule
	bestGain := 0.0
	for _, r := range EnumerateSupportedRules(t) {
		if mw > 0 && weight.WeightRule(w, r) > mw {
			continue
		}
		g := score.MarginalGain(t, w, agg, selected, r)
		if g > bestGain || (g == bestGain && g > 0 && best != nil && r.Key() < best.Key()) {
			bestGain = g
			best = r
		}
	}
	return best, bestGain
}

package baseline

import (
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

func fixture(t *testing.T) *table.Table {
	t.Helper()
	b := table.MustBuilder([]string{"Store", "Product"}, []string{"Sales"})
	rows := []struct {
		s, p string
		m    float64
	}{
		{"Walmart", "cookies", 5},
		{"Walmart", "milk", 7},
		{"Walmart", "cookies", 2},
		{"Target", "bikes", 100},
		{"Costco", "milk", 3},
	}
	for _, r := range rows {
		b.MustAddRow([]string{r.s, r.p}, r.m)
	}
	return b.Build()
}

func TestTraditionalDrillDown(t *testing.T) {
	tab := fixture(t)
	groups, err := TraditionalDrillDown(tab, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	if groups[0].Value != "Walmart" || groups[0].Count != 3 {
		t.Fatalf("top group = %+v", groups[0])
	}
	// Count-descending, then value order.
	if groups[1].Count > groups[0].Count {
		t.Fatal("groups not count-ordered")
	}
	// Every group rule instantiates exactly the drilled column.
	for _, g := range groups {
		if g.Rule.Size() != 1 || g.Rule[0] == rule.Star {
			t.Fatalf("group rule = %v", g.Rule)
		}
	}
}

func TestTraditionalDrillDownWithBase(t *testing.T) {
	tab := fixture(t)
	base, _ := tab.EncodeRule(map[string]string{"Store": "Walmart"})
	groups, err := TraditionalDrillDown(tab, base, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2 (cookies, milk)", len(groups))
	}
	if groups[0].Value != "cookies" || groups[0].Count != 2 {
		t.Fatalf("top = %+v", groups[0])
	}
}

func TestTraditionalDrillDownSum(t *testing.T) {
	tab := fixture(t)
	groups, err := TraditionalDrillDown(tab, nil, 0, score.SumAgg{Measure: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Target's single 100-sales tuple outranks Walmart's 14.
	if groups[0].Value != "Target" || groups[0].Count != 100 {
		t.Fatalf("top by Sum = %+v", groups[0])
	}
}

func TestTraditionalDrillDownErrors(t *testing.T) {
	tab := fixture(t)
	if _, err := TraditionalDrillDown(tab, nil, 9, nil); err == nil {
		t.Error("out-of-range column should fail")
	}
}

func TestEnumerateSupportedRules(t *testing.T) {
	b := table.MustBuilder([]string{"A", "B"}, nil)
	b.MustAddRow([]string{"x", "y"})
	b.MustAddRow([]string{"x", "z"})
	tab := b.Build()
	rules := EnumerateSupportedRules(tab)
	// Patterns: (x,?), (?,y), (?,z), (x,y), (x,z) — 5 distinct non-trivial.
	if len(rules) != 5 {
		t.Fatalf("got %d rules, want 5: %v", len(rules), rules)
	}
	for _, r := range rules {
		if tab.Count(r) == 0 {
			t.Fatalf("unsupported rule %v enumerated", r)
		}
		if r.IsTrivial() {
			t.Fatal("trivial rule must not be enumerated")
		}
	}
}

func TestExhaustiveBestHandComputed(t *testing.T) {
	// Table where the optimum is easy to verify: two disjoint clusters.
	b := table.MustBuilder([]string{"A", "B"}, nil)
	for i := 0; i < 10; i++ {
		b.MustAddRow([]string{"a", "x"})
	}
	for i := 0; i < 6; i++ {
		b.MustAddRow([]string{"b", "y"})
	}
	tab := b.Build()
	w := weight.NewSize(2)
	best, bestScore, err := ExhaustiveBest(tab, w, nil, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: (a,x) and (b,y), both weight 2 → 2·10 + 2·6 = 32.
	if bestScore != 32 {
		t.Fatalf("optimal score = %g, want 32 (rules %v)", bestScore, best)
	}
	if len(best) != 2 {
		t.Fatalf("optimal set size = %d", len(best))
	}
	for _, r := range best {
		if r.Size() != 2 {
			t.Fatalf("optimal rule %v should instantiate both columns", r)
		}
	}
}

func TestExhaustiveBestCapEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	names := []string{"A", "B", "C"}
	b := table.MustBuilder(names, nil)
	row := make([]string, 3)
	for i := 0; i < 50; i++ {
		for c := range row {
			row[c] = string(rune('a' + rng.Intn(5)))
		}
		b.MustAddRow(row)
	}
	tab := b.Build()
	if _, _, err := ExhaustiveBest(tab, weight.NewSize(3), nil, 2, 10); err == nil {
		t.Error("rule-universe cap should be enforced")
	}
}

func TestBestMarginalExhaustiveRespectsMW(t *testing.T) {
	tab := fixture(t)
	w := weight.NewSize(2)
	r, gain := BestMarginalExhaustive(tab, w, nil, nil, 1)
	if r == nil || gain <= 0 {
		t.Fatal("expected a best marginal rule")
	}
	if weight.WeightRule(w, r) > 1 {
		t.Fatalf("rule %v exceeds mw=1", r)
	}
}

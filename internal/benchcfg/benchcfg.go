// Package benchcfg defines the canonical BRS benchmark workloads shared
// by the BenchmarkBRS suite (bench_test.go) and cmd/benchjson. The CI
// allocation-regression gate compares benchjson output against a
// checked-in baseline, so both consumers must measure exactly the same
// dataset constructions and mw parameters — defining them once here keeps
// the gate and the human-run benchmarks from silently diverging.
package benchcfg

import (
	"sync"

	"smartdrill/internal/datagen"
	"smartdrill/internal/table"
)

// CensusRows is the synthetic Census size used throughout the paper-scale
// benchmarks.
const CensusRows = 100000

// Lazily generated shared datasets: generation is excluded from timings
// and each table is built once per process however many benchmarks touch
// it.
var (
	censusOnce sync.Once
	censusTab  *table.Table

	marketingOnce sync.Once
	marketingTab  *table.Table

	storeOnce sync.Once
	storeTab  *table.Table
)

// Census returns the shared 100k-row, 7-column synthetic Census table.
func Census() *table.Table {
	censusOnce.Do(func() { censusTab = datagen.CensusProjected(CensusRows, 7, 7) })
	return censusTab
}

// Marketing returns the shared Marketing table projected to 7 columns, as
// in the paper's experiments.
func Marketing() *table.Table {
	marketingOnce.Do(func() {
		t, err := datagen.Marketing(datagen.MarketingN, 7).ProjectFirst(7)
		if err != nil {
			panic(err)
		}
		marketingTab = t
	})
	return marketingTab
}

// StoreSales returns the shared department-store running example
// (seed 42, the bundled-CSV ground truth).
func StoreSales() *table.Table {
	storeOnce.Do(func() { storeTab = datagen.StoreSales(42) })
	return storeTab
}

// BRSCase is one full-table BRS benchmark configuration (K=4, Size
// weighting, warmed index).
type BRSCase struct {
	Name string
	Tab  func() *table.Table
	MW   float64
}

// BRSCases lists the configurations BenchmarkBRS runs and benchjson
// records in BENCH_3.json.
func BRSCases() []BRSCase {
	return []BRSCase{
		{"Census", Census, 4},
		{"Marketing", Marketing, 5},
		{"StoreSales", StoreSales, 3},
	}
}

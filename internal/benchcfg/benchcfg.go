// Package benchcfg defines the canonical BRS benchmark workloads shared
// by the BenchmarkBRS suite (bench_test.go) and cmd/benchjson. The CI
// allocation-regression gate compares benchjson output against a
// checked-in baseline, so both consumers must measure exactly the same
// dataset constructions and mw parameters — defining them once here keeps
// the gate and the human-run benchmarks from silently diverging.
package benchcfg

import (
	"runtime"
	"sync"

	"smartdrill/internal/datagen"
	"smartdrill/internal/table"
)

// CensusRows is the synthetic Census size used throughout the paper-scale
// benchmarks.
const CensusRows = 100000

// CensusLargeRows is the million-row scale the sampled pipeline targets:
// exact BRS is seconds-slow here (it is ~1.8s at 100k and scales
// linearly), so interactive answers must come from samples. The paper's
// real Census extract is ~2.5M rows; 1M keeps CI tractable while being
// firmly past the interactivity cliff.
const CensusLargeRows = 1000000

// Lazily generated shared datasets: generation is excluded from timings
// and each table is built once per process however many benchmarks touch
// it.
var (
	censusOnce sync.Once
	censusTab  *table.Table

	marketingOnce sync.Once
	marketingTab  *table.Table

	storeOnce sync.Once
	storeTab  *table.Table

	censusLargeOnce sync.Once
	censusLargeTab  *table.Table
)

// Census returns the shared 100k-row, 7-column synthetic Census table.
func Census() *table.Table {
	censusOnce.Do(func() { censusTab = datagen.CensusProjected(CensusRows, 7, 7) })
	return censusTab
}

// Marketing returns the shared Marketing table projected to 7 columns, as
// in the paper's experiments.
func Marketing() *table.Table {
	marketingOnce.Do(func() {
		t, err := datagen.Marketing(datagen.MarketingN, 7).ProjectFirst(7)
		if err != nil {
			panic(err)
		}
		marketingTab = t
	})
	return marketingTab
}

// StoreSales returns the shared department-store running example
// (seed 42, the bundled-CSV ground truth).
func StoreSales() *table.Table {
	storeOnce.Do(func() { storeTab = datagen.StoreSales(42) })
	return storeTab
}

// CensusLarge returns the shared 1M-row, 7-column synthetic Census table
// the sampled-pipeline benchmarks run on.
func CensusLarge() *table.Table {
	censusLargeOnce.Do(func() { censusLargeTab = datagen.CensusProjected(CensusLargeRows, 7, 7) })
	return censusLargeTab
}

// SampledCase is one sampled-drill benchmark configuration: a cold
// expansion on a table large enough that exact BRS is seconds-slow,
// answered provisionally from a uniform sample within the interactive
// budget and refined to exact counts afterwards.
type SampledCase struct {
	Name string
	Tab  func() *table.Table
	// Memory (M) and MinSS parameterize the SampleHandler; Threshold
	// routes (sub)views that can exceed it onto the sampled path.
	Memory, MinSS, Threshold int
	// MW is the BRS max-weight parameter (fixed so runs skip the probe and
	// measure only the pipeline).
	MW float64
}

// SampledCases lists the configurations BenchmarkSampledDrill runs and
// benchjson records in the BENCH file.
func SampledCases() []SampledCase {
	return []SampledCase{
		{"Census1M", CensusLarge, 50000, 5000, 100000, 4},
	}
}

// CoresPoint is one point on the parallel-scaling axis: a display label
// and the worker count it resolves to on this machine.
type CoresPoint struct {
	Label   string
	Workers int
}

// CoresAxis returns the canonical parallel-scaling sweep recorded in the
// BENCH files and the README perf table: cores ∈ {1, 2, 4, max}, where
// max is runtime.NumCPU() at measurement time. The labels are fixed
// across machines so successive emissions stay diffable; only the worker
// count behind "max" varies. Workers beyond NumCPU are honored by BRS
// (oversubscription is harmless), so the axis is well-defined even on
// boxes with fewer than 4 cores — the cores=1 point is the
// machine-comparable one, the rest measure scaling on the hardware at
// hand.
func CoresAxis() []CoresPoint {
	return []CoresPoint{
		{"1", 1},
		{"2", 2},
		{"4", 4},
		{"max", runtime.NumCPU()},
	}
}

// BRSCase is one full-table BRS benchmark configuration (K=4, Size
// weighting, warmed index).
type BRSCase struct {
	Name string
	Tab  func() *table.Table
	MW   float64
}

// BRSCases lists the configurations BenchmarkBRS runs and benchjson
// records in the BENCH file.
func BRSCases() []BRSCase {
	return []BRSCase{
		{"Census", Census, 4},
		{"Marketing", Marketing, 5},
		{"StoreSales", StoreSales, 3},
	}
}

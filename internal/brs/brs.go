// Package brs implements BRS (Best Rule Set), the paper's greedy algorithm
// for Problem 3 (Section 3.4), together with the a-priori-style
// find-best-marginal-rule procedure of Section 3.5 (Algorithm 2).
//
// Score is submodular (Lemma 3), so greedily adding the rule with the
// largest marginal value k times yields a (1 − 1/e)-approximation — in fact
// 1 − ((k−1)/k)^k — provided the max-weight parameter mw is at least the
// weight of every rule in the optimal set. Each greedy step finds the best
// marginal rule in level-wise passes over the table, pruning candidate
// super-rules whose marginal value is upper-bounded below the best already
// found.
package brs

import (
	"fmt"
	"math"
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Options configures a BRS run.
type Options struct {
	// K is the number of rules to return (the paper's k; its UI default is 3,
	// the experiments use 4).
	K int
	// MaxWeight is the paper's mw parameter: BRS is guaranteed optimal (up
	// to the greedy factor) if no optimal rule weighs more than mw, and runs
	// faster for smaller values. Zero means "no bound" (mw = W of the full
	// column set), trading speed for the guarantee.
	MaxWeight float64
	// Base restricts the search to super-rules of this rule, implementing
	// rule drill-down after the table has been filtered to Base's coverage.
	// Nil means the trivial rule.
	Base rule.Rule
	// Agg is the aggregated mass; nil means Count. Sum over a measure column
	// implements the Section 6.3 extension.
	Agg score.Aggregator
	// DisablePruning turns off the sub-rule upper-bound pruning (ablation).
	DisablePruning bool
	// MaxCandidatesPerLevel caps the candidate set per pass as a memory
	// safety valve; 0 means DefaultMaxCandidates. When the cap is hit the
	// result may be suboptimal; Stats.CandidateCapHit records it.
	MaxCandidatesPerLevel int
	// Workers sets the number of goroutines used for table passes; 0 or 1
	// runs serially. With the Count aggregate, parallel results are
	// bit-identical to serial ones (all accumulators stay integral).
	Workers int
	// MinGainRatio (used by RunIncremental only) stops the stream once a
	// rule's marginal value drops below this fraction of the first rule's
	// — the anytime mode's guard against flooding the display with
	// near-worthless rules. 0 disables the cutoff.
	MinGainRatio float64
}

// DefaultMaxCandidates bounds per-level candidate growth when the caller
// does not specify a cap.
const DefaultMaxCandidates = 1 << 20

// Result is one selected rule with its display statistics.
type Result struct {
	Rule   rule.Rule
	Weight float64
	// Count is the aggregate mass of all tuples covered by Rule in the
	// table BRS ran on (the value shown to the analyst).
	Count float64
	// MCount is the marginal mass: tuples covered by Rule and by no
	// higher-weight rule selected before it.
	MCount float64
}

// Stats instruments a run for the performance experiments (Figure 5) and
// the pruning ablation.
type Stats struct {
	Passes            int   // table passes across all greedy steps
	CandidatesCounted int   // rules whose marginal value was measured
	CandidatesPruned  int   // rules dropped by the upper-bound test
	RowsScanned       int64 // total row visits
	CandidateCapHit   bool  // a level hit MaxCandidatesPerLevel
}

// Run executes BRS on t and returns up to opts.K rules ordered by
// descending weight (the display order mandated by Lemma 1), together with
// run statistics. It returns fewer than K rules when no remaining rule has
// positive marginal value.
func Run(t *table.Table, w weight.Weighter, opts Options) ([]Result, Stats, error) {
	if opts.K <= 0 {
		return nil, Stats{}, fmt.Errorf("brs: K must be positive, got %d", opts.K)
	}
	base := opts.Base
	if base == nil {
		base = rule.Trivial(t.NumCols())
	}
	if len(base) != t.NumCols() {
		return nil, Stats{}, fmt.Errorf("brs: base rule has %d columns, table has %d", len(base), t.NumCols())
	}
	agg := opts.Agg
	if agg == nil {
		agg = score.CountAgg{}
	}
	mw := opts.MaxWeight
	if mw <= 0 {
		mw = w.MaxWeight(t.NumCols())
	}
	maxCand := opts.MaxCandidatesPerLevel
	if maxCand <= 0 {
		maxCand = DefaultMaxCandidates
	}

	run := &runner{
		t: t, w: w, agg: agg, mw: mw, base: base,
		prune: !opts.DisablePruning, maxCand: maxCand, par: opts.Workers,
	}
	var selected []Result
	for step := 0; step < opts.K; step++ {
		best := run.findBestMarginal(resultsToRules(selected))
		if best == nil || best.marginal <= 0 {
			break
		}
		selected = append(selected, Result{
			Rule:   best.r,
			Weight: weight.WeightRule(w, best.r),
			Count:  best.count,
			MCount: 0, // recomputed below once ordering is final
		})
	}
	// Order by descending weight and fill marginal counts in that order.
	sort.SliceStable(selected, func(i, j int) bool {
		if selected[i].Weight != selected[j].Weight {
			return selected[i].Weight > selected[j].Weight
		}
		return selected[i].Rule.Key() < selected[j].Rule.Key()
	})
	rules := resultsToRules(selected)
	mcs := score.MCounts(t, w, agg, rules)
	for i := range selected {
		selected[i].MCount = mcs[i]
	}
	return selected, run.stats, nil
}

func resultsToRules(rs []Result) []rule.Rule {
	out := make([]rule.Rule, len(rs))
	for i := range rs {
		out[i] = rs[i].Rule
	}
	return out
}

// runner holds per-Run state shared by greedy steps.
type runner struct {
	t       *table.Table
	w       weight.Weighter
	agg     score.Aggregator
	mw      float64
	base    rule.Rule
	prune   bool
	maxCand int
	par     int
	stats   Stats
}

// cand is one candidate rule with accumulated statistics.
type cand struct {
	r        rule.Rule
	key      string // cached r.Key(), used for dedup and stable ordering
	weight   float64
	count    float64 // aggregate mass covered
	marginal float64 // marginal value vs the current selection
}

// findBestMarginal implements Algorithm 2: level-wise candidate counting
// with sub-rule upper-bound pruning against threshold H.
func (rn *runner) findBestMarginal(selected []rule.Rule) *cand {
	t := rn.t
	n := t.NumRows()
	if n == 0 {
		return nil
	}

	// One pass to fix wS[i]: weight of the best selected rule covering row
	// i (W(RS) in Algorithm 2). Selected rules all derive from the same
	// base, so this is O(|T|·|S|).
	topW := make([]float64, n)
	if len(selected) > 0 {
		sw := make([]float64, len(selected))
		for j, r := range selected {
			sw[j] = weight.WeightRule(rn.w, r)
		}
		rn.parallelRows(n, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				for j, r := range selected {
					if sw[j] > topW[i] && t.Covers(r, i) {
						topW[i] = sw[j]
					}
				}
			}
		})
		rn.stats.Passes++
		rn.stats.RowsScanned += int64(n)
	}

	freeCols := rn.freeColumns()
	if len(freeCols) == 0 {
		return nil
	}

	counted := make(map[string]*cand) // C in Algorithm 2: all counted rules
	var best *cand
	H := 0.0

	// Level 1: one pass counts every single-extension rule base+(c,v).
	prev := rn.countLevelOne(freeCols, topW, counted)
	for _, c := range prev {
		if best == nil || c.marginal > best.marginal {
			best = c
		}
	}
	if best != nil {
		H = best.marginal
	}

	// Levels 2..: generate super-rules of the previous level's candidates,
	// prune by upper bound, count survivors in one pass.
	for level := 2; level <= len(freeCols); level++ {
		next := rn.generateCandidates(prev, counted)
		if len(next) == 0 {
			break
		}
		survivors := next[:0]
		for _, c := range next {
			if rn.prune && rn.upperBound(c, counted) < H {
				rn.stats.CandidatesPruned++
				continue
			}
			survivors = append(survivors, c)
		}
		if len(survivors) == 0 {
			break
		}
		rn.countCandidates(survivors, topW)
		for _, c := range survivors {
			counted[c.key] = c
			rn.stats.CandidatesCounted++
			if best == nil || c.marginal > best.marginal {
				best = c
				H = c.marginal
			}
		}
		prev = survivors
	}
	return best
}

// freeColumns lists columns not instantiated by the base rule.
func (rn *runner) freeColumns() []int {
	var cols []int
	for c, v := range rn.base {
		if v == rule.Star {
			cols = append(cols, c)
		}
	}
	return cols
}

// countLevelOne counts, in a single pass, every rule extending the base by
// one (column, value) pair and returns the candidates. Column-major layout
// lets us accumulate per (column, value-id) without hashing.
func (rn *runner) countLevelOne(freeCols []int, topW []float64, counted map[string]*cand) []*cand {
	t := rn.t
	n := t.NumRows()

	type colAcc struct {
		col    int
		weight float64
		cnt    []float64
		mv     []float64
	}
	accs := make([]colAcc, 0, len(freeCols))
	baseMask := rn.base.Mask()
	for _, c := range freeCols {
		m := baseMask
		m.Set(c)
		wgt := rn.w.Weight(m)
		if wgt > rn.mw {
			continue // weight cap: super-rules only get heavier (monotone)
		}
		accs = append(accs, colAcc{
			col:    c,
			weight: wgt,
			cnt:    make([]float64, t.DistinctCount(c)),
			mv:     make([]float64, t.DistinctCount(c)),
		})
	}
	if len(accs) == 0 {
		return nil
	}
	// One accumulator set per worker; merged after the pass.
	nw := rn.workers()
	perWorker := make([][]colAcc, nw)
	perWorker[0] = accs
	for g := 1; g < nw; g++ {
		cp := make([]colAcc, len(accs))
		for a, acc := range accs {
			cp[a] = colAcc{
				col:    acc.col,
				weight: acc.weight,
				cnt:    make([]float64, len(acc.cnt)),
				mv:     make([]float64, len(acc.mv)),
			}
		}
		perWorker[g] = cp
	}
	rn.parallelRows(n, func(lo, hi, g int) {
		mine := perWorker[g]
		for i := lo; i < hi; i++ {
			if !t.Covers(rn.base, i) {
				continue
			}
			mass := rn.agg.Mass(t, i)
			tw := topW[i]
			for a := range mine {
				acc := &mine[a]
				v := t.Value(acc.col, i)
				acc.cnt[v] += mass
				if acc.weight > tw {
					acc.mv[v] += (acc.weight - tw) * mass
				}
			}
		}
	})
	for g := 1; g < nw; g++ {
		for a := range accs {
			for v := range accs[a].cnt {
				accs[a].cnt[v] += perWorker[g][a].cnt[v]
				accs[a].mv[v] += perWorker[g][a].mv[v]
			}
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)

	var out []*cand
	for a := range accs {
		acc := &accs[a]
		for v := range acc.cnt {
			if acc.cnt[v] == 0 {
				continue
			}
			r := rn.base.With(acc.col, rule.Value(v))
			c := &cand{
				r:        r,
				key:      r.Key(),
				weight:   acc.weight,
				count:    acc.cnt[v],
				marginal: acc.mv[v],
			}
			counted[c.key] = c
			rn.stats.CandidatesCounted++
			out = append(out, c)
		}
	}
	return out
}

// candIndex buckets candidate rules by the value they require in one
// chosen anchor column (their first instantiated non-base column). During a
// table pass, only the candidates whose anchor value matches the row are
// checked for full coverage — turning the O(rows × candidates) inner loop
// into O(rows × anchor-matches).
type candIndex struct {
	cols  []int     // anchor columns in use
	byVal [][][]int // byVal[ci][valueID] = positions of candidates anchored at (cols[ci], valueID)
}

// buildCandIndex indexes cands by anchor column/value. Anchor choice: the
// first instantiated column that the base leaves free (every non-base
// candidate has one).
func (rn *runner) buildCandIndex(cands []*cand) candIndex {
	t := rn.t
	var idx candIndex
	slot := make(map[int]int) // column → position in idx.cols
	for pos, c := range cands {
		anchor := -1
		for col, v := range c.r {
			if v != rule.Star && rn.base[col] == rule.Star {
				anchor = col
				break
			}
		}
		if anchor < 0 {
			continue // candidate equals base; cannot happen at level ≥ 1
		}
		ci, ok := slot[anchor]
		if !ok {
			ci = len(idx.cols)
			slot[anchor] = ci
			idx.cols = append(idx.cols, anchor)
			idx.byVal = append(idx.byVal, make([][]int, t.DistinctCount(anchor)))
		}
		v := c.r[anchor]
		idx.byVal[ci][v] = append(idx.byVal[ci][v], pos)
	}
	return idx
}

// generateCandidates builds the next level: every one-column extension of a
// previous-level candidate with a value that co-occurs in the data. Scanning
// the table (rather than crossing dictionaries) guarantees every candidate
// has nonzero support, the a-priori property.
//
// The pass is allocation-free: phase 1 marks, per (parent, star column),
// the distinct extension values seen among covered rows in boolean arrays;
// phase 2 materializes and deduplicates each distinct extension exactly
// once. (A naive per-row rule construction spends most of its time hashing
// rule keys.)
func (rn *runner) generateCandidates(prev []*cand, counted map[string]*cand) []*cand {
	t := rn.t
	n := t.NumRows()
	idx := rn.buildCandIndex(prev)

	// Phase 1: seen[p][si][v] marks that parent p extends with value v in
	// its si-th star column.
	starCols := make([][]int, len(prev))
	seen := make([][][]bool, len(prev))
	for p, c := range prev {
		for col, v := range c.r {
			if v == rule.Star {
				starCols[p] = append(starCols[p], col)
				seen[p] = append(seen[p], make([]bool, t.DistinctCount(col)))
			}
		}
	}
	// Parallelize with one seen-array set per worker, OR-merged after the
	// pass — but only while the extra memory stays modest.
	nw := rn.workers()
	totalBools := 0
	for p := range seen {
		for si := range seen[p] {
			totalBools += len(seen[p][si])
		}
	}
	const parallelSeenCap = 64 << 20
	if nw > 1 && totalBools*(nw-1) > parallelSeenCap {
		nw = 1
	}
	perWorker := make([][][][]bool, nw)
	perWorker[0] = seen
	for g := 1; g < nw; g++ {
		cp := make([][][]bool, len(seen))
		for p := range seen {
			cp[p] = make([][]bool, len(seen[p]))
			for si := range seen[p] {
				cp[p][si] = make([]bool, len(seen[p][si]))
			}
		}
		perWorker[g] = cp
	}
	scanRange := func(lo, hi int, mine [][][]bool) {
		for i := lo; i < hi; i++ {
			for ci, col := range idx.cols {
				for _, p := range idx.byVal[ci][t.Value(col, i)] {
					if !t.Covers(prev[p].r, i) {
						continue
					}
					for si, sc := range starCols[p] {
						mine[p][si][t.Value(sc, i)] = true
					}
				}
			}
		}
	}
	if nw == 1 {
		scanRange(0, n, seen)
	} else {
		rn.parallelRows(n, func(lo, hi, g int) { scanRange(lo, hi, perWorker[g]) })
	}
	for g := 1; g < nw; g++ {
		for p := range seen {
			for si := range seen[p] {
				for v, ok := range perWorker[g][p][si] {
					if ok {
						seen[p][si][v] = true
					}
				}
			}
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)

	// Phase 2: materialize each distinct extension once.
	dedup := make(map[string]*cand)
	for p, c := range prev {
		for si, sc := range starCols[p] {
			for v, ok := range seen[p][si] {
				if !ok {
					continue
				}
				ext := c.r.With(sc, rule.Value(v))
				key := ext.Key()
				if _, dup := dedup[key]; dup {
					continue
				}
				if _, already := counted[key]; already {
					continue
				}
				wgt := rn.w.Weight(ext.Mask())
				if wgt > rn.mw {
					continue
				}
				dedup[key] = &cand{r: ext, key: key, weight: wgt}
				if len(dedup) >= rn.maxCand {
					rn.stats.CandidateCapHit = true
					return sortedCands(dedup)
				}
			}
		}
	}
	return sortedCands(dedup)
}

// sortedCands returns the deduplicated candidates in deterministic (key)
// order so ties in marginal value resolve stably.
func sortedCands(dedup map[string]*cand) []*cand {
	out := make([]*cand, 0, len(dedup))
	for _, c := range dedup {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// upperBound computes M from Algorithm 2 step 3.3.2: the tightest bound
// min over counted sub-rules R' of MV(R') + Count(R')·(mw − W(R')) over the
// candidate's immediate sub-rules. Any counted sub-rule bounds all its
// super-rules' marginal values, because each tuple a super-rule covers is
// covered by R' and can contribute at most mw − (mass already claimed).
func (rn *runner) upperBound(c *cand, counted map[string]*cand) float64 {
	bound := math.Inf(1)
	for _, sub := range c.r.ImmediateSubRules() {
		if sc, ok := counted[sub.Key()]; ok {
			b := sc.marginal + sc.count*(rn.mw-sc.weight)
			if b < bound {
				bound = b
			}
		}
	}
	return bound
}

// countCandidates measures count and marginal value for each candidate in a
// single pass, visiting only the candidates whose anchor value matches each
// row (see candIndex).
func (rn *runner) countCandidates(cands []*cand, topW []float64) {
	t := rn.t
	n := t.NumRows()
	idx := rn.buildCandIndex(cands)
	// Per-worker accumulators indexed by candidate position, merged after
	// the pass.
	nw := rn.workers()
	cnt := make([][]float64, nw)
	mv := make([][]float64, nw)
	for g := 0; g < nw; g++ {
		cnt[g] = make([]float64, len(cands))
		mv[g] = make([]float64, len(cands))
	}
	rn.parallelRows(n, func(lo, hi, g int) {
		myCnt, myMV := cnt[g], mv[g]
		for i := lo; i < hi; i++ {
			var mass float64
			massSet := false
			for ci, col := range idx.cols {
				for _, pos := range idx.byVal[ci][t.Value(col, i)] {
					c := cands[pos]
					if !t.Covers(c.r, i) {
						continue
					}
					if !massSet {
						mass = rn.agg.Mass(t, i)
						massSet = true
					}
					myCnt[pos] += mass
					if c.weight > topW[i] {
						myMV[pos] += (c.weight - topW[i]) * mass
					}
				}
			}
		}
	})
	for g := 0; g < nw; g++ {
		for pos, c := range cands {
			c.count += cnt[g][pos]
			c.marginal += mv[g][pos]
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)
}

// Package brs implements BRS (Best Rule Set), the paper's greedy algorithm
// for Problem 3 (Section 3.4), together with the a-priori-style
// find-best-marginal-rule procedure of Section 3.5 (Algorithm 2).
//
// Score is submodular (Lemma 3), so greedily adding the rule with the
// largest marginal value k times yields a (1 − 1/e)-approximation — in fact
// 1 − ((k−1)/k)^k — provided the max-weight parameter mw is at least the
// weight of every rule in the optimal set. Each greedy step finds the best
// marginal rule in level-wise passes over the table, pruning candidate
// super-rules whose marginal value is upper-bounded below the best already
// found.
package brs

import (
	"fmt"
	"math"
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Options configures a BRS run.
type Options struct {
	// K is the number of rules to return (the paper's k; its UI default is 3,
	// the experiments use 4).
	K int
	// MaxWeight is the paper's mw parameter: BRS is guaranteed optimal (up
	// to the greedy factor) if no optimal rule weighs more than mw, and runs
	// faster for smaller values. Zero means "no bound" (mw = W of the full
	// column set), trading speed for the guarantee.
	MaxWeight float64
	// Base restricts the search to super-rules of this rule, implementing
	// rule drill-down after the view has been restricted to Base's coverage.
	// Nil means the trivial rule.
	Base rule.Rule
	// BaseCovered asserts every row of the view already covers Base, so the
	// run skips its own restriction pass. The drill layer sets it: rule
	// filters (index-backed) and samples both deliver exactly Base's
	// coverage. When false and Base is non-trivial, the run restricts the
	// view itself with one accounted pass.
	BaseCovered bool
	// Agg is the aggregated mass; nil means Count. Sum over a measure column
	// implements the Section 6.3 extension.
	Agg score.Aggregator
	// DisablePruning turns off the sub-rule upper-bound pruning (ablation).
	DisablePruning bool
	// MaxCandidatesPerLevel caps the candidate set per pass as a memory
	// safety valve; 0 means DefaultMaxCandidates. When the cap is hit the
	// result may be suboptimal; Stats.CandidateCapHit records it.
	MaxCandidatesPerLevel int
	// Workers sets the number of goroutines used for table passes; 0 or 1
	// runs serially. With the Count aggregate, parallel results are
	// bit-identical to serial ones (all accumulators stay integral).
	Workers int
	// MinGainRatio (used by RunIncremental only) stops the stream once a
	// rule's marginal value drops below this fraction of the first rule's
	// — the anytime mode's guard against flooding the display with
	// near-worthless rules. 0 disables the cutoff.
	MinGainRatio float64
}

// DefaultMaxCandidates bounds per-level candidate growth when the caller
// does not specify a cap.
const DefaultMaxCandidates = 1 << 20

// Result is one selected rule with its display statistics.
type Result struct {
	Rule   rule.Rule
	Weight float64
	// Count is the aggregate mass of all tuples covered by Rule in the
	// table BRS ran on (the value shown to the analyst).
	Count float64
	// MCount is the marginal mass: tuples covered by Rule and by no
	// higher-weight rule selected before it.
	MCount float64
}

// Stats instruments a run for the performance experiments (Figure 5) and
// the pruning ablation.
type Stats struct {
	Passes            int   // table passes across all greedy steps
	CandidatesCounted int   // rules whose marginal value was measured
	CandidatesPruned  int   // rules dropped by the upper-bound test
	RowsScanned       int64 // total row visits
	CandidateCapHit   bool  // a level hit MaxCandidatesPerLevel
}

// Run executes BRS on the view v and returns up to opts.K rules ordered by
// descending weight (the display order mandated by Lemma 1), together with
// run statistics. It returns fewer than K rules when no remaining rule has
// positive marginal value. Counts are masses over v's rows; pass the
// full-table view (Table.All) for whole-table searches.
func Run(v *table.View, w weight.Weighter, opts Options) ([]Result, Stats, error) {
	if opts.K <= 0 {
		return nil, Stats{}, fmt.Errorf("brs: K must be positive, got %d", opts.K)
	}
	run, err := newRunner(v, w, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	var selected []Result
	for step := 0; step < opts.K; step++ {
		best := run.findBestMarginal(resultsToRules(selected))
		if best == nil || best.marginal <= 0 {
			break
		}
		selected = append(selected, Result{
			Rule:   best.r,
			Weight: weight.WeightRule(run.w, best.r),
			Count:  best.count,
			MCount: 0, // recomputed below once ordering is final
		})
	}
	// Order by descending weight and fill marginal counts in that order.
	sort.SliceStable(selected, func(i, j int) bool {
		if selected[i].Weight != selected[j].Weight {
			return selected[i].Weight > selected[j].Weight
		}
		return selected[i].Rule.Key() < selected[j].Rule.Key()
	})
	rules := resultsToRules(selected)
	mcs := score.MCountsView(run.v, run.w, run.agg, rules)
	for i := range selected {
		selected[i].MCount = mcs[i]
	}
	return selected, run.stats, nil
}

// newRunner normalizes options and restricts the view to Base's coverage
// when the caller has not already done so. Shared by Run and
// RunIncremental.
func newRunner(v *table.View, w weight.Weighter, opts Options) (*runner, error) {
	base := opts.Base
	if base == nil {
		base = rule.Trivial(v.NumCols())
	}
	if len(base) != v.NumCols() {
		return nil, errBaseArity(len(base), v.NumCols())
	}
	agg := opts.Agg
	if agg == nil {
		agg = score.CountAgg{}
	}
	mw := opts.MaxWeight
	if mw <= 0 {
		mw = w.MaxWeight(v.NumCols())
	}
	maxCand := opts.MaxCandidatesPerLevel
	if maxCand <= 0 {
		maxCand = DefaultMaxCandidates
	}
	run := &runner{
		v: v, parent: v.Table(), w: w, agg: agg, mw: mw, base: base,
		prune: !opts.DisablePruning, maxCand: maxCand, par: opts.Workers,
	}
	if !opts.BaseCovered && !base.IsTrivial() {
		// One pass narrows the view so every subsequent pass iterates only
		// covered rows and never re-evaluates Covers(base, i).
		run.stats.Passes++
		run.stats.RowsScanned += int64(v.NumRows())
		run.v = v.Refine(base)
	}
	run.freeCols = run.freeColumns()
	return run, nil
}

func resultsToRules(rs []Result) []rule.Rule {
	out := make([]rule.Rule, len(rs))
	for i := range rs {
		out[i] = rs[i].Rule
	}
	return out
}

// runner holds per-Run state shared by greedy steps. All passes iterate
// rn.v, whose every row covers rn.base, so per-row base checks are gone
// from the inner loops; coverage tests against candidates touch only the
// base's free columns.
type runner struct {
	v        *table.View
	parent   *table.Table // v's parent, for aggregate mass and sub-rule tests
	w        weight.Weighter
	agg      score.Aggregator
	mw       float64
	base     rule.Rule
	freeCols []int // columns the base leaves starred
	prune    bool
	maxCand  int
	par      int
	stats    Stats
}

// coversFreeParent reports whether r covers the parent-table row pi,
// checking only the base's free columns — valid because every row of rn.v
// covers rn.base and every rule tested derives from it. Passes resolve the
// parent row once per row and test candidates against the parent arrays
// directly.
func (rn *runner) coversFreeParent(r rule.Rule, pi int) bool {
	for _, c := range rn.freeCols {
		if v := r[c]; v != rule.Star && rn.parent.Value(c, pi) != v {
			return false
		}
	}
	return true
}

// cand is one candidate rule with accumulated statistics.
type cand struct {
	r        rule.Rule
	key      string // cached r.Key(), used for dedup and stable ordering
	weight   float64
	count    float64 // aggregate mass covered
	marginal float64 // marginal value vs the current selection
}

// findBestMarginal implements Algorithm 2: level-wise candidate counting
// with sub-rule upper-bound pruning against threshold H.
func (rn *runner) findBestMarginal(selected []rule.Rule) *cand {
	n := rn.v.NumRows()
	if n == 0 {
		return nil
	}

	// One pass to fix wS[i]: weight of the best selected rule covering view
	// row i (W(RS) in Algorithm 2). Selected rules all derive from the same
	// base, so this is O(|v|·|S|).
	topW := make([]float64, n)
	if len(selected) > 0 {
		sw := make([]float64, len(selected))
		for j, r := range selected {
			sw[j] = weight.WeightRule(rn.w, r)
		}
		rn.parallelRows(n, func(lo, hi, _ int) {
			for i := lo; i < hi; i++ {
				pi := rn.v.ParentRow(i)
				for j, r := range selected {
					if sw[j] > topW[i] && rn.coversFreeParent(r, pi) {
						topW[i] = sw[j]
					}
				}
			}
		})
		rn.stats.Passes++
		rn.stats.RowsScanned += int64(n)
	}

	freeCols := rn.freeCols
	if len(freeCols) == 0 {
		return nil
	}

	counted := make(map[string]*cand) // C in Algorithm 2: all counted rules
	var best *cand
	H := 0.0

	// Level 1: one pass counts every single-extension rule base+(c,v).
	prev := rn.countLevelOne(freeCols, topW, counted)
	for _, c := range prev {
		if best == nil || c.marginal > best.marginal {
			best = c
		}
	}
	if best != nil {
		H = best.marginal
	}

	// Levels 2..: generate super-rules of the previous level's candidates,
	// prune by upper bound, count survivors in one pass.
	for level := 2; level <= len(freeCols); level++ {
		next := rn.generateCandidates(prev, counted)
		if len(next) == 0 {
			break
		}
		survivors := next[:0]
		for _, c := range next {
			if rn.prune && rn.upperBound(c, counted) < H {
				rn.stats.CandidatesPruned++
				continue
			}
			survivors = append(survivors, c)
		}
		if len(survivors) == 0 {
			break
		}
		rn.countCandidates(survivors, topW)
		for _, c := range survivors {
			counted[c.key] = c
			rn.stats.CandidatesCounted++
			if best == nil || c.marginal > best.marginal {
				best = c
				H = c.marginal
			}
		}
		prev = survivors
	}
	return best
}

// freeColumns lists columns not instantiated by the base rule.
func (rn *runner) freeColumns() []int {
	var cols []int
	for c, v := range rn.base {
		if v == rule.Star {
			cols = append(cols, c)
		}
	}
	return cols
}

// countLevelOne counts, in a single pass, every rule extending the base by
// one (column, value) pair and returns the candidates. Column-major layout
// lets us accumulate per (column, value-id) without hashing.
func (rn *runner) countLevelOne(freeCols []int, topW []float64, counted map[string]*cand) []*cand {
	v := rn.v
	n := v.NumRows()

	type colAcc struct {
		col    int
		weight float64
		cnt    []float64
		mv     []float64
	}
	accs := make([]colAcc, 0, len(freeCols))
	baseMask := rn.base.Mask()
	for _, c := range freeCols {
		m := baseMask
		m.Set(c)
		wgt := rn.w.Weight(m)
		if wgt > rn.mw {
			continue // weight cap: super-rules only get heavier (monotone)
		}
		accs = append(accs, colAcc{
			col:    c,
			weight: wgt,
			cnt:    make([]float64, v.DistinctCount(c)),
			mv:     make([]float64, v.DistinctCount(c)),
		})
	}
	if len(accs) == 0 {
		return nil
	}
	// One accumulator set per worker; merged after the pass.
	nw := rn.workers()
	perWorker := make([][]colAcc, nw)
	perWorker[0] = accs
	for g := 1; g < nw; g++ {
		cp := make([]colAcc, len(accs))
		for a, acc := range accs {
			cp[a] = colAcc{
				col:    acc.col,
				weight: acc.weight,
				cnt:    make([]float64, len(acc.cnt)),
				mv:     make([]float64, len(acc.mv)),
			}
		}
		perWorker[g] = cp
	}
	parent := rn.parent
	rn.parallelRows(n, func(lo, hi, g int) {
		mine := perWorker[g]
		for i := lo; i < hi; i++ {
			// Every view row covers the base: no per-row base check. The
			// parent row is resolved once per row for all accumulators.
			pi := v.ParentRow(i)
			mass := rn.agg.Mass(parent, pi)
			tw := topW[i]
			for a := range mine {
				acc := &mine[a]
				val := parent.Value(acc.col, pi)
				acc.cnt[val] += mass
				if acc.weight > tw {
					acc.mv[val] += (acc.weight - tw) * mass
				}
			}
		}
	})
	for g := 1; g < nw; g++ {
		for a := range accs {
			for v := range accs[a].cnt {
				accs[a].cnt[v] += perWorker[g][a].cnt[v]
				accs[a].mv[v] += perWorker[g][a].mv[v]
			}
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)

	var out []*cand
	for a := range accs {
		acc := &accs[a]
		for val := range acc.cnt {
			if acc.cnt[val] == 0 {
				continue
			}
			r := rn.base.With(acc.col, rule.Value(val))
			c := &cand{
				r:        r,
				key:      r.Key(),
				weight:   acc.weight,
				count:    acc.cnt[val],
				marginal: acc.mv[val],
			}
			counted[c.key] = c
			rn.stats.CandidatesCounted++
			out = append(out, c)
		}
	}
	return out
}

// candIndex buckets candidate rules by the value they require in one
// chosen anchor column (their first instantiated non-base column). During a
// table pass, only the candidates whose anchor value matches the row are
// checked for full coverage — turning the O(rows × candidates) inner loop
// into O(rows × anchor-matches).
type candIndex struct {
	cols  []int     // anchor columns in use
	byVal [][][]int // byVal[ci][valueID] = positions of candidates anchored at (cols[ci], valueID)
}

// buildCandIndex indexes cands by anchor column/value. Anchor choice: the
// first instantiated column that the base leaves free (every non-base
// candidate has one).
func (rn *runner) buildCandIndex(cands []*cand) candIndex {
	var idx candIndex
	slot := make(map[int]int) // column → position in idx.cols
	for pos, c := range cands {
		anchor := -1
		for col, v := range c.r {
			if v != rule.Star && rn.base[col] == rule.Star {
				anchor = col
				break
			}
		}
		if anchor < 0 {
			continue // candidate equals base; cannot happen at level ≥ 1
		}
		ci, ok := slot[anchor]
		if !ok {
			ci = len(idx.cols)
			slot[anchor] = ci
			idx.cols = append(idx.cols, anchor)
			idx.byVal = append(idx.byVal, make([][]int, rn.v.DistinctCount(anchor)))
		}
		v := c.r[anchor]
		idx.byVal[ci][v] = append(idx.byVal[ci][v], pos)
	}
	return idx
}

// generateCandidates builds the next level: every one-column extension of a
// previous-level candidate with a value that co-occurs in the data. Scanning
// the table (rather than crossing dictionaries) guarantees every candidate
// has nonzero support, the a-priori property.
//
// The pass is allocation-free: phase 1 marks, per (parent, star column),
// the distinct extension values seen among covered rows in boolean arrays;
// phase 2 materializes and deduplicates each distinct extension exactly
// once. (A naive per-row rule construction spends most of its time hashing
// rule keys.)
func (rn *runner) generateCandidates(prev []*cand, counted map[string]*cand) []*cand {
	v := rn.v
	n := v.NumRows()
	idx := rn.buildCandIndex(prev)

	// Phase 1: seen[p][si][val] marks that parent p extends with value val
	// in its si-th star column.
	starCols := make([][]int, len(prev))
	seen := make([][][]bool, len(prev))
	for p, c := range prev {
		for col, val := range c.r {
			if val == rule.Star {
				starCols[p] = append(starCols[p], col)
				seen[p] = append(seen[p], make([]bool, v.DistinctCount(col)))
			}
		}
	}
	// Parallelize with one seen-array set per worker, OR-merged after the
	// pass — but only while the extra memory stays modest.
	nw := rn.workers()
	totalBools := 0
	for p := range seen {
		for si := range seen[p] {
			totalBools += len(seen[p][si])
		}
	}
	const parallelSeenCap = 64 << 20
	if nw > 1 && totalBools*(nw-1) > parallelSeenCap {
		nw = 1
	}
	perWorker := make([][][][]bool, nw)
	perWorker[0] = seen
	for g := 1; g < nw; g++ {
		cp := make([][][]bool, len(seen))
		for p := range seen {
			cp[p] = make([][]bool, len(seen[p]))
			for si := range seen[p] {
				cp[p][si] = make([]bool, len(seen[p][si]))
			}
		}
		perWorker[g] = cp
	}
	parent := rn.parent
	scanRange := func(lo, hi int, mine [][][]bool) {
		for i := lo; i < hi; i++ {
			pi := v.ParentRow(i)
			for ci, col := range idx.cols {
				for _, p := range idx.byVal[ci][parent.Value(col, pi)] {
					if !rn.coversFreeParent(prev[p].r, pi) {
						continue
					}
					for si, sc := range starCols[p] {
						mine[p][si][parent.Value(sc, pi)] = true
					}
				}
			}
		}
	}
	if nw == 1 {
		scanRange(0, n, seen)
	} else {
		rn.parallelRows(n, func(lo, hi, g int) { scanRange(lo, hi, perWorker[g]) })
	}
	for g := 1; g < nw; g++ {
		for p := range seen {
			for si := range seen[p] {
				for v, ok := range perWorker[g][p][si] {
					if ok {
						seen[p][si][v] = true
					}
				}
			}
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)

	// Phase 2: materialize each distinct extension once.
	dedup := make(map[string]*cand)
	for p, c := range prev {
		for si, sc := range starCols[p] {
			for val, ok := range seen[p][si] {
				if !ok {
					continue
				}
				ext := c.r.With(sc, rule.Value(val))
				key := ext.Key()
				if _, dup := dedup[key]; dup {
					continue
				}
				if _, already := counted[key]; already {
					continue
				}
				wgt := rn.w.Weight(ext.Mask())
				if wgt > rn.mw {
					continue
				}
				dedup[key] = &cand{r: ext, key: key, weight: wgt}
				if len(dedup) >= rn.maxCand {
					rn.stats.CandidateCapHit = true
					return sortedCands(dedup)
				}
			}
		}
	}
	return sortedCands(dedup)
}

// sortedCands returns the deduplicated candidates in deterministic (key)
// order so ties in marginal value resolve stably.
func sortedCands(dedup map[string]*cand) []*cand {
	out := make([]*cand, 0, len(dedup))
	for _, c := range dedup {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// upperBound computes M from Algorithm 2 step 3.3.2: the tightest bound
// min over counted sub-rules R' of MV(R') + Count(R')·(mw − W(R')) over the
// candidate's immediate sub-rules. Any counted sub-rule bounds all its
// super-rules' marginal values, because each tuple a super-rule covers is
// covered by R' and can contribute at most mw − (mass already claimed).
func (rn *runner) upperBound(c *cand, counted map[string]*cand) float64 {
	bound := math.Inf(1)
	for _, sub := range c.r.ImmediateSubRules() {
		if sc, ok := counted[sub.Key()]; ok {
			b := sc.marginal + sc.count*(rn.mw-sc.weight)
			if b < bound {
				bound = b
			}
		}
	}
	return bound
}

// countCandidates measures count and marginal value for each candidate in a
// single pass, visiting only the candidates whose anchor value matches each
// row (see candIndex).
func (rn *runner) countCandidates(cands []*cand, topW []float64) {
	v := rn.v
	n := v.NumRows()
	idx := rn.buildCandIndex(cands)
	// Per-worker accumulators indexed by candidate position, merged after
	// the pass.
	nw := rn.workers()
	cnt := make([][]float64, nw)
	mv := make([][]float64, nw)
	for g := 0; g < nw; g++ {
		cnt[g] = make([]float64, len(cands))
		mv[g] = make([]float64, len(cands))
	}
	parent := rn.parent
	rn.parallelRows(n, func(lo, hi, g int) {
		myCnt, myMV := cnt[g], mv[g]
		for i := lo; i < hi; i++ {
			pi := v.ParentRow(i)
			var mass float64
			massSet := false
			for ci, col := range idx.cols {
				for _, pos := range idx.byVal[ci][parent.Value(col, pi)] {
					c := cands[pos]
					if !rn.coversFreeParent(c.r, pi) {
						continue
					}
					if !massSet {
						mass = rn.agg.Mass(parent, pi)
						massSet = true
					}
					myCnt[pos] += mass
					if c.weight > topW[i] {
						myMV[pos] += (c.weight - topW[i]) * mass
					}
				}
			}
		}
	})
	for g := 0; g < nw; g++ {
		for pos, c := range cands {
			c.count += cnt[g][pos]
			c.marginal += mv[g][pos]
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)
}

// Package brs implements BRS (Best Rule Set), the paper's greedy algorithm
// for Problem 3 (Section 3.4), together with the a-priori-style
// find-best-marginal-rule procedure of Section 3.5 (Algorithm 2).
//
// Score is submodular (Lemma 3), so greedily adding the rule with the
// largest marginal value k times yields a (1 − 1/e)-approximation — in fact
// 1 − ((k−1)/k)^k — provided the max-weight parameter mw is at least the
// weight of every rule in the optimal set. Each greedy step finds the best
// marginal rule in level-wise passes over the table, pruning candidate
// super-rules whose marginal value is upper-bounded below the best already
// found.
//
// Three hot-path optimizations sit on top of the textbook algorithm, all
// result-preserving (and individually ablatable via Options):
//
//   - Packed candidate identity: candidates are deduplicated, looked up,
//     and ordered by a fixed-size rule.PackedKey instead of heap-allocated
//     Rule.Key() strings, so the inner loops never allocate per candidate.
//
//   - Cross-step count reuse: candidate aggregate masses are invariant
//     across the K greedy steps, so counted candidates (and each
//     candidate's generated super-rule set) live on the runner and are
//     reused by later steps; after each selection one cheap maintenance
//     pass over the selected rule's coverage re-derives every cached
//     marginal against the new topW, instead of recounting everything.
//
//   - Postings-driven counting: when the view is the full table or a
//     sorted row set, a per-level cost model routes counting to
//     intersections of the table's posting lists (level-1 counts under
//     Count are just posting lengths) instead of row scans.
package brs

import (
	"context"
	"fmt"
	"math"
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Options configures a BRS run.
type Options struct {
	// K is the number of rules to return (the paper's k; its UI default is 3,
	// the experiments use 4).
	K int
	// MaxWeight is the paper's mw parameter: BRS is guaranteed optimal (up
	// to the greedy factor) if no optimal rule weighs more than mw, and runs
	// faster for smaller values. Zero means "no bound" (mw = W of the full
	// column set), trading speed for the guarantee.
	MaxWeight float64
	// Base restricts the search to super-rules of this rule, implementing
	// rule drill-down after the view has been restricted to Base's coverage.
	// Nil means the trivial rule.
	Base rule.Rule
	// BaseCovered asserts every row of the view already covers Base, so the
	// run skips its own restriction pass. The drill layer sets it: rule
	// filters (index-backed) and samples both deliver exactly Base's
	// coverage. When false and Base is non-trivial, the run restricts the
	// view itself with one accounted pass.
	BaseCovered bool
	// Agg is the aggregated mass; nil means Count. Sum over a measure column
	// implements the Section 6.3 extension.
	Agg score.Aggregator
	// SampleScale declares the view a uniform sample of a larger (sub)table
	// and scales every emitted Count/MCount by this factor, so results are
	// table-level estimates instead of sample-local masses (Section 4: BRS
	// over a sample, displayed counts scaled by Ns). Rule selection is
	// unaffected — a uniform scale preserves every marginal-value
	// comparison — but Stats.SampledRowsScanned records the sample rows the
	// search read. 0 or 1 means the view is exact.
	SampleScale float64
	// DisablePruning turns off the sub-rule upper-bound pruning (ablation).
	DisablePruning bool
	// DisableReuse turns off cross-step candidate reuse (ablation, and the
	// equivalence suite's reference): every greedy step rebuilds topW and
	// recounts every candidate from scratch, as the textbook algorithm is
	// written.
	DisableReuse bool
	// DisableIndex turns off postings-driven counting (ablation, and the
	// equivalence suite's reference): every level is counted by row scans.
	// Implies DisableBitmap — the bitmap kernel is an index access path.
	DisableIndex bool
	// DisableBitmap turns off the bitset counting kernel (ablation): the
	// cost planner only ever chooses between row scans and galloping
	// posting intersections, as before the packed containers existed.
	DisableBitmap bool
	// DisableParallel forces every pass serial regardless of Workers and
	// the automatic core count (ablation, and the deterministic reference
	// for the parallel-merge equivalence suite).
	DisableParallel bool
	// MaxCandidatesPerLevel caps the candidate set per pass as a memory
	// safety valve; 0 means DefaultMaxCandidates. When the cap is hit the
	// result may be suboptimal; Stats.CandidateCapHit records it.
	MaxCandidatesPerLevel int
	// Workers sets the number of goroutines used for table passes. 0 (the
	// default) saturates the hardware: runtime.NumCPU() workers under the
	// Count aggregate, serial otherwise (auto-parallelism is only applied
	// where bit-identity to the serial path is guaranteed — Count
	// accumulators stay integral; Sum callers opt in explicitly and accept
	// last-ulp float reordering). 1 runs serially; see also
	// DisableParallel. Every pass splits rows (or candidates) into one
	// contiguous chunk per worker with private accumulators merged in
	// worker order at the pass boundary, so results never depend on
	// goroutine scheduling.
	Workers int
	// MinGainRatio (used by RunIncremental only) stops the stream once a
	// rule's marginal value drops below this fraction of the first rule's
	// — the anytime mode's guard against flooding the display with
	// near-worthless rules. 0 disables the cutoff.
	MinGainRatio float64
}

// DefaultMaxCandidates bounds per-level candidate growth when the caller
// does not specify a cap.
const DefaultMaxCandidates = 1 << 20

// Result is one selected rule with its display statistics.
type Result struct {
	Rule   rule.Rule
	Weight float64
	// Count is the aggregate mass of all tuples covered by Rule in the
	// table BRS ran on (the value shown to the analyst).
	Count float64
	// MCount is the marginal mass: tuples covered by Rule and by no
	// higher-weight rule selected before it.
	MCount float64
}

// Stats instruments a run for the performance experiments (Figure 5) and
// the pruning/reuse/index ablations.
type Stats struct {
	Passes            int   `json:"passes"`             // row-scan passes across all greedy steps
	CandidatesCounted int   `json:"candidates_counted"` // rules whose aggregate mass was measured
	CandidatesPruned  int   `json:"candidates_pruned"`  // rules dropped by the upper-bound test
	CandidatesReused  int   `json:"candidates_reused"`  // counted rules served from the cross-step cache
	RowsScanned       int64 `json:"rows_scanned"`       // total row visits by scan passes
	PostingsRead      int64 `json:"postings_read"`      // posting entries read by index-driven counting
	BitmapWordsRead   int64 `json:"bitmap_words_read"`  // packed bitset words read by the bitmap kernel
	IndexLevels       int   `json:"index_levels"`       // counting/generation/maintenance steps answered from the index
	CandidateCapHit   bool  `json:"candidate_cap_hit"`  // a level hit MaxCandidatesPerLevel
	// SampledRowsScanned is the portion of RowsScanned read from a uniform
	// sample rather than the authoritative table (runs with SampleScale
	// set). Sessions accumulate it so the approximate pipeline's in-memory
	// reads stay visible next to real table I/O.
	SampledRowsScanned int64 `json:"sampled_rows_scanned"`
	// CacheHits, CacheMisses and SingleflightWaits are filed by the search
	// service's answer cache, not by BRS itself: a cache-hit expansion has
	// zero passes and zero rows scanned, and these counters are how that
	// absence stays visible (CacheMisses counts actual BRS executions;
	// SingleflightWaits counts requests served by adopting a concurrent
	// identical run). They ride in Stats so one struct flows through
	// sessions, the store, and the wire unchanged.
	CacheHits         int `json:"cache_hits"`
	CacheMisses       int `json:"cache_misses"`
	SingleflightWaits int `json:"singleflight_waits"`
}

// Add accumulates o into s (CandidateCapHit ORs). Sessions use it to keep
// running totals across repeated expansions.
func (s *Stats) Add(o Stats) {
	s.Passes += o.Passes
	s.CandidatesCounted += o.CandidatesCounted
	s.CandidatesPruned += o.CandidatesPruned
	s.CandidatesReused += o.CandidatesReused
	s.RowsScanned += o.RowsScanned
	s.PostingsRead += o.PostingsRead
	s.BitmapWordsRead += o.BitmapWordsRead
	s.IndexLevels += o.IndexLevels
	s.CandidateCapHit = s.CandidateCapHit || o.CandidateCapHit
	s.SampledRowsScanned += o.SampledRowsScanned
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.SingleflightWaits += o.SingleflightWaits
}

// Run executes BRS on the view v and returns up to opts.K rules ordered by
// descending weight (the display order mandated by Lemma 1), together with
// run statistics. It returns fewer than K rules when no remaining rule has
// positive marginal value. Counts are masses over v's rows; pass the
// full-table view (Table.All) for whole-table searches.
func Run(v *table.View, w weight.Weighter, opts Options) ([]Result, Stats, error) {
	return RunCtx(context.Background(), v, w, opts)
}

// RunCtx is Run under a cancellation context: the greedy search checks ctx
// between counting passes and aborts with ctx's error (and the statistics
// of the work already done) when it fires — an abandoned interactive
// request stops paying for table passes at the next pass boundary.
func RunCtx(ctx context.Context, v *table.View, w weight.Weighter, opts Options) ([]Result, Stats, error) {
	if opts.K <= 0 {
		return nil, Stats{}, fmt.Errorf("brs: K must be positive, got %d", opts.K)
	}
	run, err := newRunner(v, w, opts)
	if err != nil {
		return nil, Stats{}, err
	}
	run.ctx = ctx
	var selected []Result
	for step := 0; step < opts.K; step++ {
		best := run.findBestMarginal()
		if run.ctxErr != nil {
			return nil, run.finalStats(), run.ctxErr
		}
		if best == nil || best.marginal <= 0 {
			break
		}
		selected = append(selected, Result{
			Rule:   best.r,
			Weight: best.weight,
			Count:  best.count * run.scale,
			MCount: 0, // recomputed below once ordering is final
		})
		run.applySelection(best)
	}
	// Order by descending weight and fill marginal counts in that order.
	// Each tie-break key is built once, not on every comparison.
	keys := make([]string, len(selected))
	for i := range selected {
		keys[i] = selected[i].Rule.Key()
	}
	order := make([]int, len(selected))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if selected[i].Weight != selected[j].Weight {
			return selected[i].Weight > selected[j].Weight
		}
		return keys[i] < keys[j]
	})
	ordered := make([]Result, len(selected))
	for a, i := range order {
		ordered[a] = selected[i]
	}
	selected = ordered
	rules := resultsToRules(selected)
	mcs := score.MCountsView(run.v, run.w, run.agg, rules)
	for i := range selected {
		selected[i].MCount = mcs[i] * run.scale
	}
	return selected, run.finalStats(), nil
}

// newRunner normalizes options and restricts the view to Base's coverage
// when the caller has not already done so. Shared by Run and
// RunIncremental.
func newRunner(v *table.View, w weight.Weighter, opts Options) (*runner, error) {
	base := opts.Base
	if base == nil {
		base = rule.Trivial(v.NumCols())
	}
	if len(base) != v.NumCols() {
		return nil, errBaseArity(len(base), v.NumCols())
	}
	agg := opts.Agg
	if agg == nil {
		agg = score.CountAgg{}
	}
	mw := opts.MaxWeight
	if mw <= 0 {
		mw = w.MaxWeight(v.NumCols())
	}
	maxCand := opts.MaxCandidatesPerLevel
	if maxCand <= 0 {
		maxCand = DefaultMaxCandidates
	}
	scale := opts.SampleScale
	if scale <= 0 {
		scale = 1
	}
	run := &runner{
		v: v, parent: v.Table(), w: w, agg: agg, mw: mw, base: base,
		prune: !opts.DisablePruning, maxCand: maxCand, par: opts.Workers,
		noReuse: opts.DisableReuse, noIndex: opts.DisableIndex,
		noBitmap: opts.DisableBitmap, noParallel: opts.DisableParallel,
		scale: scale,
	}
	if !opts.BaseCovered && !base.IsTrivial() {
		// One pass narrows the view so every subsequent pass iterates only
		// covered rows and never re-evaluates Covers(base, i).
		run.stats.Passes++
		run.stats.RowsScanned += int64(v.NumRows())
		run.v = v.Refine(base)
	}
	run.baseMask = base.Mask()
	run.freeCols = run.freeColumns()
	_, run.countAgg = agg.(score.CountAgg)
	if !run.noIndex {
		// Postings-driven counting needs the view to be a sorted row set so
		// posting intersections enumerate view positions. The full table,
		// index-backed rule filters, and handler-served samples (sorted row
		// sets since the sampled pipeline) all qualify; probe subsets drawn
		// with replacement fail the check and always scan. For sample views
		// the cost planner weighs intersecting the master table's posting
		// lists against scanning the (much smaller) sample and routes to
		// whichever reads less.
		run.sorted = run.v.Ascending()
		run.fullTable = run.sorted && run.v.NumRows() == run.parent.NumRows()
		if run.sorted {
			run.ix = run.parent.Index()
		}
		// The bitmap kernel answers counting over the *parent* row universe,
		// so it applies only when view positions are parent rows (full
		// table); and popcount counting is mass accumulation only under
		// Count (every row weighs 1, sums stay integral).
		run.bitmapOK = !run.noBitmap && run.fullTable && run.countAgg && run.ix != nil
		run.bitmapWords = int64((run.parent.NumRows() + 63) / 64)
	}
	run.store = newCandStore()
	return run, nil
}

func resultsToRules(rs []Result) []rule.Rule {
	out := make([]rule.Rule, len(rs))
	for i := range rs {
		out[i] = rs[i].Rule
	}
	return out
}

// runner holds per-Run state shared by greedy steps. All passes iterate
// rn.v, whose every row covers rn.base, so per-row base checks are gone
// from the inner loops; coverage tests against candidates touch only the
// base's free columns.
//
// The cross-step caches live here: topW (weight of the best selected rule
// covering each view row, maintained incrementally by applySelection), the
// candidate store (every candidate materialized this run, with counted
// masses and current marginals), and the cached level-1 candidate list.
type runner struct {
	v           *table.View
	parent      *table.Table // v's parent, for aggregate mass and sub-rule tests
	ix          *table.Index // parent's inverted index; nil when unusable
	w           weight.Weighter
	agg         score.Aggregator
	countAgg    bool // agg is the plain Count aggregate
	mw          float64
	base        rule.Rule
	baseMask    rule.Mask
	freeCols    []int // columns the base leaves starred
	prune       bool
	maxCand     int
	par         int
	noReuse     bool
	noIndex     bool
	noBitmap    bool
	noParallel  bool
	scale       float64 // SampleScale normalized: emitted masses multiply by it
	sorted      bool    // view rows ascending: postings-driven counting possible
	fullTable   bool    // view spans every parent row
	bitmapOK    bool    // bitset kernel eligible: full table, Count, index present
	bitmapWords int64   // words per bitset container: ceil(parentRows/64)

	topW     []float64 // W(TOP(t, selection)) per view row; nil until first selection
	selected []selectedRule
	store    candStore
	level1   []*cand // cached single-extension candidates (step 1's pass)
	gen      int     // generation-merge epoch, see generateCandidates
	stats    Stats

	// ctx cancels the search between counting passes; ctxErr latches the
	// context's error once observed so every later check is a field read.
	ctx    context.Context
	ctxErr error
}

// canceled reports (and latches) whether the run's context has fired. The
// greedy loops consult it at pass boundaries — a canceled search abandons
// its remaining passes but never corrupts per-candidate state, because
// checks only sit between whole passes.
func (rn *runner) canceled() bool {
	if rn.ctxErr != nil {
		return true
	}
	if rn.ctx == nil {
		return false
	}
	if err := rn.ctx.Err(); err != nil {
		rn.ctxErr = err
		return true
	}
	return false
}

type selectedRule struct {
	r rule.Rule
	w float64
}

// coversFreeParent reports whether r covers the parent-table row pi,
// checking only the base's free columns — valid because every row of rn.v
// covers rn.base and every rule tested derives from it. Passes resolve the
// parent row once per row and test candidates against the parent arrays
// directly.
func (rn *runner) coversFreeParent(r rule.Rule, pi int) bool {
	for _, c := range rn.freeCols {
		if v := r[c]; v != rule.Star && rn.parent.Value(c, pi) != v {
			return false
		}
	}
	return true
}

// cand is one candidate rule with accumulated statistics and cross-step
// cache state. Identity is the packed key (pk) when the rule fits
// rule.MaxPackedValues free values; deeper rules fall back to the string
// key, built lazily.
type cand struct {
	r      rule.Rule
	pk     rule.PackedKey
	packed bool
	skey   string    // lazy Rule.Key(); identity and ordering fallback
	mask   rule.Mask // full instantiated-column mask (base included)
	weight float64

	count    float64 // aggregate mass covered (step-invariant once counted)
	marginal float64 // marginal value vs the *current* selection
	counted  bool    // mass has been measured
	expanded bool    // children holds every supported one-column extension
	children []*cand
	lastGen  int // epoch marker deduplicating the cross-parent child merge
}

// key returns the candidate's string key, building it at most once. Only
// ordering fallbacks and overflow (unpackable) candidates ever call it.
func (c *cand) key() string {
	if c.skey == "" {
		c.skey = c.r.Key()
	}
	return c.skey
}

// candLess orders candidates identically to the old string-key order:
// packed keys compare in Rule.Key() byte order by construction, so the two
// representations sort consistently even when mixed.
func candLess(a, b *cand) bool {
	if a.packed && b.packed {
		return a.pk.Compare(b.pk) < 0
	}
	return a.key() < b.key()
}

// candStore is the run-wide candidate registry (C in Algorithm 2, hoisted
// out of the per-step procedure so steps 2..K reuse step 1's counting
// work). counted lists counted candidates in counting order — the
// deterministic order marginal-maintenance accumulators are merged in.
type candStore struct {
	packed  map[rule.PackedKey]*cand
	over    map[string]*cand // candidates too deep for a packed key
	counted []*cand
}

func newCandStore() candStore {
	return candStore{packed: make(map[rule.PackedKey]*cand)}
}

// byPK looks up a packed candidate; nil when absent.
func (cs *candStore) byPK(pk rule.PackedKey) *cand { return cs.packed[pk] }

// addOver registers an overflow candidate, allocating the map lazily
// (overflow needs > rule.MaxPackedValues instantiated free columns, which
// no realistic drill-down reaches).
func (cs *candStore) addOver(key string, c *cand) {
	if cs.over == nil {
		cs.over = make(map[string]*cand)
	}
	cs.over[key] = c
}

// markCounted flags c as counted and appends it to the counted order.
func (rn *runner) markCounted(c *cand) {
	c.counted = true
	rn.store.counted = append(rn.store.counted, c)
	rn.stats.CandidatesCounted++
}

// findBestMarginal implements Algorithm 2: level-wise candidate counting
// with sub-rule upper-bound pruning against threshold H. Candidates
// already counted in earlier greedy steps are served from the runner's
// store — their counts are invariant and their marginals are kept current
// by applySelection — so only genuinely new candidates touch the data.
func (rn *runner) findBestMarginal() *cand {
	if rn.v.NumRows() == 0 || len(rn.freeCols) == 0 || rn.canceled() {
		return nil
	}
	if rn.noReuse {
		rn.store = newCandStore()
		rn.level1 = nil
		rn.rebuildTopW()
	}

	var best *cand
	H := 0.0

	// Level 1: every single-extension rule base+(c,v), counted once per run
	// (one pass, or posting lengths) and reused by later steps.
	if rn.level1 == nil {
		rn.level1 = rn.countLevelOne()
	} else {
		rn.stats.CandidatesReused += len(rn.level1)
	}
	for _, c := range rn.level1 {
		if best == nil || c.marginal > best.marginal {
			best = c
		}
	}
	if best != nil {
		H = best.marginal
	}

	// Levels 2..: generate super-rules of the previous level's candidates,
	// prune uncounted ones by upper bound, count the survivors.
	prev := rn.level1
	for level := 2; level <= len(rn.freeCols); level++ {
		if rn.canceled() {
			return nil
		}
		next := rn.generateCandidates(prev)
		if len(next) == 0 {
			break
		}
		survivors := next[:0]
		var toCount []*cand
		for _, c := range next {
			if c.counted {
				// Cached from an earlier step: exact count and an
				// up-to-date marginal, no bound test needed.
				rn.stats.CandidatesReused++
				survivors = append(survivors, c)
				continue
			}
			if rn.prune && rn.upperBound(c) < H {
				rn.stats.CandidatesPruned++
				continue
			}
			survivors = append(survivors, c)
			toCount = append(toCount, c)
		}
		if len(survivors) == 0 {
			break
		}
		if len(toCount) > 0 {
			rn.countCandidates(toCount)
			for _, c := range toCount {
				rn.markCounted(c)
			}
		}
		for _, c := range survivors {
			if best == nil || c.marginal > best.marginal {
				best = c
				H = c.marginal
			}
		}
		prev = survivors
	}
	return best
}

// applySelection commits best as the step's selected rule and brings the
// cross-step caches up to date: topW rises to best.weight on best's
// coverage, and every cached marginal is re-derived in the same pass —
// for each row whose topW changed, each counted candidate covering it
// loses exactly the mass the new selection claims. One pass over best's
// coverage (or a posting intersection when cheaper) replaces the full
// topW rebuild plus per-candidate recount the textbook algorithm pays.
func (rn *runner) applySelection(best *cand) {
	rn.selected = append(rn.selected, selectedRule{best.r, best.weight})
	if rn.noReuse {
		return // findBestMarginal rebuilds topW and recounts from scratch
	}
	n := rn.v.NumRows()
	if rn.topW == nil {
		rn.topW = make([]float64, n)
	}
	counted := rn.store.counted
	idx := rn.buildCandIndex(counted)
	wSel := best.weight

	// visit applies the topW update and marginal deltas for one covered
	// view row, accumulating per-candidate deltas into deltas.
	visit := func(pos, pi int, deltas []float64) {
		old := rn.topW[pos]
		if wSel <= old {
			return
		}
		rn.topW[pos] = wSel
		mass := rn.agg.Mass(rn.parent, pi)
		for ci, col := range idx.cols {
			for _, p := range idx.byVal[ci][rn.parent.Value(col, pi)] {
				c := counted[p]
				if !rn.coversFreeParent(c.r, pi) {
					continue
				}
				d := max0(c.weight-wSel) - max0(c.weight-old)
				if d != 0 {
					deltas[p] += d * mass
				}
			}
		}
	}

	if plan, ok := rn.planPostingsOne(best); ok {
		deltas := make([]float64, len(counted))
		if plan.bitmap {
			// Full-table bitmap walk: view positions are parent rows.
			rn.stats.BitmapWordsRead += table.AndEach(rn.candBitmaps(best), func(row int) {
				visit(row, row, deltas)
			})
		} else {
			rn.stats.PostingsRead += rn.v.EachInAll(rn.candLists(best), func(pos, row int) {
				visit(pos, row, deltas)
			})
		}
		rn.stats.IndexLevels++
		for p, d := range deltas {
			counted[p].marginal += d
		}
		return
	}
	nw := rn.workers()
	perWorker := make([][]float64, nw)
	for g := range perWorker {
		perWorker[g] = make([]float64, len(counted))
	}
	rn.parallelRows(n, func(lo, hi, g int) {
		deltas := perWorker[g]
		for i := lo; i < hi; i++ {
			pi := rn.v.ParentRow(i)
			if !rn.coversFreeParent(best.r, pi) {
				continue
			}
			visit(i, pi, deltas)
		}
	})
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)
	for g := 0; g < nw; g++ {
		for p, d := range perWorker[g] {
			counted[p].marginal += d
		}
	}
}

// rebuildTopW recomputes topW from the selected set with one pass — the
// textbook per-step pass, kept for the DisableReuse reference path.
func (rn *runner) rebuildTopW() {
	if len(rn.selected) == 0 {
		rn.topW = nil
		return
	}
	n := rn.v.NumRows()
	rn.topW = make([]float64, n)
	topW := rn.topW
	rn.parallelRows(n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			pi := rn.v.ParentRow(i)
			for _, s := range rn.selected {
				if s.w > topW[i] && rn.coversFreeParent(s.r, pi) {
					topW[i] = s.w
				}
			}
		}
	})
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)
}

// freeColumns lists columns not instantiated by the base rule.
func (rn *runner) freeColumns() []int {
	var cols []int
	for c, v := range rn.base {
		if v == rule.Star {
			cols = append(cols, c)
		}
	}
	return cols
}

// levelOneAcc is one free column's level-1 accumulator skeleton.
type levelOneAcc struct {
	col    int
	weight float64
	cnt    []float64
	mv     []float64
}

// countLevelOne counts every rule extending the base by one (column,
// value) pair — by posting-list lengths when the view is the whole table
// under Count (zero row reads), otherwise in a single column-major pass —
// and registers the candidates in the store. Runs once per run unless
// reuse is disabled.
func (rn *runner) countLevelOne() []*cand {
	v := rn.v
	accs := make([]levelOneAcc, 0, len(rn.freeCols))
	for _, c := range rn.freeCols {
		m := rn.baseMask
		m.Set(c)
		wgt := rn.w.Weight(m)
		if wgt > rn.mw {
			continue // weight cap: super-rules only get heavier (monotone)
		}
		accs = append(accs, levelOneAcc{col: c, weight: wgt})
	}
	if len(accs) == 0 {
		return nil
	}
	virgin := len(rn.selected) == 0 // topW ≡ 0: marginal is weight·count

	if virgin && rn.countAgg && rn.fullTable && rn.levelOneColumnsBuilt(accs) {
		return rn.levelOneFromPostings(accs)
	}

	for a := range accs {
		accs[a].cnt = make([]float64, v.DistinctCount(accs[a].col))
		if !virgin {
			accs[a].mv = make([]float64, v.DistinctCount(accs[a].col))
		}
	}
	n := v.NumRows()
	// One accumulator set per worker; merged after the pass.
	nw := rn.workers()
	perWorker := make([][]levelOneAcc, nw)
	perWorker[0] = accs
	for g := 1; g < nw; g++ {
		cp := make([]levelOneAcc, len(accs))
		for a, acc := range accs {
			cp[a] = levelOneAcc{col: acc.col, weight: acc.weight, cnt: make([]float64, len(acc.cnt))}
			if !virgin {
				cp[a].mv = make([]float64, len(acc.mv))
			}
		}
		perWorker[g] = cp
	}
	parent := rn.parent
	topW := rn.topW
	rn.parallelRows(n, func(lo, hi, g int) {
		mine := perWorker[g]
		for i := lo; i < hi; i++ {
			// Every view row covers the base: no per-row base check. The
			// parent row is resolved once per row for all accumulators.
			pi := v.ParentRow(i)
			mass := rn.agg.Mass(parent, pi)
			if virgin {
				for a := range mine {
					acc := &mine[a]
					acc.cnt[parent.Value(acc.col, pi)] += mass
				}
				continue
			}
			tw := topW[i]
			for a := range mine {
				acc := &mine[a]
				val := parent.Value(acc.col, pi)
				acc.cnt[val] += mass
				if acc.weight > tw {
					acc.mv[val] += (acc.weight - tw) * mass
				}
			}
		}
	})
	for g := 1; g < nw; g++ {
		for a := range accs {
			for v := range accs[a].cnt {
				accs[a].cnt[v] += perWorker[g][a].cnt[v]
				if !virgin {
					accs[a].mv[v] += perWorker[g][a].mv[v]
				}
			}
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)

	var out []*cand
	for a := range accs {
		acc := &accs[a]
		for val := range acc.cnt {
			if acc.cnt[val] == 0 {
				continue
			}
			mv := acc.weight * acc.cnt[val]
			if !virgin {
				mv = acc.mv[val]
			}
			out = append(out, rn.addLevelOne(acc, rule.Value(val), acc.cnt[val], mv))
		}
	}
	return out
}

// addLevelOne materializes and registers one level-1 candidate.
func (rn *runner) addLevelOne(acc *levelOneAcc, val rule.Value, count, marginal float64) *cand {
	var pk rule.PackedKey
	pk, _ = pk.Extend(acc.col, val) // one value always packs
	m := rn.baseMask
	m.Set(acc.col)
	c := &cand{
		r:        rn.base.With(acc.col, val),
		pk:       pk,
		packed:   true,
		mask:     m,
		weight:   acc.weight,
		count:    count,
		marginal: marginal,
	}
	rn.store.packed[pk] = c
	rn.markCounted(c)
	return c
}

// candIndex buckets candidate rules by the value they require in one
// chosen anchor column (their first instantiated non-base column). During a
// table pass, only the candidates whose anchor value matches the row are
// checked for full coverage — turning the O(rows × candidates) inner loop
// into O(rows × anchor-matches).
type candIndex struct {
	cols  []int     // anchor columns in use
	byVal [][][]int // byVal[ci][valueID] = positions of candidates anchored at (cols[ci], valueID)
}

// buildCandIndex indexes cands by anchor column/value. Anchor choice: the
// first instantiated column that the base leaves free (every non-base
// candidate has one).
func (rn *runner) buildCandIndex(cands []*cand) candIndex {
	var idx candIndex
	slot := make(map[int]int) // column → position in idx.cols
	for pos, c := range cands {
		anchor := -1
		for _, col := range rn.freeCols {
			if c.r[col] != rule.Star {
				anchor = col
				break
			}
		}
		if anchor < 0 {
			continue // candidate equals base; cannot happen at level ≥ 1
		}
		ci, ok := slot[anchor]
		if !ok {
			ci = len(idx.cols)
			slot[anchor] = ci
			idx.cols = append(idx.cols, anchor)
			idx.byVal = append(idx.byVal, make([][]int, rn.v.DistinctCount(anchor)))
		}
		v := c.r[anchor]
		idx.byVal[ci][v] = append(idx.byVal[ci][v], pos)
	}
	return idx
}

// generateCandidates builds the next level: every one-column extension of
// a previous-level candidate with a value that co-occurs in the data.
// Extension sets are step-invariant (they depend only on the view's rows),
// so each parent's supported children are discovered once (expandParents)
// and merged from the cache on later steps — a greedy step only pays a
// generation pass for parents it is the first to reach.
func (rn *runner) generateCandidates(prev []*cand) []*cand {
	fresh := prev[:0:0]
	for _, c := range prev {
		if !c.expanded {
			fresh = append(fresh, c)
		}
	}
	if len(fresh) > 0 {
		rn.expandParents(fresh)
	}
	// Merge the parents' child lists, deduplicating shared children (one
	// rule reachable through several parents) by epoch marker.
	rn.gen++
	var next []*cand
	for _, p := range prev {
		for _, ch := range p.children {
			if ch.lastGen == rn.gen {
				continue
			}
			ch.lastGen = rn.gen
			next = append(next, ch)
			if len(next) >= rn.maxCand {
				rn.stats.CandidateCapHit = true
				sortCands(next)
				return next
			}
		}
	}
	sortCands(next)
	return next
}

// sortCands orders candidates deterministically (packed-key order, which
// equals Rule.Key() order) so ties in marginal value resolve stably.
func sortCands(cands []*cand) {
	sort.Slice(cands, func(i, j int) bool { return candLess(cands[i], cands[j]) })
}

// expandParents discovers, in one pass, every supported one-column
// extension of the given parents and caches them as the parents' children,
// registering new candidates (uncounted) in the store.
//
// The pass is allocation-light: phase 1 marks, per (parent, star column),
// the distinct extension values seen among covered rows in boolean arrays;
// phase 2 materializes each distinct extension once, and only touches the
// rule/key machinery for candidates the store has never seen.
func (rn *runner) expandParents(parents []*cand) {
	v := rn.v
	n := v.NumRows()

	// Phase 1: seen[p][si][val] marks that parent p extends with value val
	// in its si-th star column.
	starCols := make([][]int, len(parents))
	seen := make([][][]bool, len(parents))
	for p, c := range parents {
		for _, col := range rn.freeCols {
			if c.r[col] == rule.Star {
				starCols[p] = append(starCols[p], col)
				seen[p] = append(seen[p], make([]bool, v.DistinctCount(col)))
			}
		}
	}
	parent := rn.parent
	if plans, ok := rn.planIndex(parents); ok {
		// Index route: walk each parent's own coverage (bitset AND or
		// galloping intersection per its plan) and mark its extension
		// values. Workers partition whole parents, and each parent's walk
		// writes only that parent's seen arrays, so nothing is shared and
		// no merge is needed; the marks are idempotent booleans, identical
		// to the scan route's.
		nw := rn.workers()
		preads := make([]int64, nw)
		breads := make([]int64, nw)
		rn.parallelRows(len(parents), func(lo, hi, g int) {
			for p := lo; p < hi; p++ {
				mark := func(row int) {
					for si, sc := range starCols[p] {
						seen[p][si][parent.Value(sc, row)] = true
					}
				}
				if plans[p].bitmap {
					breads[g] += table.AndEach(rn.candBitmaps(parents[p]), func(row int) { mark(row) })
				} else {
					preads[g] += rn.v.EachInAll(rn.candLists(parents[p]), func(pos, row int) { mark(row) })
				}
			}
		})
		for g := 0; g < nw; g++ {
			rn.stats.PostingsRead += preads[g]
			rn.stats.BitmapWordsRead += breads[g]
		}
		rn.stats.IndexLevels++
		rn.materializeChildren(parents, starCols, seen)
		return
	}
	idx := rn.buildCandIndex(parents)
	// Parallelize with one seen-array set per worker, OR-merged after the
	// pass — but only while the extra memory stays modest.
	nw := rn.workers()
	totalBools := 0
	for p := range seen {
		for si := range seen[p] {
			totalBools += len(seen[p][si])
		}
	}
	const parallelSeenCap = 64 << 20
	if nw > 1 && totalBools*(nw-1) > parallelSeenCap {
		nw = 1
	}
	perWorker := make([][][][]bool, nw)
	perWorker[0] = seen
	for g := 1; g < nw; g++ {
		cp := make([][][]bool, len(seen))
		for p := range seen {
			cp[p] = make([][]bool, len(seen[p]))
			for si := range seen[p] {
				cp[p][si] = make([]bool, len(seen[p][si]))
			}
		}
		perWorker[g] = cp
	}
	scanRange := func(lo, hi int, mine [][][]bool) {
		for i := lo; i < hi; i++ {
			pi := v.ParentRow(i)
			for ci, col := range idx.cols {
				for _, p := range idx.byVal[ci][parent.Value(col, pi)] {
					if !rn.coversFreeParent(parents[p].r, pi) {
						continue
					}
					for si, sc := range starCols[p] {
						mine[p][si][parent.Value(sc, pi)] = true
					}
				}
			}
		}
	}
	if nw == 1 {
		scanRange(0, n, seen)
	} else {
		rn.parallelRows(n, func(lo, hi, g int) { scanRange(lo, hi, perWorker[g]) })
	}
	for g := 1; g < nw; g++ {
		for p := range seen {
			for si := range seen[p] {
				for v, ok := range perWorker[g][p][si] {
					if ok {
						seen[p][si][v] = true
					}
				}
			}
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)
	rn.materializeChildren(parents, starCols, seen)
}

// materializeChildren is expandParents' phase 2, shared by the scan and
// index routes: resolve each distinct marked extension to its (possibly
// already-registered) candidate and cache it on the parent.
func (rn *runner) materializeChildren(parents []*cand, starCols [][]int, seen [][][]bool) {

	// Phase 2: materialize each distinct extension once; candidates the
	// store already holds are linked, not rebuilt.
	created := 0
	for p, c := range parents {
		for si, sc := range starCols[p] {
			for val, ok := range seen[p][si] {
				if !ok {
					continue
				}
				child := rn.childOf(c, sc, rule.Value(val), &created)
				if child != nil {
					c.children = append(c.children, child)
				}
				if created >= rn.maxCand {
					// Abort without marking this parent expanded: a later
					// step (with a smaller active candidate set) must be
					// able to finish the enumeration. Re-expansion appends
					// the already-linked children again, which the merge's
					// epoch dedup absorbs.
					rn.stats.CandidateCapHit = true
					return
				}
			}
		}
		c.expanded = true
	}
}

// childOf resolves the extension of parent by (col, val) to its shared
// cand — from the store when another parent (or an earlier step) already
// materialized it, freshly registered otherwise. Overweight extensions
// yield nil without touching the rule machinery; created counts new
// registrations for the per-level cap.
func (rn *runner) childOf(parent *cand, col int, val rule.Value, created *int) *cand {
	m := parent.mask
	m.Set(col)
	wgt := rn.w.Weight(m)
	if wgt > rn.mw {
		return nil
	}
	if parent.packed {
		if pk, ok := parent.pk.Extend(col, val); ok {
			if c := rn.store.byPK(pk); c != nil {
				return c
			}
			c := &cand{r: parent.r.With(col, val), pk: pk, packed: true, mask: m, weight: wgt}
			rn.store.packed[pk] = c
			*created++
			return c
		}
	}
	// Overflow: the extension needs more than rule.MaxPackedValues free
	// values; identity falls back to the string key.
	ext := parent.r.With(col, val)
	key := ext.Key()
	if c := rn.store.over[key]; c != nil {
		return c
	}
	c := &cand{r: ext, skey: key, mask: m, weight: wgt}
	rn.store.addOver(key, c)
	*created++
	return c
}

// upperBound computes M from Algorithm 2 step 3.3.2: the tightest bound
// min over counted sub-rules R' of MV(R') + Count(R')·(mw − W(R')) over the
// candidate's immediate sub-rules. Any counted sub-rule bounds all its
// super-rules' marginal values, because each tuple a super-rule covers is
// covered by R' and can contribute at most mw − (mass already claimed).
// Sub-rule keys derive from the packed key directly — no rule or string
// materialization. Only free columns are dropped: sub-rules starring a
// base column are never counted, so probing them cannot tighten the bound.
func (rn *runner) upperBound(c *cand) float64 {
	bound := math.Inf(1)
	consider := func(sc *cand) {
		if sc == nil || !sc.counted {
			return
		}
		if b := sc.marginal + sc.count*(rn.mw-sc.weight); b < bound {
			bound = b
		}
	}
	if c.packed {
		for _, col := range rn.freeCols {
			if !c.pk.Has(col) {
				continue
			}
			sub, _ := c.pk.Drop(col)
			consider(rn.store.byPK(sub))
		}
		return bound
	}
	for _, col := range rn.freeCols {
		if c.r[col] == rule.Star {
			continue
		}
		sub := c.r.Without(col)
		if pk, ok := sub.PackKey(rn.baseMask); ok {
			consider(rn.store.byPK(pk))
		} else {
			consider(rn.store.over[sub.Key()])
		}
	}
	return bound
}

// countCandidates measures count and marginal value for each candidate,
// routing to the index kernels (bitset AND or galloping intersection, per
// candidate) or a row scan per the cost model.
func (rn *runner) countCandidates(cands []*cand) {
	if plans, ok := rn.planIndex(cands); ok {
		rn.countCandidatesIndex(cands, plans)
		return
	}
	rn.countCandidatesScan(cands)
}

// countCandidatesScan is the scan kernel: one pass over the view, visiting
// only the candidates whose anchor value matches each row (see candIndex).
func (rn *runner) countCandidatesScan(cands []*cand) {
	v := rn.v
	n := v.NumRows()
	idx := rn.buildCandIndex(cands)
	virgin := len(rn.selected) == 0
	topW := rn.topW
	// Per-worker accumulators indexed by candidate position, merged after
	// the pass.
	nw := rn.workers()
	cnt := make([][]float64, nw)
	mv := make([][]float64, nw)
	for g := 0; g < nw; g++ {
		cnt[g] = make([]float64, len(cands))
		if !virgin {
			mv[g] = make([]float64, len(cands))
		}
	}
	parent := rn.parent
	rn.parallelRows(n, func(lo, hi, g int) {
		myCnt := cnt[g]
		var myMV []float64
		if !virgin {
			myMV = mv[g]
		}
		for i := lo; i < hi; i++ {
			pi := v.ParentRow(i)
			var mass float64
			massSet := false
			for ci, col := range idx.cols {
				for _, pos := range idx.byVal[ci][parent.Value(col, pi)] {
					c := cands[pos]
					if !rn.coversFreeParent(c.r, pi) {
						continue
					}
					if !massSet {
						mass = rn.agg.Mass(parent, pi)
						massSet = true
					}
					myCnt[pos] += mass
					if !virgin && c.weight > topW[i] {
						myMV[pos] += (c.weight - topW[i]) * mass
					}
				}
			}
		}
	})
	for g := 0; g < nw; g++ {
		for pos, c := range cands {
			c.count += cnt[g][pos]
			if !virgin {
				c.marginal += mv[g][pos]
			}
		}
	}
	if virgin {
		for _, c := range cands {
			c.marginal = c.weight * c.count
		}
	}
	rn.stats.Passes++
	rn.stats.RowsScanned += int64(n)
}

// finalStats snapshots the run's statistics, attributing scanned rows to
// the sample when the view was one (SampleScale set): every row a sampled
// run visits is an in-memory sample tuple, not authoritative table I/O.
func (rn *runner) finalStats() Stats {
	if rn.scale != 1 {
		rn.stats.SampledRowsScanned = rn.stats.RowsScanned
	}
	return rn.stats
}

func max0(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

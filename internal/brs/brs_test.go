package brs

import (
	"math"
	"math/rand"
	"testing"

	"smartdrill/internal/baseline"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

func randomTable(rng *rand.Rand, cols, vals, n int) *table.Table {
	names := make([]string, cols)
	for c := range names {
		names[c] = string(rune('A' + c))
	}
	b := table.MustBuilder(names, nil)
	row := make([]string, cols)
	for i := 0; i < n; i++ {
		for c := range row {
			row[c] = string(rune('a' + rng.Intn(vals)))
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

func rulesOf(results []Result) []rule.Rule {
	out := make([]rule.Rule, len(results))
	for i, r := range results {
		out[i] = r.Rule
	}
	return out
}

func TestRunErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := randomTable(rng, 2, 2, 10)
	w := weight.NewSize(2)
	if _, _, err := Run(tab.All(), w, Options{K: 0}); err == nil {
		t.Error("K=0 must fail")
	}
	if _, _, err := Run(tab.All(), w, Options{K: 1, Base: rule.Trivial(3)}); err == nil {
		t.Error("base arity mismatch must fail")
	}
}

func TestEmptyTable(t *testing.T) {
	b := table.MustBuilder([]string{"A"}, nil)
	b.MustAddRow([]string{"x"})
	tab := b.Build().Filter(rule.Rule{rule.Star}).Select(nil)
	results, _, err := Run(tab.All(), weight.NewSize(1), Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty table returned %d rules", len(results))
	}
}

func TestSingleStepMatchesExhaustiveBestMarginal(t *testing.T) {
	// The a-priori pruning must never discard the true best marginal rule
	// when mw bounds the optimum's weight. Compare every greedy step
	// against brute force on random tables.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		tab := randomTable(rng, 3, 3, 30)
		w := weight.NewSize(3)
		mw := 3.0
		var selected []rule.Rule
		for step := 0; step < 3; step++ {
			results, _, err := Run(tab.All(), w, Options{K: step + 1, MaxWeight: mw})
			if err != nil {
				t.Fatal(err)
			}
			got := score.SetScore(tab, w, score.CountAgg{}, rulesOf(results))

			_, bestGain := baseline.BestMarginalExhaustive(tab, w, nil, selected, mw)
			prev := score.SetScore(tab, w, score.CountAgg{}, selected)
			want := prev + bestGain
			if got < want-1e-9 {
				t.Fatalf("trial %d step %d: greedy score %g < exhaustive greedy %g",
					trial, step, got, want)
			}
			selected = rulesOf(results)
		}
	}
}

func TestApproximationRatioVsOptimal(t *testing.T) {
	// BRS must achieve ≥ (1 − ((k−1)/k)^k) of the true optimum (the greedy
	// guarantee for submodular maximization).
	rng := rand.New(rand.NewSource(3))
	const k = 2
	ratioBound := 1 - math.Pow(float64(k-1)/float64(k), float64(k))
	for trial := 0; trial < 25; trial++ {
		tab := randomTable(rng, 3, 2, 20)
		w := weight.NewSize(3)
		results, _, err := Run(tab.All(), w, Options{K: k, MaxWeight: 3})
		if err != nil {
			t.Fatal(err)
		}
		got := score.SetScore(tab, w, score.CountAgg{}, rulesOf(results))
		_, opt, err := baseline.ExhaustiveBest(tab, w, nil, k, 100000)
		if err != nil {
			t.Fatal(err)
		}
		if opt == 0 {
			continue
		}
		if got < ratioBound*opt-1e-9 {
			t.Fatalf("trial %d: BRS %g < %.3f × OPT %g", trial, got, ratioBound, opt)
		}
	}
}

func TestResultsOrderedByWeightDesc(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tab := randomTable(rng, 4, 3, 60)
	results, _, err := Run(tab.All(), weight.NewSize(4), Options{K: 5, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Weight > results[i-1].Weight {
			t.Fatalf("results not weight-descending: %v", results)
		}
	}
}

func TestCountsAndMCountsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tab := randomTable(rng, 3, 3, 50)
	w := weight.NewSize(3)
	results, _, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	var mcSum float64
	for _, r := range results {
		if got := float64(tab.Count(r.Rule)); got != r.Count {
			t.Fatalf("displayed count %g != exact %g for %v", r.Count, got, r.Rule)
		}
		if r.MCount > r.Count {
			t.Fatalf("MCount %g > Count %g", r.MCount, r.Count)
		}
		mcSum += r.MCount
	}
	if mcSum > float64(tab.NumRows()) {
		t.Fatalf("ΣMCount %g > table size %d", mcSum, tab.NumRows())
	}
	// MCounts must equal the exact marginal counts in display order.
	mcs := score.MCounts(tab, w, score.CountAgg{}, rulesOf(results))
	for i, r := range results {
		if mcs[i] != r.MCount {
			t.Fatalf("MCount[%d] = %g, want %g", i, r.MCount, mcs[i])
		}
	}
}

func TestBaseRestrictsToSuperRules(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := randomTable(rng, 4, 3, 80)
	base := rule.Trivial(4).With(0, tab.Value(0, 0))
	sub := tab.Filter(base)
	results, _, err := Run(sub.All(), weight.NewSize(4), Options{K: 3, MaxWeight: 4, Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("expected results under base rule")
	}
	for _, r := range results {
		if !r.Rule.SuperRuleOf(base) {
			t.Fatalf("%v is not a super-rule of base %v", r.Rule, base)
		}
		if r.Rule.Equal(base) {
			t.Fatal("base itself must not be returned (zero marginal)")
		}
	}
}

func TestStarConstraintForcesColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := randomTable(rng, 4, 3, 80)
	const col = 2
	w := weight.StarConstraint{Inner: weight.NewSize(4), Column: col}
	results, _, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("expected results")
	}
	for _, r := range results {
		if r.Rule[col] == rule.Star {
			t.Fatalf("star drill-down returned %v without column %d", r.Rule, col)
		}
	}
}

func TestSumAggregate(t *testing.T) {
	b := table.MustBuilder([]string{"A", "B"}, []string{"M"})
	// Value "heavy" is rare but carries huge mass; Count would ignore it,
	// Sum must surface it.
	for i := 0; i < 50; i++ {
		b.MustAddRow([]string{"common", "x"}, 1)
	}
	for i := 0; i < 3; i++ {
		b.MustAddRow([]string{"heavy", "y"}, 1000)
	}
	tab := b.Build()
	w := weight.NewSize(2)
	agg := score.SumAgg{Measure: 0}
	results, _, err := Run(tab.All(), w, Options{K: 1, MaxWeight: 2, Agg: agg})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results", len(results))
	}
	cells := tab.DecodeRule(results[0].Rule)
	if cells[0] != "heavy" && cells[1] != "y" {
		t.Fatalf("Sum aggregate should pick the heavy rule, got %v with mass %g",
			cells, results[0].Count)
	}
	if results[0].Count != 3000 {
		t.Fatalf("Sum count = %g, want 3000", results[0].Count)
	}
}

func TestPruningMatchesUnpruned(t *testing.T) {
	// Pruning is a pure optimization: results must match the unpruned run.
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		tab := randomTable(rng, 4, 3, 60)
		w := weight.NewSize(4)
		pruned, ps, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 4})
		if err != nil {
			t.Fatal(err)
		}
		unpruned, us, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 4, DisablePruning: true})
		if err != nil {
			t.Fatal(err)
		}
		sp := score.SetScore(tab, w, score.CountAgg{}, rulesOf(pruned))
		su := score.SetScore(tab, w, score.CountAgg{}, rulesOf(unpruned))
		if math.Abs(sp-su) > 1e-9 {
			t.Fatalf("trial %d: pruned score %g != unpruned %g", trial, sp, su)
		}
		if ps.CandidatesCounted > us.CandidatesCounted {
			t.Fatalf("pruning counted more candidates (%d) than unpruned (%d)",
				ps.CandidatesCounted, us.CandidatesCounted)
		}
	}
}

func TestLowMaxWeightNeverBeatsHighMaxWeight(t *testing.T) {
	// Smaller mw may be suboptimal but can never *exceed* the score found
	// with a sufficient mw, and all returned rules must respect the cap.
	rng := rand.New(rand.NewSource(9))
	tab := randomTable(rng, 4, 2, 60)
	w := weight.NewSize(4)
	full, _, _ := Run(tab.All(), w, Options{K: 3, MaxWeight: 4})
	low, _, _ := Run(tab.All(), w, Options{K: 3, MaxWeight: 1})
	sf := score.SetScore(tab, w, score.CountAgg{}, rulesOf(full))
	sl := score.SetScore(tab, w, score.CountAgg{}, rulesOf(low))
	if sl > sf+1e-9 {
		t.Fatalf("mw=1 score %g > mw=4 score %g", sl, sf)
	}
	for _, r := range low {
		if r.Weight > 1 {
			t.Fatalf("rule %v exceeds mw=1 with weight %g", r.Rule, r.Weight)
		}
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tab := randomTable(rng, 4, 3, 100)
	w := weight.BitsFor(tab)
	a, _, _ := Run(tab.All(), w, Options{K: 4, MaxWeight: 12})
	b, _, _ := Run(tab.All(), w, Options{K: 4, MaxWeight: 12})
	if len(a) != len(b) {
		t.Fatal("nondeterministic result count")
	}
	for i := range a {
		if !a[i].Rule.Equal(b[i].Rule) {
			t.Fatalf("nondeterministic rule %d: %v vs %v", i, a[i].Rule, b[i].Rule)
		}
	}
}

func TestKLargerThanRuleSpace(t *testing.T) {
	b := table.MustBuilder([]string{"A"}, nil)
	b.MustAddRow([]string{"x"})
	b.MustAddRow([]string{"x"})
	b.MustAddRow([]string{"y"})
	tab := b.Build()
	results, _, err := Run(tab.All(), weight.NewSize(1), Options{K: 10, MaxWeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Only two rules have positive marginal value: (x) and (y).
	if len(results) != 2 {
		t.Fatalf("got %d rules, want 2", len(results))
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng, 3, 3, 50)
	_, stats, err := Run(tab.All(), weight.NewSize(3), Options{K: 2, MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Passes == 0 || stats.CandidatesCounted == 0 || stats.RowsScanned == 0 {
		t.Fatalf("stats not recorded: %+v", stats)
	}
}

func TestCandidateCap(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tab := randomTable(rng, 5, 4, 200)
	_, stats, err := Run(tab.All(), weight.NewSize(5), Options{K: 2, MaxWeight: 5, MaxCandidatesPerLevel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CandidateCapHit {
		t.Fatal("expected the candidate cap to trip")
	}
}

func TestBitsWeightingEndToEnd(t *testing.T) {
	// Under Bits weighting, instantiating a high-cardinality column must
	// beat a binary column with the same count.
	b := table.MustBuilder([]string{"Binary", "Wide"}, nil)
	for i := 0; i < 40; i++ {
		b.MustAddRow([]string{"yes", "w0"})
	}
	for i := 0; i < 60; i++ {
		b.MustAddRow([]string{"no", string(rune('a' + i%9))})
	}
	tab := b.Build()
	w := weight.BitsFor(tab)
	results, _, err := Run(tab.All(), w, Options{K: 1, MaxWeight: 10})
	if err != nil {
		t.Fatal(err)
	}
	cells := tab.DecodeRule(results[0].Rule)
	// (yes, w0) covers 40 tuples at weight 1+4=5 → 200; (no, ?) covers 60
	// at weight 1 → 60; (?, w0) covers 40 at weight 4 → 160.
	if cells[0] != "yes" || cells[1] != "w0" {
		t.Fatalf("Bits should pick the double-column rule, got %v", cells)
	}
}

package brs

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// The fast path — packed candidate keys, cross-step count reuse, and
// postings-driven counting — must be a pure access-path change: results
// bit-identical under the Count aggregate to the reference configuration
// (DisableReuse + DisableIndex, the textbook per-step algorithm), at any
// worker count. CI runs this file under -race, so the shared lazy index
// build is exercised concurrently with parallel passes.

func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rules, want %d\ngot %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if !got[i].Rule.Equal(want[i].Rule) {
			t.Fatalf("%s: rule %d = %v, want %v", label, i, got[i].Rule, want[i].Rule)
		}
		if got[i].Weight != want[i].Weight || got[i].Count != want[i].Count || got[i].MCount != want[i].MCount {
			t.Fatalf("%s: rule %v stats (%v,%v,%v) != (%v,%v,%v)", label, got[i].Rule,
				got[i].Weight, got[i].Count, got[i].MCount,
				want[i].Weight, want[i].Count, want[i].MCount)
		}
	}
}

// TestFastPathMatchesReference fuzzes the three optimizations (separately
// and combined) against the reference path on random tables: full-table
// views with warmed posting lists, index-filtered base views, and
// self-restricting runs, serial and parallel.
func TestFastPathMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	var sawReuse, sawIndex bool
	for trial := 0; trial < 25; trial++ {
		cols := 3 + rng.Intn(3)
		tab := randomTable(rng, cols, 2+rng.Intn(4), 100+rng.Intn(400))
		tab.Index().Warm() // make the postings path eligible everywhere
		var w weight.Weighter = weight.NewSize(cols)
		if trial%2 == 1 {
			w = weight.BitsFor(tab)
		}
		mw := w.MaxWeight(3)
		ref := Options{K: 4, MaxWeight: mw, DisableReuse: true, DisableIndex: true}

		configs := []struct {
			name string
			opts Options
		}{
			{"reuse-only", Options{K: 4, MaxWeight: mw, DisableIndex: true}},
			{"index-only", Options{K: 4, MaxWeight: mw, DisableReuse: true}},
			{"fast", Options{K: 4, MaxWeight: mw}},
			{"fast-nopruning", Options{K: 4, MaxWeight: mw, DisablePruning: true}},
		}
		for _, workers := range []int{0, 4} {
			refOpts := ref
			refOpts.Workers = workers
			want, _, err := Run(tab.All(), w, refOpts)
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range configs {
				opts := cfg.opts
				opts.Workers = workers
				got, stats, err := Run(tab.All(), w, opts)
				if err != nil {
					t.Fatal(err)
				}
				sameResults(t, fmt.Sprintf("trial %d %s workers=%d", trial, cfg.name, workers), got, want)
				if !opts.DisableReuse && len(got) > 1 && stats.CandidatesReused > 0 {
					sawReuse = true
				}
				if !opts.DisableIndex && stats.IndexLevels > 0 {
					sawIndex = true
				}
			}

			// Base-restricted run over an index-backed ascending view.
			base := rule.Trivial(cols).With(rng.Intn(cols), rule.Value(rng.Intn(2)))
			bOpts := ref
			bOpts.Workers, bOpts.Base, bOpts.BaseCovered = workers, base, true
			bView := tab.ViewOf(tab.FilterIndices(base))
			want, _, err = Run(bView, w, bOpts)
			if err != nil {
				t.Fatal(err)
			}
			fOpts := Options{K: 4, MaxWeight: mw, Workers: workers, Base: base, BaseCovered: true}
			got, _, err := Run(bView, w, fOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("trial %d base workers=%d", trial, workers), got, want)

			// Self-restricting full view (BaseCovered false).
			sOpts := fOpts
			sOpts.BaseCovered = false
			got, _, err = Run(tab.All(), w, sOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, fmt.Sprintf("trial %d self-restrict workers=%d", trial, workers), got, want)
		}
	}
	if !sawReuse {
		t.Error("no trial exercised cross-step reuse (CandidatesReused == 0 everywhere)")
	}
	if !sawIndex {
		t.Error("no trial exercised postings-driven counting (IndexLevels == 0 everywhere)")
	}
}

// TestCrossStepReuseObservable pins the headline reuse claim: on a
// multi-step run, later steps serve level-1 candidates from the cache
// (CandidatesReused > 0) and counting work drops versus the reference.
func TestCrossStepReuseObservable(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	tab := randomTable(rng, 5, 4, 600)
	w := weight.NewSize(5)
	fast, fs, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 4, DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, rs, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 4, DisableReuse: true, DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "reuse vs reference", fast, ref)
	if len(fast) < 2 {
		t.Fatalf("expected a multi-step selection, got %d rules", len(fast))
	}
	if fs.CandidatesReused == 0 {
		t.Fatalf("CandidatesReused = 0 on a %d-step run: %+v", len(fast), fs)
	}
	if fs.CandidatesCounted >= rs.CandidatesCounted {
		t.Fatalf("reuse did not reduce counting: fast counted %d, reference %d",
			fs.CandidatesCounted, rs.CandidatesCounted)
	}
	if fs.Passes >= rs.Passes {
		t.Fatalf("reuse did not reduce passes: fast %d, reference %d", fs.Passes, rs.Passes)
	}
}

// TestLevelOnePostingsPath pins the zero-row-read level 1: on a warmed
// full-table Count run, the first level is answered from posting lengths
// (IndexLevels > 0) and results still match the scan reference.
func TestLevelOnePostingsPath(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tab := randomTable(rng, 4, 3, 500)
	tab.Index().Warm()
	w := weight.NewSize(4)
	got, stats, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.IndexLevels == 0 {
		t.Fatalf("warmed full-table run never used postings: %+v", stats)
	}
	want, _, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 4, DisableReuse: true, DisableIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "level-1 postings vs reference", got, want)

	// Cold index: the planner must not build columns itself; the run still
	// succeeds by scanning and reads no postings.
	cold := randomTable(rng, 4, 3, 500)
	_, cs, err := Run(cold.All(), w, Options{K: 3, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if cs.PostingsRead != 0 || cs.IndexLevels != 0 {
		t.Fatalf("cold run paid index builds: %+v", cs)
	}
	for c := 0; c < cold.NumCols(); c++ {
		if cold.Index().ColumnBuilt(c) {
			t.Fatalf("cold run built column %d's posting lists", c)
		}
	}
}

// TestSumAggregateSerialEquivalence: under Sum the kernels accumulate
// per-candidate masses in ascending row order on both access paths, so
// serial fast results are bit-identical to the serial reference even with
// fractional masses.
func TestSumAggregateSerialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 10; trial++ {
		cols := 3
		names := []string{"A", "B", "C"}
		b := table.MustBuilder(names, []string{"M"})
		row := make([]string, cols)
		n := 200 + rng.Intn(200)
		for i := 0; i < n; i++ {
			for c := range row {
				row[c] = string(rune('a' + rng.Intn(3)))
			}
			b.MustAddRow(row, rng.Float64()*10)
		}
		tab := b.Build()
		tab.Index().Warm()
		w := weight.NewSize(cols)
		agg := score.SumAgg{Measure: 0}
		want, _, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 3, Agg: agg, DisableReuse: true, DisableIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Run(tab.All(), w, Options{K: 3, MaxWeight: 3, Agg: agg})
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("sum trial %d", trial), got, want)
	}
}

// TestIncrementalFastMatchesReference streams with reuse on and compares
// to the reference stream, rule for rule.
func TestIncrementalFastMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		tab := randomTable(rng, 4, 3, 300)
		tab.Index().Warm()
		w := weight.NewSize(4)
		collect := func(opts Options) []Result {
			var out []Result
			_, err := RunIncremental(tab.All(), w, opts, 4, time.Time{},
				func(r Result) bool { out = append(out, r); return true })
			if err != nil {
				t.Fatal(err)
			}
			return out
		}
		want := collect(Options{MaxWeight: 4, DisableReuse: true, DisableIndex: true})
		got := collect(Options{MaxWeight: 4})
		sameResults(t, fmt.Sprintf("incremental trial %d", trial), got, want)
	}
}

package brs

import (
	"context"
	"fmt"
	"time"

	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Incremental operation (Section 6.1): BRS is greedy, so the best rule
// list of size k+1 extends the best list of size k by one rule. Instead of
// fixing k up front, a caller can stream rules as they are found and stop
// on its own criterion — the paper suggests stopping on a new user command
// or a time limit and displaying whatever has been found.

// Yield receives each selected rule in greedy selection order (not display
// order) immediately after its greedy step completes. Returning false
// stops the search.
type Yield func(Result) bool

// RunIncremental runs greedy steps until yield returns false, the optional
// deadline passes, maxRules rules have been emitted (0 = unbounded), no
// rule adds positive marginal value, or the marginal value falls below
// MinGainRatio of the first rule's. The Result passed to yield carries the
// rule's Count; MCount is the marginal mass at selection time.
func RunIncremental(v *table.View, w weight.Weighter, opts Options, maxRules int, deadline time.Time, yield Yield) (Stats, error) {
	return RunIncrementalCtx(context.Background(), v, w, opts, maxRules, deadline, yield)
}

// RunIncrementalCtx is RunIncremental under a cancellation context: the
// search checks ctx between counting passes and returns ctx's error (with
// the statistics of the work already done) when it fires. Rules already
// yielded stay yielded — cancellation stops future work, it does not
// retract results.
func RunIncrementalCtx(ctx context.Context, v *table.View, w weight.Weighter, opts Options, maxRules int, deadline time.Time, yield Yield) (Stats, error) {
	if opts.K <= 0 {
		opts.K = 1 // K is unused by the incremental driver but validated by shared code paths
	}
	run, err := newRunner(v, w, opts)
	if err != nil {
		return Stats{}, err
	}
	run.ctx = ctx
	firstGain := 0.0
	for step := 0; maxRules <= 0 || step < maxRules; step++ {
		if !deadline.IsZero() && !time.Now().Before(deadline) { //sdlint:allow nondeterminism anytime deadline: the clock decides when to stop emitting rules, never which rule is emitted or its count
			break
		}
		best := run.findBestMarginal()
		if run.ctxErr != nil {
			return run.finalStats(), run.ctxErr
		}
		if best == nil || best.marginal <= 0 {
			break
		}
		gain := best.marginal // applySelection re-derives cached marginals
		if step == 0 {
			firstGain = gain
		} else if opts.MinGainRatio > 0 && gain < opts.MinGainRatio*firstGain {
			break // diminishing returns: stop flooding the display
		}
		run.applySelection(best)
		ok := yield(Result{
			Rule:   best.r,
			Weight: best.weight,
			Count:  best.count * run.scale,
			MCount: gain / weightOrOne(best.weight) * run.scale,
		})
		if !ok {
			break
		}
	}
	return run.finalStats(), nil
}

// weightOrOne guards the MCount back-calculation (marginal = Σ (W−wS) per
// tuple; when nothing was previously selected this is W·MCount, so divide
// by W). For multi-step selections the quotient is only an upper bound on
// the true marginal count; callers needing exact MCounts should use
// score.MCounts on the final list, as Run does.
func weightOrOne(w float64) float64 {
	if w <= 0 {
		return 1
	}
	return w
}

func errBaseArity(got, want int) error {
	return fmt.Errorf("brs: base rule has %d columns, table has %d", got, want)
}

package brs

import (
	"math/rand"
	"testing"
	"time"

	"smartdrill/internal/rule"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

func TestRunIncrementalMatchesRunPrefix(t *testing.T) {
	// The incremental stream must equal the greedy selection order of Run:
	// greedy is prefix-stable (the k-rule answer extends the (k−1)-rule
	// answer), the property Section 6.1 builds on.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		tab := randomTable(rng, 4, 3, 80)
		w := weight.NewSize(4)

		var streamed []Result
		_, err := RunIncremental(tab.All(), w, Options{MaxWeight: 4}, 4, time.Time{},
			func(r Result) bool {
				streamed = append(streamed, r)
				return true
			})
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 4})
		if err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(full) {
			t.Fatalf("trial %d: streamed %d rules, Run returned %d", trial, len(streamed), len(full))
		}
		// Same rule sets (Run re-orders by weight; compare as sets).
		want := map[string]bool{}
		for _, r := range full {
			want[r.Rule.Key()] = true
		}
		for _, r := range streamed {
			if !want[r.Rule.Key()] {
				t.Fatalf("trial %d: streamed rule %v not in Run result", trial, r.Rule)
			}
		}
	}
}

func TestRunIncrementalStopEarly(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	tab := randomTable(rng, 4, 3, 100)
	calls := 0
	_, err := RunIncremental(tab.All(), weight.NewSize(4), Options{MaxWeight: 4}, 0, time.Time{},
		func(Result) bool {
			calls++
			return calls < 2
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("yield called %d times, want 2 (stopped by callback)", calls)
	}
}

func TestRunIncrementalDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tab := randomTable(rng, 4, 3, 100)
	// A deadline in the past stops before the first greedy step.
	calls := 0
	_, err := RunIncremental(tab.All(), weight.NewSize(4), Options{MaxWeight: 4}, 0,
		time.Now().Add(-time.Second),
		func(Result) bool { calls++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("deadline ignored: %d yields", calls)
	}
}

func TestRunIncrementalExhaustsRuleSpace(t *testing.T) {
	// With unbounded maxRules the stream ends when no rule has positive
	// marginal value.
	b := newTinyTable()
	calls := 0
	_, err := RunIncremental(b.All(), weight.NewSize(1), Options{MaxWeight: 1}, 0, time.Time{},
		func(Result) bool { calls++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 2 { // values "x" and "y"
		t.Fatalf("streamed %d rules, want 2", calls)
	}
}

func TestRunIncrementalBaseArity(t *testing.T) {
	b := newTinyTable()
	_, err := RunIncremental(b.All(), weight.NewSize(1), Options{Base: rule.Trivial(3)}, 0, time.Time{},
		func(Result) bool { return true })
	if err == nil {
		t.Fatal("arity mismatch must fail")
	}
}

func newTinyTable() *table.Table {
	bld := table.MustBuilder([]string{"A"}, nil)
	bld.MustAddRow([]string{"x"})
	bld.MustAddRow([]string{"x"})
	bld.MustAddRow([]string{"y"})
	return bld.Build()
}

package brs

import (
	"runtime"
	"sync"
)

// Parallel row processing. BRS's passes are embarrassingly parallel over
// rows (and, for index-driven counting, over candidates): each pass
// accumulates per-candidate counts/marginals, so workers process disjoint
// chunks into private accumulators that are merged in worker order at the
// pass boundary. The chunk split depends only on the pass size and worker
// count — never on goroutine scheduling — so a given (data, Workers)
// configuration always merges in the same order and results are
// deterministic. With the Count aggregate all accumulators hold integral
// values, so parallel runs are additionally bit-identical to serial ones;
// with Sum, floating-point addition order may differ in the last ulps,
// which is why automatic parallelism applies only under Count.

// MaxWorkers caps the configured parallelism; beyond this, goroutine and
// accumulator-merge overheads outweigh any conceivable gain.
const MaxWorkers = 64

// workers resolves the configured parallelism. DisableParallel forces
// serial. Workers 0 saturates the hardware — runtime.NumCPU() under the
// Count aggregate, serial otherwise (auto-parallelism only where
// bit-identity to the serial path is guaranteed). An explicit request is
// honored (capped at MaxWorkers) rather than clamped to NumCPU —
// oversubscription is harmless, and honoring the request keeps the
// parallel code paths exercised on single-core machines.
func (rn *runner) workers() int {
	if rn.noParallel {
		return 1
	}
	w := rn.par
	if w == 0 {
		if !rn.countAgg {
			return 1
		}
		w = runtime.NumCPU()
	}
	if w <= 1 {
		return 1
	}
	if w > MaxWorkers {
		w = MaxWorkers
	}
	return w
}

// parallelRows splits [0, n) into one contiguous chunk per worker and runs
// fn(lo, hi, worker) concurrently. With a single worker it simply calls fn
// inline, so serial behaviour (and profiling) is unchanged.
func (rn *runner) parallelRows(n int, fn func(lo, hi, worker int)) {
	w := rn.workers()
	if w == 1 || n < 4*w {
		fn(0, n, 0)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for g := 0; g < w; g++ {
		lo := g * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi, g int) {
			defer wg.Done()
			fn(lo, hi, g)
		}(lo, hi, g)
	}
	wg.Wait()
}

package brs

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"smartdrill/internal/score"
	"smartdrill/internal/weight"
)

// TestParallelMatchesSerial verifies that parallel runs produce exactly
// the same rules, counts, and marginals as serial runs — the Count
// aggregate keeps all accumulators integral, so results are bit-identical.
func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		tab := randomTable(rng, 5, 4, 500)
		w := weight.BitsFor(tab)
		serial, _, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 12})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 11} {
			par, _, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 12, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("trial %d workers=%d: %d rules vs serial %d",
					trial, workers, len(par), len(serial))
			}
			for i := range serial {
				if !par[i].Rule.Equal(serial[i].Rule) {
					t.Fatalf("trial %d workers=%d: rule %d differs: %v vs %v",
						trial, workers, i, par[i].Rule, serial[i].Rule)
				}
				if par[i].Count != serial[i].Count || par[i].MCount != serial[i].MCount {
					t.Fatalf("trial %d workers=%d: stats differ for %v: (%g,%g) vs (%g,%g)",
						trial, workers, par[i].Rule,
						par[i].Count, par[i].MCount, serial[i].Count, serial[i].MCount)
				}
			}
		}
	}
}

// TestParallelWithSelection exercises the topW pass (non-empty selection)
// and the Sum aggregate under parallelism.
func TestParallelWithSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	tab := randomTable(rng, 4, 3, 300)
	w := weight.NewSize(4)
	serial, _, err := Run(tab.All(), w, Options{K: 5, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := Run(tab.All(), w, Options{K: 5, MaxWeight: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	ss := score.SetScore(tab, w, score.CountAgg{}, rulesOf(serial))
	sp := score.SetScore(tab, w, score.CountAgg{}, rulesOf(par))
	if ss != sp {
		t.Fatalf("parallel score %g != serial %g", sp, ss)
	}
}

func TestParallelRowsCoversAllRows(t *testing.T) {
	rn := &runner{par: 4}
	for _, n := range []int{0, 1, 7, 64, 1000} {
		visited := make([]int32, n)
		rn.parallelRows(n, func(lo, hi, g int) {
			for i := lo; i < hi; i++ {
				visited[i]++
			}
		})
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("n=%d: row %d visited %d times", n, i, v)
			}
		}
	}
}

// TestParallelDeterministicMerge pins the merge contract: the chunk split
// depends only on (pass size, worker count) and per-worker accumulators
// merge in worker order, so the same parallel search repeated under
// GOMAXPROCS jitter — forcing wildly different goroutine schedules, from
// fully serialized to oversubscribed — yields byte-identical rule output
// AND identical statistics counters every single time. A scheduling
// dependence anywhere (a racy merge, a nondeterministic plan choice, a
// first-worker-wins cache fill) shows up as a diff here long before it
// corrupts an answer.
func TestParallelDeterministicMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	tab := randomTable(rng, 5, 4, 700)
	tab.Index().Warm()
	w := weight.BitsFor(tab)
	opts := Options{K: 5, MaxWeight: 12, Workers: 8}

	render := func(rs []Result) string {
		s := ""
		for _, r := range rs {
			s += fmt.Sprintf("%v w=%b c=%b m=%b\n", r.Rule, r.Weight, r.Count, r.MCount)
		}
		return s
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	var wantOut string
	var wantStats Stats
	for i := 0; i < 50; i++ {
		runtime.GOMAXPROCS(1 + i%4)
		got, stats, err := Run(tab.All(), w, opts)
		if err != nil {
			t.Fatal(err)
		}
		out := render(got)
		if i == 0 {
			wantOut, wantStats = out, stats
			if stats.IndexLevels == 0 {
				t.Fatalf("run never used the index kernels: %+v", stats)
			}
			continue
		}
		if out != wantOut {
			t.Fatalf("run %d (GOMAXPROCS=%d) output differs:\n%s\nwant:\n%s",
				i, runtime.GOMAXPROCS(0), out, wantOut)
		}
		if stats != wantStats {
			t.Fatalf("run %d (GOMAXPROCS=%d) stats differ:\n%+v\nwant:\n%+v",
				i, runtime.GOMAXPROCS(0), stats, wantStats)
		}
	}
}

func TestWorkersClamped(t *testing.T) {
	rn := &runner{par: 1 << 20}
	if got := rn.workers(); got != MaxWorkers {
		t.Fatalf("workers = %d, want cap %d", got, MaxWorkers)
	}
	rn.par = 0
	if rn.workers() != 1 {
		t.Fatal("0 workers must mean serial")
	}
	rn.par = -3
	if rn.workers() != 1 {
		t.Fatal("negative workers must mean serial")
	}
	rn.par = 5
	if rn.workers() != 5 {
		t.Fatal("explicit worker counts must be honored")
	}
}

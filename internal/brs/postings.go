package brs

import "smartdrill/internal/rule"

// Postings-driven counting. A candidate's coverage within the view is the
// intersection of the view's row set with the posting lists of the
// candidate's instantiated free columns, so counting can be answered by
// galloping merge walks (table.View.EachInAll) instead of scanning every
// view row — and a level-1 count on the full table under Count is just a
// posting-list length, read without touching a single row.
//
// A cost model decides per counting step which access path runs. Scan cost
// is one visit per view row; postings cost per candidate is roughly
// (number of lists) × (shortest list length), the work the galloping
// intersection is bounded by. The planner only routes to columns whose
// posting lists are already built (table.Index.ColumnBuilt): a build is a
// full pass, and silently charging it to one counting step would make the
// "cheap" path the expensive one. Warm indexes (the server warms every
// dataset at registration) make the decision purely about read volume.
//
// The walk visits rows ascending — the order a scan visits them — so
// accumulated masses are bit-identical to the scan kernel's.

// postingsCostSlack is the fixed per-candidate overhead charged by the
// cost model (list setup, gallop restarts).
const postingsCostSlack = 16

// estCandCost estimates the posting-entry work of intersecting c's lists,
// or ok=false when some needed column has no built posting lists.
func (rn *runner) estCandCost(c *cand) (cost int64, ok bool) {
	lists := 0
	shortest := int(^uint(0) >> 1)
	for _, col := range rn.freeCols {
		if c.r[col] == rule.Star {
			continue
		}
		if !rn.ix.ColumnBuilt(col) {
			return 0, false
		}
		l := rn.ix.PostingsLen(col, c.r[col])
		lists++
		if l < shortest {
			shortest = l
		}
	}
	if lists == 0 {
		return 0, false
	}
	return int64(lists)*int64(shortest) + postingsCostSlack, true
}

// planPostings decides scan vs postings for counting cands: postings win
// when their estimated total read volume undercuts one scan of the view.
func (rn *runner) planPostings(cands []*cand) bool {
	if rn.ix == nil || !rn.sorted || len(cands) == 0 {
		return false
	}
	scanCost := int64(rn.v.NumRows())
	var total int64
	for _, c := range cands {
		cost, ok := rn.estCandCost(c)
		if !ok {
			return false
		}
		total += cost
		if total >= scanCost {
			return false
		}
	}
	return true
}

// planPostingsOne is planPostings for a single rule (the marginal-
// maintenance walk over a selected rule's coverage).
func (rn *runner) planPostingsOne(c *cand) bool {
	if rn.ix == nil || !rn.sorted {
		return false
	}
	cost, ok := rn.estCandCost(c)
	return ok && cost < int64(rn.v.NumRows())
}

// candLists gathers the posting lists of c's instantiated free columns.
func (rn *runner) candLists(c *cand) [][]int32 {
	lists := make([][]int32, 0, len(rn.freeCols))
	for _, col := range rn.freeCols {
		if c.r[col] != rule.Star {
			lists = append(lists, rn.ix.Postings(col, c.r[col]))
		}
	}
	return lists
}

// countCandidatesPostings is the postings kernel: each candidate's count
// and marginal accumulate over its intersection walk, candidates fanned
// out across workers. Per-candidate accumulation is self-contained, so
// results are bit-identical at any worker count.
func (rn *runner) countCandidatesPostings(cands []*cand) {
	virgin := len(rn.selected) == 0
	topW := rn.topW
	parent := rn.parent
	reads := make([]int64, rn.workers())
	rn.parallelRows(len(cands), func(lo, hi, g int) {
		for i := lo; i < hi; i++ {
			c := cands[i]
			reads[g] += rn.v.EachInAll(rn.candLists(c), func(pos, row int) {
				mass := rn.agg.Mass(parent, row)
				c.count += mass
				if !virgin {
					if tw := topW[pos]; c.weight > tw {
						c.marginal += (c.weight - tw) * mass
					}
				}
			})
			if virgin {
				c.marginal = c.weight * c.count
			}
		}
	})
	for _, r := range reads {
		rn.stats.PostingsRead += r
	}
	rn.stats.IndexLevels++
}

// levelOneColumnsBuilt reports whether every level-1 column already has
// posting lists, the precondition for the length-only level-1 path.
func (rn *runner) levelOneColumnsBuilt(accs []levelOneAcc) bool {
	if rn.ix == nil {
		return false
	}
	for a := range accs {
		if !rn.ix.ColumnBuilt(accs[a].col) {
			return false
		}
	}
	return true
}

// levelOneFromPostings answers level 1 on a full-table view under Count
// from posting-list lengths: Count(base+(c,v)) over the whole table is
// len(postings(c,v)), and with nothing selected the marginal is
// weight·count. Zero rows are read. Candidate order (column, then value
// ascending) matches the scan path's, so downstream tie-breaks are
// unchanged.
func (rn *runner) levelOneFromPostings(accs []levelOneAcc) []*cand {
	var out []*cand
	for a := range accs {
		acc := &accs[a]
		dc := rn.v.DistinctCount(acc.col)
		for val := 0; val < dc; val++ {
			cnt := rn.ix.PostingsLen(acc.col, rule.Value(val))
			if cnt == 0 {
				continue
			}
			count := float64(cnt)
			out = append(out, rn.addLevelOne(acc, rule.Value(val), count, acc.weight*count))
		}
	}
	rn.stats.IndexLevels++
	return out
}

package brs

import (
	"smartdrill/internal/rule"
	"smartdrill/internal/table"
)

// Index-driven counting. A candidate's coverage within the view is the
// intersection of the view's row set with the posting lists of the
// candidate's instantiated free columns, so counting (and candidate
// generation, and post-selection marginal maintenance) can be answered
// from the index instead of scanning every view row. Two index kernels
// exist:
//
//   - Galloping: merge walks over the sorted []int32 posting lists
//     (table.View.EachInAll). Cost per candidate is roughly (number of
//     lists) × (shortest list length) — governed by the most selective
//     column. A level-1 count on the full table under Count is just a
//     posting-list length, read without touching a single row.
//
//   - Bitmap: word-at-a-time AND over the packed []uint64 bitset
//     containers that shadow dense posting lists (table.Bitset). Cost per
//     candidate is (number of lists) × (words per container) regardless
//     of selectivity, and a pure *count* needs only popcount — zero rows
//     enumerated. Applies on full-table views under the Count aggregate,
//     where view positions are parent rows and masses stay integral.
//
// A cost model decides per counting step which access path runs, and per
// candidate which kernel. Scan cost is one visit per view row plus the
// anchor-match work the scan kernel pays per candidate (rows sharing the
// candidate's anchor value, scaled to the view); kernel costs are the
// entry/word volumes above. The planner only routes to columns whose
// posting lists are already built (table.Index.ColumnBuilt): a build is a
// full pass, and silently charging it to one counting step would make the
// "cheap" path the expensive one. Warm indexes (the server warms every
// dataset at registration) make the decision purely about read volume.
//
// Every kernel visits rows ascending — the order a scan visits them — so
// accumulated masses are bit-identical across all three access paths, and
// routing is a pure performance decision. Options.DisableIndex removes
// both kernels (every step scans); Options.DisableBitmap removes only the
// bitmap kernel.

// postingsCostSlack is the fixed per-candidate overhead charged by the
// cost model (list setup, gallop restarts, AND-loop setup).
const postingsCostSlack = 16

// candPlan is the planner's routing decision for one candidate within an
// index-driven pass.
type candPlan struct {
	cost   int64 // estimated entry/word reads for the chosen kernel
	bitmap bool  // true: bitset AND kernel; false: galloping lists
}

// planCand costs the index kernels for c. anchor is the posting length of
// c's anchor column (the scan kernel's per-candidate work, see
// buildCandIndex); ok is false when some needed column has no built
// posting lists, which forces the whole pass to scan.
func (rn *runner) planCand(c *cand) (plan candPlan, anchor int64, ok bool) {
	lists := 0
	shortest := int64(^uint64(0) >> 1)
	allBitmaps := rn.bitmapOK
	for _, col := range rn.freeCols {
		if c.r[col] == rule.Star {
			continue
		}
		if !rn.ix.ColumnBuilt(col) {
			return candPlan{}, 0, false
		}
		l := int64(rn.ix.PostingsLen(col, c.r[col]))
		if lists == 0 {
			anchor = l // first instantiated free column = scan anchor
		}
		lists++
		if l < shortest {
			shortest = l
		}
		if allBitmaps && rn.ix.Bitmap(col, c.r[col]) == nil { //sdlint:allow ioaccount existence probe for the cost model; no bitmap words are read
			allBitmaps = false
		}
	}
	if lists == 0 {
		return candPlan{}, 0, false
	}
	plan.cost = int64(lists)*shortest + postingsCostSlack
	if allBitmaps {
		if bmCost := int64(lists)*rn.bitmapWords + postingsCostSlack; bmCost < plan.cost {
			plan = candPlan{cost: bmCost, bitmap: true}
		}
	}
	return plan, anchor, true
}

// planIndex decides scan vs index for a pass over cands (counting or
// generation), returning per-candidate kernel choices when the index path
// wins: the kernels' total estimated read volume must undercut one scan of
// the view, where the scan is charged its row visits plus each candidate's
// anchor-match work (anchor posting length, scaled to the view's share of
// the table).
func (rn *runner) planIndex(cands []*cand) ([]candPlan, bool) {
	if rn.ix == nil || !rn.sorted || len(cands) == 0 {
		return nil, false
	}
	n := int64(rn.v.NumRows())
	total := int64(0)
	var anchors int64
	plans := make([]candPlan, len(cands))
	for i, c := range cands {
		plan, anchor, ok := rn.planCand(c)
		if !ok {
			return nil, false
		}
		plans[i] = plan
		total += plan.cost
		anchors += anchor
	}
	scanCost := n + anchors*n/int64(rn.parent.NumRows())
	if total >= scanCost {
		return nil, false
	}
	return plans, true
}

// planPostingsOne is the planner for a single rule's coverage walk (the
// marginal-maintenance pass over a selected rule). The walk's visit work
// is identical on every path, so the decision weighs only enumeration
// cost: galloping entries or bitmap words versus one row scan.
func (rn *runner) planPostingsOne(c *cand) (plan candPlan, ok bool) {
	if rn.ix == nil || !rn.sorted {
		return candPlan{}, false
	}
	plan, _, ok = rn.planCand(c)
	return plan, ok && plan.cost < int64(rn.v.NumRows())
}

// candLists gathers the posting lists of c's instantiated free columns.
//
//sdlint:allow ioaccount hands list headers to the intersection kernels; the entries actually read are metered by EachInAll and booked by the counting pass that called it
func (rn *runner) candLists(c *cand) [][]int32 {
	lists := make([][]int32, 0, len(rn.freeCols))
	for _, col := range rn.freeCols {
		if c.r[col] != rule.Star {
			lists = append(lists, rn.ix.Postings(col, c.r[col]))
		}
	}
	return lists
}

// candBitmaps gathers the bitset containers of c's instantiated free
// columns. Only called for candidates the planner routed to the bitmap
// kernel, so every container exists.
//
//sdlint:allow ioaccount hands bitset containers to the AND kernels; the words actually read are metered by AndCount/AndEach and booked by the counting pass that called it
func (rn *runner) candBitmaps(c *cand) []*table.Bitset {
	sets := make([]*table.Bitset, 0, len(rn.freeCols))
	for _, col := range rn.freeCols {
		if c.r[col] != rule.Star {
			sets = append(sets, rn.ix.Bitmap(col, c.r[col]))
		}
	}
	return sets
}

// countCandidatesIndex is the index counting pass: each candidate's count
// and marginal accumulate over its own intersection — bitset AND or
// galloping walk per its plan — with candidates fanned out across
// workers. Per-candidate accumulation is self-contained and visits rows
// ascending, so results are bit-identical to the scan kernel at any
// worker count.
func (rn *runner) countCandidatesIndex(cands []*cand, plans []candPlan) {
	virgin := len(rn.selected) == 0
	topW := rn.topW
	parent := rn.parent
	nw := rn.workers()
	preads := make([]int64, nw)
	breads := make([]int64, nw)
	rn.parallelRows(len(cands), func(lo, hi, g int) { //sdlint:allow ioaccount fans out candidates, not rows; the kernels below meter posting entries and bitmap words into preads/breads
		for i := lo; i < hi; i++ {
			c := cands[i]
			if plans[i].bitmap {
				// Full-table Count: mass ≡ 1 and positions are rows. A
				// virgin step needs no per-row work at all — the count is a
				// popcount over the ANDed words.
				if virgin {
					cnt, words := table.AndCount(rn.candBitmaps(c))
					c.count += float64(cnt)
					breads[g] += words
				} else {
					breads[g] += table.AndEach(rn.candBitmaps(c), func(row int) {
						c.count++
						if tw := topW[row]; c.weight > tw {
							c.marginal += c.weight - tw
						}
					})
				}
			} else {
				preads[g] += rn.v.EachInAll(rn.candLists(c), func(pos, row int) {
					mass := rn.agg.Mass(parent, row)
					c.count += mass
					if !virgin {
						if tw := topW[pos]; c.weight > tw {
							c.marginal += (c.weight - tw) * mass
						}
					}
				})
			}
			if virgin {
				c.marginal = c.weight * c.count
			}
		}
	})
	for g := 0; g < nw; g++ {
		rn.stats.PostingsRead += preads[g]
		rn.stats.BitmapWordsRead += breads[g]
	}
	rn.stats.IndexLevels++
}

// levelOneColumnsBuilt reports whether every level-1 column already has
// posting lists, the precondition for the length-only level-1 path.
func (rn *runner) levelOneColumnsBuilt(accs []levelOneAcc) bool {
	if rn.ix == nil {
		return false
	}
	for a := range accs {
		if !rn.ix.ColumnBuilt(accs[a].col) {
			return false
		}
	}
	return true
}

// levelOneFromPostings answers level 1 on a full-table view under Count
// from posting-list lengths: Count(base+(c,v)) over the whole table is
// len(postings(c,v)), and with nothing selected the marginal is
// weight·count. Zero rows are read. Candidate order (column, then value
// ascending) matches the scan path's, so downstream tie-breaks are
// unchanged.
func (rn *runner) levelOneFromPostings(accs []levelOneAcc) []*cand {
	var out []*cand
	for a := range accs {
		acc := &accs[a]
		dc := rn.v.DistinctCount(acc.col)
		for val := 0; val < dc; val++ {
			cnt := rn.ix.PostingsLen(acc.col, rule.Value(val))
			if cnt == 0 {
				continue
			}
			count := float64(cnt)
			out = append(out, rn.addLevelOne(acc, rule.Value(val), count, acc.weight*count))
		}
	}
	rn.stats.IndexLevels++
	return out
}

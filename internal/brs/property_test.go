package brs

import (
	"fmt"
	"math/rand"
	"testing"

	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Property layer for the counting kernels: every subset of the ablation
// flags {DisableParallel, DisableBitmap, DisableReuse, DisableIndex},
// crossed with worker counts, must produce bit-identical results under
// the Count aggregate on randomized tables. The reference is the fully
// ablated serial run — the textbook per-step scan algorithm. CI runs this
// file under -race (the Equivalence|Parallel job), so the lazy shared
// index build, the bitset containers, and the per-worker accumulator
// merges are all exercised for data races, not just for answers.

// ablationSubsets enumerates all 16 flag combinations.
func ablationSubsets() []Options {
	out := make([]Options, 0, 16)
	for mask := 0; mask < 16; mask++ {
		out = append(out, Options{
			DisableParallel: mask&1 != 0,
			DisableBitmap:   mask&2 != 0,
			DisableReuse:    mask&4 != 0,
			DisableIndex:    mask&8 != 0,
		})
	}
	return out
}

func ablationLabel(o Options) string {
	return fmt.Sprintf("par=%v bmp=%v reuse=%v ix=%v",
		!o.DisableParallel, !o.DisableBitmap, !o.DisableReuse, !o.DisableIndex)
}

// TestEquivalencePropertyMatrix: seeded random tables × all 16 ablation
// subsets × Workers ∈ {1, 2, 8}, every cell bit-identical to the fully
// ablated serial reference. Skewed value distributions make some posting
// lists dense (bitmap containers) and others sparse (galloping), so one
// table exercises all three kernels; the test also asserts the bitmap
// and parallel paths actually engaged somewhere, so the matrix cannot
// silently degenerate into comparing the reference with itself.
func TestEquivalencePropertyMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	subsets := ablationSubsets()
	var sawBitmap, sawIndex, sawParallelPath bool
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		cols := 3 + rng.Intn(2)
		tab := skewedTable(rng, cols, 3+rng.Intn(3), 150+rng.Intn(250))
		tab.Index().Warm()
		var w weight.Weighter = weight.NewSize(cols)
		if trial%2 == 1 {
			w = weight.BitsFor(tab)
		}
		mw := w.MaxWeight(3)

		ref := Options{K: 4, MaxWeight: mw, Workers: 1,
			DisableParallel: true, DisableBitmap: true, DisableReuse: true, DisableIndex: true}
		want, _, err := Run(tab.All(), w, ref)
		if err != nil {
			t.Fatal(err)
		}

		for _, base := range subsets {
			for _, workers := range []int{1, 2, 8} {
				opts := base
				opts.K, opts.MaxWeight, opts.Workers = 4, mw, workers
				got, stats, err := Run(tab.All(), w, opts)
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("trial %d [%s] workers=%d", trial, ablationLabel(base), workers)
				sameResults(t, label, got, want)

				if stats.BitmapWordsRead > 0 {
					if base.DisableBitmap {
						t.Fatalf("%s: DisableBitmap run read %d bitmap words", label, stats.BitmapWordsRead)
					}
					sawBitmap = true
				}
				if stats.IndexLevels > 0 {
					if base.DisableIndex {
						t.Fatalf("%s: DisableIndex run served %d levels from the index", label, stats.IndexLevels)
					}
					sawIndex = true
				}
				if !base.DisableParallel && workers > 1 {
					sawParallelPath = true
				}
			}
		}
	}
	if !sawBitmap {
		t.Error("no cell exercised the bitmap kernel (BitmapWordsRead == 0 everywhere)")
	}
	if !sawIndex {
		t.Error("no cell exercised postings-driven counting (IndexLevels == 0 everywhere)")
	}
	if !sawParallelPath {
		t.Error("no cell ran the parallel path")
	}
}

// skewedTable builds a random table whose first column concentrates 85%
// of its mass on one value — its posting list is dense enough for a
// bitmap container — while the remaining columns draw uniformly, leaving
// a mix of dense and sparse lists for the planner to choose between.
func skewedTable(rng *rand.Rand, cols, vals, n int) *table.Table {
	names := make([]string, cols)
	for c := range names {
		names[c] = string(rune('A' + c))
	}
	b := table.MustBuilder(names, nil)
	row := make([]string, cols)
	for i := 0; i < n; i++ {
		if rng.Intn(100) < 85 {
			row[0] = "a"
		} else {
			row[0] = string(rune('b' + rng.Intn(vals)))
		}
		for c := 1; c < cols; c++ {
			row[c] = string(rune('a' + rng.Intn(vals)))
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

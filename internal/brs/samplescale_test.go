package brs

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"smartdrill/internal/weight"
)

// TestSampleScaleScalesCounts: a run with SampleScale must select exactly
// the rules of the unscaled run (uniform scaling preserves every marginal
// comparison) while emitting Count/MCount multiplied by the scale — the
// table-level estimates the drill layer displays.
func TestSampleScaleScalesCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := randomTable(rng, 4, 5, 3000)
	w := weight.NewSize(tab.NumCols())
	const scale = 2.5

	base, baseStats, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	scaled, scaledStats, err := Run(tab.All(), w, Options{K: 4, MaxWeight: 3, SampleScale: scale})
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 || len(base) != len(scaled) {
		t.Fatalf("rule counts differ: %d vs %d", len(base), len(scaled))
	}
	for i := range base {
		if !base[i].Rule.Equal(scaled[i].Rule) || base[i].Weight != scaled[i].Weight {
			t.Fatalf("rule %d: selection changed under scaling: %v vs %v", i, base[i], scaled[i])
		}
		if got, want := scaled[i].Count, base[i].Count*scale; math.Abs(got-want) > 1e-9 {
			t.Fatalf("rule %d: Count = %g, want %g", i, got, want)
		}
		if got, want := scaled[i].MCount, base[i].MCount*scale; math.Abs(got-want) > 1e-9 {
			t.Fatalf("rule %d: MCount = %g, want %g", i, got, want)
		}
	}
	// Rows scanned by a sampled run are sample reads; exact runs read none.
	if baseStats.SampledRowsScanned != 0 {
		t.Fatalf("exact run claims %d sampled rows", baseStats.SampledRowsScanned)
	}
	if scaledStats.SampledRowsScanned != scaledStats.RowsScanned {
		t.Fatalf("sampled run: SampledRowsScanned %d != RowsScanned %d",
			scaledStats.SampledRowsScanned, scaledStats.RowsScanned)
	}
}

// TestSampleScaleIncremental pins the same contract on the anytime driver.
func TestSampleScaleIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tab := randomTable(rng, 4, 5, 2000)
	w := weight.NewSize(tab.NumCols())
	const scale = 4.0

	collect := func(s float64) []Result {
		var out []Result
		_, err := RunIncremental(tab.All(), w, Options{MaxWeight: 3, SampleScale: s}, 4, time.Time{}, func(r Result) bool {
			out = append(out, r)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := collect(0)
	scaled := collect(scale)
	if len(base) == 0 || len(base) != len(scaled) {
		t.Fatalf("rule counts differ: %d vs %d", len(base), len(scaled))
	}
	for i := range base {
		if !base[i].Rule.Equal(scaled[i].Rule) {
			t.Fatalf("rule %d changed under scaling", i)
		}
		if got, want := scaled[i].Count, base[i].Count*scale; math.Abs(got-want) > 1e-9 {
			t.Fatalf("rule %d: Count = %g, want %g", i, got, want)
		}
		if got, want := scaled[i].MCount, base[i].MCount*scale; math.Abs(got-want) > 1e-9 {
			t.Fatalf("rule %d: MCount = %g, want %g", i, got, want)
		}
	}
}

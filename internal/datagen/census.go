package datagen

import (
	"fmt"
	"math/rand"

	"smartdrill/internal/table"
)

// CensusColumnCount matches the paper's US 1990 Census extract (68
// attributes, all pre-bucketized to categorical).
const CensusColumnCount = 68

// CensusN is the paper's dataset size (~2.5M rows). Generating the full
// size is supported but slow; experiments default to a smaller n and note
// the substitution in EXPERIMENTS.md.
const CensusN = 2458285

// Census generates a synthetic stand-in for the Census dataset: n rows over
// 68 categorical columns with cardinalities between 2 and 10, zipf-skewed
// marginals of varying exponent, and block correlations (each column in a
// correlated block copies the block leader's value index with probability
// 0.6, modulo its own cardinality) so that multi-column rules with high
// support exist, as in real census data.
//
// For speed at millions of rows, values are generated directly as
// dictionary ids through a pre-seeded builder.
func Census(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))

	cols := make([]string, CensusColumnCount)
	cards := make([]int, CensusColumnCount)
	dists := make([]dist, CensusColumnCount)
	for c := range cols {
		cols[c] = fmt.Sprintf("attr%02d", c)
		// Cardinality cycles 2..10 so some columns are binary (like sex or
		// citizenship) and others ~10-valued (like bucketized age/income).
		cards[c] = 2 + c%9
		skew := 0.5 + float64(c%5)*0.4 // zipf exponents 0.5 .. 2.1
		dists[c] = newDist(labels(fmt.Sprintf("v%02d_", c), cards[c]), zipfWeights(cards[c], skew))
	}

	// Correlated blocks of 4 columns: columns 1..3 of each block follow the
	// block leader with probability 0.6.
	const blockSize = 4
	const followProb = 0.6

	b := table.MustBuilder(cols, nil)
	row := make([]string, CensusColumnCount)
	idx := make([]int, CensusColumnCount)
	for i := 0; i < n; i++ {
		for c := 0; c < CensusColumnCount; c++ {
			lead := c - c%blockSize
			if c != lead && rng.Float64() < followProb {
				idx[c] = idx[lead] % cards[c]
			} else {
				idx[c] = dists[c].sampleIdx(rng)
			}
			row[c] = dists[c].values[idx[c]]
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

// CensusProjected generates Census data restricted to its first k columns
// (the paper's experiments use 7) without paying for the other 61.
func CensusProjected(n, k int, seed int64) *table.Table {
	full := CensusColumnCount
	if k <= 0 || k > full {
		k = full
	}
	rng := rand.New(rand.NewSource(seed))
	cols := make([]string, k)
	cards := make([]int, full)
	dists := make([]dist, full)
	for c := 0; c < full; c++ {
		if c < k {
			cols[c] = fmt.Sprintf("attr%02d", c)
		}
		cards[c] = 2 + c%9
		skew := 0.5 + float64(c%5)*0.4
		dists[c] = newDist(labels(fmt.Sprintf("v%02d_", c), cards[c]), zipfWeights(cards[c], skew))
	}
	const blockSize = 4
	const followProb = 0.6
	b := table.MustBuilder(cols, nil)
	row := make([]string, k)
	idx := make([]int, full)
	for i := 0; i < n; i++ {
		// Generate all 68 so the distribution matches Census exactly for
		// the shared prefix, then keep the first k. The RNG stream per row
		// must be identical to Census for the same seed.
		for c := 0; c < full; c++ {
			lead := c - c%blockSize
			if c != lead && rng.Float64() < followProb {
				idx[c] = idx[lead] % cards[c]
			} else {
				idx[c] = dists[c].sampleIdx(rng)
			}
			if c < k {
				row[c] = dists[c].values[idx[c]]
			}
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

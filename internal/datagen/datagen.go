// Package datagen generates the synthetic datasets that stand in for the
// paper's evaluation data (see DESIGN.md §3 for the substitution rationale):
//
//   - StoreSales: the department-store table of the paper's running example
//     (Tables 1–3), with the example's group counts planted exactly.
//   - Marketing: same shape as the paper's Marketing survey dataset
//     (9409 × 14 demographic columns, each ≤ 10 distinct values), with
//     skewed marginals and deliberate cross-column correlations so that
//     multi-column rules with high counts exist.
//   - Census: same shape as the paper's US 1990 Census extract (68 columns,
//     scalable to 2.5M rows), used to exercise the sampling machinery.
//
// All generators are deterministic given their seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
)

// dist is a categorical distribution: values with relative weights.
type dist struct {
	values  []string
	weights []float64
	cum     []float64
}

func newDist(values []string, weights []float64) dist {
	if len(values) != len(weights) {
		panic("datagen: values/weights length mismatch")
	}
	d := dist{values: values, weights: weights, cum: make([]float64, len(weights))}
	total := 0.0
	for i, w := range weights {
		total += w
		d.cum[i] = total
	}
	for i := range d.cum {
		d.cum[i] /= total
	}
	return d
}

func (d dist) sample(rng *rand.Rand) string {
	u := rng.Float64()
	for i, c := range d.cum {
		if u <= c {
			return d.values[i]
		}
	}
	return d.values[len(d.values)-1]
}

// sampleIdx returns the index rather than the label.
func (d dist) sampleIdx(rng *rand.Rand) int {
	u := rng.Float64()
	for i, c := range d.cum {
		if u <= c {
			return i
		}
	}
	return len(d.values) - 1
}

// zipfWeights returns k weights ∝ 1/(i+1)^s — the skew that makes some
// values much more frequent than others, which is what gives drill-down
// rules high counts.
func zipfWeights(k int, s float64) []float64 {
	w := make([]float64, k)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

func labels(prefix string, k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("%s%02d", prefix, i)
	}
	return out
}

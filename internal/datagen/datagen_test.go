package datagen

import (
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
)

func TestStoreSalesShape(t *testing.T) {
	tab := StoreSales(42)
	if tab.NumRows() != 6000 {
		t.Fatalf("rows = %d, want 6000", tab.NumRows())
	}
	if tab.NumCols() != 3 {
		t.Fatalf("cols = %d, want 3", tab.NumCols())
	}
	if len(tab.MeasureNames()) != 1 || tab.MeasureNames()[0] != "Sales" {
		t.Fatalf("measures = %v", tab.MeasureNames())
	}
}

func TestStoreSalesPlantedCounts(t *testing.T) {
	tab := StoreSales(42)
	cases := []struct {
		pattern map[string]string
		want    int
	}{
		{map[string]string{"Store": "Walmart"}, 1000},
		{map[string]string{"Store": "Target", "Product": "bicycles"}, 200},
		{map[string]string{"Product": "comforters", "Region": "MA-3"}, 600},
		{map[string]string{"Store": "Walmart", "Product": "cookies"}, 200},
		{map[string]string{"Store": "Walmart", "Region": "CA-1"}, 150},
		{map[string]string{"Store": "Walmart", "Region": "WA-5"}, 130},
	}
	for _, c := range cases {
		r, err := tab.EncodeRule(c.pattern)
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.Count(r); got != c.want {
			t.Errorf("Count(%v) = %d, want %d", c.pattern, got, c.want)
		}
	}
}

func TestStoreSalesNoiseBounded(t *testing.T) {
	// No noise value may rival the planted groups, or the drill-down would
	// not reproduce the paper's tables.
	tab := StoreSales(42)
	for c := 0; c < tab.NumCols(); c++ {
		for v := 0; v < tab.DistinctCount(c); v++ {
			val := tab.Dict(c).Decode(rule.Value(v))
			switch val {
			case "Walmart", "Target", "bicycles", "comforters", "cookies", "MA-3", "CA-1", "WA-5":
				continue
			}
			r := rule.Trivial(3).With(c, rule.Value(v))
			if got := tab.Count(r); got >= 200 {
				t.Errorf("noise value %q count %d rivals planted groups", val, got)
			}
		}
	}
}

func TestStoreSalesDeterministic(t *testing.T) {
	a, b := StoreSales(9), StoreSales(9)
	if a.NumRows() != b.NumRows() {
		t.Fatal("nondeterministic row count")
	}
	for i := 0; i < 100; i++ {
		for c := 0; c < a.NumCols(); c++ {
			if a.Value(c, i) != b.Value(c, i) {
				t.Fatalf("row %d differs between same-seed generations", i)
			}
		}
	}
}

func TestMarketingShape(t *testing.T) {
	tab := Marketing(2000, 3)
	if tab.NumRows() != 2000 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.NumCols() != 14 {
		t.Fatalf("cols = %d, want 14", tab.NumCols())
	}
	for c := 0; c < tab.NumCols(); c++ {
		if got := tab.DistinctCount(c); got > 10 {
			t.Errorf("column %s has %d distinct values, paper says ≤10",
				tab.ColumnNames()[c], got)
		}
	}
}

func TestMarketingCorrelations(t *testing.T) {
	tab := Marketing(8000, 3)
	// Young respondents (18-24) must skew single: the generator's marital
	// correlation is what makes multi-column rules interesting.
	young, err := tab.EncodeRule(map[string]string{"Age": "18-24"})
	if err != nil {
		t.Fatal(err)
	}
	youngSingle, err := tab.EncodeRule(map[string]string{"Age": "18-24", "Marital": "Single"})
	if err != nil {
		t.Fatal(err)
	}
	ny, nys := tab.Count(young), tab.Count(youngSingle)
	if ny == 0 {
		t.Fatal("no young tuples")
	}
	if frac := float64(nys) / float64(ny); frac < 0.6 {
		t.Errorf("P(single | 18-24) = %.2f, want ≥ 0.6 by construction", frac)
	}
	// Married respondents skew dual-income.
	married, _ := tab.EncodeRule(map[string]string{"Marital": "Married"})
	marriedDual, _ := tab.EncodeRule(map[string]string{"Marital": "Married", "DualIncome": "Yes"})
	if frac := float64(tab.Count(marriedDual)) / float64(tab.Count(married)); frac < 0.5 {
		t.Errorf("P(dual | married) = %.2f, want ≥ 0.5", frac)
	}
}

func TestCensusShape(t *testing.T) {
	tab := Census(500, 5)
	if tab.NumCols() != CensusColumnCount {
		t.Fatalf("cols = %d, want %d", tab.NumCols(), CensusColumnCount)
	}
	if tab.NumRows() != 500 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	for c := 0; c < tab.NumCols(); c++ {
		if got, want := tab.DistinctCount(c), 2+c%9; got > want {
			t.Errorf("column %d: %d distinct values, want ≤ %d", c, got, want)
		}
	}
}

func TestCensusProjectedMatchesPrefix(t *testing.T) {
	// CensusProjected must generate the identical prefix distribution as
	// Census for the same seed (same RNG stream per row).
	full := Census(300, 8)
	proj := CensusProjected(300, 7, 8)
	if proj.NumCols() != 7 {
		t.Fatalf("projected cols = %d", proj.NumCols())
	}
	for i := 0; i < 300; i++ {
		for c := 0; c < 7; c++ {
			a := full.Dict(c).Decode(full.Value(c, i))
			b := proj.Dict(c).Decode(proj.Value(c, i))
			if a != b {
				t.Fatalf("row %d col %d: %q vs %q", i, c, a, b)
			}
		}
	}
}

func TestCensusBlockCorrelation(t *testing.T) {
	tab := Census(5000, 2)
	// Columns 0 (leader) and 1 follow each other 60% of the time modulo
	// cardinality; measure the match rate of idx(col1) == idx(col0)%3.
	match := 0
	for i := 0; i < tab.NumRows(); i++ {
		lead := int(tab.Value(0, i))
		if int(tab.Value(1, i))%3 == lead%3 {
			match++
		}
	}
	frac := float64(match) / float64(tab.NumRows())
	if frac < 0.55 {
		t.Errorf("block correlation %.2f too weak, want ≥ 0.55", frac)
	}
}

func TestDistSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := newDist([]string{"a", "b"}, []float64{9, 1})
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		counts[d.sample(rng)]++
	}
	if counts["a"] < 8500 || counts["a"] > 9500 {
		t.Fatalf("skewed dist sampled a %d times / 10000, want ≈9000", counts["a"])
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(4, 1)
	if w[0] != 1 || w[1] != 0.5 || w[3] != 0.25 {
		t.Fatalf("zipf weights = %v", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatal("zipf weights must be non-increasing")
		}
	}
}

func TestNewDistValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched values/weights must panic")
		}
	}()
	newDist([]string{"a"}, []float64{1, 2})
}

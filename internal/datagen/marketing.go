package datagen

import (
	"math/rand"

	"smartdrill/internal/table"
)

// MarketingColumns are the 14 demographic attributes of the paper's
// Marketing dataset, in the paper's order (Section 5, "Datasets").
var MarketingColumns = []string{
	"Income", "Gender", "Marital", "Age", "Education", "Occupation",
	"TimeInBay", "DualIncome", "Persons", "PersonsUnder18",
	"Householder", "HomeType", "Ethnicity", "Language",
}

// Marketing generates a synthetic stand-in for the paper's Marketing survey
// dataset: n rows over the 14 columns above, each with ≤ 10 distinct
// values, skewed marginals, and demographic-style correlations (marital
// status depends on age, occupation on education, income on occupation,
// household composition on marital status, home type on income). The
// paper's experiments use n = 9409 and the first 7 columns; use
// MarketingN for the former and Table.Project for the latter.
func Marketing(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	b := table.MustBuilder(MarketingColumns, nil)

	gender := newDist([]string{"Female", "Male"}, []float64{0.52, 0.48})
	age := newDist(
		[]string{"18-24", "25-34", "35-44", "45-54", "55-64", "65+"},
		[]float64{0.18, 0.27, 0.22, 0.14, 0.10, 0.09})
	timeInBay := newDist(
		[]string{">10 years", "4-6 years", "7-10 years", "1-3 years", "<1 year"},
		[]float64{0.58, 0.12, 0.12, 0.11, 0.07})
	education := newDist(
		[]string{"College grad", "Some college", "HS grad", "Grad study", "Some HS", "<HS"},
		[]float64{0.30, 0.25, 0.20, 0.13, 0.08, 0.04})
	language := newDist(
		[]string{"English", "Spanish", "Other"},
		[]float64{0.87, 0.08, 0.05})
	ethnicity := newDist(
		[]string{"White", "Asian", "Hispanic", "Black", "Other"},
		[]float64{0.62, 0.15, 0.12, 0.08, 0.03})

	// maritalFor correlates marital status with the age bucket index:
	// younger respondents skew single, older skew married/widowed.
	maritalFor := func(ageIdx int) dist {
		vals := []string{"Married", "Single", "Living together", "Divorced", "Widowed"}
		switch {
		case ageIdx == 0:
			return newDist(vals, []float64{0.08, 0.72, 0.14, 0.04, 0.02})
		case ageIdx == 1:
			return newDist(vals, []float64{0.38, 0.40, 0.14, 0.07, 0.01})
		case ageIdx <= 3:
			return newDist(vals, []float64{0.58, 0.15, 0.07, 0.17, 0.03})
		default:
			return newDist(vals, []float64{0.55, 0.07, 0.03, 0.17, 0.18})
		}
	}
	// occupationFor correlates occupation with education index.
	occupationFor := func(eduIdx int) dist {
		vals := []string{"Professional", "Clerical", "Sales", "Laborer", "Homemaker",
			"Student", "Military", "Retired", "Unemployed"}
		switch {
		case eduIdx <= 1: // college grad / grad study side
			return newDist(vals, []float64{0.47, 0.15, 0.12, 0.04, 0.06, 0.08, 0.01, 0.05, 0.02})
		case eduIdx <= 3:
			return newDist(vals, []float64{0.22, 0.22, 0.15, 0.12, 0.09, 0.09, 0.02, 0.06, 0.03})
		default:
			return newDist(vals, []float64{0.05, 0.14, 0.12, 0.33, 0.12, 0.05, 0.02, 0.09, 0.08})
		}
	}
	// incomeFor correlates income with occupation index.
	incomeFor := func(occIdx int) dist {
		vals := []string{"<10k", "10-15k", "15-20k", "20-25k", "25-30k",
			"30-40k", "40-50k", "50-75k", "75k+"}
		switch {
		case occIdx == 0: // professional
			return newDist(vals, []float64{0.01, 0.02, 0.03, 0.05, 0.07, 0.15, 0.18, 0.27, 0.22})
		case occIdx <= 2:
			return newDist(vals, []float64{0.05, 0.07, 0.10, 0.13, 0.14, 0.18, 0.14, 0.13, 0.06})
		case occIdx == 7: // retired
			return newDist(vals, []float64{0.15, 0.17, 0.15, 0.13, 0.11, 0.12, 0.08, 0.06, 0.03})
		default:
			return newDist(vals, []float64{0.14, 0.15, 0.15, 0.14, 0.12, 0.13, 0.08, 0.06, 0.03})
		}
	}

	for i := 0; i < n; i++ {
		g := gender.sample(rng)
		ageIdx := age.sampleIdx(rng)
		ageV := age.values[ageIdx]
		marital := maritalFor(ageIdx).sample(rng)
		eduIdx := education.sampleIdx(rng)
		eduV := education.values[eduIdx]
		occIdx := occupationFor(eduIdx).sampleIdx(rng)
		occV := occupationFor(eduIdx).values[occIdx]
		income := incomeFor(occIdx).sample(rng)
		tib := timeInBay.sample(rng)

		dual := "No"
		if marital == "Married" && rng.Float64() < 0.62 {
			dual = "Yes"
		}
		persons := "1"
		under18 := "0"
		switch marital {
		case "Married":
			persons = []string{"2", "3", "4", "5+"}[weightedIdx(rng, []float64{0.35, 0.27, 0.25, 0.13})]
			under18 = []string{"0", "1", "2", "3+"}[weightedIdx(rng, []float64{0.42, 0.25, 0.24, 0.09})]
		case "Living together":
			persons = []string{"2", "3", "4"}[weightedIdx(rng, []float64{0.62, 0.25, 0.13})]
			under18 = []string{"0", "1", "2"}[weightedIdx(rng, []float64{0.70, 0.20, 0.10})]
		default:
			persons = []string{"1", "2", "3"}[weightedIdx(rng, []float64{0.60, 0.28, 0.12})]
			under18 = []string{"0", "1"}[weightedIdx(rng, []float64{0.85, 0.15})]
		}
		householder := "Rent"
		if marital == "Married" || income == "50-75k" || income == "75k+" {
			if rng.Float64() < 0.67 {
				householder = "Own"
			}
		} else if rng.Float64() < 0.25 {
			householder = "Own"
		} else if rng.Float64() < 0.10 {
			householder = "Family"
		}
		home := "Apartment"
		if householder == "Own" {
			home = []string{"House", "Condo", "Townhouse"}[weightedIdx(rng, []float64{0.72, 0.16, 0.12})]
		} else if rng.Float64() < 0.20 {
			home = "House"
		}

		b.MustAddRow([]string{
			income, g, marital, ageV, eduV, occV, tib, dual,
			persons, under18, householder, home,
			ethnicity.sample(rng), language.sample(rng),
		})
	}
	return b.Build()
}

// MarketingN is the paper's dataset size.
const MarketingN = 9409

func weightedIdx(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

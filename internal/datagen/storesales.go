package datagen

import (
	"math/rand"

	"smartdrill/internal/table"
)

// StoreSales builds the department-store table of the paper's running
// example (Section 1): 6000 tuples over Store / Product / Region with a
// Sales measure. The example's noteworthy groups are planted with the exact
// counts of Tables 2–3:
//
//	(Target, bicycles, ?)    200 tuples
//	(?, comforters, MA-3)    600 tuples
//	(Walmart, ?, ?)         1000 tuples, containing
//	    (Walmart, cookies, ?)  200
//	    (Walmart, ?, CA-1)     150
//	    (Walmart, ?, WA-5)     130
//
// The remaining tuples are uniform noise spread thinly enough (≤ ~120 per
// single value, ≤ ~12 per value pair) that the planted groups are the
// optimal rules, so a smart drill-down session reproduces the paper's
// Tables 1–3 exactly.
func StoreSales(seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	b := table.MustBuilder([]string{"Store", "Product", "Region"}, []string{"Sales"})

	sales := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }

	// Planted groups. Within each, the unconstrained attributes are drawn
	// from wide noise pools so they do not form competing rules.
	noiseStores := labels("store", 40)
	noiseProducts := labels("product", 50)
	noiseRegions := labels("region", 60)
	pickNoise := func(pool []string) string { return pool[rng.Intn(len(pool))] }

	for i := 0; i < 200; i++ { // Target sells bicycles everywhere
		b.MustAddRow([]string{"Target", "bicycles", pickNoise(noiseRegions)}, sales(50, 500))
	}
	for i := 0; i < 600; i++ { // comforters sell well in MA-3 across stores
		b.MustAddRow([]string{pickNoise(noiseStores), "comforters", "MA-3"}, sales(20, 200))
	}
	// Walmart: 1000 tuples total with planted sub-structure.
	for i := 0; i < 200; i++ {
		b.MustAddRow([]string{"Walmart", "cookies", pickNoise(noiseRegions)}, sales(5, 50))
	}
	for i := 0; i < 150; i++ {
		b.MustAddRow([]string{"Walmart", pickNoise(noiseProducts), "CA-1"}, sales(10, 300))
	}
	for i := 0; i < 130; i++ {
		b.MustAddRow([]string{"Walmart", pickNoise(noiseProducts), "WA-5"}, sales(10, 300))
	}
	for i := 0; i < 520; i++ { // remaining Walmart tuples: diffuse
		b.MustAddRow([]string{"Walmart", pickNoise(noiseProducts), pickNoise(noiseRegions)}, sales(10, 300))
	}
	// Uniform noise filler to reach 6000 rows. 4200 rows over 40×50×60
	// combinations: expected ~105 per store, ~84 per product, ~70 per
	// region, ~2 per pair — far below every planted count.
	for i := 0; i < 4200; i++ {
		b.MustAddRow([]string{pickNoise(noiseStores), pickNoise(noiseProducts), pickNoise(noiseRegions)}, sales(5, 400))
	}
	return b.Build()
}

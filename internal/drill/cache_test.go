package drill

import (
	"fmt"
	"sync"
	"testing"

	"smartdrill/internal/datagen"
	"smartdrill/internal/rule"
	"smartdrill/internal/search"
	"smartdrill/internal/weight"
)

// TestRepeatedDrillServedFromCache is the headline acceptance check: a
// second identical full-table drill — from another session on the same
// dataset, or a re-expansion within one session — is answered from the
// shared cache with zero passes and zero rows scanned.
func TestRepeatedDrillServedFromCache(t *testing.T) {
	tab := datagen.CensusProjected(20000, 5, 13)
	svc := search.NewService(search.Config{})
	newSess := func() *Session {
		s, err := NewSession(tab, Config{K: 3, Search: svc})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s1 := newSess()
	if err := s1.Expand(s1.Root()); err != nil {
		t.Fatal(err)
	}
	if s1.LastMethod == "cache" || s1.LastStats.Passes == 0 {
		t.Fatalf("first drill must execute: method=%q stats=%+v", s1.LastMethod, s1.LastStats)
	}
	if s1.LastStats.CacheMisses != 1 {
		t.Fatalf("first drill stats = %+v; want CacheMisses=1", s1.LastStats)
	}

	// Another analyst's identical drill on the same dataset: a pure hit.
	s2 := newSess()
	if err := s2.Expand(s2.Root()); err != nil {
		t.Fatal(err)
	}
	if s2.LastMethod != "cache" {
		t.Fatalf("second session's drill method = %q, want cache", s2.LastMethod)
	}
	if st := s2.LastStats; st.Passes != 0 || st.RowsScanned != 0 || st.CacheHits != 1 {
		t.Fatalf("cached drill stats = %+v; want Passes=0 RowsScanned=0 CacheHits=1", st)
	}
	// The cache counters also flow into the store's disk accounting.
	if hits := s2.Store().Stats().SearchCacheHits; hits != 1 {
		t.Fatalf("store cache-hit accounting = %d, want 1", hits)
	}

	// Both sessions display identical expansions.
	if r1, r2 := s1.Render(), s2.Render(); r1 != r2 {
		t.Fatalf("cached tree diverges:\nexecuted:\n%s\ncached:\n%s", r1, r2)
	}

	// Re-expansion within one session after a roll-up is a hit too.
	s1.Collapse(s1.Root())
	if err := s1.Expand(s1.Root()); err != nil {
		t.Fatal(err)
	}
	if s1.LastMethod != "cache" || s1.LastStats.CacheHits != 1 {
		t.Fatalf("re-expansion method=%q stats=%+v", s1.LastMethod, s1.LastStats)
	}
	if c := svc.Counters(); c.Misses != 1 || c.Hits != 2 {
		t.Fatalf("counters = %+v; want 1 execution, 2 hits", c)
	}
}

// TestConcurrentIdenticalDrillsExecuteOnce drives ten sessions into the
// same expansion at once: singleflight must collapse them onto a single
// BRS execution, with every other request either waiting on the flight or
// hitting the cache the leader published.
func TestConcurrentIdenticalDrillsExecuteOnce(t *testing.T) {
	tab := datagen.CensusProjected(20000, 5, 13)
	svc := search.NewService(search.Config{})

	const goroutines = 10
	sessions := make([]*Session, goroutines)
	for i := range sessions {
		s, err := NewSession(tab, Config{K: 3, Search: svc})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}

	start := make(chan struct{})
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			<-start
			errs[i] = s.Expand(s.Root())
		}(i, s)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	c := svc.Counters()
	if c.Misses != 1 {
		t.Fatalf("%d BRS executions for %d identical drills; want exactly 1 (counters %+v)", c.Misses, goroutines, c)
	}
	if c.Hits+c.SingleflightWaits != goroutines-1 {
		t.Fatalf("hits(%d)+waits(%d) != %d: every non-leader must be served without executing", c.Hits, c.SingleflightWaits, goroutines-1)
	}
	want := sessions[0].Render()
	for i, s := range sessions[1:] {
		if got := s.Render(); got != want {
			t.Fatalf("session %d tree diverged:\n%s\nvs\n%s", i+1, got, want)
		}
	}
}

// TestNearIdenticalDrillsGetDistinctKeys: requests differing in any
// identity field — k, weighter, seed — must never share an answer.
func TestNearIdenticalDrillsGetDistinctKeys(t *testing.T) {
	tab := datagen.StoreSales(42)
	svc := search.NewService(search.Config{})

	cols := tab.NumCols()
	variants := []Config{
		{K: 3, Search: svc},
		{K: 4, Search: svc}, // different k
		{K: 3, Search: svc, Weighter: weight.SizeMinusOne{}},                                   // different weighter
		{K: 3, Search: svc, Weighter: weight.NewBits(distinct(tab.All().DistinctCount, cols))}, // and another
		{K: 3, Search: svc, Seed: 7},                                                           // different seed (mw probe differs)
	}
	for i, cfg := range variants {
		s, err := NewSession(tab, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Expand(s.Root()); err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if s.LastMethod == "cache" {
			t.Fatalf("variant %d shared another variant's answer", i)
		}
	}
	c := svc.Counters()
	if c.Misses != int64(len(variants)) || c.Hits != 0 {
		t.Fatalf("counters = %+v; want %d distinct executions, 0 hits", c, len(variants))
	}
}

func distinct(count func(int) int, cols int) []int {
	out := make([]int, cols)
	for c := range out {
		out[c] = count(c)
	}
	return out
}

// flatten lists a subtree's nodes depth-first with every displayed field,
// for bit-identity comparison.
func flatten(n *Node) []string {
	out := []string{fmt.Sprintf("%v w=%v c=%v exact=%v ci=%v,%v,%v",
		n.Rule, n.Weight, n.Count, n.Exact, n.HasCI, n.CILow, n.CIHigh)}
	for _, c := range n.Children {
		out = append(out, flatten(c)...)
	}
	return out
}

// TestCachedPathBitIdenticalToUncached is the correctness property behind
// the whole cache: a session served from a warm shared cache must display
// exactly what an identical session with the cache disabled computes —
// across batch expansion, star drill-down, budget-free streaming, and
// refine — for several tables and seeds.
func TestCachedPathBitIdenticalToUncached(t *testing.T) {
	drive := func(t *testing.T, s *Session) {
		t.Helper()
		// Batch expansion of the root …
		if err := s.Expand(s.Root()); err != nil {
			t.Fatal(err)
		}
		children := s.Root().Children
		if len(children) == 0 {
			t.Fatal("root expansion found no rules")
		}
		// … a nested batch expansion, a star drill-down, and a budget-free
		// (cacheable) stream on the first children that allow them …
		if err := s.Expand(children[0]); err != nil {
			t.Fatal(err)
		}
		if len(children) > 1 {
			if c := firstStarCol(children[1].Rule); c >= 0 {
				if err := s.ExpandStar(children[1], c); err != nil {
					t.Fatal(err)
				}
			}
		}
		if len(children) > 2 {
			if err := s.ExpandStream(children[2], 4, 0, nil); err != nil {
				t.Fatal(err)
			}
		}
		// … and a refine pass over whatever is provisional (a no-op for
		// exact sessions, exercised for coverage).
		for _, n := range s.ProvisionalNodes() {
			s.RefineNode(n)
		}
	}

	for _, seed := range []int64{1, 9, 23} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			tab := datagen.CensusProjected(8000, 5, seed)
			cfg := Config{K: 3, Seed: seed}

			// Reference: the cache fully disabled — the pre-service path.
			ref, err := NewSession(tab, func() Config { c := cfg; c.DisableCache = true; return c }())
			if err != nil {
				t.Fatal(err)
			}
			drive(t, ref)

			// Warm a shared service with one driven session, then drive a
			// second identical session entirely from the cache.
			svc := search.NewService(search.Config{})
			warm, err := NewSession(tab, func() Config { c := cfg; c.Search = svc; return c }())
			if err != nil {
				t.Fatal(err)
			}
			drive(t, warm)
			cached, err := NewSession(tab, func() Config { c := cfg; c.Search = svc; return c }())
			if err != nil {
				t.Fatal(err)
			}
			drive(t, cached)
			if svc.Counters().Hits == 0 {
				t.Fatal("second driven session never hit the cache")
			}

			refTree := flatten(ref.Root())
			for name, s := range map[string]*Session{"warm": warm, "cached": cached} {
				got := flatten(s.Root())
				if len(got) != len(refTree) {
					t.Fatalf("%s session: %d nodes vs reference %d", name, len(got), len(refTree))
				}
				for i := range got {
					if got[i] != refTree[i] {
						t.Fatalf("%s session node %d diverged:\ngot  %s\nwant %s", name, i, got[i], refTree[i])
					}
				}
			}
		})
	}
}

func firstStarCol(r rule.Rule) int {
	for c, v := range r {
		if v == rule.Star {
			return c
		}
	}
	return -1
}

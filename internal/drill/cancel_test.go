package drill

// Cancellation and stable-ID contracts of the context-aware session API.

import (
	"context"
	"errors"
	"testing"
	"time"

	"smartdrill/internal/datagen"
)

// TestExpandCtxPreCanceled: a dead context aborts the expansion before any
// search work, with the session left fully usable — a later expansion
// yields results bit-identical to an untouched session's.
func TestExpandCtxPreCanceled(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.ExpandCtx(ctx, s.Root()); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExpandCtx on dead context: err %v, want context.Canceled", err)
	}
	if s.Root().Expanded() {
		t.Fatal("canceled expansion left children behind")
	}

	// Not poisoned: the session expands normally and matches a fresh one.
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSession(datagen.StoreSales(42), Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Expand(fresh.Root()); err != nil {
		t.Fatal(err)
	}
	a, b := s.Root().Children, fresh.Root().Children
	if len(a) != len(b) {
		t.Fatalf("post-cancel expansion: %d children, fresh session has %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Rule.Equal(b[i].Rule) || a[i].Count != b[i].Count {
			t.Fatalf("post-cancel child %d = %+v, fresh = %+v", i, a[i], b[i])
		}
	}
}

// TestExpandStreamCtxCancelMidSearch cancels from inside the rule callback
// — deterministically mid-search — and verifies the search aborts with the
// context's error, keeps the rules already streamed, records the partial
// search's statistics, and leaves the session usable.
func TestExpandStreamCtxCancelMidSearch(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	err = s.ExpandStreamCtx(ctx, s.Root(), 0, time.Minute, func(n *Node) bool {
		yields++
		cancel() // the search must stop before finding another rule
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExpandStreamCtx: err %v, want context.Canceled", err)
	}
	if yields != 1 {
		t.Fatalf("search yielded %d rules after in-callback cancel, want exactly 1", yields)
	}
	if got := len(s.Root().Children); got != 1 {
		t.Fatalf("tree kept %d children, want the 1 streamed rule", got)
	}
	if s.LastStats.Passes == 0 && s.LastStats.PostingsRead == 0 {
		t.Fatal("canceled search recorded no statistics")
	}
	if s.TotalStats != s.LastStats {
		t.Fatalf("TotalStats %+v diverged from LastStats %+v on first expansion", s.TotalStats, s.LastStats)
	}

	// The streamed child is still addressable by its stable ID…
	child := s.Root().Children[0]
	if got := s.NodeByID(child.ID()); got != child {
		t.Fatalf("NodeByID(%d) = %p, want %p", child.ID(), got, child)
	}
	// …and the session keeps working.
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if len(s.Root().Children) != 3 {
		t.Fatalf("post-cancel expansion returned %d children, want 3", len(s.Root().Children))
	}
}

// TestStableIDsAcrossMutations: IDs survive unrelated mutations, die with
// collapse, and are never reused.
func TestStableIDsAcrossMutations(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root()
	if root.ID() != 1 || s.NodeByID(1) != root {
		t.Fatalf("root id = %d, want 1", root.ID())
	}
	if err := s.Expand(root); err != nil {
		t.Fatal(err)
	}
	first := root.Children[0]
	firstID := first.ID()
	if err := s.Expand(first); err != nil {
		t.Fatal(err)
	}
	grand := first.Children[0]
	grandID := grand.ID()

	// Expanding a *sibling* must not disturb first's or grand's IDs.
	if err := s.Expand(root.Children[1]); err != nil {
		t.Fatal(err)
	}
	if s.NodeByID(firstID) != first || s.NodeByID(grandID) != grand {
		t.Fatal("sibling expansion disturbed unrelated node IDs")
	}
	if path, ok := s.PathOf(grand); !ok || len(path) != 2 || path[0] != 0 || path[1] != 0 {
		t.Fatalf("PathOf(grand) = %v, %v", path, ok)
	}

	// Collapse retires the subtree's IDs; they never come back.
	s.Collapse(first)
	if s.NodeByID(grandID) != nil {
		t.Fatal("collapsed child still resolvable by ID")
	}
	if s.NodeByID(firstID) != first {
		t.Fatal("collapse of children must not retire the node's own ID")
	}
	if err := s.Expand(first); err != nil {
		t.Fatal(err)
	}
	for _, c := range first.Children {
		if c.ID() == grandID {
			t.Fatalf("re-expansion reused retired ID %d", grandID)
		}
	}
}

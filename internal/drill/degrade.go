package drill

import "context"

// Degraded mode is the serving layer's graceful-degradation ladder: under
// admission pressure a request marked degraded trades answer exactness for
// latency *before* the server sheds load. The flag rides the request
// context — the same channel cancellation already travels — so it reaches
// the expansion routing without new plumbing through every call site.
//
// Effects inside an expansion:
//
//   - a session with a sample handler routes the expansion through the
//     sampled/provisional pipeline regardless of SampleThreshold, so the
//     answer costs a sample pass instead of full table passes;
//   - post-expansion prefetch (sample reallocation) is skipped — it is
//     pure background work the overloaded server cannot afford.
//
// Sessions without sampling configured have no cheaper path to fall back
// to; for them the flag only suppresses prefetch here, and the serving
// layer separately skips background refinement.

// degradedKey marks a context as degraded.
type degradedKey struct{}

// WithDegraded returns a context whose expansions run in degraded mode.
func WithDegraded(ctx context.Context) context.Context {
	return context.WithValue(ctx, degradedKey{}, true)
}

// DegradedFrom reports whether ctx is marked degraded.
func DegradedFrom(ctx context.Context) bool {
	v, _ := ctx.Value(degradedKey{}).(bool)
	return v
}

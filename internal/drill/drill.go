// Package drill implements the interactive smart drill-down session of
// Section 2.3: a displayed tree of rules the analyst expands (by clicking a
// rule or a star within a rule) and collapses (roll-up). Expansions run BRS
// on a zero-copy view of the rule's coverage — answered by the table's
// inverted index — or, for large tables, on a uniform sample served by the
// SampleHandler, scaling displayed counts back to table estimates.
package drill

import (
	"context"
	"fmt"
	"math"

	"smartdrill/internal/baseline"
	"smartdrill/internal/brs"
	"smartdrill/internal/rule"
	"smartdrill/internal/sampling"
	"smartdrill/internal/score"
	"smartdrill/internal/search"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Config parameterizes a session. Zero values get paper defaults.
type Config struct {
	// K is the number of rules per expansion (paper default 3; the
	// experiments use 4).
	K int
	// MaxWeight is BRS's mw parameter; 0 lets each expansion estimate it
	// (EstimateMaxWeight) or fall back to the weighter's bound.
	MaxWeight float64
	// Weighter scores rules; nil means Size weighting.
	Weighter weight.Weighter
	// Agg is the displayed aggregate; nil means Count.
	Agg score.Aggregator
	// SampleMemory (M) and MinSampleSize (minSS) enable the SampleHandler
	// when both are positive and the table is larger than MinSampleSize;
	// otherwise expansions scan the table directly.
	SampleMemory  int
	MinSampleSize int
	// SampleThreshold routes individual expansions when the handler is
	// enabled: a (sub)view that can exceed this many rows is searched on a
	// uniform sample (provisional, confidence-bounded results), smaller
	// ones exactly through the inverted index. 0 samples every expansion
	// (the pre-threshold behavior).
	SampleThreshold int
	// DisableSampling forces every expansion down the exact path even when
	// SampleMemory/MinSampleSize are set — the ablation that keeps results
	// bit-identical to a session configured without sampling.
	DisableSampling bool
	// Prefetch rebuilds samples for likely next drill-downs after each
	// expansion (Section 4.3) and upgrades displayed counts to exact.
	Prefetch bool
	// Seed makes sampling deterministic; 0 means seed 1.
	Seed int64
	// Workers parallelizes BRS table passes across goroutines; 0 picks the
	// hardware core count under the Count aggregate (serial otherwise).
	// Results are identical under the Count aggregate at any worker count.
	Workers int
	// DisableParallel forces every BRS pass serial (ablation; the
	// equivalence suites' deterministic reference).
	DisableParallel bool
	// DisableBitmap turns off the packed-bitset counting kernel, leaving
	// scan and galloping-postings counting (ablation).
	DisableBitmap bool
	// ProbModel predicts which displayed rule the analyst drills next,
	// steering prefetch memory allocation (Section 4.1). Nil means the
	// uniform distribution. drill sessions feed the model their own
	// history automatically.
	ProbModel sampling.ProbModel
	// Search routes every BRS invocation of this session through a shared,
	// dataset-scoped search service (answer cache, singleflight, warming
	// counters). Sessions on one dataset that share a service share its
	// cache: a repeated expansion — by this session or any other — is
	// served as a clone of the completed result with zero counting passes.
	// Nil gives the session a private service, so caching still works
	// within the session.
	Search *search.Service
	// DisableCache bypasses the search service's answer cache and
	// singleflight for this session — the ablation switch: every expansion
	// executes, and results are bit-identical to the cached path.
	DisableCache bool
}

// Node is one displayed rule. Count is the displayed aggregate (estimated
// when served from a sample; Exact reports which).
type Node struct {
	Rule     rule.Rule
	Weight   float64
	Count    float64
	Exact    bool
	Children []*Node

	// HasCI reports that CILow/CIHigh hold a genuine 95% interval on the
	// true count. The explicit flag (rather than a CILow==CIHigh==0
	// sentinel) lets a provisional node carry a true [0, 0] bound without
	// being misread as exact; it is false for exact counts and for
	// estimates without interval support (Sum aggregates).
	HasCI bool
	// CILow and CIHigh bound the true count at 95% confidence when HasCI
	// is set; both equal Count otherwise.
	CILow, CIHigh float64

	// id is the session-scoped stable identifier assigned when the node
	// entered the displayed tree; see Session.NodeByID.
	id uint64

	parent *Node
}

// Expanded reports whether the node currently shows children.
func (n *Node) Expanded() bool { return len(n.Children) > 0 }

// ID returns the node's stable identifier within its session: assigned
// once when an expansion (or session creation, for the root) puts the node
// on display, never reused while the session lives. Serving layers expose
// it as the wire address of the node.
func (n *Node) ID() uint64 { return n.id }

// Session is an interactive drill-down over one table.
//
// A Session is a single-writer structure with no mutex of its own: the
// mutable fields below are marked "guardedby: mu" for a lock the *owner*
// holds — the serving layer wraps each Session in a server session whose
// mu serializes every call (single-goroutine embedders need no lock at
// all). Accessors therefore declare the contract with //sdlint:holds mu,
// which the lockguard analyzer checks.
type Session struct {
	tab     *table.Table
	store   *storage.Store
	handler *sampling.Handler
	svc     *search.Service
	cfg     Config
	root    *Node // guardedby: mu (the owner's lock; see the type comment)

	// LastMethod records how the most recent expansion obtained its
	// tuples: "direct" or a sampling.Method name.
	LastMethod string // guardedby: mu
	// LastStats holds the BRS statistics of the most recent expansion.
	LastStats brs.Stats // guardedby: mu
	// TotalStats accumulates BRS statistics across every expansion of the
	// session — repeated drill-downs share the dataset's warmed posting
	// lists, so TotalStats.CandidatesReused and .PostingsRead measure how
	// much of a session's search work the caches absorbed.
	TotalStats brs.Stats // guardedby: mu

	// nextID feeds the session-scoped node ID sequence; byID is the O(1)
	// id→node index of every currently displayed node, maintained by
	// adopt/forget so serving layers resolve wire addresses without tree
	// walks.
	nextID uint64           // guardedby: mu
	byID   map[uint64]*Node // guardedby: mu
}

// adopt assigns n the next stable ID and registers it in the id index.
// Every node enters the displayed tree through here exactly once.
//
//sdlint:holds mu — reached only from expansion paths the owner serializes
func (s *Session) adopt(n *Node) {
	s.nextID++
	n.id = s.nextID
	s.byID[n.id] = n
}

// forget removes a subtree's nodes from the id index; their IDs are never
// reused, so stale wire addresses resolve to "unknown node" rather than to
// an unrelated later node.
//
//sdlint:holds mu — reached only from Collapse/re-expansion under the owner's lock
func (s *Session) forget(nodes []*Node) {
	for _, n := range nodes {
		delete(s.byID, n.id)
		s.forget(n.Children)
	}
}

// NodeByID resolves a stable node ID in O(1), or nil when no displayed
// node carries it (never assigned, or removed by collapse/re-expansion).
//
//sdlint:holds mu — callers resolve IDs inside their session critical section
func (s *Session) NodeByID(id uint64) *Node { return s.byID[id] }

// PathOf returns n's child-index address from the root (the legacy wire
// address), reporting false when n is no longer displayed.
//
//sdlint:holds mu — the path is only stable inside the caller's critical section
func (s *Session) PathOf(n *Node) ([]int, bool) {
	var rev []int
	cur := n
	for cur.parent != nil {
		p := cur.parent
		idx := -1
		for i, c := range p.Children {
			if c == cur {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, false
		}
		rev = append(rev, idx)
		cur = p
	}
	if cur != s.root {
		return nil, false
	}
	path := make([]int, len(rev))
	for i, idx := range rev {
		path[len(rev)-1-i] = idx
	}
	return path, true
}

// NewSession starts a session on t. The root node is the trivial rule with
// the exact table count, as in Table 1 of the paper.
func NewSession(t *table.Table, cfg Config) (*Session, error) {
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.Weighter == nil {
		cfg.Weighter = weight.NewSize(t.NumCols())
	}
	if cfg.Agg == nil {
		cfg.Agg = score.CountAgg{}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := &Session{
		tab:   t,
		store: storage.NewStore(t),
		svc:   cfg.Search,
		cfg:   cfg,
		byID:  make(map[uint64]*Node),
	}
	if s.svc == nil {
		// No shared dataset service: give the session a private one, so
		// every BRS invocation still flows through the single seam (and
		// repeated expansions within the session are cached).
		s.svc = search.NewService(search.Config{})
	}
	if !cfg.DisableSampling && cfg.SampleMemory > 0 && cfg.MinSampleSize > 0 && t.NumRows() > cfg.MinSampleSize {
		h, err := sampling.NewHandler(s.store, cfg.SampleMemory, cfg.MinSampleSize, sampling.NewTestRNG(cfg.Seed))
		if err != nil {
			return nil, err
		}
		s.handler = h
	}
	var rootCount float64
	for i := 0; i < t.NumRows(); i++ {
		rootCount += cfg.Agg.Mass(t, i)
	}
	s.root = &Node{
		Rule:   rule.Trivial(t.NumCols()),
		Weight: 0,
		Count:  rootCount,
		Exact:  true,
	}
	s.adopt(s.root)
	return s, nil
}

// Root returns the displayed tree's root.
//
//sdlint:holds mu — the tree is only stable inside the caller's critical section
func (s *Session) Root() *Node { return s.root }

// K returns the normalized rules-per-expansion setting.
func (s *Session) K() int { return s.cfg.K }

// Agg returns the normalized display aggregate (never nil).
func (s *Session) Agg() score.Aggregator { return s.cfg.Agg }

// Store exposes the scan-accounting store (for experiment reporting).
func (s *Session) Store() *storage.Store { return s.store }

// Search exposes the session's search service — shared when the session
// was configured with one, private otherwise — for cache-counter
// inspection and warm precomputation.
func (s *Session) Search() *search.Service { return s.svc }

// Handler exposes the sample handler, or nil when expansions are direct.
func (s *Session) Handler() *sampling.Handler { return s.handler }

// Expand performs a rule drill-down on n (Problem 1, rule variant): n's
// children become the best rule list of super-rules of n.Rule. Expanding an
// already-expanded node first collapses it, matching the paper's toggle UI.
func (s *Session) Expand(n *Node) error {
	return s.ExpandCtx(context.Background(), n)
}

// ExpandCtx is Expand under a cancellation context: the BRS search checks
// ctx between counting passes and aborts with ctx's error. A canceled
// expansion leaves n collapsed (its pre-existing children are already
// gone — expansion is a collapse-and-replace) and the session fully
// usable; the partial search's statistics are still recorded.
func (s *Session) ExpandCtx(ctx context.Context, n *Node) error {
	return s.expand(ctx, n, s.cfg.Weighter)
}

// ExpandStar performs a star drill-down on column c of n (Problem 1, star
// variant): every returned rule instantiates column c, achieved by zeroing
// the weight of rules leaving c starred (Section 3.1 reduction).
func (s *Session) ExpandStar(n *Node, c int) error {
	return s.ExpandStarCtx(context.Background(), n, c)
}

// ExpandStarCtx is ExpandStar under a cancellation context (see ExpandCtx).
func (s *Session) ExpandStarCtx(ctx context.Context, n *Node, c int) error {
	if c < 0 || c >= s.tab.NumCols() {
		return fmt.Errorf("drill: column %d out of range [0,%d)", c, s.tab.NumCols())
	}
	if n.Rule[c] != rule.Star {
		return fmt.Errorf("drill: column %d of rule is already instantiated", c)
	}
	return s.expand(ctx, n, weight.StarConstraint{Inner: s.cfg.Weighter, Column: c})
}

// Collapse removes n's children — the roll-up of Section 2.3. The removed
// subtree's node IDs leave the id index and are never reused.
func (s *Session) Collapse(n *Node) {
	s.forget(n.Children)
	n.Children = nil
}

//sdlint:holds mu — reached only from Expand*/DrillDown paths the owner serializes
func (s *Session) expand(ctx context.Context, n *Node, w weight.Weighter) error {
	if n.Expanded() {
		s.Collapse(n)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.observeDrill(n)

	degraded := DegradedFrom(ctx)
	var viewRows int
	req := s.searchRequest(search.KindBatch, n.Rule, w, degraded)
	req.Resolve = func() (*table.View, float64, bool, error) {
		v, scale, exact, err := s.coveredView(n.Rule, degraded)
		if v != nil {
			viewRows = v.NumRows()
		}
		return v, scale, exact, err
	}
	req.MaxWeightFor = func(v *table.View) float64 {
		return EstimateMaxWeight(v, w, s.cfg.K, s.cfg.Seed)
	}
	resp, err := s.svc.Run(ctx, req)
	if resp.Cached {
		// The view was never resolved: the expansion is a clone of a
		// completed identical search.
		s.LastMethod = "cache"
		viewRows = s.tab.NumRows() // cached results are exact; the CI path below is never taken
	}
	// A canceled search still did real work; record it before bailing so
	// the session's accounting (and the caller's SearchStats view) shows
	// the aborted passes.
	s.recordStats(resp.Stats)
	if err != nil {
		return err
	}

	scale, exact := resp.Scale, resp.Exact
	bound := scale * float64(viewRows) // the enclosing view's scaled size
	n.Children = make([]*Node, 0, len(resp.Results))
	for _, r := range resp.Results {
		child := &Node{
			Rule:   r.Rule,
			Weight: r.Weight,
			Count:  r.Count,
			Exact:  exact,
			parent: n,
		}
		child.CILow, child.CIHigh, child.HasCI = countCI(s.cfg.Agg, exact, scale, r.Count, bound)
		s.adopt(child)
		n.Children = append(n.Children, child)
	}

	// Prefetch is pure background work; a degraded (overloaded) server
	// skips it — the ladder's first rung after forcing the sampled path.
	if s.handler != nil && s.cfg.Prefetch && !degraded {
		s.prefetch()
	}
	return nil
}

// searchRequest assembles the canonical request for one expansion of this
// session: every identity field the search service keys on, plus the
// routing flags (Sampled, Degraded, NoCache) that decide whether the
// request may touch the shared answer cache at all. Kind-specific fields
// (Resolve, MaxWeightFor, Yield, deadlines) are filled by the caller.
//
//sdlint:holds mu — reached only from expansion paths the owner serializes
func (s *Session) searchRequest(kind search.Kind, r rule.Rule, w weight.Weighter, degraded bool) search.Request {
	return search.Request{
		Kind:            kind,
		Rule:            r,
		K:               s.cfg.K,
		Weighter:        w,
		Agg:             s.cfg.Agg,
		MaxWeight:       s.cfg.MaxWeight,
		Seed:            s.cfg.Seed,
		Workers:         s.cfg.Workers,
		DisableParallel: s.cfg.DisableParallel,
		DisableBitmap:   s.cfg.DisableBitmap,
		Sampled:         s.useSample(r, degraded),
		Degraded:        degraded,
		NoCache:         s.cfg.DisableCache,
		Store:           s.store,
	}
}

// recordStats files one expansion's BRS statistics: the latest snapshot,
// the session running totals, and the store's search accounting (postings
// read by BRS counting are I/O the disk cost model must see; cache hits
// and singleflight waits are the passes the session avoided paying).
//
//sdlint:holds mu — reached only from expansion paths the owner serializes
func (s *Session) recordStats(stats brs.Stats) {
	s.LastStats = stats
	s.TotalStats.Add(stats)
	s.accountStats(stats)
}

// recordAuxStats accumulates statistics of a non-expansion search (refine,
// traditional) without overwriting LastStats, which by contract reflects
// the most recent *expansion*.
//
//sdlint:holds mu — reached only from paths the owner serializes
func (s *Session) recordAuxStats(stats brs.Stats) {
	s.TotalStats.Add(stats)
	s.accountStats(stats)
}

func (s *Session) accountStats(stats brs.Stats) {
	s.store.AccountSearchIndex(stats.PostingsRead)
	s.store.AccountSearchBitmap(stats.BitmapWordsRead)
	s.store.AccountSampledRead(stats.SampledRowsScanned)
	s.store.AccountSearchCache(int64(stats.CacheHits), int64(stats.CacheMisses), int64(stats.SingleflightWaits))
}

// coveredView obtains the tuples covered by r as a zero-copy view: a
// sample for large tables, otherwise the rule's exact coverage answered by
// the table's inverted index through the accounting store (no full scan,
// no materialized copy). scale converts view aggregates to table
// estimates; exact reports whether they need no scaling.
//
//sdlint:holds mu — reached only from expansion paths the owner serializes
func (s *Session) coveredView(r rule.Rule, degraded bool) (view *table.View, scale float64, exact bool, err error) {
	if s.useSample(r, degraded) {
		v, err := s.handler.GetSample(r)
		if err != nil {
			return nil, 0, false, err
		}
		s.LastMethod = v.Method.String()
		return v.Tab, v.Scale, v.Scale == 1, nil
	}
	s.LastMethod = "direct"
	if r.IsTrivial() {
		return s.tab.All(), 1, true, nil
	}
	return s.tab.ViewOf(s.store.FilterRows(r)), 1, true, nil
}

// useSample decides an expansion's access path: the sampled pipeline runs
// only when a handler exists and the (sub)view can exceed SampleThreshold
// rows — or unconditionally when the request is degraded, the overload
// ladder's cheap-answer rung. The decision reads catalog metadata and
// posting-list lengths — never rows — so routing itself costs nothing at
// interactive scale.
func (s *Session) useSample(r rule.Rule, degraded bool) bool {
	if s.handler == nil {
		return false
	}
	if degraded {
		return true
	}
	if s.cfg.SampleThreshold <= 0 {
		return true
	}
	return s.coverageUpperBound(r) > s.cfg.SampleThreshold
}

// coverageUpperBound cheaply upper-bounds Count(r): the shortest already-
// built posting list among r's instantiated columns, falling back to the
// table size when r is trivial or no list is warm. Overestimating is safe
// — it keeps possibly-large views on the sampled path; the exact path is
// chosen only when the bound proves the view small.
func (s *Session) coverageUpperBound(r rule.Rule) int {
	bound := s.tab.NumRows()
	ix := s.tab.Index()
	for _, c := range r.InstantiatedColumns() {
		if !ix.ColumnBuilt(c) {
			continue
		}
		if l := ix.PostingsLen(c, r[c]); l < bound {
			bound = l
		}
	}
	return bound
}

// countCI returns the 95% display bounds for a child whose displayed
// (already scaled) aggregate is count, clamped to bound — the enclosing
// view's scaled size, so no child interval ever claims more mass than its
// parent holds. has reports whether the bounds are a genuine interval;
// exact counts and aggregates without interval support (Sum) get the
// degenerate bounds at the displayed value with has false, so a true
// [0, 0] interval is never confused with "no interval".
func countCI(agg score.Aggregator, exact bool, scale, count, bound float64) (lo, hi float64, has bool) {
	if _, isCount := agg.(score.CountAgg); !exact && isCount && scale > 0 {
		n := int(math.Round(count / scale)) // sample tuples the rule matched
		lo, hi = sampling.CountInterval(n, 1/scale, 1.96)
		lo, hi = sampling.ClampUpper(lo, hi, bound)
		return lo, hi, true
	}
	return count, count, false
}

// RefineNode upgrades a provisional (sample-estimated) node to its exact
// aggregate — the paper's background count refinement: provisional rules
// answer instantly from the sample, and the authoritative count arrives
// once the store has re-counted the rule with one accounted pass
// (Store.CountExact under Count, an aggregate scan under Sum). It reports
// whether the node changed; exact nodes are left untouched, as are nodes
// that have left the displayed tree (a background refiner can lose a race
// with a collapse or re-expansion — paying a full pass for an orphaned
// node would be pure waste and would distort the store's pass accounting).
func (s *Session) RefineNode(n *Node) bool {
	if n.Exact || !s.displayed(n) {
		return false
	}
	// The re-count goes through the search service: exact counts are
	// rule-identity facts, so concurrent refiners of one popular rule
	// (background refiners racing the on-demand endpoint, SSE refine
	// phases across sessions) collapse to one accounted pass and later
	// refiners of the same rule are served from the answer cache. The
	// refine request never samples and carries no degraded mode — it is
	// exact by definition — so only kind, rule and aggregate key it.
	req := search.Request{
		Kind:    search.KindRefine,
		Rule:    n.Rule,
		Agg:     s.cfg.Agg,
		NoCache: s.cfg.DisableCache,
		Store:   s.store,
	}
	resp, err := s.svc.Run(context.Background(), req)
	if err != nil {
		return false
	}
	s.recordAuxStats(resp.Stats)
	n.Count = resp.Count
	n.CILow, n.CIHigh = resp.Count, resp.Count
	n.HasCI = false
	n.Exact = true
	return true
}

// Traditional runs the classic OLAP drill-down listing on column c under
// n's rule — through the search service, so repeated listings (a
// comparison panel every analyst opens) are served from the answer cache
// with the group rules cloned per caller.
func (s *Session) Traditional(n *Node, c int) ([]baseline.Group, error) {
	req := search.Request{
		Kind:    search.KindTraditional,
		Rule:    n.Rule,
		Column:  c,
		Agg:     s.cfg.Agg,
		NoCache: s.cfg.DisableCache,
		Store:   s.store,
	}
	resp, err := s.svc.Run(context.Background(), req)
	if err != nil {
		return nil, err
	}
	s.recordAuxStats(resp.Stats)
	return resp.Groups, nil
}

// displayed reports whether n is still part of the session's displayed
// tree: every link of its parent chain must still list it (or its
// ancestor) as a child, and the chain must end at the root. Collapse and
// re-expansion replace child slices, so orphaned nodes fail the check.
//
//sdlint:holds mu — walks parent links the owner's lock keeps consistent
func (s *Session) displayed(n *Node) bool {
	for cur := n; ; {
		p := cur.parent
		if p == nil {
			return cur == s.root
		}
		attached := false
		for _, c := range p.Children {
			if c == cur {
				attached = true
				break
			}
		}
		if !attached {
			return false
		}
		cur = p
	}
}

// ProvisionalNodes lists displayed nodes whose counts are still sample
// estimates, in display (pre-order) order — the refiner's work queue.
//
//sdlint:holds mu — callers enumerate inside their session critical section
func (s *Session) ProvisionalNodes() []*Node { return s.ProvisionalNodesIn(s.root) }

// ProvisionalNodesIn is ProvisionalNodes restricted to n's subtree.
func (s *Session) ProvisionalNodesIn(n *Node) []*Node {
	var out []*Node
	var walk func(m *Node)
	walk = func(m *Node) {
		if !m.Exact {
			out = append(out, m)
		}
		for _, c := range m.Children {
			walk(c)
		}
	}
	walk(n)
	return out
}

// prefetch rebuilds samples for the displayed tree's likely next
// drill-downs and upgrades displayed counts to exact values learned during
// the prefetching scan.
//
//sdlint:holds mu — reached only from expansion paths the owner serializes
func (s *Session) prefetch() {
	troot := s.buildTree(s.root, nil)
	if s.cfg.ProbModel != nil {
		s.cfg.ProbModel.Assign(troot)
	} else {
		sampling.UniformLeafProbs(troot)
	}
	if _, err := s.handler.Prefetch(troot, sampling.PrefetchOptions{}); err != nil {
		return // prefetching is best-effort; the next expand will Create
	}
	// Samples created by the prefetch carry exact coverage counts; reflect
	// them in the display (the paper's background count refinement).
	// ExactCount is a tuple count, so the upgrade is only valid under the
	// Count aggregate — under Sum it would overwrite a mass estimate with a
	// row tally and corrupt the displayed totals.
	if _, isCount := s.cfg.Agg.(score.CountAgg); !isCount {
		return
	}
	for _, smp := range s.handler.Samples() {
		if node := s.findNode(s.root, smp.Filter); node != nil && !node.Exact {
			node.Count = float64(smp.ExactCount)
			node.CILow, node.CIHigh = node.Count, node.Count
			node.HasCI = false
			node.Exact = true
		}
	}
}

// observeDrill feeds the probability model the rank and depth of a drill.
func (s *Session) observeDrill(n *Node) {
	model, ok := s.cfg.ProbModel.(*sampling.RankModel)
	if !ok || n.parent == nil {
		return
	}
	rank := 0
	for i, c := range n.parent.Children {
		if c == n {
			rank = i
			break
		}
	}
	depth := 0
	for p := n; p.parent != nil; p = p.parent {
		depth++
	}
	model.Observe(rank, depth)
}

// buildTree mirrors the displayed tree into the sampling model's shape.
//
//sdlint:holds mu — reached only from expansion paths the owner serializes
func (s *Session) buildTree(n *Node, parent *sampling.TreeNode) *sampling.TreeNode {
	tn := &sampling.TreeNode{Rule: n.Rule, Count: n.Count}
	if n == s.root {
		tn.Count = float64(s.tab.NumRows())
	}
	for _, c := range n.Children {
		tn.Children = append(tn.Children, s.buildTree(c, tn))
	}
	return tn
}

func (s *Session) findNode(n *Node, r rule.Rule) *Node {
	if n.Rule.Equal(r) {
		return n
	}
	for _, c := range n.Children {
		if found := s.findNode(c, r); found != nil {
			return found
		}
	}
	return nil
}

// EstimateMaxWeight implements the Section 6.1 heuristic for mw: run BRS on
// a small sample with an unbounded mw, observe the maximum selected weight
// x, and return 2x to absorb sampling error. k must be the number of rules
// the caller will actually request — probing with a different k skews the
// estimate toward the weights of a differently-sized rule list.
func EstimateMaxWeight(v *table.View, w weight.Weighter, k int, seed int64) float64 {
	const probeSize = 2000
	probe := v
	if v.NumRows() > probeSize {
		rng := sampling.NewTestRNG(seed)
		positions := make([]int, probeSize)
		for i := range positions {
			positions[i] = rng.Intn(v.NumRows())
		}
		probe = v.Subset(positions)
	}
	results, _, err := brs.Run(probe, w, brs.Options{K: k, MaxWeight: w.MaxWeight(v.NumCols())})
	if err != nil || len(results) == 0 {
		return w.MaxWeight(v.NumCols())
	}
	maxW := 0.0
	for _, r := range results {
		maxW = math.Max(maxW, r.Weight)
	}
	if maxW == 0 {
		return w.MaxWeight(v.NumCols())
	}
	return 2 * maxW
}

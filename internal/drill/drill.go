// Package drill implements the interactive smart drill-down session of
// Section 2.3: a displayed tree of rules the analyst expands (by clicking a
// rule or a star within a rule) and collapses (roll-up). Expansions run BRS
// on a zero-copy view of the rule's coverage — answered by the table's
// inverted index — or, for large tables, on a uniform sample served by the
// SampleHandler, scaling displayed counts back to table estimates.
package drill

import (
	"fmt"
	"math"

	"smartdrill/internal/brs"
	"smartdrill/internal/rule"
	"smartdrill/internal/sampling"
	"smartdrill/internal/score"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Config parameterizes a session. Zero values get paper defaults.
type Config struct {
	// K is the number of rules per expansion (paper default 3; the
	// experiments use 4).
	K int
	// MaxWeight is BRS's mw parameter; 0 lets each expansion estimate it
	// (EstimateMaxWeight) or fall back to the weighter's bound.
	MaxWeight float64
	// Weighter scores rules; nil means Size weighting.
	Weighter weight.Weighter
	// Agg is the displayed aggregate; nil means Count.
	Agg score.Aggregator
	// SampleMemory (M) and MinSampleSize (minSS) enable the SampleHandler
	// when both are positive and the table is larger than MinSampleSize;
	// otherwise expansions scan the table directly.
	SampleMemory  int
	MinSampleSize int
	// Prefetch rebuilds samples for likely next drill-downs after each
	// expansion (Section 4.3) and upgrades displayed counts to exact.
	Prefetch bool
	// Seed makes sampling deterministic; 0 means seed 1.
	Seed int64
	// Workers parallelizes BRS table passes across goroutines; 0 runs
	// serially. Results are identical under the Count aggregate.
	Workers int
	// ProbModel predicts which displayed rule the analyst drills next,
	// steering prefetch memory allocation (Section 4.1). Nil means the
	// uniform distribution. drill sessions feed the model their own
	// history automatically.
	ProbModel sampling.ProbModel
}

// Node is one displayed rule. Count is the displayed aggregate (estimated
// when served from a sample; Exact reports which).
type Node struct {
	Rule     rule.Rule
	Weight   float64
	Count    float64
	Exact    bool
	Children []*Node

	// CILow and CIHigh bound the true count at 95% confidence when Count
	// is a sample estimate (Exact false, Count aggregate); both equal
	// Count when it is exact.
	CILow, CIHigh float64

	parent *Node
}

// Expanded reports whether the node currently shows children.
func (n *Node) Expanded() bool { return len(n.Children) > 0 }

// Session is an interactive drill-down over one table.
type Session struct {
	tab     *table.Table
	store   *storage.Store
	handler *sampling.Handler
	cfg     Config
	root    *Node

	// LastMethod records how the most recent expansion obtained its
	// tuples: "direct" or a sampling.Method name.
	LastMethod string
	// LastStats holds the BRS statistics of the most recent expansion.
	LastStats brs.Stats
	// TotalStats accumulates BRS statistics across every expansion of the
	// session — repeated drill-downs share the dataset's warmed posting
	// lists, so TotalStats.CandidatesReused and .PostingsRead measure how
	// much of a session's search work the caches absorbed.
	TotalStats brs.Stats
}

// NewSession starts a session on t. The root node is the trivial rule with
// the exact table count, as in Table 1 of the paper.
func NewSession(t *table.Table, cfg Config) (*Session, error) {
	if cfg.K <= 0 {
		cfg.K = 3
	}
	if cfg.Weighter == nil {
		cfg.Weighter = weight.NewSize(t.NumCols())
	}
	if cfg.Agg == nil {
		cfg.Agg = score.CountAgg{}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	s := &Session{
		tab:   t,
		store: storage.NewStore(t),
		cfg:   cfg,
	}
	if cfg.SampleMemory > 0 && cfg.MinSampleSize > 0 && t.NumRows() > cfg.MinSampleSize {
		h, err := sampling.NewHandler(s.store, cfg.SampleMemory, cfg.MinSampleSize, sampling.NewTestRNG(cfg.Seed))
		if err != nil {
			return nil, err
		}
		s.handler = h
	}
	var rootCount float64
	for i := 0; i < t.NumRows(); i++ {
		rootCount += cfg.Agg.Mass(t, i)
	}
	s.root = &Node{
		Rule:   rule.Trivial(t.NumCols()),
		Weight: 0,
		Count:  rootCount,
		Exact:  true,
	}
	return s, nil
}

// Root returns the displayed tree's root.
func (s *Session) Root() *Node { return s.root }

// K returns the normalized rules-per-expansion setting.
func (s *Session) K() int { return s.cfg.K }

// Agg returns the normalized display aggregate (never nil).
func (s *Session) Agg() score.Aggregator { return s.cfg.Agg }

// Store exposes the scan-accounting store (for experiment reporting).
func (s *Session) Store() *storage.Store { return s.store }

// Handler exposes the sample handler, or nil when expansions are direct.
func (s *Session) Handler() *sampling.Handler { return s.handler }

// Expand performs a rule drill-down on n (Problem 1, rule variant): n's
// children become the best rule list of super-rules of n.Rule. Expanding an
// already-expanded node first collapses it, matching the paper's toggle UI.
func (s *Session) Expand(n *Node) error {
	return s.expand(n, s.cfg.Weighter)
}

// ExpandStar performs a star drill-down on column c of n (Problem 1, star
// variant): every returned rule instantiates column c, achieved by zeroing
// the weight of rules leaving c starred (Section 3.1 reduction).
func (s *Session) ExpandStar(n *Node, c int) error {
	if c < 0 || c >= s.tab.NumCols() {
		return fmt.Errorf("drill: column %d out of range [0,%d)", c, s.tab.NumCols())
	}
	if n.Rule[c] != rule.Star {
		return fmt.Errorf("drill: column %d of rule is already instantiated", c)
	}
	return s.expand(n, weight.StarConstraint{Inner: s.cfg.Weighter, Column: c})
}

// Collapse removes n's children — the roll-up of Section 2.3.
func (s *Session) Collapse(n *Node) { n.Children = nil }

func (s *Session) expand(n *Node, w weight.Weighter) error {
	if n.Expanded() {
		s.Collapse(n)
	}
	s.observeDrill(n)

	view, scale, exact, err := s.coveredView(n.Rule)
	if err != nil {
		return err
	}

	mw := s.cfg.MaxWeight
	if mw <= 0 {
		mw = EstimateMaxWeight(view, w, s.cfg.K, s.cfg.Seed)
	}
	results, stats, err := brs.Run(view, w, brs.Options{
		K:           s.cfg.K,
		MaxWeight:   mw,
		Base:        n.Rule,
		BaseCovered: true, // coveredView delivers exactly the rule's coverage
		Agg:         s.cfg.Agg,
		Workers:     s.cfg.Workers,
	})
	if err != nil {
		return err
	}
	s.recordStats(stats)

	n.Children = make([]*Node, 0, len(results))
	for _, r := range results {
		child := &Node{
			Rule:   r.Rule,
			Weight: r.Weight,
			Count:  r.Count * scale,
			Exact:  exact,
			parent: n,
		}
		child.CILow, child.CIHigh = countCI(s.cfg.Agg, exact, scale, r.Count)
		n.Children = append(n.Children, child)
	}

	if s.handler != nil && s.cfg.Prefetch {
		s.prefetch()
	}
	return nil
}

// recordStats files one expansion's BRS statistics: the latest snapshot,
// the session running totals, and the store's search-index accounting
// (postings read by BRS counting are I/O the disk cost model must see).
func (s *Session) recordStats(stats brs.Stats) {
	s.LastStats = stats
	s.TotalStats.Add(stats)
	s.store.AccountSearchIndex(stats.PostingsRead)
}

// coveredView obtains the tuples covered by r as a zero-copy view: a
// sample for large tables, otherwise the rule's exact coverage answered by
// the table's inverted index through the accounting store (no full scan,
// no materialized copy). scale converts view aggregates to table
// estimates; exact reports whether they need no scaling.
func (s *Session) coveredView(r rule.Rule) (view *table.View, scale float64, exact bool, err error) {
	if s.handler != nil {
		v, err := s.handler.GetSample(r)
		if err != nil {
			return nil, 0, false, err
		}
		s.LastMethod = v.Method.String()
		return v.Tab, v.Scale, v.Scale == 1, nil
	}
	s.LastMethod = "direct"
	if r.IsTrivial() {
		return s.tab.All(), 1, true, nil
	}
	return s.tab.ViewOf(s.store.FilterRows(r)), 1, true, nil
}

// countCI returns the 95% display bounds for a child whose raw
// (pre-scaling) aggregate is raw. Exact counts and aggregates without
// interval support (Sum) get the degenerate interval at the displayed
// value.
func countCI(agg score.Aggregator, exact bool, scale, raw float64) (lo, hi float64) {
	if _, isCount := agg.(score.CountAgg); !exact && isCount && scale > 0 {
		return sampling.CountInterval(int(raw), 1/scale, 1.96)
	}
	return raw * scale, raw * scale
}

// prefetch rebuilds samples for the displayed tree's likely next
// drill-downs and upgrades displayed counts to exact values learned during
// the prefetching scan.
func (s *Session) prefetch() {
	troot := s.buildTree(s.root, nil)
	if s.cfg.ProbModel != nil {
		s.cfg.ProbModel.Assign(troot)
	} else {
		sampling.UniformLeafProbs(troot)
	}
	if _, err := s.handler.Prefetch(troot, sampling.PrefetchOptions{}); err != nil {
		return // prefetching is best-effort; the next expand will Create
	}
	// Samples created by the prefetch carry exact coverage counts; reflect
	// them in the display (the paper's background count refinement).
	// ExactCount is a tuple count, so the upgrade is only valid under the
	// Count aggregate — under Sum it would overwrite a mass estimate with a
	// row tally and corrupt the displayed totals.
	if _, isCount := s.cfg.Agg.(score.CountAgg); !isCount {
		return
	}
	for _, smp := range s.handler.Samples() {
		if node := s.findNode(s.root, smp.Filter); node != nil && !node.Exact {
			node.Count = float64(smp.ExactCount)
			node.CILow, node.CIHigh = node.Count, node.Count
			node.Exact = true
		}
	}
}

// observeDrill feeds the probability model the rank and depth of a drill.
func (s *Session) observeDrill(n *Node) {
	model, ok := s.cfg.ProbModel.(*sampling.RankModel)
	if !ok || n.parent == nil {
		return
	}
	rank := 0
	for i, c := range n.parent.Children {
		if c == n {
			rank = i
			break
		}
	}
	depth := 0
	for p := n; p.parent != nil; p = p.parent {
		depth++
	}
	model.Observe(rank, depth)
}

func (s *Session) buildTree(n *Node, parent *sampling.TreeNode) *sampling.TreeNode {
	tn := &sampling.TreeNode{Rule: n.Rule, Count: n.Count}
	if n == s.root {
		tn.Count = float64(s.tab.NumRows())
	}
	for _, c := range n.Children {
		tn.Children = append(tn.Children, s.buildTree(c, tn))
	}
	return tn
}

func (s *Session) findNode(n *Node, r rule.Rule) *Node {
	if n.Rule.Equal(r) {
		return n
	}
	for _, c := range n.Children {
		if found := s.findNode(c, r); found != nil {
			return found
		}
	}
	return nil
}

// EstimateMaxWeight implements the Section 6.1 heuristic for mw: run BRS on
// a small sample with an unbounded mw, observe the maximum selected weight
// x, and return 2x to absorb sampling error. k must be the number of rules
// the caller will actually request — probing with a different k skews the
// estimate toward the weights of a differently-sized rule list.
func EstimateMaxWeight(v *table.View, w weight.Weighter, k int, seed int64) float64 {
	const probeSize = 2000
	probe := v
	if v.NumRows() > probeSize {
		rng := sampling.NewTestRNG(seed)
		positions := make([]int, probeSize)
		for i := range positions {
			positions[i] = rng.Intn(v.NumRows())
		}
		probe = v.Subset(positions)
	}
	results, _, err := brs.Run(probe, w, brs.Options{K: k, MaxWeight: w.MaxWeight(v.NumCols())})
	if err != nil || len(results) == 0 {
		return w.MaxWeight(v.NumCols())
	}
	maxW := 0.0
	for _, r := range results {
		maxW = math.Max(maxW, r.Weight)
	}
	if maxW == 0 {
		return w.MaxWeight(v.NumCols())
	}
	return 2 * maxW
}

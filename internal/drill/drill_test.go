package drill

import (
	"math"
	"strings"
	"testing"

	"smartdrill/internal/datagen"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

func TestSessionDefaults(t *testing.T) {
	tab := datagen.StoreSales(1)
	s, err := NewSession(tab, Config{})
	if err != nil {
		t.Fatal(err)
	}
	root := s.Root()
	if !root.Rule.IsTrivial() || root.Count != 6000 || !root.Exact {
		t.Fatalf("root = %+v", root)
	}
	if root.Expanded() {
		t.Fatal("fresh root must not be expanded")
	}
}

// TestReproducesPaperTables drives the exact interaction of the paper's
// Tables 1–3 and asserts the planted groups come back with their exact
// counts — the repository's headline end-to-end check.
func TestReproducesPaperTables(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	kids := s.Root().Children
	if len(kids) != 3 {
		t.Fatalf("first expansion returned %d rules, want 3", len(kids))
	}
	wantTop := map[string]float64{
		"(Target, bicycles, ?)": 200,
		"(?, comforters, MA-3)": 600,
		"(Walmart, ?, ?)":       1000,
	}
	got := map[string]float64{}
	var walmart *Node
	for _, k := range kids {
		desc := "(" + strings.Join(tab.DecodeRule(k.Rule), ", ") + ")"
		got[desc] = k.Count
		if desc == "(Walmart, ?, ?)" {
			walmart = k
		}
	}
	for desc, want := range wantTop {
		if got[desc] != want {
			t.Fatalf("Table 2 mismatch: %s count %g, want %g (full: %v)", desc, got[desc], want, got)
		}
	}
	if walmart == nil {
		t.Fatal("Walmart rule missing")
	}

	if err := s.Expand(walmart); err != nil {
		t.Fatal(err)
	}
	wantSub := map[string]float64{
		"(Walmart, cookies, ?)": 200,
		"(Walmart, ?, CA-1)":    150,
		"(Walmart, ?, WA-5)":    130,
	}
	if len(walmart.Children) != 3 {
		t.Fatalf("Walmart expansion returned %d rules", len(walmart.Children))
	}
	for _, k := range walmart.Children {
		desc := "(" + strings.Join(tab.DecodeRule(k.Rule), ", ") + ")"
		if want, ok := wantSub[desc]; !ok || k.Count != want {
			t.Fatalf("Table 3 mismatch: %s count %g (want %v)", desc, k.Count, wantSub)
		}
	}
}

func TestStarExpansionConstraint(t *testing.T) {
	tab := datagen.StoreSales(7)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	region, err := tab.ColumnIndex("Region")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ExpandStar(s.Root(), region); err != nil {
		t.Fatal(err)
	}
	for _, k := range s.Root().Children {
		if k.Rule[region] == rule.Star {
			t.Fatalf("star expansion returned %v with ? in Region", tab.DecodeRule(k.Rule))
		}
	}
}

func TestStarExpansionErrors(t *testing.T) {
	tab := datagen.StoreSales(7)
	s, _ := NewSession(tab, Config{K: 3})
	if err := s.ExpandStar(s.Root(), 99); err == nil {
		t.Error("out-of-range column must fail")
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	// Find a child with an instantiated column and star-expand that column.
	child := s.Root().Children[0]
	col := child.Rule.InstantiatedColumns()[0]
	if err := s.ExpandStar(child, col); err == nil {
		t.Error("star expansion on instantiated column must fail")
	}
}

func TestCollapseAndReExpand(t *testing.T) {
	tab := datagen.StoreSales(7)
	s, _ := NewSession(tab, Config{K: 3})
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	first := append([]*Node{}, s.Root().Children...)
	s.Collapse(s.Root())
	if s.Root().Expanded() {
		t.Fatal("collapse failed")
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if len(s.Root().Children) != len(first) {
		t.Fatal("re-expansion changed result size")
	}
	for i := range first {
		if !first[i].Rule.Equal(s.Root().Children[i].Rule) {
			t.Fatal("re-expansion is not deterministic")
		}
	}
}

func TestSampledSessionEstimates(t *testing.T) {
	tab := datagen.CensusProjected(30000, 5, 3)
	s, err := NewSession(tab, Config{
		K: 3, SampleMemory: 10000, MinSampleSize: 2000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.Handler() == nil {
		t.Fatal("large table must enable the sample handler")
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if s.LastMethod != "Create" {
		t.Fatalf("first expansion method = %q, want Create", s.LastMethod)
	}
	// Estimated counts must be within a loose sampling tolerance of truth.
	for _, k := range s.Root().Children {
		actual := float64(tab.Count(k.Rule))
		if actual == 0 {
			t.Fatalf("displayed rule %v has zero true count", k.Rule)
		}
		if math.Abs(k.Count-actual)/actual > 0.15 {
			t.Fatalf("estimate %g vs actual %g (>15%%) for %v", k.Count, actual, k.Rule)
		}
	}
}

func TestSmallTableSkipsSampling(t *testing.T) {
	tab := datagen.StoreSales(7) // 6000 rows < MinSampleSize
	s, err := NewSession(tab, Config{K: 3, SampleMemory: 50000, MinSampleSize: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if s.Handler() != nil {
		t.Fatal("table smaller than minSS must not use sampling")
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if s.LastMethod != "direct" {
		t.Fatalf("method = %q, want direct", s.LastMethod)
	}
}

func TestPrefetchServesNextDrill(t *testing.T) {
	tab := datagen.CensusProjected(40000, 5, 9)
	s, err := NewSession(tab, Config{
		K: 3, SampleMemory: 30000, MinSampleSize: 2000, Prefetch: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	scansAfterFirst := s.Store().Stats().FullScans
	// Drill into a child with free columns: prefetch must serve it from
	// memory (Find or Combine), not a new Create scan.
	var target *Node
	for _, k := range s.Root().Children {
		if k.Rule.Size() < tab.NumCols() {
			target = k
			break
		}
	}
	if target == nil {
		t.Skip("all children fully instantiated")
	}
	if err := s.Expand(target); err != nil {
		t.Fatal(err)
	}
	if s.LastMethod == "Create" {
		t.Fatalf("prefetched drill still used Create (scans %d → %d)",
			scansAfterFirst, s.Store().Stats().FullScans)
	}
}

func TestRenderShapes(t *testing.T) {
	tab := datagen.StoreSales(7)
	s, _ := NewSession(tab, Config{K: 3})
	out := s.Render()
	if !strings.Contains(out, "Store") || !strings.Contains(out, "6000") {
		t.Fatalf("render missing header/count:\n%s", out)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	out = s.Render()
	if !strings.Contains(out, ". ") {
		t.Fatal("expanded render must indent children")
	}
	sub := s.RenderNode(s.Root().Children[0])
	if strings.Count(sub, "\n") < 3 {
		t.Fatalf("RenderNode too short:\n%s", sub)
	}
}

func TestEstimateMaxWeight(t *testing.T) {
	tab := datagen.StoreSales(7)
	w := weight.NewSize(tab.NumCols())
	mw := EstimateMaxWeight(tab.All(), w, 3, 1)
	// The optimal rules have weight ≤ 2; the estimate doubles the observed
	// max, so it must land in [2, 2·columns].
	if mw < 2 || mw > 6 {
		t.Fatalf("EstimateMaxWeight = %g", mw)
	}
}

func TestSumAggregateSession(t *testing.T) {
	tab := datagen.StoreSales(7)
	m, err := tab.MeasureIndex("Sales")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(tab, Config{K: 3, Agg: score.SumAgg{Measure: m, Label: "Sales"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if len(s.Root().Children) == 0 {
		t.Fatal("no rules under Sum aggregate")
	}
	if !strings.Contains(s.Render(), "Sum(Sales)") {
		t.Fatal("render must show the Sum aggregate header")
	}
}

func TestBaseArityChecked(t *testing.T) {
	b := table.MustBuilder([]string{"A"}, nil)
	b.MustAddRow([]string{"x"})
	tab := b.Build()
	s, err := NewSession(tab, Config{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	// Fully drilled: expanding a size-1 rule over a 1-column table yields
	// no children (nothing left to instantiate).
	child := s.Root().Children[0]
	if err := s.Expand(child); err != nil {
		t.Fatal(err)
	}
	if len(child.Children) != 0 {
		t.Fatalf("fully instantiated rule expanded into %d children", len(child.Children))
	}
}

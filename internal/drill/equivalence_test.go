package drill

import (
	"math/rand"
	"testing"

	"smartdrill/internal/brs"
	"smartdrill/internal/datagen"
	"smartdrill/internal/rule"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// The index layer is a pure access-path change: every expansion answered
// from posting-list views must be bit-identical to the scan-and-materialize
// reference under the Count aggregate. These tests run in CI under -race
// with Workers > 1, so the shared lazy index build is exercised
// concurrently with parallel BRS passes.

func sameResults(t *testing.T, label string, got, want []brs.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rules, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !got[i].Rule.Equal(want[i].Rule) {
			t.Fatalf("%s: rule %d = %v, want %v", label, i, got[i].Rule, want[i].Rule)
		}
		if got[i].Weight != want[i].Weight || got[i].Count != want[i].Count || got[i].MCount != want[i].MCount {
			t.Fatalf("%s: rule %v stats (%v,%v,%v) != (%v,%v,%v)", label, got[i].Rule,
				got[i].Weight, got[i].Count, got[i].MCount,
				want[i].Weight, want[i].Count, want[i].MCount)
		}
	}
}

func randomEquivTable(rng *rand.Rand, cols, vals, n int) *table.Table {
	names := make([]string, cols)
	for c := range names {
		names[c] = string(rune('A' + c))
	}
	b := table.MustBuilder(names, nil)
	row := make([]string, cols)
	for i := 0; i < n; i++ {
		for c := range row {
			row[c] = string(rune('a' + rng.Intn(vals)))
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

// TestIndexViewMatchesScanBRS drives BRS through all three access paths —
// index-backed zero-copy view, scan-backed materialized table, and
// self-restricting full view — and demands bit-identical results.
func TestIndexViewMatchesScanBRS(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	w := weight.NewSize(4)
	for trial := 0; trial < 10; trial++ {
		tab := randomEquivTable(rng, 4, 3, 400)
		base := rule.Trivial(4).With(rng.Intn(4), rule.Value(rng.Intn(3)))
		for _, workers := range []int{0, 4} {
			opts := brs.Options{K: 3, MaxWeight: 4, Workers: workers}

			scanOpts := opts
			scanOpts.Base, scanOpts.BaseCovered = base, true
			scanTab := tab.Select(tab.FilterIndicesScan(base))
			want, _, err := brs.Run(scanTab.All(), w, scanOpts)
			if err != nil {
				t.Fatal(err)
			}

			idxOpts := opts
			idxOpts.Base, idxOpts.BaseCovered = base, true
			got, _, err := brs.Run(tab.ViewOf(tab.FilterIndices(base)), w, idxOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "index view vs scan", got, want)

			fullOpts := opts
			fullOpts.Base = base // BaseCovered false: brs restricts itself
			got, _, err = brs.Run(tab.All(), w, fullOpts)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, "self-restricting view vs scan", got, want)
		}
	}
}

// TestExpandIndexMatchesScanReference checks the full session path: a
// drill-down served by index-backed views (with parallel workers) must
// reproduce, bit for bit, a reference BRS run on the materialized
// scan-filtered table.
func TestExpandIndexMatchesScanReference(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := NewSession(tab, Config{K: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	walmart := s.Root().Children[2] // deepest-weighted slot varies; any child works
	if err := s.Expand(walmart); err != nil {
		t.Fatal(err)
	}

	w := weight.NewSize(tab.NumCols())
	sub := tab.Select(tab.FilterIndicesScan(walmart.Rule))
	mw := EstimateMaxWeight(sub.All(), w, s.K(), 1)
	want, _, err := brs.Run(sub.All(), w, brs.Options{
		K: 3, MaxWeight: mw, Base: walmart.Rule, BaseCovered: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(walmart.Children) != len(want) {
		t.Fatalf("session expanded %d rules, reference %d", len(walmart.Children), len(want))
	}
	for i, child := range walmart.Children {
		if !child.Rule.Equal(want[i].Rule) {
			t.Fatalf("child %d rule %v, reference %v", i, child.Rule, want[i].Rule)
		}
		if child.Count != want[i].Count || child.Weight != want[i].Weight {
			t.Fatalf("child %v count/weight (%v,%v), reference (%v,%v)",
				child.Rule, child.Count, child.Weight, want[i].Count, want[i].Weight)
		}
		if !child.Exact {
			t.Fatalf("direct expansion must be exact")
		}
	}
}

// TestExpandUsesIndexNotScans asserts the access-path claim itself: a
// direct (unsampled) drill-down on a non-trivial rule is served entirely
// from the inverted index — index lookups are accounted and no full scan
// happens.
func TestExpandUsesIndexNotScans(t *testing.T) {
	tab := datagen.StoreSales(7)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	s.Store().ResetStats()
	if err := s.Expand(s.Root().Children[0]); err != nil {
		t.Fatal(err)
	}
	st := s.Store().Stats()
	if st.IndexLookups == 0 {
		t.Fatalf("expansion did not use the index: %+v", st)
	}
	if st.FullScans != 0 {
		t.Fatalf("expansion fell back to full scans: %+v", st)
	}
	if st.IndexRowsRead == 0 || st.IndexRowsRead >= int64(tab.NumRows()) {
		t.Fatalf("index read %d posting entries; want >0 and < %d (a full pass)",
			st.IndexRowsRead, tab.NumRows())
	}
}

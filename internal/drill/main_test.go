package drill

import (
	"testing"

	"smartdrill/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine — prefetchers
// and sampled-pipeline workers must drain with their sessions.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }

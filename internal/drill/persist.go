package drill

import (
	"encoding/json"
	"fmt"
	"io"

	"smartdrill/internal/rule"
)

// Session persistence: an analyst's drill-down tree is cheap to serialize
// (rules + display statistics) and restoring it against the same table
// resumes the exploration where it stopped. Samples are deliberately not
// persisted — they are rebuilt on demand, keeping snapshots tiny and
// avoiding stale estimates.

// snapshotNode is the JSON form of a displayed node. Rules are stored as
// decoded strings (with "?" wildcards) so snapshots remain readable and
// survive dictionary-id reassignment across table reloads.
type snapshotNode struct {
	// ID is the node's session-scoped stable identifier. Persisting it
	// lets a restored session keep every wire address valid — an analyst
	// who drilled "n4" before a server restart can refine "n4" after it.
	// Snapshots written before IDs existed carry none; Load then falls
	// back to fresh pre-order assignment (see Load).
	ID     uint64   `json:"id,omitempty"`
	Values []string `json:"values"`
	Weight float64  `json:"weight"`
	Count  float64  `json:"count"`
	Exact  bool     `json:"exact"`
	// HasCI marks CILow/CIHigh as a genuine interval. Older snapshots
	// predate the flag; Load falls back to the historical non-zero-bounds
	// heuristic for them (see restore).
	HasCI    bool           `json:"hasCI,omitempty"`
	CILow    float64        `json:"ciLow,omitempty"`
	CIHigh   float64        `json:"ciHigh,omitempty"`
	Children []snapshotNode `json:"children,omitempty"`
}

type snapshot struct {
	Columns []string     `json:"columns"`
	Root    snapshotNode `json:"root"`
	// NextID is the session's ID-sequence high-water mark, so nodes
	// created after a restore never collide with IDs the snapshot's
	// analyst already saw (including IDs of nodes collapsed away before
	// the save).
	NextID uint64 `json:"nextId,omitempty"`
}

// Save writes the displayed tree as JSON.
//
//sdlint:holds mu — snapshots the tree inside the caller's critical section
func (s *Session) Save(w io.Writer) error {
	snap := snapshot{
		Columns: append([]string{}, s.tab.ColumnNames()...),
		Root:    s.snapshotOf(s.root),
		NextID:  s.nextID,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

func (s *Session) snapshotOf(n *Node) snapshotNode {
	out := snapshotNode{
		ID:     n.id,
		Values: s.tab.DecodeRule(n.Rule),
		Weight: n.Weight,
		Count:  n.Count,
		Exact:  n.Exact,
		HasCI:  n.HasCI,
		CILow:  n.CILow,
		CIHigh: n.CIHigh,
	}
	for _, c := range n.Children {
		out.Children = append(out.Children, s.snapshotOf(c))
	}
	return out
}

// Load replaces the displayed tree with a previously saved one. The
// session's table must have the same column names; rule values absent from
// the current table are rejected (the snapshot describes different data).
//
//sdlint:holds mu — replaces the tree inside the caller's critical section
func (s *Session) Load(r io.Reader) error {
	var snap snapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("drill: decoding snapshot: %w", err)
	}
	cols := s.tab.ColumnNames()
	if len(snap.Columns) != len(cols) {
		return fmt.Errorf("drill: snapshot has %d columns, table has %d", len(snap.Columns), len(cols))
	}
	for i := range cols {
		if snap.Columns[i] != cols[i] {
			return fmt.Errorf("drill: snapshot column %d is %q, table has %q", i, snap.Columns[i], cols[i])
		}
	}
	root, err := s.restore(snap.Root, nil)
	if err != nil {
		return err
	}
	if !root.Rule.IsTrivial() {
		return fmt.Errorf("drill: snapshot root is not the trivial rule")
	}
	// Commit: the old tree's index is dropped wholesale and the restored
	// nodes are re-registered. Snapshots that recorded stable IDs restore
	// them verbatim — wire addresses survive the Load, which is what lets
	// a rehydrated server session resume exactly where the analyst
	// stopped. Legacy snapshots without IDs get fresh IDs in pre-order
	// (their analysts' addresses are long gone anyway). Either way the
	// commit happens only now, so a failed Load leaves the session's
	// index untouched.
	if snap.Root.ID != 0 {
		byID := make(map[uint64]*Node)
		maxID, err := indexTree(root, byID)
		if err != nil {
			return err
		}
		s.byID = byID
		s.nextID = max(snap.NextID, maxID)
	} else {
		s.byID = make(map[uint64]*Node)
		s.adoptTree(root)
	}
	s.root = root
	return nil
}

// indexTree registers a restored subtree under its snapshot-recorded IDs,
// returning the largest ID seen. Zero or duplicate IDs mean a corrupt or
// hand-edited snapshot and are rejected before any commit.
func indexTree(n *Node, byID map[uint64]*Node) (maxID uint64, err error) {
	if n.id == 0 {
		return 0, fmt.Errorf("drill: snapshot node %v has no id but the root carries one", n.Rule)
	}
	if _, dup := byID[n.id]; dup {
		return 0, fmt.Errorf("drill: snapshot reuses node id %d", n.id)
	}
	byID[n.id] = n
	maxID = n.id
	for _, c := range n.Children {
		m, err := indexTree(c, byID)
		if err != nil {
			return 0, err
		}
		maxID = max(maxID, m)
	}
	return maxID, nil
}

// adoptTree assigns fresh IDs to a whole subtree in pre-order.
func (s *Session) adoptTree(n *Node) {
	s.adopt(n)
	for _, c := range n.Children {
		s.adoptTree(c)
	}
}

func (s *Session) restore(sn snapshotNode, parent *Node) (*Node, error) {
	if len(sn.Values) != s.tab.NumCols() {
		return nil, fmt.Errorf("drill: snapshot rule has %d values, table has %d columns",
			len(sn.Values), s.tab.NumCols())
	}
	r := rule.Trivial(s.tab.NumCols())
	for c, v := range sn.Values {
		if v == "?" {
			continue
		}
		id, ok := s.tab.Dict(c).Lookup(v)
		if !ok {
			return nil, fmt.Errorf("drill: snapshot value %q not in column %q", v, s.tab.ColumnNames()[c])
		}
		r[c] = id
	}
	n := &Node{
		id:     sn.ID,
		Rule:   r,
		Weight: sn.Weight,
		Count:  sn.Count,
		Exact:  sn.Exact,
		// Snapshots written before the explicit flag existed mark genuine
		// intervals only by non-zero bounds; accept that legacy sentinel
		// when the flag is absent.
		HasCI:  sn.HasCI || (!sn.Exact && (sn.CILow != 0 || sn.CIHigh != 0)),
		CILow:  sn.CILow,
		CIHigh: sn.CIHigh,
		parent: parent,
	}
	for _, c := range sn.Children {
		child, err := s.restore(c, n)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, child)
	}
	return n, nil
}

package drill

import (
	"bytes"
	"strings"
	"testing"

	"smartdrill/internal/datagen"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root().Children[2]); err != nil {
		t.Fatal(err)
	}
	before := s.Render()

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	// Restore into a fresh session over the same data.
	s2, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	after := s2.Render()
	if before != after {
		t.Fatalf("render changed across save/load:\n--- before\n%s\n--- after\n%s", before, after)
	}
	// The restored tree is live: collapsing and re-expanding still works.
	s2.Collapse(s2.Root())
	if err := s2.Expand(s2.Root()); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsSchemaMismatch(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, _ := NewSession(tab, Config{K: 3})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}

	other := datagen.Marketing(500, 1)
	s2, _ := NewSession(other, Config{K: 3})
	if err := s2.Load(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("loading a snapshot from a different schema must fail")
	}
}

func TestLoadRejectsUnknownValue(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, _ := NewSession(tab, Config{K: 3})
	snapshot := `{
  "columns": ["Store", "Product", "Region"],
  "root": {
    "values": ["?", "?", "?"], "weight": 0, "count": 6000, "exact": true,
    "children": [
      {"values": ["Amazon", "?", "?"], "weight": 1, "count": 10, "exact": true}
    ]
  }
}`
	if err := s.Load(strings.NewReader(snapshot)); err == nil {
		t.Fatal("unknown value must be rejected")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, _ := NewSession(tab, Config{K: 3})
	if err := s.Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	if err := s.Load(strings.NewReader(`{"columns":["Store","Product","Region"],"root":{"values":["Walmart","?","?"]}}`)); err == nil {
		t.Fatal("non-trivial root must be rejected")
	}
}

package drill

import (
	"fmt"
	"strconv"
	"strings"
)

// Render produces the ASCII rule table of the paper's figures: one header
// row of column names plus the aggregate and Weight columns, then the
// displayed tree in depth-first order with ". " markers per depth level
// (matching Tables 2–3 of the paper).
//
//sdlint:holds mu — renders the tree inside the caller's critical section
func (s *Session) Render() string {
	headers := append(append([]string{}, s.tab.ColumnNames()...), s.cfg.Agg.Name(), "Weight")
	var rows [][]string
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		cells := s.tab.DecodeRule(n.Rule)
		if depth > 0 {
			cells[0] = strings.Repeat(". ", depth) + cells[0]
		}
		count := formatCount(n.Count)
		if !n.Exact {
			count = "~" + count
		}
		cells = append(cells, count, strconv.FormatFloat(n.Weight, 'g', 4, 64))
		rows = append(rows, cells)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(s.root, 0)
	return formatAligned(headers, rows)
}

// RenderNode renders just the subtree under n (with n as the first row).
func (s *Session) RenderNode(n *Node) string {
	headers := append(append([]string{}, s.tab.ColumnNames()...), s.cfg.Agg.Name(), "Weight")
	var rows [][]string
	var walk func(m *Node, depth int)
	walk = func(m *Node, depth int) {
		cells := s.tab.DecodeRule(m.Rule)
		if depth > 0 {
			cells[0] = strings.Repeat(". ", depth) + cells[0]
		}
		count := formatCount(m.Count)
		if !m.Exact {
			count = "~" + count
		}
		cells = append(cells, count, strconv.FormatFloat(m.Weight, 'g', 4, 64))
		rows = append(rows, cells)
		for _, c := range m.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return formatAligned(headers, rows)
}

// formatCount prints integral aggregates without a fraction and measures
// (Sum aggregates) with one decimal.
func formatCount(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 1, 64)
}

// formatAligned lays out rows under headers with column-aligned padding and
// a separator line, e.g.
//
//	Store   Product  Region  Count  Weight
//	------  -------  ------  -----  ------
//	?       ?        ?       6000   0
func formatAligned(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

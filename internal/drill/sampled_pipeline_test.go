package drill

// Tests for the approximate interactive pipeline: sampled-vs-exact
// convergence, the DisableSampling ablation's bit-identity, threshold
// routing, and the provisional→exact refinement lifecycle.

import (
	"testing"

	"smartdrill/internal/datagen"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
)

// topKeys returns the rule keys of a node's children.
func topKeys(n *Node) map[string]bool {
	out := make(map[string]bool, len(n.Children))
	for _, c := range n.Children {
		out[c.Rule.Key()] = true
	}
	return out
}

func jaccard(a, b map[string]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := 0
	for k := range a {
		if b[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// TestSampledTopKConvergence: the sampled top-k converges to the exact
// top-k as the sample rate approaches 1 — small samples may disagree on
// tail rules, near-exhaustive samples must essentially reproduce the
// exact list.
func TestSampledTopKConvergence(t *testing.T) {
	tab := datagen.CensusProjected(30000, 7, 7)
	exact, err := NewSession(tab, Config{K: 4, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := exact.Expand(exact.Root()); err != nil {
		t.Fatal(err)
	}
	exactKeys := topKeys(exact.Root())
	if len(exactKeys) == 0 {
		t.Fatal("exact expansion returned no rules")
	}

	avgJaccard := func(minSS int) float64 {
		total := 0.0
		const seeds = 5
		for seed := int64(1); seed <= seeds; seed++ {
			s, err := NewSession(tab, Config{
				K: 4, MaxWeight: 4,
				SampleMemory:  tab.NumRows(),
				MinSampleSize: minSS,
				Seed:          seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Expand(s.Root()); err != nil {
				t.Fatal(err)
			}
			if s.LastMethod == "direct" {
				t.Fatalf("minSS=%d seed=%d: expansion was not sampled", minSS, seed)
			}
			total += jaccard(topKeys(s.Root()), exactKeys)
		}
		return total / seeds
	}

	small := avgJaccard(1500)
	large := avgJaccard(10000)
	nearFull := avgJaccard(29000) // rate ≈ 0.97

	if nearFull < 0.9 {
		t.Errorf("near-exhaustive sample: top-k Jaccard %.2f, want ≥ 0.9", nearFull)
	}
	if large < 0.6 {
		t.Errorf("minSS=10000: top-k Jaccard %.2f, want ≥ 0.6", large)
	}
	if small > nearFull+1e-9 && small == 1 {
		t.Errorf("convergence inverted: Jaccard %.2f at minSS=1500 vs %.2f near-full", small, nearFull)
	}
	t.Logf("top-k Jaccard vs exact: minSS=1500 %.2f, 10000 %.2f, 29000 %.2f", small, large, nearFull)
}

// sameTree compares two displayed trees field by field.
func sameTree(t *testing.T, a, b *Node) {
	t.Helper()
	if a.Rule.Key() != b.Rule.Key() || a.Weight != b.Weight || a.Count != b.Count ||
		a.Exact != b.Exact || a.CILow != b.CILow || a.CIHigh != b.CIHigh {
		t.Fatalf("nodes differ:\n  %+v\n  %+v", a, b)
	}
	if len(a.Children) != len(b.Children) {
		t.Fatalf("child counts differ at %v: %d vs %d", a.Rule, len(a.Children), len(b.Children))
	}
	for i := range a.Children {
		sameTree(t, a.Children[i], b.Children[i])
	}
}

// TestDisableSamplingBitIdentical: the ablation switch must reproduce a
// session configured without sampling exactly — same rules, same counts,
// same intervals — two levels deep.
func TestDisableSamplingBitIdentical(t *testing.T) {
	tab := datagen.CensusProjected(20000, 7, 7)
	plain, err := NewSession(tab, Config{K: 4, MaxWeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ablated, err := NewSession(tab, Config{
		K: 4, MaxWeight: 4,
		SampleMemory:    20000,
		MinSampleSize:   2000,
		SampleThreshold: 100,
		DisableSampling: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ablated.Handler() != nil {
		t.Fatal("DisableSampling left a sample handler alive")
	}
	for _, s := range []*Session{plain, ablated} {
		if err := s.Expand(s.Root()); err != nil {
			t.Fatal(err)
		}
		if s.LastMethod != "direct" {
			t.Fatalf("access method %q, want direct", s.LastMethod)
		}
		for _, c := range s.Root().Children {
			if err := s.Expand(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	sameTree(t, plain.Root(), ablated.Root())
}

// TestSampleThresholdRouting: expansions route by (sub)view size — large
// views go to the sampled path with provisional counts, views provably
// smaller than the threshold are answered exactly.
func TestSampleThresholdRouting(t *testing.T) {
	tab := datagen.CensusProjected(30000, 7, 7)
	tab.Index().Warm() // posting lengths drive the routing bound
	s, err := NewSession(tab, Config{
		K: 4, MaxWeight: 4,
		SampleMemory:    30000,
		MinSampleSize:   2000,
		SampleThreshold: 5000,
		Seed:            1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The root view (30000 rows) exceeds the threshold: sampled.
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if s.LastMethod == "direct" {
		t.Fatal("root expansion should have sampled")
	}
	for _, c := range s.Root().Children {
		if c.Exact {
			t.Fatalf("sampled child %v claims exactness", c.Rule)
		}
		if c.CILow > c.Count || c.CIHigh < c.Count {
			t.Fatalf("child %v: count %g outside CI [%g, %g]", c.Rule, c.Count, c.CILow, c.CIHigh)
		}
		// The clamped upper bound never exceeds the enclosing view's size.
		if c.CIHigh > float64(tab.NumRows()) {
			t.Fatalf("child %v: CI hi %g exceeds table size", c.Rule, c.CIHigh)
		}
	}

	// A rule provably below the threshold is answered exactly despite the
	// handler being live.
	small := findSmallRule(t, tab, 5000)
	n := &Node{Rule: small}
	if err := s.Expand(n); err != nil {
		t.Fatal(err)
	}
	if s.LastMethod != "direct" {
		t.Fatalf("small view answered via %q, want direct", s.LastMethod)
	}
	for _, c := range n.Children {
		if !c.Exact {
			t.Fatalf("exact-path child %v marked provisional", c.Rule)
		}
	}
}

// findSmallRule returns a single-column rule whose coverage is below max.
func findSmallRule(t *testing.T, tab *table.Table, max int) rule.Rule {
	t.Helper()
	for c := 0; c < tab.NumCols(); c++ {
		for v := 0; v < tab.DistinctCount(c); v++ {
			r := rule.Trivial(tab.NumCols()).With(c, rule.Value(v))
			if n := tab.Count(r); n > 0 && n < max {
				return r
			}
		}
	}
	t.Fatal("no small rule in table")
	return nil
}

// TestRefineNodeLifecycle: provisional nodes refine to the authoritative
// count with one accounted pass, become exact, and refuse double work.
func TestRefineNodeLifecycle(t *testing.T) {
	tab := datagen.CensusProjected(25000, 7, 7)
	s, err := NewSession(tab, Config{
		K: 4, MaxWeight: 4,
		SampleMemory:  25000,
		MinSampleSize: 2000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	prov := s.ProvisionalNodes()
	if len(prov) == 0 {
		t.Fatal("sampled expansion produced no provisional nodes")
	}
	scansBefore := s.Store().Stats().FullScans
	for _, n := range prov {
		if !s.RefineNode(n) {
			t.Fatalf("node %v did not refine", n.Rule)
		}
		truth := float64(tab.Count(n.Rule))
		if n.Count != truth {
			t.Fatalf("node %v: refined count %g != exact %g", n.Rule, n.Count, truth)
		}
		if !n.Exact || n.CILow != truth || n.CIHigh != truth {
			t.Fatalf("node %v: lifecycle state wrong after refine: %+v", n.Rule, n)
		}
		if s.RefineNode(n) {
			t.Fatalf("node %v refined twice", n.Rule)
		}
	}
	if got := s.Store().Stats().FullScans - scansBefore; got != int64(len(prov)) {
		t.Fatalf("refinement charged %d full scans, want %d (one per node)", got, len(prov))
	}
	if len(s.ProvisionalNodes()) != 0 {
		t.Fatal("provisional nodes remain after refining all")
	}
}

// TestRefineSkipsOrphanedNodes: a background refiner can lose the race
// with a collapse or re-expansion; refining the orphaned node must be a
// no-op, not a wasted full pass.
func TestRefineSkipsOrphanedNodes(t *testing.T) {
	tab := datagen.CensusProjected(25000, 7, 7)
	s, err := NewSession(tab, Config{
		K: 4, MaxWeight: 4,
		SampleMemory:  25000,
		MinSampleSize: 2000,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	orphan := s.Root().Children[0]
	s.Collapse(s.Root())
	scans := s.Store().Stats().FullScans
	if s.RefineNode(orphan) {
		t.Fatal("refined a node no longer in the displayed tree")
	}
	if got := s.Store().Stats().FullScans; got != scans {
		t.Fatalf("orphan refinement paid %d passes", got-scans)
	}
	if orphan.Exact {
		t.Fatal("orphan mutated")
	}
}

// TestRefineNodeSumAggregate: refinement under Sum replaces the scaled
// estimate with the exact mass (an aggregate scan, not a tuple count —
// the distinction the PR-2 display bugfix guards).
func TestRefineNodeSumAggregate(t *testing.T) {
	tab := buildSalesTable(30000, 5)
	m, err := tab.MeasureIndex("Sales")
	if err != nil {
		t.Fatal(err)
	}
	agg := score.SumAgg{Measure: m, Label: "Sales"}
	s, err := NewSession(tab, Config{
		K: 3, MaxWeight: 2, Agg: agg,
		SampleMemory: 20000, MinSampleSize: 4000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	prov := s.ProvisionalNodes()
	if len(prov) == 0 {
		t.Fatal("no provisional nodes under Sum sampling")
	}
	for _, n := range prov {
		if !s.RefineNode(n) {
			t.Fatalf("node %v did not refine", n.Rule)
		}
		truth := 0.0
		for i := 0; i < tab.NumRows(); i++ {
			if tab.Covers(n.Rule, i) {
				truth += agg.Mass(tab, i)
			}
		}
		if n.Count != truth {
			t.Fatalf("node %v: refined sum %g != exact %g", n.Rule, n.Count, truth)
		}
		if !n.Exact {
			t.Fatalf("node %v not exact after refine", n.Rule)
		}
	}
}

// TestSampledSessionAccounting: sampled searches report their in-memory
// sample reads through the session totals and the store's counters.
func TestSampledSessionAccounting(t *testing.T) {
	tab := datagen.CensusProjected(25000, 7, 7)
	s, err := NewSession(tab, Config{
		K: 4, MaxWeight: 4,
		SampleMemory:  25000,
		MinSampleSize: 2000,
		Seed:          5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if s.LastStats.SampledRowsScanned == 0 {
		t.Fatal("sampled expansion recorded no sampled rows")
	}
	if s.TotalStats.SampledRowsScanned != s.LastStats.SampledRowsScanned {
		t.Fatalf("session totals %d != last stats %d",
			s.TotalStats.SampledRowsScanned, s.LastStats.SampledRowsScanned)
	}
	if got := s.Store().Stats().SampledRowsRead; got != s.LastStats.SampledRowsScanned {
		t.Fatalf("store sampled reads %d != search's %d", got, s.LastStats.SampledRowsScanned)
	}
}

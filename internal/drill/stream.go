package drill

import (
	"context"
	"time"

	"smartdrill/internal/brs"
	"smartdrill/internal/weight"
)

// Anytime expansion (Section 6.1): instead of fixing k, stream rules into
// the displayed tree as the greedy search finds them, stopping on a time
// budget or when the caller has seen enough. The paper suggests "display
// as many rules as we can find within a time limit (of say 5 seconds)".

// ExpandStream expands n, invoking onRule for every rule as it is found
// and appending it to n's children immediately. The search stops when
// onRule returns false, after maxRules rules (0 = unbounded), when budget
// elapses (0 = unbounded), or when no rule adds value. onRule may be nil.
func (s *Session) ExpandStream(n *Node, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	return s.ExpandStreamCtx(context.Background(), n, maxRules, budget, onRule)
}

// ExpandStreamCtx is ExpandStream under a cancellation context: the BRS
// search additionally checks ctx between counting passes and aborts with
// ctx's error — an abandoned connection stops the search even while it is
// mid-way to its next rule. Rules streamed before the cancellation stay in
// the tree (they were already shown), the partial search's statistics are
// recorded, and the session remains fully usable.
func (s *Session) ExpandStreamCtx(ctx context.Context, n *Node, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	return s.expandStream(ctx, n, s.cfg.Weighter, maxRules, budget, onRule)
}

func (s *Session) expandStream(ctx context.Context, n *Node, w weight.Weighter, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	if n.Expanded() {
		s.Collapse(n)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	view, scale, exact, err := s.coveredView(n.Rule, DegradedFrom(ctx))
	if err != nil {
		return err
	}
	mw := s.cfg.MaxWeight
	if mw <= 0 {
		// Probe with the number of rules this stream will actually request
		// — maxRules when bounded, else the session's configured k (as
		// batch Expand does) — so the weight cap fits the rule list being
		// built rather than a differently-sized one. The probe runs before
		// the stream's deadline exists and its cost grows with k, so a
		// caller-supplied maxRules (e.g. a client's max_rules query
		// parameter) is capped: past a screenful of rules the max-weight
		// estimate has long saturated.
		const maxProbeK = 100
		probeK := s.cfg.K
		if maxRules > 0 {
			probeK = maxRules
		}
		if probeK > maxProbeK {
			probeK = maxProbeK
		}
		mw = EstimateMaxWeight(view, w, probeK, s.cfg.Seed)
	}
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	bound := scale * float64(view.NumRows()) // the enclosing view's scaled size
	stats, err := brs.RunIncrementalCtx(ctx, view, w, brs.Options{
		MaxWeight:       mw,
		Base:            n.Rule,
		BaseCovered:     true, // coveredView delivers exactly the rule's coverage
		Agg:             s.cfg.Agg,
		Workers:         s.cfg.Workers,
		DisableParallel: s.cfg.DisableParallel,
		DisableBitmap:   s.cfg.DisableBitmap,
		MinGainRatio:    0.01, // drop the long tail of near-worthless rules
		SampleScale:     scale,
	}, maxRules, deadline, func(r brs.Result) bool {
		child := &Node{
			Rule:   r.Rule,
			Weight: r.Weight,
			Count:  r.Count,
			Exact:  exact,
			parent: n,
		}
		child.CILow, child.CIHigh, child.HasCI = countCI(s.cfg.Agg, exact, scale, r.Count, bound)
		s.adopt(child)
		n.Children = append(n.Children, child)
		if onRule == nil {
			return true
		}
		return onRule(child)
	})
	// Record even a canceled search's statistics: the aborted passes are
	// real work the session's accounting must show.
	s.recordStats(stats)
	return err
}

package drill

import (
	"context"
	"time"

	"smartdrill/internal/brs"
	"smartdrill/internal/search"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Anytime expansion (Section 6.1): instead of fixing k, stream rules into
// the displayed tree as the greedy search finds them, stopping on a time
// budget or when the caller has seen enough. The paper suggests "display
// as many rules as we can find within a time limit (of say 5 seconds)".

// ExpandStream expands n, invoking onRule for every rule as it is found
// and appending it to n's children immediately. The search stops when
// onRule returns false, after maxRules rules (0 = unbounded), when budget
// elapses (0 = unbounded), or when no rule adds value. onRule may be nil.
func (s *Session) ExpandStream(n *Node, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	return s.ExpandStreamCtx(context.Background(), n, maxRules, budget, onRule)
}

// ExpandStreamCtx is ExpandStream under a cancellation context: the BRS
// search additionally checks ctx between counting passes and aborts with
// ctx's error — an abandoned connection stops the search even while it is
// mid-way to its next rule. Rules streamed before the cancellation stay in
// the tree (they were already shown), the partial search's statistics are
// recorded, and the session remains fully usable.
func (s *Session) ExpandStreamCtx(ctx context.Context, n *Node, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	return s.expandStream(ctx, n, s.cfg.Weighter, maxRules, budget, onRule)
}

//sdlint:holds mu — reached only from ExpandStream* paths the owner serializes
func (s *Session) expandStream(ctx context.Context, n *Node, w weight.Weighter, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	if n.Expanded() {
		s.Collapse(n)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	degraded := DegradedFrom(ctx)

	req := s.searchRequest(search.KindStream, n.Rule, w, degraded)
	req.MaxRules = maxRules
	req.MinGainRatio = 0.01 // drop the long tail of near-worthless rules
	if budget > 0 {
		// A deadline-bounded stream can truncate anywhere, so the service
		// runs it directly — never cached, never joined by singleflight.
		// Budget-free streams run to completion and are cached like batch
		// expansions, replayed rule by rule through the same yield.
		req.Deadline = time.Now().Add(budget)
	}
	// scale/exact/bound are owned by the resolve closure: on a cache hit it
	// never runs and the replayed results are exact with scale 1 — matching
	// the initial values below.
	scale, exact, bound := 1.0, true, float64(s.tab.NumRows())
	req.Resolve = func() (*table.View, float64, bool, error) {
		v, sc, ex, err := s.coveredView(n.Rule, degraded)
		if err == nil {
			scale, exact = sc, ex
			bound = sc * float64(v.NumRows()) // the enclosing view's scaled size
		}
		return v, sc, ex, err
	}
	req.MaxWeightFor = func(v *table.View) float64 {
		// Probe with the number of rules this stream will actually request
		// — maxRules when bounded, else the session's configured k (as
		// batch Expand does) — so the weight cap fits the rule list being
		// built rather than a differently-sized one. The probe runs before
		// the stream's deadline exists and its cost grows with k, so a
		// caller-supplied maxRules (e.g. a client's max_rules query
		// parameter) is capped: past a screenful of rules the max-weight
		// estimate has long saturated.
		const maxProbeK = 100
		probeK := s.cfg.K
		if maxRules > 0 {
			probeK = maxRules
		}
		if probeK > maxProbeK {
			probeK = maxProbeK
		}
		return EstimateMaxWeight(v, w, probeK, s.cfg.Seed)
	}
	req.Yield = func(r brs.Result) bool {
		child := &Node{
			Rule:   r.Rule,
			Weight: r.Weight,
			Count:  r.Count,
			Exact:  exact,
			parent: n,
		}
		child.CILow, child.CIHigh, child.HasCI = countCI(s.cfg.Agg, exact, scale, r.Count, bound)
		s.adopt(child)
		n.Children = append(n.Children, child)
		if onRule == nil {
			return true
		}
		return onRule(child)
	}
	resp, err := s.svc.Run(ctx, req)
	if resp.Cached {
		s.LastMethod = "cache"
	}
	// Record even a canceled search's statistics: the aborted passes are
	// real work the session's accounting must show.
	s.recordStats(resp.Stats)
	return err
}

package drill

import (
	"fmt"
	"sort"
	"testing"

	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// mwSensitiveTable is built so the mw estimate depends on the k used to
// probe: the four best rules are weight-1 singles, the fifth is a weight-3
// triple. Probing with k=4 yields mw = 2·1 = 2, which wrongly excludes the
// triple from a k=5 expansion; probing with k=5 yields mw = 6, which
// admits it. The streamed path used to hardcode k=4 here.
func mwSensitiveTable() *table.Table {
	b := table.MustBuilder([]string{"A", "B", "C"}, nil)
	filler := 0
	addFiller := func(a string, n int) {
		for i := 0; i < n; i++ {
			b.MustAddRow([]string{a, fmt.Sprintf("f%d", filler), fmt.Sprintf("g%d", filler)})
			filler++
		}
	}
	addFiller("a0", 500)
	addFiller("a1", 400)
	addFiller("a2", 300)
	addFiller("a3", 250)
	for i := 0; i < 80; i++ {
		b.MustAddRow([]string{"aX", "bX", "cX"})
	}
	return b.Build()
}

func childKeys(n *Node) []string {
	keys := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		keys = append(keys, c.Rule.String())
	}
	sort.Strings(keys)
	return keys
}

// TestStreamUsesConfiguredK is the regression test for the hardcoded k=4
// in expandStream's mw estimation: with K=5 on an mw-sensitive table, the
// streamed expansion must return exactly the batch expansion's rules —
// including the weight-3 triple that a k=4 probe's mw would exclude.
func TestStreamUsesConfiguredK(t *testing.T) {
	tab := mwSensitiveTable()
	w := weight.NewSize(3)

	// Establish that the scenario actually distinguishes the two probes;
	// if this ever fails the fixture needs re-tuning, not the fix.
	mw4 := EstimateMaxWeight(tab.All(), w, 4, 1)
	mw5 := EstimateMaxWeight(tab.All(), w, 5, 1)
	if mw4 == mw5 {
		t.Fatalf("fixture does not separate k=4 (mw %g) from k=5 (mw %g)", mw4, mw5)
	}

	batch, err := NewSession(tab, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := batch.Expand(batch.Root()); err != nil {
		t.Fatal(err)
	}

	streamed, err := NewSession(tab, Config{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := streamed.ExpandStream(streamed.Root(), 5, 0, nil); err != nil {
		t.Fatal(err)
	}

	got, want := childKeys(streamed.Root()), childKeys(batch.Root())
	if len(got) != len(want) {
		t.Fatalf("streamed %d rules, batch %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("streamed rules %v != batch rules %v", got, want)
		}
	}
	// The triple only survives under the correctly-sized probe.
	triple, err := tab.EncodeRule(map[string]string{"A": "aX", "B": "bX", "C": "cX"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range streamed.Root().Children {
		if c.Rule.Equal(triple) {
			found = true
		}
	}
	if !found {
		t.Fatalf("streamed expansion lost the weight-3 triple (mw probe used wrong k); rules: %v", got)
	}

	// A bounded stream requesting more rules than the session's k must
	// probe with the requested count, not cfg.K: on a K=3 session, a
	// 5-rule stream still admits the triple.
	bounded, err := NewSession(tab, Config{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := bounded.ExpandStream(bounded.Root(), 5, 0, nil); err != nil {
		t.Fatal(err)
	}
	found = false
	for _, c := range bounded.Root().Children {
		if c.Rule.Equal(triple) {
			found = true
		}
	}
	if !found {
		t.Fatalf("bounded stream on a K=3 session excluded the triple; rules: %v", childKeys(bounded.Root()))
	}
}

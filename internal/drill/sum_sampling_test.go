package drill

import (
	"math"
	"math/rand"
	"testing"

	"smartdrill/internal/score"
	"smartdrill/internal/table"
)

// buildSalesTable makes a 2-column table with a Sales measure whose totals
// per group are known.
func buildSalesTable(n int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	b := table.MustBuilder([]string{"Store", "Region"}, []string{"Sales"})
	stores := []string{"A", "B", "C", "D"}
	regions := []string{"N", "S", "E", "W"}
	for i := 0; i < n; i++ {
		s := stores[rng.Intn(len(stores))]
		r := regions[rng.Intn(len(regions))]
		b.MustAddRow([]string{s, r}, 1+rng.Float64()*99)
	}
	return b.Build()
}

// TestSumEstimatesUnderSampling verifies the Section 6.3 + Section 4
// combination: Sum aggregates computed on a uniform sample and scaled by
// 1/p are (nearly) unbiased estimates of the true group sums. The scale
// factor derived for counts applies unchanged because each tuple's mass
// enters the sample with the same inclusion probability.
func TestSumEstimatesUnderSampling(t *testing.T) {
	tab := buildSalesTable(30000, 5)
	m, err := tab.MeasureIndex("Sales")
	if err != nil {
		t.Fatal(err)
	}
	agg := score.SumAgg{Measure: m, Label: "Sales"}
	s, err := NewSession(tab, Config{
		K: 3, MaxWeight: 2, Agg: agg,
		SampleMemory: 20000, MinSampleSize: 4000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if len(s.Root().Children) == 0 {
		t.Fatal("no rules")
	}
	for _, k := range s.Root().Children {
		// True Sum over the full table.
		truth := 0.0
		for i := 0; i < tab.NumRows(); i++ {
			if tab.Covers(k.Rule, i) {
				truth += agg.Mass(tab, i)
			}
		}
		if truth == 0 {
			t.Fatalf("displayed rule %v has zero true sum", k.Rule)
		}
		if rel := math.Abs(k.Count-truth) / truth; rel > 0.15 {
			t.Fatalf("Sum estimate %g vs truth %g (rel err %.3f) for %v",
				k.Count, truth, rel, k.Rule)
		}
	}
}

// TestSumPrefetchKeepsMassEstimates is the regression test for prefetch
// count refinement under Sum: samples built by the prefetch carry exact
// *tuple* counts, which must never overwrite a displayed Sum (a mass).
// The constant measure of 0.1 per tuple makes the corruption a clean 10×
// inflation — far outside any sampling error — while keeping the displayed
// masses small enough that the prefetch allocator builds the per-child
// samples whose filters match displayed rules.
func TestSumPrefetchKeepsMassEstimates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := table.MustBuilder([]string{"Store", "Region"}, []string{"Sales"})
	stores := []string{"A", "B", "C", "D"}
	regions := []string{"N", "S", "E", "W"}
	for i := 0; i < 30000; i++ {
		b.MustAddRow([]string{
			stores[rng.Intn(len(stores))],
			regions[rng.Intn(len(regions))],
		}, 0.1)
	}
	tab := b.Build()
	m, err := tab.MeasureIndex("Sales")
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(tab, Config{
		K: 3, MaxWeight: 2, Agg: score.SumAgg{Measure: m, Label: "Sales"},
		SampleMemory: 20000, MinSampleSize: 4000, Prefetch: true, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	if len(s.Root().Children) == 0 {
		t.Fatal("no rules")
	}
	// The fixture must actually exercise the refinement path: at least one
	// prefetched sample's filter matches a displayed (non-root) rule.
	matched := false
	for _, smp := range s.Handler().Samples() {
		if node := s.findNode(s.root, smp.Filter); node != nil && node != s.Root() {
			matched = true
		}
	}
	if !matched {
		t.Fatal("fixture: prefetch built no per-child samples; the refinement path is unexercised")
	}
	for _, k := range s.Root().Children {
		trueSum := float64(tab.Count(k.Rule)) * 0.1
		if rel := math.Abs(k.Count-trueSum) / trueSum; rel > 0.15 {
			t.Fatalf("Sum display %g vs truth %g (rel err %.3f) for %v — prefetch overwrote the mass estimate?",
				k.Count, trueSum, rel, k.Rule)
		}
		if k.Exact {
			t.Fatalf("prefetch must not mark Sum estimates exact (node %v)", k.Rule)
		}
	}
}

// TestCountPrefetchStillRefines pins the intended behavior on the other
// side of the fix: under the Count aggregate, prefetch-created samples do
// upgrade displayed estimates to their exact coverage counts.
func TestCountPrefetchStillRefines(t *testing.T) {
	tab := buildSalesTable(30000, 11)
	s, err := NewSession(tab, Config{
		K: 3, MaxWeight: 2,
		SampleMemory: 20000, MinSampleSize: 4000, Prefetch: true, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Expand(s.Root()); err != nil {
		t.Fatal(err)
	}
	refined := 0
	for _, k := range s.Root().Children {
		if k.Exact {
			refined++
			if k.Count != float64(tab.Count(k.Rule)) {
				t.Fatalf("refined count %g != exact %d for %v", k.Count, tab.Count(k.Rule), k.Rule)
			}
			if k.CILow != k.Count || k.CIHigh != k.Count {
				t.Fatalf("refined node %v kept a non-degenerate CI [%g,%g]", k.Rule, k.CILow, k.CIHigh)
			}
		}
	}
	if refined == 0 {
		t.Fatal("prefetch refined no displayed count under the Count aggregate")
	}
}

// TestRootSumExact checks the root of a Sum session shows the exact total.
func TestRootSumExact(t *testing.T) {
	tab := buildSalesTable(1000, 6)
	m, _ := tab.MeasureIndex("Sales")
	agg := score.SumAgg{Measure: m}
	s, err := NewSession(tab, Config{K: 2, Agg: agg})
	if err != nil {
		t.Fatal(err)
	}
	truth := 0.0
	for i := 0; i < tab.NumRows(); i++ {
		truth += agg.Mass(tab, i)
	}
	if math.Abs(s.Root().Count-truth) > 1e-6 {
		t.Fatalf("root sum %g != %g", s.Root().Count, truth)
	}
}

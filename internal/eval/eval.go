// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's evaluation (Section 5) as parameter sweeps that
// print the same rows/series the paper reports. See DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for measured-vs-paper results.
package eval

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"smartdrill/internal/brs"
	"smartdrill/internal/drill"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Dataset bundles a table with the name used in experiment output and the
// sampling configuration appropriate to its size (the paper samples Census
// but explores Marketing directly).
type Dataset struct {
	Name   string
	Table  *table.Table
	Memory int // SampleHandler budget M in tuples; 0 disables sampling
	MinSS  int
}

// Weighting pairs a constructor with its display name so sweeps can build
// per-dataset weighters.
type Weighting struct {
	Name  string
	Build func(t *table.Table) weight.Weighter
}

// StandardWeightings returns the two weighting functions of the paper's
// quantitative experiments.
func StandardWeightings() []Weighting {
	return []Weighting{
		{Name: "Size", Build: func(t *table.Table) weight.Weighter { return weight.NewSize(t.NumCols()) }},
		{Name: "Bits", Build: func(t *table.Table) weight.Weighter { return weight.BitsFor(t) }},
	}
}

// Fig5Row is one point of Figure 5: time to expand the empty rule at a
// given mw.
type Fig5Row struct {
	Dataset   string
	Weighting string
	MW        float64
	Millis    float64
	Passes    int
	Counted   int
	Pruned    int
}

// Fig5Config parameterizes the Figure 5 sweep.
type Fig5Config struct {
	Datasets []Dataset
	MWs      []float64
	K        int
	Trials   int
}

// Fig5Sweep measures expansion time of the empty rule as a function of the
// mw parameter, for each dataset × weighting (Section 5.2.1). The paper
// reports times averaged over 10 trials; Trials controls that.
func Fig5Sweep(cfg Fig5Config) []Fig5Row {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 3
	}
	var rows []Fig5Row
	for _, ds := range cfg.Datasets {
		for _, wt := range StandardWeightings() {
			w := wt.Build(ds.Table)
			for _, mw := range cfg.MWs {
				var totalMS float64
				var stats brs.Stats
				for trial := 0; trial < cfg.Trials; trial++ {
					s := newSession(ds, w, cfg.K, mw, int64(trial+1))
					start := time.Now()
					if err := s.Expand(s.Root()); err != nil {
						panic(fmt.Sprintf("eval: fig5 expand: %v", err))
					}
					totalMS += float64(time.Since(start).Microseconds()) / 1000
					stats = s.LastStats
				}
				rows = append(rows, Fig5Row{
					Dataset:   ds.Name,
					Weighting: wt.Name,
					MW:        mw,
					Millis:    totalMS / float64(cfg.Trials),
					Passes:    stats.Passes,
					Counted:   stats.CandidatesCounted,
					Pruned:    stats.CandidatesPruned,
				})
			}
		}
	}
	return rows
}

// Fig8Row is one point of Figure 8: time (a), count error (b) and incorrect
// rules (c) at a given minSS.
type Fig8Row struct {
	Dataset        string
	Weighting      string
	MinSS          int
	Millis         float64
	PctError       float64
	IncorrectRules float64
}

// Fig8Config parameterizes the Figure 8 sweep.
type Fig8Config struct {
	Datasets []Dataset // Memory/MinSS fields are overridden per sweep point
	MinSSs   []int
	K        int
	MW       float64
	Trials   int
	Memory   int // SampleHandler budget; 0 means 50000 (the paper's M)
}

// Fig8Sweep measures, as a function of minSS: expansion time, average
// percent error of displayed counts versus exact table counts, and the
// number of displayed rules differing from the full-table BRS result
// (Section 5.2.2; the paper averages 50 iterations).
func Fig8Sweep(cfg Fig8Config) []Fig8Row {
	if cfg.K <= 0 {
		cfg.K = 4
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 5
	}
	if cfg.Memory <= 0 {
		cfg.Memory = 50000
	}
	var rows []Fig8Row
	for _, ds := range cfg.Datasets {
		for _, wt := range StandardWeightings() {
			w := wt.Build(ds.Table)
			// Reference: BRS on the full table (exact counts, true rules).
			mw := cfg.MW
			if mw <= 0 {
				mw = drill.EstimateMaxWeight(ds.Table.All(), w, cfg.K, 1)
			}
			ref, _, err := brs.Run(ds.Table.All(), w, brs.Options{K: cfg.K, MaxWeight: mw})
			if err != nil {
				panic(fmt.Sprintf("eval: fig8 reference: %v", err))
			}
			refKeys := make(map[string]bool, len(ref))
			for _, r := range ref {
				refKeys[r.Rule.Key()] = true
			}
			for _, minSS := range cfg.MinSSs {
				var ms, pctErr, incorrect float64
				for trial := 0; trial < cfg.Trials; trial++ {
					d := ds
					d.Memory = cfg.Memory
					d.MinSS = minSS
					s := newSession(d, w, cfg.K, mw, int64(trial+1))
					start := time.Now()
					if err := s.Expand(s.Root()); err != nil {
						panic(fmt.Sprintf("eval: fig8 expand: %v", err))
					}
					ms += float64(time.Since(start).Microseconds()) / 1000

					for _, child := range s.Root().Children {
						actual := float64(ds.Table.Count(child.Rule))
						if actual > 0 {
							pctErr += 100 * abs(child.Count-actual) / actual / float64(len(s.Root().Children))
						}
						if !refKeys[child.Rule.Key()] {
							incorrect++
						}
					}
				}
				n := float64(cfg.Trials)
				rows = append(rows, Fig8Row{
					Dataset:        ds.Name,
					Weighting:      wt.Name,
					MinSS:          minSS,
					Millis:         ms / n,
					PctError:       pctErr / n,
					IncorrectRules: incorrect / n,
				})
			}
		}
	}
	return rows
}

// ScalingRow is one point of the Section 5.2.3 scaling discussion:
// expansion time as a function of table size at fixed minSS, decomposed
// into the scan term (a·|T|, measured as one raw accounted pass) and the
// sample-side term (everything else, ≈ b·minSS).
type ScalingRow struct {
	Rows   int
	MinSS  int
	Millis float64 // full first-expansion latency
	ScanMS float64 // one raw full pass over the table
	Method string
}

// ScalingSweep measures the a·|T| + b·minSS runtime decomposition: for each
// table size, the first expansion pays the Create scan (a·|T|) plus BRS on
// the sample (b·minSS). On this in-memory substrate a is tens of
// nanoseconds per row, so ScanMS isolates the linear-in-|T| term that a
// disk-resident table would amplify (see EXPERIMENTS.md).
func ScalingSweep(gen func(n int) *table.Table, sizes []int, minSS, k int) []ScalingRow {
	var rows []ScalingRow
	for _, n := range sizes {
		t := gen(n)
		ds := Dataset{Name: fmt.Sprintf("n=%d", n), Table: t, Memory: 10 * minSS, MinSS: minSS}
		w := weight.NewSize(t.NumCols())
		// Fixed mw: the auto-estimate probe would add sample-size noise to
		// exactly the term this sweep is trying to isolate.
		s := newSession(ds, w, k, 4, 1)
		start := time.Now()
		if err := s.Expand(s.Root()); err != nil {
			panic(fmt.Sprintf("eval: scaling expand: %v", err))
		}
		total := float64(time.Since(start).Microseconds()) / 1000

		scanStart := time.Now()
		rowsSeen := 0
		st := storage.NewStore(t)
		st.Scan(func(i int) bool { rowsSeen++; return true })
		scanMS := float64(time.Since(scanStart).Microseconds()) / 1000
		if rowsSeen != n {
			panic("eval: scan accounting mismatch")
		}

		rows = append(rows, ScalingRow{
			Rows:   n,
			MinSS:  minSS,
			Millis: total,
			ScanMS: scanMS,
			Method: s.LastMethod,
		})
	}
	return rows
}

// newSession builds a drill session matching a dataset's sampling setup.
func newSession(ds Dataset, w weight.Weighter, k int, mw float64, seed int64) *drill.Session {
	s, err := drill.NewSession(ds.Table, drill.Config{
		K:             k,
		MaxWeight:     mw,
		Weighter:      w,
		SampleMemory:  ds.Memory,
		MinSampleSize: ds.MinSS,
		Seed:          seed,
	})
	if err != nil {
		panic(fmt.Sprintf("eval: session: %v", err))
	}
	return s
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// WriteTable prints rows of stringers as an aligned text table.
func WriteTable(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// SortFig5 orders rows for stable output.
func SortFig5(rows []Fig5Row) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Dataset != b.Dataset {
			return a.Dataset < b.Dataset
		}
		if a.Weighting != b.Weighting {
			return a.Weighting < b.Weighting
		}
		return a.MW < b.MW
	})
}

// RuleSetKey canonicalizes a displayed rule list for comparisons in tests.
func RuleSetKey(rules []rule.Rule) string {
	keys := make([]string, len(rules))
	for i, r := range rules {
		keys[i] = r.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// ExactCounts returns the exact table counts of the displayed children of
// root (Figure 8b ground truth helper).
func ExactCounts(t *table.Table, nodes []*drill.Node) []float64 {
	out := make([]float64, len(nodes))
	for i, n := range nodes {
		out[i] = float64(t.Count(n.Rule))
	}
	return out
}

// ScoreOfChildren computes the exact Score of the displayed children under
// the given weighter — used to compare smart vs traditional drill-down
// (Section 5.1's qualitative claim, made quantitative).
func ScoreOfChildren(t *table.Table, w weight.Weighter, nodes []*drill.Node) float64 {
	rules := make([]rule.Rule, len(nodes))
	for i, n := range nodes {
		rules[i] = n.Rule
	}
	return score.SetScore(t, w, score.CountAgg{}, rules)
}

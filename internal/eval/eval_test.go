package eval

import (
	"strings"
	"testing"

	"smartdrill/internal/datagen"
	"smartdrill/internal/table"
)

func marketingSmall(t *testing.T) *table.Table {
	t.Helper()
	full := datagen.Marketing(3000, 4)
	tab, err := full.ProjectFirst(7)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestFig5SweepShape(t *testing.T) {
	tab := marketingSmall(t)
	rows := Fig5Sweep(Fig5Config{
		Datasets: []Dataset{{Name: "M", Table: tab}},
		MWs:      []float64{1, 3},
		K:        3,
		Trials:   1,
	})
	// 1 dataset × 2 weightings × 2 mw points.
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Millis < 0 || r.Passes <= 0 || r.Counted <= 0 {
			t.Fatalf("implausible row %+v", r)
		}
	}
	// Larger mw must never *reduce* counted candidates for the same
	// dataset+weighting (pruning power only weakens).
	byKey := map[string][]Fig5Row{}
	for _, r := range rows {
		k := r.Dataset + "/" + r.Weighting
		byKey[k] = append(byKey[k], r)
	}
	for k, rs := range byKey {
		if len(rs) == 2 && rs[0].MW < rs[1].MW && rs[0].Counted > rs[1].Counted {
			t.Errorf("%s: counted candidates fell from %d to %d as mw grew",
				k, rs[0].Counted, rs[1].Counted)
		}
	}
	SortFig5(rows)
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		if a.Dataset == b.Dataset && a.Weighting == b.Weighting && a.MW > b.MW {
			t.Fatal("SortFig5 did not order by mw")
		}
	}
}

func TestFig8SweepShape(t *testing.T) {
	tab := datagen.CensusProjected(20000, 5, 6)
	rows := Fig8Sweep(Fig8Config{
		Datasets: []Dataset{{Name: "C", Table: tab}},
		MinSSs:   []int{500, 4000},
		K:        3,
		Trials:   2,
		Memory:   10000,
	})
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.PctError < 0 || r.IncorrectRules < 0 {
			t.Fatalf("negative metrics: %+v", r)
		}
	}
	// Error at the largest minSS should not exceed error at the smallest
	// (averaged over trials; allow equality for already-exact cases).
	byKey := map[string]map[int]float64{}
	for _, r := range rows {
		k := r.Weighting
		if byKey[k] == nil {
			byKey[k] = map[int]float64{}
		}
		byKey[k][r.MinSS] = r.PctError
	}
	for k, m := range byKey {
		if m[4000] > m[500]*1.5+0.5 {
			t.Errorf("%s: error grew with sample size: %v", k, m)
		}
	}
}

func TestScalingSweep(t *testing.T) {
	rows := ScalingSweep(func(n int) *table.Table {
		return datagen.CensusProjected(n, 5, 3)
	}, []int{5000, 20000}, 1000, 3)
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Method != "direct" && rows[0].Method != "Create" {
		t.Fatalf("unexpected method %q", rows[0].Method)
	}
}

func TestQualitativeFigures(t *testing.T) {
	cfg := QualitativeConfig{Marketing: marketingSmall(t), K: 4}
	fig1 := cfg.Fig1()
	if !strings.Contains(fig1, "Gender") || strings.Count(fig1, "\n") < 5 {
		t.Fatalf("fig1 malformed:\n%s", fig1)
	}
	fig2, err := cfg.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	// Star expansion on Education: the new sub-rules must instantiate it.
	if !strings.Contains(fig2, "College grad") && !strings.Contains(fig2, "Some college") &&
		!strings.Contains(fig2, "HS grad") {
		t.Fatalf("fig2 shows no education values:\n%s", fig2)
	}
	if _, err := cfg.Fig3(); err != nil {
		t.Fatal(err)
	}
	baselineT, smartT, err := cfg.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Both renderings of the Age drill-down must list every age bucket.
	for _, bucket := range []string{"18-24", "25-34", "65+"} {
		if !strings.Contains(baselineT, bucket) {
			t.Errorf("baseline fig4 missing %q", bucket)
		}
		if !strings.Contains(smartT, bucket) {
			t.Errorf("smart fig4 missing %q", bucket)
		}
	}
	if out := cfg.Fig6(); strings.Count(out, "\n") < 5 {
		t.Fatalf("fig6 malformed:\n%s", out)
	}
	fig7 := cfg.Fig7()
	// Size-minus-one: every displayed rule has ≥ 2 instantiated columns,
	// i.e. no line with exactly one non-? cell. Check via the Weight
	// column: no displayed child may have weight rendered as 0 except the
	// root.
	lines := strings.Split(strings.TrimSpace(fig7), "\n")
	for _, l := range lines[3:] { // skip header, separator, root
		if strings.Contains(l, ". ") && ruleSizeOfRenderedLine(l) < 2 {
			t.Errorf("fig7 shows a sub-2-column rule: %q", l)
		}
	}
}

// ruleSizeOfRenderedLine counts non-? cells among the 7 leading columns of
// a rendered Marketing rule line.
func ruleSizeOfRenderedLine(line string) int {
	fields := strings.Fields(line)
	n := 0
	for i, f := range fields {
		if i == 0 && f == "." {
			continue
		}
		if i >= 8 { // 7 columns + indent marker
			break
		}
		if f != "?" && f != "." {
			n++
		}
	}
	return n
}

func TestWriteTable(t *testing.T) {
	var sb strings.Builder
	WriteTable(&sb, []string{"A", "Long"}, [][]string{{"x", "y"}, {"longer", "z"}})
	out := sb.String()
	if !strings.Contains(out, "A       Long") {
		t.Fatalf("alignment wrong:\n%s", out)
	}
	if !strings.Contains(out, "------  ----") {
		t.Fatalf("separator wrong:\n%s", out)
	}
}

func TestFig4TraditionalEquivalence(t *testing.T) {
	// The smart drill-down emulation of traditional drill-down must list
	// the same groups with the same counts as the baseline operator.
	tab := marketingSmall(t)
	cfg := QualitativeConfig{Marketing: tab, K: 4}
	baselineT, smartT, err := cfg.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	age, _ := tab.ColumnIndex("Age")
	for v := 0; v < tab.DistinctCount(age); v++ {
		val := tab.Dict(age).Decode(int32(v))
		if !strings.Contains(baselineT, val) || !strings.Contains(smartT, val) {
			t.Errorf("value %q missing from a fig4 table", val)
		}
	}
}

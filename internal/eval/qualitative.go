package eval

import (
	"fmt"
	"strings"

	"smartdrill/internal/baseline"
	"smartdrill/internal/drill"
	"smartdrill/internal/score"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// This file regenerates the paper's qualitative exhibits (Section 5.1):
// the figures are screenshots of rule tables produced by specific user
// actions on the Marketing dataset; each function performs the same action
// and returns the rendered table.

// QualitativeConfig holds the dataset and parameters shared by the
// qualitative figures (paper: k=4, mw=5 for Size, mw=20 for Bits,
// Marketing restricted to its first 7 columns).
type QualitativeConfig struct {
	Marketing *table.Table
	K         int
}

func (c QualitativeConfig) k() int {
	if c.K <= 0 {
		return 4
	}
	return c.K
}

func (c QualitativeConfig) session(w weight.Weighter, mw float64) *drill.Session {
	s, err := drill.NewSession(c.Marketing, drill.Config{
		K:         c.k(),
		MaxWeight: mw,
		Weighter:  w,
	})
	if err != nil {
		panic(fmt.Sprintf("eval: qualitative session: %v", err))
	}
	return s
}

// Fig1 expands the empty rule under Size weighting (mw=5): the paper's
// Figure 1 summary.
func (c QualitativeConfig) Fig1() string {
	s := c.session(weight.NewSize(c.Marketing.NumCols()), 5)
	mustExpand(s, s.Root())
	return s.Render()
}

// Fig2 performs a star expansion on the Education column of the second
// displayed rule of Figure 1 (the paper expands the ? in Education of a
// female-majority rule, showing education levels among those tuples).
func (c QualitativeConfig) Fig2() (string, error) {
	s := c.session(weight.NewSize(c.Marketing.NumCols()), 5)
	mustExpand(s, s.Root())
	if len(s.Root().Children) < 2 {
		return "", fmt.Errorf("eval: fig2 needs ≥2 first-level rules")
	}
	target := s.Root().Children[1]
	edu, err := c.Marketing.ColumnIndex("Education")
	if err != nil {
		return "", err
	}
	if err := s.ExpandStar(target, edu); err != nil {
		return "", err
	}
	return s.Render(), nil
}

// Fig3 expands the third displayed rule of Figure 1 (a plain rule
// expansion rather than a star expansion).
func (c QualitativeConfig) Fig3() (string, error) {
	s := c.session(weight.NewSize(c.Marketing.NumCols()), 5)
	mustExpand(s, s.Root())
	if len(s.Root().Children) < 3 {
		return "", fmt.Errorf("eval: fig3 needs ≥3 first-level rules")
	}
	mustExpand(s, s.Root().Children[2])
	return s.Render(), nil
}

// Fig4 performs a regular drill-down on the Age column, reproduced two
// ways to demonstrate the paper's claim that traditional drill-down is a
// special case of smart drill-down: once with the baseline GROUP BY
// operator, once via smart drill-down with ColumnDrill weighting and k set
// to the column's distinct count. Both tables are returned.
func (c QualitativeConfig) Fig4() (baselineTable, smartTable string, err error) {
	age, err := c.Marketing.ColumnIndex("Age")
	if err != nil {
		return "", "", err
	}
	groups, err := baseline.TraditionalDrillDown(c.Marketing, nil, age, score.CountAgg{})
	if err != nil {
		return "", "", err
	}
	var rows [][]string
	for _, g := range groups {
		rows = append(rows, []string{g.Value, fmt.Sprintf("%.0f", g.Count)})
	}
	var sb strings.Builder
	WriteTable(&sb, []string{"Age", "Count"}, rows)

	k := c.Marketing.DistinctCount(age)
	s, err := drill.NewSession(c.Marketing, drill.Config{
		K:         k,
		MaxWeight: 1,
		Weighter:  weight.ColumnDrill{Column: age},
	})
	if err != nil {
		return "", "", err
	}
	mustExpand(s, s.Root())
	return sb.String(), s.Render(), nil
}

// Fig6 expands the empty rule under Bits weighting (mw=20): Figure 6.
func (c QualitativeConfig) Fig6() string {
	s := c.session(weight.BitsFor(c.Marketing), 20)
	mustExpand(s, s.Root())
	return s.Render()
}

// Fig7 expands the empty rule under the size-minus-one weighting: Figure 7,
// where every displayed rule must instantiate at least two columns.
func (c QualitativeConfig) Fig7() string {
	s := c.session(weight.SizeMinusOne{}, 5)
	mustExpand(s, s.Root())
	return s.Render()
}

func mustExpand(s *drill.Session, n *drill.Node) {
	if err := s.Expand(n); err != nil {
		panic(fmt.Sprintf("eval: expand: %v", err))
	}
}

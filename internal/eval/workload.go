package eval

import (
	"fmt"

	"smartdrill/internal/drill"
	"smartdrill/internal/sampling"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
	"smartdrill/internal/workload"
)

// WorkloadRow reports one simulated-session configuration: how drill-downs
// were served and what they cost. This extends the paper's evaluation with
// the end-to-end metric its Section 4 design targets (serving drills from
// memory), under uniform vs learned drill-probability models and with
// prefetching on or off.
type WorkloadRow struct {
	Config    string
	Steps     int
	Direct    int
	Find      int
	Combine   int
	Create    int
	FullScans int64
	HitRate   float64
}

// WorkloadSweep simulates sessions on t under the standard four
// configurations (sampling off; sampling; sampling+prefetch;
// sampling+prefetch+learned model), averaging nothing — each row is one
// deterministic session with the given seeds.
func WorkloadSweep(t *table.Table, steps int, sessionSeed, analystSeed int64) ([]WorkloadRow, error) {
	type setup struct {
		name string
		cfg  drill.Config
	}
	base := drill.Config{
		K: 3, MaxWeight: 4,
		Weighter:      weight.NewSize(t.NumCols()),
		SampleMemory:  50000,
		MinSampleSize: 5000,
		Seed:          sessionSeed,
	}
	direct := base
	direct.SampleMemory, direct.MinSampleSize = 0, 0
	prefetch := base
	prefetch.Prefetch = true
	learned := prefetch
	learned.ProbModel = sampling.NewRankModel()

	setups := []setup{
		{"direct (no sampling)", direct},
		{"sampling", base},
		{"sampling+prefetch", prefetch},
		{"sampling+prefetch+learned", learned},
	}
	var rows []WorkloadRow
	for _, su := range setups {
		s, err := drill.NewSession(t, su.cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: workload session %q: %w", su.name, err)
		}
		rep, err := workload.Run(s, t, workload.Config{Steps: steps, Seed: analystSeed})
		if err != nil {
			return nil, fmt.Errorf("eval: workload run %q: %w", su.name, err)
		}
		rows = append(rows, WorkloadRow{
			Config:    su.name,
			Steps:     rep.Steps,
			Direct:    rep.ByMethod["direct"],
			Find:      rep.ByMethod["Find"],
			Combine:   rep.ByMethod["Combine"],
			Create:    rep.ByMethod["Create"],
			FullScans: rep.FullScans,
			HitRate:   rep.HitRate(),
		})
	}
	return rows, nil
}

package eval

import (
	"testing"

	"smartdrill/internal/datagen"
)

func TestWorkloadSweep(t *testing.T) {
	tab := datagen.CensusProjected(30000, 5, 6)
	rows, err := WorkloadSweep(tab, 12, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 configurations", len(rows))
	}
	// Direct configuration never samples.
	if rows[0].Find+rows[0].Combine+rows[0].Create != 0 {
		t.Fatalf("direct config used sampling: %+v", rows[0])
	}
	if rows[0].Direct == 0 {
		t.Fatal("direct config recorded no accesses")
	}
	// Sampled configurations serve every access through the handler.
	for _, r := range rows[1:] {
		if r.Direct != 0 {
			t.Fatalf("%s: direct accesses in a sampled config", r.Config)
		}
		if r.Find+r.Combine+r.Create == 0 {
			t.Fatalf("%s: no sampled accesses", r.Config)
		}
	}
	// Prefetching must not lower the hit rate vs plain sampling.
	if rows[2].HitRate < rows[1].HitRate {
		t.Fatalf("prefetch lowered hit rate: %+v vs %+v", rows[2], rows[1])
	}
}

// Package faultinject is the deterministic fault-injection harness behind
// the chaos test suite. A Plan is a seeded schedule of faults — added
// latency, injected errors, dropped connections — matched against named
// operations. Determinism is the point: the same seed and the same
// sequence of Check calls produce the same faults, so a chaos run that
// finds a bug is replayable with `make chaos SEED=...` instead of being a
// one-off flake.
//
// The two injection seams it drives:
//
//   - server.DirBackend.Inject — disk faults on snapshot save/load/delete
//     (wire with Plan.InjectFunc);
//   - Middleware — HTTP-level faults (latency, 503s, connection drops) in
//     front of any handler, keyed by "METHOD /path".
//
// Production code never imports this package; tests compose it around the
// real server.
package faultinject

import (
	"math/rand/v2"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Rule describes one fault source. A Check whose op matches Op (substring
// match; empty matches everything) draws against Prob; on a hit, the
// rule's faults apply: Latency is added, then — at most one of — the
// connection drops or Err is returned.
type Rule struct {
	// Op selects operations by substring ("save", "POST /v1/sessions",
	// "/drill"). Empty matches every operation.
	Op string
	// Prob is the per-match fault probability in [0,1]. 1 means always.
	Prob float64
	// Latency is added before the operation proceeds (or fails).
	Latency time.Duration
	// Err, when non-nil, is returned as the operation's failure.
	Err error
	// DropConn, for HTTP operations, kills the connection mid-request
	// without writing a response (the client sees a transport error, not a
	// status). Takes precedence over Err.
	DropConn bool
	// MaxCount caps how many times this rule fires; 0 means unlimited.
	MaxCount int
}

// Outcome is the fault decision for one operation.
type Outcome struct {
	Latency  time.Duration
	Err      error
	DropConn bool
}

// Plan is a seeded fault schedule. Safe for concurrent use; concurrent
// Checks serialize on an internal mutex so the random stream stays
// deterministic for a given interleaving.
type Plan struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules []Rule
	fired []int
	stats map[string]int
}

// New builds a Plan drawing from the given seed.
func New(seed uint64, rules ...Rule) *Plan {
	return &Plan{
		rng:   rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		rules: rules,
		fired: make([]int, len(rules)),
		stats: make(map[string]int),
	}
}

// Check evaluates op against the plan, aggregating every matching rule
// that fires: latencies add up, and the first drop or error wins.
func (p *Plan) Check(op string) Outcome {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out Outcome
	for i, r := range p.rules {
		if r.Op != "" && !strings.Contains(op, r.Op) {
			continue
		}
		if r.MaxCount > 0 && p.fired[i] >= r.MaxCount {
			continue
		}
		if p.rng.Float64() >= r.Prob {
			continue
		}
		p.fired[i]++
		p.stats[op]++
		out.Latency += r.Latency
		if !out.DropConn && out.Err == nil {
			out.DropConn = r.DropConn
			out.Err = r.Err
		}
	}
	return out
}

// Stats reports how many faults have been injected per operation.
func (p *Plan) Stats() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]int, len(p.stats))
	for k, v := range p.stats {
		out[k] = v
	}
	return out
}

// Total reports the total number of injected faults.
func (p *Plan) Total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, v := range p.stats {
		n += v
	}
	return n
}

// InjectFunc adapts the plan to the server backend's Inject seam: latency
// is slept, errors are returned, and DropConn is meaningless for disk
// operations (treated as an error-free hit).
func (p *Plan) InjectFunc() func(op string) error {
	return func(op string) error {
		out := p.Check(op)
		if out.Latency > 0 {
			time.Sleep(out.Latency)
		}
		return out.Err
	}
}

// Middleware wraps an HTTP handler with the plan's faults, keyed by
// "METHOD /path". Latency is slept (bounded by the request context), a
// DropConn hit aborts the connection via http.ErrAbortHandler — the
// stdlib's sanctioned way to kill a response mid-flight — and an Err hit
// answers 503 with a plain-text body (deliberately NOT the API's error
// envelope, so client-side decoding of malformed errors gets exercised
// too).
func Middleware(p *Plan, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		out := p.Check(r.Method + " " + r.URL.Path)
		if out.Latency > 0 {
			t := time.NewTimer(out.Latency)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
			}
		}
		if out.DropConn {
			panic(http.ErrAbortHandler)
		}
		if out.Err != nil {
			http.Error(w, "injected fault: "+out.Err.Error(), http.StatusServiceUnavailable)
			return
		}
		next.ServeHTTP(w, r)
	})
}

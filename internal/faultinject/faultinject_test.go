package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestDeterminism: two plans with the same seed and rule set produce the
// same fault sequence — the property that makes chaos failures replayable.
func TestDeterminism(t *testing.T) {
	mk := func() *Plan {
		return New(42, Rule{Op: "save", Prob: 0.5, Err: errors.New("boom")})
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		oa, ob := a.Check("save"), b.Check("save")
		if (oa.Err == nil) != (ob.Err == nil) {
			t.Fatalf("call %d diverged: %v vs %v", i, oa.Err, ob.Err)
		}
	}
	if a.Total() != b.Total() {
		t.Fatalf("totals diverged: %d vs %d", a.Total(), b.Total())
	}
	if a.Total() == 0 || a.Total() == 200 {
		t.Fatalf("prob 0.5 fired %d/200 times; rng looks broken", a.Total())
	}
}

func TestOpMatching(t *testing.T) {
	p := New(1,
		Rule{Op: "save", Prob: 1, Err: errors.New("disk full")},
		Rule{Op: "POST /v1/sessions", Prob: 1, DropConn: true},
	)
	if out := p.Check("load"); out.Err != nil || out.DropConn {
		t.Fatalf("non-matching op faulted: %+v", out)
	}
	if out := p.Check("save"); out.Err == nil {
		t.Fatal("matching op did not fault")
	}
	// Substring semantics: the drill path contains neither rule's Op.
	if out := p.Check("POST /v1/sessions/abc/drill"); !out.DropConn {
		t.Fatal("substring match failed for HTTP op")
	}
}

func TestMaxCount(t *testing.T) {
	p := New(7, Rule{Op: "", Prob: 1, Err: errors.New("x"), MaxCount: 3})
	hits := 0
	for i := 0; i < 10; i++ {
		if p.Check("anything").Err != nil {
			hits++
		}
	}
	if hits != 3 {
		t.Fatalf("MaxCount 3 fired %d times", hits)
	}
}

func TestInjectFuncLatency(t *testing.T) {
	p := New(3, Rule{Op: "save", Prob: 1, Latency: 20 * time.Millisecond, MaxCount: 1})
	inject := p.InjectFunc()
	start := time.Now()
	if err := inject("save"); err != nil {
		t.Fatalf("latency-only rule returned error: %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

// TestMiddleware covers all three HTTP fault modes against a live server.
func TestMiddleware(t *testing.T) {
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})

	t.Run("error", func(t *testing.T) {
		p := New(1, Rule{Op: "GET /fail", Prob: 1, Err: errors.New("injected")})
		ts := httptest.NewServer(Middleware(p, ok))
		defer ts.Close()
		resp, err := http.Get(ts.URL + "/fail")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", resp.StatusCode)
		}
		resp, err = http.Get(ts.URL + "/other")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unmatched path status = %d, want 200", resp.StatusCode)
		}
	})

	t.Run("drop", func(t *testing.T) {
		p := New(1, Rule{Op: "GET /drop", Prob: 1, DropConn: true})
		ts := httptest.NewServer(Middleware(p, ok))
		defer ts.Close()
		if _, err := http.Get(ts.URL + "/drop"); err == nil {
			t.Fatal("dropped connection produced a response")
		}
	})
}

// Package leakcheck verifies at the end of a test binary that no
// goroutine outlived the tests — the runtime complement to the goflow
// static analyzer. goflow proves every spawn in the serving layers is
// tied to a WaitGroup or declared detached; leakcheck catches what
// static analysis cannot: a drain that is wired up but never called, a
// Done skipped on an error path, a goroutine blocked forever on a
// channel nobody closes.
//
// Wire it into a package with a one-line TestMain:
//
//	func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
//
// The check snapshots all goroutine stacks (runtime.Stack with all=true)
// and filters the benign ones: the runtime's own workers, the testing
// harness, and the net/http client's process-global idle-connection
// pool. Anything left is retried for a grace period — goroutines that
// are merely finishing (a timer firing, a conn tearing down) disappear
// on their own — and whatever survives the grace is reported with its
// full stack.
package leakcheck

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// DefaultGrace is how long Check waits for in-flight goroutines to
// finish before declaring them leaked. Scheduling a goroutine's last few
// instructions can take milliseconds under load; real leaks are blocked
// forever, so the grace trades a short worst-case delay for zero flakes.
const DefaultGrace = 5 * time.Second

// VerifyTestMain runs the package's tests and then fails the binary if
// goroutines leaked. A failing test run is reported as-is — leak output
// on top of test failures is noise, and the failing test may legitimately
// have abandoned work mid-flight.
func VerifyTestMain(m *testing.M) {
	code := m.Run()
	if code == 0 {
		if err := Check(DefaultGrace); err != nil {
			fmt.Fprintf(os.Stderr, "leakcheck: %v\n", err)
			code = 1
		}
	}
	os.Exit(code)
}

// Check reports an error if any non-benign goroutine is still alive
// after retrying for the grace period.
func Check(grace time.Duration) error {
	deadline := time.Now().Add(grace)
	wait := 1 * time.Millisecond
	for {
		leaked := leakedStacks()
		if len(leaked) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d goroutine(s) leaked past the test run:\n\n%s",
				len(leaked), strings.Join(leaked, "\n\n"))
		}
		time.Sleep(wait)
		if wait < 100*time.Millisecond {
			wait *= 2
		}
	}
}

// leakedStacks snapshots every goroutine and returns the stacks that are
// neither the caller's own nor benign.
func leakedStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for i, stack := range strings.Split(string(buf), "\n\n") {
		if i == 0 {
			continue // the goroutine running this check
		}
		if !benign(stack) {
			leaked = append(leaked, strings.TrimSpace(stack))
		}
	}
	return leaked
}

// benignMarks are substrings identifying goroutines that legitimately
// outlive a test run.
var benignMarks = []string{
	// The testing harness itself.
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*M).before",
	"testing.runTests(",
	// Runtime and os/signal workers, alive for the whole process.
	"runtime.ensureSigM",
	"signal.signal_recv",
	"os/signal.loop",
	// The net/http client's idle-connection pool is process-global:
	// keep-alive conns linger by design after httptest servers close.
	"net/http.(*persistConn).readLoop",
	"net/http.(*persistConn).writeLoop",
}

func benign(stack string) bool {
	for _, mark := range benignMarks {
		if strings.Contains(stack, mark) {
			return true
		}
	}
	// A goroutine caught in its dying instant traces as a bare goexit
	// frame: it is gone, not leaked.
	if lines := strings.SplitN(strings.TrimSpace(stack), "\n", 3); len(lines) >= 2 &&
		strings.HasPrefix(lines[1], "runtime.goexit") {
		return true
	}
	return false
}

package leakcheck

import (
	"strings"
	"testing"
	"time"
)

func TestCheckCleanState(t *testing.T) {
	if err := Check(DefaultGrace); err != nil {
		t.Fatalf("Check on a quiet test binary: %v", err)
	}
}

func TestCheckCatchesBlockedGoroutine(t *testing.T) {
	release := make(chan struct{})
	go func() { <-release }()

	err := Check(200 * time.Millisecond)
	if err == nil {
		close(release)
		t.Fatal("Check missed a goroutine blocked on a channel receive")
	}
	if !strings.Contains(err.Error(), "leaked past the test run") {
		t.Errorf("leak error does not name the invariant: %v", err)
	}
	if !strings.Contains(err.Error(), "TestCheckCatchesBlockedGoroutine") {
		t.Errorf("leak error does not include the leaking stack: %v", err)
	}

	close(release)
	if err := Check(DefaultGrace); err != nil {
		t.Fatalf("Check still failing after the goroutine was released: %v", err)
	}
}

func TestCheckWaitsOutFinishingGoroutine(t *testing.T) {
	go func() { time.Sleep(50 * time.Millisecond) }()
	if err := Check(DefaultGrace); err != nil {
		t.Fatalf("Check flagged a goroutine that finishes within the grace: %v", err)
	}
}

// TestMain: the leak verifier guards its own package too.
func TestMain(m *testing.M) { VerifyTestMain(m) }

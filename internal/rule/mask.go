package rule

import "math/bits"

// Mask is a fixed-size bitset over table columns, identifying which columns
// of a rule are instantiated. Weighting functions in the paper depend only
// on the instantiated-column set (plus schema statistics), so Mask is the
// argument type weighters consume. Mask is comparable and cheap to copy.
type Mask [2]uint64

// Set marks column c as instantiated.
func (m *Mask) Set(c int) { m[c>>6] |= 1 << (uint(c) & 63) }

// Clear marks column c as a star.
func (m *Mask) Clear(c int) { m[c>>6] &^= 1 << (uint(c) & 63) }

// Has reports whether column c is instantiated.
func (m Mask) Has(c int) bool { return m[c>>6]&(1<<(uint(c)&63)) != 0 }

// Count returns the number of instantiated columns.
func (m Mask) Count() int { return bits.OnesCount64(m[0]) + bits.OnesCount64(m[1]) }

// CountBelow returns the number of instantiated columns with index < c —
// the position a value for column c occupies in a column-ascending packed
// layout.
func (m Mask) CountBelow(c int) int {
	w := c >> 6
	n := bits.OnesCount64(m[w] & (1<<(uint(c)&63) - 1))
	for i := 0; i < w; i++ {
		n += bits.OnesCount64(m[i])
	}
	return n
}

// SubsetOf reports whether every column set in m is also set in o. A rule
// r1 is a sub-rule of r2 only if r1's mask is a subset of r2's.
func (m Mask) SubsetOf(o Mask) bool {
	return m[0]&^o[0] == 0 && m[1]&^o[1] == 0
}

// Union returns the mask with all columns from either operand.
func (m Mask) Union(o Mask) Mask { return Mask{m[0] | o[0], m[1] | o[1]} }

// Columns returns the indices of set columns in ascending order.
func (m Mask) Columns() []int {
	cols := make([]int, 0, m.Count())
	for w := 0; w < 2; w++ {
		word := m[w]
		for word != 0 {
			b := bits.TrailingZeros64(word)
			cols = append(cols, w*64+b)
			word &= word - 1
		}
	}
	return cols
}

// MaskOf builds a mask with the given columns set.
func MaskOf(cols ...int) Mask {
	var m Mask
	for _, c := range cols {
		m.Set(c)
	}
	return m
}

package rule

import (
	"math/rand"
	"testing"
)

func TestMaskSetClearHas(t *testing.T) {
	var m Mask
	for _, c := range []int{0, 63, 64, 127} {
		m.Set(c)
		if !m.Has(c) {
			t.Errorf("Has(%d) false after Set", c)
		}
	}
	if got := m.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	m.Clear(64)
	if m.Has(64) {
		t.Error("Has(64) true after Clear")
	}
	if got := m.Count(); got != 3 {
		t.Fatalf("Count after clear = %d, want 3", got)
	}
}

func TestMaskColumnsRoundTrip(t *testing.T) {
	cols := []int{3, 17, 64, 90, 127}
	m := MaskOf(cols...)
	got := m.Columns()
	if len(got) != len(cols) {
		t.Fatalf("Columns = %v, want %v", got, cols)
	}
	for i := range cols {
		if got[i] != cols[i] {
			t.Fatalf("Columns = %v, want %v", got, cols)
		}
	}
}

func TestMaskSubsetUnion(t *testing.T) {
	a := MaskOf(1, 65)
	b := MaskOf(1, 65, 100)
	if !a.SubsetOf(b) {
		t.Error("a should be a subset of b")
	}
	if b.SubsetOf(a) {
		t.Error("b should not be a subset of a")
	}
	u := a.Union(MaskOf(100))
	if !u.SubsetOf(b) || !b.SubsetOf(u) {
		t.Errorf("union mismatch: %v vs %v", u.Columns(), b.Columns())
	}
}

func TestMaskSubsetProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 1000; trial++ {
		var a, b Mask
		for c := 0; c < 128; c++ {
			if rng.Intn(4) == 0 {
				a.Set(c)
			}
			if rng.Intn(4) == 0 {
				b.Set(c)
			}
		}
		// a ⊆ a∪b always; a ⊆ b iff every column check agrees.
		if !a.SubsetOf(a.Union(b)) {
			t.Fatal("a must be subset of a∪b")
		}
		want := true
		for _, c := range a.Columns() {
			if !b.Has(c) {
				want = false
				break
			}
		}
		if got := a.SubsetOf(b); got != want {
			t.Fatalf("SubsetOf = %v, want %v (a=%v b=%v)", got, want, a.Columns(), b.Columns())
		}
	}
}

package rule

import (
	"bytes"
	"encoding/binary"
	"math/bits"
)

// Packed candidate identity. BRS's inner loops dedup and look up candidate
// rules millions of times per drill-down; identifying a candidate by a
// heap-allocated Rule.Key() string makes every one of those operations an
// allocation plus a string hash. PackedKey is the allocation-free
// replacement: a fixed-size, comparable struct packing the candidate's
// instantiated-column mask together with its instantiated value ids, usable
// directly as a map key and ordered consistently with Rule.Key().
//
// Keys are always taken relative to a base mask (the columns a search's
// base rule instantiates): base columns carry identical values on every
// candidate of one search, so only the remaining "free" instantiated
// columns need packing. Pack with the zero Mask to key a rule absolutely.

// MaxPackedValues is the capacity of a PackedKey: the largest number of
// free instantiated columns a packed rule may have. Deeper rules (beyond
// any practical drill-down level) fall back to string keys at call sites.
const MaxPackedValues = 16

// PackedKey identifies a rule relative to a base mask: which free columns
// it instantiates, and with which value ids (ascending column order).
// PackedKey is comparable — two keys are == iff they identify the same
// rule (relative to the same base) — and the zero PackedKey is the base
// rule itself.
type PackedKey struct {
	mask Mask
	vals [MaxPackedValues]Value
}

// PackKey packs the columns of r instantiated outside base. ok is false
// when more than MaxPackedValues columns would need packing, in which case
// the zero key is returned and the caller must fall back to Key().
func (r Rule) PackKey(base Mask) (k PackedKey, ok bool) {
	n := 0
	for c, v := range r {
		if v == Star || base.Has(c) {
			continue
		}
		if n == MaxPackedValues {
			return PackedKey{}, false
		}
		k.mask.Set(c)
		k.vals[n] = v
		n++
	}
	return k, true
}

// Size returns the number of packed (free instantiated) columns.
func (k PackedKey) Size() int { return k.mask.Count() }

// Has reports whether column c is packed in k.
func (k PackedKey) Has(c int) bool { return k.mask.Has(c) }

// Value returns the packed value of column c; it panics if c is not packed
// (programmer error — guard with Has).
func (k PackedKey) Value(c int) Value {
	if !k.mask.Has(c) {
		panic("rule: PackedKey.Value of unpacked column")
	}
	return k.vals[k.mask.CountBelow(c)]
}

// Extend returns k with column c packed at value v — the key of the
// one-column super-rule — without materializing the rule. ok is false when
// k is full or c is already packed.
func (k PackedKey) Extend(c int, v Value) (PackedKey, bool) {
	n := k.mask.Count()
	if n == MaxPackedValues || k.mask.Has(c) {
		return PackedKey{}, false
	}
	pos := k.mask.CountBelow(c)
	copy(k.vals[pos+1:n+1], k.vals[pos:n])
	k.vals[pos] = v
	k.mask.Set(c)
	return k, true
}

// Drop returns k with column c removed — the key of the immediate sub-rule
// starring c out. ok is false when c is not packed.
func (k PackedKey) Drop(c int) (PackedKey, bool) {
	if !k.mask.Has(c) {
		return PackedKey{}, false
	}
	n := k.mask.Count()
	pos := k.mask.CountBelow(c)
	copy(k.vals[pos:n-1], k.vals[pos+1:n])
	k.vals[n-1] = 0 // keep unused slots zero so == stays meaningful
	k.mask.Clear(c)
	return k, true
}

// Compare orders packed keys identically to the byte order of the rules'
// Key() encodings (the order BRS's deterministic tie-breaks are defined
// in), for keys packed against the same base from rules of equal arity:
// it walks the packed columns ascending and resolves the first column
// where the keys disagree — a star on one side, or differing values — by
// the varint byte order Key() would have produced.
func (k PackedKey) Compare(o PackedKey) int {
	ia, io := 0, 0
	for w := range k.mask {
		union := k.mask[w] | o.mask[w]
		for union != 0 {
			bit := uint64(1) << uint(bits.TrailingZeros64(union))
			union &^= bit
			va, vo := Star, Star
			if k.mask[w]&bit != 0 {
				va = k.vals[ia]
				ia++
			}
			if o.mask[w]&bit != 0 {
				vo = o.vals[io]
				io++
			}
			if va != vo {
				return compareValuesKeyOrder(va, vo)
			}
		}
	}
	return 0
}

// compareValuesKeyOrder compares two values in the byte order of their
// varint encodings — the order in which they appear inside Rule.Key().
// Zigzag varints are not numerically ordered (Star encodes between value 0
// and value 1, and multi-byte encodings interleave), so this is the only
// comparison that keeps packed ordering consistent with string keys.
func compareValuesKeyOrder(a, b Value) int {
	if a == b {
		return 0
	}
	var ba, bb [binary.MaxVarintLen32]byte
	na := binary.PutVarint(ba[:], int64(a))
	nb := binary.PutVarint(bb[:], int64(b))
	return bytes.Compare(ba[:na], bb[:nb])
}

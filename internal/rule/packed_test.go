package rule

import (
	"math/rand"
	"strings"
	"testing"
)

// randomRuleOver returns a random rule with the given arity: each column is
// a star with probability ~1/2, otherwise a value in [0, maxVal). Values
// beyond 63 exercise multi-byte varints in Key().
func randomRuleOver(rng *rand.Rand, cols, maxVal int) Rule {
	r := Trivial(cols)
	for c := range r {
		if rng.Intn(2) == 0 {
			r[c] = Value(rng.Intn(maxVal))
		}
	}
	return r
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	}
	return 0
}

// TestPackedKeyRoundTrip is the property test for the packed candidate
// key: over random rules up to MaxColumns wide, packing must round-trip
// every instantiated (column, value) pair, equality of keys must coincide
// with rule equality, and Compare must order keys exactly as the rules'
// Key() strings order.
func TestPackedKeyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		cols := 1 + rng.Intn(MaxColumns)
		maxVal := 1 + rng.Intn(300) // crosses the 1-byte varint boundary
		a := randomRuleOver(rng, cols, maxVal)
		b := randomRuleOver(rng, cols, maxVal)
		if rng.Intn(4) == 0 {
			b = a.Clone() // force equal keys regularly
		}

		ka, oka := a.PackKey(Mask{})
		kb, okb := b.PackKey(Mask{})
		if oka != (a.Size() <= MaxPackedValues) {
			t.Fatalf("PackKey ok=%v for rule of size %d", oka, a.Size())
		}
		if !oka || !okb {
			continue // overflow rules fall back to string keys by contract
		}

		// Round trip: mask and per-column values survive packing.
		if ka.Size() != a.Size() {
			t.Fatalf("packed size %d != rule size %d", ka.Size(), a.Size())
		}
		for c, v := range a {
			if ka.Has(c) != (v != Star) {
				t.Fatalf("trial %d: packed Has(%d)=%v for value %d", trial, c, ka.Has(c), v)
			}
			if v != Star && ka.Value(c) != v {
				t.Fatalf("trial %d: packed value[%d]=%d, want %d", trial, c, ka.Value(c), v)
			}
		}

		// Equality of keys ⇔ equality of rules.
		if (ka == kb) != a.Equal(b) {
			t.Fatalf("trial %d: key equality %v but rule equality %v\na=%v\nb=%v",
				trial, ka == kb, a.Equal(b), a, b)
		}

		// Ordering agrees with the Key() string order.
		want := sign(strings.Compare(a.Key(), b.Key()))
		if got := sign(ka.Compare(kb)); got != want {
			t.Fatalf("trial %d: Compare=%d, Key() order %d\na=%v\nb=%v", trial, got, want, a, b)
		}
		if ka.Compare(kb) != -kb.Compare(ka) {
			t.Fatalf("trial %d: Compare not antisymmetric", trial)
		}
	}
}

// TestPackedKeyRelativeToBase checks that packing against a base mask
// ignores base columns and still orders like Key() among rules sharing
// the base's values.
func TestPackedKeyRelativeToBase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 1000; trial++ {
		cols := 2 + rng.Intn(30)
		base := Trivial(cols)
		for c := 0; c < cols; c++ {
			if rng.Intn(4) == 0 {
				base[c] = Value(rng.Intn(90))
			}
		}
		bm := base.Mask()
		extend := func() Rule {
			r := base.Clone()
			for c := range r {
				if r[c] == Star && rng.Intn(2) == 0 {
					r[c] = Value(rng.Intn(90))
				}
			}
			return r
		}
		a, b := extend(), extend()
		ka, oka := a.PackKey(bm)
		kb, okb := b.PackKey(bm)
		if !oka || !okb {
			continue
		}
		if ka.Size() != a.Size()-base.Size() {
			t.Fatalf("packed %d free values, want %d", ka.Size(), a.Size()-base.Size())
		}
		if (ka == kb) != a.Equal(b) {
			t.Fatalf("trial %d: relative key equality %v, rule equality %v", trial, ka == kb, a.Equal(b))
		}
		want := sign(strings.Compare(a.Key(), b.Key()))
		if got := sign(ka.Compare(kb)); got != want {
			t.Fatalf("trial %d: relative Compare=%d, Key() order %d\nbase=%v\na=%v\nb=%v",
				trial, got, want, base, a, b)
		}
	}
}

// TestPackedKeyExtendDrop checks the lattice moves used by BRS: Extend
// must equal packing the extended rule, Drop must equal packing the
// immediate sub-rule, and both must leave vacated slots zeroed so map
// equality keeps working.
func TestPackedKeyExtendDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 1000; trial++ {
		cols := 1 + rng.Intn(40)
		r := randomRuleOver(rng, cols, 200)
		for r.Size() > MaxPackedValues-1 {
			r[r.InstantiatedColumns()[0]] = Star
		}
		k, _ := r.PackKey(Mask{})

		// Extend at a random star column.
		var stars []int
		for c, v := range r {
			if v == Star {
				stars = append(stars, c)
			}
		}
		if len(stars) > 0 {
			c := stars[rng.Intn(len(stars))]
			v := Value(rng.Intn(200))
			ext, ok := k.Extend(c, v)
			if !ok {
				t.Fatalf("Extend failed with %d/%d slots", k.Size(), MaxPackedValues)
			}
			want, _ := r.With(c, v).PackKey(Mask{})
			if ext != want {
				t.Fatalf("trial %d: Extend(%d,%d) != PackKey of extended rule", trial, c, v)
			}
			if _, ok := ext.Extend(c, v); ok {
				t.Fatal("Extend of an already-packed column must fail")
			}
		}

		// Drop at a random instantiated column.
		inst := r.InstantiatedColumns()
		if len(inst) > 0 {
			c := inst[rng.Intn(len(inst))]
			sub, ok := k.Drop(c)
			if !ok {
				t.Fatalf("Drop(%d) failed", c)
			}
			want, _ := r.Without(c).PackKey(Mask{})
			if sub != want {
				t.Fatalf("trial %d: Drop(%d) != PackKey of sub-rule", trial, c)
			}
			if _, ok := sub.Drop(c); ok {
				t.Fatal("Drop of an unpacked column must fail")
			}
		}
	}
}

func TestPackedKeyCapacity(t *testing.T) {
	r := Trivial(MaxColumns)
	for c := 0; c < MaxPackedValues; c++ {
		r[c] = Value(c)
	}
	k, ok := r.PackKey(Mask{})
	if !ok {
		t.Fatalf("rule with exactly %d values must pack", MaxPackedValues)
	}
	if _, ok := k.Extend(MaxPackedValues, 1); ok {
		t.Fatal("Extend beyond capacity must fail")
	}
	r[MaxPackedValues] = 1
	if _, ok := r.PackKey(Mask{}); ok {
		t.Fatalf("rule with %d values must not pack", MaxPackedValues+1)
	}
}

// Package rule defines the rule model at the heart of smart drill-down.
//
// A rule is a tuple with one entry per table column; each entry is either a
// concrete value (represented by its dictionary id) or the wildcard Star,
// written "?" in the paper. A rule covers a table tuple when every non-star
// entry matches the tuple. Rules are partially ordered by the sub-rule
// relation: r1 is a sub-rule of r2 when r1 can be obtained from r2 by
// replacing values with stars, in which case every tuple covered by r2 is
// also covered by r1.
package rule

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Value is a dictionary-encoded column value. Non-negative values index a
// column dictionary; Star matches every value in the column.
type Value = int32

// Star is the wildcard value, displayed as "?" in rule listings.
const Star Value = -1

// MaxColumns is the largest number of table columns the rule machinery
// supports. It is bounded by the fixed-size Mask representation.
const MaxColumns = 128

// Rule is a pattern over the columns of a table. The zero-length Rule is not
// meaningful; construct rules with Trivial or by extending existing rules.
// A Rule's backing array must not be mutated after it is shared; use With to
// derive new rules.
type Rule []Value

// Trivial returns the rule with a star in each of n columns — the root of
// every drill-down, covering the entire table.
func Trivial(n int) Rule {
	r := make(Rule, n)
	for i := range r {
		r[i] = Star
	}
	return r
}

// FromValues builds a rule from an explicit value slice. The slice is copied.
func FromValues(vals []Value) Rule {
	r := make(Rule, len(vals))
	copy(r, vals)
	return r
}

// Size returns the number of non-star entries, called the size (and, under
// the Size weighting function, the weight) of the rule in the paper.
func (r Rule) Size() int {
	n := 0
	for _, v := range r {
		if v != Star {
			n++
		}
	}
	return n
}

// IsTrivial reports whether every entry is a star.
func (r Rule) IsTrivial() bool { return r.Size() == 0 }

// Covers reports whether the rule covers the tuple, i.e. every non-star
// entry equals the corresponding tuple value. The tuple must have the same
// arity as the rule.
func (r Rule) Covers(tuple []Value) bool {
	for c, v := range r {
		if v != Star && v != tuple[c] {
			return false
		}
	}
	return true
}

// SubRuleOf reports whether r is a sub-rule of s: wherever r has a non-star
// value, s has the same value. Every rule is a sub-rule of itself.
func (r Rule) SubRuleOf(s Rule) bool {
	if len(r) != len(s) {
		return false
	}
	for c, v := range r {
		if v != Star && v != s[c] {
			return false
		}
	}
	return true
}

// SuperRuleOf reports whether r is a super-rule of s, the inverse relation
// of SubRuleOf.
func (r Rule) SuperRuleOf(s Rule) bool { return s.SubRuleOf(r) }

// With returns a copy of r with column c instantiated to value v.
func (r Rule) With(c int, v Value) Rule {
	out := make(Rule, len(r))
	copy(out, r)
	out[c] = v
	return out
}

// Without returns a copy of r with column c reset to a star.
func (r Rule) Without(c int) Rule { return r.With(c, Star) }

// Clone returns an independent copy of r.
func (r Rule) Clone() Rule { return FromValues(r) }

// Equal reports whether two rules have identical entries.
func (r Rule) Equal(s Rule) bool {
	if len(r) != len(s) {
		return false
	}
	for c, v := range r {
		if v != s[c] {
			return false
		}
	}
	return true
}

// Mask returns the bitset of instantiated (non-star) columns. It panics if
// the rule has more than MaxColumns columns; table construction enforces the
// same limit, so the panic indicates programmer error.
func (r Rule) Mask() Mask {
	if len(r) > MaxColumns {
		panic(fmt.Sprintf("rule: %d columns exceeds MaxColumns=%d", len(r), MaxColumns))
	}
	var m Mask
	for c, v := range r {
		if v != Star {
			m.Set(c)
		}
	}
	return m
}

// Key returns a compact canonical encoding of the rule, suitable for use as
// a map key. Two rules have equal keys iff they are Equal.
func (r Rule) Key() string {
	buf := make([]byte, 0, len(r)*3)
	var tmp [binary.MaxVarintLen32]byte
	for _, v := range r {
		n := binary.PutVarint(tmp[:], int64(v))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// InstantiatedColumns returns the indices of non-star columns in ascending
// order.
func (r Rule) InstantiatedColumns() []int {
	cols := make([]int, 0, r.Size())
	for c, v := range r {
		if v != Star {
			cols = append(cols, c)
		}
	}
	return cols
}

// String renders the rule with raw value ids, for debugging. Human-readable
// rendering against a table's dictionaries lives in the drill package.
func (r Rule) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for c, v := range r {
		if c > 0 {
			b.WriteString(", ")
		}
		if v == Star {
			b.WriteByte('?')
		} else {
			fmt.Fprintf(&b, "%d", v)
		}
	}
	b.WriteByte(')')
	return b.String()
}

// ImmediateSubRules returns the rules obtained by starring out exactly one
// instantiated column of r — the parents of r in the a-priori lattice.
func (r Rule) ImmediateSubRules() []Rule {
	subs := make([]Rule, 0, r.Size())
	for c, v := range r {
		if v != Star {
			subs = append(subs, r.Without(c))
		}
	}
	return subs
}

package rule

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivial(t *testing.T) {
	r := Trivial(4)
	if got := r.Size(); got != 0 {
		t.Fatalf("Trivial size = %d, want 0", got)
	}
	if !r.IsTrivial() {
		t.Fatal("Trivial not IsTrivial")
	}
	if !r.Covers([]Value{1, 2, 3, 4}) {
		t.Fatal("trivial rule must cover every tuple")
	}
}

func TestCovers(t *testing.T) {
	r := Rule{1, Star, 3}
	cases := []struct {
		tuple []Value
		want  bool
	}{
		{[]Value{1, 9, 3}, true},
		{[]Value{1, 0, 3}, true},
		{[]Value{2, 9, 3}, false},
		{[]Value{1, 9, 4}, false},
	}
	for _, c := range cases {
		if got := r.Covers(c.tuple); got != c.want {
			t.Errorf("(%v).Covers(%v) = %v, want %v", r, c.tuple, got, c.want)
		}
	}
}

func TestSubRuleOf(t *testing.T) {
	sub := Rule{1, Star, Star}
	super := Rule{1, 2, Star}
	if !sub.SubRuleOf(super) {
		t.Error("(1,?,?) should be a sub-rule of (1,2,?)")
	}
	if super.SubRuleOf(sub) {
		t.Error("(1,2,?) should not be a sub-rule of (1,?,?)")
	}
	if !sub.SubRuleOf(sub) {
		t.Error("every rule is a sub-rule of itself")
	}
	if !super.SuperRuleOf(sub) {
		t.Error("SuperRuleOf should invert SubRuleOf")
	}
	if (Rule{1, Star}).SubRuleOf(Rule{1, Star, Star}) {
		t.Error("rules of different arity are unrelated")
	}
	if (Rule{2, Star, Star}).SubRuleOf(super) {
		t.Error("mismatched value is not a sub-rule")
	}
}

func TestWithWithoutClone(t *testing.T) {
	r := Trivial(3)
	r2 := r.With(1, 7)
	if r.Size() != 0 {
		t.Fatal("With must not mutate the receiver")
	}
	if r2[1] != 7 || r2.Size() != 1 {
		t.Fatalf("With produced %v", r2)
	}
	r3 := r2.Without(1)
	if !r3.IsTrivial() {
		t.Fatalf("Without produced %v", r3)
	}
	c := r2.Clone()
	c[0] = 5
	if r2[0] == 5 {
		t.Fatal("Clone must be independent")
	}
}

func TestKeyUnique(t *testing.T) {
	rules := []Rule{
		{Star, Star}, {0, Star}, {Star, 0}, {0, 0}, {1, 0}, {0, 1}, {257, Star},
	}
	seen := map[string]Rule{}
	for _, r := range rules {
		k := r.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision between %v and %v", prev, r)
		}
		seen[k] = r
	}
}

func TestKeyEqualIffEqual(t *testing.T) {
	f := func(a, b []int8) bool {
		// Build rules with small value ranges to get frequent collisions.
		ra := make(Rule, len(a))
		for i, v := range a {
			ra[i] = Value(v%3) - 1 // -1, 0, or 1
		}
		rb := make(Rule, len(b))
		for i, v := range b {
			rb[i] = Value(v%3) - 1
		}
		return (ra.Key() == rb.Key()) == ra.Equal(rb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	r := Rule{1, Star, 3, Star, 5}
	m := r.Mask()
	if got := m.Count(); got != 3 {
		t.Fatalf("mask count = %d, want 3", got)
	}
	for _, c := range []int{0, 2, 4} {
		if !m.Has(c) {
			t.Errorf("mask should have column %d", c)
		}
	}
	for _, c := range []int{1, 3} {
		if m.Has(c) {
			t.Errorf("mask should not have column %d", c)
		}
	}
}

func TestMaskPanicsOver128(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >128 columns")
		}
	}()
	Trivial(129).Mask()
}

func TestInstantiatedColumns(t *testing.T) {
	r := Rule{Star, 4, Star, 9}
	got := r.InstantiatedColumns()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("InstantiatedColumns = %v, want [1 3]", got)
	}
}

func TestImmediateSubRules(t *testing.T) {
	r := Rule{1, 2, Star}
	subs := r.ImmediateSubRules()
	if len(subs) != 2 {
		t.Fatalf("got %d immediate sub-rules, want 2", len(subs))
	}
	for _, s := range subs {
		if !s.SubRuleOf(r) || s.Size() != r.Size()-1 {
			t.Errorf("%v is not an immediate sub-rule of %v", s, r)
		}
	}
}

func TestString(t *testing.T) {
	if got := (Rule{1, Star}).String(); got != "(1, ?)" {
		t.Fatalf("String = %q", got)
	}
}

// randomRule builds a rule over n columns where each entry is a star with
// probability 1/2 and a value in [0, vals) otherwise.
func randomRule(rng *rand.Rand, n, vals int) Rule {
	r := Trivial(n)
	for c := range r {
		if rng.Intn(2) == 1 {
			r[c] = Value(rng.Intn(vals))
		}
	}
	return r
}

// TestPropertySubRuleCoverage checks the paper's subsumption property: if
// r1 is a sub-rule of r2, every tuple covered by r2 is covered by r1.
func TestPropertySubRuleCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(6)
		r2 := randomRule(rng, n, 3)
		// Derive a sub-rule by starring some instantiated columns.
		r1 := r2.Clone()
		for c := range r1 {
			if r1[c] != Star && rng.Intn(2) == 0 {
				r1[c] = Star
			}
		}
		if !r1.SubRuleOf(r2) {
			t.Fatalf("%v should be a sub-rule of %v", r1, r2)
		}
		tuple := make([]Value, n)
		for c := range tuple {
			tuple[c] = Value(rng.Intn(3))
		}
		if r2.Covers(tuple) && !r1.Covers(tuple) {
			t.Fatalf("t ∈ r2 must imply t ∈ r1: r1=%v r2=%v t=%v", r1, r2, tuple)
		}
	}
}

// TestPropertyMaskSubset: r1 sub-rule of r2 implies mask(r1) ⊆ mask(r2).
func TestPropertyMaskSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(8)
		a := randomRule(rng, n, 3)
		b := randomRule(rng, n, 3)
		if a.SubRuleOf(b) && !a.Mask().SubsetOf(b.Mask()) {
			t.Fatalf("sub-rule %v of %v must have subset mask", a, b)
		}
	}
}

package sampling

import (
	"fmt"
	"math"
	"sort"

	"smartdrill/internal/rule"
)

// This file implements the sample-memory allocation of Section 4.1.
//
// Problem 5: given the displayed rule tree U with leaves L, a probability
// p(l) that each leaf is drilled next, memory budget M (tuples), and
// selectivity ratios S(r', r) (fraction of r'-sample tuples usable for r),
// choose sample sizes n_r maximizing Σ_l p(l)·1[ess(l) ≥ minSS] where
// ess(l) = Σ_r S(r, l)·n_r. The problem is NP-hard (knapsack reduction,
// Lemma 4); under the paper's simplification that a leaf draws only on its
// own sample and its parent's, it decomposes into per-parent groups whose
// locally-optimal assignments are combined by a knapsack-style DP.

// TreeNode is one displayed rule in the tree U.
type TreeNode struct {
	Rule rule.Rule
	// Prob is the probability this node is drilled next; meaningful for
	// leaves (interior nodes' Prob is ignored).
	Prob float64
	// Count is the (estimated) number of master-table tuples the rule
	// covers; selectivity ratios derive from these.
	Count float64
	// Children are the rules displayed under this node.
	Children []*TreeNode
}

// Leaves returns the tree's leaves in depth-first order.
func (n *TreeNode) Leaves() []*TreeNode {
	if len(n.Children) == 0 {
		return []*TreeNode{n}
	}
	var out []*TreeNode
	for _, c := range n.Children {
		out = append(out, c.Leaves()...)
	}
	return out
}

// selectivity returns S(parent, child) = Count(child)/Count(parent): the
// fraction of a parent-sample usable as a child-sample. (The paper defines
// S(r', r) via the ratio of coverages; a child covers a subset of its
// parent.)
func selectivity(parent, child *TreeNode) float64 {
	if parent.Count <= 0 {
		return 0
	}
	s := child.Count / parent.Count
	if s > 1 {
		s = 1
	}
	return s
}

// Allocation maps rule keys to sample sizes (in tuples).
type Allocation map[string]int

// TotalSize returns the summed allocation.
func (a Allocation) TotalSize() int {
	t := 0
	for _, n := range a {
		t += n
	}
	return t
}

// localSolution is one locally-optimal assignment for a (parent, leaf
// children) group: cost in tuples, probability mass of leaves whose ess
// reaches minSS, and the per-node sizes realizing it.
type localSolution struct {
	cost  int
	prob  float64
	sizes map[string]int
}

// AllocateDP solves Problem 5 under the parent-or-self simplification: it
// enumerates locally-optimal assignments per parent group (candidate parent
// sizes are 0 and minSS/S(parent, child) for each child; each child is then
// either satisfied by the parent's contribution, topped up to exactly
// minSS, or ignored) and combines groups with a dynamic program over the
// memory budget. Groups are the interior nodes that have leaf children;
// leaves hanging elsewhere contribute independent "top-up or ignore"
// solutions.
func AllocateDP(root *TreeNode, m, minSS int) (Allocation, float64, error) {
	if m < 0 || minSS <= 0 {
		return nil, 0, fmt.Errorf("sampling: invalid budget m=%d minSS=%d", m, minSS)
	}
	groups := buildGroups(root, minSS)
	if len(groups) == 0 {
		return Allocation{}, 0, nil
	}

	// Knapsack DP over groups: layers[g][j] = max probability from the
	// first g groups within j tuples. O(groups · M · localSolutions), the
	// paper's O(D·S·3^d) with Pareto-pruned locals.
	layers := make([][]float64, len(groups)+1)
	layers[0] = make([]float64, m+1)
	for g, sols := range groups {
		cur := make([]float64, m+1)
		copy(cur, layers[g])
		for _, s := range sols {
			for j := s.cost; j <= m; j++ {
				if v := layers[g][j-s.cost] + s.prob; v > cur[j] {
					cur[j] = v
				}
			}
		}
		layers[g+1] = cur
	}
	total := layers[len(groups)][m]

	// Recover an argmax allocation by walking the layers backward.
	alloc := Allocation{}
	j := m
	for g := len(groups) - 1; g >= 0; g-- {
		si := -1
		bestV := layers[g][j]
		for i, s := range groups[g] {
			if s.cost <= j {
				if v := layers[g][j-s.cost] + s.prob; v > bestV {
					bestV = v
					si = i
				}
			}
		}
		if si >= 0 {
			s := groups[g][si]
			for k, v := range s.sizes {
				alloc[k] += v
			}
			j -= s.cost
		}
	}
	return alloc, total, nil
}

// buildGroups enumerates the locally-optimal solutions for every
// (interior node, leaf children) group in the tree.
func buildGroups(root *TreeNode, minSS int) [][]localSolution {
	var groups [][]localSolution
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		var leafKids []*TreeNode
		for _, c := range n.Children {
			if len(c.Children) == 0 {
				leafKids = append(leafKids, c)
			}
			walk(c)
		}
		if len(leafKids) > 0 {
			groups = append(groups, groupSolutions(n, leafKids, minSS))
		}
	}
	if len(root.Children) == 0 {
		// Degenerate tree: the root is the only (leaf) node; its sample is
		// its own to fund.
		return [][]localSolution{{
			{cost: 0, prob: 0, sizes: map[string]int{}},
			{cost: minCap(minSS, root), prob: root.Prob, sizes: map[string]int{root.Rule.Key(): minCap(minSS, root)}},
		}}
	}
	walk(root)
	return groups
}

// minCap caps a requested sample size by the node's coverage: sampling more
// tuples than exist is impossible and unnecessary (a full materialization
// already answers exactly).
func minCap(want int, n *TreeNode) int {
	if n.Count > 0 && float64(want) > n.Count {
		return int(n.Count)
	}
	return want
}

// groupSolutions enumerates locally-optimal assignments for one group. For
// each candidate parent size n0 ∈ {0} ∪ {minSS/S(parent,child)} (capped to
// the parent's coverage), each child is independently either satisfied for
// free (n0·S ≥ minSS), topped up to exactly minSS − n0·S, or ignored; the
// per-child top-up decisions generate the Pareto frontier of (cost, prob).
func groupSolutions(parent *TreeNode, kids []*TreeNode, minSS int) []localSolution {
	cand := map[int]struct{}{0: {}}
	for _, c := range kids {
		s := selectivity(parent, c)
		if s > 0 {
			n0 := int(math.Ceil(float64(minSS) / s))
			cand[minCap(n0, parent)] = struct{}{}
		}
	}
	var sols []localSolution
	for n0 := range cand {
		// Per-child option: cost of topping this child up, and its prob.
		type opt struct {
			cost int
			prob float64
			key  string
		}
		var opts []opt
		baseProb := 0.0
		sizes := map[string]int{}
		if n0 > 0 {
			sizes[parent.Rule.Key()] = n0
		}
		for _, c := range kids {
			contrib := int(math.Floor(float64(n0) * selectivity(parent, c)))
			need := minSS - contrib
			capacity := minCap(minSS, c)
			if capacity < minSS {
				// The child's whole coverage fits below minSS: holding all
				// of it gives an exhaustive (exact) sample, which satisfies
				// any drill-down on it.
				need = capacity - contrib
			}
			if need <= 0 {
				baseProb += c.Prob
				continue
			}
			opts = append(opts, opt{cost: need, prob: c.Prob, key: c.Rule.Key()})
		}
		// Enumerate subsets of top-ups (d is small — at most k displayed
		// children — so 2^d stays tiny; this matches the paper's ≤ 3^d
		// bound of category assignments per group).
		for mask := 0; mask < 1<<len(opts); mask++ {
			s := localSolution{cost: n0, prob: baseProb, sizes: map[string]int{}}
			for k, v := range sizes {
				s.sizes[k] = v
			}
			for i, o := range opts {
				if mask&(1<<i) != 0 {
					s.cost += o.cost
					s.prob += o.prob
					s.sizes[o.key] += o.cost
				}
			}
			sols = append(sols, s)
		}
	}
	return paretoPrune(sols)
}

// paretoPrune drops dominated solutions (another solution with ≤ cost and
// ≥ prob) to keep the DP small.
func paretoPrune(sols []localSolution) []localSolution {
	sort.Slice(sols, func(i, j int) bool {
		if sols[i].cost != sols[j].cost {
			return sols[i].cost < sols[j].cost
		}
		return sols[i].prob > sols[j].prob
	})
	var out []localSolution
	bestProb := math.Inf(-1)
	for _, s := range sols {
		if s.prob > bestProb {
			out = append(out, s)
			bestProb = s.prob
		}
	}
	return out
}

// AllocateBrute solves Problem 5 exactly by exhaustive search over
// candidate sizes, for cross-checking the DP on tiny instances in tests.
// Candidate n values per node are 0, minSS, and the ceil(minSS/S) points.
func AllocateBrute(root *TreeNode, m, minSS int) (Allocation, float64) {
	var nodes []*TreeNode
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		nodes = append(nodes, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)

	cands := make([][]int, len(nodes))
	for i, n := range nodes {
		set := map[int]struct{}{0: {}, minCap(minSS, n): {}}
		for _, c := range n.Children {
			if len(c.Children) == 0 {
				if s := selectivity(n, c); s > 0 {
					set[minCap(int(math.Ceil(float64(minSS)/s)), n)] = struct{}{}
				}
			}
		}
		for v := range set {
			cands[i] = append(cands[i], v)
		}
		sort.Ints(cands[i])
	}

	parentOf := map[*TreeNode]*TreeNode{}
	var link func(n *TreeNode)
	link = func(n *TreeNode) {
		for _, c := range n.Children {
			parentOf[c] = n
			link(c)
		}
	}
	link(root)

	bestProb := -1.0
	var bestAlloc Allocation
	sizes := make([]int, len(nodes))
	var rec func(i, used int)
	rec = func(i, used int) {
		if used > m {
			return
		}
		if i == len(nodes) {
			prob := 0.0
			for j, n := range nodes {
				if len(n.Children) > 0 {
					continue
				}
				ess := float64(sizes[j])
				if p := parentOf[n]; p != nil {
					for jj, nn := range nodes {
						if nn == p {
							ess += float64(sizes[jj]) * selectivity(p, n)
						}
					}
				}
				satisfied := ess >= float64(minSS)
				if n.Count > 0 && n.Count < float64(minSS) && ess >= n.Count {
					satisfied = true // exhaustive sample
				}
				if satisfied {
					prob += n.Prob
				}
			}
			if prob > bestProb || (prob == bestProb && bestAlloc != nil && used < bestAlloc.TotalSize()) {
				bestProb = prob
				bestAlloc = Allocation{}
				for j, n := range nodes {
					if sizes[j] > 0 {
						bestAlloc[n.Rule.Key()] = sizes[j]
					}
				}
			}
			return
		}
		for _, v := range cands[i] {
			sizes[i] = v
			rec(i+1, used+v)
		}
		sizes[i] = 0
	}
	rec(0, 0)
	return bestAlloc, bestProb
}

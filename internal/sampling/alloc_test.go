package sampling

import (
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
)

// makeTree builds a root with the given child counts: each entry of shape
// is the number of leaf children under one first-level internal node...
// For the tests we mostly need root → leaves and root → internal → leaves.

// leafNode is a convenience constructor.
func leafNode(key int, prob, count float64) *TreeNode {
	return &TreeNode{Rule: rule.Trivial(4).With(0, rule.Value(key)), Prob: prob, Count: count}
}

func TestAllocateDPDegenerate(t *testing.T) {
	root := &TreeNode{Rule: rule.Trivial(4), Prob: 1, Count: 100000}
	alloc, prob, err := AllocateDP(root, 5000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prob != 1 {
		t.Fatalf("prob = %g, want 1 (budget affords the root sample)", prob)
	}
	if got := alloc[root.Rule.Key()]; got != 1000 {
		t.Fatalf("root allocation = %d, want minSS", got)
	}
}

func TestAllocateDPInvalidInput(t *testing.T) {
	root := &TreeNode{Rule: rule.Trivial(4), Count: 1000}
	if _, _, err := AllocateDP(root, -1, 100); err == nil {
		t.Error("negative budget must fail")
	}
	if _, _, err := AllocateDP(root, 100, 0); err == nil {
		t.Error("minSS=0 must fail")
	}
}

func TestAllocateDPPrefersParentSharing(t *testing.T) {
	// Three children each covering half the parent (selectivity 1/2): a
	// parent sample of 2·minSS = 2000 gives every child ess = minSS, while
	// dedicated samples would cost 3·minSS = 3000. With budget 2500 only
	// the shared solution satisfies all three leaves.
	root := &TreeNode{Rule: rule.Trivial(4), Count: 90000}
	for i := 0; i < 3; i++ {
		c := leafNode(i, 1.0/3, 45000) // selectivity 1/2 each
		root.Children = append(root.Children, c)
	}
	alloc, prob, err := AllocateDP(root, 2500, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prob < 0.999 {
		t.Fatalf("prob = %g, want 1: parent sharing covers all leaves", prob)
	}
	if got := alloc[root.Rule.Key()]; got != 2000 {
		t.Fatalf("parent allocation = %d, want 2000 (shared)", got)
	}
}

func TestAllocateDPRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		root := randomTree(rng)
		m := 500 + rng.Intn(5000)
		minSS := 100 + rng.Intn(900)
		alloc, _, err := AllocateDP(root, m, minSS)
		if err != nil {
			t.Fatal(err)
		}
		if alloc.TotalSize() > m {
			t.Fatalf("allocation %d exceeds budget %d", alloc.TotalSize(), m)
		}
	}
}

func TestAllocateDPMatchesBruteForce(t *testing.T) {
	// On small trees the DP must achieve the brute-force optimum of the
	// parent-or-self model (both use the same candidate size grid).
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		root := randomTree(rng)
		m := 1000 + rng.Intn(4000)
		minSS := 200 + rng.Intn(500)
		_, dpProb, err := AllocateDP(root, m, minSS)
		if err != nil {
			t.Fatal(err)
		}
		_, bruteProb := AllocateBrute(root, m, minSS)
		if dpProb < bruteProb-1e-9 {
			t.Fatalf("trial %d: DP prob %g < brute %g (m=%d minSS=%d)",
				trial, dpProb, bruteProb, m, minSS)
		}
	}
}

func TestAllocateDPZeroBudget(t *testing.T) {
	root := &TreeNode{Rule: rule.Trivial(4), Count: 10000}
	root.Children = append(root.Children, leafNode(0, 1, 5000))
	alloc, prob, err := AllocateDP(root, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prob != 0 || alloc.TotalSize() != 0 {
		t.Fatalf("zero budget: prob=%g size=%d", prob, alloc.TotalSize())
	}
}

func TestAllocateDPSmallCoverageLeaf(t *testing.T) {
	// A leaf covering fewer than minSS tuples is satisfied by holding its
	// whole coverage (an exhaustive sample answers exactly).
	root := &TreeNode{Rule: rule.Trivial(4), Count: 100000}
	tiny := leafNode(0, 1, 300) // coverage 300 < minSS 1000
	root.Children = append(root.Children, tiny)
	alloc, prob, err := AllocateDP(root, 400, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prob != 1 {
		t.Fatalf("prob = %g, want 1 (exhaustive sample of tiny leaf)", prob)
	}
	if got := alloc[tiny.Rule.Key()]; got == 0 || got > 300 {
		t.Fatalf("tiny leaf allocation = %d, want ≤300 and >0", got)
	}
}

func TestAllocateConvexBudgetAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		root := randomTree(rng)
		m := 1000 + rng.Intn(4000)
		minSS := 200 + rng.Intn(500)
		alloc, obj := AllocateConvex(root, m, minSS, ConvexOptions{Iterations: 200})
		if alloc.TotalSize() > m {
			t.Fatalf("convex allocation %d exceeds budget %d", alloc.TotalSize(), m)
		}
		if obj < -1e-9 || obj > 1+1e-9 {
			t.Fatalf("hinge objective %g out of [0,1]", obj)
		}
	}
}

func TestAllocateConvexSaturatesSingleLeaf(t *testing.T) {
	root := &TreeNode{Rule: rule.Trivial(4), Count: 100000}
	leaf := leafNode(0, 1, 50000)
	root.Children = append(root.Children, leaf)
	alloc, obj := AllocateConvex(root, 10000, 1000, ConvexOptions{})
	if obj < 0.999 {
		t.Fatalf("objective = %g, want ≈1 (budget is ample)", obj)
	}
	// The leaf must reach ess ≥ minSS through own + parent/2 allocation.
	ess := float64(alloc[leaf.Rule.Key()]) + float64(alloc[root.Rule.Key()])*0.5
	if ess < 999 {
		t.Fatalf("leaf ess = %g < minSS", ess)
	}
}

func TestProjectSimplex(t *testing.T) {
	v := []float64{5, 3, -2}
	projectSimplex(v, 100)
	if v[2] != 0 {
		t.Fatal("negatives must clamp to 0")
	}
	if v[0] != 5 || v[1] != 3 {
		t.Fatal("under-budget vector must be unchanged apart from clamping")
	}
	w := []float64{6, 4, 2}
	projectSimplex(w, 6)
	sum := w[0] + w[1] + w[2]
	if sum > 6+1e-9 {
		t.Fatalf("projection sum %g exceeds budget", sum)
	}
	// Projection preserves ordering.
	if !(w[0] >= w[1] && w[1] >= w[2]) {
		t.Fatalf("projection broke ordering: %v", w)
	}
}

func TestSuggestMinSS(t *testing.T) {
	// |C|=10 columns, smallest cardinality 5, ρ=100 → ≈ 100·(1−x)/x with
	// x = 1/50 → ≈ 4900.
	got := SuggestMinSS(10, 5, 100)
	if got < 4800 || got > 5000 {
		t.Fatalf("SuggestMinSS = %d, want ≈4900", got)
	}
	if SuggestMinSS(10, 5, 0) != SuggestMinSS(10, 5, 100) {
		t.Fatal("rho default should be 100")
	}
}

func TestRelativeError(t *testing.T) {
	// x=0.5, size=100 → sqrt(0.5/50) = 0.1.
	if got := RelativeError(0.5, 100); got < 0.099 || got > 0.101 {
		t.Fatalf("RelativeError = %g", got)
	}
	if !isInf(RelativeError(0, 100)) || !isInf(RelativeError(0.5, 0)) {
		t.Fatal("degenerate inputs must be +Inf")
	}
}

func isInf(f float64) bool { return f > 1e300 }

// randomTree builds a root with 1–3 internal children each holding 0–3
// leaf children plus 0–3 direct leaf children, random probabilities
// (normalized) and coherent counts.
func randomTree(rng *rand.Rand) *TreeNode {
	root := &TreeNode{Rule: rule.Trivial(6), Count: 50000 + float64(rng.Intn(100000))}
	key := 0
	nextRule := func() rule.Rule {
		key++
		return rule.Trivial(6).With(key%6, rule.Value(key))
	}
	var leaves []*TreeNode
	for i := 0; i < 1+rng.Intn(3); i++ {
		mid := &TreeNode{Rule: nextRule(), Count: root.Count * (0.1 + 0.4*rng.Float64())}
		for j := 0; j < rng.Intn(4); j++ {
			l := &TreeNode{Rule: nextRule(), Count: mid.Count * (0.1 + 0.6*rng.Float64())}
			mid.Children = append(mid.Children, l)
			leaves = append(leaves, l)
		}
		root.Children = append(root.Children, mid)
		if len(mid.Children) == 0 {
			leaves = append(leaves, mid)
		}
	}
	for i := 0; i < rng.Intn(4); i++ {
		l := &TreeNode{Rule: nextRule(), Count: root.Count * (0.05 + 0.3*rng.Float64())}
		root.Children = append(root.Children, l)
		leaves = append(leaves, l)
	}
	total := 0.0
	for _, l := range leaves {
		l.Prob = rng.Float64()
		total += l.Prob
	}
	for _, l := range leaves {
		l.Prob /= total
	}
	return root
}

package sampling

import (
	"math"
	"sort"
)

// This file implements the Section 4.2 alternative allocator: replace the
// step objective 1[ess ≥ minSS] with the hinge min(1, ess/minSS) and relax
// sample sizes to reals, yielding a concave maximization over the simplex
// {n ≥ 0, Σn ≤ M} solvable by projected (sub)gradient ascent. Unlike the
// DP, it handles arbitrary selectivity structure (a leaf may draw on every
// ancestor), at the cost the paper notes: hinge credit accrues below minSS,
// so leaves may end up with large-but-insufficient ess.

// ConvexOptions tunes the gradient ascent.
type ConvexOptions struct {
	// Iterations of projected gradient ascent; 0 means 500.
	Iterations int
	// Step is the initial step size in tuples; 0 means M/10.
	Step float64
}

// AllocateConvex solves the hinge-loss relaxation (Problem 6, negated back
// to maximization) over the full ancestor selectivity structure and returns
// integer sizes (rounded down to respect the budget) plus the relaxed
// objective value Σ p·min(1, ess/minSS).
func AllocateConvex(root *TreeNode, m, minSS int, opts ConvexOptions) (Allocation, float64) {
	if opts.Iterations <= 0 {
		opts.Iterations = 500
	}
	if opts.Step <= 0 {
		opts.Step = float64(m) / 10
		if opts.Step < 1 {
			opts.Step = 1
		}
	}

	// Collect nodes; precompute per-leaf contribution vectors S(anc, leaf)
	// over all ancestors (and self, with S=1).
	var nodes []*TreeNode
	index := map[*TreeNode]int{}
	var walk func(n *TreeNode, anc []*TreeNode)
	type leafInfo struct {
		prob    float64
		sources []int     // node indices contributing to ess
		selects []float64 // matching S values
	}
	var leaves []leafInfo
	walk = func(n *TreeNode, anc []*TreeNode) {
		index[n] = len(nodes)
		nodes = append(nodes, n)
		anc = append(anc, n)
		if len(n.Children) == 0 {
			li := leafInfo{prob: n.Prob}
			for _, a := range anc {
				s := 1.0
				if a != n {
					s = selectivityPath(a, n)
				}
				if s > 0 {
					li.sources = append(li.sources, index[a])
					li.selects = append(li.selects, s)
				}
			}
			leaves = append(leaves, li)
			return
		}
		for _, c := range n.Children {
			walk(c, anc)
		}
	}
	walk(root, nil)

	n := make([]float64, len(nodes))
	objective := func() float64 {
		obj := 0.0
		for _, l := range leaves {
			ess := 0.0
			for i, src := range l.sources {
				ess += n[src] * l.selects[i]
			}
			obj += l.prob * math.Min(1, ess/float64(minSS))
		}
		return obj
	}

	step := opts.Step
	bestObj := objective()
	bestN := append([]float64{}, n...)
	for it := 0; it < opts.Iterations; it++ {
		grad := make([]float64, len(nodes))
		gmax := 0.0
		for _, l := range leaves {
			ess := 0.0
			for i, src := range l.sources {
				ess += n[src] * l.selects[i]
			}
			if ess >= float64(minSS) {
				continue // flat region of the hinge
			}
			for i, src := range l.sources {
				grad[src] += l.prob * l.selects[i] / float64(minSS)
				if grad[src] > gmax {
					gmax = grad[src]
				}
			}
		}
		if gmax == 0 {
			break // every leaf saturated: a global optimum of the hinge
		}
		// Normalize so the largest component moves by `step` tuples;
		// gradient magnitudes (p·S/minSS ≈ 1e-3) are otherwise far too
		// small to traverse a tuple-scale budget.
		for i := range n {
			n[i] += step * grad[i] / gmax
		}
		projectSimplex(n, float64(m))
		if obj := objective(); obj > bestObj {
			bestObj = obj
			copy(bestN, n)
		}
		step *= 0.97 // diminishing steps for convergence
	}

	alloc := Allocation{}
	for i, node := range nodes {
		v := int(math.Floor(bestN[i]))
		if node.Count > 0 && float64(v) > node.Count {
			v = int(node.Count)
		}
		if v > 0 {
			alloc[node.Rule.Key()] = v
		}
	}
	return alloc, bestObj
}

// selectivityPath returns S(anc, leaf) = Count(leaf)/Count(anc) for an
// ancestor anc of leaf.
func selectivityPath(anc, leaf *TreeNode) float64 {
	if anc.Count <= 0 {
		return 0
	}
	s := leaf.Count / anc.Count
	if s > 1 {
		s = 1
	}
	return s
}

// projectSimplex projects v onto {x ≥ 0, Σx ≤ budget} in Euclidean norm
// (the standard sorted-threshold algorithm; only active when the budget is
// exceeded).
func projectSimplex(v []float64, budget float64) {
	for i := range v {
		if v[i] < 0 {
			v[i] = 0
		}
	}
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if sum <= budget {
		return
	}
	sorted := append([]float64{}, v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	cum, theta := 0.0, 0.0
	for i, x := range sorted {
		cum += x
		t := (cum - budget) / float64(i+1)
		if i+1 == len(sorted) || sorted[i+1] <= t {
			theta = t
			break
		}
	}
	for i := range v {
		v[i] = math.Max(0, v[i]-theta)
	}
}

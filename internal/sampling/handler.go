package sampling

import (
	"fmt"
	"math/rand"
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/storage"
)

// Handler is the SampleHandler of Section 4.3: it owns a set of in-memory
// samples within a tuple budget M and serves drill-down requests via Find,
// Combine, or Create. It is not safe for concurrent use; the drill session
// serializes interactions as a UI would.
type Handler struct {
	store *storage.Store
	// M is the memory capacity in tuples across all samples.
	M int
	// MinSS is the minimum sample size BRS may run on (Section 4.1).
	MinSS int

	samples map[string]*Sample
	rng     *rand.Rand
	clock   int64

	// stats
	finds, combines, creates int
}

// NewHandler builds a handler over the store with memory capacity m tuples
// and minimum sample size minSS. It returns an error when the budget cannot
// hold even one minimum-size sample, which would force a Create on every
// interaction and defeat the design.
func NewHandler(store *storage.Store, m, minSS int, rng *rand.Rand) (*Handler, error) {
	if minSS <= 0 {
		return nil, fmt.Errorf("sampling: minSS must be positive, got %d", minSS)
	}
	if m < minSS {
		return nil, fmt.Errorf("sampling: memory budget %d below minSS %d", m, minSS)
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Handler{
		store:   store,
		M:       m,
		MinSS:   minSS,
		samples: make(map[string]*Sample),
		rng:     rng,
	}, nil
}

// Stats reports how many requests each mechanism served.
func (h *Handler) Stats() (finds, combines, creates int) {
	return h.finds, h.combines, h.creates
}

// Samples returns the resident samples (for inspection and tests).
func (h *Handler) Samples() []*Sample {
	out := make([]*Sample, 0, len(h.samples))
	for _, s := range h.samples {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Filter.Key() < out[j].Filter.Key() })
	return out
}

// MemoryUsed returns the total resident sample size in tuples.
func (h *Handler) MemoryUsed() int {
	used := 0
	for _, s := range h.samples {
		used += s.Size()
	}
	return used
}

// GetSample returns a uniform sample of at least MinSS tuples covered by r,
// trying Find, then Combine, then Create — exactly the Section 4.3 cascade.
// The returned View's Scale converts sample counts to master-table
// estimates. When the master table itself covers fewer than MinSS tuples of
// r, the view holds all of them with Scale 1 (exact).
func (h *Handler) GetSample(r rule.Rule) (*View, error) {
	if v := h.find(r); v != nil {
		h.finds++
		return v, nil
	}
	if v := h.combine(r); v != nil {
		h.combines++
		return v, nil
	}
	v, err := h.create(r, h.MinSS)
	if err != nil {
		return nil, err
	}
	h.creates++
	return v, nil
}

// find serves r from a resident sample whose filter is exactly r and which
// holds at least MinSS tuples (or the filter's entire coverage, which is
// even better — the estimate is exact).
func (h *Handler) find(r rule.Rule) *View {
	s, ok := h.samples[r.Key()]
	if !ok {
		return nil
	}
	if s.Size() < h.MinSS && s.Size() < s.ExactCount {
		return nil
	}
	h.touch(s)
	return h.viewOf(s.sortedRows(), s.Scale(), Find)
}

// combine unions the r-covered tuples of every resident sample whose filter
// is a sub-rule of r. Each such sample covers a superset of r's tuples, so
// every r-tuple had the same inclusion probability rate_i in sample i; the
// deduplicated union therefore includes each r-tuple independently with
// probability p* = 1 − Π(1 − rate_i) — a uniform sample with scale 1/p*.
func (h *Handler) combine(r rule.Rule) *View {
	t := h.store.Table()
	pMiss := 1.0
	union := make(map[int]struct{})
	var contributors []*Sample
	for _, s := range h.samples {
		if !s.Filter.SubRuleOf(r) {
			continue
		}
		rate := s.Rate()
		if rate <= 0 {
			continue
		}
		for _, i := range s.Rows {
			if t.Covers(r, i) {
				union[i] = struct{}{}
			}
		}
		pMiss *= 1 - rate
		contributors = append(contributors, s)
	}
	pInclude := 1 - pMiss
	if pInclude <= 0 {
		return nil
	}
	// Accept when the union reaches MinSS, or when some contributor's rate
	// is 1 (its whole coverage is resident, so the union is exhaustive and
	// the estimate exact even if small).
	exhaustive := pMiss == 0
	if len(union) < h.MinSS && !exhaustive {
		return nil
	}
	rows := make([]int, 0, len(union))
	for i := range union {
		rows = append(rows, i)
	}
	sort.Ints(rows)
	for _, s := range contributors {
		h.touch(s)
	}
	return h.viewOf(rows, 1/pInclude, Combine)
}

// create scans the store once, installing a fresh sample for r of up to
// target tuples (at least MinSS), evicting least-recently-used samples if
// the budget requires.
func (h *Handler) create(r rule.Rule, target int) (*View, error) {
	if target < h.MinSS {
		target = h.MinSS
	}
	if target > h.M {
		target = h.M
	}
	s := CreateSample(h.store, r, target, h.rng)
	h.install(s)
	return h.viewOf(s.sortedRows(), s.Scale(), Create), nil
}

// install adds s, evicting LRU samples (never s itself) until the budget
// holds.
func (h *Handler) install(s *Sample) {
	h.touch(s)
	h.samples[s.Filter.Key()] = s
	for h.MemoryUsed() > h.M {
		var victim *Sample
		for _, c := range h.samples {
			if c == s {
				continue
			}
			if victim == nil || c.lastUsed < victim.lastUsed {
				victim = c
			}
		}
		if victim == nil {
			// Only s is resident and still over budget: trim it.
			over := h.MemoryUsed() - h.M
			s.Rows = s.Rows[:len(s.Rows)-over]
			return
		}
		delete(h.samples, victim.Filter.Key())
	}
}

func (h *Handler) touch(s *Sample) {
	h.clock++
	s.lastUsed = h.clock
}

// viewOf wraps an ascending row set as a sample view. Sorted rows are the
// serving contract: uniformity does not depend on order, and ascending
// rows let BRS's cost planner answer candidate counting by intersecting
// the master table's posting lists with the sample (per-column sample
// postings, materialization-free) whenever that reads fewer entries than
// scanning the sample. Find/Create serve Sample.sortedRows; Combine's
// deduplicated union is sorted as it is built.
func (h *Handler) viewOf(rows []int, scale float64, m Method) *View {
	// Zero-copy: the view shares the master table's column arrays, so
	// serving a sample never materializes its tuples.
	tab := h.store.Table().ViewOf(rows)
	return &View{
		Tab:            tab,
		Scale:          scale,
		Method:         m,
		EstimatedCount: float64(tab.NumRows()) * scale,
	}
}

// EstimateCount estimates Count(r) on the master table from resident
// samples without scanning, returning ok=false when no resident sample's
// filter covers r's slice. When several samples qualify, the largest one
// wins (lowest-variance estimator).
func (h *Handler) EstimateCount(r rule.Rule) (float64, bool) {
	t := h.store.Table()
	bestSize, est, ok := -1, 0.0, false
	for _, s := range h.samples {
		if !s.Filter.SubRuleOf(r) || s.Rate() <= 0 || s.Size() <= bestSize {
			continue
		}
		n := 0
		for _, i := range s.Rows {
			if t.Covers(r, i) {
				n++
			}
		}
		bestSize, est, ok = s.Size(), float64(n)*s.Scale(), true
	}
	return est, ok
}

package sampling

import (
	"math"
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
)

// grid builds a 2-column table: colA cycles over aVals values, colB over
// bVals, giving every (a,b) combination n/(aVals*bVals) rows.
func grid(n, aVals, bVals int) *table.Table {
	b := table.MustBuilder([]string{"A", "B"}, nil)
	for i := 0; i < n; i++ {
		b.MustAddRow([]string{
			string(rune('a' + i%aVals)),
			string(rune('A' + (i/aVals)%bVals)),
		})
	}
	return b.Build()
}

func TestNewHandlerValidation(t *testing.T) {
	store := storage.NewStore(grid(100, 2, 2))
	if _, err := NewHandler(store, 100, 0, nil); err == nil {
		t.Error("minSS=0 must fail")
	}
	if _, err := NewHandler(store, 10, 100, nil); err == nil {
		t.Error("M < minSS must fail")
	}
	if _, err := NewHandler(store, 100, 50, nil); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestCascadeCreateThenFind(t *testing.T) {
	tab := grid(10000, 4, 4)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 5000, 500, NewTestRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	trivial := rule.Trivial(2)

	v1, err := h.GetSample(trivial)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Method != Create {
		t.Fatalf("first access = %v, want Create", v1.Method)
	}
	if v1.Tab.NumRows() < 500 {
		t.Fatalf("sample too small: %d", v1.Tab.NumRows())
	}
	v2, err := h.GetSample(trivial)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Method != Find {
		t.Fatalf("second access = %v, want Find", v2.Method)
	}
	if scans := store.Stats().FullScans; scans != 1 {
		t.Fatalf("Find must not rescan: %d scans", scans)
	}
	finds, _, creates := h.Stats()
	if finds != 1 || creates != 1 {
		t.Fatalf("stats finds=%d creates=%d", finds, creates)
	}
}

func TestCombineFromTrivialSample(t *testing.T) {
	// A large sample of the whole table can serve a drill-down on a rule
	// covering 1/4 of it without a new scan.
	tab := grid(40000, 4, 4)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 20000, 1000, NewTestRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	trivial := rule.Trivial(2)
	if _, err := h.GetSample(trivial); err != nil {
		t.Fatal(err)
	}
	// Force the trivial sample big enough: re-create at target M.
	if _, err := h.create(trivial, 20000); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()

	sub, _ := tab.EncodeRule(map[string]string{"A": "a"}) // covers 10000 rows
	v, err := h.GetSample(sub)
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != Combine {
		t.Fatalf("access = %v, want Combine", v.Method)
	}
	if store.Stats().FullScans != 0 {
		t.Fatal("Combine must not scan")
	}
	// Estimate accuracy: true count is 10000; the combined sample's scaled
	// estimate should be within a few percent (it is a ~5000-row sample).
	if math.Abs(v.EstimatedCount-10000) > 600 {
		t.Fatalf("Combine estimate %g too far from 10000", v.EstimatedCount)
	}
	// Every view tuple must be covered by the request.
	for i := 0; i < v.Tab.NumRows(); i++ {
		if !v.Tab.Covers(sub, i) {
			t.Fatal("combined view contains uncovered tuple")
		}
	}
}

func TestCombineScaleExactForFullSample(t *testing.T) {
	// When a resident sample holds the *entire* table (rate 1), combining
	// for any sub-rule is exhaustive and exact.
	tab := grid(2000, 2, 2)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 4000, 100, NewTestRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.create(rule.Trivial(2), 4000); err != nil {
		t.Fatal(err)
	}
	sub, _ := tab.EncodeRule(map[string]string{"A": "a", "B": "A"})
	v, err := h.GetSample(sub)
	if err != nil {
		t.Fatal(err)
	}
	if v.Scale != 1 {
		t.Fatalf("scale = %g, want 1 for exhaustive combine", v.Scale)
	}
	if int(v.EstimatedCount) != tab.Count(sub) {
		t.Fatalf("estimate %g != exact %d", v.EstimatedCount, tab.Count(sub))
	}
}

func TestCreateWhenCombineInsufficient(t *testing.T) {
	// A tiny resident sample cannot serve a selective rule; the handler
	// must fall back to Create.
	tab := grid(50000, 10, 10)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 10000, 2000, NewTestRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.GetSample(rule.Trivial(2)); err != nil {
		t.Fatal(err)
	}
	sub, _ := tab.EncodeRule(map[string]string{"A": "a"}) // 5000 rows; ~200 in a 2000-sample
	v, err := h.GetSample(sub)
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != Create {
		t.Fatalf("access = %v, want Create", v.Method)
	}
	if v.Tab.NumRows() < 2000 {
		t.Fatalf("created sample too small: %d", v.Tab.NumRows())
	}
}

func TestMemoryBudgetAndEviction(t *testing.T) {
	tab := grid(100000, 10, 10)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 3000, 1000, NewTestRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	// Create samples for several disjoint rules; the budget (3 samples)
	// must force eviction of the least recently used.
	for _, val := range []string{"a", "b", "c", "d", "e"} {
		r, _ := tab.EncodeRule(map[string]string{"A": val})
		if _, err := h.GetSample(r); err != nil {
			t.Fatal(err)
		}
		if used := h.MemoryUsed(); used > 3000 {
			t.Fatalf("memory used %d exceeds budget 3000", used)
		}
	}
	if got := len(h.Samples()); got > 3 {
		t.Fatalf("%d samples resident, budget allows 3", got)
	}
	// The most recent rule must still be resident (LRU evicts old ones).
	rE, _ := tab.EncodeRule(map[string]string{"A": "e"})
	store.ResetStats()
	v, err := h.GetSample(rE)
	if err != nil {
		t.Fatal(err)
	}
	if v.Method != Find || store.Stats().FullScans != 0 {
		t.Fatalf("most recent sample should be served by Find, got %v", v.Method)
	}
}

func TestEstimateCount(t *testing.T) {
	tab := grid(20000, 4, 4)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 10000, 1000, NewTestRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.EstimateCount(rule.Trivial(2)); ok {
		t.Fatal("estimate without samples must report !ok")
	}
	if _, err := h.create(rule.Trivial(2), 5000); err != nil {
		t.Fatal(err)
	}
	sub, _ := tab.EncodeRule(map[string]string{"A": "a"})
	est, ok := h.EstimateCount(sub)
	if !ok {
		t.Fatal("estimate should be available")
	}
	if math.Abs(est-5000) > 400 {
		t.Fatalf("estimate %g too far from 5000", est)
	}
}

func TestCombineEstimateUnbiased(t *testing.T) {
	// Average the Combine estimate over many RNG seeds; the mean must be
	// close to the true count (uniformity of the deduplicated union).
	tab := grid(20000, 4, 4)
	truth := 5000.0
	sub, _ := tab.EncodeRule(map[string]string{"A": "a"})
	sum := 0.0
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		store := storage.NewStore(tab)
		h, err := NewHandler(store, 8000, 500, NewTestRNG(seed))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := h.create(rule.Trivial(2), 4000); err != nil {
			t.Fatal(err)
		}
		v, err := h.GetSample(sub)
		if err != nil {
			t.Fatal(err)
		}
		if v.Method != Combine {
			t.Fatalf("seed %d: method %v", seed, v.Method)
		}
		sum += v.EstimatedCount
	}
	mean := sum / trials
	if math.Abs(mean-truth)/truth > 0.03 {
		t.Fatalf("mean Combine estimate %g deviates >3%% from %g", mean, truth)
	}
}

package sampling

import "math"

// Confidence intervals on sampled counts (Section 4.3 notes that the
// uniform samples admit confidence intervals on every displayed count;
// the prototype did not display them — we do).
//
// For a uniform sample with per-tuple inclusion probability p, the number
// of sampled tuples matching a rule is Binomial(C, p) where C is the true
// count, so the estimate ĉ = n/p has standard deviation ≈ √(n(1−p))/p.

// CountInterval returns the ±z standard-error interval around the scaled
// count estimate for a rule matching n sample tuples under inclusion
// probability p ∈ (0, 1]. z = 1.96 gives the conventional 95% interval.
// The lower bound is clamped at n (the matches themselves are real tuples).
func CountInterval(n int, p, z float64) (lo, hi float64) {
	if p <= 0 {
		return 0, math.Inf(1)
	}
	if p >= 1 {
		return float64(n), float64(n) // exhaustive sample: exact
	}
	est := float64(n) / p
	se := math.Sqrt(float64(n)*(1-p)) / p
	lo = est - z*se
	if lo < float64(n) {
		lo = float64(n)
	}
	hi = est + z*se
	return lo, hi
}

// Interval95 returns the 95% confidence interval on a view's estimated
// count for a rule matching n of its tuples.
func (v *View) Interval95(n int) (lo, hi float64) {
	if v.Scale <= 0 {
		return 0, math.Inf(1)
	}
	return CountInterval(n, 1/v.Scale, 1.96)
}

package sampling

import "math"

// Confidence intervals on sampled counts (Section 4.3 notes that the
// uniform samples admit confidence intervals on every displayed count;
// the prototype did not display them — we do).
//
// For a uniform sample with per-tuple inclusion probability p, the number
// of sampled tuples matching a rule is Binomial(C, p) where C is the true
// count, so the estimate ĉ = n/p has standard deviation ≈ √(n(1−p))/p.

// CountInterval returns the ±z standard-error interval around the scaled
// count estimate for a rule matching n sample tuples under inclusion
// probability p ∈ (0, 1]. z = 1.96 gives the conventional 95% interval.
// The lower bound is clamped at n (the matches themselves are real tuples).
//
// n == 0 is not evidence of absence: the normal approximation collapses to
// a zero-width interval there, claiming certainty exactly where the sample
// says the least. The rule of three applies instead — zero matches under
// inclusion probability p rules out true counts above ≈ 3/p at 95%
// confidence (P(no match) = (1−p)^C ≤ 0.05 ⇒ C ≲ 3/p) — so absent rules
// admit the mass they could be hiding. Note the n == 0 bound is calibrated
// at 95% regardless of z; every caller displays 95% intervals today.
func CountInterval(n int, p, z float64) (lo, hi float64) {
	if p <= 0 {
		return 0, math.Inf(1)
	}
	if p >= 1 {
		return float64(n), float64(n) // exhaustive sample: exact
	}
	if n == 0 {
		return 0, 3 / p
	}
	est := float64(n) / p
	se := math.Sqrt(float64(n)*(1-p)) / p
	lo = est - z*se
	if lo < float64(n) {
		lo = float64(n)
	}
	hi = est + z*se
	return lo, hi
}

// ClampUpper caps an interval's upper bound at the enclosing (parent)
// bound: a child rule cannot cover more mass than the view it was searched
// in holds, however wide the raw standard-error band is. The interval
// stays well-formed (hi never drops below lo; lo is already a hard lower
// bound on the true count).
func ClampUpper(lo, hi, bound float64) (float64, float64) {
	if hi > bound {
		hi = bound
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Interval95 returns the 95% confidence interval on a view's estimated
// count for a rule matching n of its tuples, clamped to the view's own
// scaled size (the enclosing bound: every tuple the rule covers lies in
// the view).
func (v *View) Interval95(n int) (lo, hi float64) {
	if v.Scale <= 0 {
		return 0, math.Inf(1)
	}
	lo, hi = CountInterval(n, 1/v.Scale, 1.96)
	if v.EstimatedCount > 0 {
		return ClampUpper(lo, hi, v.EstimatedCount)
	}
	return lo, hi
}

package sampling

import (
	"math"
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/storage"
)

func TestCountIntervalExhaustive(t *testing.T) {
	lo, hi := CountInterval(42, 1, 1.96)
	if lo != 42 || hi != 42 {
		t.Fatalf("exhaustive interval = [%g, %g], want [42, 42]", lo, hi)
	}
}

func TestCountIntervalDegenerate(t *testing.T) {
	lo, hi := CountInterval(10, 0, 1.96)
	if lo != 0 || !math.IsInf(hi, 1) {
		t.Fatalf("p=0 interval = [%g, %g]", lo, hi)
	}
}

func TestCountIntervalContainsEstimate(t *testing.T) {
	for _, n := range []int{1, 10, 100, 10000} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
			lo, hi := CountInterval(n, p, 1.96)
			est := float64(n) / p
			if est < lo-1e-9 || est > hi+1e-9 {
				t.Fatalf("estimate %g outside [%g, %g] (n=%d p=%g)", est, lo, hi, n, p)
			}
			if lo < float64(n) {
				t.Fatalf("lower bound %g below observed matches %d", lo, n)
			}
			if hi < lo {
				t.Fatalf("inverted interval [%g, %g]", lo, hi)
			}
		}
	}
}

func TestCountIntervalShrinksWithP(t *testing.T) {
	// Higher inclusion probability → tighter relative interval.
	_, hiSmallP := CountInterval(100, 0.05, 1.96)
	loS, _ := CountInterval(100, 0.05, 1.96)
	widthSmall := (hiSmallP - loS) / (100 / 0.05)
	lo2, hi2 := CountInterval(100, 0.5, 1.96)
	widthBig := (hi2 - lo2) / (100 / 0.5)
	if widthBig >= widthSmall {
		t.Fatalf("relative width %g at p=0.5 not below %g at p=0.05", widthBig, widthSmall)
	}
}

// TestIntervalCoverage empirically validates the 95% interval: sample
// repeatedly, compute intervals for a fixed rule, and require the true
// count to fall inside at least ~90% of the time (binomial slack on 200
// trials).
func TestIntervalCoverage(t *testing.T) {
	tab := stripes(20000, 4) // 5000 per value
	filter, _ := tab.EncodeRule(map[string]string{"A": "a"})
	const trials = 200
	trueCount := 5000.0
	inside := 0
	for seed := int64(0); seed < trials; seed++ {
		store := storage.NewStore(tab)
		s := CreateSample(store, rule.Trivial(1), 2000, NewTestRNG(seed))
		// Count matches of the filter within the sample.
		n := 0
		for _, i := range s.Rows {
			if tab.Covers(filter, i) {
				n++
			}
		}
		lo, hi := CountInterval(n, s.Rate(), 1.96)
		if trueCount >= lo && trueCount <= hi {
			inside++
		}
	}
	if frac := float64(inside) / trials; frac < 0.90 {
		t.Fatalf("95%% interval covered truth only %.1f%% of trials", 100*frac)
	}
}

// TestCountIntervalZeroMatches is the regression test for the empty-sample
// bug: a rule absent from the sample was reported as exactly zero, hiding
// up to 3/p tuples of true mass. The rule-of-three upper bound admits them.
func TestCountIntervalZeroMatches(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.1, 0.5} {
		lo, hi := CountInterval(0, p, 1.96)
		if lo != 0 {
			t.Fatalf("p=%g: lo = %g, want 0", p, lo)
		}
		if want := 3 / p; hi != want {
			t.Fatalf("p=%g: hi = %g, want rule-of-three bound %g", p, hi, want)
		}
	}
	// An exhaustive sample with zero matches really is an exact zero.
	if lo, hi := CountInterval(0, 1, 1.96); lo != 0 || hi != 0 {
		t.Fatalf("exhaustive zero = [%g,%g], want [0,0]", lo, hi)
	}
}

// TestCountIntervalZeroCoverage validates the rule-of-three bound
// empirically: for a rule with true count C, samples at inclusion
// probability p that happen to miss it entirely must still produce an
// upper bound at or above C in ≥ 90% of such trials.
func TestCountIntervalZeroCoverage(t *testing.T) {
	tab := stripes(10000, 100) // 100 rows per value
	filter, _ := tab.EncodeRule(map[string]string{"A": "a"})
	const trueCount = 100.0
	misses, covered := 0, 0
	for seed := int64(0); seed < 400; seed++ {
		store := storage.NewStore(tab)
		s := CreateSample(store, rule.Trivial(1), 100, NewTestRNG(seed)) // p = 0.01
		n := 0
		for _, i := range s.Rows {
			if tab.Covers(filter, i) {
				n++
			}
		}
		if n > 0 {
			continue
		}
		misses++
		if _, hi := CountInterval(0, s.Rate(), 1.96); hi >= trueCount {
			covered++
		}
	}
	if misses == 0 {
		t.Skip("no trial missed the rule entirely")
	}
	if frac := float64(covered) / float64(misses); frac < 0.90 {
		t.Fatalf("rule-of-three bound covered the true count in only %.0f%% of %d empty-sample trials", 100*frac, misses)
	}
}

// TestInterval95ClampedToViewSize is the regression test for the unclamped
// upper bound: on a small skewed sample the ±z band can exceed the
// enclosing view's own scaled size, displaying a child interval wider than
// its parent's count.
func TestInterval95ClampedToViewSize(t *testing.T) {
	// 10 sampled rows at p = 0.02 → estimated view size 500. A rule
	// matching all 10 sample rows has raw hi ≈ 500 + 1.96·√(10·0.98)/0.02
	// ≈ 810, well past the view's own 500.
	v := &View{Scale: 50, EstimatedCount: 500}
	loRaw, hiRaw := CountInterval(10, 1.0/50, 1.96)
	if hiRaw <= v.EstimatedCount {
		t.Fatalf("test premise broken: raw hi %g does not exceed view size %g", hiRaw, v.EstimatedCount)
	}
	lo, hi := v.Interval95(10)
	if lo != loRaw {
		t.Fatalf("clamp moved the lower bound: %g != %g", lo, loRaw)
	}
	if hi != v.EstimatedCount {
		t.Fatalf("hi = %g, want clamped to view size %g", hi, v.EstimatedCount)
	}
	// Intervals already inside the bound are untouched.
	lo2, hi2 := v.Interval95(1)
	wantLo, wantHi := CountInterval(1, 1.0/50, 1.96)
	wantLo, wantHi = ClampUpper(wantLo, wantHi, 500)
	if lo2 != wantLo || hi2 != wantHi {
		t.Fatalf("small-n interval = [%g,%g], want [%g,%g]", lo2, hi2, wantLo, wantHi)
	}
}

func TestClampUpperWellFormed(t *testing.T) {
	if lo, hi := ClampUpper(40, 90, 100); lo != 40 || hi != 90 {
		t.Fatalf("inside bound changed: [%g,%g]", lo, hi)
	}
	if lo, hi := ClampUpper(40, 90, 60); lo != 40 || hi != 60 {
		t.Fatalf("clamp failed: [%g,%g]", lo, hi)
	}
	if lo, hi := ClampUpper(40, 90, 10); lo != 40 || hi != 40 {
		t.Fatalf("bound below lo must collapse to [lo,lo]: [%g,%g]", lo, hi)
	}
}

func TestViewInterval95(t *testing.T) {
	v := &View{Scale: 4} // p = 0.25
	lo, hi := v.Interval95(100)
	wantLo, wantHi := CountInterval(100, 0.25, 1.96)
	if lo != wantLo || hi != wantHi {
		t.Fatalf("Interval95 = [%g,%g], want [%g,%g]", lo, hi, wantLo, wantHi)
	}
	bad := &View{Scale: 0}
	if lo, hi := bad.Interval95(5); lo != 0 || !math.IsInf(hi, 1) {
		t.Fatal("zero-scale view must return a vacuous interval")
	}
}

package sampling

import (
	"math"
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/storage"
)

func TestCountIntervalExhaustive(t *testing.T) {
	lo, hi := CountInterval(42, 1, 1.96)
	if lo != 42 || hi != 42 {
		t.Fatalf("exhaustive interval = [%g, %g], want [42, 42]", lo, hi)
	}
}

func TestCountIntervalDegenerate(t *testing.T) {
	lo, hi := CountInterval(10, 0, 1.96)
	if lo != 0 || !math.IsInf(hi, 1) {
		t.Fatalf("p=0 interval = [%g, %g]", lo, hi)
	}
}

func TestCountIntervalContainsEstimate(t *testing.T) {
	for _, n := range []int{1, 10, 100, 10000} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9} {
			lo, hi := CountInterval(n, p, 1.96)
			est := float64(n) / p
			if est < lo-1e-9 || est > hi+1e-9 {
				t.Fatalf("estimate %g outside [%g, %g] (n=%d p=%g)", est, lo, hi, n, p)
			}
			if lo < float64(n) {
				t.Fatalf("lower bound %g below observed matches %d", lo, n)
			}
			if hi < lo {
				t.Fatalf("inverted interval [%g, %g]", lo, hi)
			}
		}
	}
}

func TestCountIntervalShrinksWithP(t *testing.T) {
	// Higher inclusion probability → tighter relative interval.
	_, hiSmallP := CountInterval(100, 0.05, 1.96)
	loS, _ := CountInterval(100, 0.05, 1.96)
	widthSmall := (hiSmallP - loS) / (100 / 0.05)
	lo2, hi2 := CountInterval(100, 0.5, 1.96)
	widthBig := (hi2 - lo2) / (100 / 0.5)
	if widthBig >= widthSmall {
		t.Fatalf("relative width %g at p=0.5 not below %g at p=0.05", widthBig, widthSmall)
	}
}

// TestIntervalCoverage empirically validates the 95% interval: sample
// repeatedly, compute intervals for a fixed rule, and require the true
// count to fall inside at least ~90% of the time (binomial slack on 200
// trials).
func TestIntervalCoverage(t *testing.T) {
	tab := stripes(20000, 4) // 5000 per value
	filter, _ := tab.EncodeRule(map[string]string{"A": "a"})
	const trials = 200
	trueCount := 5000.0
	inside := 0
	for seed := int64(0); seed < trials; seed++ {
		store := storage.NewStore(tab)
		s := CreateSample(store, rule.Trivial(1), 2000, NewTestRNG(seed))
		// Count matches of the filter within the sample.
		n := 0
		for _, i := range s.Rows {
			if tab.Covers(filter, i) {
				n++
			}
		}
		lo, hi := CountInterval(n, s.Rate(), 1.96)
		if trueCount >= lo && trueCount <= hi {
			inside++
		}
	}
	if frac := float64(inside) / trials; frac < 0.90 {
		t.Fatalf("95%% interval covered truth only %.1f%% of trials", 100*frac)
	}
}

func TestViewInterval95(t *testing.T) {
	v := &View{Scale: 4} // p = 0.25
	lo, hi := v.Interval95(100)
	wantLo, wantHi := CountInterval(100, 0.25, 1.96)
	if lo != wantLo || hi != wantHi {
		t.Fatalf("Interval95 = [%g,%g], want [%g,%g]", lo, hi, wantLo, wantHi)
	}
	bad := &View{Scale: 0}
	if lo, hi := bad.Interval95(5); lo != 0 || !math.IsInf(hi, 1) {
		t.Fatal("zero-scale view must return a vacuous interval")
	}
}

package sampling

import "math"

// SuggestMinSS implements the "Setting minSS" guidance of Section 4.2: a
// rule covering fraction x of the table needs a sample of at least
// ρ·(1−x)/x tuples for its count estimate's deviation to be small relative
// to its mean. For the Size weighting, the top rule's coverage is at least
// 1/(|C|·|c_min|) where |C| is the column count and |c_min| the smallest
// column cardinality, so minSS >> ρ·|C|·|c_min| suffices for the first few
// displayed rules.
//
// rho controls estimate tightness (relative standard deviation ≈ 1/√ρ);
// the paper's example uses the margin factor implicitly — we expose it.
func SuggestMinSS(columns, minCardinality int, rho float64) int {
	if rho <= 0 {
		rho = 100 // ~10% relative sd
	}
	x := 1 / float64(columns*minCardinality)
	return int(math.Ceil(rho * (1 - x) / x))
}

// RelativeError returns the expected relative standard deviation of a
// sampled count estimate for a rule covering fraction x of the table, on a
// sample of the given size: √((1−x)/(x·size)). Tests and EXPERIMENTS.md
// use it to check the measured Figure 8(b) error curve follows 1/√minSS.
func RelativeError(x float64, size int) float64 {
	if x <= 0 || size <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt((1 - x) / (x * float64(size)))
}

package sampling

import (
	"math/rand"

	"smartdrill/internal/rule"
)

// Prefetch implements the Section 4.3 background pass: given the currently
// displayed tree (with estimated counts and drill probabilities on its
// leaves), compute the optimal memory allocation and rebuild all targeted
// samples in a single accounted scan, so the user's likely next drill-down
// is served by Find or Combine instead of Create.
//
// The allocator defaults to the Problem 5 DP; set UseConvex to use the
// hinge-loss relaxation instead (exercised by the ablation bench).
type PrefetchOptions struct {
	UseConvex bool
	Convex    ConvexOptions
	// Slack inflates minSS during allocation (default 1.1): an allocation
	// sized exactly at minSS leaves ~half of drill-downs marginally short
	// once reservoir variance realizes, forcing needless Create scans.
	Slack float64
}

// Prefetch reallocates sample memory for the displayed tree and rebuilds
// samples in one scan. Existing samples whose filters keep a nonzero
// allocation are replaced (their rows could be reused; a fresh reservoir
// keeps every sample exactly uniform). Returns the allocation used.
func (h *Handler) Prefetch(root *TreeNode, opts PrefetchOptions) (Allocation, error) {
	slack := opts.Slack
	if slack <= 0 {
		slack = 1.1
	}
	allocMinSS := int(float64(h.MinSS) * slack)
	if allocMinSS > h.M {
		allocMinSS = h.M
	}
	var alloc Allocation
	if opts.UseConvex {
		alloc, _ = AllocateConvex(root, h.M, allocMinSS, opts.Convex)
	} else {
		var err error
		alloc, _, err = AllocateDP(root, h.M, allocMinSS)
		if err != nil {
			return nil, err
		}
	}

	// Index tree rules by key for filter lookup.
	filters := map[string]rule.Rule{}
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		filters[n.Rule.Key()] = n.Rule
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)

	// Build one reservoir per allocated rule, all filled in a single scan.
	type target struct {
		filter rule.Rule
		res    *reservoir
	}
	var targets []target
	for key, size := range alloc {
		f, ok := filters[key]
		if !ok || size <= 0 {
			continue
		}
		targets = append(targets, target{filter: f, res: newReservoir(size, h.rng)})
	}
	if len(targets) == 0 {
		return alloc, nil
	}
	t := h.store.Table()
	h.store.Scan(func(i int) bool {
		for _, tg := range targets {
			if t.Covers(tg.filter, i) {
				tg.res.offer(i)
			}
		}
		return true
	})

	// Replace the resident sample set with the prefetched one.
	h.samples = make(map[string]*Sample, len(targets))
	for _, tg := range targets {
		s := &Sample{Filter: tg.filter, Rows: tg.res.rows, ExactCount: tg.res.seen}
		h.touch(s)
		h.samples[s.Filter.Key()] = s
	}
	return alloc, nil
}

// UniformLeafProbs assigns equal drill probability to every leaf of the
// tree — the paper's default when no learned model of user behaviour is
// available.
func UniformLeafProbs(root *TreeNode) {
	leaves := root.Leaves()
	if len(leaves) == 0 {
		return
	}
	p := 1 / float64(len(leaves))
	for _, l := range leaves {
		l.Prob = p
	}
}

// NewTestRNG returns a deterministic RNG for tests and reproducible demos.
func NewTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

package sampling

import (
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/storage"
)

func TestUniformLeafProbs(t *testing.T) {
	root := &TreeNode{Rule: rule.Trivial(2), Count: 100}
	for i := 0; i < 4; i++ {
		root.Children = append(root.Children, &TreeNode{
			Rule: rule.Trivial(2).With(0, rule.Value(i)), Count: 25,
		})
	}
	UniformLeafProbs(root)
	for _, l := range root.Leaves() {
		if l.Prob != 0.25 {
			t.Fatalf("leaf prob = %g, want 0.25", l.Prob)
		}
	}
	// A bare root is its own leaf.
	solo := &TreeNode{Rule: rule.Trivial(2), Count: 10}
	UniformLeafProbs(solo)
	if solo.Prob != 1 {
		t.Fatalf("solo prob = %g", solo.Prob)
	}
}

func TestLeavesDepthFirst(t *testing.T) {
	root := &TreeNode{Rule: rule.Trivial(2)}
	mid := &TreeNode{Rule: rule.Trivial(2).With(0, 1)}
	leafA := &TreeNode{Rule: rule.Trivial(2).With(0, 2)}
	leafB := &TreeNode{Rule: rule.Trivial(2).With(1, 3)}
	mid.Children = []*TreeNode{leafB}
	root.Children = []*TreeNode{mid, leafA}
	got := root.Leaves()
	if len(got) != 2 || got[0] != leafB || got[1] != leafA {
		t.Fatalf("Leaves = %v", got)
	}
}

func TestPrefetchBuildsAllocatedSamples(t *testing.T) {
	tab := grid(40000, 4, 4)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 20000, 2000, NewTestRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	root := &TreeNode{Rule: rule.Trivial(2), Count: float64(tab.NumRows())}
	for i := 0; i < 4; i++ {
		r, _ := tab.EncodeRule(map[string]string{"A": string(rune('a' + i))})
		root.Children = append(root.Children, &TreeNode{Rule: r, Count: 10000})
	}
	UniformLeafProbs(root)

	alloc, err := h.Prefetch(root, PrefetchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalSize() == 0 || alloc.TotalSize() > 20000 {
		t.Fatalf("allocation size %d out of budget", alloc.TotalSize())
	}
	if got := store.Stats().FullScans; got != 1 {
		t.Fatalf("prefetch cost %d scans, want exactly 1", got)
	}
	// Every allocated rule now has a resident sample of the allocated size
	// (or its full coverage if smaller).
	samples := h.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples after prefetch")
	}
	for _, s := range samples {
		want := alloc[s.Filter.Key()]
		if s.Size() != want && s.Size() != s.ExactCount {
			t.Fatalf("sample for %v holds %d tuples, allocated %d", s.Filter, s.Size(), want)
		}
	}
	// A subsequent drill on any child must avoid Create.
	store.ResetStats()
	for _, c := range root.Children {
		v, err := h.GetSample(c.Rule)
		if err != nil {
			t.Fatal(err)
		}
		if v.Method == Create {
			t.Fatalf("drill on %v still needed Create", c.Rule)
		}
	}
	if store.Stats().FullScans != 0 {
		t.Fatal("post-prefetch drills must not scan")
	}
}

func TestPrefetchConvexOption(t *testing.T) {
	tab := grid(20000, 4, 4)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 10000, 1000, NewTestRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	root := &TreeNode{Rule: rule.Trivial(2), Count: float64(tab.NumRows())}
	r, _ := tab.EncodeRule(map[string]string{"A": "a"})
	root.Children = append(root.Children, &TreeNode{Rule: r, Count: 5000, Prob: 1})
	alloc, err := h.Prefetch(root, PrefetchOptions{UseConvex: true})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.TotalSize() > 10000 {
		t.Fatalf("convex allocation %d over budget", alloc.TotalSize())
	}
}

func TestPrefetchEmptyTree(t *testing.T) {
	tab := grid(5000, 2, 2)
	store := storage.NewStore(tab)
	h, err := NewHandler(store, 5000, 1000, NewTestRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	// A root with zero count gets no allocation; prefetch must be a no-op
	// rather than an error.
	root := &TreeNode{Rule: rule.Trivial(2), Count: 0}
	if _, err := h.Prefetch(root, PrefetchOptions{}); err != nil {
		t.Fatal(err)
	}
	if store.Stats().FullScans != 0 {
		t.Fatal("no-allocation prefetch must not scan")
	}
}

package sampling

import "sync"

// Drill-probability models. Section 4.1 assumes "a probability
// distribution over leaves, which assigns a probability that each leaf may
// be drilled down on next. This can be a uniform distribution, or a
// machine learned distribution using past user data." UniformLeafProbs
// implements the former; RankModel implements the latter: it learns, from
// the session's own history, how often the analyst drills the 1st, 2nd,
// 3rd… displayed rule of an expansion and at which depth, and predicts
// accordingly.

// ProbModel assigns drill probabilities to the leaves of a displayed tree.
type ProbModel interface {
	// Assign sets Prob on every leaf of root; probabilities sum to 1
	// (unless the tree has no leaves).
	Assign(root *TreeNode)
}

// UniformModel is the paper's default: every leaf equally likely.
type UniformModel struct{}

// Assign implements ProbModel.
func (UniformModel) Assign(root *TreeNode) { UniformLeafProbs(root) }

// RankModel learns P(next drill | display rank, depth) from observed
// drill-downs with additive smoothing, then scores each leaf by the
// product of its rank and depth factors. It is safe for concurrent use.
type RankModel struct {
	mu sync.Mutex
	// rankHits[r] counts drills on the r-th child of its parent (ranks
	// beyond maxRank share the last bucket).
	rankHits []float64
	// depthHits[d] counts drills at tree depth d (capped at maxDepth).
	depthHits []float64
	total     float64
}

const (
	rankBuckets  = 8
	depthBuckets = 6
	// smoothing keeps unseen ranks/depths drillable: with no history the
	// model degenerates to uniform.
	smoothing = 1.0
)

// NewRankModel returns an empty model (equivalent to uniform until
// observations arrive).
func NewRankModel() *RankModel {
	return &RankModel{
		rankHits:  make([]float64, rankBuckets),
		depthHits: make([]float64, depthBuckets),
	}
}

// Observe records that the analyst drilled the rank-th displayed child (0
// = top rule) at the given tree depth (1 = child of the root).
func (m *RankModel) Observe(rank, depth int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rankHits[clampIdx(rank, rankBuckets)]++
	m.depthHits[clampIdx(depth, depthBuckets)]++
	m.total++
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// Assign implements ProbModel: each leaf's probability is proportional to
// its smoothed rank factor times its smoothed depth factor.
func (m *RankModel) Assign(root *TreeNode) {
	m.mu.Lock()
	rank := make([]float64, rankBuckets)
	depth := make([]float64, depthBuckets)
	for i, h := range m.rankHits {
		rank[i] = h + smoothing
	}
	for i, h := range m.depthHits {
		depth[i] = h + smoothing
	}
	m.mu.Unlock()

	type leafAt struct {
		leaf  *TreeNode
		score float64
	}
	var leaves []leafAt
	var walk func(n *TreeNode, d int)
	walk = func(n *TreeNode, d int) {
		if len(n.Children) == 0 {
			// A bare root has rank 0 by convention.
			leaves = append(leaves, leafAt{leaf: n, score: rank[0] * depth[clampIdx(d, depthBuckets)]})
			return
		}
		for i, c := range n.Children {
			if len(c.Children) == 0 {
				leaves = append(leaves, leafAt{
					leaf:  c,
					score: rank[clampIdx(i, rankBuckets)] * depth[clampIdx(d+1, depthBuckets)],
				})
			} else {
				walk(c, d+1)
			}
		}
	}
	walk(root, 0)

	total := 0.0
	for _, l := range leaves {
		total += l.score
	}
	if total == 0 {
		UniformLeafProbs(root)
		return
	}
	for _, l := range leaves {
		l.leaf.Prob = l.score / total
	}
}

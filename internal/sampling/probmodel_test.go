package sampling

import (
	"math"
	"testing"

	"smartdrill/internal/rule"
)

func twoLevelTree() *TreeNode {
	root := &TreeNode{Rule: rule.Trivial(3), Count: 1000}
	for i := 0; i < 4; i++ {
		root.Children = append(root.Children, &TreeNode{
			Rule:  rule.Trivial(3).With(0, rule.Value(i)),
			Count: 250,
		})
	}
	return root
}

func probSum(root *TreeNode) float64 {
	s := 0.0
	for _, l := range root.Leaves() {
		s += l.Prob
	}
	return s
}

func TestUniformModel(t *testing.T) {
	root := twoLevelTree()
	UniformModel{}.Assign(root)
	for _, l := range root.Leaves() {
		if l.Prob != 0.25 {
			t.Fatalf("prob = %g, want 0.25", l.Prob)
		}
	}
}

func TestRankModelColdIsUniform(t *testing.T) {
	root := twoLevelTree()
	NewRankModel().Assign(root)
	leaves := root.Leaves()
	for _, l := range leaves {
		if math.Abs(l.Prob-0.25) > 1e-9 {
			t.Fatalf("cold model prob = %g, want uniform 0.25", l.Prob)
		}
	}
	if math.Abs(probSum(root)-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", probSum(root))
	}
}

func TestRankModelLearnsTopBias(t *testing.T) {
	m := NewRankModel()
	// The analyst always drills the top-ranked rule at depth 1.
	for i := 0; i < 50; i++ {
		m.Observe(0, 1)
	}
	root := twoLevelTree()
	m.Assign(root)
	leaves := root.Leaves()
	if leaves[0].Prob <= leaves[1].Prob {
		t.Fatalf("rank-0 leaf prob %g not above rank-1 %g", leaves[0].Prob, leaves[1].Prob)
	}
	if leaves[0].Prob < 0.8 {
		t.Fatalf("after 50 rank-0 drills, top prob = %g, want ≫ uniform", leaves[0].Prob)
	}
	if math.Abs(probSum(root)-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", probSum(root))
	}
}

func TestRankModelClamping(t *testing.T) {
	m := NewRankModel()
	// Out-of-range observations must not panic and land in edge buckets.
	m.Observe(-5, -2)
	m.Observe(100, 100)
	root := twoLevelTree()
	m.Assign(root)
	if math.Abs(probSum(root)-1) > 1e-9 {
		t.Fatal("probabilities must normalize despite clamped observations")
	}
}

func TestRankModelBareRoot(t *testing.T) {
	m := NewRankModel()
	solo := &TreeNode{Rule: rule.Trivial(2), Count: 10}
	m.Assign(solo)
	if solo.Prob != 1 {
		t.Fatalf("bare root prob = %g, want 1", solo.Prob)
	}
}

func TestRankModelNestedLeaves(t *testing.T) {
	m := NewRankModel()
	for i := 0; i < 30; i++ {
		m.Observe(1, 2) // analyst favors the second rule, two levels deep
	}
	root := twoLevelTree()
	// Expand the first child to create depth-2 leaves.
	mid := root.Children[0]
	for j := 0; j < 3; j++ {
		mid.Children = append(mid.Children, &TreeNode{
			Rule:  mid.Rule.With(1, rule.Value(j)),
			Count: 80,
		})
	}
	m.Assign(root)
	if math.Abs(probSum(root)-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", probSum(root))
	}
	// The rank-1 leaf under mid (depth 2) must outrank the rank-2 leaf.
	if mid.Children[1].Prob <= mid.Children[2].Prob {
		t.Fatalf("learned rank preference not reflected: %g vs %g",
			mid.Children[1].Prob, mid.Children[2].Prob)
	}
}

// Package sampling implements Section 4: dynamic sample maintenance for
// interactive drill-downs on tables too large to rescan per click.
//
// A Sample is a uniform random subset of the rows covered by a filter rule,
// kept in memory with an exact coverage count learned during the scan that
// created it. The SampleHandler serves drill-down requests from memory via
// Find (exact filter match) or Combine (union of samples whose filters are
// sub-rules of the request — uniform because every requested tuple had the
// same inclusion probability in each contributing sample), falling back to
// Create (one accounted pass building a reservoir sample). Memory is
// allocated across displayed rules by the Problem 5 dynamic program or the
// Problem 6 convex relaxation.
package sampling

import (
	"math/rand"
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
)

// Sample is a uniform random sample of the master-table rows covered by
// Filter. Rows holds master-table row indices so overlapping samples can be
// deduplicated exactly when combined.
type Sample struct {
	// Filter is fs: every sampled row is covered by it.
	Filter rule.Rule
	// Rows are master-table row indices, each included with equal
	// probability len(Rows)/ExactCount.
	Rows []int
	// ExactCount is Count(Filter) over the master table, learned for free
	// during the creating scan.
	ExactCount int

	lastUsed int64 // eviction clock
	sorted   []int // cached ascending view of Rows; see sortedRows
}

// sortedRows returns the sample's rows as an ascending row set, computed
// once per sample and cached so repeat serves (Find, the cascade's fast
// path) are zero-cost. Rows itself keeps its reservoir insertion order —
// budget trims drop a uniform suffix, which a sorted slice would bias —
// and a trim invalidates the cache by the length check.
func (s *Sample) sortedRows() []int {
	if s.sorted != nil && len(s.sorted) == len(s.Rows) {
		return s.sorted
	}
	if sort.IntsAreSorted(s.Rows) {
		s.sorted = s.Rows
	} else {
		s.sorted = make([]int, len(s.Rows))
		copy(s.sorted, s.Rows)
		sort.Ints(s.sorted)
	}
	return s.sorted
}

// Rate returns the per-tuple inclusion probability of the sample.
func (s *Sample) Rate() float64 {
	if s.ExactCount == 0 {
		return 0
	}
	return float64(len(s.Rows)) / float64(s.ExactCount)
}

// Scale is Ns in the paper: multiply counts measured on the sample by Scale
// to estimate counts on the master table.
func (s *Sample) Scale() float64 {
	if len(s.Rows) == 0 {
		return 0
	}
	return float64(s.ExactCount) / float64(len(s.Rows))
}

// Size returns the number of sampled rows (the sample's memory footprint in
// tuples, the unit the paper's budget M is expressed in).
func (s *Sample) Size() int { return len(s.Rows) }

// reservoir maintains a fixed-capacity uniform sample of a stream of row
// indices (Vitter's Algorithm R, the method cited in Section 4.3).
type reservoir struct {
	capacity int
	rows     []int
	seen     int
	rng      *rand.Rand
}

func newReservoir(capacity int, rng *rand.Rand) *reservoir {
	return &reservoir{capacity: capacity, rows: make([]int, 0, capacity), rng: rng}
}

// offer considers row i for inclusion.
func (r *reservoir) offer(i int) {
	r.seen++
	if len(r.rows) < r.capacity {
		r.rows = append(r.rows, i)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.capacity {
		r.rows[j] = i
	}
}

// CreateSample scans the store once and returns a uniform sample of up to
// capacity rows covered by filter, with the exact coverage count.
func CreateSample(store *storage.Store, filter rule.Rule, capacity int, rng *rand.Rand) *Sample {
	res := newReservoir(capacity, rng)
	t := store.Table()
	store.Scan(func(i int) bool {
		if t.Covers(filter, i) {
			res.offer(i)
		}
		return true
	})
	return &Sample{Filter: filter, Rows: res.rows, ExactCount: res.seen}
}

// View is the sample view returned to the drill-down engine: a zero-copy
// row view over the master table plus the scale factor that converts
// sample-local aggregates into master-table estimates.
type View struct {
	// Tab holds the sampled tuples as a zero-copy view sharing the master
	// table's column arrays, all covered by the requested rule.
	Tab *table.View
	// Scale converts counts on Tab to estimated counts on the master table.
	Scale float64
	// Method records how the view was served (Find, Combine, or Create).
	Method Method
	// EstimatedCount is the estimated master-table Count of the requested
	// rule (Tab.NumRows() * Scale, precomputed for convenience).
	EstimatedCount float64
}

// Method identifies which of Section 4.3's three mechanisms served a
// request.
type Method int

// The three SampleHandler mechanisms, cheapest first.
const (
	Find Method = iota
	Combine
	Create
)

// String returns the paper's name for the mechanism.
func (m Method) String() string {
	switch m {
	case Find:
		return "Find"
	case Combine:
		return "Combine"
	case Create:
		return "Create"
	default:
		return "Unknown"
	}
}

package sampling

import (
	"math"
	"testing"

	"smartdrill/internal/storage"
	"smartdrill/internal/table"
)

// stripes builds a 1-column table with n rows alternating over vals values.
func stripes(n, vals int) *table.Table {
	b := table.MustBuilder([]string{"A"}, nil)
	for i := 0; i < n; i++ {
		b.MustAddRow([]string{string(rune('a' + i%vals))})
	}
	return b.Build()
}

func TestReservoirExactWhenSmall(t *testing.T) {
	res := newReservoir(10, NewTestRNG(1))
	for i := 0; i < 7; i++ {
		res.offer(i)
	}
	if len(res.rows) != 7 || res.seen != 7 {
		t.Fatalf("reservoir rows=%d seen=%d", len(res.rows), res.seen)
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Offer 100 items into a size-10 reservoir many times; each item's
	// inclusion frequency must be ≈ 0.1. With 3000 trials the standard
	// error is ~0.0055, so ±0.03 is a >5σ bound.
	const items, capacity, trials = 100, 10, 3000
	rng := NewTestRNG(2)
	freq := make([]int, items)
	for trial := 0; trial < trials; trial++ {
		res := newReservoir(capacity, rng)
		for i := 0; i < items; i++ {
			res.offer(i)
		}
		for _, i := range res.rows {
			freq[i]++
		}
	}
	want := float64(capacity) / float64(items)
	for i, f := range freq {
		p := float64(f) / trials
		if math.Abs(p-want) > 0.03 {
			t.Fatalf("item %d included with frequency %.4f, want %.2f±0.03", i, p, want)
		}
	}
}

func TestCreateSampleExactCountAndScale(t *testing.T) {
	tab := stripes(1000, 4) // 250 rows per value
	store := storage.NewStore(tab)
	filter, _ := tab.EncodeRule(map[string]string{"A": "a"})
	s := CreateSample(store, filter, 100, NewTestRNG(3))
	if s.ExactCount != 250 {
		t.Fatalf("ExactCount = %d, want 250", s.ExactCount)
	}
	if len(s.Rows) != 100 {
		t.Fatalf("sample size = %d, want 100", len(s.Rows))
	}
	if got := s.Scale(); got != 2.5 {
		t.Fatalf("Scale = %g, want 2.5", got)
	}
	if got := s.Rate(); got != 0.4 {
		t.Fatalf("Rate = %g, want 0.4", got)
	}
	for _, i := range s.Rows {
		if !tab.Covers(filter, i) {
			t.Fatalf("sampled row %d not covered by filter", i)
		}
	}
	if store.Stats().FullScans != 1 {
		t.Fatal("CreateSample must cost exactly one scan")
	}
}

func TestCreateSampleSmallCoverage(t *testing.T) {
	tab := stripes(100, 50) // 2 rows per value
	store := storage.NewStore(tab)
	filter, _ := tab.EncodeRule(map[string]string{"A": "a"})
	s := CreateSample(store, filter, 10, NewTestRNG(4))
	if len(s.Rows) != 2 || s.ExactCount != 2 {
		t.Fatalf("exhaustive small sample: rows=%d exact=%d", len(s.Rows), s.ExactCount)
	}
	if s.Scale() != 1 {
		t.Fatalf("exhaustive sample scale = %g, want 1", s.Scale())
	}
}

func TestSampleZeroValues(t *testing.T) {
	s := &Sample{}
	if s.Rate() != 0 || s.Scale() != 0 || s.Size() != 0 {
		t.Fatal("zero sample must report zero rate/scale/size")
	}
}

func TestMethodString(t *testing.T) {
	if Find.String() != "Find" || Combine.String() != "Combine" || Create.String() != "Create" {
		t.Fatal("method names")
	}
	if Method(42).String() != "Unknown" {
		t.Fatal("unknown method name")
	}
}

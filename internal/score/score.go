// Package score computes the paper's objective exactly:
//
//	Score(R) = Σ_{r∈R} W(r) · MCount(r, R)
//
// with rules ordered in descending weight (Lemma 1 shows this ordering is
// optimal, so Score over *sets* is defined via the sorted list). The package
// also provides the TOP(t, R) reformulation Score(R) = Σ_t W(TOP(t, R)) used
// throughout the proofs, and generalizes Count to Sum over a measure column
// (Section 6.3) through the Aggregator interface.
package score

import (
	"sort"

	"smartdrill/internal/rule"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Aggregator defines the per-tuple mass aggregated by Count/MCount. The
// paper's default is Count (mass 1 per tuple); Sum uses a measure column.
type Aggregator interface {
	// Mass returns the contribution of row i of t.
	Mass(t *table.Table, i int) float64
	// Name identifies the aggregate in output ("Count", "Sum(Sales)").
	Name() string
}

// CountAgg is the Count aggregate: every tuple has mass 1.
type CountAgg struct{}

// Mass implements Aggregator.
func (CountAgg) Mass(*table.Table, int) float64 { return 1 }

// Name implements Aggregator.
func (CountAgg) Name() string { return "Count" }

// SumAgg aggregates a measure column: tuple mass is its measure value.
// Negative measure values would break the monotone-coverage analysis, so
// they are clamped to zero.
type SumAgg struct {
	Measure int
	Label   string
}

// Mass implements Aggregator.
func (s SumAgg) Mass(t *table.Table, i int) float64 {
	v := t.Measure(s.Measure)[i]
	if v < 0 {
		return 0
	}
	return v
}

// Name implements Aggregator.
func (s SumAgg) Name() string {
	if s.Label != "" {
		return "Sum(" + s.Label + ")"
	}
	return "Sum"
}

// SortByWeightDesc orders rules in descending weight (stable, with rule key
// as tiebreaker for determinism). Per Lemma 1 this ordering maximizes the
// score of any fixed rule set. Weights and tie-break keys are computed once
// per rule, not on every comparison.
func SortByWeightDesc(w weight.Weighter, rules []rule.Rule) []rule.Rule {
	weights := make([]float64, len(rules))
	keys := make([]string, len(rules))
	for i, r := range rules {
		weights[i] = weight.WeightRule(w, r)
		keys[i] = r.Key()
	}
	order := make([]int, len(rules))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if weights[i] != weights[j] {
			return weights[i] > weights[j]
		}
		return keys[i] < keys[j]
	})
	out := make([]rule.Rule, len(rules))
	for a, i := range order {
		out[a] = rules[i]
	}
	return out
}

// TopWeights returns, for every row of t, the weight of the first rule in
// the weight-descending ordering of rules that covers it (0 if uncovered):
// W(TOP(t, R)) in the paper's notation. The result is the per-tuple basis
// for Score and for BRS marginal-value passes.
func TopWeights(t *table.Table, w weight.Weighter, rules []rule.Rule) []float64 {
	sorted := SortByWeightDesc(w, rules)
	weights := make([]float64, len(sorted))
	for i, r := range sorted {
		weights[i] = weight.WeightRule(w, r)
	}
	top := make([]float64, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		for j, r := range sorted {
			if t.Covers(r, i) {
				top[i] = weights[j]
				break
			}
		}
	}
	return top
}

// ListScore computes Score for rules *in the given order* (no re-sorting):
// Σ_r W(r)·MCount(r, R) with marginal mass assigned to the first covering
// rule. Tests use it to verify Lemma 1 against the set Score.
func ListScore(t *table.Table, w weight.Weighter, agg Aggregator, rules []rule.Rule) float64 {
	total := 0.0
	for i := 0; i < t.NumRows(); i++ {
		for _, r := range rules {
			if t.Covers(r, i) {
				total += weight.WeightRule(w, r) * agg.Mass(t, i)
				break
			}
		}
	}
	return total
}

// SetScore computes the paper's Score of a rule *set* (Definition 2):
// the ListScore of the weight-descending ordering.
func SetScore(t *table.Table, w weight.Weighter, agg Aggregator, rules []rule.Rule) float64 {
	return ListScore(t, w, agg, SortByWeightDesc(w, rules))
}

// MCounts returns the marginal aggregate of each rule within the given
// ordering: mass of tuples covered by rules[i] but by no earlier rule.
func MCounts(t *table.Table, w weight.Weighter, agg Aggregator, rules []rule.Rule) []float64 {
	out := make([]float64, len(rules))
	for i := 0; i < t.NumRows(); i++ {
		for j, r := range rules {
			if t.Covers(r, i) {
				out[j] += agg.Mass(t, i)
				break
			}
		}
	}
	return out
}

// MCountsView is MCounts over a zero-copy row view: marginal masses are
// measured on exactly the view's rows (a rule-filtered subset or a
// sample), with tuple mass read through the parent table. BRS uses it so
// result post-processing never materializes the subset it ran on.
func MCountsView(v *table.View, w weight.Weighter, agg Aggregator, rules []rule.Rule) []float64 {
	out := make([]float64, len(rules))
	n := v.NumRows()
	parent := v.Table()
	for i := 0; i < n; i++ {
		pi := v.ParentRow(i)
		for j, r := range rules {
			if parent.Covers(r, pi) {
				out[j] += agg.Mass(parent, pi)
				break
			}
		}
	}
	return out
}

// Counts returns the plain (non-marginal) aggregate of each rule: the value
// smart drill-down displays to the analyst (Counts are easier to interpret
// than MCounts, per Section 2.1).
func Counts(t *table.Table, agg Aggregator, rules []rule.Rule) []float64 {
	out := make([]float64, len(rules))
	for i := 0; i < t.NumRows(); i++ {
		for j, r := range rules {
			if t.Covers(r, i) {
				out[j] += agg.Mass(t, i)
			}
		}
	}
	return out
}

// MarginalGain returns SetScore(rules ∪ {r}) − SetScore(rules): the greedy
// objective BRS maximizes at each step. Exact (full-table) version used by
// tests and the exhaustive baseline.
func MarginalGain(t *table.Table, w weight.Weighter, agg Aggregator, rules []rule.Rule, r rule.Rule) float64 {
	top := TopWeights(t, w, rules)
	wr := weight.WeightRule(w, r)
	gain := 0.0
	for i := 0; i < t.NumRows(); i++ {
		if t.Covers(r, i) && wr > top[i] {
			gain += (wr - top[i]) * agg.Mass(t, i)
		}
	}
	return gain
}

package score

import (
	"math"
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// fixture builds the paper's department-store sketch: 6 tuples over 2
// columns where hand-computed scores are easy.
func fixture(t *testing.T) *table.Table {
	t.Helper()
	b := table.MustBuilder([]string{"A", "B"}, []string{"M"})
	rows := [][2]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"b", "x"}, {"b", "y"}, {"c", "z"},
	}
	for i, r := range rows {
		b.MustAddRow([]string{r[0], r[1]}, float64(i+1))
	}
	return b.Build()
}

// mustRule encodes a pattern or fails the test.
func mustRule(t *testing.T, tab *table.Table, pattern map[string]string) rule.Rule {
	t.Helper()
	r, err := tab.EncodeRule(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSetScoreHandComputed(t *testing.T) {
	tab := fixture(t)
	w := weight.NewSize(2)
	ra := mustRule(t, tab, map[string]string{"A": "a"})            // covers rows 0,1,2
	rax := mustRule(t, tab, map[string]string{"A": "a", "B": "x"}) // covers rows 0,1

	// Weight-descending order: (a,x) then (a,?).
	// MCount(a,x) = 2 → contributes 2·2 = 4.
	// MCount(a,?) = 1 (row 2 only) → contributes 1·1 = 1.
	got := SetScore(tab, w, CountAgg{}, []rule.Rule{ra, rax})
	if got != 5 {
		t.Fatalf("SetScore = %g, want 5", got)
	}
}

func TestLemma1OrderingOptimal(t *testing.T) {
	// Lemma 1: sorting rules by descending weight never lowers the list
	// score. Check on random tables against all permutations.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		tab := randomTable(rng, 3, 3, 30)
		w := weight.NewSize(3)
		rules := randomRules(rng, tab, 3)
		sortedScore := SetScore(tab, w, CountAgg{}, rules)
		permute(rules, func(perm []rule.Rule) {
			if s := ListScore(tab, w, CountAgg{}, perm); s > sortedScore+1e-9 {
				t.Fatalf("permutation %v scores %g > sorted %g", perm, s, sortedScore)
			}
		})
	}
}

func TestTopWeights(t *testing.T) {
	tab := fixture(t)
	w := weight.NewSize(2)
	ra := mustRule(t, tab, map[string]string{"A": "a"})
	rax := mustRule(t, tab, map[string]string{"A": "a", "B": "x"})
	top := TopWeights(tab, w, []rule.Rule{ra, rax})
	want := []float64{2, 2, 1, 0, 0, 0}
	for i, v := range want {
		if top[i] != v {
			t.Fatalf("TopWeights[%d] = %g, want %g (full: %v)", i, top[i], v, top)
		}
	}
}

func TestMCountsSumBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		tab := randomTable(rng, 3, 4, 40)
		w := weight.NewSize(3)
		rules := randomRules(rng, tab, 4)
		mcs := MCounts(tab, w, CountAgg{}, rules)
		sum := 0.0
		for _, m := range mcs {
			if m < 0 {
				t.Fatal("negative MCount")
			}
			sum += m
		}
		if sum > float64(tab.NumRows())+1e-9 {
			t.Fatalf("ΣMCount = %g exceeds table size %d", sum, tab.NumRows())
		}
	}
}

func TestCountsVsMCounts(t *testing.T) {
	tab := fixture(t)
	w := weight.NewSize(2)
	ra := mustRule(t, tab, map[string]string{"A": "a"})
	rax := mustRule(t, tab, map[string]string{"A": "a", "B": "x"})
	rules := SortByWeightDesc(w, []rule.Rule{ra, rax})
	counts := Counts(tab, CountAgg{}, rules)
	mcs := MCounts(tab, w, CountAgg{}, rules)
	// Counts are plain coverage: (a,x)=2, (a,?)=3. MCounts: 2, 1.
	if counts[0] != 2 || counts[1] != 3 {
		t.Fatalf("Counts = %v", counts)
	}
	if mcs[0] != 2 || mcs[1] != 1 {
		t.Fatalf("MCounts = %v", mcs)
	}
	for i := range mcs {
		if mcs[i] > counts[i] {
			t.Fatal("MCount cannot exceed Count")
		}
	}
}

func TestSumAggregate(t *testing.T) {
	tab := fixture(t)
	w := weight.NewSize(2)
	ra := mustRule(t, tab, map[string]string{"A": "a"})
	agg := SumAgg{Measure: 0, Label: "M"}
	// Rows 0,1,2 have measures 1,2,3 → Sum = 6; weight 1 → score 6.
	if got := SetScore(tab, w, agg, []rule.Rule{ra}); got != 6 {
		t.Fatalf("Sum score = %g, want 6", got)
	}
	if agg.Name() != "Sum(M)" {
		t.Fatalf("agg name = %q", agg.Name())
	}
	if (SumAgg{}).Name() != "Sum" {
		t.Fatal("unlabeled SumAgg name")
	}
}

func TestSumAggClampsNegatives(t *testing.T) {
	b := table.MustBuilder([]string{"A"}, []string{"M"})
	b.MustAddRow([]string{"x"}, -5)
	b.MustAddRow([]string{"x"}, 3)
	tab := b.Build()
	agg := SumAgg{Measure: 0}
	if got := agg.Mass(tab, 0); got != 0 {
		t.Fatalf("negative mass = %g, want clamped 0", got)
	}
	if got := agg.Mass(tab, 1); got != 3 {
		t.Fatalf("mass = %g", got)
	}
}

func TestMarginalGainMatchesScoreDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		tab := randomTable(rng, 3, 3, 25)
		w := weight.NewSize(3)
		rules := randomRules(rng, tab, 2)
		r := randomRules(rng, tab, 1)[0]
		gain := MarginalGain(tab, w, CountAgg{}, rules, r)
		withR := SetScore(tab, w, CountAgg{}, append(append([]rule.Rule{}, rules...), r))
		without := SetScore(tab, w, CountAgg{}, rules)
		if math.Abs(gain-(withR-without)) > 1e-9 {
			t.Fatalf("MarginalGain %g != score diff %g (rules=%v r=%v)",
				gain, withR-without, rules, r)
		}
	}
}

// TestSubmodularity checks Lemma 3 on random instances: for S ⊆ S' and any
// rule s, the marginal gain of s w.r.t. S is ≥ its gain w.r.t. S'.
func TestSubmodularity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 80; trial++ {
		tab := randomTable(rng, 3, 3, 25)
		w := weight.NewSize(3)
		small := randomRules(rng, tab, 2)
		big := append(append([]rule.Rule{}, small...), randomRules(rng, tab, 2)...)
		s := randomRules(rng, tab, 1)[0]
		gainSmall := MarginalGain(tab, w, CountAgg{}, small, s)
		gainBig := MarginalGain(tab, w, CountAgg{}, big, s)
		if gainBig > gainSmall+1e-9 {
			t.Fatalf("submodularity violated: gain(S)=%g < gain(S')=%g", gainSmall, gainBig)
		}
	}
}

func TestSortByWeightDescStable(t *testing.T) {
	tab := fixture(t)
	w := weight.NewSize(2)
	ra := mustRule(t, tab, map[string]string{"A": "a"})
	rb := mustRule(t, tab, map[string]string{"A": "b"})
	rax := mustRule(t, tab, map[string]string{"A": "a", "B": "x"})
	sorted := SortByWeightDesc(w, []rule.Rule{ra, rb, rax})
	if !sorted[0].Equal(rax) {
		t.Fatalf("heaviest first: got %v", sorted[0])
	}
	// Equal weights tie-break deterministically by key.
	again := SortByWeightDesc(w, []rule.Rule{rb, ra, rax})
	for i := range sorted {
		if !sorted[i].Equal(again[i]) {
			t.Fatal("sort must be deterministic regardless of input order")
		}
	}
}

// --- helpers ---

// randomTable builds a cols-column table with vals distinct values per
// column and n rows.
func randomTable(rng *rand.Rand, cols, vals, n int) *table.Table {
	names := make([]string, cols)
	for c := range names {
		names[c] = string(rune('A' + c))
	}
	b := table.MustBuilder(names, nil)
	row := make([]string, cols)
	for i := 0; i < n; i++ {
		for c := range row {
			row[c] = string(rune('a' + rng.Intn(vals)))
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

// randomRules derives k rules from random table rows with random stars, so
// every rule has support.
func randomRules(rng *rand.Rand, tab *table.Table, k int) []rule.Rule {
	rules := make([]rule.Rule, k)
	buf := make([]rule.Value, tab.NumCols())
	for i := range rules {
		tab.Row(rng.Intn(tab.NumRows()), buf)
		r := rule.FromValues(buf)
		for c := range r {
			if rng.Intn(2) == 0 {
				r[c] = rule.Star
			}
		}
		rules[i] = r
	}
	return rules
}

// permute invokes fn with every permutation of rules (n ≤ 4 in tests).
func permute(rules []rule.Rule, fn func([]rule.Rule)) {
	var rec func(k int)
	rec = func(k int) {
		if k == len(rules) {
			fn(rules)
			return
		}
		for i := k; i < len(rules); i++ {
			rules[k], rules[i] = rules[i], rules[k]
			rec(k + 1)
			rules[k], rules[i] = rules[i], rules[k]
		}
	}
	rec(0)
}

package search

import (
	"reflect"
	"testing"
	"time"

	"smartdrill/internal/brs"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// nonIdentity mirrors the //sdlint:nonidentity annotations on Request:
// fields that deliberately stay out of the cache key. The cachekey
// analyzer checks the annotations statically; this test checks the same
// split dynamically against keyOf's actual behavior.
var nonIdentity = map[string]bool{
	"Deadline":     true,
	"Yield":        true,
	"Sampled":      true,
	"Degraded":     true,
	"NoCache":      true,
	"Store":        true,
	"Resolve":      true,
	"MaxWeightFor": true,
}

func baseRequest() Request {
	return Request{
		Kind:         KindBatch,
		Rule:         rule.Trivial(4).With(0, 1),
		K:            3,
		MaxRules:     5,
		MinGainRatio: 0.25,
		Weighter:     weight.NewSize(4),
		Agg:          score.CountAgg{},
		MaxWeight:    2.5,
		Seed:         7,
		Workers:      2,
		Column:       1,
	}
}

// mutations sets each Request field to a value different from
// baseRequest's. Reflection walks every field of Request, so adding a
// field without extending this table (and deciding its identity status)
// fails the test — the runtime twin of the cachekey analyzer's
// unkeyed-field diagnostic.
var mutations = map[string]func(*Request){
	"Kind":            func(r *Request) { r.Kind = KindRefine },
	"Rule":            func(r *Request) { r.Rule = r.Rule.With(1, 2) },
	"K":               func(r *Request) { r.K++ },
	"MaxRules":        func(r *Request) { r.MaxRules++ },
	"MinGainRatio":    func(r *Request) { r.MinGainRatio = 0.5 },
	"Weighter":        func(r *Request) { r.Weighter = weight.SizeMinusOne{} },
	"Agg":             func(r *Request) { r.Agg = score.SumAgg{Measure: 0} },
	"MaxWeight":       func(r *Request) { r.MaxWeight = 3.5 },
	"Seed":            func(r *Request) { r.Seed = 8 },
	"Workers":         func(r *Request) { r.Workers = 3 },
	"DisableParallel": func(r *Request) { r.DisableParallel = true },
	"DisableBitmap":   func(r *Request) { r.DisableBitmap = true },
	"Column":          func(r *Request) { r.Column = 2 },

	"Deadline": func(r *Request) { r.Deadline = time.Unix(1, 0) },
	"Yield":    func(r *Request) { r.Yield = func(brs.Result) bool { return true } },
	"Sampled":  func(r *Request) { r.Sampled = true },
	"Degraded": func(r *Request) { r.Degraded = true },
	"NoCache":  func(r *Request) { r.NoCache = true },
	"Store":    func(r *Request) { r.Store = storage.NewStore(nil) },
	"Resolve": func(r *Request) {
		r.Resolve = func() (*table.View, float64, bool, error) { return nil, 1, true, nil }
	},
	"MaxWeightFor": func(r *Request) { r.MaxWeightFor = func(*table.View) float64 { return 1 } },
}

// TestKeyOfFieldIdentity checks, field by field, that two Requests
// differing in any single identity field never map to the same key, and
// that the annotated non-identity fields never perturb it.
func TestKeyOfFieldIdentity(t *testing.T) {
	s := NewService(Config{})
	base := s.keyOf(baseRequest())
	rt := reflect.TypeOf(Request{})
	for i := 0; i < rt.NumField(); i++ {
		name := rt.Field(i).Name
		mutate, ok := mutations[name]
		if !ok {
			t.Fatalf("Request field %s has no mutation in this test: add one here and decide whether keyOf must consume it", name)
		}
		req := baseRequest()
		mutate(&req)
		got := s.keyOf(req)
		if nonIdentity[name] {
			if got != base {
				t.Errorf("non-identity field %s changed the cache key: either key it for real or fix the annotation", name)
			}
		} else if got == base {
			t.Errorf("identity field %s does not change the cache key: distinct requests would collide in the answer cache", name)
		}
	}
	if miss := len(mutations) - rt.NumField(); miss != 0 {
		t.Errorf("mutations table has %d entries for fields Request no longer declares", miss)
	}
}

// TestKeyOfWideRuleFallback drives keyOf past PackedKey capacity: rules
// too wide to pack must still key distinctly through the string
// fallback, against each other and against packable rules.
func TestKeyOfWideRuleFallback(t *testing.T) {
	wide := func(firstVal rule.Value) rule.Rule {
		r := rule.Trivial(rule.MaxPackedValues + 4)
		for c := 0; c < rule.MaxPackedValues+4; c++ {
			r = r.With(c, 1)
		}
		return r.With(0, firstVal)
	}
	if _, ok := wide(2).PackKey(rule.Mask{}); ok {
		t.Fatal("test rule unexpectedly fits a PackedKey; widen it")
	}

	s := NewService(Config{})
	req := baseRequest()
	narrow := s.keyOf(req)

	reqW2 := req
	reqW2.Rule = wide(2)
	reqW3 := req
	reqW3.Rule = wide(3)
	w2, w3 := s.keyOf(reqW2), s.keyOf(reqW3)
	if w2 == w3 {
		t.Error("distinct wide rules map to the same key")
	}
	if w2 == narrow || w3 == narrow {
		t.Error("wide rule collides with a packable rule's key")
	}
	if again := s.keyOf(reqW2); again != w2 {
		t.Error("keyOf is not deterministic for wide rules")
	}
}

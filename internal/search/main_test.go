package search

import (
	"testing"

	"smartdrill/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine — singleflight
// waiters and parallel search workers must not outlive their requests.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }

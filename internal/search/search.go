// Package search is the dataset-scoped seam every BRS invocation goes
// through: batch and star expansions, incremental (anytime) streams,
// provisional→exact refinement re-counts, and the traditional OLAP
// listing all arrive here as a canonical Request and leave as a
// Response. Owning the single entry point lets the service add what no
// per-call-site code could share:
//
//   - a bounded LRU answer cache of completed exact expansions, keyed by
//     the canonicalized request (rule identity via rule.PackedKey, k,
//     weighter and aggregate names, mw, seed, worker shape, and a dataset
//     version stamp), with hits served as clones so sessions can never
//     mutate shared results;
//   - singleflight collapsing of concurrent identical searches, so a
//     thundering herd on one popular expansion costs one BRS run — and a
//     canceled leader re-elects a waiter instead of poisoning the flight;
//   - background warming hooks (MarkWarmed) and counters that flow into
//     brs.Stats → storage.Stats → session totals → /v1/health.
//
// Only complete, exact, unscaled results enter the cache: sampled
// expansions depend on per-session handler state, degraded requests must
// stay on today's cheap path, and a budget-truncated stream must never be
// replayed as a complete answer — all three bypass the cache entirely.
package search

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"smartdrill/internal/baseline"
	"smartdrill/internal/brs"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Kind selects which BRS entry point a Request drives.
type Kind uint8

const (
	// KindBatch is a complete k-rule expansion (brs.Run): rule drill-down,
	// and star drill-down when the weighter is a StarConstraint (the star
	// column rides in the weighter's name, so it needs no field of its own).
	KindBatch Kind = iota + 1
	// KindStream is the anytime expansion (brs.RunIncremental): rules are
	// delivered through Yield as the greedy search finds them.
	KindStream
	// KindRefine re-counts one rule exactly (the provisional→exact upgrade).
	KindRefine
	// KindTraditional is the classic OLAP listing on one column.
	KindTraditional
)

// Request is the canonical form of one search. Identity fields (Kind
// through DisableBitmap) make up the cache key; the remaining fields are
// execution inputs that either route around the cache (Sampled, Degraded,
// NoCache, a Deadline-bounded stream) or are only consulted on a miss
// (Resolve, MaxWeightFor, Store, Yield).
type Request struct {
	Kind Kind
	// Rule is the expansion target: the drilled rule for batch/stream,
	// the re-counted rule for refine, the base rule for traditional.
	Rule rule.Rule
	// K is the rules-per-expansion for batch (and the mw probe size).
	K int
	// MaxRules bounds a stream (0 = unbounded); it shapes the result list,
	// so it is part of the key.
	MaxRules int
	// MinGainRatio is the stream's tail cutoff (see brs.Options).
	MinGainRatio float64
	// Weighter scores rules; its Name() canonicalizes it in the key.
	Weighter weight.Weighter
	// Agg is the aggregate; its Name() canonicalizes it in the key.
	Agg score.Aggregator
	// MaxWeight is the configured mw; <= 0 means each execution estimates
	// it via MaxWeightFor (the estimate is deterministic in Seed, so the
	// configured value — not the estimate — belongs in the key).
	MaxWeight float64
	// Seed fixes the mw probe's sampling RNG.
	Seed int64
	// Workers, DisableParallel and DisableBitmap shape the execution; they
	// are keyed conservatively (results are proven bit-identical across
	// worker counts only under the Count aggregate).
	Workers         int
	DisableParallel bool
	DisableBitmap   bool
	// Column is the traditional listing's group-by column.
	Column int

	// Deadline bounds a stream. A deadline-bounded stream can truncate
	// anywhere, so it bypasses the cache and singleflight entirely rather
	// than ever being replayed as a complete expansion.
	//
	//sdlint:nonidentity deadline-bounded streams never enter the cache (Run routes them around it)
	Deadline time.Time
	// Yield receives stream results one at a time (nil outside streams).
	// It always runs on the requesting goroutine — on a miss live from the
	// search, on a hit replayed from the cached result list — so callers
	// may touch caller-locked state inside it.
	//
	//sdlint:nonidentity delivery callback: hits replay the cached list through it, so it cannot change the answer
	Yield func(brs.Result) bool

	// Sampled marks a request whose view would be served by the session's
	// stateful sample handler: the answer depends on per-session sample
	// history, so it is never shared through the cache.
	//
	//sdlint:nonidentity cache-routing flag: sampled requests bypass the cache entirely
	Sampled bool
	// Degraded marks an overload-ladder request; it bypasses the cache so
	// degraded behavior (forced sampling, no extra work) stays exactly as
	// without the service.
	//
	//sdlint:nonidentity cache-routing flag: degraded requests bypass the cache entirely
	Degraded bool
	// NoCache bypasses the cache for this request (the session-level
	// DisableCache ablation).
	//
	//sdlint:nonidentity cache-routing flag: NoCache requests bypass the cache entirely
	NoCache bool

	// Store is the caller's accounting store; refine and traditional
	// execute their accounted passes through it on a miss.
	//
	//sdlint:nonidentity accounting plumbing consulted only on a miss; every store sees the same table
	Store *storage.Store
	// Resolve lazily produces the batch/stream view: the rule's covered
	// tuples, the estimate scale, and whether counts are exact. It runs
	// only on a miss — a cache hit skips the filter work entirely — and
	// always on the requesting goroutine.
	//
	//sdlint:nonidentity view resolution is a pure function of the keyed Rule against the dataset
	Resolve func() (v *table.View, scale float64, exact bool, err error)
	// MaxWeightFor estimates mw from the resolved view when MaxWeight is
	// unset (deterministic in the key's Seed and K/MaxRules fields).
	//
	//sdlint:nonidentity mw estimation is deterministic in the keyed Seed/K/MaxRules fields
	MaxWeightFor func(v *table.View) float64
}

// Response is the outcome of one search. Exactly one of Results (batch,
// stream), Count (refine), or Groups (traditional) is meaningful. Cached
// responses are always exact with Scale 1 — only such results enter the
// cache — and their Stats carry only the cache counters: the stored
// expansion's search work was already accounted by the request that ran
// it.
type Response struct {
	Results []brs.Result
	Count   float64
	Groups  []baseline.Group
	Scale   float64
	Exact   bool
	Stats   brs.Stats
	// Cached reports the response was served without executing BRS — an
	// LRU hit, or a singleflight waiter adopting the leader's run.
	Cached bool
}

// Config tunes a Service.
type Config struct {
	// Entries bounds the answer cache (LRU beyond it). 0 means the default
	// of 256 completed expansions.
	Entries int
	// Disabled turns the cache and singleflight off: every request
	// executes directly, as if the service were a plain function call.
	Disabled bool
}

// DefaultEntries is the answer-cache bound when Config.Entries is 0.
const DefaultEntries = 256

// key is the canonicalized request identity. It is a comparable struct —
// rule identity is the fixed-size PackedKey against the empty base mask,
// falling back to the string form for rules too wide to pack — so cache
// and flight lookups are single map operations with no allocation.
type key struct {
	version  uint64
	kind     Kind
	packed   rule.PackedKey
	wide     string // Rule.Key() when the rule exceeds PackedKey capacity
	k        int
	maxRules int
	minGain  float64
	weighter string
	agg      string
	maxW     float64
	seed     int64
	workers  int
	serial   bool
	nobitmap bool
	column   int
}

// entry is one cached completed search: an immutable master copy whose
// rules are cloned again on every hit.
type entry struct {
	results []brs.Result
	count   float64
	groups  []baseline.Group
}

// flight is one in-progress execution that identical requests wait on.
// done is closed after err (and, on success, the published cache entry)
// are written, so waiters read both race-free.
type flight struct {
	done  chan struct{}
	entry *entry // nil when the run failed or produced an uncacheable result
	err   error
}

// Service owns every BRS invocation against one dataset. The zero value
// is not usable; construct with NewService. All methods are safe for
// concurrent use.
type Service struct {
	cfg Config

	mu      sync.Mutex
	lru     *list.List            // guardedby: mu (front = most recent; values are *lruItem)
	byKey   map[key]*list.Element // guardedby: mu
	flights map[key]*flight       // guardedby: mu

	hits   atomic.Int64
	misses atomic.Int64
	waits  atomic.Int64
	warmed atomic.Int64
	// version stamps every cache key. It is always 0 today; BumpVersion is
	// the invalidation hook for mutable datasets (ROADMAP item 4) — one
	// bump orphans every cached answer without touching the entries.
	version atomic.Uint64

	// onFlightWait, when non-nil, runs each time a request starts waiting
	// on another request's in-flight execution — a deterministic
	// synchronization point for concurrency tests. Never set in production.
	onFlightWait func()
}

type lruItem struct {
	k key
	e *entry
}

// NewService builds a search service for one dataset.
func NewService(cfg Config) *Service {
	if cfg.Entries <= 0 {
		cfg.Entries = DefaultEntries
	}
	return &Service{
		cfg:     cfg,
		lru:     list.New(),
		byKey:   make(map[key]*list.Element),
		flights: make(map[key]*flight),
	}
}

// Counters is a point-in-time snapshot of the service's cache activity,
// surfaced per dataset in /v1/health.
type Counters struct {
	Entries           int
	Hits              int64
	Misses            int64
	SingleflightWaits int64
	Warmed            int64
}

// Counters returns a snapshot of the cache counters.
func (s *Service) Counters() Counters {
	s.mu.Lock()
	entries := s.lru.Len()
	s.mu.Unlock()
	return Counters{
		Entries:           entries,
		Hits:              s.hits.Load(),
		Misses:            s.misses.Load(),
		SingleflightWaits: s.waits.Load(),
		Warmed:            s.warmed.Load(),
	}
}

// MarkWarmed records one completed warm precomputation (the serving
// layer's RegisterDataset warmers call it per expansion they land).
func (s *Service) MarkWarmed() { s.warmed.Add(1) }

// Version returns the dataset version stamped into every cache key.
func (s *Service) Version() uint64 { return s.version.Load() }

// BumpVersion advances the dataset version: every previously cached
// answer becomes unreachable (and ages out of the LRU) without scanning
// the cache. This is the invalidation hook for mutable datasets; nothing
// bumps it today.
func (s *Service) BumpVersion() { s.version.Add(1) }

// keyOf canonicalizes a request.
func (s *Service) keyOf(req Request) key {
	k := key{
		version:  s.version.Load(),
		kind:     req.Kind,
		k:        req.K,
		maxRules: req.MaxRules,
		minGain:  req.MinGainRatio,
		maxW:     req.MaxWeight,
		seed:     req.Seed,
		workers:  req.Workers,
		serial:   req.DisableParallel,
		nobitmap: req.DisableBitmap,
		column:   req.Column,
	}
	if req.Weighter != nil {
		k.weighter = req.Weighter.Name()
	}
	if req.Agg != nil {
		k.agg = req.Agg.Name()
	}
	if packed, ok := req.Rule.PackKey(rule.Mask{}); ok {
		k.packed = packed
	} else {
		k.wide = req.Rule.Key()
	}
	return k
}

// Run executes (or serves) one search. Requests that can never be shared
// — sampled, degraded, cache-disabled, or deadline-bounded streams —
// execute directly with bit-identical behavior to the pre-service call
// sites. Everything else consults the answer cache, joins an identical
// in-flight execution, or runs as the flight leader and publishes its
// completed result.
func (s *Service) Run(ctx context.Context, req Request) (Response, error) {
	if s.cfg.Disabled || req.NoCache || req.Sampled || req.Degraded ||
		(req.Kind == KindStream && !req.Deadline.IsZero()) {
		resp, _, err := s.execute(ctx, req, false)
		return resp, err
	}
	k := s.keyOf(req)
	for {
		s.mu.Lock()
		if e, ok := s.lookup(k); ok {
			s.mu.Unlock()
			s.hits.Add(1)
			return replay(e, req, brs.Stats{CacheHits: 1}), nil
		}
		if f, ok := s.flights[k]; ok {
			s.mu.Unlock()
			if s.onFlightWait != nil {
				s.onFlightWait()
			}
			select {
			case <-ctx.Done():
				return Response{}, ctx.Err()
			case <-f.done:
			}
			if f.err != nil {
				if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
					// The leader's own context died, which says nothing
					// about this request: loop and re-elect a leader.
					continue
				}
				// A genuine search failure would hit every waiter alike.
				return Response{}, f.err
			}
			if f.entry == nil {
				// The leader finished but its result was uncacheable (a
				// stream stopped early by its consumer); run it ourselves.
				continue
			}
			s.waits.Add(1)
			return replay(f.entry, req, brs.Stats{SingleflightWaits: 1}), nil
		}
		f := &flight{done: make(chan struct{})}
		s.flights[k] = f
		s.mu.Unlock()

		resp, e, err := s.execute(ctx, req, true)
		s.mu.Lock()
		delete(s.flights, k)
		if err == nil && e != nil {
			s.insert(k, e)
		}
		s.mu.Unlock()
		f.entry, f.err = e, err
		close(f.done)
		if err == nil {
			s.misses.Add(1)
			resp.Stats.CacheMisses = 1
		}
		return resp, err
	}
}

// lookup finds and refreshes a cached entry.
//
//sdlint:holds mu — called only under Run's critical section
func (s *Service) lookup(k key) (*entry, bool) {
	el, ok := s.byKey[k]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*lruItem).e, true
}

// insert files a completed search, evicting the least recently used
// entry beyond the configured bound.
//
//sdlint:holds mu — called only under Run's critical section
func (s *Service) insert(k key, e *entry) {
	if el, ok := s.byKey[k]; ok {
		s.lru.MoveToFront(el)
		el.Value.(*lruItem).e = e
		return
	}
	s.byKey[k] = s.lru.PushFront(&lruItem{k: k, e: e})
	for s.lru.Len() > s.cfg.Entries {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.byKey, oldest.Value.(*lruItem).k)
	}
}

// execute runs the search for real. cacheable asks it to also build the
// publishable entry — a deep clone, so the caller's (mutable) response
// and the shared cache never alias — when the result is complete, exact,
// and unscaled. Partial statistics ride back even on error: an aborted
// search did real work the session's accounting must see.
func (s *Service) execute(ctx context.Context, req Request, cacheable bool) (Response, *entry, error) {
	switch req.Kind {
	case KindBatch:
		view, scale, exact, err := req.Resolve()
		if err != nil {
			return Response{}, nil, err
		}
		mw := req.MaxWeight
		if mw <= 0 {
			mw = req.MaxWeightFor(view)
		}
		results, stats, err := brs.RunCtx(ctx, view, req.Weighter, brs.Options{
			K:               req.K,
			MaxWeight:       mw,
			Base:            req.Rule,
			BaseCovered:     true, // Resolve delivers exactly the rule's coverage
			Agg:             req.Agg,
			Workers:         req.Workers,
			DisableParallel: req.DisableParallel,
			DisableBitmap:   req.DisableBitmap,
			SampleScale:     scale,
		})
		resp := Response{Results: results, Scale: scale, Exact: exact, Stats: stats}
		if err != nil {
			return resp, nil, err
		}
		var e *entry
		if cacheable && exact && scale == 1 {
			e = &entry{results: cloneResults(results)}
		}
		return resp, e, nil

	case KindStream:
		view, scale, exact, err := req.Resolve()
		if err != nil {
			return Response{}, nil, err
		}
		mw := req.MaxWeight
		if mw <= 0 {
			mw = req.MaxWeightFor(view)
		}
		var collected []brs.Result
		stopped := false
		stats, err := brs.RunIncrementalCtx(ctx, view, req.Weighter, brs.Options{
			MaxWeight:       mw,
			Base:            req.Rule,
			BaseCovered:     true,
			Agg:             req.Agg,
			Workers:         req.Workers,
			DisableParallel: req.DisableParallel,
			DisableBitmap:   req.DisableBitmap,
			MinGainRatio:    req.MinGainRatio,
			SampleScale:     scale,
		}, req.MaxRules, req.Deadline, func(r brs.Result) bool {
			collected = append(collected, r)
			if req.Yield != nil && !req.Yield(r) {
				stopped = true
				return false
			}
			return true
		})
		resp := Response{Results: collected, Scale: scale, Exact: exact, Stats: stats}
		if err != nil {
			return resp, nil, err
		}
		var e *entry
		// A consumer-stopped stream is truncated: the search would have
		// gone on. It must never be replayed as the complete expansion.
		if cacheable && !stopped && exact && scale == 1 {
			e = &entry{results: cloneResults(collected)}
		}
		return resp, e, nil

	case KindRefine:
		var count float64
		if _, isCount := req.Agg.(score.CountAgg); isCount {
			count = float64(req.Store.CountExact(req.Rule))
		} else {
			t := req.Store.Table()
			req.Store.Scan(func(i int) bool {
				if t.Covers(req.Rule, i) {
					count += req.Agg.Mass(t, i)
				}
				return true
			})
		}
		var e *entry
		if cacheable {
			e = &entry{count: count}
		}
		return Response{Count: count, Scale: 1, Exact: true}, e, nil

	case KindTraditional:
		groups, err := baseline.TraditionalDrillDown(req.Store.Table(), req.Rule, req.Column, req.Agg)
		if err != nil {
			return Response{}, nil, err
		}
		var e *entry
		if cacheable {
			e = &entry{groups: cloneGroups(groups)}
		}
		return Response{Groups: groups, Scale: 1, Exact: true}, e, nil
	}
	return Response{}, nil, errors.New("search: unknown request kind")
}

// replay serves a cached entry: every rule slice is cloned so no two
// consumers (or the cache itself) ever share backing arrays, and stream
// consumers see their Yield called per rule exactly as on a live search.
func replay(e *entry, req Request, stats brs.Stats) Response {
	resp := Response{Scale: 1, Exact: true, Stats: stats, Cached: true, Count: e.count}
	switch req.Kind {
	case KindBatch, KindStream:
		resp.Results = cloneResults(e.results)
		if req.Kind == KindStream && req.Yield != nil {
			for i := range resp.Results {
				if !req.Yield(resp.Results[i]) {
					resp.Results = resp.Results[:i+1]
					break
				}
			}
		}
	case KindTraditional:
		resp.Groups = cloneGroups(e.groups)
	}
	return resp
}

func cloneResults(rs []brs.Result) []brs.Result {
	if rs == nil {
		return nil
	}
	out := make([]brs.Result, len(rs))
	for i, r := range rs {
		out[i] = r
		out[i].Rule = append(rule.Rule(nil), r.Rule...)
	}
	return out
}

func cloneGroups(gs []baseline.Group) []baseline.Group {
	if gs == nil {
		return nil
	}
	out := make([]baseline.Group, len(gs))
	for i, g := range gs {
		out[i] = g
		out[i].Rule = append(rule.Rule(nil), g.Rule...)
	}
	return out
}

package search

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"smartdrill/internal/brs"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/storage"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// testTable builds a small deterministic two-column table with enough
// structure for BRS to find rules.
func testTable() *table.Table {
	b := table.MustBuilder([]string{"A", "B"}, nil)
	rows := [][]string{
		{"x", "y"}, {"x", "y"}, {"x", "y"}, {"x", "z"},
		{"w", "y"}, {"w", "y"}, {"w", "z"}, {"v", "z"},
	}
	for _, r := range rows {
		b.MustAddRow(r)
	}
	return b.Build()
}

// batchReq builds a cacheable batch request against tab. Resolve counts
// its invocations through resolves so tests can assert whether a request
// executed or was served from the cache.
func batchReq(tab *table.Table, resolves *atomic.Int32) Request {
	return Request{
		Kind:      KindBatch,
		Rule:      rule.Trivial(tab.NumCols()),
		K:         2,
		Weighter:  weight.NewSize(tab.NumCols()),
		Agg:       score.CountAgg{},
		MaxWeight: 10, // fixed mw: MaxWeightFor must not be needed
		Resolve: func() (*table.View, float64, bool, error) {
			resolves.Add(1)
			return tab.All(), 1, true, nil
		},
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	tab := testTable()
	var resolves atomic.Int32
	svc := NewService(Config{})

	first, err := svc.Run(context.Background(), batchReq(tab, &resolves))
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached || first.Stats.CacheMisses != 1 || len(first.Results) == 0 {
		t.Fatalf("first run: cached=%v misses=%d results=%d", first.Cached, first.Stats.CacheMisses, len(first.Results))
	}
	second, err := svc.Run(context.Background(), batchReq(tab, &resolves))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical run not served from cache")
	}
	// A hit never resolves the view or runs a pass; its stats carry only
	// the hit marker (the stored run's work was already accounted).
	if resolves.Load() != 1 {
		t.Fatalf("resolve ran %d times; cache hit must skip it", resolves.Load())
	}
	if second.Stats.CacheHits != 1 || second.Stats.Passes != 0 || second.Stats.RowsScanned != 0 {
		t.Fatalf("hit stats = %+v; want only CacheHits=1", second.Stats)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatalf("cached results diverge:\nfirst:  %v\nsecond: %v", first.Results, second.Results)
	}
	c := svc.Counters()
	if c.Hits != 1 || c.Misses != 1 || c.Entries != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestHitResultsAreClones(t *testing.T) {
	tab := testTable()
	var resolves atomic.Int32
	svc := NewService(Config{})

	first, err := svc.Run(context.Background(), batchReq(tab, &resolves))
	if err != nil {
		t.Fatal(err)
	}
	want := append([]brs.Result(nil), cloneResults(first.Results)...)
	// Corrupt the caller's copy in place: the cache's master must be
	// unaffected, and so must every later hit.
	for i := range first.Results {
		for c := range first.Results[i].Rule {
			first.Results[i].Rule[c] = 999
		}
		first.Results[i].Count = -1
	}
	second, err := svc.Run(context.Background(), batchReq(tab, &resolves))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(second.Results, want) {
		t.Fatalf("mutating a served response corrupted the cache:\ngot  %v\nwant %v", second.Results, want)
	}
}

func TestLRUBoundAndEviction(t *testing.T) {
	tab := testTable()
	var resolves atomic.Int32
	svc := NewService(Config{Entries: 2})

	reqWithSeed := func(seed int64) Request {
		r := batchReq(tab, &resolves)
		r.Seed = seed // distinct key per seed
		return r
	}
	for seed := int64(1); seed <= 3; seed++ {
		if _, err := svc.Run(context.Background(), reqWithSeed(seed)); err != nil {
			t.Fatal(err)
		}
	}
	if c := svc.Counters(); c.Entries != 2 {
		t.Fatalf("entries = %d, want LRU bound 2", c.Entries)
	}
	// Seed 1 is the least recently used and must have been evicted: its
	// re-run executes again. Seed 3 is still resident: a hit.
	before := resolves.Load()
	if resp, err := svc.Run(context.Background(), reqWithSeed(1)); err != nil || resp.Cached {
		t.Fatalf("evicted key served from cache (err=%v cached=%v)", err, resp.Cached)
	}
	if resolves.Load() != before+1 {
		t.Fatal("evicted key did not re-execute")
	}
	if resp, err := svc.Run(context.Background(), reqWithSeed(3)); err != nil || !resp.Cached {
		t.Fatalf("resident key not served from cache (err=%v cached=%v)", err, resp.Cached)
	}
}

func TestBumpVersionOrphansCachedAnswers(t *testing.T) {
	tab := testTable()
	var resolves atomic.Int32
	svc := NewService(Config{})

	if _, err := svc.Run(context.Background(), batchReq(tab, &resolves)); err != nil {
		t.Fatal(err)
	}
	svc.BumpVersion()
	if svc.Version() != 1 {
		t.Fatalf("version = %d after one bump", svc.Version())
	}
	resp, err := svc.Run(context.Background(), batchReq(tab, &resolves))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Cached || resolves.Load() != 2 {
		t.Fatalf("post-bump run served stale answer (cached=%v resolves=%d)", resp.Cached, resolves.Load())
	}
}

func TestBypassesNeverTouchCache(t *testing.T) {
	tab := testTable()
	cases := []struct {
		name string
		cfg  Config
		mod  func(*Request)
	}{
		{"disabled service", Config{Disabled: true}, func(*Request) {}},
		{"NoCache request", Config{}, func(r *Request) { r.NoCache = true }},
		{"Sampled request", Config{}, func(r *Request) { r.Sampled = true }},
		{"Degraded request", Config{}, func(r *Request) { r.Degraded = true }},
		{"deadline stream", Config{}, func(r *Request) {
			r.Kind = KindStream
			r.Deadline = time.Now().Add(time.Minute)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var resolves atomic.Int32
			svc := NewService(tc.cfg)
			for i := 0; i < 2; i++ {
				req := batchReq(tab, &resolves)
				tc.mod(&req)
				resp, err := svc.Run(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if resp.Cached {
					t.Fatal("bypass request served from cache")
				}
			}
			if resolves.Load() != 2 {
				t.Fatalf("resolve ran %d times, want 2 (no sharing)", resolves.Load())
			}
			if c := svc.Counters(); c.Entries != 0 || c.Hits != 0 || c.Misses != 0 {
				t.Fatalf("bypass requests touched the cache: %+v", c)
			}
		})
	}
}

func TestSingleflightCollapsesConcurrentIdentical(t *testing.T) {
	tab := testTable()
	svc := NewService(Config{})

	var execs atomic.Int32
	var waiting atomic.Int32
	svc.onFlightWait = func() { waiting.Add(1) }
	gate := make(chan struct{})
	mkReq := func() Request {
		var ignored atomic.Int32
		req := batchReq(tab, &ignored)
		req.Resolve = func() (*table.View, float64, bool, error) {
			execs.Add(1)
			<-gate // hold the flight open until every waiter has joined
			return tab.All(), 1, true, nil
		}
		return req
	}

	const waiters = 9
	results := make([]Response, 1+waiters)
	errs := make([]error, 1+waiters)
	var wg sync.WaitGroup

	// Elect a deterministic leader: start one request and wait until it is
	// inside Resolve (flight registered) before releasing the others.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], errs[0] = svc.Run(context.Background(), mkReq())
	}()
	waitFor(t, func() bool { return execs.Load() == 1 })

	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = svc.Run(context.Background(), mkReq())
		}(i)
	}
	waitFor(t, func() bool { return waiting.Load() == waiters })
	close(gate)
	wg.Wait()

	if execs.Load() != 1 {
		t.Fatalf("BRS executed %d times for %d identical requests", execs.Load(), 1+waiters)
	}
	c := svc.Counters()
	if c.Misses != 1 || c.SingleflightWaits != waiters || c.Hits != 0 {
		t.Fatalf("counters = %+v; want misses=1 waits=%d hits=0", c, waiters)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d failed: %v", i, err)
		}
		if !reflect.DeepEqual(results[i].Results, results[0].Results) {
			t.Fatalf("request %d diverged from the leader", i)
		}
	}
	if results[0].Cached || results[0].Stats.CacheMisses != 1 {
		t.Fatalf("leader stats = %+v", results[0].Stats)
	}
	for i := 1; i <= waiters; i++ {
		if !results[i].Cached || results[i].Stats.SingleflightWaits != 1 {
			t.Fatalf("waiter %d stats = %+v cached=%v", i, results[i].Stats, results[i].Cached)
		}
	}
}

func TestCanceledLeaderReelectsWaiter(t *testing.T) {
	tab := testTable()
	svc := NewService(Config{})

	var waiting atomic.Int32
	svc.onFlightWait = func() { waiting.Add(1) }

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()
	leaderIn := make(chan struct{})
	leaderReq := Request{
		Kind: KindBatch, Rule: rule.Trivial(2), K: 2,
		Weighter: weight.NewSize(2), Agg: score.CountAgg{}, MaxWeight: 10,
		Resolve: func() (*table.View, float64, bool, error) {
			close(leaderIn)
			<-leaderCtx.Done()
			return nil, 0, false, leaderCtx.Err()
		},
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := svc.Run(leaderCtx, leaderReq)
		leaderErr <- err
	}()
	<-leaderIn

	var resolves atomic.Int32
	waiterDone := make(chan struct{})
	var waiterResp Response
	var waiterErr error
	go func() {
		defer close(waiterDone)
		waiterResp, waiterErr = svc.Run(context.Background(), batchReq(tab, &resolves))
	}()
	waitFor(t, func() bool { return waiting.Load() == 1 })
	cancelLeader()

	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want Canceled", err)
	}
	<-waiterDone
	// The leader's cancellation says nothing about the waiter's request:
	// the waiter must have re-elected itself and completed the search.
	if waiterErr != nil {
		t.Fatalf("waiter poisoned by canceled leader: %v", waiterErr)
	}
	if waiterResp.Cached || resolves.Load() != 1 || len(waiterResp.Results) == 0 {
		t.Fatalf("waiter did not re-run: cached=%v resolves=%d results=%d",
			waiterResp.Cached, resolves.Load(), len(waiterResp.Results))
	}
	// And its completed run is published for everyone after it.
	if resp, err := svc.Run(context.Background(), batchReq(tab, &resolves)); err != nil || !resp.Cached {
		t.Fatalf("re-elected run not cached (err=%v cached=%v)", err, resp.Cached)
	}
}

func TestGenuineFailureSharedWithWaiters(t *testing.T) {
	tab := testTable()
	svc := NewService(Config{})
	var waiting atomic.Int32
	svc.onFlightWait = func() { waiting.Add(1) }

	boom := errors.New("boom")
	leaderIn := make(chan struct{})
	gate := make(chan struct{})
	leaderReq := batchReq(tab, new(atomic.Int32))
	leaderReq.Resolve = func() (*table.View, float64, bool, error) {
		close(leaderIn)
		<-gate
		return nil, 0, false, boom
	}
	leaderErr := make(chan error, 1)
	go func() {
		_, err := svc.Run(context.Background(), leaderReq)
		leaderErr <- err
	}()
	<-leaderIn

	waiterErr := make(chan error, 1)
	go func() {
		_, err := svc.Run(context.Background(), batchReq(tab, new(atomic.Int32)))
		waiterErr <- err
	}()
	waitFor(t, func() bool { return waiting.Load() == 1 })
	close(gate)

	// A genuine search failure (not a leader-local cancellation) would hit
	// any executor alike, so the waiter fails fast with the same error.
	if err := <-leaderErr; !errors.Is(err, boom) {
		t.Fatalf("leader error = %v", err)
	}
	if err := <-waiterErr; !errors.Is(err, boom) {
		t.Fatalf("waiter error = %v, want the leader's failure", err)
	}
}

func streamReq(tab *table.Table, resolves *atomic.Int32) Request {
	req := batchReq(tab, resolves)
	req.Kind = KindStream
	return req
}

func TestTruncatedStreamNeverCached(t *testing.T) {
	tab := testTable()
	var resolves atomic.Int32
	svc := NewService(Config{})

	req := streamReq(tab, &resolves)
	req.Yield = func(brs.Result) bool { return false } // consumer stops after one rule
	resp, err := svc.Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("stopped stream delivered %d rules", len(resp.Results))
	}
	if c := svc.Counters(); c.Entries != 0 {
		t.Fatal("a consumer-truncated stream entered the cache")
	}
	// A later unbounded identical stream must run for real and see the
	// full rule list, not the truncation.
	full, err := svc.Run(context.Background(), streamReq(tab, &resolves))
	if err != nil {
		t.Fatal(err)
	}
	if full.Cached || len(full.Results) <= 1 || resolves.Load() != 2 {
		t.Fatalf("truncated result replayed as complete: cached=%v rules=%d resolves=%d",
			full.Cached, len(full.Results), resolves.Load())
	}
}

func TestStreamReplayDrivesYield(t *testing.T) {
	tab := testTable()
	var resolves atomic.Int32
	svc := NewService(Config{})

	var live []rule.Rule
	req := streamReq(tab, &resolves)
	req.Yield = func(r brs.Result) bool { live = append(live, r.Rule); return true }
	if _, err := svc.Run(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	var replayed []rule.Rule
	req2 := streamReq(tab, &resolves)
	req2.Yield = func(r brs.Result) bool { replayed = append(replayed, r.Rule); return true }
	resp, err := svc.Run(context.Background(), req2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached || resolves.Load() != 1 {
		t.Fatalf("second stream not replayed (cached=%v resolves=%d)", resp.Cached, resolves.Load())
	}
	if !reflect.DeepEqual(live, replayed) {
		t.Fatalf("replay diverged:\nlive:     %v\nreplayed: %v", live, replayed)
	}
}

func TestRefineAndTraditionalCached(t *testing.T) {
	tab := testTable()
	st := storage.NewStore(tab)
	svc := NewService(Config{})

	r := rule.Trivial(2)
	r[0] = tab.All().Value(0, 0) // A = "x"
	refine := Request{Kind: KindRefine, Rule: r, Agg: score.CountAgg{}, Store: st}
	first, err := svc.Run(context.Background(), refine)
	if err != nil {
		t.Fatal(err)
	}
	second, err := svc.Run(context.Background(), refine)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Count != first.Count || first.Count != 4 {
		t.Fatalf("refine: first=%v second=%v cached=%v", first.Count, second.Count, second.Cached)
	}

	trad := Request{Kind: KindTraditional, Rule: rule.Trivial(2), Column: 0, Agg: score.CountAgg{}, Store: st}
	g1, err := svc.Run(context.Background(), trad)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := svc.Run(context.Background(), trad)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Cached || !reflect.DeepEqual(g1.Groups, g2.Groups) || len(g1.Groups) == 0 {
		t.Fatalf("traditional: groups=%v cached=%v", g2.Groups, g2.Cached)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

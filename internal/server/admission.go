package server

import (
	"context"
	"net/http"
	"time"

	"smartdrill"
)

// Admission control: work endpoints (session create, drill, collapse,
// refine, traditional, stream) pass through a concurrency limiter before
// any engine work runs. The overload ladder has three rungs:
//
//  1. full speed — a slot is free, the request runs normally;
//  2. degraded — slots are scarce (in-use ≥ DegradeFraction of the cap):
//     the request still runs, but its context is marked degraded, which
//     forces sampled sessions down the provisional pipeline and skips
//     background refinement/prefetch (cheap answers before shed load);
//  3. shed — every slot stayed busy for the whole AdmissionWait: the
//     request is rejected with 429 overloaded + Retry-After, having cost
//     the server nothing. A shed request never started executing, so
//     clients (the SDK included) may retry it safely regardless of
//     method.
//
// Cheap read endpoints (health, datasets, tree, delete) bypass admission
// so probes and dashboards keep working while the server sheds work.
type admission struct {
	slots      chan struct{} // buffered to the concurrency cap
	wait       time.Duration // max queueing time before shedding
	degradeAt  int           // in-use count at/above which requests run degraded
	retryAfter time.Duration // hint for shed responses
}

func newAdmission(maxConcurrent int, wait time.Duration, degradeFraction float64, retryAfter time.Duration) *admission {
	degradeAt := int(float64(maxConcurrent)*degradeFraction + 0.5)
	if degradeAt < 1 {
		degradeAt = 1
	}
	return &admission{
		slots:      make(chan struct{}, maxConcurrent),
		wait:       wait,
		degradeAt:  degradeAt,
		retryAfter: retryAfter,
	}
}

// acquire claims a concurrency slot, queueing up to the admission wait.
// ok=false means the request must be shed; otherwise release returns the
// slot and degraded reports whether the ladder's middle rung applies.
func (a *admission) acquire(ctx context.Context) (release func(), degraded, ok bool) {
	select {
	case a.slots <- struct{}{}:
	default:
		timer := time.NewTimer(a.wait)
		defer timer.Stop()
		select {
		case a.slots <- struct{}{}:
		case <-timer.C:
			return nil, false, false
		case <-ctx.Done():
			return nil, false, false
		}
	}
	return func() { <-a.slots }, len(a.slots) >= a.degradeAt, true
}

// InUse reports the number of currently admitted work requests.
func (a *admission) InUse() int { return len(a.slots) }

// withAdmission is the admission + degradation + deadline middleware for
// one work endpoint. stream marks SSE endpoints, which keep their slot
// for the whole stream but are exempt from the per-request deadline (the
// anytime budget already bounds their search; a blanket deadline would
// cut long-lived streams mid-event).
func (s *Server) withAdmission(stream bool, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.adm != nil {
			release, degraded, ok := s.adm.acquire(r.Context())
			if !ok {
				writeOverloaded(w, s.adm.retryAfter)
				return
			}
			defer release()
			if degraded {
				r = r.WithContext(smartdrill.WithDegraded(r.Context()))
			}
		}
		if !stream && s.cfg.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"smartdrill"
	"smartdrill/api"
)

func TestAdmissionAcquireRelease(t *testing.T) {
	// degradeAt = ceil-ish(2×1.0) = 2: only the last slot runs degraded.
	a := newAdmission(2, 10*time.Millisecond, 1.0, time.Second)
	r1, deg1, ok := a.acquire(context.Background())
	if !ok || deg1 {
		t.Fatalf("first acquire: ok=%v degraded=%v", ok, deg1)
	}
	r2, deg2, ok := a.acquire(context.Background())
	if !ok || !deg2 {
		t.Fatalf("second acquire: ok=%v degraded=%v", ok, deg2)
	}
	if _, _, ok := a.acquire(context.Background()); ok {
		t.Fatal("third acquire should shed after the wait")
	}
	r1()
	r2()
	if a.InUse() != 0 {
		t.Fatalf("InUse = %d after releases", a.InUse())
	}
}

func TestAdmissionAcquireCanceledContext(t *testing.T) {
	a := newAdmission(1, time.Minute, 1, time.Second)
	release, _, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire failed")
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, _, ok := a.acquire(ctx); ok {
		t.Fatal("acquire succeeded with all slots held")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("canceled acquire waited out the full minute")
	}
}

// TestOverloadSheds429: with a single slot held by a slow request, a
// second work request is shed with 429 overloaded and a positive integer
// Retry-After header.
func TestOverloadSheds429(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1, AdmissionWait: 5 * time.Millisecond, RetryAfter: 2 * time.Second})
	tree := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Seed: 1})

	// Occupy the only slot with a held-open stream request.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	hold := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		req, _ := http.NewRequestWithContext(ctx, "GET",
			ts.URL+"/v1/sessions/"+tree.ID+"/drill/stream?budget_ms=5000", nil)
		resp, err := http.DefaultClient.Do(req)
		close(hold)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // reads until cancel ends the stream
	}()
	<-hold
	time.Sleep(50 * time.Millisecond) // let the stream claim its slot

	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want positive integer seconds", resp.Header.Get("Retry-After"))
	}
	var env api.ErrorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == nil || env.Error.Code != api.ErrOverloaded {
		t.Fatalf("overload envelope: %+v err %v", env, err)
	}
	cancel() // release the stream's slot
	wg.Wait()

	// Ungated endpoints keep answering while work is shed.
	if code := doJSON(t, "GET", ts.URL+"/v1/health", nil, nil); code != http.StatusOK {
		t.Fatalf("health under overload: status %d", code)
	}
}

// TestDegradedSkipsBackgroundRefine: under degraded pressure a sampled
// drill keeps its provisional children — the background refiner is not
// scheduled — while the same drill unpressured refines them.
func TestDegradedSkipsBackgroundRefine(t *testing.T) {
	run := func(t *testing.T, pressure bool) (provisionalLeft bool) {
		t.Helper()
		// DegradeFraction 0 means any admitted request runs degraded.
		cfg := Config{BackgroundRefine: true, MaxConcurrent: 4, DegradeFraction: 1}
		if pressure {
			cfg.DegradeFraction = 0.000001 // rounds to degradeAt=1: always degraded
		}
		s, ts := newTestServer(t, cfg)
		tree := createSession(t, ts.URL, api.CreateSessionRequest{
			Dataset: "store", Seed: 7, SampleMemory: 3000, MinSampleSize: 500,
		})
		var dr api.DrillResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/drill",
			api.DrillRequest{Node: tree.Root.ID}, &dr); code != http.StatusOK {
			t.Fatalf("drill: status %d", code)
		}
		s.WaitRefiners()
		var full api.Tree
		if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+tree.ID+"/tree", nil, &full); code != http.StatusOK {
			t.Fatalf("tree: status %d", code)
		}
		for _, c := range full.Root.Children {
			if !c.Exact {
				provisionalLeft = true
			}
		}
		return provisionalLeft
	}
	if run(t, false) {
		t.Fatal("unpressured drill left provisional children despite BackgroundRefine")
	}
	if !run(t, true) {
		t.Skip("sampled drill produced no provisional children to keep") // engine answered exactly; nothing to assert
	}
}

// TestDegradedForcesSampledPath: a degraded context forces the sampled
// (provisional) access path on a session whose views would otherwise be
// counted exactly.
func TestDegradedForcesSampledPath(t *testing.T) {
	eng, err := smartdrill.New(storeTable(),
		smartdrill.WithK(4),
		smartdrill.WithSeed(7),
		smartdrill.WithSampling(3000, 500),
		smartdrill.WithSampleThreshold(10_000_000), // threshold so high nothing samples normally
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.DrillDownCtx(context.Background(), eng.Root()); err != nil {
		t.Fatal(err)
	}
	if got := eng.LastAccessMethod(); got != "direct" {
		t.Fatalf("unpressured drill used %q access, want direct", got)
	}
	eng.Collapse(eng.Root())

	ctx := smartdrill.WithDegraded(context.Background())
	if !smartdrill.IsDegraded(ctx) {
		t.Fatal("IsDegraded lost the flag")
	}
	if err := eng.DrillDownCtx(ctx, eng.Root()); err != nil {
		t.Fatal(err)
	}
	if got := eng.LastAccessMethod(); got == "direct" {
		t.Fatal("degraded drill still used the direct access path")
	}
}

// TestAdmissionDisabled: MaxConcurrent < 0 turns the limiter off entirely.
func TestAdmissionDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: -1})
	if s.adm != nil {
		t.Fatal("admission limiter built despite MaxConcurrent -1")
	}
	createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Seed: 1})
}

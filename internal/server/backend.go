package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SessionBackend is the pluggable durability layer behind the session
// store. The server writes one opaque snapshot record per session id —
// write-through on every mutation — and reads it back to rehydrate a
// session that is not in memory (evicted, or created by a previous
// process). Implementations must be safe for concurrent use; the server
// additionally serializes writes per session, so an implementation never
// sees two concurrent Saves of the same id.
//
// The default implementation is DirBackend (one fsynced JSON file per
// session). Replicated deployments can substitute a shared object store
// so any replica resumes any session id (ROADMAP item 2).
type SessionBackend interface {
	// Save durably stores the snapshot record for id, replacing any
	// previous one.
	Save(id string, data []byte) error
	// Load returns the stored record, or ErrNoSnapshot when id has none.
	Load(id string) ([]byte, error)
	// Delete removes id's record; deleting an absent id returns
	// ErrNoSnapshot.
	Delete(id string) error
	// List enumerates the ids with stored records, in no particular
	// order.
	List() ([]string, error)
}

// ErrNoSnapshot reports that a backend holds no record for the session id.
var ErrNoSnapshot = errors.New("server: no snapshot for session")

// validSnapshotID gates ids before they reach a backend: session ids are
// server-minted hex, but Load is driven by the URL path, so anything else
// (traversal attempts included) is rejected as simply-not-found.
func validSnapshotID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// DirBackend persists one snapshot file per session under a directory:
// <dir>/<id>.json, written atomically (temp file + fsync + rename) so a
// crash mid-write never corrupts the previous snapshot. It is the default
// SessionBackend behind smartdrilld's -snapshot-dir flag.
type DirBackend struct {
	dir string

	// Inject, when non-nil, is consulted before each disk operation with
	// the operation name ("save", "load", "delete", "list"); a non-nil
	// return is surfaced as that operation's failure. It is the
	// fault-injection seam the chaos suite drives (internal/faultinject);
	// production leaves it nil.
	Inject func(op string) error
}

// NewDirBackend opens (creating if needed) a snapshot directory.
func NewDirBackend(dir string) (*DirBackend, error) {
	if dir == "" {
		return nil, errors.New("server: snapshot directory must not be empty")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: creating snapshot directory: %w", err)
	}
	return &DirBackend{dir: dir}, nil
}

// Dir reports the backing directory.
func (b *DirBackend) Dir() string { return b.dir }

func (b *DirBackend) inject(op string) error {
	if b.Inject == nil {
		return nil
	}
	return b.Inject(op)
}

func (b *DirBackend) path(id string) string {
	return filepath.Join(b.dir, id+".json")
}

// Save writes the record atomically: a temp file in the same directory is
// fully written and fsynced, then renamed over the target, so readers (and
// post-crash recovery) see either the old snapshot or the new one — never
// a torn write.
func (b *DirBackend) Save(id string, data []byte) error {
	if !validSnapshotID(id) {
		return fmt.Errorf("server: invalid snapshot id %q", id)
	}
	if err := b.inject("save"); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(b.dir, ".tmp-"+id+"-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), b.path(id))
}

func (b *DirBackend) Load(id string) ([]byte, error) {
	if !validSnapshotID(id) {
		return nil, ErrNoSnapshot
	}
	if err := b.inject("load"); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(b.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, ErrNoSnapshot
	}
	return data, err
}

func (b *DirBackend) Delete(id string) error {
	if !validSnapshotID(id) {
		return ErrNoSnapshot
	}
	if err := b.inject("delete"); err != nil {
		return err
	}
	err := os.Remove(b.path(id))
	if errors.Is(err, os.ErrNotExist) {
		return ErrNoSnapshot
	}
	return err
}

func (b *DirBackend) List() ([]string, error) {
	if err := b.inject("list"); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		name := e.Name()
		id, ok := strings.CutSuffix(name, ".json")
		if !ok || e.IsDir() || !validSnapshotID(id) {
			continue // temp files, strangers
		}
		ids = append(ids, id)
	}
	return ids, nil
}

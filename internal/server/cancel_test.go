package server

// Cancellation contract: an abandoned request's context rides into the
// BRS search and stops it between counting passes, without poisoning the
// session. The stream test cancels deterministically — the response
// writer's Flush hook fires the cancel synchronously while the handler is
// emitting the first rule, so the search provably aborts before finding a
// second one.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"smartdrill/api"
)

// cancelWriter is an http.ResponseWriter + Flusher whose Flush invokes a
// hook synchronously on a chosen flush ordinal. Flush #1 is the handler's
// header flush; flush #2 accompanies the first SSE rule event.
type cancelWriter struct {
	header  http.Header
	body    bytes.Buffer
	status  int
	flushes int
	hookAt  int
	hook    func()
}

func (cw *cancelWriter) Header() http.Header {
	if cw.header == nil {
		cw.header = make(http.Header)
	}
	return cw.header
}

func (cw *cancelWriter) WriteHeader(status int) { cw.status = status }

func (cw *cancelWriter) Write(p []byte) (int, error) {
	if cw.status == 0 {
		cw.status = http.StatusOK
	}
	return cw.body.Write(p)
}

func (cw *cancelWriter) Flush() {
	cw.flushes++
	if cw.flushes == cw.hookAt && cw.hook != nil {
		cw.hook()
	}
}

// serveDirect drives the server's handler synchronously with a custom
// writer and context — no network, so the test owns the request lifecycle.
func serveDirect(s *Server, ctx context.Context, method, target string, body []byte, w http.ResponseWriter) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd).WithContext(ctx)
	s.Handler().ServeHTTP(w, req)
}

// sseEventsFrom parses SSE events out of a recorded response body.
func sseEventsFrom(t *testing.T, body string) []sseEvent {
	t.Helper()
	return readSSE(t, strings.NewReader(body))
}

func TestStreamCancelStopsSearch(t *testing.T) {
	cfg := Config{Logger: log.New(io.Discard, "", 0)}
	s := New(cfg)
	s.RegisterDataset("census", censusTable())

	create := func() string {
		rec := httptest.NewRecorder()
		body, _ := json.Marshal(api.CreateSessionRequest{Dataset: "census", K: 4, Seed: 3})
		serveDirect(s, context.Background(), "POST", "/v1/sessions", body, rec)
		if rec.Code != http.StatusCreated {
			t.Fatalf("create: status %d: %s", rec.Code, rec.Body.String())
		}
		var tree api.Tree
		if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
			t.Fatal(err)
		}
		return tree.ID
	}

	// Control: an uncanceled stream on this dataset finds at least three
	// rules, so a canceled run stopping at one proves the abort.
	controlID := create()
	ctl := httptest.NewRecorder()
	serveDirect(s, context.Background(), "GET",
		"/v1/sessions/"+controlID+"/drill/stream?budget_ms=30000&max_rules=3", nil, ctl)
	ctlRules := 0
	for _, ev := range sseEventsFrom(t, ctl.Body.String()) {
		if ev.event == "rule" {
			ctlRules++
		}
	}
	if ctlRules < 3 {
		t.Fatalf("control stream found %d rules; dataset too small for the cancel test", ctlRules)
	}

	// Canceled run: the cancel fires synchronously inside the Flush that
	// emits the first rule event, so the BRS search observes it at its
	// next pass boundary — deterministically before a second rule exists.
	id := create()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cw := &cancelWriter{hookAt: 2, hook: cancel}
	serveDirect(s, ctx, "GET",
		"/v1/sessions/"+id+"/drill/stream?budget_ms=30000", nil, cw)

	events := sseEventsFrom(t, cw.body.String())
	rules := 0
	var done *api.DoneEvent
	for _, ev := range events {
		switch ev.event {
		case "rule":
			rules++
		case "done":
			done = &api.DoneEvent{}
			if err := json.Unmarshal([]byte(ev.data), done); err != nil {
				t.Fatal(err)
			}
		}
	}
	if rules != 1 {
		t.Fatalf("canceled stream emitted %d rules, want exactly 1", rules)
	}
	if done == nil {
		t.Fatal("canceled stream ended without a done event")
	}
	if done.ErrorCode != api.ErrCanceled {
		t.Fatalf("done error code %q, want %q (error %q)", done.ErrorCode, api.ErrCanceled, done.Error)
	}
	if done.Rules != 1 || done.Refined != 0 {
		t.Fatalf("done reports rules %d refined %d, want 1/0", done.Rules, done.Refined)
	}

	// The aborted search's work is visible in the session's accumulated
	// SearchStats — and strictly smaller than the control session's.
	sess, ok := s.store.get(id)
	if !ok {
		t.Fatal("canceled session vanished")
	}
	sess.mu.Lock()
	canceledStats := sess.eng.TotalSearchStats()
	sess.mu.Unlock()
	if canceledStats.Passes == 0 && canceledStats.PostingsRead == 0 {
		t.Fatal("canceled search recorded no work at all")
	}
	ctlSess, _ := s.store.get(controlID)
	ctlSess.mu.Lock()
	ctlStats := ctlSess.eng.TotalSearchStats()
	ctlSess.mu.Unlock()
	if canceledStats.RowsScanned+canceledStats.PostingsRead >= ctlStats.RowsScanned+ctlStats.PostingsRead {
		t.Fatalf("canceled search read %d rows+postings, control read %d — the abort saved nothing",
			canceledStats.RowsScanned+canceledStats.PostingsRead, ctlStats.RowsScanned+ctlStats.PostingsRead)
	}

	// Not poisoned: the same session drills normally afterwards.
	rec := httptest.NewRecorder()
	body, _ := json.Marshal(api.DrillRequest{})
	serveDirect(s, context.Background(), "POST", "/v1/sessions/"+id+"/drill", body, rec)
	if rec.Code != http.StatusOK {
		t.Fatalf("drill after cancel: status %d: %s", rec.Code, rec.Body.String())
	}
	var dr api.DrillResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil {
		t.Fatal(err)
	}
	if len(dr.Node.Children) != 4 {
		t.Fatalf("drill after cancel returned %d children, want 4", len(dr.Node.Children))
	}
}

// TestBatchDrillCanceledContext: a batch drill whose context is already
// dead is rejected with the canceled error code and leaves the session
// usable.
func TestBatchDrillCanceledContext(t *testing.T) {
	cfg := Config{Logger: log.New(io.Discard, "", 0)}
	s := New(cfg)
	s.RegisterDataset("store", storeTable())

	rec := httptest.NewRecorder()
	body, _ := json.Marshal(api.CreateSessionRequest{Dataset: "store"})
	serveDirect(s, context.Background(), "POST", "/v1/sessions", body, rec)
	var tree api.Tree
	if err := json.Unmarshal(rec.Body.Bytes(), &tree); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dead := httptest.NewRecorder()
	drill, _ := json.Marshal(api.DrillRequest{})
	serveDirect(s, ctx, "POST", "/v1/sessions/"+tree.ID+"/drill", drill, dead)
	if dead.Code != api.StatusCanceled {
		t.Fatalf("canceled drill: status %d, want %d: %s", dead.Code, api.StatusCanceled, dead.Body.String())
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(dead.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Error == nil || env.Error.Code != api.ErrCanceled {
		t.Fatalf("error envelope %+v, want code %q", env.Error, api.ErrCanceled)
	}

	ok := httptest.NewRecorder()
	serveDirect(s, context.Background(), "POST", "/v1/sessions/"+tree.ID+"/drill", drill, ok)
	if ok.Code != http.StatusOK {
		t.Fatalf("drill after canceled drill: status %d", ok.Code)
	}
}

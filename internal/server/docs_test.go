package server

// Documentation gate: the checked-in OpenAPI spec must cover every
// mounted /v1 route (and never contain tabs, which YAML forbids in
// indentation — the cheapest in-repo parse check without a YAML
// dependency; CI additionally parses the file with a real YAML loader).

import (
	"os"
	"strings"
	"testing"
)

func TestOpenAPISpecCoversRoutes(t *testing.T) {
	raw, err := os.ReadFile("../../docs/openapi.yaml")
	if err != nil {
		t.Fatalf("spec missing: %v", err)
	}
	spec := string(raw)
	if !strings.HasPrefix(spec, "openapi:") {
		t.Fatal("docs/openapi.yaml does not start with an openapi version stanza")
	}
	if strings.Contains(spec, "\t") {
		t.Fatal("docs/openapi.yaml contains tab characters (invalid YAML indentation)")
	}
	// One entry per mux pattern in routes(); update both together.
	routes := []string{
		"/v1/health:",
		"/v1/datasets:",
		"/v1/sessions:",
		"/v1/sessions/{id}/tree:",
		"/v1/sessions/{id}/drill:",
		"/v1/sessions/{id}/collapse:",
		"/v1/sessions/{id}/refine:",
		"/v1/sessions/{id}/traditional:",
		"/v1/sessions/{id}/drill/stream:",
		"/v1/sessions/{id}:",
	}
	for _, r := range routes {
		if !strings.Contains(spec, r) {
			t.Errorf("docs/openapi.yaml missing path %q", strings.TrimSuffix(r, ":"))
		}
	}
	// Every machine-readable error code is declared.
	for _, code := range []string{"bad_request", "not_found", "bad_rule", "budget", "canceled", "internal"} {
		if !strings.Contains(spec, code) {
			t.Errorf("docs/openapi.yaml missing error code %q", code)
		}
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"smartdrill"
)

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"sessions": s.store.len(),
	})
}

// datasetJSON describes one registered dataset.
type datasetJSON struct {
	Name     string   `json:"name"`
	Rows     int      `json:"rows"`
	Columns  []string `json:"columns"`
	Measures []string `json:"measures,omitempty"`
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := []datasetJSON{}
	for _, name := range s.datasetNames() {
		d, _ := s.dataset(name)
		out = append(out, datasetJSON{
			Name:     name,
			Rows:     d.table.NumRows(),
			Columns:  d.table.ColumnNames(),
			Measures: d.measures,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// createRequest is the body of POST /v1/sessions.
type createRequest struct {
	// Dataset names a registered dataset (required).
	Dataset string `json:"dataset"`
	// K is rules per expansion; 0 means the server default.
	K int `json:"k"`
	// Weighter is "size" (default), "bits", or "size-1".
	Weighter string `json:"weighter"`
	// SampleMemory and MinSampleSize enable dynamic sampling when both are
	// positive (Section 4 of the paper); Prefetch additionally reallocates
	// samples after each expansion.
	SampleMemory  int  `json:"sample_memory"`
	MinSampleSize int  `json:"min_sample_size"`
	Prefetch      bool `json:"prefetch"`
	// SampleThreshold routes expansions by (sub)view size: views that can
	// exceed this many rows are searched on a sample (provisional,
	// confidence-bounded counts, refined to exact afterwards), smaller
	// ones exactly. 0 samples every expansion when sampling is enabled.
	SampleThreshold int `json:"sample_threshold"`
	// DisableSampling forces exact search even when the sampling fields
	// are set — the ablation/debugging switch.
	DisableSampling bool `json:"disable_sampling"`
	// Sum optimizes the named measure column instead of tuple counts.
	Sum string `json:"sum"`
	// Seed fixes the sampling RNG for reproducible sessions.
	Seed int64 `json:"seed"`
	// Workers overrides the server's per-expansion BRS parallelism.
	Workers int `json:"workers"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req createRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Dataset == "" {
		writeError(w, http.StatusBadRequest, "dataset is required")
		return
	}
	d, ok := s.dataset(req.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown dataset %q", req.Dataset))
		return
	}
	eng, err := s.buildEngine(d, req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess := &session{
		id:      newSessionID(),
		dataset: req.Dataset,
		eng:     eng,
	}
	if evicted := s.store.put(sess); evicted != "" {
		s.cfg.Logger.Printf("session %s evicted (per-shard LRU, session cap %d)", evicted, s.cfg.MaxSessions)
	}
	sess.mu.Lock()
	tree := encodeTree(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, tree)
}

// buildEngine translates a create request into an Engine on the dataset.
func (s *Server) buildEngine(d dataset, req createRequest) (*smartdrill.Engine, error) {
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > 100 {
		return nil, fmt.Errorf("k %d too large (max 100)", k)
	}
	weighter, err := smartdrill.WeighterByName(d.table, req.Weighter)
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	opts := []smartdrill.Option{
		smartdrill.WithK(k),
		smartdrill.WithWeighter(weighter),
		smartdrill.WithWorkers(workers),
	}
	if req.SampleMemory > 0 && req.MinSampleSize > 0 {
		opts = append(opts, smartdrill.WithSampling(req.SampleMemory, req.MinSampleSize))
		if req.Prefetch {
			opts = append(opts, smartdrill.WithPrefetch())
		}
		if req.SampleThreshold > 0 {
			opts = append(opts, smartdrill.WithSampleThreshold(req.SampleThreshold))
		}
	}
	if req.DisableSampling {
		opts = append(opts, smartdrill.WithSamplingDisabled())
	}
	if req.Sum != "" {
		o, err := smartdrill.WithSum(d.table, req.Sum)
		if err != nil {
			return nil, err
		}
		opts = append(opts, o)
	}
	if req.Seed != 0 {
		opts = append(opts, smartdrill.WithSeed(req.Seed))
	}
	return smartdrill.New(d.table, opts...)
}

// lookupSession resolves the {id} path segment, writing a 404 on miss.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := s.store.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q (expired, evicted, or never created)", id))
		return nil, false
	}
	return sess, true
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	sess.mu.Lock()
	tree := encodeTree(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, tree)
}

// drillRequest is the body of POST /v1/sessions/{id}/drill and
// /collapse. Path addresses the target node (empty = root). For drill, a
// non-empty Column requests the paper's star drill-down on that column.
type drillRequest struct {
	Path   []int  `json:"path"`
	Column string `json:"column"`
}

// drillResponse returns the expanded (or collapsed) subtree plus the access
// method BRS used to obtain tuples ("direct", "Find", "Combine", "Create")
// and, for expansions, the search statistics of the BRS run — clients can
// watch candidate reuse and postings-vs-scan routing per request.
type drillResponse struct {
	Access string                  `json:"access,omitempty"`
	Search *smartdrill.SearchStats `json:"search,omitempty"`
	Node   *nodeJSON               `json:"node"`
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req drillRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Encode under the session lock, write after releasing it: a slow
	// client reading the response must not hold up the session.
	sess.mu.Lock()
	n, err := sess.eng.NodeByPath(req.Path)
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Column != "" {
		err = sess.eng.DrillDownStar(n, req.Column)
	} else {
		err = sess.eng.DrillDown(n)
	}
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	stats := sess.eng.LastSearchStats()
	resp := drillResponse{
		Access: sess.eng.LastAccessMethod(),
		Search: &stats,
		Node:   encodeNode(sess.eng, n, req.Path),
	}
	var provisional []*smartdrill.Node
	if s.cfg.BackgroundRefine {
		provisional = sess.eng.ProvisionalNodesIn(n)
	}
	sess.mu.Unlock()
	if len(provisional) > 0 {
		// Respond with the provisional estimates immediately; exact counts
		// arrive in the background and show up on the next /tree fetch.
		s.refiners.Add(1)
		go s.refineNodes(sess, provisional)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCollapse(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req drillRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.mu.Lock()
	n, err := sess.eng.NodeByPath(req.Path)
	if err != nil {
		sess.mu.Unlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sess.eng.Collapse(n)
	resp := drillResponse{Node: encodeNode(sess.eng, n, req.Path)}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.store.remove(id) {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

// decodeBody parses a JSON request body into v, rejecting unknown fields so
// client typos surface as 400s instead of silently-default behavior. An
// empty body decodes as the zero request.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"smartdrill"
	"smartdrill/api"
)

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := api.Health{
		Status:          "ok",
		Version:         smartdrill.Version,
		Sessions:        s.store.len(),
		PersistFailures: s.PersistFailures(),
		Datasets:        []api.DatasetHealth{},
	}
	for _, name := range s.datasetNames() {
		d, _ := s.dataset(name)
		dh := api.DatasetHealth{Name: name, Rows: d.table.NumRows()}
		if d.svc != nil {
			c := d.svc.Counters()
			dh.Cache = &api.CacheHealth{
				Entries:           c.Entries,
				Hits:              c.Hits,
				Misses:            c.Misses,
				SingleflightWaits: c.SingleflightWaits,
				Warmed:            c.Warmed,
			}
		}
		h.Datasets = append(h.Datasets, dh)
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out := api.DatasetList{Datasets: []api.Dataset{}}
	for _, name := range s.datasetNames() {
		d, _ := s.dataset(name)
		out.Datasets = append(out.Datasets, api.Dataset{
			Name:     name,
			Rows:     d.table.NumRows(),
			Columns:  d.table.ColumnNames(),
			Measures: d.measures,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, api.ErrBadRequest, err.Error())
		return
	}
	if req.Dataset == "" {
		writeError(w, api.ErrBadRequest, "dataset is required")
		return
	}
	d, ok := s.dataset(req.Dataset)
	if !ok {
		writeError(w, api.ErrNotFound, fmt.Sprintf("unknown dataset %q", req.Dataset))
		return
	}
	eng, err := s.buildEngine(d, req)
	if err != nil {
		code := api.ErrBadRequest
		if errors.Is(err, errKTooLarge) {
			code = api.ErrBudget
		}
		writeError(w, code, err.Error())
		return
	}
	sess := &session{
		id:      newSessionID(),
		dataset: req.Dataset,
		created: time.Now().UTC(),
		req:     req,
		eng:     eng,
	}
	s.putSession(sess)
	s.persistSession(sess)
	sess.mu.Lock()
	tree := encodeTree(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusCreated, tree)
}

// errKTooLarge classifies the oversized-k rejection so the handler can
// report it under the budget error code.
var errKTooLarge = errors.New("k too large")

// buildEngine translates a create request into an Engine on the dataset.
func (s *Server) buildEngine(d dataset, req api.CreateSessionRequest) (*smartdrill.Engine, error) {
	k := req.K
	if k <= 0 {
		k = s.cfg.DefaultK
	}
	if k > 100 {
		return nil, fmt.Errorf("%w: %d (max 100)", errKTooLarge, k)
	}
	weighter, err := smartdrill.WeighterByName(d.table, req.Weighter)
	if err != nil {
		return nil, err
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	opts := []smartdrill.Option{
		smartdrill.WithK(k),
		smartdrill.WithWeighter(weighter),
		smartdrill.WithWorkers(workers),
	}
	if d.svc != nil {
		// Every session on a dataset shares its search service, so repeated
		// identical expansions — across sessions, or re-drills within one —
		// are answered from the dataset's cache and concurrent identical
		// searches collapse onto one execution.
		opts = append(opts, smartdrill.WithSearchService(d.svc))
	}
	if req.SampleMemory > 0 && req.MinSampleSize > 0 {
		opts = append(opts, smartdrill.WithSampling(req.SampleMemory, req.MinSampleSize))
		if req.Prefetch {
			opts = append(opts, smartdrill.WithPrefetch())
		}
		if req.SampleThreshold > 0 {
			opts = append(opts, smartdrill.WithSampleThreshold(req.SampleThreshold))
		}
	}
	if req.DisableSampling {
		opts = append(opts, smartdrill.WithSamplingDisabled())
	}
	if req.Sum != "" {
		o, err := smartdrill.WithSum(d.table, req.Sum)
		if err != nil {
			return nil, err
		}
		opts = append(opts, o)
	}
	if req.Seed != 0 {
		opts = append(opts, smartdrill.WithSeed(req.Seed))
	}
	return smartdrill.New(d.table, opts...)
}

// lookupSession resolves the {id} path segment. A store miss is a cache
// miss, not an error, when a backend is configured: the session may have
// been evicted to disk or belong to a previous process incarnation, so the
// backend is consulted (rehydration) before writing the 404.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) (*session, bool) {
	id := r.PathValue("id")
	sess, ok := s.store.get(id)
	if !ok {
		sess, ok = s.rehydrate(id)
	}
	if !ok {
		writeError(w, api.ErrNotFound, fmt.Sprintf("unknown session %q (expired, evicted, or never created)", id))
		return nil, false
	}
	return sess, true
}

// resolveNode resolves a node reference — stable ID preferred, legacy
// child-index path otherwise, both empty meaning the root — returning the
// node and its current path. The caller must hold the session's lock. On
// failure it writes the error response and returns false: an unknown (or
// no-longer-displayed) ID is not_found, a malformed ID or invalid path is
// bad_rule.
//
//sdlint:holds mu — every handler resolves nodes inside its session critical section
func resolveNode(w http.ResponseWriter, sess *session, nodeID string, path []int) (*smartdrill.Node, []int, bool) {
	if nodeID != "" {
		n, err := sess.eng.NodeByID(nodeID)
		if err != nil {
			code := api.ErrBadRule
			if errors.Is(err, smartdrill.ErrUnknownNode) {
				code = api.ErrNotFound
			}
			writeError(w, code, err.Error())
			return nil, nil, false
		}
		p, _ := sess.eng.PathOf(n) // a resolvable ID is always displayed
		return n, p, true
	}
	n, err := sess.eng.NodeByPath(path)
	if err != nil {
		writeError(w, api.ErrBadRule, err.Error())
		return nil, nil, false
	}
	return n, path, true
}

func (s *Server) handleTree(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	sess.mu.Lock()
	tree := encodeTree(sess)
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, tree)
}

func (s *Server) handleDrill(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req api.DrillRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, api.ErrBadRequest, err.Error())
		return
	}
	// Encode under the session lock, write after releasing it: a slow
	// client reading the response must not hold up the session. The
	// request context rides into the BRS search, so a client that
	// abandons the request stops the search at the next pass boundary.
	sess.mu.Lock()
	n, path, ok := resolveNode(w, sess, req.Node, req.Path)
	if !ok {
		sess.mu.Unlock()
		return
	}
	var err error
	if req.Column != "" {
		err = sess.eng.DrillDownStarCtx(r.Context(), n, req.Column)
	} else {
		err = sess.eng.DrillDownCtx(r.Context(), n)
	}
	if err != nil {
		sess.mu.Unlock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			writeError(w, api.ErrCanceled, "request canceled during search: "+err.Error())
			return
		}
		writeError(w, api.ErrBadRule, err.Error())
		return
	}
	stats := sess.eng.LastSearchStats()
	resp := api.DrillResponse{
		Access: sess.eng.LastAccessMethod(),
		Search: encodeStats(stats),
		Node:   encodeNode(sess.eng, n, path),
	}
	var provisional []*smartdrill.Node
	// Under degraded admission pressure the refinement is skipped, not
	// queued: provisional estimates are the graceful-degradation answer,
	// and the refiner's extra counting passes are exactly the load the
	// ladder is trying to shed. The nodes stay provisional and refine on
	// demand (or on a later non-degraded drill).
	if s.cfg.BackgroundRefine && !smartdrill.IsDegraded(r.Context()) {
		provisional = sess.eng.ProvisionalNodesIn(n)
	}
	sess.mu.Unlock()
	s.persistSession(sess)
	if len(provisional) > 0 {
		// Respond with the provisional estimates immediately; exact counts
		// arrive in the background and show up on the next /tree fetch.
		s.refiners.Add(1)
		go s.refineNodes(sess, provisional)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCollapse(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req api.DrillRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, api.ErrBadRequest, err.Error())
		return
	}
	sess.mu.Lock()
	n, path, ok := resolveNode(w, sess, req.Node, req.Path)
	if !ok {
		sess.mu.Unlock()
		return
	}
	sess.eng.Collapse(n)
	resp := api.DrillResponse{Node: encodeNode(sess.eng, n, path)}
	sess.mu.Unlock()
	s.persistSession(sess)
	writeJSON(w, http.StatusOK, resp)
}

// handleRefine upgrades one provisional (sample-estimated) node to its
// exact aggregate with one accounted pass — the on-demand form of the
// provisional→exact lifecycle the SSE stream and the background refiner
// drive automatically.
func (s *Server) handleRefine(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req api.RefineRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, api.ErrBadRequest, err.Error())
		return
	}
	sess.mu.Lock()
	n, path, ok := resolveNode(w, sess, req.Node, req.Path)
	if !ok {
		sess.mu.Unlock()
		return
	}
	changed := sess.eng.RefineNode(n)
	resp := api.RefineResponse{Changed: changed, Node: encodeNode(sess.eng, n, path)}
	sess.mu.Unlock()
	if changed {
		s.persistSession(sess)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleTraditional serves the classic OLAP drill-down listing on one
// column under a node — read-only, for comparison with smart drill-down
// (Figure 4 of the paper).
func (s *Server) handleTraditional(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	var req api.TraditionalRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, api.ErrBadRequest, err.Error())
		return
	}
	if req.Column == "" {
		writeError(w, api.ErrBadRequest, "column is required")
		return
	}
	sess.mu.Lock()
	n, _, ok := resolveNode(w, sess, req.Node, req.Path)
	if !ok {
		sess.mu.Unlock()
		return
	}
	groups, err := sess.eng.TraditionalDrillDown(n, req.Column)
	sess.mu.Unlock()
	if err != nil {
		writeError(w, api.ErrBadRule, err.Error())
		return
	}
	resp := api.TraditionalResponse{Groups: []api.TraditionalGroup{}}
	for _, g := range groups {
		resp.Groups = append(resp.Groups, api.TraditionalGroup{Value: g.Value, Count: g.Count})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Delete is delete everywhere: a session evicted to disk (absent from
	// the store) must still be deletable, and a deleted session must not
	// resurrect through rehydration. Success if either layer had it.
	inStore := s.store.remove(id)
	onDisk := false
	if s.backend != nil && validSnapshotID(id) {
		switch err := s.backend.Delete(id); {
		case err == nil:
			onDisk = true
		case !errors.Is(err, ErrNoSnapshot):
			s.cfg.Logger.Printf("session %s: deleting snapshot failed: %v", id, err)
		}
	}
	if !inStore && !onDisk {
		writeError(w, api.ErrNotFound, fmt.Sprintf("unknown session %q", id))
		return
	}
	writeJSON(w, http.StatusOK, api.DeleteResponse{Deleted: id})
}

// decodeBody parses a JSON request body into v, rejecting unknown fields so
// client typos surface as 400s instead of silently-default behavior. An
// empty body decodes as the zero request.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %v", err)
	}
	return nil
}

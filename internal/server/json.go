package server

import (
	"encoding/json"
	"net/http"

	"smartdrill"
)

// nodeJSON is the wire form of one displayed rule. Path is the node's
// child-index address from the root (see Engine.NodeByPath) — clients pass
// it back to drill, collapse, or stream on the node.
type nodeJSON struct {
	Path []int `json:"path"`
	// Rule maps instantiated column names to their values; wildcarded
	// columns are absent.
	Rule map[string]string `json:"rule"`
	// Display is the full decoded rule, one cell per column, stars as "?".
	Display []string `json:"display"`
	Count   float64  `json:"count"`
	// Exact is false when Count is a sample estimate. CI, when present,
	// bounds the true count at 95% confidence; it is omitted for exact
	// counts and for estimates without interval support (Sum aggregates).
	Exact    bool        `json:"exact"`
	CI       *[2]float64 `json:"ci,omitempty"`
	Weight   float64     `json:"weight"`
	Children []*nodeJSON `json:"children,omitempty"`
}

// treeJSON is the wire form of a whole session tree.
type treeJSON struct {
	ID        string    `json:"id"`
	Dataset   string    `json:"dataset"`
	Columns   []string  `json:"columns"`
	Aggregate string    `json:"aggregate"`
	K         int       `json:"k"`
	Root      *nodeJSON `json:"root"`
	// Rendered is the paper-style aligned text table, for terminals.
	Rendered string `json:"rendered"`
}

// encodeNode converts a displayed subtree to wire form. path is the node's
// address and is copied into every descendant's extended address.
func encodeNode(e *smartdrill.Engine, n *smartdrill.Node, path []int) *nodeJSON {
	t := e.Table()
	cells := t.DecodeRule(n.Rule)
	ruleMap := make(map[string]string)
	for _, c := range n.Rule.InstantiatedColumns() {
		ruleMap[t.ColumnNames()[c]] = cells[c]
	}
	out := &nodeJSON{
		Path:    append([]int{}, path...), // non-nil so the root marshals as [] not null
		Rule:    ruleMap,
		Display: cells,
		Count:   n.Count,
		Exact:   n.Exact,
		Weight:  n.Weight,
	}
	if !n.Exact {
		// A collapsed interval on an estimate means the aggregate has no
		// interval support (Sum); advertising [est, est] as a 95% bound
		// would claim false certainty, so omit it.
		if lo, hi := e.ConfidenceInterval(n); lo != hi {
			out.CI = &[2]float64{lo, hi}
		}
	}
	for i, child := range n.Children {
		out.Children = append(out.Children, encodeNode(e, child, append(path, i)))
	}
	return out
}

// encodeTree converts a session's full displayed tree to wire form. The
// caller must hold the session's lock.
func encodeTree(sess *session) *treeJSON {
	e := sess.eng
	return &treeJSON{
		ID:        sess.id,
		Dataset:   sess.dataset,
		Columns:   e.Table().ColumnNames(),
		Aggregate: e.AggregateName(),
		K:         e.K(),
		Root:      encodeNode(e, e.Root(), nil),
		Rendered:  e.Render(),
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// writeError writes a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorJSON{Error: msg})
}

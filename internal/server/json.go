package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"smartdrill"
	"smartdrill/api"
)

// Wire encoding: the server speaks the api package's v1 DTOs exclusively —
// every response body (and SSE payload) is an api type, so the contract
// clients compile against is exactly what travels.

// encodeNode converts a displayed subtree to wire form. path is the node's
// legacy child-index address and is extended into every descendant's
// address; the stable ID rides alongside it.
func encodeNode(e *smartdrill.Engine, n *smartdrill.Node, path []int) *api.Node {
	t := e.Table()
	cells := t.DecodeRule(n.Rule)
	ruleMap := make(map[string]string)
	for _, c := range n.Rule.InstantiatedColumns() {
		ruleMap[t.ColumnNames()[c]] = cells[c]
	}
	out := &api.Node{
		ID:      e.NodeID(n),
		Path:    append([]int{}, path...), // non-nil so the root marshals as [] not null
		Rule:    ruleMap,
		Display: cells,
		Count:   n.Count,
		Exact:   n.Exact,
		Weight:  n.Weight,
	}
	// HasCI distinguishes a genuine interval (possibly [0, 0]) from "no
	// interval support" (exact counts, Sum estimates): only the former is
	// put on the wire.
	if !n.Exact && n.HasCI {
		out.CI = &[2]float64{n.CILow, n.CIHigh}
	}
	for i, child := range n.Children {
		out.Children = append(out.Children, encodeNode(e, child, append(path, i)))
	}
	return out
}

// encodeTree converts a session's full displayed tree to wire form. The
// caller must hold the session's lock.
//
//sdlint:holds mu — callers encode inside their session critical section
func encodeTree(sess *session) *api.Tree {
	e := sess.eng
	return &api.Tree{
		ID:        sess.id,
		Dataset:   sess.dataset,
		Columns:   e.Table().ColumnNames(),
		Aggregate: e.AggregateName(),
		K:         e.K(),
		Root:      encodeNode(e, e.Root(), nil),
		Rendered:  e.Render(),
	}
}

// encodeStats converts the engine's BRS counters to their wire mirror.
func encodeStats(s smartdrill.SearchStats) *api.SearchStats {
	return &api.SearchStats{
		Passes:             s.Passes,
		CandidatesCounted:  s.CandidatesCounted,
		CandidatesPruned:   s.CandidatesPruned,
		CandidatesReused:   s.CandidatesReused,
		RowsScanned:        s.RowsScanned,
		PostingsRead:       s.PostingsRead,
		BitmapWordsRead:    s.BitmapWordsRead,
		IndexLevels:        s.IndexLevels,
		CandidateCapHit:    s.CandidateCapHit,
		SampledRowsScanned: s.SampledRowsScanned,
		CacheHits:          s.CacheHits,
		CacheMisses:        s.CacheMisses,
		SingleflightWaits:  s.SingleflightWaits,
	}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away; nothing to do
}

// writeError writes the uniform v1 error envelope
// {"error":{"code":...,"message":...}} with the code's HTTP status.
func writeError(w http.ResponseWriter, code api.ErrorCode, msg string) {
	writeJSON(w, api.HTTPStatus(code), api.ErrorEnvelope{
		Error: &api.Error{Code: code, Message: msg},
	})
}

// writeOverloaded writes the shed-load response: 429 overloaded with a
// Retry-After hint in whole seconds (rounded up, at least 1 — a zero
// Retry-After would invite an immediate identical retry).
func writeOverloaded(w http.ResponseWriter, retryAfter time.Duration) {
	secs := int((retryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, api.ErrOverloaded,
		fmt.Sprintf("server at concurrency capacity; retry after %ds", secs))
}

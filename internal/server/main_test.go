package server

import (
	"testing"

	"smartdrill/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine — refiners,
// warmers, SSE writers, and rehydration must all drain. goflow proves
// statically that every spawn is tracked or declared detached; this
// proves at runtime that the tracking actually drains.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }

package server

import (
	"net/http"
	"runtime/debug"
	"time"

	"smartdrill/api"
)

// statusWriter records the response status and byte count for the request
// log. It forwards Flush so SSE streaming works through the middleware
// stack, and Unwrap so http.ResponseController finds the original writer.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(status int) {
	if sw.status == 0 {
		sw.status = status
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (sw *statusWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

// withLogging logs one line per request: method, path, status, bytes,
// duration.
func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		s.cfg.Logger.Printf("%s %s %d %dB %s", r.Method, r.URL.Path, sw.status, sw.bytes, time.Since(start).Round(time.Microsecond))
	})
}

// withRecovery converts handler panics into 500s instead of tearing down
// the connection, and logs the stack.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.cfg.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				writeError(w, api.ErrInternal, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

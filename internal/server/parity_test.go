package server

// Route-parity gate: every /v1 operation is also mounted at its bare
// unversioned legacy path, served by the same handler. These tests fail
// if the two route families ever diverge by a byte — the contract the
// deprecation story depends on.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"smartdrill/api"
)

// rawDo issues a request and returns status and raw body bytes.
func rawDo(t *testing.T, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRouteParityReads compares read endpoints on one session through both
// route families: responses must be bit-identical.
func TestRouteParityReads(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", K: 4}).ID

	pairs := []struct {
		name   string
		v1     string
		legacy string
	}{
		{"datasets", "/v1/datasets", "/datasets"},
		{"health", "/v1/health", "/healthz"},
		{"tree", "/v1/sessions/" + id + "/tree", "/sessions/" + id + "/tree"},
	}
	for _, p := range pairs {
		t.Run(p.name, func(t *testing.T) {
			c1, b1 := rawDo(t, "GET", ts.URL+p.v1, nil)
			c2, b2 := rawDo(t, "GET", ts.URL+p.legacy, nil)
			if c1 != c2 {
				t.Fatalf("status diverged: v1 %d, legacy %d", c1, c2)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatalf("bodies diverged:\nv1:     %s\nlegacy: %s", b1, b2)
			}
		})
	}
}

// TestRouteParityMutations drives an identical drill/collapse/refine/
// traditional/delete sequence through each route family on two
// identically-seeded sessions. Node IDs are session-local counters, so the
// same deterministic expansion sequence yields the same IDs — responses
// must match byte for byte once the random session ID is normalized out.
func TestRouteParityMutations(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	run := func(prefix string) []string {
		t.Helper()
		create, _ := json.Marshal(api.CreateSessionRequest{Dataset: "store", K: 4, Seed: 9})
		code, body := rawDo(t, "POST", ts.URL+prefix+"/sessions", create)
		if code != http.StatusCreated {
			t.Fatalf("create via %q: status %d", prefix, code)
		}
		var tree api.Tree
		if err := json.Unmarshal(body, &tree); err != nil {
			t.Fatal(err)
		}
		sessURL := ts.URL + prefix + "/sessions/" + tree.ID
		var out []string
		record := func(method, url string, reqBody []byte) {
			code, b := rawDo(t, method, url, reqBody)
			out = append(out, strings.ReplaceAll(fmt.Sprintf("%d:%s", code, b), tree.ID, "SID"))
		}
		drill, _ := json.Marshal(api.DrillRequest{})                                 // expand root
		star, _ := json.Marshal(api.DrillRequest{Node: "n2", Column: "Region"})      // star drill the first child by stable ID
		collapse, _ := json.Marshal(api.DrillRequest{Node: "n2"})                    // roll it up
		refine, _ := json.Marshal(api.RefineRequest{Node: "n3"})                     // exact session: no-op refine
		trad, _ := json.Marshal(api.TraditionalRequest{Node: "n1", Column: "Store"}) // classic listing under the root
		record("POST", sessURL+"/drill", drill)
		record("POST", sessURL+"/drill", star)
		record("POST", sessURL+"/collapse", collapse)
		record("POST", sessURL+"/refine", refine)
		record("POST", sessURL+"/traditional", trad)
		record("GET", sessURL+"/tree", nil)
		record("DELETE", sessURL, nil)
		return out
	}

	// The two sessions share the dataset's answer cache, so whichever run
	// goes first executes the searches and the second replays them from the
	// cache (different access method and zeroed search counters — correct,
	// but not byte-identical). A discarded priming run warms the cache so
	// both compared runs are served identically from it.
	run("/v1")
	v1 := run("/v1")
	legacy := run("")
	if len(v1) != len(legacy) {
		t.Fatalf("step counts diverged: %d vs %d", len(v1), len(legacy))
	}
	for i := range v1 {
		if v1[i] != legacy[i] {
			t.Fatalf("step %d diverged:\nv1:     %s\nlegacy: %s", i, v1[i], legacy[i])
		}
	}
}

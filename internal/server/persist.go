package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"time"

	"smartdrill/api"
)

// Durable sessions: every session mutation writes through to the
// configured SessionBackend as one self-contained record — the create
// request (the engine-rebuild recipe) plus the engine's tree snapshot,
// which persists stable node IDs. LRU eviction therefore demotes a
// session from memory to disk instead of destroying it, a store miss
// consults the backend before 404ing (rehydration), and a restarted
// process resumes every persisted session id against the same snapshot
// directory. Persistence failures degrade durability, never availability:
// they are logged and counted, and the request that triggered the write
// still succeeds.

// sessionRecord is the JSON snapshot record a backend stores per session.
type sessionRecord struct {
	// Version guards the record format; bump on incompatible change.
	Version int       `json:"version"`
	ID      string    `json:"id"`
	Dataset string    `json:"dataset"`
	Created time.Time `json:"created"`
	// Request is the original create request — replayed through
	// buildEngine on rehydration so the restored engine carries the same
	// k, weighter, sampling, and aggregate configuration.
	Request api.CreateSessionRequest `json:"request"`
	// Tree is the engine's own snapshot (Engine.SaveState): rules,
	// display statistics, confidence intervals, and stable node IDs.
	Tree json.RawMessage `json:"tree"`
}

// persistSession writes sess through to the backend (write-through on
// mutation). Callers must NOT hold sess.mu — the snapshot is taken under
// it here. Concurrent persists of one session are ordered by a sequence
// number so a slow older snapshot never overwrites a newer one.
func (s *Server) persistSession(sess *session) {
	if s.backend == nil {
		return
	}
	var buf bytes.Buffer
	sess.mu.Lock()
	sess.seq++
	seq := sess.seq
	rec := sessionRecord{
		Version: 1,
		ID:      sess.id,
		Dataset: sess.dataset,
		Created: sess.created,
		Request: sess.req,
	}
	err := sess.eng.SaveState(&buf)
	sess.mu.Unlock()
	if err != nil {
		s.persistFailures.Add(1)
		s.cfg.Logger.Printf("session %s: snapshot failed: %v", sess.id, err)
		return
	}
	rec.Tree = buf.Bytes()
	data, err := json.Marshal(rec)
	if err != nil {
		s.persistFailures.Add(1)
		s.cfg.Logger.Printf("session %s: encoding snapshot record failed: %v", sess.id, err)
		return
	}
	sess.persistMu.Lock()
	defer sess.persistMu.Unlock()
	if seq <= sess.savedSeq {
		return // a newer snapshot already landed on disk
	}
	if err := s.backend.Save(sess.id, data); err != nil {
		// Durability degraded, availability intact: the mutation already
		// happened in memory and the next successful write-through will
		// carry it (savedSeq stays put, so that write is not skipped).
		s.persistFailures.Add(1)
		s.cfg.Logger.Printf("session %s: persisting snapshot failed: %v", sess.id, err)
		return
	}
	sess.savedSeq = seq
}

// PersistFailures reports how many snapshot write-throughs have failed
// since the server started — an operational signal that sessions are
// being served from memory without a durable copy.
func (s *Server) PersistFailures() uint64 { return s.persistFailures.Load() }

// putSession inserts sess into the in-memory store. A session the insert
// evicts is demoted to disk, not destroyed: write-through already keeps
// its snapshot current, and a final best-effort persist here covers any
// earlier failed write. Without a backend, eviction is what it always
// was — the session is gone.
//
//sdlint:mutator
func (s *Server) putSession(sess *session) {
	evicted := s.store.put(sess)
	if evicted == nil {
		return
	}
	if s.backend != nil {
		s.persistSession(evicted)
		s.cfg.Logger.Printf("session %s evicted to disk (per-shard LRU, session cap %d)", evicted.id, s.cfg.MaxSessions)
		return
	}
	s.cfg.Logger.Printf("session %s evicted (per-shard LRU, session cap %d)", evicted.id, s.cfg.MaxSessions)
}

// rehydrate restores a session from the backend after a store miss. The
// single rehydration mutex keeps two concurrent misses on one id from
// building two engines; the double-check under it resolves the race to
// one winner. Returns false when the id has no snapshot (or the snapshot
// is unusable — wrong dataset, corrupt record), in which case the caller
// falls through to its usual not-found path.
//
//sdlint:allow persistguard rehydration restores the snapshot just read; persisting it back would rewrite identical bytes
func (s *Server) rehydrate(id string) (*session, bool) {
	if s.backend == nil || !validSnapshotID(id) {
		return nil, false
	}
	s.rehydrateMu.Lock()
	defer s.rehydrateMu.Unlock()
	if sess, ok := s.store.get(id); ok {
		return sess, true // another request rehydrated it first
	}
	data, err := s.backend.Load(id)
	if err != nil {
		if !errors.Is(err, ErrNoSnapshot) {
			s.cfg.Logger.Printf("session %s: loading snapshot failed: %v", id, err)
		}
		return nil, false
	}
	var rec sessionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		s.cfg.Logger.Printf("session %s: corrupt snapshot record: %v", id, err)
		return nil, false
	}
	if rec.ID != "" && rec.ID != id {
		s.cfg.Logger.Printf("session %s: snapshot record claims id %s; ignoring", id, rec.ID)
		return nil, false
	}
	d, ok := s.dataset(rec.Dataset)
	if !ok {
		s.cfg.Logger.Printf("session %s: snapshot references unregistered dataset %q", id, rec.Dataset)
		return nil, false
	}
	eng, err := s.buildEngine(d, rec.Request)
	if err != nil {
		s.cfg.Logger.Printf("session %s: rebuilding engine from snapshot failed: %v", id, err)
		return nil, false
	}
	if len(rec.Tree) > 0 {
		if err := eng.LoadState(bytes.NewReader(rec.Tree)); err != nil {
			s.cfg.Logger.Printf("session %s: restoring tree from snapshot failed: %v", id, err)
			return nil, false
		}
	}
	sess := &session{
		id:      id,
		dataset: rec.Dataset,
		created: rec.Created,
		req:     rec.Request,
		eng:     eng,
	}
	s.putSession(sess)
	s.cfg.Logger.Printf("session %s rehydrated from snapshot (dataset %q)", id, rec.Dataset)
	return sess, true
}

// RecoverSessions indexes the backend's persisted sessions at startup and
// returns how many are resumable. Sessions are rehydrated lazily — the
// first request for an id pays the engine rebuild — so recovery cost does
// not scale with the number of dormant sessions; this call exists to
// verify the backend is readable and to tell the operator what survived
// the restart. Snapshots referencing datasets that are no longer
// registered are counted separately and left on disk untouched.
func (s *Server) RecoverSessions() (resumable int, err error) {
	if s.backend == nil {
		return 0, nil
	}
	ids, err := s.backend.List()
	if err != nil {
		return 0, err
	}
	orphaned := 0
	for _, id := range ids {
		data, err := s.backend.Load(id)
		if err != nil {
			orphaned++
			continue
		}
		var rec sessionRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			orphaned++
			continue
		}
		if _, ok := s.dataset(rec.Dataset); !ok {
			orphaned++
			continue
		}
		resumable++
	}
	if orphaned > 0 {
		s.cfg.Logger.Printf("session recovery: %d resumable, %d orphaned (unreadable or dataset not registered)", resumable, orphaned)
	} else {
		s.cfg.Logger.Printf("session recovery: %d resumable session(s)", resumable)
	}
	return resumable, nil
}

package server

import (
	"encoding/json"
	"errors"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"testing"

	"smartdrill/api"
)

// newDurableServer builds a test server backed by a DirBackend on dir.
func newDurableServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	backend, err := NewDirBackend(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Backend = backend
	return newTestServer(t, cfg)
}

// fetchTree returns the raw tree JSON for byte-level comparison.
func fetchTree(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/tree")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tree: status %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRestartResumesSession: a second server process (same snapshot dir)
// serves a session created and drilled on the first, with a byte-identical
// tree — stable node IDs included.
func TestRestartResumesSession(t *testing.T) {
	dir := t.TempDir()
	_, ts1 := newDurableServer(t, dir, Config{})
	tree := createSession(t, ts1.URL, api.CreateSessionRequest{Dataset: "store", K: 4, Seed: 1})
	var dr api.DrillResponse
	if code := doJSON(t, "POST", ts1.URL+"/v1/sessions/"+tree.ID+"/drill",
		api.DrillRequest{Node: tree.Root.ID}, &dr); code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	before := fetchTree(t, ts1.URL, tree.ID)
	ts1.CloseClientConnections() // crash, not graceful shutdown
	ts1.Close()

	s2, ts2 := newDurableServer(t, dir, Config{})
	n, err := s2.RecoverSessions()
	if err != nil {
		t.Fatalf("RecoverSessions: %v", err)
	}
	if n != 1 {
		t.Fatalf("RecoverSessions = %d, want 1", n)
	}
	after := fetchTree(t, ts2.URL, tree.ID)
	if string(before) != string(after) {
		t.Fatalf("tree changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}

	// The resumed session is live, not a read-only fossil: drilling a
	// restored child by its persisted stable ID works.
	child := dr.Node.Children[0]
	var dr2 api.DrillResponse
	if code := doJSON(t, "POST", ts2.URL+"/v1/sessions/"+tree.ID+"/drill",
		api.DrillRequest{Node: child.ID}, &dr2); code != http.StatusOK {
		t.Fatalf("drill after restart: status %d", code)
	}
	if dr2.Node.ID != child.ID {
		t.Fatalf("drilled node id %q, want %q", dr2.Node.ID, child.ID)
	}
}

// TestEvictionRehydrates: with a backend configured, LRU eviction demotes
// a session to disk and the next request transparently rehydrates it —
// the pre-backend behavior (404 on evicted, TestSessionEviction) becomes a
// cache miss.
func TestEvictionRehydrates(t *testing.T) {
	_, ts := newDurableServer(t, t.TempDir(), Config{MaxSessions: 1, StoreShards: 1})
	first := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", K: 3, Seed: 1})
	before := fetchTree(t, ts.URL, first.ID)
	createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", K: 3, Seed: 2}) // evicts first

	after := fetchTree(t, ts.URL, first.ID) // store miss → rehydrate
	if string(before) != string(after) {
		t.Fatalf("rehydrated tree differs:\nbefore: %s\nafter:  %s", before, after)
	}
}

// TestProvisionalRoundTrip is the satellite check: a sampled session whose
// children carry confidence intervals (HasCI) survives evict-to-disk →
// rehydrate with the CIs intact, and RefineNode still upgrades a restored
// provisional node to exact.
func TestProvisionalRoundTrip(t *testing.T) {
	_, ts := newDurableServer(t, t.TempDir(), Config{MaxSessions: 1, StoreShards: 1})
	tree := createSession(t, ts.URL, api.CreateSessionRequest{
		Dataset: "store", Seed: 7, SampleMemory: 3000, MinSampleSize: 500,
	})
	var dr api.DrillResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/drill",
		api.DrillRequest{Node: tree.Root.ID}, &dr); code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	var provisional *api.Node
	for _, c := range dr.Node.Children {
		if !c.Exact && c.CI != nil {
			provisional = c
			break
		}
	}
	if provisional == nil {
		t.Fatalf("sampled drill produced no provisional child: %+v", dr.Node.Children)
	}

	createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", K: 3, Seed: 2}) // evict to disk

	var restored api.Tree
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+tree.ID+"/tree", nil, &restored); code != http.StatusOK {
		t.Fatalf("tree after eviction: status %d", code)
	}
	var again *api.Node
	for _, c := range restored.Root.Children {
		if c.ID == provisional.ID {
			again = c
		}
	}
	if again == nil {
		t.Fatalf("provisional node %s lost in round-trip", provisional.ID)
	}
	if again.Exact || again.CI == nil || *again.CI != *provisional.CI || again.Count != provisional.Count {
		t.Fatalf("provisional state mangled: before %+v CI %v, after %+v CI %v",
			provisional, provisional.CI, again, again.CI)
	}

	// The restored provisional node still refines to exact.
	var ref api.RefineResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/refine",
		api.RefineRequest{Node: provisional.ID}, &ref); code != http.StatusOK {
		t.Fatalf("refine after rehydrate: status %d", code)
	}
	if !ref.Changed || !ref.Node.Exact || ref.Node.CI != nil {
		t.Fatalf("refine on restored node: %+v", ref)
	}
}

// TestDeleteRemovesSnapshot: delete reaches the backend too, so a deleted
// session cannot resurrect through rehydration — even after eviction.
func TestDeleteRemovesSnapshot(t *testing.T) {
	backend, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Backend: backend, MaxSessions: 1, StoreShards: 1})
	first := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Seed: 1})
	createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Seed: 2}) // evict first to disk

	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+first.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete evicted session: status %d", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+first.ID+"/tree", nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session resurrected: status %d", code)
	}
	if _, err := backend.Load(first.ID); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("snapshot survived delete: %v", err)
	}
}

// TestPersistFailureDegradesDurabilityNotAvailability: a failing backend
// never fails requests — the mutation succeeds in memory, the failure is
// counted, and the next successful write-through carries the state.
func TestPersistFailureDegradesDurabilityNotAvailability(t *testing.T) {
	backend, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	failing := true
	backend.Inject = func(op string) error {
		if op == "save" && failing {
			return errors.New("injected disk failure")
		}
		return nil
	}
	s := New(Config{Backend: backend, Logger: log.New(io.Discard, "", 0)})
	s.RegisterDataset("store", storeTable())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	tree := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Seed: 1})
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/drill",
		api.DrillRequest{Node: tree.Root.ID}, nil); code != http.StatusOK {
		t.Fatalf("drill with failing backend: status %d", code)
	}
	if s.PersistFailures() == 0 {
		t.Fatal("failed saves were not counted")
	}
	if _, err := backend.Load(tree.ID); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("expected no snapshot while backend failing, got %v", err)
	}

	// Disk heals: the next mutation writes through the full current state.
	failing = false
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/collapse",
		api.DrillRequest{}, nil); code != http.StatusOK {
		t.Fatalf("collapse: status %d", code)
	}
	data, err := backend.Load(tree.ID)
	if err != nil {
		t.Fatalf("snapshot missing after heal: %v", err)
	}
	var rec sessionRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatalf("corrupt healed snapshot: %v", err)
	}
	if rec.ID != tree.ID || rec.Dataset != "store" {
		t.Fatalf("healed snapshot record: %+v", rec)
	}
}

// TestSnapshotIDValidation: ids arrive from URL paths, so traversal-shaped
// ids must never reach the filesystem.
func TestSnapshotIDValidation(t *testing.T) {
	for _, id := range []string{"", "../etc/passwd", "a/b", "a.b", "x y", string(make([]byte, 129))} {
		if validSnapshotID(id) {
			t.Errorf("validSnapshotID(%q) = true", id)
		}
	}
	for _, id := range []string{"abc123", "A-b_9"} {
		if !validSnapshotID(id) {
			t.Errorf("validSnapshotID(%q) = false", id)
		}
	}
	backend, err := NewDirBackend(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := backend.Load("../escape"); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("traversal id load: %v", err)
	}
}

package server

// Tests for the provisional→exact lifecycle over HTTP: refine events on
// the SSE stream and the background refiner racing live requests.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"smartdrill"
	"smartdrill/api"
	"smartdrill/internal/datagen"
)

// censusTable is a table large enough that sampled sessions actually
// sample (20k rows, 7 columns), shared across tests.
var censusTable = sync.OnceValue(func() *smartdrill.Table {
	return datagen.CensusProjected(20000, 7, 7)
})

// newSampledServer registers the census dataset alongside the store one.
func newSampledServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, ts := newTestServer(t, cfg)
	s.RegisterDataset("census", censusTable())
	return s, ts
}

// sampledCreate is the canonical sampled-session request the tests use.
func sampledCreate() api.CreateSessionRequest {
	return api.CreateSessionRequest{
		Dataset:         "census",
		K:               4,
		SampleMemory:    20000,
		MinSampleSize:   2000,
		SampleThreshold: 5000,
		Seed:            1,
	}
}

// trueCount resolves a api.Node's rule against the census table and
// returns its exact count.
func trueCount(t *testing.T, n *api.Node) float64 {
	t.Helper()
	r, err := censusTable().EncodeRule(n.Rule)
	if err != nil {
		t.Fatalf("decoding rule %v: %v", n.Rule, err)
	}
	return float64(censusTable().Count(r))
}

// TestDrillStreamRefineEvents drives the approximate pipeline end to end
// over SSE: provisional rule events with confidence intervals first, then
// one refine event per rule replacing the estimate with the exact count.
func TestDrillStreamRefineEvents(t *testing.T) {
	_, ts := newSampledServer(t, Config{})
	id := createSession(t, ts.URL, sampledCreate()).ID

	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/drill/stream?budget_ms=10000&max_rules=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) < 3 {
		t.Fatalf("got %d events, want rules + refines + done", len(events))
	}

	rules := map[string]api.Node{}   // path key → provisional node
	refines := map[string]api.Node{} // path key → refined node
	var done struct {
		Rules   int    `json:"rules"`
		Refined int    `json:"refined"`
		Access  string `json:"access"`
		Error   string `json:"error"`
	}
	for i, ev := range events {
		switch ev.event {
		case "rule", "refine":
			var n api.Node
			if err := json.Unmarshal([]byte(ev.data), &n); err != nil {
				t.Fatalf("%s payload %q: %v", ev.event, ev.data, err)
			}
			key, _ := json.Marshal(n.Path)
			if ev.event == "rule" {
				rules[string(key)] = n
			} else {
				if _, seen := rules[string(key)]; !seen {
					t.Fatalf("refine for path %s before its rule event", key)
				}
				refines[string(key)] = n
			}
		case "done":
			if i != len(events)-1 {
				t.Fatal("done event was not last")
			}
			if err := json.Unmarshal([]byte(events[i].data), &done); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unexpected event %q", ev.event)
		}
	}
	if done.Error != "" {
		t.Fatalf("stream reported error: %s", done.Error)
	}
	if done.Access == "direct" || done.Access == "" {
		t.Fatalf("access %q: the stream should have sampled", done.Access)
	}
	if len(rules) == 0 {
		t.Fatal("no rule events")
	}
	if done.Rules != len(rules) || done.Refined != len(refines) {
		t.Fatalf("done reports %d/%d, events carried %d/%d", done.Rules, done.Refined, len(rules), len(refines))
	}

	// Every provisional rule is refined, and refinement lands the exact
	// count with the interval gone.
	for key, prov := range rules {
		if prov.Exact {
			t.Fatalf("rule event at %s claims exactness off the sample", key)
		}
		if prov.CI == nil {
			t.Fatalf("provisional rule at %s has no confidence interval", key)
		}
		if prov.CI[0] > prov.Count || prov.CI[1] < prov.Count {
			t.Fatalf("rule at %s: estimate %g outside CI %v", key, prov.Count, *prov.CI)
		}
		ref, ok := refines[key]
		if !ok {
			t.Fatalf("provisional rule at %s never refined", key)
		}
		if !ref.Exact || ref.CI != nil {
			t.Fatalf("refine at %s not exact: %+v", key, ref)
		}
		if truth := trueCount(t, &ref); ref.Count != truth {
			t.Fatalf("refine at %s: count %g != exact %g", key, ref.Count, truth)
		}
	}

	// The refined counts persist in the session tree.
	var tree api.Tree
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/tree", nil, &tree); code != http.StatusOK {
		t.Fatalf("tree: status %d", code)
	}
	for _, c := range tree.Root.Children {
		if !c.Exact {
			t.Fatalf("tree child %v still provisional after stream refinement", c.Rule)
		}
	}
}

// TestBackgroundRefine: a plain (non-stream) drill on a sampled session
// responds with provisional counts, and the background refiner upgrades
// the tree to exact counts without any further request.
func TestBackgroundRefine(t *testing.T) {
	srv, ts := newSampledServer(t, Config{BackgroundRefine: true})
	id := createSession(t, ts.URL, sampledCreate()).ID

	var resp api.DrillResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/drill", api.DrillRequest{}, &resp); code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	if resp.Access == "direct" {
		t.Fatal("drill should have sampled")
	}
	provisional := 0
	for _, c := range resp.Node.Children {
		if !c.Exact {
			provisional++
		}
	}
	if provisional == 0 {
		t.Fatal("sampled drill returned no provisional children")
	}

	srv.WaitRefiners()
	var tree api.Tree
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/tree", nil, &tree); code != http.StatusOK {
		t.Fatalf("tree: status %d", code)
	}
	for _, c := range tree.Root.Children {
		if !c.Exact {
			t.Fatalf("child %v still provisional after background refinement", c.Rule)
		}
		if c.CI != nil {
			t.Fatalf("refined child %v still advertises a CI", c.Rule)
		}
	}
}

// TestBackgroundRefinerRace exercises the refiner racing live requests on
// one shared session: concurrent drills, star drills, tree fetches, and
// the per-node lock/unlock refinement cycle. Run under -race (make race /
// CI) this is the pipeline's data-race check.
func TestBackgroundRefinerRace(t *testing.T) {
	srv, ts := newSampledServer(t, Config{BackgroundRefine: true, StoreShards: 1})
	id := createSession(t, ts.URL, sampledCreate()).ID

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				var resp api.DrillResponse
				// Re-expanding the root collapses and replaces children the
				// refiner may be working on — exactly the race under test.
				if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/drill", api.DrillRequest{}, &resp); code != http.StatusOK {
					t.Errorf("drill: status %d", code)
					return
				}
				var tree api.Tree
				if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/tree", nil, &tree); code != http.StatusOK {
					t.Errorf("tree: status %d", code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	srv.WaitRefiners()

	// Quiesced: every displayed node has been refined to exact.
	var tree api.Tree
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/tree", nil, &tree); code != http.StatusOK {
		t.Fatalf("tree: status %d", code)
	}
	var walk func(n *api.Node)
	walk = func(n *api.Node) {
		if !n.Exact {
			t.Errorf("node %v still provisional after quiescence", n.Rule)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, c := range tree.Root.Children {
		walk(c)
	}
}

// Package server exposes smart drill-down sessions over the versioned v1
// JSON HTTP API — the serving layer behind cmd/smartdrilld. It manages a
// registry of named datasets and a sharded, LRU-evicting session store,
// and implements the paper's interactive operations (drill-down, star
// drill-down, roll-up, anytime streaming, provisional→exact refinement)
// as endpoints under /v1, speaking the api package's DTOs — stable string
// node IDs on the wire, a uniform {error:{code,message}} envelope, and
// request contexts threaded into the BRS search so abandoned requests
// stop paying for table passes:
//
//	GET    /v1/health                        health, version, dataset sizes
//	GET    /v1/datasets                      list registered datasets
//	POST   /v1/sessions                      create a session on a dataset
//	GET    /v1/sessions/{id}/tree            the displayed rule tree as JSON
//	POST   /v1/sessions/{id}/drill           expand a node (rule or star drill)
//	POST   /v1/sessions/{id}/collapse        roll up a node
//	POST   /v1/sessions/{id}/refine          exact-count one provisional node
//	POST   /v1/sessions/{id}/traditional     classic OLAP drill-down listing
//	GET    /v1/sessions/{id}/drill/stream    anytime expansion over SSE
//	DELETE /v1/sessions/{id}                 discard a session
//
// Every /v1 operation is also mounted at its bare unversioned path
// (/sessions, /datasets, …) as a deprecated alias served by the same
// handler; /healthz aliases /v1/health. See docs/API.md and
// docs/openapi.yaml for the full contract, and the client package for the
// Go SDK.
//
// Concurrency model: datasets are immutable once registered and shared by
// every session reading them, including one inverted index per dataset
// (built at registration) that answers every session's rule filters by
// posting-list intersection instead of per-request scans. Each session
// owns a private Engine guarded by a per-session mutex, so operations on
// one session serialize while distinct sessions run fully in parallel
// (each expansion can additionally fan out across BRS workers). The
// session registry itself is sharded to keep lookup contention off the hot
// path.
package server

import (
	"context"
	"errors"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"smartdrill"
	"smartdrill/api"
)

// Config tunes a Server. Zero values get serving defaults.
type Config struct {
	// MaxSessions caps live sessions; the least recently used session is
	// evicted when a create would exceed it. Default 1024.
	MaxSessions int
	// StoreShards is the number of independent session-store shards.
	// Default 16; tests pin it to 1 for deterministic eviction.
	StoreShards int
	// DefaultK is the rules-per-expansion when a create request does not
	// specify k. Default 3 (the paper's UI default).
	DefaultK int
	// Workers is the per-expansion BRS parallelism applied to every
	// session that does not request its own. 0 runs expansions serially.
	Workers int
	// StreamBudget is the default anytime budget for /drill/stream when
	// the request does not set budget_ms. Default 5s — the paper's
	// suggested interactive limit ("within a time limit (of say 5
	// seconds)").
	StreamBudget time.Duration
	// MaxStreamBudget bounds client-requested budgets. Default 30s.
	MaxStreamBudget time.Duration
	// ShutdownGrace bounds how long Shutdown waits for in-flight requests
	// — and, once they drain, for in-flight background refiners. Default
	// 10s.
	ShutdownGrace time.Duration
	// Backend, when set, makes sessions durable: every mutation writes a
	// snapshot through to it, LRU eviction demotes sessions to it instead
	// of destroying them, store misses rehydrate from it, and a restarted
	// server resumes every persisted session id. Nil (the default) keeps
	// the historical in-memory-only behavior. See DirBackend.
	Backend SessionBackend
	// MaxConcurrent caps concurrently executing work requests (session
	// create, drill, collapse, refine, traditional, stream) across all
	// sessions. Requests beyond the cap queue up to AdmissionWait, run
	// degraded when slots are scarce, and are shed with 429 overloaded +
	// Retry-After when every slot stays busy. Default max(64,
	// 4×GOMAXPROCS); negative disables admission control entirely.
	MaxConcurrent int
	// AdmissionWait bounds how long a work request may queue for an
	// admission slot before being shed. Default 1s.
	AdmissionWait time.Duration
	// DegradeFraction is the in-use fraction of MaxConcurrent at or above
	// which admitted requests run degraded (sampled sessions answer from
	// the provisional pipeline; background refinement and prefetch are
	// skipped). Default 0.75; values above 1 never degrade.
	DegradeFraction float64
	// RetryAfter is the Retry-After hint attached to shed (429)
	// responses. Default 1s.
	RetryAfter time.Duration
	// RequestTimeout is the default per-request deadline applied to
	// non-streaming work endpoints, threaded into the engine's context so
	// an over-deadline search stops at the next counting-pass boundary.
	// Default 30s; negative disables. Streaming endpoints are exempt —
	// their anytime budget already bounds them.
	RequestTimeout time.Duration
	// ReadHeaderTimeout and IdleTimeout configure ListenAndServe's
	// http.Server (slowloris protection and keep-alive reaping). Defaults
	// 10s and 120s. There is deliberately no WriteTimeout: SSE streams
	// hold response writers open for their whole budget.
	ReadHeaderTimeout time.Duration
	IdleTimeout       time.Duration
	// CacheEntries bounds each dataset's shared answer cache of completed
	// expansions (LRU beyond it). 0 means the service default (256).
	CacheEntries int
	// CacheOff disables the dataset answer cache and singleflight
	// entirely: every request executes its own search, as before PR 9.
	CacheOff bool
	// WarmChildren enables background warming on RegisterDataset: the root
	// expansion plus the top-N level-1 children are precomputed with the
	// server's default session parameters into the dataset's answer cache,
	// so the first analyst's default drills cost cached latency. 0 (the
	// default) disables warming — tests and embedders get untouched
	// caches; cmd/smartdrilld turns it on. Warmers are drained on shutdown
	// like the background refiners.
	WarmChildren int
	// BackgroundRefine re-counts provisional (sample-estimated) drill
	// results exactly in a background goroutine after each /drill response,
	// so a later /tree fetch shows authoritative counts without the analyst
	// paying for the passes. The SSE stream endpoint refines inline (refine
	// events) regardless of this setting. Off by default so tests and
	// embedders get deterministic trees; cmd/smartdrilld enables it.
	BackgroundRefine bool
	// Logger receives request logs; nil logs to stderr.
	Logger *log.Logger
}

func (c *Config) fill() {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.StoreShards <= 0 {
		c.StoreShards = 16
	}
	if c.DefaultK <= 0 {
		c.DefaultK = 3
	}
	if c.StreamBudget <= 0 {
		c.StreamBudget = 5 * time.Second
	}
	if c.MaxStreamBudget <= 0 {
		c.MaxStreamBudget = 30 * time.Second
	}
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = 4 * runtime.GOMAXPROCS(0)
		if c.MaxConcurrent < 64 {
			c.MaxConcurrent = 64
		}
	}
	if c.AdmissionWait <= 0 {
		c.AdmissionWait = time.Second
	}
	if c.DegradeFraction <= 0 {
		c.DegradeFraction = 0.75
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 10 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.Logger == nil {
		c.Logger = log.New(os.Stderr, "smartdrilld ", log.LstdFlags|log.Lmicroseconds)
	}
}

// dataset is an immutable registered table plus its load-time metadata
// and the search service every session on it shares (one answer cache
// and singleflight domain per dataset).
type dataset struct {
	table    *smartdrill.Table
	measures []string
	svc      *smartdrill.SearchService
}

// Server is the smart drill-down HTTP service. Construct with New, register
// datasets, then serve Handler (or use ListenAndServe for a managed
// listener with graceful shutdown).
type Server struct {
	cfg     Config
	store   *sessionStore
	backend SessionBackend // durable session layer; nil = memory only
	adm     *admission     // work-endpoint concurrency limiter; nil = unlimited

	mu       sync.RWMutex
	datasets map[string]dataset // guardedby: mu

	// rehydrateMu serializes backend rehydrations so two concurrent store
	// misses on one session id build one engine, not two.
	rehydrateMu sync.Mutex
	// persistFailures counts failed snapshot write-throughs (durability
	// degraded, availability intact).
	persistFailures atomic.Uint64

	// refiners tracks in-flight background refinement goroutines so tests
	// and embedders can await quiescence (WaitRefiners) and graceful
	// shutdown can drain them.
	refiners sync.WaitGroup
	// warmers tracks in-flight dataset warming goroutines (WarmChildren),
	// drained on shutdown like the refiners; warmCancel aborts their
	// searches at the next counting-pass boundary.
	warmers    sync.WaitGroup
	warmCtx    context.Context
	warmCancel context.CancelFunc

	handler http.Handler
}

// New builds a Server with no datasets registered.
func New(cfg Config) *Server {
	cfg.fill()
	s := &Server{
		cfg:      cfg,
		store:    newSessionStore(cfg.MaxSessions, cfg.StoreShards),
		backend:  cfg.Backend,
		datasets: make(map[string]dataset),
	}
	s.warmCtx, s.warmCancel = context.WithCancel(context.Background())
	if cfg.MaxConcurrent > 0 {
		s.adm = newAdmission(cfg.MaxConcurrent, cfg.AdmissionWait, cfg.DegradeFraction, cfg.RetryAfter)
	}
	s.handler = s.routes()
	return s
}

// RegisterDataset makes t available to sessions under the given name,
// replacing any previous registration. The table must not be mutated after
// registration: sessions read it concurrently without locks.
//
// Registration eagerly builds the table's inverted index, so every session
// on the dataset shares one set of posting lists — rule filters are
// answered by posting-list intersection instead of per-request scans, and
// no analyst's first drill-down pays the build.
// Registration also creates the dataset's search service — the answer
// cache and singleflight domain shared by every session's engine — and,
// when Config.WarmChildren is set, spawns a background warmer that
// precomputes the root expansion plus the top-N level-1 children with
// the server's default session parameters, so the first analyst's
// default drills are cache hits.
func (s *Server) RegisterDataset(name string, t *smartdrill.Table) {
	t.Index().Warm()
	d := dataset{
		table:    t,
		measures: t.MeasureNames(),
		svc: smartdrill.NewSearchService(smartdrill.SearchServiceConfig{
			Entries:  s.cfg.CacheEntries,
			Disabled: s.cfg.CacheOff,
		}),
	}
	s.mu.Lock()
	s.datasets[name] = d
	s.mu.Unlock()
	if s.cfg.WarmChildren > 0 && !s.cfg.CacheOff {
		s.warmers.Add(1)
		go s.warmDataset(name, d)
	}
}

// warmDataset precomputes the root expansion and the top WarmChildren
// level-1 children into the dataset's answer cache, using a throwaway
// engine built from an empty create request so the cache keys match the
// ones default sessions will ask for. Warming is best-effort: failures
// (including shutdown cancellation) are logged and abandoned, never
// surfaced — the cache just stays cold.
//
//sdlint:allow persistguard warming drives a throwaway engine that never backs a stored session
func (s *Server) warmDataset(name string, d dataset) {
	defer s.warmers.Done()
	eng, err := s.buildEngine(d, api.CreateSessionRequest{Dataset: name})
	if err != nil {
		s.cfg.Logger.Printf("dataset %s: warming skipped: %v", name, err)
		return
	}
	start := time.Now()
	if err := eng.DrillDownCtx(s.warmCtx, eng.Root()); err != nil {
		s.cfg.Logger.Printf("dataset %s: warming root expansion failed: %v", name, err)
		return
	}
	d.svc.MarkWarmed()
	warmed := 1
	children := eng.Root().Children
	for i := 0; i < len(children) && i < s.cfg.WarmChildren; i++ {
		if err := s.warmCtx.Err(); err != nil {
			break
		}
		if err := eng.DrillDownCtx(s.warmCtx, children[i]); err != nil {
			s.cfg.Logger.Printf("dataset %s: warming child %d failed: %v", name, i, err)
			continue
		}
		d.svc.MarkWarmed()
		warmed++
	}
	s.cfg.Logger.Printf("dataset %s: warmed %d expansions in %s", name, warmed, time.Since(start).Round(time.Millisecond))
}

// dataset looks up a registered dataset.
func (s *Server) dataset(name string) (dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// datasetNames returns registered names in sorted order.
func (s *Server) datasetNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.datasets))
	for n := range s.datasets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Handler returns the server's root handler (all routes plus logging and
// panic-recovery middleware), for mounting under httptest or a custom
// http.Server.
func (s *Server) Handler() http.Handler { return s.handler }

// SessionCount reports the number of live sessions.
func (s *Server) SessionCount() int { return s.store.len() }

// WaitRefiners blocks until every in-flight background refinement
// goroutine has finished — for tests and embedders that need the
// provisional→exact lifecycle settled before inspecting session trees.
func (s *Server) WaitRefiners() { s.refiners.Wait() }

// WaitWarmers blocks until every in-flight dataset warming goroutine has
// finished — for tests and embedders that need warm caches (or quiescent
// counters) before measuring.
func (s *Server) WaitWarmers() { s.warmers.Wait() }

// refineNodes is the background refiner: it re-counts each provisional
// node exactly (one accounted pass per node), taking the session lock per
// node so live drill requests on the same session interleave with
// refinement instead of queueing behind all the passes. The refined
// counts are persisted once at the end — losing a refinement to a crash
// costs only re-deriving exact counts, never analyst state.
func (s *Server) refineNodes(sess *session, nodes []*smartdrill.Node) {
	defer s.refiners.Done()
	changed := false
	for _, n := range nodes {
		sess.mu.Lock()
		if sess.eng.RefineNode(n) {
			changed = true
		}
		sess.mu.Unlock()
	}
	if changed {
		s.persistSession(sess)
	}
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	// Every operation is mounted twice: canonically under the versioned
	// /v1 prefix, and at the bare unversioned path as an alias that is
	// deprecated from birth — it exists so clients that hardcode
	// unversioned paths keep a migration target, never as a place to
	// diverge. Both mounts share one handler, so responses are
	// bit-identical by construction — and a parity test gate
	// (TestRouteParity*) keeps them that way.
	both := func(pattern string, h http.HandlerFunc) {
		method, path, _ := strings.Cut(pattern, " ")
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(method+" "+path, h)
	}
	// Work endpoints run engine passes and go through admission control
	// (concurrency cap → degraded mode → shed with 429) plus the default
	// per-request deadline; cheap read/delete endpoints bypass both so
	// probes and dashboards stay responsive while the server sheds work.
	both("GET /datasets", s.handleDatasets)
	both("POST /sessions", s.withAdmission(false, s.handleCreateSession))
	both("GET /sessions/{id}/tree", s.handleTree)
	both("POST /sessions/{id}/drill", s.withAdmission(false, s.handleDrill))
	both("POST /sessions/{id}/collapse", s.withAdmission(false, s.handleCollapse))
	both("POST /sessions/{id}/refine", s.withAdmission(false, s.handleRefine))
	both("POST /sessions/{id}/traditional", s.withAdmission(false, s.handleTraditional))
	both("GET /sessions/{id}/drill/stream", s.withAdmission(true, s.handleDrillStream))
	both("DELETE /sessions/{id}", s.handleDeleteSession)
	// Health: /v1/health is canonical; /healthz is the historical probe
	// path, kept for liveness checks already deployed against it.
	mux.HandleFunc("GET /v1/health", s.handleHealth)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return s.withRecovery(s.withLogging(mux))
}

// ListenAndServe serves on addr until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests (SSE
// streams included) get ShutdownGrace to finish, in-flight background
// refiners get whatever grace remains after the requests drain, and
// stragglers are cut.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: s.cfg.ReadHeaderTimeout,
		IdleTimeout:       s.cfg.IdleTimeout,
		// No WriteTimeout: SSE streams hold their response writers open
		// for the whole anytime budget; work endpoints are bounded by the
		// admission middleware's per-request deadline instead.
	}
	s.logLimits(addr)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }() //sdlint:detached listener goroutine; the select below consumes errc and Shutdown/Close unblocks it, so it ends with Serve
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.cfg.Logger.Printf("shutting down (grace %s)", s.cfg.ShutdownGrace)
		// Cancel in-flight dataset warmers first: warming is best-effort
		// precomputation, not work worth spending shutdown grace on. Their
		// searches abort at the next counting-pass boundary.
		s.warmCancel()
		shutCtx, cancel := context.WithTimeout(context.Background(), s.cfg.ShutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			srv.Close()
			return err
		}
		// Requests have drained; spend the remaining grace draining the
		// background refiners so their exact counts (and write-through
		// snapshots) land instead of being abandoned mid-count — and the
		// cancelled warmers, which exit at their next pass boundary.
		s.drainRefiners(shutCtx)
		s.drainWarmers(shutCtx)
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// drainRefiners waits for in-flight background refiners until ctx
// expires, logging whether they drained or were abandoned.
func (s *Server) drainRefiners(ctx context.Context) {
	done := make(chan struct{})
	//sdlint:detached drain waiter: exits when the refiners WaitGroup drains; abandoned by design if the grace period expires first
	go func() {
		s.refiners.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Logger.Printf("shutdown grace expired with background refiners still in flight; abandoning them")
	}
}

// drainWarmers waits for cancelled dataset warmers to notice the
// cancellation and exit, within ctx.
func (s *Server) drainWarmers(ctx context.Context) {
	done := make(chan struct{})
	//sdlint:detached drain waiter: exits when the warmers WaitGroup drains; abandoned by design if the grace period expires first
	go func() {
		s.warmers.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.cfg.Logger.Printf("shutdown grace expired with dataset warmers still in flight; abandoning them")
	}
}

// logLimits records the effective serving limits once at startup, so an
// operator can read a deployment's overload posture off the log head.
func (s *Server) logLimits(addr string) {
	maxConc := "unlimited"
	if s.adm != nil {
		maxConc = strconv.Itoa(cap(s.adm.slots))
	}
	durable := "none (sessions are memory-only; eviction and restart lose them)"
	if s.backend != nil {
		durable = "enabled (write-through snapshots; eviction demotes to backend)"
	}
	s.cfg.Logger.Printf("serving limits on %s: max-concurrent=%s admission-wait=%s degrade-fraction=%.2f request-timeout=%s read-header-timeout=%s idle-timeout=%s (no write timeout: SSE) max-sessions=%d durability=%s",
		addr, maxConc, s.cfg.AdmissionWait, s.cfg.DegradeFraction, s.cfg.RequestTimeout,
		s.cfg.ReadHeaderTimeout, s.cfg.IdleTimeout, s.cfg.MaxSessions, durable)
}

package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"smartdrill"
	"smartdrill/api"
)

// storeTable loads the bundled department-store example CSV once: the same
// end-to-end path `smartdrilld -dataset` uses.
var storeTable = sync.OnceValue(func() *smartdrill.Table {
	t, err := smartdrill.LoadCSV("../../examples/data/storesales.csv", []string{"Sales"})
	if err != nil {
		panic("bundled example CSV missing: " + err.Error())
	}
	return t
})

// newTestServer builds a Server with the bundled dataset registered and
// logs routed through t.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Logger = log.New(io.Discard, "", 0)
	s := New(cfg)
	s.RegisterDataset("store", storeTable())
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON issues a request with a JSON body and decodes a JSON response.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decoding %s %s response %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base string, req api.CreateSessionRequest) api.Tree {
	t.Helper()
	var tree api.Tree
	if code := doJSON(t, "POST", base+"/v1/sessions", req, &tree); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	if tree.ID == "" {
		t.Fatal("create session: empty id")
	}
	return tree
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Datasets listing shows the registered CSV.
	var dl struct {
		Datasets []api.Dataset `json:"datasets"`
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/datasets", nil, &dl); code != http.StatusOK {
		t.Fatalf("datasets: status %d", code)
	}
	if len(dl.Datasets) != 1 || dl.Datasets[0].Name != "store" || dl.Datasets[0].Rows != 6000 {
		t.Fatalf("datasets: got %+v", dl.Datasets)
	}

	// Create: root covers the whole table.
	tree := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", K: 4, Seed: 1})
	if tree.Root.Count != 6000 || !tree.Root.Exact {
		t.Fatalf("root: got count %v exact %v", tree.Root.Count, tree.Root.Exact)
	}
	if tree.Aggregate != "Count" || tree.K != 4 {
		t.Fatalf("tree meta: got aggregate %q k %d", tree.Aggregate, tree.K)
	}
	sessURL := ts.URL + "/v1/sessions/" + tree.ID

	// Drill the root: the paper's running example surfaces its planted
	// rules — (Walmart,?,?) with 1000 tuples among them.
	var dr api.DrillResponse
	if code := doJSON(t, "POST", sessURL+"/drill", api.DrillRequest{}, &dr); code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	if dr.Access != "direct" {
		t.Fatalf("drill access: got %q", dr.Access)
	}
	if len(dr.Node.Children) != 4 {
		t.Fatalf("drill: got %d children, want 4", len(dr.Node.Children))
	}
	var walmart *api.Node
	for _, c := range dr.Node.Children {
		if c.Rule["Store"] == "Walmart" {
			walmart = c
		}
	}
	if walmart == nil || walmart.Count != 1000 {
		t.Fatalf("drill: expected (Walmart,?,?) with count 1000, got %+v", dr.Node.Children)
	}

	// Star drill on Region under the Walmart node.
	var star api.DrillResponse
	if code := doJSON(t, "POST", sessURL+"/drill", api.DrillRequest{Path: walmart.Path, Column: "Region"}, &star); code != http.StatusOK {
		t.Fatalf("star drill: status %d", code)
	}
	for _, c := range star.Node.Children {
		if c.Rule["Region"] == "" {
			t.Fatalf("star drill returned a rule without Region: %+v", c)
		}
	}

	// Tree reflects both expansions and renders the paper-style table.
	var full api.Tree
	if code := doJSON(t, "GET", sessURL+"/tree", nil, &full); code != http.StatusOK {
		t.Fatalf("tree: status %d", code)
	}
	if len(full.Root.Children) != 4 {
		t.Fatalf("tree: got %d root children", len(full.Root.Children))
	}
	if !strings.Contains(full.Rendered, "Walmart") || !strings.Contains(full.Rendered, "Count") {
		t.Fatalf("rendered table missing content:\n%s", full.Rendered)
	}

	// Collapse the Walmart subtree.
	var col api.DrillResponse
	if code := doJSON(t, "POST", sessURL+"/collapse", api.DrillRequest{Path: walmart.Path}, &col); code != http.StatusOK {
		t.Fatalf("collapse: status %d", code)
	}
	if len(col.Node.Children) != 0 {
		t.Fatalf("collapse left %d children", len(col.Node.Children))
	}

	// Delete, then the session is gone.
	if code := doJSON(t, "DELETE", sessURL, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	if code := doJSON(t, "GET", sessURL+"/tree", nil, nil); code != http.StatusNotFound {
		t.Fatalf("tree after delete: status %d, want 404", code)
	}
}

func TestSumAggregateSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tree := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Sum: "Sales"})
	if tree.Aggregate != "Sum(Sales)" {
		t.Fatalf("aggregate: got %q, want Sum(Sales)", tree.Aggregate)
	}
	if tree.Root.Count <= 0 {
		t.Fatalf("root sum: got %v", tree.Root.Count)
	}
}

func TestSampledSessionReportsIntervals(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tree := createSession(t, ts.URL, api.CreateSessionRequest{
		Dataset: "store", Seed: 7, SampleMemory: 3000, MinSampleSize: 500,
	})
	sessURL := ts.URL + "/v1/sessions/" + tree.ID
	var dr api.DrillResponse
	if code := doJSON(t, "POST", sessURL+"/drill", api.DrillRequest{}, &dr); code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	for _, c := range dr.Node.Children {
		if c.Exact {
			continue
		}
		if c.CI == nil || c.CI[0] > c.Count || c.CI[1] < c.Count {
			t.Fatalf("estimated child without sane CI: %+v", c)
		}
	}
}

// TestSampledSumOmitsCI verifies that Sum estimates — which have no
// interval support — do not advertise a degenerate [est, est] bound.
func TestSampledSumOmitsCI(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tree := createSession(t, ts.URL, api.CreateSessionRequest{
		Dataset: "store", Sum: "Sales", Seed: 7, SampleMemory: 3000, MinSampleSize: 500,
	})
	var dr api.DrillResponse
	code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/drill", api.DrillRequest{}, &dr)
	if code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	for _, c := range dr.Node.Children {
		if !c.Exact && c.CI != nil {
			t.Fatalf("Sum estimate carries a CI: %+v", c)
		}
	}
}

// TestConcurrentSessions exercises the store's parallelism contract under
// -race: distinct sessions drill simultaneously against one shared table.
func TestConcurrentSessions(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const sessions = 8
	ids := make([]string, sessions)
	for i := range ids {
		ids[i] = createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store", Seed: int64(i + 1)}).ID
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			sessURL := ts.URL + "/v1/sessions/" + id
			var dr api.DrillResponse
			if code := doJSON(t, "POST", sessURL+"/drill", api.DrillRequest{}, &dr); code != http.StatusOK {
				errs <- fmt.Errorf("session %s drill: status %d", id, code)
				return
			}
			if len(dr.Node.Children) == 0 {
				errs <- fmt.Errorf("session %s drill: no children", id)
				return
			}
			if code := doJSON(t, "POST", sessURL+"/drill", api.DrillRequest{Path: []int{0}}, &dr); code != http.StatusOK {
				errs <- fmt.Errorf("session %s nested drill: status %d", id, code)
			}
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentDrillsOneSession hammers a single session from many
// goroutines; the per-session mutex must serialize them without racing.
func TestConcurrentDrillsOneSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"}).ID
	sessURL := ts.URL + "/v1/sessions/" + id
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var dr api.DrillResponse
			code := doJSON(t, "POST", sessURL+"/drill", api.DrillRequest{}, &dr)
			if code != http.StatusOK {
				t.Errorf("goroutine %d: status %d", i, code)
			}
		}(i)
	}
	wg.Wait()
	// The tree must be consistent afterwards: exactly one expansion's
	// worth of children (each drill collapses and re-expands).
	var tree api.Tree
	if code := doJSON(t, "GET", sessURL+"/tree", nil, &tree); code != http.StatusOK {
		t.Fatalf("tree: status %d", code)
	}
	if len(tree.Root.Children) == 0 || len(tree.Root.Children) > 3 {
		t.Fatalf("tree after concurrent drills: %d children", len(tree.Root.Children))
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  string
}

func readSSE(t *testing.T, r io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" {
				events = append(events, cur)
				cur = sseEvent{}
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading SSE stream: %v", err)
	}
	return events
}

func TestDrillStreamSSE(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"}).ID

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/drill/stream?budget_ms=2000&max_rules=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type: %q", ct)
	}
	events := readSSE(t, resp.Body)
	elapsed := time.Since(start)

	if len(events) < 2 {
		t.Fatalf("stream: got %d events, want rules + done", len(events))
	}
	last := events[len(events)-1]
	if last.event != "done" {
		t.Fatalf("stream: last event %q, want done", last.event)
	}
	var done struct {
		Rules     int    `json:"rules"`
		ElapsedMS int64  `json:"elapsed_ms"`
		Error     string `json:"error"`
	}
	if err := json.Unmarshal([]byte(last.data), &done); err != nil {
		t.Fatalf("done payload %q: %v", last.data, err)
	}
	if done.Error != "" {
		t.Fatalf("stream reported error: %s", done.Error)
	}
	if done.Rules == 0 || done.Rules > 4 {
		t.Fatalf("stream: %d rules, want 1..4", done.Rules)
	}
	for _, ev := range events[:len(events)-1] {
		if ev.event != "rule" {
			t.Fatalf("unexpected event %q before done", ev.event)
		}
		var n api.Node
		if err := json.Unmarshal([]byte(ev.data), &n); err != nil {
			t.Fatalf("rule payload %q: %v", ev.data, err)
		}
		if n.Count <= 0 {
			t.Fatalf("rule with non-positive count: %+v", n)
		}
	}
	// Rules stream into the session's tree, not a side channel.
	var tree api.Tree
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+id+"/tree", nil, &tree); code != http.StatusOK {
		t.Fatalf("tree: status %d", code)
	}
	if len(tree.Root.Children) != done.Rules {
		t.Fatalf("tree has %d children, stream reported %d rules", len(tree.Root.Children), done.Rules)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("stream took %s despite 2s budget", elapsed)
	}
}

// TestDrillStreamBudget verifies the stream honors a tight anytime budget
// rather than running the search to completion.
func TestDrillStreamBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxStreamBudget: 500 * time.Millisecond})
	id := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"}).ID
	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/drill/stream?budget_ms=60000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("stream ignored budget cap: took %s", elapsed)
	}
	if len(events) == 0 || events[len(events)-1].event != "done" {
		t.Fatalf("stream did not terminate with done: %+v", events)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"}).ID
	sessURL := ts.URL + "/v1/sessions/" + id

	cases := []struct {
		name     string
		method   string
		url      string
		body     any
		want     int
		wantCode api.ErrorCode
	}{
		{"unknown dataset", "POST", ts.URL + "/v1/sessions", api.CreateSessionRequest{Dataset: "nope"}, http.StatusNotFound, api.ErrNotFound},
		{"missing dataset", "POST", ts.URL + "/v1/sessions", api.CreateSessionRequest{}, http.StatusBadRequest, api.ErrBadRequest},
		{"bad weighter", "POST", ts.URL + "/v1/sessions", api.CreateSessionRequest{Dataset: "store", Weighter: "entropy"}, http.StatusBadRequest, api.ErrBadRequest},
		{"bad measure", "POST", ts.URL + "/v1/sessions", api.CreateSessionRequest{Dataset: "store", Sum: "Price"}, http.StatusBadRequest, api.ErrBadRequest},
		{"oversized k", "POST", ts.URL + "/v1/sessions", api.CreateSessionRequest{Dataset: "store", K: 1000}, http.StatusBadRequest, api.ErrBudget},
		{"unknown session tree", "GET", ts.URL + "/v1/sessions/deadbeef/tree", nil, http.StatusNotFound, api.ErrNotFound},
		{"unknown session drill", "POST", ts.URL + "/v1/sessions/deadbeef/drill", api.DrillRequest{}, http.StatusNotFound, api.ErrNotFound},
		{"unknown session delete", "DELETE", ts.URL + "/v1/sessions/deadbeef", nil, http.StatusNotFound, api.ErrNotFound},
		{"bad node path", "POST", sessURL + "/drill", api.DrillRequest{Path: []int{99}}, http.StatusBadRequest, api.ErrBadRule},
		{"negative path", "POST", sessURL + "/drill", api.DrillRequest{Path: []int{-1}}, http.StatusBadRequest, api.ErrBadRule},
		{"unknown node id", "POST", sessURL + "/drill", api.DrillRequest{Node: "n999999"}, http.StatusNotFound, api.ErrNotFound},
		{"malformed node id", "POST", sessURL + "/drill", api.DrillRequest{Node: "bogus"}, http.StatusBadRequest, api.ErrBadRule},
		{"star on unknown column", "POST", sessURL + "/drill", api.DrillRequest{Column: "Nope"}, http.StatusBadRequest, api.ErrBadRule},
		{"bad stream path", "GET", sessURL + "/drill/stream?path=x", nil, http.StatusBadRequest, api.ErrBadRule},
		{"unknown stream node", "GET", sessURL + "/drill/stream?node=n424242", nil, http.StatusNotFound, api.ErrNotFound},
		{"bad stream budget", "GET", sessURL + "/drill/stream?budget_ms=-5", nil, http.StatusBadRequest, api.ErrBudget},
		{"non-numeric stream budget", "GET", sessURL + "/drill/stream?budget_ms=abc", nil, http.StatusBadRequest, api.ErrBadRequest},
		{"bad collapse path", "POST", sessURL + "/collapse", api.DrillRequest{Path: []int{0, 0}}, http.StatusBadRequest, api.ErrBadRule},
		{"refine unknown node", "POST", sessURL + "/refine", api.RefineRequest{Node: "n555555"}, http.StatusNotFound, api.ErrNotFound},
		{"traditional missing column", "POST", sessURL + "/traditional", api.TraditionalRequest{}, http.StatusBadRequest, api.ErrBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var e api.ErrorEnvelope
			if code := doJSON(t, tc.method, tc.url, tc.body, &e); code != tc.want {
				t.Fatalf("status %d, want %d (error %+v)", code, tc.want, e.Error)
			}
			if e.Error == nil || e.Error.Message == "" || e.Error.Code == "" {
				t.Fatalf("error envelope missing code or message: %+v", e.Error)
			}
			if tc.wantCode != "" && e.Error.Code != tc.wantCode {
				t.Fatalf("error code %q, want %q", e.Error.Code, tc.wantCode)
			}
		})
	}

	// Unknown JSON fields are rejected, not ignored.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/sessions", strings.NewReader(`{"dataset":"store","kay":5}`))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

// TestSessionEviction pins the store to one shard with capacity 1 so LRU
// eviction is deterministic: creating a second session evicts the first.
func TestSessionEviction(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 1, StoreShards: 1})
	first := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"}).ID
	second := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"}).ID
	if got := s.SessionCount(); got != 1 {
		t.Fatalf("session count after eviction: %d, want 1", got)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+first+"/tree", nil, nil); code != http.StatusNotFound {
		t.Fatalf("evicted session: status %d, want 404", code)
	}
	if code := doJSON(t, "GET", ts.URL+"/v1/sessions/"+second+"/tree", nil, nil); code != http.StatusOK {
		t.Fatalf("live session: status %d, want 200", code)
	}
}

func TestHealth(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h struct {
		Status   string `json:"status"`
		Sessions int    `json:"sessions"`
	}
	if code := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"smartdrill"
	"smartdrill/api"
)

// handleDrillStream implements the paper's anytime drill-down (Section 6.1)
// over Server-Sent Events: rules are pushed to the client the moment the
// greedy search finds them, and the search stops on a time budget rather
// than a fixed k — "display as many rules as we can find within a time
// limit (of say 5 seconds)".
//
// Query parameters:
//
//	node       stable node ID of the target (default root)
//	path       legacy dot-separated child-index address (ignored when node
//	           is set)
//	budget_ms  search budget in milliseconds (default Config.StreamBudget,
//	           capped at Config.MaxStreamBudget)
//	max_rules  stop after this many rules (default 0 = budget-bound only)
//
// Events: one api.EventRule per discovered rule carrying the child's
// api.Node. When the search answered from a sample (large views on a
// sampled session), rule counts are provisional estimates with confidence
// intervals; after the search the stream re-counts each provisional rule
// exactly and pushes one api.EventRefine per rule — the same api.Node with
// the exact count, exact:true, and no CI — so the display converges to
// authoritative numbers without a new request. A single api.EventDone with
// summary statistics ends the stream.
//
// The request context rides into the BRS search: a client disconnect
// cancels the search between counting passes (not merely at the next rule
// boundary) and stops any pending refinement; the done event then carries
// error_code "canceled".
func (s *Server) handleDrillStream(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.lookupSession(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	nodeID := q.Get("node")
	path, err := parsePath(q.Get("path"))
	if err != nil {
		writeError(w, api.ErrBadRule, err.Error())
		return
	}
	budget := s.cfg.StreamBudget
	if raw := q.Get("budget_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		switch {
		case err != nil: // malformed, not out of range
			writeError(w, api.ErrBadRequest, fmt.Sprintf("budget_ms must be a positive integer, got %q", raw))
			return
		case ms <= 0:
			writeError(w, api.ErrBudget, fmt.Sprintf("budget_ms must be a positive integer, got %q", raw))
			return
		}
		budget = time.Duration(ms) * time.Millisecond
	}
	if budget > s.cfg.MaxStreamBudget {
		budget = s.cfg.MaxStreamBudget
	}
	maxRules := 0
	if raw := q.Get("max_rules"); raw != "" {
		n, err := strconv.Atoi(raw)
		switch {
		case err != nil:
			writeError(w, api.ErrBadRequest, fmt.Sprintf("max_rules must be a non-negative integer, got %q", raw))
			return
		case n < 0:
			writeError(w, api.ErrBudget, fmt.Sprintf("max_rules must be a non-negative integer, got %q", raw))
			return
		}
		maxRules = n
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, api.ErrInternal, "response writer does not support streaming")
		return
	}

	// The search phase holds the session lock for its whole (budgeted)
	// duration: a concurrent drill would mutate the tree under the running
	// incremental search.
	sess.mu.Lock()
	n, path, ok := resolveNode(w, sess, nodeID, path)
	if !ok {
		sess.mu.Unlock()
		return
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	ctx := r.Context()
	start := time.Now()
	rules := 0
	err = sess.eng.DrillDownStreamCtx(ctx, n, maxRules, budget, func(child *smartdrill.Node) bool {
		writeSSE(w, api.EventRule, encodeNode(sess.eng, child, append(path, rules)))
		flusher.Flush()
		rules++
		return true
	})
	access := sess.eng.LastAccessMethod()
	children := append([]*smartdrill.Node{}, n.Children...)
	sess.mu.Unlock()
	if rules > 0 {
		s.persistSession(sess) // the streamed rules are a tree mutation
	}

	// Refinement phase: replace every provisional count the search just
	// streamed with the exact one (one accounted pass per rule), pushing a
	// refine event as each lands. The analyst saw provisional rules within
	// the interactive budget; the authoritative counts follow on the same
	// connection. Unlike the search, refinement takes the session lock per
	// node (the background refiner's discipline), so concurrent requests on
	// this session interleave with the passes instead of queueing behind
	// them — RefineNode skips any child a concurrent drill orphans.
	refined := 0
	if err == nil {
		for i, child := range children {
			if ctx.Err() != nil {
				break // client went away; stop paying for passes
			}
			if child.Exact {
				continue
			}
			sess.mu.Lock()
			var payload *api.Node
			if sess.eng.RefineNode(child) {
				payload = encodeNode(sess.eng, child, append(path, i))
			}
			sess.mu.Unlock()
			if payload != nil {
				writeSSE(w, api.EventRefine, payload)
				flusher.Flush()
				refined++
			}
		}
	}
	if refined > 0 {
		s.persistSession(sess) // exact counts replaced provisional ones
	}
	done := api.DoneEvent{
		Rules:     rules,
		Refined:   refined,
		Access:    access,
		ElapsedMS: time.Since(start).Milliseconds(),
	}
	if err != nil {
		done.Error = err.Error()
		done.ErrorCode = api.ErrInternal
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			done.ErrorCode = api.ErrCanceled
		}
	}
	writeSSE(w, api.EventDone, done)
	flusher.Flush()
}

// writeSSE emits one event with a JSON data payload.
func writeSSE(w http.ResponseWriter, event string, data any) {
	payload, err := json.Marshal(data)
	if err != nil {
		payload = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, payload)
}

// parsePath parses a dot-separated child-index path ("" = root, "0.2" =
// root's first child's third child).
func parsePath(raw string) ([]int, error) {
	if raw == "" {
		return nil, nil
	}
	parts := strings.Split(raw, ".")
	path := make([]int, len(parts))
	for i, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad path %q: segment %q is not a non-negative integer", raw, p)
		}
		path[i] = n
	}
	return path, nil
}

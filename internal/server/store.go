package server

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"hash/fnv"
	"sync"
	"time"

	"smartdrill"
	"smartdrill/api"
)

// session is one live drill-down exploration. All Engine operations must be
// performed while holding mu: the drill tree and the sampling machinery
// behind it are single-writer structures, so concurrent requests against
// one session serialize here while distinct sessions (distinct mutexes)
// proceed fully in parallel.
type session struct {
	id      string
	dataset string
	created time.Time
	// req is the create request that built (or rebuilt) the engine — the
	// immutable recipe persisted in the session's snapshot record so a
	// rehydrating server reconstructs an identically-configured engine.
	req api.CreateSessionRequest

	mu  sync.Mutex
	eng *smartdrill.Engine // guardedby: mu
	// seq numbers this object's snapshots: bumped by each write-through,
	// so persistSession can refuse to overwrite a newer snapshot with a
	// slower older one.
	seq uint64 // guardedby: mu

	// persistMu serializes backend writes for this session; savedSeq is
	// the seq of the record known to be on disk.
	persistMu sync.Mutex
	savedSeq  uint64 // guardedby: persistMu
}

// sessionStore is a sharded, LRU-evicting registry of sessions. IDs hash to
// a shard; each shard owns an independent mutex, map, and recency list, so
// the store itself is never a global point of contention. The session cap
// is split evenly across shards (eviction is therefore approximate with
// respect to global recency — an acceptable trade for shard independence).
type sessionStore struct {
	shards []storeShard
}

type storeShard struct {
	mu      sync.Mutex
	cap     int                      // immutable after construction
	entries map[string]*list.Element // guardedby: mu (values are *session)
	lru     *list.List               // guardedby: mu (front = most recently used)
}

// newSessionStore builds a store holding at most capacity sessions spread
// over the given number of shards (minimum 1 each). Small capacities shrink
// the shard count rather than inflate the cap, so an operator's
// -max-sessions is honored exactly when it is below the shard count.
func newSessionStore(capacity, shards int) *sessionStore {
	if capacity < 1 {
		capacity = 1
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	st := &sessionStore{shards: make([]storeShard, shards)}
	// Distribute capacity exactly: the first capacity%shards shards take
	// one extra slot, so the per-shard caps sum to capacity.
	base, extra := capacity/shards, capacity%shards
	for i := range st.shards {
		c := base
		if i < extra {
			c++
		}
		st.shards[i] = storeShard{
			cap:     c,
			entries: make(map[string]*list.Element),
			lru:     list.New(),
		}
	}
	return st
}

func (st *sessionStore) shard(id string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &st.shards[h.Sum32()%uint32(len(st.shards))]
}

// put inserts a session, evicting the shard's least recently used entry
// when the shard is at capacity. It returns the evicted session, if any,
// so the owner can demote it to the durable backend (evict-to-disk).
func (st *sessionStore) put(s *session) (evicted *session) {
	sh := st.shard(s.id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[s.id]; ok { // overwrite (unlikely: random IDs)
		sh.lru.Remove(el)
		delete(sh.entries, s.id)
	}
	if sh.lru.Len() >= sh.cap {
		if back := sh.lru.Back(); back != nil {
			old := back.Value.(*session)
			sh.lru.Remove(back)
			delete(sh.entries, old.id)
			evicted = old
		}
	}
	sh.entries[s.id] = sh.lru.PushFront(s)
	return evicted
}

// get returns the session and marks it most recently used.
func (st *sessionStore) get(id string) (*session, bool) {
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[id]
	if !ok {
		return nil, false
	}
	sh.lru.MoveToFront(el)
	return el.Value.(*session), true
}

// remove deletes the session, reporting whether it existed.
func (st *sessionStore) remove(id string) bool {
	sh := st.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[id]
	if !ok {
		return false
	}
	sh.lru.Remove(el)
	delete(sh.entries, id)
	return true
}

// len counts live sessions across all shards.
func (st *sessionStore) len() int {
	n := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// newSessionID returns a 128-bit random hex ID.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: crypto/rand unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

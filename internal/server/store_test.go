package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestStoreLRUEviction(t *testing.T) {
	st := newSessionStore(3, 1)
	for i := 0; i < 3; i++ {
		if evicted := st.put(&session{id: fmt.Sprintf("s%d", i)}); evicted != nil {
			t.Fatalf("premature eviction of %s", evicted.id)
		}
	}
	// Touch s0 so s1 becomes the LRU entry.
	if _, ok := st.get("s0"); !ok {
		t.Fatal("s0 missing")
	}
	if evicted := st.put(&session{id: "s3"}); evicted == nil || evicted.id != "s1" {
		t.Fatalf("evicted %v, want s1", evicted)
	}
	if _, ok := st.get("s1"); ok {
		t.Fatal("s1 should be evicted")
	}
	for _, id := range []string{"s0", "s2", "s3"} {
		if _, ok := st.get(id); !ok {
			t.Fatalf("%s should survive", id)
		}
	}
	if st.len() != 3 {
		t.Fatalf("len = %d, want 3", st.len())
	}
}

func TestStoreRemove(t *testing.T) {
	st := newSessionStore(4, 2)
	st.put(&session{id: "a"})
	if !st.remove("a") {
		t.Fatal("remove existing returned false")
	}
	if st.remove("a") {
		t.Fatal("remove missing returned true")
	}
	if st.len() != 0 {
		t.Fatalf("len = %d, want 0", st.len())
	}
}

// TestStoreConcurrent exercises sharded put/get/remove under -race.
func TestStoreConcurrent(t *testing.T) {
	st := newSessionStore(64, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("g%d-%d", g, i)
				st.put(&session{id: id})
				st.get(id)
				if i%3 == 0 {
					st.remove(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if n := st.len(); n > 64 {
		t.Fatalf("len %d exceeds capacity 64", n)
	}
}

package server

import (
	"net/http"
	"testing"

	"smartdrill/api"
)

// TestWarmingPrecomputesDefaultDrills: with WarmChildren set, dataset
// registration precomputes the root expansion (plus top children) in the
// background, so the first analyst's default drill is served from the
// cache — zero passes, zero rows scanned — and the health report shows
// the warmed expansions.
func TestWarmingPrecomputesDefaultDrills(t *testing.T) {
	s, ts := newTestServer(t, Config{WarmChildren: 2})
	s.WaitWarmers()

	var h api.Health
	if code := doJSON(t, "GET", ts.URL+"/v1/health", nil, &h); code != http.StatusOK {
		t.Fatalf("health: status %d", code)
	}
	if len(h.Datasets) != 1 || h.Datasets[0].Cache == nil {
		t.Fatalf("health missing cache block: %+v", h.Datasets)
	}
	c := h.Datasets[0].Cache
	if c.Warmed != 3 { // root + 2 children
		t.Fatalf("warmed = %d, want 3 (root + 2 children)", c.Warmed)
	}
	if c.Entries < 3 || c.Misses < 3 {
		t.Fatalf("warming left cache cold: %+v", c)
	}

	// A default session's first drill replays the warmed expansion.
	tree := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"})
	var dr api.DrillResponse
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/drill", api.DrillRequest{}, &dr); code != http.StatusOK {
		t.Fatalf("drill: status %d", code)
	}
	if dr.Access != "cache" {
		t.Fatalf("warmed drill access = %q, want cache", dr.Access)
	}
	if dr.Search == nil || dr.Search.CacheHits != 1 || dr.Search.Passes != 0 || dr.Search.RowsScanned != 0 {
		t.Fatalf("warmed drill search stats = %+v; want CacheHits=1 Passes=0 RowsScanned=0", dr.Search)
	}
}

// TestHealthReportsCacheAndPersistFailures: the health body carries the
// persist-failure counter and a per-dataset cache block even with warming
// off.
func TestHealthReportsCacheAndPersistFailures(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var h api.Health
	if code := doJSON(t, "GET", ts.URL+"/v1/health", nil, &h); code != http.StatusOK {
		t.Fatalf("health: status %d", code)
	}
	if h.PersistFailures != 0 {
		t.Fatalf("persist_failures = %d on a fresh memory-only server", h.PersistFailures)
	}
	if len(h.Datasets) != 1 || h.Datasets[0].Cache == nil {
		t.Fatalf("health missing cache block: %+v", h.Datasets)
	}
	if c := h.Datasets[0].Cache; c.Entries != 0 || c.Hits != 0 || c.Warmed != 0 {
		t.Fatalf("fresh cache counters = %+v", c)
	}
}

// TestCacheOffDisablesSharing: with CacheOff every drill executes.
func TestCacheOffDisablesSharing(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheOff: true, WarmChildren: 2})
	for i := 0; i < 2; i++ {
		tree := createSession(t, ts.URL, api.CreateSessionRequest{Dataset: "store"})
		var dr api.DrillResponse
		if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+tree.ID+"/drill", api.DrillRequest{}, &dr); code != http.StatusOK {
			t.Fatalf("drill: status %d", code)
		}
		if dr.Access == "cache" || dr.Search == nil || dr.Search.CacheHits != 0 || dr.Search.Passes == 0 {
			t.Fatalf("drill %d served from cache despite CacheOff: access=%q stats=%+v", i, dr.Access, dr.Search)
		}
	}
}

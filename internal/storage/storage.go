// Package storage simulates the on-disk table of Section 4. The paper's
// cost model is that a full pass over a table too large for memory
// dominates response time; the SampleHandler exists to avoid such passes.
//
// We stand in for the disk with an in-memory table wrapped in a Store that
// (a) accounts every full scan, row read, and inverted-index lookup, so
// experiments can report pass counts alongside wall time, and (b)
// optionally injects a per-row delay to model slower media in
// demonstrations. The substitution preserves the relevant behaviour: scans
// remain the dominant, linear-in-|T| cost, index lookups cost their posting
// entries, and the Find/Combine/Create decision logic is exercised
// identically.
package storage

import (
	"sync"
	"sync/atomic"
	"time"

	"smartdrill/internal/rule"
	"smartdrill/internal/table"
)

// Stats counts the I/O the store has served. Index reads are accounted
// separately from scans so pass-count experiments (Figure 5 style) stay
// honest when rule filters are answered from posting lists instead of full
// passes.
type Stats struct {
	FullScans     int64 // complete passes over the backing table
	RowsRead      int64 // total rows delivered to scan callbacks
	IndexLookups  int64 // rule filters answered from the inverted index
	IndexRowsRead int64 // posting-list entries read by those lookups
	// SearchIndexRead counts posting entries read by BRS's postings-driven
	// candidate counting (reported via AccountSearchIndex), kept separate
	// from rule-filter lookups so both access paths stay individually
	// visible in pass-count experiments.
	SearchIndexRead int64
	// SearchBitmapRead counts packed bitset words read by BRS's bitmap
	// counting kernel (reported via AccountSearchBitmap). A word covers 64
	// rows, so these are not commensurate with posting entries — they get
	// their own counter rather than inflating SearchIndexRead.
	SearchBitmapRead int64
	// SampledRowsRead counts rows the search read from in-memory uniform
	// samples instead of the authoritative table (the approximate
	// pipeline's working set, reported via AccountSampledRead). These are
	// memory reads, not disk I/O — the whole point of the sampled path —
	// but experiments need them visible to report how much work the
	// samples absorbed.
	SampledRowsRead int64
	// SearchCacheHits, SearchCacheMisses and SearchSingleflightWaits count
	// expansions the dataset's answer cache served, executed, and collapsed
	// onto a concurrent identical run (reported via AccountSearchCache).
	// Hits and waits are the passes the session never paid for — the
	// counterpart, on the avoided side, of the scan and index counters.
	SearchCacheHits         int64
	SearchCacheMisses       int64
	SearchSingleflightWaits int64
}

// Store wraps the authoritative full table behind a scan interface with
// accounting. It is safe for concurrent use.
type Store struct {
	t *table.Table

	// PerRowDelay, if nonzero, busy-waits this long per row scanned to
	// emulate slow media. Tests leave it zero; demos may set it.
	PerRowDelay time.Duration

	mu               sync.Mutex
	fullScans        int64
	rowsRead         int64
	indexLookups     int64
	indexRowsRead    int64
	searchIndexRead  int64
	searchBitmapRead int64
	sampledRowsRead  int64
	cacheHits        int64
	cacheMisses      int64
	cacheWaits       int64
}

// NewStore wraps t.
func NewStore(t *table.Table) *Store { return &Store{t: t} }

// Table exposes the backing table for metadata (schema, dictionaries,
// cardinalities). Row data should be accessed through Scan so it is
// accounted.
func (s *Store) Table() *table.Table { return s.t }

// NumRows returns the row count without performing I/O (a real system
// would have this in catalog metadata).
func (s *Store) NumRows() int { return s.t.NumRows() }

// Scan performs one accounted full pass, invoking fn for every row index
// until fn returns false. Even early-terminated scans count as full scans
// for pass accounting (reservoir building always scans fully anyway).
//
//sdlint:io rows (self-accounted: books rowsRead below)
func (s *Store) Scan(fn func(i int) bool) {
	n := s.t.NumRows()
	read := int64(0)
	for i := 0; i < n; i++ {
		if s.PerRowDelay > 0 {
			spin(s.PerRowDelay)
		}
		read++
		if !fn(i) {
			break
		}
	}
	s.mu.Lock()
	s.fullScans++
	s.rowsRead += read
	s.mu.Unlock()
}

// FilterRows returns the row indices covered by r, answered from the
// table's shared inverted index and accounted as index I/O: the lookup is
// charged the posting entries it read, not a full pass. PerRowDelay applies
// per posting entry, keeping the slow-media model consistent between the
// two access paths.
//
//sdlint:io postings (self-accounted: books indexRowsRead below)
func (s *Store) FilterRows(r rule.Rule) []int {
	rows, read := s.t.Index().Lookup(r)
	if s.PerRowDelay > 0 {
		for i := int64(0); i < read; i++ {
			spin(s.PerRowDelay)
		}
	}
	s.mu.Lock()
	s.indexLookups++
	s.indexRowsRead += read
	s.mu.Unlock()
	return rows
}

// AccountSearchIndex charges posting entries read by index-driven
// candidate counting performed outside the store's own lookup path (BRS
// reports its Stats.PostingsRead here after each search).
func (s *Store) AccountSearchIndex(entries int64) {
	if entries == 0 {
		return
	}
	s.mu.Lock()
	s.searchIndexRead += entries
	s.mu.Unlock()
}

// AccountSearchBitmap charges packed bitset words read by the bitmap
// counting kernel (BRS reports its Stats.BitmapWordsRead here after each
// search).
func (s *Store) AccountSearchBitmap(words int64) {
	if words == 0 {
		return
	}
	s.mu.Lock()
	s.searchBitmapRead += words
	s.mu.Unlock()
}

// AccountSampledRead charges rows the search read from in-memory uniform
// samples (BRS reports its Stats.SampledRowsScanned here after each
// sampled search).
func (s *Store) AccountSampledRead(rows int64) {
	if rows == 0 {
		return
	}
	s.mu.Lock()
	s.sampledRowsRead += rows
	s.mu.Unlock()
}

// AccountSearchCache charges answer-cache activity: expansions served
// from the dataset cache (hits), executed on its behalf (misses), and
// collapsed onto a concurrent identical execution (waits). The drill
// session reports its search service's per-request counters here so
// avoided passes appear in the same I/O report as performed ones.
func (s *Store) AccountSearchCache(hits, misses, waits int64) {
	if hits == 0 && misses == 0 && waits == 0 {
		return
	}
	s.mu.Lock()
	s.cacheHits += hits
	s.cacheMisses += misses
	s.cacheWaits += waits
	s.mu.Unlock()
}

// Stats returns a snapshot of accumulated I/O counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		FullScans:               s.fullScans,
		RowsRead:                s.rowsRead,
		IndexLookups:            s.indexLookups,
		IndexRowsRead:           s.indexRowsRead,
		SearchIndexRead:         s.searchIndexRead,
		SearchBitmapRead:        s.searchBitmapRead,
		SampledRowsRead:         s.sampledRowsRead,
		SearchCacheHits:         s.cacheHits,
		SearchCacheMisses:       s.cacheMisses,
		SearchSingleflightWaits: s.cacheWaits,
	}
}

// ResetStats zeroes the counters (between experiment trials).
func (s *Store) ResetStats() {
	s.mu.Lock()
	s.fullScans, s.rowsRead = 0, 0
	s.indexLookups, s.indexRowsRead = 0, 0
	s.searchIndexRead, s.searchBitmapRead = 0, 0
	s.sampledRowsRead = 0
	s.cacheHits, s.cacheMisses, s.cacheWaits = 0, 0, 0
	s.mu.Unlock()
}

// CountExact counts rows covered by r with one accounted pass: the
// background "find exact counts for displayed rules" refinement of
// Section 4.3's pre-fetching discussion.
//
//sdlint:io rows (accounted through Scan, which books the pass)
func (s *Store) CountExact(r rule.Rule) int {
	n := 0
	s.Scan(func(i int) bool {
		if s.t.Covers(r, i) {
			n++
		}
		return true
	})
	return n
}

var spinSink atomic.Int64

// spin busy-waits to model per-row latency without descheduling (sleep
// granularity is far coarser than per-row costs).
func spin(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		spinSink.Add(1)
	}
}

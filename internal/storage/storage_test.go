package storage

import (
	"testing"

	"smartdrill/internal/rule"
	"smartdrill/internal/table"
)

func fixture(t *testing.T) *table.Table {
	t.Helper()
	b := table.MustBuilder([]string{"A"}, nil)
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			b.MustAddRow([]string{"even"})
		} else {
			b.MustAddRow([]string{"odd"})
		}
	}
	return b.Build()
}

func TestScanAccounting(t *testing.T) {
	s := NewStore(fixture(t))
	seen := 0
	s.Scan(func(i int) bool { seen++; return true })
	if seen != 10 {
		t.Fatalf("scanned %d rows, want 10", seen)
	}
	st := s.Stats()
	if st.FullScans != 1 || st.RowsRead != 10 {
		t.Fatalf("stats = %+v", st)
	}
	s.Scan(func(i int) bool { return true })
	if got := s.Stats().FullScans; got != 2 {
		t.Fatalf("FullScans = %d, want 2", got)
	}
	s.ResetStats()
	if st := s.Stats(); st.FullScans != 0 || st.RowsRead != 0 {
		t.Fatalf("reset stats = %+v", st)
	}
}

func TestScanEarlyStop(t *testing.T) {
	s := NewStore(fixture(t))
	seen := 0
	s.Scan(func(i int) bool {
		seen++
		return seen < 3
	})
	if seen != 3 {
		t.Fatalf("early stop visited %d rows", seen)
	}
	if got := s.Stats().RowsRead; got != 3 {
		t.Fatalf("RowsRead = %d, want 3", got)
	}
}

func TestCountExact(t *testing.T) {
	tab := fixture(t)
	s := NewStore(tab)
	even, err := tab.EncodeRule(map[string]string{"A": "even"})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.CountExact(even); got != 5 {
		t.Fatalf("CountExact = %d, want 5", got)
	}
	if got := s.CountExact(rule.Trivial(1)); got != 10 {
		t.Fatalf("CountExact(trivial) = %d", got)
	}
	if got := s.Stats().FullScans; got != 2 {
		t.Fatalf("CountExact must account scans, got %d", got)
	}
}

func TestFilterRowsAccounting(t *testing.T) {
	tab := fixture(t)
	s := NewStore(tab)
	even, err := tab.EncodeRule(map[string]string{"A": "even"})
	if err != nil {
		t.Fatal(err)
	}
	rows := s.FilterRows(even)
	if want := tab.FilterIndicesScan(even); len(rows) != len(want) {
		t.Fatalf("FilterRows returned %d rows, scan %d", len(rows), len(want))
	}
	st := s.Stats()
	if st.IndexLookups != 1 || st.IndexRowsRead != 5 {
		t.Fatalf("index stats = %+v, want 1 lookup reading 5 postings", st)
	}
	if st.FullScans != 0 || st.RowsRead != 0 {
		t.Fatalf("FilterRows must not account as a scan: %+v", st)
	}
	s.ResetStats()
	if st := s.Stats(); st.IndexLookups != 0 || st.IndexRowsRead != 0 {
		t.Fatalf("reset must clear index stats: %+v", st)
	}
}

func TestNumRowsNoIO(t *testing.T) {
	s := NewStore(fixture(t))
	if s.NumRows() != 10 {
		t.Fatal("NumRows mismatch")
	}
	if s.Stats().FullScans != 0 {
		t.Fatal("NumRows must not count as a scan")
	}
}

func TestPerRowDelay(t *testing.T) {
	s := NewStore(fixture(t))
	s.PerRowDelay = 1 // 1ns: exercises the spin path without slowing tests
	s.Scan(func(i int) bool { return true })
	if s.Stats().RowsRead != 10 {
		t.Fatal("delayed scan must still read all rows")
	}
}

package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"smartdrill/internal/rule"
)

// Automatic schema detection (Section 6.2): the drill-down framework is
// categorical, so numeric CSV columns must be bucketized before use. Rather
// than asking callers to pre-classify columns, ReadCSVAuto inspects the
// data: a column whose values all parse as numbers and that has more than
// maxDistinct distinct values is treated as numeric — it is kept as a
// measure column (usable with the Sum aggregate) and additionally
// bucketized into a categorical "<name>_bucket" column. Low-cardinality
// numeric columns (already-bucketized codes, booleans, ratings) stay
// categorical, matching how the paper's datasets arrive pre-bucketized.
//
// The reader streams: each record is dictionary-encoded the moment it is
// read, so peak transient memory is the encoded table itself (4 bytes per
// cell plus one interned string per distinct value) — never a [][]string
// of every cell, which on a million-row CSV costs an order of magnitude
// more than the table it produces. Numeric classification needs no second
// pass over the rows either: a column is all-numeric exactly when every
// entry of its dictionary parses, so the decision reads distinct values,
// not cells.

// AutoOptions tunes ReadCSVAuto. Zero values mean: maxDistinct 20,
// 6 buckets, equi-depth.
type AutoOptions struct {
	// MaxDistinct is the distinct-value threshold above which an
	// all-numeric column is bucketized.
	MaxDistinct int
	// Buckets is the bucket count for detected numeric columns.
	Buckets int
	// Scheme selects bucket boundaries.
	Scheme BucketScheme
}

func (o AutoOptions) withDefaults() AutoOptions {
	if o.MaxDistinct <= 0 {
		o.MaxDistinct = 20
	}
	if o.Buckets <= 0 {
		o.Buckets = 6
	}
	return o
}

// ReadCSVAuto loads a CSV with automatic numeric-column detection and
// bucketization, in one streaming pass (see the package comment above on
// memory). It returns the table plus the names of the columns that were
// detected as numeric.
func ReadCSVAuto(r io.Reader, opts AutoOptions) (*Table, []string, error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	cr.ReuseRecord = true // field strings are fresh per record; only the slice is reused
	header, err := cr.Read()
	if err == io.EOF {
		return nil, nil, fmt.Errorf("table: empty CSV")
	}
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading CSV: %w", err)
	}
	header = append([]string{}, header...)
	nc := len(header)

	// Stream every row into provisional per-column dictionary encodings.
	dicts := make([]*Dictionary, nc)
	ids := make([][]rule.Value, nc)
	for c := range dicts {
		dicts[c] = NewDictionary()
	}
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, nil, fmt.Errorf("table: reading CSV: %w", err)
		}
		for c := 0; c < nc; c++ {
			ids[c] = append(ids[c], dicts[c].Encode(rec[c]))
		}
		rows++
	}

	// Classify columns from their dictionaries: all-numeric means every
	// distinct value parses, and only high-cardinality numeric columns are
	// bucketized.
	numeric := make([]bool, nc)
	idFloat := make([][]float64, nc) // value id → parsed float, numeric columns only
	for c := 0; c < nc; c++ {
		d := dicts[c]
		if rows == 0 || d.Len() <= opts.MaxDistinct {
			continue
		}
		fv := make([]float64, d.Len())
		allNumeric := true
		for id := range fv {
			v, err := strconv.ParseFloat(d.Decode(rule.Value(id)), 64)
			if err != nil {
				allNumeric = false
				break
			}
			fv[id] = v
		}
		if allNumeric {
			numeric[c] = true
			idFloat[c] = fv
		}
	}

	// Assemble schema: categorical originals, bucketized numeric columns,
	// then numeric originals as measures.
	var catNames, measNames, numericNames []string
	for c, name := range header {
		if numeric[c] {
			catNames = append(catNames, name+"_bucket")
			measNames = append(measNames, name)
			numericNames = append(numericNames, name)
		} else {
			catNames = append(catNames, name)
		}
	}
	b, err := NewBuilder(catNames, measNames)
	if err != nil {
		return nil, nil, err
	}
	// Fill the table's column arrays directly: categorical columns adopt
	// the provisional encodings as-is (same dictionaries, same ids — no
	// re-encoding pass), numeric columns materialize their per-row floats
	// once for bucket boundaries and the measure array.
	t := b.t
	mi := 0
	for c := 0; c < nc; c++ { // final column order equals header order
		if !numeric[c] {
			t.dicts[c] = dicts[c]
			t.cols[c] = ids[c]
			continue
		}
		vals := make([]float64, rows)
		for i, id := range ids[c] {
			vals[i] = idFloat[c][id]
		}
		labels, _, err := Bucketize(vals, opts.Buckets, opts.Scheme)
		if err != nil {
			return nil, nil, err
		}
		col := make([]rule.Value, rows)
		for i, l := range labels {
			col[i] = t.dicts[c].Encode(l)
		}
		t.cols[c] = col
		t.measures[mi] = vals
		mi++
		ids[c] = nil // the provisional encoding is dead; free it eagerly
	}
	t.n = rows
	return b.Build(), numericNames, nil
}

// ReadCSVAutoFile is ReadCSVAuto over a file path.
func ReadCSVAutoFile(path string, opts AutoOptions) (*Table, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadCSVAuto(f, opts)
}

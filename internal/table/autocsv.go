package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// Automatic schema detection (Section 6.2): the drill-down framework is
// categorical, so numeric CSV columns must be bucketized before use. Rather
// than asking callers to pre-classify columns, ReadCSVAuto inspects the
// data: a column whose values all parse as numbers and that has more than
// maxDistinct distinct values is treated as numeric — it is kept as a
// measure column (usable with the Sum aggregate) and additionally
// bucketized into a categorical "<name>_bucket" column. Low-cardinality
// numeric columns (already-bucketized codes, booleans, ratings) stay
// categorical, matching how the paper's datasets arrive pre-bucketized.

// AutoOptions tunes ReadCSVAuto. Zero values mean: maxDistinct 20,
// 6 buckets, equi-depth.
type AutoOptions struct {
	// MaxDistinct is the distinct-value threshold above which an
	// all-numeric column is bucketized.
	MaxDistinct int
	// Buckets is the bucket count for detected numeric columns.
	Buckets int
	// Scheme selects bucket boundaries.
	Scheme BucketScheme
}

func (o AutoOptions) withDefaults() AutoOptions {
	if o.MaxDistinct <= 0 {
		o.MaxDistinct = 20
	}
	if o.Buckets <= 0 {
		o.Buckets = 6
	}
	return o
}

// ReadCSVAuto loads a CSV with automatic numeric-column detection and
// bucketization. It returns the table plus the names of the columns that
// were detected as numeric.
func ReadCSVAuto(r io.Reader, opts AutoOptions) (*Table, []string, error) {
	opts = opts.withDefaults()
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, nil, fmt.Errorf("table: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return nil, nil, fmt.Errorf("table: empty CSV")
	}
	header := records[0]
	rows := records[1:]

	// Classify columns.
	numeric := make([]bool, len(header))
	parsed := make([][]float64, len(header))
	for c := range header {
		vals := make([]float64, 0, len(rows))
		distinct := map[string]struct{}{}
		allNumeric := true
		for _, rec := range rows {
			v, err := strconv.ParseFloat(rec[c], 64)
			if err != nil {
				allNumeric = false
				break
			}
			vals = append(vals, v)
			distinct[rec[c]] = struct{}{}
		}
		if allNumeric && len(distinct) > opts.MaxDistinct && len(rows) > 0 {
			numeric[c] = true
			parsed[c] = vals
		}
	}

	// Assemble schema: categorical originals, bucketized numeric columns,
	// then numeric originals as measures.
	var catNames, measNames, numericNames []string
	for c, name := range header {
		if numeric[c] {
			catNames = append(catNames, name+"_bucket")
			measNames = append(measNames, name)
			numericNames = append(numericNames, name)
		} else {
			catNames = append(catNames, name)
		}
	}
	labels := make([][]string, len(header))
	for c := range header {
		if !numeric[c] {
			continue
		}
		ls, _, err := Bucketize(parsed[c], opts.Buckets, opts.Scheme)
		if err != nil {
			return nil, nil, err
		}
		labels[c] = ls
	}

	b, err := NewBuilder(catNames, measNames)
	if err != nil {
		return nil, nil, err
	}
	cat := make([]string, len(catNames))
	meas := make([]float64, len(measNames))
	for i, rec := range rows {
		ci, mi := 0, 0
		for c := range header {
			if numeric[c] {
				cat[ci] = labels[c][i]
				meas[mi] = parsed[c][i]
				mi++
			} else {
				cat[ci] = rec[c]
			}
			ci++
		}
		if err := b.AddRow(cat, meas); err != nil {
			return nil, nil, fmt.Errorf("table: row %d: %w", i+2, err)
		}
	}
	return b.Build(), numericNames, nil
}

// ReadCSVAutoFile is ReadCSVAuto over a file path.
func ReadCSVAutoFile(path string, opts AutoOptions) (*Table, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return ReadCSVAuto(f, opts)
}

package table

import (
	"fmt"
	"strings"
	"testing"
)

func autoFixture() string {
	var sb strings.Builder
	sb.WriteString("Store,Age,Rating\n")
	for i := 0; i < 100; i++ {
		// Age: 100 distinct numeric values → numeric. Rating: numeric but
		// only 3 distinct values → stays categorical. Store: strings.
		fmt.Fprintf(&sb, "s%d,%d,%d\n", i%4, 18+i, i%3)
	}
	return sb.String()
}

func TestReadCSVAutoDetection(t *testing.T) {
	tab, numeric, err := ReadCSVAuto(strings.NewReader(autoFixture()), AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 1 || numeric[0] != "Age" {
		t.Fatalf("numeric columns = %v, want [Age]", numeric)
	}
	names := tab.ColumnNames()
	want := []string{"Store", "Age_bucket", "Rating"}
	if len(names) != len(want) {
		t.Fatalf("columns = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("columns = %v, want %v", names, want)
		}
	}
	// Age is retained as a measure.
	if _, err := tab.MeasureIndex("Age"); err != nil {
		t.Fatal("Age must remain available as a measure")
	}
	// The bucketized column has the requested bucket count at most.
	if got := tab.DistinctCount(1); got > 6 {
		t.Fatalf("Age_bucket has %d values, want ≤ 6", got)
	}
	if tab.NumRows() != 100 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestReadCSVAutoThreshold(t *testing.T) {
	// With MaxDistinct below Rating's cardinality, Rating becomes numeric
	// too.
	tab, numeric, err := ReadCSVAuto(strings.NewReader(autoFixture()), AutoOptions{MaxDistinct: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 2 {
		t.Fatalf("numeric = %v, want [Age Rating]", numeric)
	}
	if _, err := tab.MeasureIndex("Rating"); err != nil {
		t.Fatal("Rating should be a measure now")
	}
}

func TestReadCSVAutoAllCategorical(t *testing.T) {
	csv := "A,B\nx,1\ny,2\nz,1\n"
	tab, numeric, err := ReadCSVAuto(strings.NewReader(csv), AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 0 {
		t.Fatalf("numeric = %v, want none (below threshold)", numeric)
	}
	if tab.NumCols() != 2 || len(tab.MeasureNames()) != 0 {
		t.Fatal("schema changed unexpectedly")
	}
}

func TestReadCSVAutoErrors(t *testing.T) {
	if _, _, err := ReadCSVAuto(strings.NewReader(""), AutoOptions{}); err == nil {
		t.Error("empty CSV must fail")
	}
	if _, _, err := ReadCSVAuto(strings.NewReader("A,B\nx\n"), AutoOptions{}); err == nil {
		t.Error("ragged CSV must fail")
	}
	if _, _, err := ReadCSVAutoFile("/nonexistent.csv", AutoOptions{}); err == nil {
		t.Error("missing file must fail")
	}
}

func TestReadCSVAutoEquiWidth(t *testing.T) {
	_, numeric, err := ReadCSVAuto(strings.NewReader(autoFixture()),
		AutoOptions{Buckets: 3, Scheme: EquiWidth})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 1 {
		t.Fatalf("numeric = %v", numeric)
	}
}

package table

import (
	"fmt"
	"strings"
	"testing"

	"smartdrill/internal/rule"
)

func autoFixture() string {
	var sb strings.Builder
	sb.WriteString("Store,Age,Rating\n")
	for i := 0; i < 100; i++ {
		// Age: 100 distinct numeric values → numeric. Rating: numeric but
		// only 3 distinct values → stays categorical. Store: strings.
		fmt.Fprintf(&sb, "s%d,%d,%d\n", i%4, 18+i, i%3)
	}
	return sb.String()
}

func TestReadCSVAutoDetection(t *testing.T) {
	tab, numeric, err := ReadCSVAuto(strings.NewReader(autoFixture()), AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 1 || numeric[0] != "Age" {
		t.Fatalf("numeric columns = %v, want [Age]", numeric)
	}
	names := tab.ColumnNames()
	want := []string{"Store", "Age_bucket", "Rating"}
	if len(names) != len(want) {
		t.Fatalf("columns = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("columns = %v, want %v", names, want)
		}
	}
	// Age is retained as a measure.
	if _, err := tab.MeasureIndex("Age"); err != nil {
		t.Fatal("Age must remain available as a measure")
	}
	// The bucketized column has the requested bucket count at most.
	if got := tab.DistinctCount(1); got > 6 {
		t.Fatalf("Age_bucket has %d values, want ≤ 6", got)
	}
	if tab.NumRows() != 100 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
}

func TestReadCSVAutoThreshold(t *testing.T) {
	// With MaxDistinct below Rating's cardinality, Rating becomes numeric
	// too.
	tab, numeric, err := ReadCSVAuto(strings.NewReader(autoFixture()), AutoOptions{MaxDistinct: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 2 {
		t.Fatalf("numeric = %v, want [Age Rating]", numeric)
	}
	if _, err := tab.MeasureIndex("Rating"); err != nil {
		t.Fatal("Rating should be a measure now")
	}
}

func TestReadCSVAutoAllCategorical(t *testing.T) {
	csv := "A,B\nx,1\ny,2\nz,1\n"
	tab, numeric, err := ReadCSVAuto(strings.NewReader(csv), AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 0 {
		t.Fatalf("numeric = %v, want none (below threshold)", numeric)
	}
	if tab.NumCols() != 2 || len(tab.MeasureNames()) != 0 {
		t.Fatal("schema changed unexpectedly")
	}
}

func TestReadCSVAutoErrors(t *testing.T) {
	if _, _, err := ReadCSVAuto(strings.NewReader(""), AutoOptions{}); err == nil {
		t.Error("empty CSV must fail")
	}
	if _, _, err := ReadCSVAuto(strings.NewReader("A,B\nx\n"), AutoOptions{}); err == nil {
		t.Error("ragged CSV must fail")
	}
	if _, _, err := ReadCSVAutoFile("/nonexistent.csv", AutoOptions{}); err == nil {
		t.Error("missing file must fail")
	}
}

// TestReadCSVAutoStreamingContent pins the streaming reader's output to
// the slurping implementation it replaced: cell values, measure values,
// and dictionary id order (first-seen) must be unchanged.
func TestReadCSVAutoStreamingContent(t *testing.T) {
	tab, _, err := ReadCSVAuto(strings.NewReader(autoFixture()), AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	age, err := tab.MeasureIndex("Age")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.NumRows(); i++ {
		wantStore := fmt.Sprintf("s%d", i%4)
		if got := tab.Dict(0).Decode(tab.Value(0, i)); got != wantStore {
			t.Fatalf("row %d Store = %q, want %q", i, got, wantStore)
		}
		wantRating := fmt.Sprintf("%d", i%3)
		if got := tab.Dict(2).Decode(tab.Value(2, i)); got != wantRating {
			t.Fatalf("row %d Rating = %q, want %q", i, got, wantRating)
		}
		if got := tab.Measure(age)[i]; got != float64(18+i) {
			t.Fatalf("row %d Age measure = %g, want %d", i, got, 18+i)
		}
	}
	// First-seen dictionary order: s0 < s1 < s2 < s3.
	for id := 0; id < 4; id++ {
		if got := tab.Dict(0).Decode(rule.Value(id)); got != fmt.Sprintf("s%d", id) {
			t.Fatalf("dict id %d = %q, want first-seen order", id, got)
		}
	}
}

func TestReadCSVAutoHeaderOnly(t *testing.T) {
	tab, numeric, err := ReadCSVAuto(strings.NewReader("A,B\n"), AutoOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 0 || tab.NumCols() != 2 || len(numeric) != 0 {
		t.Fatalf("header-only CSV: rows=%d cols=%d numeric=%v", tab.NumRows(), tab.NumCols(), numeric)
	}
}

func TestReadCSVAutoEquiWidth(t *testing.T) {
	_, numeric, err := ReadCSVAuto(strings.NewReader(autoFixture()),
		AutoOptions{Buckets: 3, Scheme: EquiWidth})
	if err != nil {
		t.Fatal(err)
	}
	if len(numeric) != 1 {
		t.Fatalf("numeric = %v", numeric)
	}
}

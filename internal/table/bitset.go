package table

import "math/bits"

// Packed bitset containers. A Bitset stores one (column, value) posting
// list as row-membership bits in []uint64 words: bit (row % 64) of word
// (row / 64) is set iff the row holds the value. Dense lists answer
// intersections word-at-a-time — 64 rows per AND — and intersection
// *counts* by popcount alone, never touching rows, which is exactly what
// BRS candidate counting under the Count aggregate needs.
//
// Bitsets exist alongside the sorted []int32 lists, not instead of them:
// the index builds a bitset only for lists dense enough that the bitmap
// (numRows/8 bytes) costs no more memory than the sorted list it shadows
// (4 bytes per entry), i.e. when the list covers at least 1/32 of the
// table. Sparse lists keep galloping; the cost planner picks per
// candidate.

// Bitset is an immutable packed row set over a fixed universe [0, n).
// Safe for concurrent readers, like the posting lists it shadows.
type Bitset struct {
	words []uint64
	n     int // set bits (the shadowed posting list's length)
}

// bitsetDense reports whether a posting list of the given length over a
// table of numRows rows qualifies for a bitset container: the bitmap's
// numRows/8 bytes must not exceed the 4·length bytes the sorted list
// already pays, i.e. length ≥ numRows/32.
func bitsetDense(length, numRows int) bool {
	return length > 0 && 32*length >= numRows
}

// NewBitsetFromSorted packs an ascending row list over universe [0, rows)
// into a bitset. The list must be strictly ascending with entries in
// range, as posting lists are by construction.
func NewBitsetFromSorted(list []int32, rows int) *Bitset {
	b := &Bitset{words: make([]uint64, (rows+63)/64), n: len(list)}
	for _, r := range list {
		b.words[r>>6] |= 1 << (uint(r) & 63)
	}
	return b
}

// Len returns the number of set bits (the posting list length).
func (b *Bitset) Len() int { return b.n }

// NumWords returns the container's word count: ceil(universe / 64).
func (b *Bitset) NumWords() int { return len(b.words) }

// Contains reports whether row is set. Out-of-universe rows are not set.
func (b *Bitset) Contains(row int) bool {
	if row < 0 || row>>6 >= len(b.words) {
		return false
	}
	return b.words[row>>6]&(1<<(uint(row)&63)) != 0
}

// AndCount returns the number of rows common to all sets — the
// intersection cardinality by word-at-a-time AND + popcount, no row
// enumerated — together with the words read (len(sets) per word position,
// the I/O charged in place of posting entries). All sets must share one
// universe (containers of one Index always do). Zero sets yield zero.
func AndCount(sets []*Bitset) (count int, wordsRead int64) {
	if len(sets) == 0 {
		return 0, 0
	}
	first := sets[0].words
	for i, w := range first {
		for _, s := range sets[1:] {
			w &= s.words[i]
		}
		count += bits.OnesCount64(w)
	}
	return count, int64(len(sets)) * int64(len(first))
}

// AndEach calls fn(row) for every row common to all sets, in ascending
// row order — the order a scan or galloping walk visits them, so
// aggregate accumulation stays bit-identical across access paths — and
// returns the words read. All sets must share one universe. Zero sets
// visit nothing.
func AndEach(sets []*Bitset, fn func(row int)) (wordsRead int64) {
	if len(sets) == 0 {
		return 0
	}
	first := sets[0].words
	for i, w := range first {
		for _, s := range sets[1:] {
			w &= s.words[i]
		}
		base := i << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return int64(len(sets)) * int64(len(first))
}

package table

import (
	"math/rand"
	"sort"
	"testing"

	"smartdrill/internal/rule"
)

// The bitmap kernel must agree with sorted-list intersection on every
// input, including the shapes where word-packing goes wrong: bits on both
// sides of a word boundary, universes that are not word multiples, empty
// and full containers, and single-word sets. The reference here is an
// independent naive intersection, not intersect.go's galloping walk, so
// the two production kernels are never checked against each other.

// naiveIntersect returns the ascending rows common to all lists.
func naiveIntersect(lists [][]int32) []int32 {
	if len(lists) == 0 {
		return nil
	}
	counts := map[int32]int{}
	for _, l := range lists {
		for _, r := range l {
			counts[r]++
		}
	}
	var out []int32
	for r, c := range counts {
		if c == len(lists) {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkKernels runs AndCount and AndEach over the packed lists and
// verifies count, visit order, visited rows, and words-read accounting
// against the naive reference.
func checkKernels(t *testing.T, label string, lists [][]int32, rows int) {
	t.Helper()
	sets := make([]*Bitset, len(lists))
	for i, l := range lists {
		sets[i] = NewBitsetFromSorted(l, rows)
		if sets[i].Len() != len(l) {
			t.Fatalf("%s: set %d Len = %d, want %d", label, i, sets[i].Len(), len(l))
		}
	}
	want := naiveIntersect(lists)
	wantWords := int64(len(sets)) * int64((rows+63)/64)

	count, words := AndCount(sets)
	if count != len(want) {
		t.Fatalf("%s: AndCount = %d, want %d", label, count, len(want))
	}
	if words != wantWords {
		t.Fatalf("%s: AndCount words = %d, want %d", label, words, wantWords)
	}

	var got []int32
	words = AndEach(sets, func(row int) {
		if row < 0 || row >= rows {
			t.Fatalf("%s: AndEach visited out-of-universe row %d (rows=%d)", label, row, rows)
		}
		got = append(got, int32(row))
	})
	if words != wantWords {
		t.Fatalf("%s: AndEach words = %d, want %d", label, words, wantWords)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: AndEach visited %d rows, want %d\ngot %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: AndEach row %d = %d, want %d (order must be ascending)", label, i, got[i], want[i])
		}
	}
}

func span(lo, hi int32) []int32 {
	var out []int32
	for r := lo; r < hi; r++ {
		out = append(out, r)
	}
	return out
}

func every(rows, step, phase int32) []int32 {
	var out []int32
	for r := phase; r < rows; r += step {
		out = append(out, r)
	}
	return out
}

// TestBitsetKernelsAdversarial pins the kernels on hand-built shapes that
// stress word packing: boundaries at 63/64 and 127/128, universes that
// are not multiples of 64, empty/full/alternating containers.
func TestBitsetKernelsAdversarial(t *testing.T) {
	cases := []struct {
		name  string
		rows  int
		lists [][]int32
	}{
		{"one-empty-set", 100, [][]int32{{}, span(0, 100)}},
		{"both-empty", 64, [][]int32{{}, {}}},
		{"single-set", 70, [][]int32{{0, 63, 64, 69}}},
		{"single-word-universe", 17, [][]int32{{0, 5, 16}, {5, 16}}},
		{"word-boundary-63-64", 128, [][]int32{{62, 63, 64, 65}, {63, 64}}},
		{"word-boundary-127-128", 200, [][]int32{{126, 127, 128, 129}, {127, 128, 199}}},
		{"last-bit-of-ragged-word", 100, [][]int32{{99}, {0, 99}}},
		{"all-dense", 150, [][]int32{span(0, 150), span(0, 150), span(0, 150)}},
		{"alternating-even-odd", 130, [][]int32{every(130, 2, 0), every(130, 2, 1)}},
		{"alternating-overlap", 130, [][]int32{every(130, 2, 0), every(130, 4, 0)}},
		{"disjoint-halves", 128, [][]int32{span(0, 64), span(64, 128)}},
		{"three-way", 129, [][]int32{every(129, 2, 0), every(129, 3, 0), every(129, 5, 0)}},
		{"sparse-vs-dense", 256, [][]int32{{1, 64, 128, 255}, span(0, 256)}},
	}
	for _, tc := range cases {
		checkKernels(t, tc.name, tc.lists, tc.rows)
	}

	// Zero sets: both kernels are defined to do nothing.
	if c, w := AndCount(nil); c != 0 || w != 0 {
		t.Fatalf("AndCount(nil) = (%d, %d), want (0, 0)", c, w)
	}
	if w := AndEach(nil, func(int) { t.Fatal("AndEach(nil) visited a row") }); w != 0 {
		t.Fatalf("AndEach(nil) words = %d, want 0", w)
	}
}

// TestBitsetContains covers membership including out-of-universe probes.
func TestBitsetContains(t *testing.T) {
	b := NewBitsetFromSorted([]int32{0, 63, 64, 99}, 100)
	if b.NumWords() != 2 {
		t.Fatalf("NumWords = %d, want 2 for 100 rows", b.NumWords())
	}
	for _, r := range []int{0, 63, 64, 99} {
		if !b.Contains(r) {
			t.Fatalf("Contains(%d) = false, want true", r)
		}
	}
	for _, r := range []int{-1, 1, 62, 65, 98, 128, 1 << 20} {
		if b.Contains(r) {
			t.Fatalf("Contains(%d) = true, want false", r)
		}
	}
}

// TestBitsetDense pins the container-eligibility rule: a bitmap is built
// only when its numRows/8 bytes cost no more than the sorted list's
// 4·length bytes.
func TestBitsetDense(t *testing.T) {
	cases := []struct {
		length, rows int
		want         bool
	}{
		{0, 100, false}, // empty lists never get containers
		{1, 32, true},   // exactly 1/32 of the table
		{1, 33, false},  // just under
		{100, 3200, true},
		{99, 3200, false},
		{5, 5, true}, // tiny universe: everything is dense
	}
	for _, tc := range cases {
		if got := bitsetDense(tc.length, tc.rows); got != tc.want {
			t.Fatalf("bitsetDense(%d, %d) = %v, want %v", tc.length, tc.rows, got, tc.want)
		}
	}
}

// TestBitsetMatchesIndexPostings cross-checks the index-built containers:
// for every dense (column, value) the bitmap holds exactly the sorted
// posting list's rows, and sparse values get no container.
func TestBitsetMatchesIndexPostings(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"A", "B"}
	b := MustBuilder(names, nil)
	row := make([]string, 2)
	for i := 0; i < 500; i++ {
		// Column A is skewed: value "a" dominates, the tail is sparse.
		if rng.Intn(100) < 90 {
			row[0] = "a"
		} else {
			row[0] = string(rune('b' + rng.Intn(20)))
		}
		row[1] = string(rune('a' + rng.Intn(3)))
		b.MustAddRow(row)
	}
	tab := b.Build()
	ix := tab.Index()
	ix.Warm()
	for c := 0; c < tab.NumCols(); c++ {
		for v := 0; v < tab.DistinctCount(c); v++ {
			list := ix.Postings(c, rule.Value(v))
			bm := ix.Bitmap(c, rule.Value(v))
			if !bitsetDense(len(list), tab.NumRows()) {
				if bm != nil {
					t.Fatalf("col %d val %d: sparse list (len %d) has a container", c, v, len(list))
				}
				continue
			}
			if bm == nil {
				t.Fatalf("col %d val %d: dense list (len %d of %d) has no container", c, v, len(list), tab.NumRows())
			}
			if bm.Len() != len(list) {
				t.Fatalf("col %d val %d: bitmap Len %d != list len %d", c, v, bm.Len(), len(list))
			}
			for _, r := range list {
				if !bm.Contains(int(r)) {
					t.Fatalf("col %d val %d: row %d in list but not bitmap", c, v, r)
				}
			}
		}
	}
}

// FuzzBitsetIntersect feeds the kernels randomized list shapes — sizes,
// densities, and universes derived from the fuzz input — and checks both
// against the naive reference.
func FuzzBitsetIntersect(f *testing.F) {
	f.Add(int64(1), uint16(100), uint8(3), uint8(50))
	f.Add(int64(2), uint16(64), uint8(1), uint8(100))
	f.Add(int64(3), uint16(65), uint8(4), uint8(1))
	f.Add(int64(4), uint16(1), uint8(2), uint8(100))
	f.Add(int64(5), uint16(4096), uint8(5), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, rows16 uint16, nsets uint8, density uint8) {
		rows := int(rows16)%5000 + 1
		k := int(nsets)%6 + 1
		rng := rand.New(rand.NewSource(seed))
		lists := make([][]int32, k)
		for i := range lists {
			d := int(density)%101 + int(rng.Intn(20)) // per-set density jitter
			for r := 0; r < rows; r++ {
				if rng.Intn(120) < d {
					lists[i] = append(lists[i], int32(r))
				}
			}
		}
		sets := make([]*Bitset, k)
		for i, l := range lists {
			sets[i] = NewBitsetFromSorted(l, rows)
		}
		want := naiveIntersect(lists)
		count, _ := AndCount(sets)
		if count != len(want) {
			t.Fatalf("AndCount = %d, want %d (rows=%d k=%d)", count, len(want), rows, k)
		}
		var got []int32
		AndEach(sets, func(row int) { got = append(got, int32(row)) })
		if len(got) != len(want) {
			t.Fatalf("AndEach visited %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("AndEach[%d] = %d, want %d", i, got[i], want[i])
			}
		}
	})
}

package table

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// The paper's framework assumes categorical columns; numeric attributes are
// bucketized beforehand (Section 6.2), e.g. age → "18-24", "25-34". This
// file provides the two standard bucketization strategies so raw numeric
// data can be prepared for drill-down.

// BucketScheme selects how bucket boundaries are chosen.
type BucketScheme int

const (
	// EquiWidth splits [min, max] into equal-width intervals.
	EquiWidth BucketScheme = iota
	// EquiDepth chooses quantile boundaries so buckets hold roughly equal
	// numbers of rows, which keeps per-bucket counts comparable — useful
	// because smart drill-down favors high-count values.
	EquiDepth
)

// Bucketize converts a slice of numeric values into categorical labels of
// the form "lo-hi" using the given scheme and bucket count. It returns the
// labels (parallel to values) and the ordered distinct labels used.
func Bucketize(values []float64, buckets int, scheme BucketScheme) ([]string, []string, error) {
	if buckets < 1 {
		return nil, nil, fmt.Errorf("table: bucket count %d < 1", buckets)
	}
	if len(values) == 0 {
		return nil, nil, nil
	}
	bounds, err := bucketBounds(values, buckets, scheme)
	if err != nil {
		return nil, nil, err
	}
	labels := make([]string, len(bounds)-1)
	for i := range labels {
		labels[i] = fmt.Sprintf("%s-%s", formatBound(bounds[i]), formatBound(bounds[i+1]))
	}
	out := make([]string, len(values))
	for i, v := range values {
		// Find the first boundary strictly greater than v; v falls in the
		// preceding bucket. The last bucket is closed on both ends.
		b := sort.SearchFloat64s(bounds[1:len(bounds)-1], v)
		if bounds[1:][b] == v && b < len(labels)-1 {
			b++ // boundary values belong to the higher bucket, like sort.Search on (lo, hi]
		}
		if b >= len(labels) {
			b = len(labels) - 1
		}
		out[i] = labels[b]
	}
	return out, labels, nil
}

func bucketBounds(values []float64, buckets int, scheme BucketScheme) ([]float64, error) {
	switch scheme {
	case EquiWidth:
		lo, hi := values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if lo == hi {
			return []float64{lo, hi}, nil
		}
		bounds := make([]float64, buckets+1)
		for i := range bounds {
			bounds[i] = lo + (hi-lo)*float64(i)/float64(buckets)
		}
		return bounds, nil
	case EquiDepth:
		sorted := append([]float64{}, values...)
		sort.Float64s(sorted)
		bounds := []float64{sorted[0]}
		for i := 1; i < buckets; i++ {
			q := sorted[i*len(sorted)/buckets]
			if q > bounds[len(bounds)-1] {
				bounds = append(bounds, q)
			}
		}
		if top := sorted[len(sorted)-1]; top > bounds[len(bounds)-1] {
			bounds = append(bounds, top)
		}
		if len(bounds) == 1 { // all values identical
			bounds = append(bounds, bounds[0])
		}
		return bounds, nil
	default:
		return nil, fmt.Errorf("table: unknown bucket scheme %d", scheme)
	}
}

func formatBound(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// BucketizeMeasure replaces measure column name with a new categorical
// column of bucketized labels appended to the schema, returning a new Table.
// The measure column itself is retained (it can still be Sum-aggregated).
func (t *Table) BucketizeMeasure(name string, buckets int, scheme BucketScheme) (*Table, error) {
	m, err := t.MeasureIndex(name)
	if err != nil {
		return nil, err
	}
	labels, _, err := Bucketize(t.measures[m], buckets, scheme)
	if err != nil {
		return nil, err
	}
	cols := append(append([]string{}, t.colNames...), name+"_bucket")
	b, err := NewBuilder(cols, t.measureNames)
	if err != nil {
		return nil, err
	}
	vals := make([]string, len(cols))
	meas := make([]float64, len(t.measureNames))
	for i := 0; i < t.n; i++ {
		for c := range t.colNames {
			vals[c] = t.dicts[c].Decode(t.cols[c][i])
		}
		vals[len(cols)-1] = labels[i]
		for mm := range t.measureNames {
			meas[mm] = t.measures[mm][i]
		}
		if err := b.AddRow(vals, meas); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

package table

import (
	"testing"
)

func TestBucketizeEquiWidth(t *testing.T) {
	vals := []float64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	got, labels, err := Bucketize(vals, 4, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 4 {
		t.Fatalf("labels = %v", labels)
	}
	if got[0] != labels[0] {
		t.Errorf("min lands in first bucket, got %q", got[0])
	}
	if got[len(got)-1] != labels[3] {
		t.Errorf("max lands in last bucket, got %q", got[len(got)-1])
	}
	// Every assignment is one of the declared labels.
	valid := map[string]bool{}
	for _, l := range labels {
		valid[l] = true
	}
	for i, g := range got {
		if !valid[g] {
			t.Errorf("value %g assigned unknown label %q", vals[i], g)
		}
	}
}

func TestBucketizeEquiDepth(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i * i) // skewed
	}
	got, labels, err := Bucketize(vals, 5, EquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) == 0 || len(labels) > 5 {
		t.Fatalf("labels = %v", labels)
	}
	counts := map[string]int{}
	for _, g := range got {
		counts[g]++
	}
	// Equi-depth: no bucket should hold more than ~2x its fair share.
	fair := len(vals) / len(labels)
	for l, c := range counts {
		if c > 2*fair+1 {
			t.Errorf("bucket %q holds %d values; fair share is %d", l, c, fair)
		}
	}
}

func TestBucketizeEdgeCases(t *testing.T) {
	if _, _, err := Bucketize([]float64{1, 2}, 0, EquiWidth); err == nil {
		t.Error("0 buckets should fail")
	}
	if got, labels, err := Bucketize(nil, 3, EquiWidth); err != nil || got != nil || labels != nil {
		t.Error("empty input should return empty output")
	}
	// All-identical values collapse to a single bucket.
	got, labels, err := Bucketize([]float64{7, 7, 7}, 4, EquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 1 {
		t.Fatalf("constant column labels = %v", labels)
	}
	for _, g := range got {
		if g != labels[0] {
			t.Fatalf("constant column assignment %q", g)
		}
	}
	if _, _, err := Bucketize([]float64{1}, 2, BucketScheme(99)); err == nil {
		t.Error("unknown scheme should fail")
	}
}

func TestBucketizeMeasure(t *testing.T) {
	b := MustBuilder([]string{"Store"}, []string{"Age"})
	ages := []float64{18, 22, 25, 31, 35, 44, 52, 61, 70}
	for i, a := range ages {
		b.MustAddRow([]string{[]string{"A", "B", "C"}[i%3]}, a)
	}
	tab := b.Build()
	bt, err := tab.BucketizeMeasure("Age", 3, EquiDepth)
	if err != nil {
		t.Fatal(err)
	}
	if bt.NumCols() != 2 {
		t.Fatalf("cols = %d, want 2 (Store + Age_bucket)", bt.NumCols())
	}
	if bt.ColumnNames()[1] != "Age_bucket" {
		t.Fatalf("new column name = %q", bt.ColumnNames()[1])
	}
	if len(bt.MeasureNames()) != 1 {
		t.Fatal("original measure must be retained")
	}
	if bt.NumRows() != tab.NumRows() {
		t.Fatal("row count changed")
	}
	if _, err := tab.BucketizeMeasure("Nope", 3, EquiWidth); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestBucketizeBoundaryMembership(t *testing.T) {
	// Equi-width over [0,100] with 2 buckets: boundary value 50 belongs to
	// the upper bucket; 100 (the max) stays in the last bucket.
	vals := []float64{0, 50, 100}
	got, labels, err := Bucketize(vals, 2, EquiWidth)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != labels[1] {
		t.Errorf("boundary 50 should fall in upper bucket, got %q (labels %v)", got[1], labels)
	}
	if got[2] != labels[1] {
		t.Errorf("max should stay in last bucket, got %q", got[2])
	}
}

package table

import (
	"fmt"

	"smartdrill/internal/rule"
)

// Builder assembles a Table row by row. The zero Builder is not usable;
// construct with NewBuilder.
type Builder struct {
	t      *Table
	rowBuf []rule.Value
}

// NewBuilder starts a table with the given categorical column names and
// (possibly empty) measure column names. It returns ErrTooManyColumns if the
// categorical column count exceeds rule.MaxColumns.
func NewBuilder(columns []string, measures []string) (*Builder, error) {
	if len(columns) > rule.MaxColumns {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooManyColumns, len(columns), rule.MaxColumns)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("table: at least one categorical column required")
	}
	seen := make(map[string]bool, len(columns)+len(measures))
	for _, n := range append(append([]string{}, columns...), measures...) {
		if seen[n] {
			return nil, fmt.Errorf("table: duplicate column name %q", n)
		}
		seen[n] = true
	}
	t := &Table{
		colNames:     append([]string{}, columns...),
		dicts:        make([]*Dictionary, len(columns)),
		cols:         make([][]rule.Value, len(columns)),
		measureNames: append([]string{}, measures...),
		measures:     make([][]float64, len(measures)),
	}
	for c := range t.dicts {
		t.dicts[c] = NewDictionary()
	}
	return &Builder{t: t}, nil
}

// MustBuilder is NewBuilder for statically-correct schemas; it panics on
// error and is intended for tests and generators.
func MustBuilder(columns []string, measures []string) *Builder {
	b, err := NewBuilder(columns, measures)
	if err != nil {
		panic(err)
	}
	return b
}

// AddRow appends one tuple given as strings for the categorical columns and
// float64s for the measure columns.
func (b *Builder) AddRow(values []string, measures []float64) error {
	if len(values) != len(b.t.colNames) {
		return fmt.Errorf("table: row has %d values, schema has %d columns", len(values), len(b.t.colNames))
	}
	if len(measures) != len(b.t.measureNames) {
		return fmt.Errorf("table: row has %d measures, schema has %d", len(measures), len(b.t.measureNames))
	}
	for c, s := range values {
		b.t.cols[c] = append(b.t.cols[c], b.t.dicts[c].Encode(s))
	}
	for m, v := range measures {
		b.t.measures[m] = append(b.t.measures[m], v)
	}
	b.t.n++
	return nil
}

// MustAddRow is AddRow that panics on error, for generators with known-good
// shapes.
func (b *Builder) MustAddRow(values []string, measures ...float64) {
	if err := b.AddRow(values, measures); err != nil {
		panic(err)
	}
}

// Build finalizes and returns the table. The Builder must not be used after
// Build.
func (b *Builder) Build() *Table {
	t := b.t
	b.t = nil
	return t
}

package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV loads a table from CSV. The first record is the header. Columns
// whose names appear in measureCols are parsed as float64 measures; all
// other columns are categorical. Header names must be unique.
func ReadCSV(r io.Reader, measureCols []string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: reading CSV header: %w", err)
	}
	isMeasure := make(map[string]bool, len(measureCols))
	for _, m := range measureCols {
		isMeasure[m] = true
	}
	var catNames, measNames []string
	var catIdx, measIdx []int
	for i, name := range header {
		if isMeasure[name] {
			measNames = append(measNames, name)
			measIdx = append(measIdx, i)
		} else {
			catNames = append(catNames, name)
			catIdx = append(catIdx, i)
		}
	}
	if len(measNames) != len(measureCols) {
		return nil, fmt.Errorf("table: measure columns %v not all present in header %v", measureCols, header)
	}
	b, err := NewBuilder(catNames, measNames)
	if err != nil {
		return nil, err
	}
	vals := make([]string, len(catIdx))
	meas := make([]float64, len(measIdx))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: reading CSV line %d: %w", line, err)
		}
		for j, i := range catIdx {
			vals[j] = rec[i]
		}
		for j, i := range measIdx {
			v, err := strconv.ParseFloat(rec[i], 64)
			if err != nil {
				return nil, fmt.Errorf("table: line %d, measure %q: %w", line, measNames[j], err)
			}
			meas[j] = v
		}
		if err := b.AddRow(vals, meas); err != nil {
			return nil, fmt.Errorf("table: line %d: %w", line, err)
		}
	}
	return b.Build(), nil
}

// ReadCSVFile is ReadCSV over a file path.
func ReadCSVFile(path string, measureCols []string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, measureCols)
}

// WriteCSV writes the table (categorical columns first, then measures) as
// CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, t.colNames...), t.measureNames...)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for i := 0; i < t.n; i++ {
		for c := range t.colNames {
			rec[c] = t.dicts[c].Decode(t.cols[c][i])
		}
		for m := range t.measureNames {
			rec[len(t.colNames)+m] = strconv.FormatFloat(t.measures[m][i], 'g', -1, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile is WriteCSV to a file path.
func (t *Table) WriteCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package table

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const csvFixture = `Store,Product,Sales
Walmart,cookies,10.5
Target,bikes,200
Walmart,milk,3.25
`

func TestReadCSV(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(csvFixture), []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || tab.NumCols() != 2 {
		t.Fatalf("shape %d×%d", tab.NumRows(), tab.NumCols())
	}
	if got := tab.Measure(0)[1]; got != 200 {
		t.Fatalf("Sales[1] = %g", got)
	}
	if got := tab.Dict(0).Decode(tab.Value(0, 2)); got != "Walmart" {
		t.Fatalf("Store[2] = %q", got)
	}
}

func TestReadCSVNoMeasures(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader("A,B\nx,y\n"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != 2 || len(tab.MeasureNames()) != 0 {
		t.Fatal("unexpected schema")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader(""), nil); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadCSV(strings.NewReader("A,B\nx\n"), nil); err == nil {
		t.Error("ragged row should fail")
	}
	if _, err := ReadCSV(strings.NewReader(csvFixture), []string{"Price"}); err == nil {
		t.Error("missing measure column should fail")
	}
	bad := "A,M\nx,notanumber\n"
	if _, err := ReadCSV(strings.NewReader(bad), []string{"M"}); err == nil {
		t.Error("non-numeric measure should fail")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(csvFixture), []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(bytes.NewReader(buf.Bytes()), []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatal("round trip changed shape")
	}
	for i := 0; i < tab.NumRows(); i++ {
		for c := 0; c < tab.NumCols(); c++ {
			a := tab.Dict(c).Decode(tab.Value(c, i))
			b := back.Dict(c).Decode(back.Value(c, i))
			if a != b {
				t.Fatalf("cell (%d,%d): %q vs %q", c, i, a, b)
			}
		}
		if tab.Measure(0)[i] != back.Measure(0)[i] {
			t.Fatalf("measure row %d mismatch", i)
		}
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	tab, err := ReadCSV(strings.NewReader(csvFixture), []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := tab.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSVFile(path, []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 3 {
		t.Fatalf("rows = %d", back.NumRows())
	}
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv"), nil); err == nil {
		t.Error("missing file should fail")
	}
}

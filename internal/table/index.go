package table

import (
	"sort"
	"sync"
	"sync/atomic"

	"smartdrill/internal/rule"
)

// Index is a table's inverted index: for every (column, value) pair, the
// sorted list of rows holding that value. Posting lists are built lazily,
// one column at a time, on first use — a dataset pays one pass per column
// it is ever filtered on, and nothing for columns it is not. One Index
// exists per Table (see Table.Index), so every session on a shared dataset
// reuses the same posting lists instead of re-scanning per request.
//
// Building is guarded by a per-column sync.Once, making the Index safe for
// concurrent use by any number of readers.
type Index struct {
	t    *Table
	cols []colPostings
}

type colPostings struct {
	once  sync.Once
	built atomic.Bool
	lists [][]int32 // lists[v] = ascending rows with Value(c, row) == v
	// bits[v] shadows lists[v] with a packed bitset when the list is dense
	// enough that the bitmap costs no more memory than the list (see
	// bitsetDense); nil otherwise. Built together with lists under the same
	// once, so built covers both representations.
	bits []*Bitset
}

// Index returns the table's inverted index, allocating it on first call.
// The index itself builds per-column posting lists lazily.
func (t *Table) Index() *Index {
	t.idxOnce.Do(func() {
		t.idx = &Index{t: t, cols: make([]colPostings, len(t.cols))}
	})
	return t.idx
}

// buildCol materializes column c's posting lists with one counting pass
// (sizes) and one fill pass, so every list is exact-capacity and ascending
// by construction.
func (ix *Index) buildCol(c int) {
	cp := &ix.cols[c]
	cp.once.Do(func() {
		col := ix.t.cols[c]
		sizes := make([]int32, ix.t.dicts[c].Len())
		for _, v := range col {
			sizes[v]++
		}
		lists := make([][]int32, len(sizes))
		for v := range lists {
			lists[v] = make([]int32, 0, sizes[v])
		}
		for i, v := range col {
			lists[v] = append(lists[v], int32(i))
		}
		bits := make([]*Bitset, len(lists))
		for v, list := range lists {
			if bitsetDense(len(list), ix.t.n) {
				bits[v] = NewBitsetFromSorted(list, ix.t.n)
			}
		}
		cp.lists = lists
		cp.bits = bits
		cp.built.Store(true)
	})
}

// ColumnBuilt reports whether column c's posting lists are already
// materialized. Cost planners (BRS's scan-vs-postings decision) use it to
// avoid charging a surprise build pass to a single counting step: the
// planner only routes work to columns that are already paid for.
func (ix *Index) ColumnBuilt(c int) bool { return ix.cols[c].built.Load() }

// PostingsLen returns the number of rows holding value v in column c —
// Count(base+(c,v)) on the full table — building the column's lists on
// first use. Level-1 BRS counting under the Count aggregate reads only
// these lengths, no posting entries.
func (ix *Index) PostingsLen(c int, v rule.Value) int { return len(ix.Postings(c, v)) }

// Postings returns the ascending row list for value v of column c, building
// the column's lists on first use. The returned slice must not be modified.
// Values outside the column's dictionary (never produced by Encode/Lookup)
// yield nil.
func (ix *Index) Postings(c int, v rule.Value) []int32 {
	ix.buildCol(c)
	lists := ix.cols[c].lists
	if v < 0 || int(v) >= len(lists) {
		return nil
	}
	return lists[v]
}

// Bitmap returns the packed bitset shadowing value v's posting list in
// column c, or nil when the list is too sparse to carry one (see
// bitsetDense) or v is outside the column's dictionary. Builds the
// column's containers on first use, like Postings; callers that must not
// pay a build (cost planners) gate on ColumnBuilt first.
func (ix *Index) Bitmap(c int, v rule.Value) *Bitset {
	ix.buildCol(c)
	bits := ix.cols[c].bits
	if v < 0 || int(v) >= len(bits) {
		return nil
	}
	return bits[v]
}

// Lookup returns the ascending rows covered by r via posting-list
// intersection, along with the number of posting entries read (the I/O the
// storage layer accounts in place of a full scan). The trivial rule yields
// every row. Intersection starts from the shortest list, so cost is bounded
// by the most selective column's coverage, not the table size.
func (ix *Index) Lookup(r rule.Rule) (rows []int, postingsRead int64) {
	cols := r.InstantiatedColumns()
	if len(cols) == 0 {
		rows = make([]int, ix.t.n)
		for i := range rows {
			rows[i] = i
		}
		return rows, int64(ix.t.n)
	}
	lists := make([][]int32, len(cols))
	for j, c := range cols {
		lists[j] = ix.Postings(c, r[c])
		if len(lists[j]) == 0 {
			// Non-nil: a nil row list means "all rows" to View, the
			// opposite of an empty coverage set.
			return []int{}, 0
		}
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	// Intersect the shortest list against each longer one with a merge walk
	// (both sides ascending). The running result only shrinks, so each later
	// merge reads at most len(result) + len(list) entries.
	cur := lists[0]
	postingsRead = int64(len(cur))
	for _, next := range lists[1:] {
		out := cur[:0:0] // fresh backing array; cur may alias a posting list
		i, j := 0, 0
		for i < len(cur) && j < len(next) {
			a, b := cur[i], next[j]
			switch {
			case a == b:
				out = append(out, a)
				i++
				j++
			case a < b:
				i++
			default:
				j++
			}
		}
		postingsRead += int64(j)
		if j < len(next) {
			postingsRead++ // the probe that overshot cur's tail
		}
		cur = out
		if len(cur) == 0 {
			break
		}
	}
	rows = make([]int, len(cur))
	for i, v := range cur {
		rows[i] = int(v)
	}
	return rows, postingsRead
}

// FilterIndices returns the rows covered by r, ascending, via the index.
//
//sdlint:allow ioaccount untracked convenience path for Table.Filter and the bench/equivalence harnesses; the engine's accounted route is storage.Store.FilterRows, which books Lookup's postingsRead
func (ix *Index) FilterIndices(r rule.Rule) []int {
	rows, _ := ix.Lookup(r)
	return rows
}

// Warm eagerly builds every column's posting lists. The server calls it at
// dataset registration so no analyst's first drill-down pays the build.
func (ix *Index) Warm() {
	for c := range ix.cols {
		ix.buildCol(c)
	}
}

package table

import (
	"math/rand"
	"sync"
	"testing"

	"smartdrill/internal/rule"
)

func randomIndexedTable(rng *rand.Rand, cols, vals, n int) *Table {
	names := make([]string, cols)
	for c := range names {
		names[c] = string(rune('A' + c))
	}
	b := MustBuilder(names, nil)
	row := make([]string, cols)
	for i := 0; i < n; i++ {
		for c := range row {
			row[c] = string(rune('a' + rng.Intn(vals)))
		}
		b.MustAddRow(row)
	}
	return b.Build()
}

func randomRule(rng *rand.Rand, tab *Table) rule.Rule {
	r := rule.Trivial(tab.NumCols())
	for c := 0; c < tab.NumCols(); c++ {
		switch rng.Intn(3) {
		case 0:
			r[c] = rule.Value(rng.Intn(tab.DistinctCount(c)))
		}
	}
	return r
}

func TestPostingsMatchColumn(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tab := randomIndexedTable(rng, 3, 4, 200)
	ix := tab.Index()
	for c := 0; c < tab.NumCols(); c++ {
		total := 0
		for v := 0; v < tab.DistinctCount(c); v++ {
			prev := int32(-1)
			for _, i := range ix.Postings(c, rule.Value(v)) {
				if i <= prev {
					t.Fatalf("col %d value %d: postings not strictly ascending", c, v)
				}
				prev = i
				if tab.Value(c, int(i)) != rule.Value(v) {
					t.Fatalf("col %d: posting row %d holds %d, want %d", c, i, tab.Value(c, int(i)), v)
				}
				total++
			}
		}
		if total != tab.NumRows() {
			t.Fatalf("col %d: postings cover %d rows, want %d", c, total, tab.NumRows())
		}
	}
	if ix.Postings(0, rule.Value(tab.DistinctCount(0))) != nil {
		t.Fatal("out-of-dictionary value must yield nil postings")
	}
	if ix.Postings(0, rule.Star) != nil {
		t.Fatal("Star must yield nil postings")
	}
}

func TestFilterIndicesMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 50; trial++ {
		tab := randomIndexedTable(rng, 4, 3, 150)
		for probe := 0; probe < 10; probe++ {
			r := randomRule(rng, tab)
			got := tab.FilterIndices(r)
			want := tab.FilterIndicesScan(r)
			if len(got) != len(want) {
				t.Fatalf("trial %d rule %v: index %d rows, scan %d", trial, r, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d rule %v: row %d: index %d, scan %d", trial, r, i, got[i], want[i])
				}
			}
		}
	}
}

func TestFilterIndicesTrivialAndEmpty(t *testing.T) {
	b := MustBuilder([]string{"A", "B"}, nil)
	b.MustAddRow([]string{"x", "p"})
	b.MustAddRow([]string{"y", "q"})
	b.MustAddRow([]string{"x", "p"})
	tab := b.Build()
	all := tab.FilterIndices(rule.Trivial(2))
	if len(all) != tab.NumRows() {
		t.Fatalf("trivial rule covers %d rows, want %d", len(all), tab.NumRows())
	}
	// "x" and "q" never co-occur: the posting-list intersection is empty
	// even though both lists are non-empty.
	impossible, err := tab.EncodeRule(map[string]string{"A": "x", "B": "q"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.FilterIndices(impossible); len(got) != 0 {
		t.Fatalf("impossible rule matched %d rows", len(got))
	}
}

func TestFilterIndicesEmptyPostingList(t *testing.T) {
	// A Select-derived table shares the parent's dictionaries, so a value
	// can be in-dictionary with zero rows here. Its empty coverage must
	// come back as an empty (non-nil-meaning) row set: ViewOf interprets
	// nil as "all rows", the exact opposite.
	b := MustBuilder([]string{"A"}, nil)
	b.MustAddRow([]string{"x"})
	b.MustAddRow([]string{"y"})
	b.MustAddRow([]string{"x"})
	parent := b.Build()
	onlyX := parent.Select([]int{0, 2})
	yr, err := parent.EncodeRule(map[string]string{"A": "y"})
	if err != nil {
		t.Fatal(err)
	}
	rows := onlyX.FilterIndices(yr)
	if len(rows) != 0 {
		t.Fatalf("absent value matched %d rows", len(rows))
	}
	if v := onlyX.ViewOf(rows); v.NumRows() != 0 {
		t.Fatalf("empty coverage produced a %d-row view (nil/all-rows confusion)", v.NumRows())
	}
}

func TestIndexConcurrentBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	tab := randomIndexedTable(rng, 4, 3, 500)
	want := make(map[string]int)
	for probe := 0; probe < 8; probe++ {
		r := randomRule(rng, tab)
		want[r.Key()] = len(tab.FilterIndicesScan(r))
	}
	// Many goroutines race to build the lazy per-column posting lists and
	// the shared Index allocation itself (run under -race in CI).
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for probe := 0; probe < 50; probe++ {
				r := randomRule(rng, tab)
				rows := tab.Index().FilterIndices(r)
				if n, ok := want[r.Key()]; ok && n != len(rows) {
					t.Errorf("rule %v: %d rows, want %d", r, len(rows), n)
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestViewSemantics(t *testing.T) {
	b := MustBuilder([]string{"A", "B"}, []string{"M"})
	b.MustAddRow([]string{"x", "p"}, 1)
	b.MustAddRow([]string{"y", "p"}, 2)
	b.MustAddRow([]string{"x", "q"}, 3)
	b.MustAddRow([]string{"y", "q"}, 4)
	tab := b.Build()

	all := tab.All()
	if all.NumRows() != 4 || all.NumCols() != 2 || all.ParentRow(3) != 3 {
		t.Fatalf("full view misreports shape: %d x %d", all.NumRows(), all.NumCols())
	}
	sub := tab.ViewOf([]int{2, 0})
	if sub.NumRows() != 2 || sub.ParentRow(0) != 2 {
		t.Fatalf("sub view misreports shape")
	}
	if sub.Value(1, 0) != tab.Value(1, 2) || sub.MeasureValue(0, 1) != 1 {
		t.Fatal("view does not share parent arrays")
	}
	xr, _ := tab.EncodeRule(map[string]string{"A": "x"})
	if !sub.Covers(xr, 0) || !sub.Covers(xr, 1) {
		t.Fatal("view Covers must test the parent row")
	}
	if got := sub.Subset([]int{1}).ParentRow(0); got != 0 {
		t.Fatalf("Subset composed wrong: parent row %d, want 0", got)
	}
	qr, _ := tab.EncodeRule(map[string]string{"B": "q"})
	ref := sub.Refine(qr)
	if ref.NumRows() != 1 || ref.ParentRow(0) != 2 {
		t.Fatalf("Refine kept %d rows", ref.NumRows())
	}
	if empty := sub.Refine(rule.Rule{rule.Star, rule.Star - 1}); empty.NumRows() != 0 {
		t.Fatal("Refine with impossible rule must be empty, not full")
	}
	mat := sub.Materialize()
	if mat.NumRows() != 2 || mat.Value(0, 0) != tab.Value(0, 2) {
		t.Fatal("Materialize copied wrong rows")
	}
}

func TestViewOfDuplicateRows(t *testing.T) {
	b := MustBuilder([]string{"A"}, nil)
	b.MustAddRow([]string{"x"})
	b.MustAddRow([]string{"y"})
	tab := b.Build()
	v := tab.ViewOf([]int{0, 0, 1, 0})
	if v.NumRows() != 4 {
		t.Fatalf("duplicate view has %d rows", v.NumRows())
	}
	xr, _ := tab.EncodeRule(map[string]string{"A": "x"})
	n := 0
	for i := 0; i < v.NumRows(); i++ {
		if v.Covers(xr, i) {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("duplicate rows counted %d times, want 3", n)
	}
}

package table

import "sort"

// Posting intersection over views. BRS's postings-driven counting answers
// "which of this view's rows does candidate R cover?" by intersecting the
// posting lists of R's instantiated columns with the view's row set,
// instead of scanning every view row. The walk below visits the common
// rows in ascending order — the same order a scan visits them — so
// aggregate accumulation is bit-identical between the two access paths.

// Ascending reports whether the view's rows form a strictly increasing
// sequence of parent rows — i.e. the view is a sorted row *set*. The
// full-table view is ascending; index-backed rule filters are ascending by
// construction; sampled views (shuffled, possibly with replacement) are
// not and must be counted by scans.
func (v *View) Ascending() bool {
	for i := 1; i < len(v.rows); i++ {
		if v.rows[i] <= v.rows[i-1] {
			return false
		}
	}
	return true
}

// EachInAll calls fn(pos, row) for every view position pos whose parent
// row appears in all of the given ascending posting lists, in ascending
// row order, and returns the number of posting entries examined (the I/O
// charged in place of a scan). The view's rows must be ascending (see
// Ascending); lists must be non-nil. The shortest list drives the walk and
// the others advance by galloping, so cost is governed by the most
// selective column, not the table.
func (v *View) EachInAll(lists [][]int32, fn func(pos, row int)) int64 {
	if len(lists) == 0 {
		return 0
	}
	// Order by length ascending without mutating the caller's slice.
	ordered := make([][]int32, len(lists))
	copy(ordered, lists)
	sort.Slice(ordered, func(i, j int) bool { return len(ordered[i]) < len(ordered[j]) })
	driver := ordered[0]
	if len(driver) == 0 {
		return 0
	}
	read := int64(len(driver))
	offs := make([]int, len(ordered))
	vo := 0
outer:
	for _, r := range driver {
		for j := 1; j < len(ordered); j++ {
			o := gallop32(ordered[j], offs[j], r)
			read += int64(o - offs[j])
			offs[j] = o
			if o == len(ordered[j]) {
				break outer // this list is exhausted; no further common rows
			}
			if ordered[j][o] != r {
				continue outer
			}
		}
		pos := int(r)
		if v.rows != nil {
			vo = gallopInt(v.rows, vo, int(r))
			if vo == len(v.rows) {
				break
			}
			if v.rows[vo] != int(r) {
				continue
			}
			pos = vo
		}
		fn(pos, int(r))
	}
	return read
}

// gallop32 returns the smallest index i in [from, len(a)] with a[i] >=
// target, probing exponentially from `from` before binary-searching the
// bracketed range — O(log distance) instead of O(distance) when the
// target is near, which it is on intersection walks.
func gallop32(a []int32, from int, target int32) int {
	if from >= len(a) || a[from] >= target {
		return from
	}
	step := 1
	lo := from
	for lo+step < len(a) && a[lo+step] < target {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(a) {
		hi = len(a)
	}
	// Invariant: a[lo] < target, a[hi] >= target (or hi == len(a)).
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// gallopInt is gallop32 over an []int (the view's row list).
func gallopInt(a []int, from, target int) int {
	if from >= len(a) || a[from] >= target {
		return from
	}
	step := 1
	lo := from
	for lo+step < len(a) && a[lo+step] < target {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > len(a) {
		hi = len(a)
	}
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

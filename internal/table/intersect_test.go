package table

import (
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
)

func TestViewAscending(t *testing.T) {
	b := MustBuilder([]string{"A"}, nil)
	for i := 0; i < 10; i++ {
		b.MustAddRow([]string{"x"})
	}
	tab := b.Build()
	cases := []struct {
		rows []int
		want bool
	}{
		{nil, true}, // full table
		{[]int{}, true},
		{[]int{3}, true},
		{[]int{0, 2, 5, 9}, true},
		{[]int{0, 2, 2}, false}, // duplicate: a multiset, not a set
		{[]int{5, 3}, false},
	}
	for _, c := range cases {
		v := tab.All()
		if c.rows != nil {
			v = tab.ViewOf(c.rows)
		}
		if got := v.Ascending(); got != c.want {
			t.Errorf("Ascending(%v) = %v, want %v", c.rows, got, c.want)
		}
	}
}

func TestColumnBuiltAndPostingsLen(t *testing.T) {
	b := MustBuilder([]string{"A", "B"}, nil)
	b.MustAddRow([]string{"x", "p"})
	b.MustAddRow([]string{"y", "p"})
	b.MustAddRow([]string{"x", "q"})
	tab := b.Build()
	ix := tab.Index()
	if ix.ColumnBuilt(0) || ix.ColumnBuilt(1) {
		t.Fatal("no column should be built before first use")
	}
	if n := ix.PostingsLen(0, 0); n != 2 {
		t.Fatalf("PostingsLen(A,x) = %d, want 2", n)
	}
	if !ix.ColumnBuilt(0) {
		t.Fatal("column A must report built after PostingsLen")
	}
	if ix.ColumnBuilt(1) {
		t.Fatal("column B must stay lazy")
	}
}

// TestEachInAll cross-checks the galloping intersection against a naive
// reference over random tables, rules, and view subsets — full-table and
// explicit ascending views, one to three posting lists.
func TestEachInAll(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(3)
		names := make([]string, cols)
		for c := range names {
			names[c] = string(rune('A' + c))
		}
		b := MustBuilder(names, nil)
		n := 1 + rng.Intn(400)
		row := make([]string, cols)
		for i := 0; i < n; i++ {
			for c := range row {
				row[c] = string(rune('a' + rng.Intn(1+rng.Intn(6))))
			}
			b.MustAddRow(row)
		}
		tab := b.Build()
		ix := tab.Index()

		// Random rule over a random subset of columns.
		r := rule.Trivial(cols)
		var lists [][]int32
		for c := 0; c < cols; c++ {
			if rng.Intn(2) == 0 {
				r[c] = rule.Value(rng.Intn(tab.DistinctCount(c)))
				lists = append(lists, ix.Postings(c, r[c]))
			}
		}
		if len(lists) == 0 {
			continue
		}

		// Random ascending view (sometimes the full table).
		v := tab.All()
		if rng.Intn(2) == 0 {
			var rows []int
			for i := 0; i < n; i++ {
				if rng.Intn(3) > 0 {
					rows = append(rows, i)
				}
			}
			if rows == nil {
				rows = []int{}
			}
			v = tab.ViewOf(rows)
		}

		var gotPos, gotRow []int
		v.EachInAll(lists, func(pos, row int) {
			gotPos = append(gotPos, pos)
			gotRow = append(gotRow, row)
		})

		var wantPos, wantRow []int
		for i := 0; i < v.NumRows(); i++ {
			if v.Covers(r, i) {
				wantPos = append(wantPos, i)
				wantRow = append(wantRow, v.ParentRow(i))
			}
		}
		if len(gotPos) != len(wantPos) {
			t.Fatalf("trial %d: %d matches, want %d (rule %v)", trial, len(gotPos), len(wantPos), r)
		}
		for i := range wantPos {
			if gotPos[i] != wantPos[i] || gotRow[i] != wantRow[i] {
				t.Fatalf("trial %d: match %d = (%d,%d), want (%d,%d)",
					trial, i, gotPos[i], gotRow[i], wantPos[i], wantRow[i])
			}
		}
	}
}

func TestGallop(t *testing.T) {
	a := []int32{2, 4, 4, 8, 16, 32, 33}
	for target := int32(0); target < 40; target++ {
		for from := 0; from <= len(a); from++ {
			got := gallop32(a, from, target)
			want := from
			for want < len(a) && a[want] < target {
				want++
			}
			if got != want {
				t.Fatalf("gallop32(from=%d, target=%d) = %d, want %d", from, target, got, want)
			}
		}
	}
}

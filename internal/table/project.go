package table

import (
	"fmt"

	"smartdrill/internal/rule"
)

// Project returns a table with only the named categorical columns (in the
// given order), sharing column data and dictionaries with t. Measure
// columns are retained. The paper's experiments restrict the datasets to
// their first 7 columns; Project is how callers do the same.
func (t *Table) Project(columns []string) (*Table, error) {
	out := &Table{
		colNames:     append([]string{}, columns...),
		dicts:        make([]*Dictionary, len(columns)),
		cols:         make([][]rule.Value, len(columns)),
		n:            t.n,
		measureNames: t.measureNames,
		measures:     t.measures,
	}
	for i, name := range columns {
		c, err := t.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		out.dicts[i] = t.dicts[c]
		out.cols[i] = t.cols[c]
	}
	return out, nil
}

// ProjectFirst returns the table restricted to its first k categorical
// columns.
func (t *Table) ProjectFirst(k int) (*Table, error) {
	if k <= 0 || k > t.NumCols() {
		return nil, fmt.Errorf("table: cannot project first %d of %d columns", k, t.NumCols())
	}
	return t.Project(t.colNames[:k])
}

package table

import (
	"testing"
	"testing/quick"
)

// Property-based tests (testing/quick) on the table substrate.

func TestQuickDictionaryRoundTrip(t *testing.T) {
	f := func(values []string) bool {
		d := NewDictionary()
		ids := make(map[string]int32, len(values))
		for _, v := range values {
			id := d.Encode(v)
			if prev, seen := ids[v]; seen {
				if prev != id {
					return false // re-encoding must be stable
				}
			} else {
				ids[v] = id
			}
			if d.Decode(id) != v {
				return false // decode inverts encode
			}
		}
		return d.Len() == len(ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickBucketizeTotal(t *testing.T) {
	// Every value lands in exactly one declared bucket, for both schemes.
	f := func(raw []float64, bucketSeed uint8) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v && v < 1e15 && v > -1e15 { // drop NaN/extremes
				vals = append(vals, v)
			}
		}
		buckets := 1 + int(bucketSeed%9)
		for _, scheme := range []BucketScheme{EquiWidth, EquiDepth} {
			got, labels, err := Bucketize(vals, buckets, scheme)
			if err != nil {
				return false
			}
			if len(vals) == 0 {
				continue
			}
			valid := make(map[string]bool, len(labels))
			for _, l := range labels {
				valid[l] = true
			}
			for _, g := range got {
				if !valid[g] {
					return false
				}
			}
			if len(labels) > buckets {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickBucketizeOrderPreserving(t *testing.T) {
	// Equi-width bucketization is monotone: a larger value never lands in
	// a strictly lower bucket.
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v && v < 1e12 && v > -1e12 {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		got, labels, err := Bucketize(vals, 5, EquiWidth)
		if err != nil {
			return false
		}
		idx := make(map[string]int, len(labels))
		for i, l := range labels {
			idx[l] = i
		}
		for i := range vals {
			for j := range vals {
				if vals[i] < vals[j] && idx[got[i]] > idx[got[j]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickSelectPreservesCells(t *testing.T) {
	// Select(rows) returns exactly the chosen rows in order.
	f := func(data []uint8, picks []uint8) bool {
		if len(data) == 0 {
			return true
		}
		b := MustBuilder([]string{"A"}, nil)
		for _, v := range data {
			b.MustAddRow([]string{string(rune('a' + v%16))})
		}
		tab := b.Build()
		rows := make([]int, len(picks))
		for i, p := range picks {
			rows[i] = int(p) % tab.NumRows()
		}
		sel := tab.Select(rows)
		if sel.NumRows() != len(rows) {
			return false
		}
		for j, i := range rows {
			if sel.Value(0, j) != tab.Value(0, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickCountMatchesFilter(t *testing.T) {
	// Count(r) equals len(FilterIndices(r)) equals Filter(r).NumRows().
	f := func(data []uint8, col0 uint8) bool {
		if len(data) == 0 {
			return true
		}
		b := MustBuilder([]string{"A", "B"}, nil)
		for i, v := range data {
			b.MustAddRow([]string{
				string(rune('a' + v%4)),
				string(rune('x' + i%3)),
			})
		}
		tab := b.Build()
		r, err := tab.EncodeRule(map[string]string{"A": string(rune('a' + col0%4))})
		if err != nil {
			// The value may be absent from small tables; that is fine.
			return true
		}
		n := tab.Count(r)
		return n == len(tab.FilterIndices(r)) && n == tab.Filter(r).NumRows()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Package table implements the relational substrate smart drill-down runs
// on: a dictionary-encoded, column-major table of categorical values with
// optional float64 measure columns for Sum aggregation.
//
// As in the paper, the table is assumed denormalized (a star/snowflake
// schema flattened into one relation) and all drill-down columns are
// categorical; numeric columns are bucketized (see Bucketize) before use.
package table

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"smartdrill/internal/rule"
)

// ErrTooManyColumns is returned when a schema exceeds rule.MaxColumns.
var ErrTooManyColumns = errors.New("table: too many columns")

// Dictionary interns the distinct string values of one column and assigns
// each a dense int32 id in first-seen order.
type Dictionary struct {
	byValue map[string]rule.Value
	values  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byValue: make(map[string]rule.Value)}
}

// Encode returns the id for s, interning it if unseen. Interned strings
// are cloned: callers routinely pass substrings of larger buffers (CSV
// readers return fields slicing one backing line per record), and keeping
// such a substring alive would pin its whole backing array for the
// table's lifetime.
func (d *Dictionary) Encode(s string) rule.Value {
	if id, ok := d.byValue[s]; ok {
		return id
	}
	s = strings.Clone(s)
	id := rule.Value(len(d.values))
	d.byValue[s] = id
	d.values = append(d.values, s)
	return id
}

// Lookup returns the id for s without interning; ok is false if s has never
// been seen.
func (d *Dictionary) Lookup(s string) (rule.Value, bool) {
	id, ok := d.byValue[s]
	return id, ok
}

// Decode returns the string for id. It panics on out-of-range ids, which
// indicate programmer error (ids only come from Encode/Lookup).
func (d *Dictionary) Decode(id rule.Value) string { return d.values[id] }

// Len returns the number of distinct values interned so far.
func (d *Dictionary) Len() int { return len(d.values) }

// Table is an immutable, dictionary-encoded, column-major relation.
// Build one with a Builder; a built Table is safe for concurrent reads.
type Table struct {
	colNames []string
	dicts    []*Dictionary
	cols     [][]rule.Value // column-major: cols[c][row]
	n        int

	measureNames []string
	measures     [][]float64 // column-major, parallel to measureNames

	// idx is the table's lazily allocated inverted index (see Index). It is
	// part of the table's identity, not its value: every session over a
	// shared dataset reuses the same posting lists.
	idxOnce sync.Once
	idx     *Index
}

// NumRows returns the number of tuples.
func (t *Table) NumRows() int { return t.n }

// NumCols returns the number of categorical (drillable) columns.
func (t *Table) NumCols() int { return len(t.colNames) }

// ColumnNames returns the categorical column names in schema order. The
// returned slice must not be modified.
func (t *Table) ColumnNames() []string { return t.colNames }

// ColumnIndex returns the index of the named categorical column, or an
// error naming the available columns.
func (t *Table) ColumnIndex(name string) (int, error) {
	for i, n := range t.colNames {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("table: no column %q (have %v)", name, t.colNames)
}

// Dict returns the dictionary for column c.
func (t *Table) Dict(c int) *Dictionary { return t.dicts[c] }

// DistinctCount returns the number of distinct values in column c. The Bits
// weighting function is built from these counts.
func (t *Table) DistinctCount(c int) int { return t.dicts[c].Len() }

// Value returns the encoded value at (column c, row i).
func (t *Table) Value(c, i int) rule.Value { return t.cols[c][i] }

// Column returns the full encoded column c. The returned slice must not be
// modified.
func (t *Table) Column(c int) []rule.Value { return t.cols[c] }

// Row copies row i into buf (which must have length NumCols) and returns it.
func (t *Table) Row(i int, buf []rule.Value) []rule.Value {
	for c := range t.cols {
		buf[c] = t.cols[c][i]
	}
	return buf
}

// MeasureNames returns the measure (numeric aggregate) column names.
func (t *Table) MeasureNames() []string { return t.measureNames }

// MeasureIndex returns the index of the named measure column.
func (t *Table) MeasureIndex(name string) (int, error) {
	for i, n := range t.measureNames {
		if n == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("table: no measure column %q (have %v)", name, t.measureNames)
}

// Measure returns measure column m. The returned slice must not be modified.
func (t *Table) Measure(m int) []float64 { return t.measures[m] }

// Covers reports whether rule r covers row i, without materializing the row.
func (t *Table) Covers(r rule.Rule, i int) bool {
	for c, v := range r {
		if v != rule.Star && t.cols[c][i] != v {
			return false
		}
	}
	return true
}

// Count returns the number of rows covered by r — Count(r) in the paper.
func (t *Table) Count(r rule.Rule) int {
	n := 0
	for i := 0; i < t.n; i++ {
		if t.Covers(r, i) {
			n++
		}
	}
	return n
}

// FilterIndices returns the row indices covered by r, in ascending order.
// It is answered by posting-list intersection on the table's inverted
// index (built lazily per referenced column), not by a full scan; use
// FilterIndicesScan for the scan-based reference path.
func (t *Table) FilterIndices(r rule.Rule) []int {
	return t.Index().FilterIndices(r)
}

// FilterIndicesScan returns the row indices covered by r, in ascending
// order, by a full scan. It is the reference implementation the index path
// is tested and benchmarked against (and the honest baseline for
// scan-vs-index experiments).
func (t *Table) FilterIndicesScan(r rule.Rule) []int {
	var idx []int
	for i := 0; i < t.n; i++ {
		if t.Covers(r, i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Select materializes a new Table containing exactly the given rows (in the
// given order), sharing dictionaries with t. The drill-down hot path uses
// zero-copy Views instead (see View); Select remains for callers that want
// an independent dense table (tests, reference baselines).
func (t *Table) Select(rows []int) *Table {
	out := &Table{
		colNames:     t.colNames,
		dicts:        t.dicts,
		cols:         make([][]rule.Value, len(t.cols)),
		n:            len(rows),
		measureNames: t.measureNames,
		measures:     make([][]float64, len(t.measures)),
	}
	for c := range t.cols {
		col := make([]rule.Value, len(rows))
		src := t.cols[c]
		for j, i := range rows {
			col[j] = src[i]
		}
		out.cols[c] = col
	}
	for m := range t.measures {
		col := make([]float64, len(rows))
		src := t.measures[m]
		for j, i := range rows {
			col[j] = src[i]
		}
		out.measures[m] = col
	}
	return out
}

// Filter returns a new Table holding only the rows covered by r.
func (t *Table) Filter(r rule.Rule) *Table { return t.Select(t.FilterIndices(r)) }

// EncodeRule translates a pattern of column-name → string-value into a Rule.
// Columns absent from the pattern are stars. Unknown values yield an error
// (such a rule could never cover anything; surfacing it early catches typos).
func (t *Table) EncodeRule(pattern map[string]string) (rule.Rule, error) {
	r := rule.Trivial(t.NumCols())
	for name, val := range pattern {
		c, err := t.ColumnIndex(name)
		if err != nil {
			return nil, err
		}
		id, ok := t.dicts[c].Lookup(val)
		if !ok {
			return nil, fmt.Errorf("table: column %q has no value %q", name, val)
		}
		r[c] = id
	}
	return r, nil
}

// DecodeRule renders a rule's entries as strings, with "?" for stars.
func (t *Table) DecodeRule(r rule.Rule) []string {
	out := make([]string, len(r))
	for c, v := range r {
		if v == rule.Star {
			out[c] = "?"
		} else {
			out[c] = t.dicts[c].Decode(v)
		}
	}
	return out
}

package table

import (
	"strings"
	"testing"

	"smartdrill/internal/rule"
)

// small builds the shared fixture: a 6-row store table with a measure.
func small(t *testing.T) *Table {
	t.Helper()
	b, err := NewBuilder([]string{"Store", "Product"}, []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		s, p  string
		sales float64
	}{
		{"Walmart", "cookies", 10},
		{"Walmart", "milk", 20},
		{"Target", "cookies", 30},
		{"Target", "bikes", 40},
		{"Walmart", "cookies", 50},
		{"Costco", "milk", 60},
	}
	for _, r := range rows {
		if err := b.AddRow([]string{r.s, r.p}, []float64{r.sales}); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	tab := small(t)
	if tab.NumRows() != 6 || tab.NumCols() != 2 {
		t.Fatalf("shape = %d×%d, want 6×2", tab.NumRows(), tab.NumCols())
	}
	if got := tab.DistinctCount(0); got != 3 {
		t.Fatalf("DistinctCount(Store) = %d, want 3", got)
	}
	if got := tab.DistinctCount(1); got != 3 {
		t.Fatalf("DistinctCount(Product) = %d, want 3", got)
	}
	if name := tab.ColumnNames()[1]; name != "Product" {
		t.Fatalf("column 1 = %q", name)
	}
	if got := tab.MeasureNames(); len(got) != 1 || got[0] != "Sales" {
		t.Fatalf("measures = %v", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := NewBuilder(nil, nil); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := NewBuilder([]string{"A", "A"}, nil); err == nil {
		t.Error("duplicate column should fail")
	}
	if _, err := NewBuilder([]string{"A"}, []string{"A"}); err == nil {
		t.Error("categorical/measure name clash should fail")
	}
	cols := make([]string, rule.MaxColumns+1)
	for i := range cols {
		cols[i] = string(rune('a'+i%26)) + strings.Repeat("x", i/26)
	}
	if _, err := NewBuilder(cols, nil); err == nil {
		t.Error(">MaxColumns should fail")
	}
	b, err := NewBuilder([]string{"A"}, []string{"M"})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow([]string{"x", "y"}, []float64{1}); err == nil {
		t.Error("wrong arity should fail")
	}
	if err := b.AddRow([]string{"x"}, nil); err == nil {
		t.Error("missing measures should fail")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a := d.Encode("alpha")
	b := d.Encode("beta")
	if a2 := d.Encode("alpha"); a2 != a {
		t.Fatal("Encode must be idempotent")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Decode(b) != "beta" {
		t.Fatal("Decode mismatch")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup of unseen value should fail")
	}
}

func TestCountAndCovers(t *testing.T) {
	tab := small(t)
	walmart, err := tab.EncodeRule(map[string]string{"Store": "Walmart"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Count(walmart); got != 3 {
		t.Fatalf("Count(Walmart) = %d, want 3", got)
	}
	wc, err := tab.EncodeRule(map[string]string{"Store": "Walmart", "Product": "cookies"})
	if err != nil {
		t.Fatal(err)
	}
	if got := tab.Count(wc); got != 2 {
		t.Fatalf("Count(Walmart,cookies) = %d, want 2", got)
	}
	if got := tab.Count(rule.Trivial(2)); got != 6 {
		t.Fatalf("Count(trivial) = %d, want 6", got)
	}
}

func TestFilterAndSelect(t *testing.T) {
	tab := small(t)
	walmart, _ := tab.EncodeRule(map[string]string{"Store": "Walmart"})
	sub := tab.Filter(walmart)
	if sub.NumRows() != 3 {
		t.Fatalf("filtered rows = %d, want 3", sub.NumRows())
	}
	// Dictionaries are shared: value ids survive filtering.
	if sub.Dict(0) != tab.Dict(0) {
		t.Fatal("Filter must share dictionaries")
	}
	// Measures are carried over in row order.
	if got := sub.Measure(0); got[0] != 10 || got[1] != 20 || got[2] != 50 {
		t.Fatalf("filtered measures = %v", got)
	}
	sel := tab.Select([]int{5, 0})
	if sel.NumRows() != 2 || sel.Dict(0).Decode(sel.Value(0, 0)) != "Costco" {
		t.Fatalf("Select order not preserved")
	}
}

func TestEncodeRuleErrors(t *testing.T) {
	tab := small(t)
	if _, err := tab.EncodeRule(map[string]string{"Nope": "x"}); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := tab.EncodeRule(map[string]string{"Store": "Amazon"}); err == nil {
		t.Error("unknown value should fail")
	}
}

func TestDecodeRule(t *testing.T) {
	tab := small(t)
	r, _ := tab.EncodeRule(map[string]string{"Product": "milk"})
	got := tab.DecodeRule(r)
	if got[0] != "?" || got[1] != "milk" {
		t.Fatalf("DecodeRule = %v", got)
	}
}

func TestRowAndColumn(t *testing.T) {
	tab := small(t)
	buf := make([]rule.Value, tab.NumCols())
	tab.Row(3, buf)
	if tab.Dict(0).Decode(buf[0]) != "Target" || tab.Dict(1).Decode(buf[1]) != "bikes" {
		t.Fatalf("Row(3) = %v", buf)
	}
	col := tab.Column(1)
	if len(col) != 6 {
		t.Fatalf("Column len = %d", len(col))
	}
}

func TestProject(t *testing.T) {
	tab := small(t)
	p, err := tab.Project([]string{"Product"})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumCols() != 1 || p.NumRows() != 6 {
		t.Fatalf("projected shape %d×%d", p.NumRows(), p.NumCols())
	}
	if p.Dict(0) != tab.Dict(1) {
		t.Fatal("projection must share dictionaries")
	}
	if _, err := tab.Project([]string{"Nope"}); err == nil {
		t.Error("projecting unknown column should fail")
	}
	if _, err := tab.ProjectFirst(0); err == nil {
		t.Error("ProjectFirst(0) should fail")
	}
	pf, err := tab.ProjectFirst(1)
	if err != nil || pf.ColumnNames()[0] != "Store" {
		t.Fatalf("ProjectFirst: %v %v", pf.ColumnNames(), err)
	}
	// Measures survive projection.
	if len(p.MeasureNames()) != 1 {
		t.Fatal("projection must keep measures")
	}
}

func TestMeasureIndex(t *testing.T) {
	tab := small(t)
	if _, err := tab.MeasureIndex("Sales"); err != nil {
		t.Fatal(err)
	}
	if _, err := tab.MeasureIndex("Price"); err == nil {
		t.Error("unknown measure should fail")
	}
}

func TestFilterIndices(t *testing.T) {
	tab := small(t)
	milk, _ := tab.EncodeRule(map[string]string{"Product": "milk"})
	idx := tab.FilterIndices(milk)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 5 {
		t.Fatalf("FilterIndices = %v", idx)
	}
}

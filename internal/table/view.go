package table

import "smartdrill/internal/rule"

// View is a zero-copy subset of a parent Table's rows: it shares the
// parent's column arrays, measure arrays, and dictionaries, adding only a
// list of parent row indices. Views replace the copying Filter/Select on
// the drill-down hot path — materializing a million-row coverage set per
// expansion is exactly the cost the paper's interactivity budget cannot
// afford. A View is immutable and safe for concurrent reads, like its
// parent.
//
// Row positions are view-local: position i of a view with an explicit row
// list refers to parent row rows[i]. A nil row list denotes the whole
// parent table, with zero per-access indirection beyond one branch.
type View struct {
	t    *Table
	rows []int // parent row indices; nil = all rows of t
}

// All returns the view spanning every row of t.
func (t *Table) All() *View { return &View{t: t} }

// ViewOf returns the view of t consisting of the given parent row indices,
// in the given order (duplicates allowed — samples drawn with replacement
// use them). The slice is retained, not copied; callers must not mutate it
// afterwards.
func (t *Table) ViewOf(rows []int) *View { return &View{t: t, rows: rows} }

// Table returns the parent table whose arrays the view shares.
func (v *View) Table() *Table { return v.t }

// NumRows returns the number of rows in the view.
func (v *View) NumRows() int {
	if v.rows == nil {
		return v.t.n
	}
	return len(v.rows)
}

// NumCols returns the number of categorical columns (same as the parent).
func (v *View) NumCols() int { return v.t.NumCols() }

// DistinctCount returns the parent dictionary size of column c. Views share
// dictionaries, so value ids seen through a view index the same dictionary
// as the parent's.
func (v *View) DistinctCount(c int) int { return v.t.DistinctCount(c) }

// ParentRow maps view position i to the parent table's row index.
func (v *View) ParentRow(i int) int {
	if v.rows == nil {
		return i
	}
	return v.rows[i]
}

// Value returns the encoded value at (column c, view position i).
func (v *View) Value(c, i int) rule.Value {
	if v.rows != nil {
		i = v.rows[i]
	}
	return v.t.cols[c][i]
}

// MeasureValue returns measure column m at view position i.
func (v *View) MeasureValue(m, i int) float64 {
	if v.rows != nil {
		i = v.rows[i]
	}
	return v.t.measures[m][i]
}

// Covers reports whether rule r covers the tuple at view position i.
func (v *View) Covers(r rule.Rule, i int) bool {
	if v.rows != nil {
		i = v.rows[i]
	}
	return v.t.Covers(r, i)
}

// Subset returns the view of the parent rows at the given view positions —
// the zero-copy analogue of Select for probe samples.
func (v *View) Subset(positions []int) *View {
	rows := make([]int, len(positions))
	for j, p := range positions {
		rows[j] = v.ParentRow(p)
	}
	return &View{t: v.t, rows: rows}
}

// Refine returns the view restricted to the rows covered by r, scanning
// only the view's own rows (never the full parent).
func (v *View) Refine(r rule.Rule) *View {
	n := v.NumRows()
	var rows []int
	for i := 0; i < n; i++ {
		if v.Covers(r, i) {
			rows = append(rows, v.ParentRow(i))
		}
	}
	if rows == nil {
		rows = []int{} // distinguish "empty result" from "all rows"
	}
	return &View{t: v.t, rows: rows}
}

// Materialize copies the view's rows into an independent dense Table
// (sharing dictionaries). Tests use it to cross-check view-backed results
// against the copying path.
func (v *View) Materialize() *Table {
	rows := v.rows
	if rows == nil {
		rows = make([]int, v.t.n)
		for i := range rows {
			rows[i] = i
		}
	}
	return v.t.Select(rows)
}

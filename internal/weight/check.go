package weight

import (
	"fmt"
	"math/rand"

	"smartdrill/internal/rule"
)

// CheckMonotone probabilistically validates the two conditions the paper
// imposes on weighting functions over a table with the given column count:
// non-negativity, and monotonicity in the sub-rule order (adding an
// instantiated column never lowers the weight). It draws trials random
// masks and checks each against all single-column extensions; a violation
// is returned as a descriptive error. A nil error means no violation was
// found, not a proof of monotonicity.
func CheckMonotone(w Weighter, columns, trials int, rng *rand.Rand) error {
	if columns > rule.MaxColumns {
		return fmt.Errorf("weight: %d columns exceeds %d", columns, rule.MaxColumns)
	}
	for i := 0; i < trials; i++ {
		var m rule.Mask
		for c := 0; c < columns; c++ {
			if rng.Intn(2) == 1 {
				m.Set(c)
			}
		}
		base := w.Weight(m)
		if base < 0 {
			return fmt.Errorf("weight %s: negative weight %g for mask %v", w.Name(), base, m.Columns())
		}
		for c := 0; c < columns; c++ {
			if m.Has(c) {
				continue
			}
			ext := m
			ext.Set(c)
			if got := w.Weight(ext); got < base {
				return fmt.Errorf("weight %s: not monotone: W(%v)=%g < W(%v)=%g",
					w.Name(), ext.Columns(), got, m.Columns(), base)
			}
		}
	}
	return nil
}

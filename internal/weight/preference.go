package weight

import (
	"fmt"
	"strings"

	"smartdrill/internal/rule"
)

// Preference implements the Section 6.1 user-interface adjustments —
// "express interest or disinterest in certain columns" — as a wrapper over
// any weighter:
//
//   - Ignored columns are removed from the mask before the inner weighter
//     sees it, so instantiating them neither helps nor hurts.
//   - Favored columns add Bonus weight each, on top of the inner weight.
//
// Both adjustments preserve monotonicity: dropping ignored columns is
// order-preserving on masks, and the favored bonus is additive in the
// instantiated set.
type Preference struct {
	Inner   Weighter
	Ignored rule.Mask
	Favored rule.Mask
	// Bonus is the extra weight per instantiated favored column; 0 means 1.
	Bonus float64
}

// Weight implements Weighter.
func (p Preference) Weight(m rule.Mask) float64 {
	visible := rule.Mask{m[0] &^ p.Ignored[0], m[1] &^ p.Ignored[1]}
	w := p.Inner.Weight(visible)
	bonus := p.Bonus
	if bonus == 0 {
		bonus = 1
	}
	favored := rule.Mask{m[0] & p.Favored[0], m[1] & p.Favored[1]}
	return w + bonus*float64(favored.Count())
}

// MaxWeight implements Weighter.
func (p Preference) MaxWeight(cols int) float64 {
	bonus := p.Bonus
	if bonus == 0 {
		bonus = 1
	}
	return p.Inner.MaxWeight(cols) + bonus*float64(minInt(cols, p.Favored.Count()))
}

// Name implements Weighter.
func (p Preference) Name() string {
	var parts []string
	if p.Favored.Count() > 0 {
		parts = append(parts, fmt.Sprintf("favor%v", p.Favored.Columns()))
	}
	if p.Ignored.Count() > 0 {
		parts = append(parts, fmt.Sprintf("ignore%v", p.Ignored.Columns()))
	}
	if len(parts) == 0 {
		return p.Inner.Name()
	}
	return p.Inner.Name() + "+" + strings.Join(parts, ",")
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package weight

import (
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
)

func TestPreferenceIgnoreDropsColumn(t *testing.T) {
	p := Preference{Inner: NewSize(4), Ignored: rule.MaskOf(1)}
	if got := p.Weight(rule.MaskOf(1)); got != 0 {
		t.Fatalf("ignored column weight = %g, want 0", got)
	}
	if got := p.Weight(rule.MaskOf(0, 1, 2)); got != 2 {
		t.Fatalf("W({0,1,2}) = %g, want 2 (column 1 ignored)", got)
	}
}

func TestPreferenceFavor(t *testing.T) {
	p := Preference{Inner: NewSize(4), Favored: rule.MaskOf(2), Bonus: 3}
	if got := p.Weight(rule.MaskOf(2)); got != 4 {
		t.Fatalf("favored column = %g, want 1+3", got)
	}
	if got := p.Weight(rule.MaskOf(0)); got != 1 {
		t.Fatalf("plain column = %g, want 1", got)
	}
	// Default bonus is 1.
	d := Preference{Inner: NewSize(4), Favored: rule.MaskOf(2)}
	if got := d.Weight(rule.MaskOf(2)); got != 2 {
		t.Fatalf("default bonus weight = %g, want 2", got)
	}
}

func TestPreferenceMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := Preference{
		Inner:   NewBits([]int{2, 4, 8, 16, 32, 64}),
		Ignored: rule.MaskOf(0, 3),
		Favored: rule.MaskOf(1, 5),
		Bonus:   2.5,
	}
	if err := CheckMonotone(p, 6, 500, rng); err != nil {
		t.Fatal(err)
	}
}

func TestPreferenceMaxWeight(t *testing.T) {
	p := Preference{Inner: NewSize(4), Favored: rule.MaskOf(0, 1), Bonus: 2}
	// MaxWeight(4): inner 4 plus 2 favored columns × 2 bonus.
	if got := p.MaxWeight(4); got != 8 {
		t.Fatalf("MaxWeight = %g, want 8", got)
	}
	// With room for a single column, at most one favored bonus applies.
	if got := p.MaxWeight(1); got != 3 {
		t.Fatalf("MaxWeight(1) = %g, want 1+2", got)
	}
}

func TestPreferenceName(t *testing.T) {
	p := Preference{Inner: NewSize(3), Favored: rule.MaskOf(1), Ignored: rule.MaskOf(2)}
	name := p.Name()
	if name == "Size" {
		t.Fatalf("name %q should mention adjustments", name)
	}
	plain := Preference{Inner: NewSize(3)}
	if plain.Name() != "Size" {
		t.Fatalf("no-op preference name = %q", plain.Name())
	}
}

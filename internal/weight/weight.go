// Package weight implements the rule-weighting functions of Section 2.2 and
// the parametric family of Section 6.1.
//
// A weighting function assigns each rule a non-negative "goodness" score
// independent of the data distribution: it may depend only on which columns
// the rule instantiates and on schema statistics (column cardinalities).
// All weighters here are monotone — instantiating more columns never lowers
// the weight — except where a construction (StarConstraint) deliberately
// zeroes rules missing a required column, which preserves the optimality
// machinery because the constraint is downward-closed over the search
// lattice used by BRS.
package weight

import (
	"fmt"
	"math"

	"smartdrill/internal/rule"
)

// Weighter scores a rule by its instantiated-column mask. Implementations
// must be non-negative; monotonicity (mask ⊆ mask' ⇒ W ≤ W') is required by
// the paper's optimality analysis and can be validated with CheckMonotone.
type Weighter interface {
	// Weight returns W(r) for any rule whose instantiated columns are m.
	Weight(m rule.Mask) float64
	// MaxWeight returns an upper bound on Weight over rules instantiating
	// at most the given number of columns; BRS uses it to derive pruning
	// bounds and sanity-check the user-supplied mw parameter.
	MaxWeight(cols int) float64
	// Name identifies the weighter in experiment output.
	Name() string
}

// WeightRule is a convenience helper applying w to a concrete rule.
func WeightRule(w Weighter, r rule.Rule) float64 { return w.Weight(r.Mask()) }

// Size is the Size weighting function: W(r) = number of non-star values.
// Under Size weighting, Score(R) equals the number of table cells "pre-
// filled" by the rule list, the reconstruction intuition of Section 2.2.
type Size struct{ Columns int }

// NewSize returns the Size weighter for a table with the given column count.
func NewSize(columns int) Size { return Size{Columns: columns} }

// Weight implements Weighter.
func (s Size) Weight(m rule.Mask) float64 { return float64(m.Count()) }

// MaxWeight implements Weighter.
func (s Size) MaxWeight(cols int) float64 { return float64(min(cols, s.Columns)) }

// Name implements Weighter.
func (s Size) Name() string { return "Size" }

// Bits weighs each instantiated column by ceil(log2(distinct values)): the
// information content of pinning that column. Columns with two values (e.g.
// gender) contribute 1 bit; ten-value columns contribute 4.
type Bits struct {
	bits []float64
}

// NewBits builds the Bits weighter from per-column distinct-value counts.
func NewBits(distinct []int) Bits {
	b := Bits{bits: make([]float64, len(distinct))}
	for c, n := range distinct {
		if n > 1 {
			b.bits[c] = math.Ceil(math.Log2(float64(n)))
		}
		// A single-valued column conveys no information: 0 bits. This also
		// keeps ceil(log2(1)) = 0 rather than negative/NaN edge cases.
	}
	return b
}

// CardinalityProvider supplies per-column distinct counts; *table.Table
// satisfies it. Declared here so weighters do not import the table package.
type CardinalityProvider interface {
	NumCols() int
	DistinctCount(c int) int
}

// BitsFor builds the Bits weighter from any cardinality provider.
func BitsFor(t CardinalityProvider) Bits {
	distinct := make([]int, t.NumCols())
	for c := range distinct {
		distinct[c] = t.DistinctCount(c)
	}
	return NewBits(distinct)
}

// Weight implements Weighter.
func (b Bits) Weight(m rule.Mask) float64 {
	w := 0.0
	for _, c := range m.Columns() {
		if c < len(b.bits) {
			w += b.bits[c]
		}
	}
	return w
}

// MaxWeight implements Weighter.
func (b Bits) MaxWeight(cols int) float64 {
	// Sum of the largest `cols` per-column bit weights.
	top := append([]float64{}, b.bits...)
	// Simple selection: repeatedly take max; column counts are small.
	w := 0.0
	for i := 0; i < cols && i < len(top); i++ {
		best, bi := -1.0, -1
		for j, v := range top {
			if v > best {
				best, bi = v, j
			}
		}
		w += best
		top[bi] = -1
	}
	return w
}

// Name implements Weighter.
func (b Bits) Name() string { return "Bits" }

// SizeMinusOne is W(r) = max(0, Size(r)−1): the weighting of Figure 7,
// which zeroes single-column rules so drill-downs only surface multi-column
// patterns. (The paper's text writes Min(0, Size−1) but the accompanying
// figure and the non-negativity requirement make clear max is intended.)
type SizeMinusOne struct{}

// Weight implements Weighter.
func (SizeMinusOne) Weight(m rule.Mask) float64 {
	return math.Max(0, float64(m.Count()-1))
}

// MaxWeight implements Weighter.
func (SizeMinusOne) MaxWeight(cols int) float64 { return math.Max(0, float64(cols-1)) }

// Name implements Weighter.
func (SizeMinusOne) Name() string { return "Size-1" }

// Linear is the parametric family of Section 6.1:
//
//	W(r) = (Σ_{c instantiated} PerColumn[c]) ^ Power
//
// Size is Linear with unit weights and Power 1; Bits is Linear with
// per-column log cardinalities and Power 1. Analysts express column
// preference (or indifference) through PerColumn.
type Linear struct {
	PerColumn []float64
	Power     float64
	Label     string
}

// NewLinear constructs the parametric weighter; Power ≤ 0 defaults to 1.
func NewLinear(perColumn []float64, power float64, label string) Linear {
	if power <= 0 {
		power = 1
	}
	if label == "" {
		label = "Linear"
	}
	return Linear{PerColumn: append([]float64{}, perColumn...), Power: power, Label: label}
}

// Weight implements Weighter.
func (l Linear) Weight(m rule.Mask) float64 {
	s := 0.0
	for _, c := range m.Columns() {
		if c < len(l.PerColumn) {
			s += l.PerColumn[c]
		}
	}
	if l.Power == 1 {
		return s
	}
	return math.Pow(s, l.Power)
}

// MaxWeight implements Weighter.
func (l Linear) MaxWeight(cols int) float64 {
	top := append([]float64{}, l.PerColumn...)
	s := 0.0
	for i := 0; i < cols && i < len(top); i++ {
		best, bi := math.Inf(-1), -1
		for j, v := range top {
			if v > best {
				best, bi = v, j
			}
		}
		if best <= 0 {
			break
		}
		s += best
		top[bi] = math.Inf(-1)
	}
	if l.Power == 1 {
		return s
	}
	return math.Pow(s, l.Power)
}

// Name implements Weighter.
func (l Linear) Name() string { return l.Label }

// ColumnDrill emulates traditional drill-down on one column (Section 5.1.2):
// W(r) = 1 if the column is instantiated, else 0. With k set to the column's
// distinct-value count, BRS then returns exactly the classic GROUP BY
// result ordered by count.
type ColumnDrill struct{ Column int }

// Weight implements Weighter.
func (d ColumnDrill) Weight(m rule.Mask) float64 {
	if m.Has(d.Column) {
		return 1
	}
	return 0
}

// MaxWeight implements Weighter.
func (d ColumnDrill) MaxWeight(cols int) float64 {
	if cols >= 1 {
		return 1
	}
	return 0
}

// Name implements Weighter.
func (d ColumnDrill) Name() string { return fmt.Sprintf("ColumnDrill(%d)", d.Column) }

// StarConstraint wraps a weighter for star drill-down (Problem 1 → 2
// reduction): rules leaving the clicked column starred get weight zero, so
// the optimizer only surfaces rules instantiating that column.
type StarConstraint struct {
	Inner  Weighter
	Column int
}

// Weight implements Weighter.
func (s StarConstraint) Weight(m rule.Mask) float64 {
	if !m.Has(s.Column) {
		return 0
	}
	return s.Inner.Weight(m)
}

// MaxWeight implements Weighter.
func (s StarConstraint) MaxWeight(cols int) float64 { return s.Inner.MaxWeight(cols) }

// Name implements Weighter.
func (s StarConstraint) Name() string {
	return fmt.Sprintf("%s|col%d!=?", s.Inner.Name(), s.Column)
}

// Scaled multiplies an inner weighter by a positive constant; useful for
// blending weighters or expressing "favor this column group".
type Scaled struct {
	Inner  Weighter
	Factor float64
}

// Weight implements Weighter.
func (s Scaled) Weight(m rule.Mask) float64 { return s.Factor * s.Inner.Weight(m) }

// MaxWeight implements Weighter.
func (s Scaled) MaxWeight(cols int) float64 { return s.Factor * s.Inner.MaxWeight(cols) }

// Name implements Weighter.
func (s Scaled) Name() string { return fmt.Sprintf("%.3g*%s", s.Factor, s.Inner.Name()) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package weight

import (
	"math"
	"math/rand"
	"testing"

	"smartdrill/internal/rule"
)

func TestSize(t *testing.T) {
	w := NewSize(5)
	if got := w.Weight(rule.MaskOf()); got != 0 {
		t.Fatalf("W(trivial) = %g", got)
	}
	if got := w.Weight(rule.MaskOf(0, 3)); got != 2 {
		t.Fatalf("W(2 cols) = %g", got)
	}
	if got := w.MaxWeight(3); got != 3 {
		t.Fatalf("MaxWeight(3) = %g", got)
	}
	if got := w.MaxWeight(10); got != 5 {
		t.Fatalf("MaxWeight capped = %g, want 5 (table has 5 columns)", got)
	}
}

func TestBits(t *testing.T) {
	// Columns with 2, 10, and 1 distinct values → 1, 4, 0 bits.
	w := NewBits([]int{2, 10, 1})
	if got := w.Weight(rule.MaskOf(0)); got != 1 {
		t.Fatalf("binary column = %g bits", got)
	}
	if got := w.Weight(rule.MaskOf(1)); got != 4 {
		t.Fatalf("10-value column = %g bits, want ceil(log2 10)=4", got)
	}
	if got := w.Weight(rule.MaskOf(2)); got != 0 {
		t.Fatalf("single-value column = %g bits, want 0", got)
	}
	if got := w.Weight(rule.MaskOf(0, 1, 2)); got != 5 {
		t.Fatalf("combined = %g, want 5", got)
	}
	if got := w.MaxWeight(2); got != 5 {
		t.Fatalf("MaxWeight(2) = %g, want 4+1", got)
	}
}

func TestSizeMinusOne(t *testing.T) {
	var w SizeMinusOne
	if got := w.Weight(rule.MaskOf()); got != 0 {
		t.Fatalf("trivial = %g", got)
	}
	if got := w.Weight(rule.MaskOf(2)); got != 0 {
		t.Fatalf("single column = %g, want 0", got)
	}
	if got := w.Weight(rule.MaskOf(2, 5, 7)); got != 2 {
		t.Fatalf("three columns = %g, want 2", got)
	}
}

func TestLinear(t *testing.T) {
	w := NewLinear([]float64{2, 0, 3}, 1, "test")
	if got := w.Weight(rule.MaskOf(0, 2)); got != 5 {
		t.Fatalf("linear = %g, want 5", got)
	}
	if got := w.Weight(rule.MaskOf(1)); got != 0 {
		t.Fatalf("zero-weight column = %g", got)
	}
	sq := NewLinear([]float64{1, 1, 1}, 2, "")
	if got := sq.Weight(rule.MaskOf(0, 1, 2)); got != 9 {
		t.Fatalf("squared = %g, want 9", got)
	}
	if sq.Name() != "Linear" {
		t.Fatalf("default label = %q", sq.Name())
	}
	if got := w.MaxWeight(1); got != 3 {
		t.Fatalf("MaxWeight(1) = %g, want 3", got)
	}
	if got := w.MaxWeight(5); got != 5 {
		t.Fatalf("MaxWeight(5) = %g, want 2+3 (zero column never helps)", got)
	}
}

func TestColumnDrill(t *testing.T) {
	w := ColumnDrill{Column: 2}
	if got := w.Weight(rule.MaskOf(0, 1)); got != 0 {
		t.Fatalf("without column = %g", got)
	}
	if got := w.Weight(rule.MaskOf(2)); got != 1 {
		t.Fatalf("with column = %g", got)
	}
}

func TestStarConstraint(t *testing.T) {
	inner := NewSize(4)
	w := StarConstraint{Inner: inner, Column: 1}
	if got := w.Weight(rule.MaskOf(0, 2)); got != 0 {
		t.Fatalf("missing required column = %g, want 0", got)
	}
	if got := w.Weight(rule.MaskOf(0, 1)); got != 2 {
		t.Fatalf("with required column = %g, want 2", got)
	}
}

func TestScaled(t *testing.T) {
	w := Scaled{Inner: NewSize(3), Factor: 2.5}
	if got := w.Weight(rule.MaskOf(0, 1)); got != 5 {
		t.Fatalf("scaled = %g, want 5", got)
	}
}

func TestAllBuiltinsMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	weighters := []Weighter{
		NewSize(10),
		NewBits([]int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}),
		SizeMinusOne{},
		NewLinear([]float64{1, 0, 2, 3, 0.5, 1, 1, 1, 1, 1}, 1, ""),
		NewLinear([]float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, 2, ""),
		ColumnDrill{Column: 4},
		StarConstraint{Inner: NewSize(10), Column: 2},
		Scaled{Inner: NewBits([]int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11}), Factor: 3},
	}
	for _, w := range weighters {
		if err := CheckMonotone(w, 10, 300, rng); err != nil {
			t.Errorf("builtin %s: %v", w.Name(), err)
		}
	}
}

// antiMonotone is a deliberately broken weighter for negative testing.
type antiMonotone struct{}

func (antiMonotone) Weight(m rule.Mask) float64 { return float64(5 - m.Count()) }
func (antiMonotone) MaxWeight(int) float64      { return 5 }
func (antiMonotone) Name() string               { return "anti" }

type negative struct{}

func (negative) Weight(m rule.Mask) float64 { return -1 }
func (negative) MaxWeight(int) float64      { return 0 }
func (negative) Name() string               { return "negative" }

func TestCheckMonotoneDetectsViolations(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	if err := CheckMonotone(antiMonotone{}, 6, 500, rng); err == nil {
		t.Error("anti-monotone weighter must be rejected")
	}
	if err := CheckMonotone(negative{}, 6, 500, rng); err == nil {
		t.Error("negative weighter must be rejected")
	}
	if err := CheckMonotone(NewSize(200), 200, 10, rng); err == nil {
		t.Error("column count beyond MaxColumns must be rejected")
	}
}

func TestWeightRule(t *testing.T) {
	w := NewSize(3)
	r := rule.Rule{1, rule.Star, 2}
	if got := WeightRule(w, r); got != 2 {
		t.Fatalf("WeightRule = %g", got)
	}
}

func TestBitsForProvider(t *testing.T) {
	w := BitsFor(fakeCardinality{counts: []int{4, 2}})
	if got := w.Weight(rule.MaskOf(0, 1)); got != 3 {
		t.Fatalf("BitsFor = %g, want 2+1", got)
	}
}

type fakeCardinality struct{ counts []int }

func (f fakeCardinality) NumCols() int            { return len(f.counts) }
func (f fakeCardinality) DistinctCount(c int) int { return f.counts[c] }

func TestLinearPowerHalf(t *testing.T) {
	w := NewLinear([]float64{4, 4}, 0.5, "sqrt")
	// Power ≤ 0 defaults to 1, but 0.5 is legal: sqrt(8).
	if got := w.Weight(rule.MaskOf(0, 1)); math.Abs(got-math.Sqrt(8)) > 1e-12 {
		t.Fatalf("sqrt weighting = %g", got)
	}
}

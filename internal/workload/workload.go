// Package workload simulates analyst drill-down sessions to evaluate the
// dynamic sampling machinery of Section 4 under realistic interaction
// patterns — the setting the SampleHandler is designed for: a sequence of
// drill-downs whose next target is drawn from a probability distribution
// over the displayed tree.
//
// A simulated analyst repeatedly: expands a displayed rule (biased toward
// the top-ranked rules, as real analysts are), occasionally star-expands a
// column or rolls up, and stops after a fixed number of interactions. The
// simulator reports how each drill was served (direct / Find / Combine /
// Create), the scan bill, and latency — the metrics that decide whether
// the paper's design meets its "interactive response" goal.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"smartdrill/internal/drill"
	"smartdrill/internal/rule"
	"smartdrill/internal/table"
)

// Config parameterizes a simulated session.
type Config struct {
	// Steps is the number of drill interactions to simulate.
	Steps int
	// TopBias is the probability of drilling one of the top-2 displayed
	// rules of a random expanded node (vs a uniform displayed rule);
	// 0 means 0.7.
	TopBias float64
	// StarProb is the probability an interaction is a star expansion
	// instead of a rule expansion; 0 means 0.2.
	StarProb float64
	// CollapseProb is the probability of rolling up an expanded node
	// instead of drilling; 0 means 0.1.
	CollapseProb float64
	// Seed drives the simulated analyst (not the session's sampler).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 20
	}
	if c.TopBias == 0 {
		c.TopBias = 0.7
	}
	if c.StarProb == 0 {
		c.StarProb = 0.2
	}
	if c.CollapseProb == 0 {
		c.CollapseProb = 0.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Report aggregates one simulated session.
type Report struct {
	Steps      int
	ByMethod   map[string]int // "direct" / "Find" / "Combine" / "Create" / "cache"
	FullScans  int64
	TotalTime  time.Duration
	MaxLatency time.Duration
}

// HitRate returns the fraction of sampled drill-downs served without a
// table scan (Find + Combine over all sampled accesses).
func (r Report) HitRate() float64 {
	served := r.ByMethod["Find"] + r.ByMethod["Combine"]
	total := served + r.ByMethod["Create"]
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// String summarizes the report in one line.
func (r Report) String() string {
	return fmt.Sprintf("steps=%d direct=%d find=%d combine=%d create=%d cache=%d scans=%d hit=%.0f%% max=%s",
		r.Steps, r.ByMethod["direct"], r.ByMethod["Find"], r.ByMethod["Combine"],
		r.ByMethod["Create"], r.ByMethod["cache"], r.FullScans, 100*r.HitRate(), r.MaxLatency.Round(time.Millisecond))
}

// Run simulates an analyst on the session. The session should be freshly
// created; the simulator performs the first expansion itself.
func Run(s *drill.Session, t *table.Table, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	rep := Report{ByMethod: map[string]int{}}

	do := func(fn func() error) error {
		start := time.Now()
		if err := fn(); err != nil {
			return err
		}
		lat := time.Since(start)
		rep.TotalTime += lat
		if lat > rep.MaxLatency {
			rep.MaxLatency = lat
		}
		rep.ByMethod[s.LastMethod]++
		rep.Steps++
		return nil
	}

	if err := do(func() error { return s.Expand(s.Root()) }); err != nil {
		return rep, err
	}

	for step := 1; step < cfg.Steps; step++ {
		expanded, unexpanded := partition(s.Root())
		if rng.Float64() < cfg.CollapseProb && len(expanded) > 1 {
			// Roll up a random expanded non-root node; free interaction.
			n := expanded[rng.Intn(len(expanded)-1)+1]
			s.Collapse(n)
			continue
		}
		target := pickTarget(rng, cfg, unexpanded)
		if target == nil {
			// Everything displayed is expanded or fully instantiated:
			// restart from the root like an analyst starting over.
			s.Collapse(s.Root())
			if err := do(func() error { return s.Expand(s.Root()) }); err != nil {
				return rep, err
			}
			continue
		}
		if freeCol := firstStar(target.Rule); freeCol >= 0 && rng.Float64() < cfg.StarProb {
			if err := do(func() error { return s.ExpandStar(target, freeCol) }); err != nil {
				return rep, err
			}
			continue
		}
		if err := do(func() error { return s.Expand(target) }); err != nil {
			return rep, err
		}
	}
	if st := s.Store(); st != nil {
		rep.FullScans = st.Stats().FullScans
	}
	return rep, nil
}

// partition splits displayed nodes into expanded ones and drillable
// (unexpanded, with at least one star) ones, in depth-first order.
func partition(root *drill.Node) (expanded, drillable []*drill.Node) {
	var walk func(n *drill.Node)
	walk = func(n *drill.Node) {
		if n.Expanded() {
			expanded = append(expanded, n)
			for _, c := range n.Children {
				walk(c)
			}
			return
		}
		if firstStar(n.Rule) >= 0 {
			drillable = append(drillable, n)
		}
	}
	walk(root)
	return expanded, drillable
}

// pickTarget draws the next drill target: with probability TopBias one of
// the first two drillable nodes (display order ≈ rule quality), otherwise
// uniform.
func pickTarget(rng *rand.Rand, cfg Config, drillable []*drill.Node) *drill.Node {
	if len(drillable) == 0 {
		return nil
	}
	if rng.Float64() < cfg.TopBias {
		k := 2
		if len(drillable) < k {
			k = len(drillable)
		}
		return drillable[rng.Intn(k)]
	}
	return drillable[rng.Intn(len(drillable))]
}

func firstStar(r rule.Rule) int {
	for c, v := range r {
		if v == rule.Star {
			return c
		}
	}
	return -1
}

package workload

import (
	"testing"

	"smartdrill/internal/datagen"
	"smartdrill/internal/drill"
	"smartdrill/internal/sampling"
)

func TestRunDirectSession(t *testing.T) {
	tab := datagen.StoreSales(42)
	s, err := drill.NewSession(tab, drill.Config{K: 3, MaxWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(s, tab, Config{Steps: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Every expansion of an exact session is either a direct search or —
	// when the analyst re-expands a node after a roll-up — a hit in the
	// session's answer cache.
	if rep.Steps == 0 || rep.ByMethod["direct"]+rep.ByMethod["cache"] != rep.Steps {
		t.Fatalf("direct session report: %s", rep)
	}
	if rep.MaxLatency <= 0 {
		t.Fatal("latency not recorded")
	}
}

func TestRunSampledSessionPrefetchImprovesHitRate(t *testing.T) {
	tab := datagen.CensusProjected(40000, 5, 13)
	base := drill.Config{
		K: 3, MaxWeight: 4,
		SampleMemory:  30000,
		MinSampleSize: 2000,
		Seed:          2,
	}

	// Without prefetch.
	s1, err := drill.NewSession(tab, base)
	if err != nil {
		t.Fatal(err)
	}
	noPrefetch, err := Run(s1, tab, Config{Steps: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	// With prefetch and the learned probability model.
	cfg := base
	cfg.Prefetch = true
	cfg.ProbModel = sampling.NewRankModel()
	s2, err := drill.NewSession(tab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withPrefetch, err := Run(s2, tab, Config{Steps: 15, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}

	if withPrefetch.HitRate() < noPrefetch.HitRate() {
		t.Fatalf("prefetch lowered hit rate: %.2f vs %.2f\nno-prefetch: %s\nprefetch:    %s",
			withPrefetch.HitRate(), noPrefetch.HitRate(), noPrefetch, withPrefetch)
	}
	// The prefetched session must serve a solid majority from memory.
	if withPrefetch.HitRate() < 0.5 {
		t.Fatalf("prefetched hit rate %.2f < 0.5: %s", withPrefetch.HitRate(), withPrefetch)
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Steps: 3, ByMethod: map[string]int{"Find": 2, "Create": 1}}
	if rep.HitRate() != 2.0/3 {
		t.Fatalf("hit rate = %g", rep.HitRate())
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Steps != 20 || c.TopBias != 0.7 || c.StarProb != 0.2 || c.CollapseProb != 0.1 || c.Seed != 1 {
		t.Fatalf("defaults = %+v", c)
	}
}

func TestDeterministicGivenSeeds(t *testing.T) {
	tab := datagen.StoreSales(42)
	runOnce := func() [6]int {
		s, err := drill.NewSession(tab, drill.Config{K: 3, MaxWeight: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(s, tab, Config{Steps: 12, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return [6]int{rep.Steps, rep.ByMethod["direct"], rep.ByMethod["Find"],
			rep.ByMethod["Combine"], rep.ByMethod["Create"], rep.ByMethod["cache"]}
	}
	if runOnce() != runOnce() {
		t.Fatal("simulation not deterministic (wall time excluded)")
	}
}

package smartdrill

// Million-row acceptance check for the approximate interactive pipeline
// (ISSUE 4): on a ≥1M-row synthetic Census table a cold drill-down must
// answer with provisional rules well inside the interactive budget while
// exact BRS takes seconds, and refinement must replace every provisional
// count with the exact one on the same session. Generating and searching
// a million rows exactly takes ~30s, so the test is gated:
//
//	make large            # or SMARTDRILL_LARGE=1 go test -run TestMillionRow .

import (
	"os"
	"testing"
	"time"

	"smartdrill/internal/benchcfg"
	"smartdrill/internal/brs"
	"smartdrill/internal/weight"
)

func TestMillionRowInteractiveLatency(t *testing.T) {
	if os.Getenv("SMARTDRILL_LARGE") == "" {
		t.Skip("set SMARTDRILL_LARGE=1 (or run `make large`) for the million-row acceptance check")
	}
	tab := benchcfg.CensusLarge()
	tab.Index().Warm()

	// Exact BRS at this scale blows the interactive budget.
	start := time.Now()
	if _, _, err := brs.Run(tab.All(), weight.NewSize(tab.NumCols()), brs.Options{K: 4, MaxWeight: 4}); err != nil {
		t.Fatal(err)
	}
	exactDur := time.Since(start)
	if exactDur < 2*time.Second {
		t.Fatalf("exact BRS took %s; the sampled pipeline's premise (exact > 2s at 1M rows) no longer holds — move this check to a bigger table", exactDur)
	}

	// A cold sampled session answers provisionally within the budget.
	e, err := New(tab,
		WithK(4), WithMaxWeight(4),
		WithSampling(50000, 5000),
		WithSampleThreshold(100000),
		WithSeed(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	provDur := time.Since(start)
	if provDur > 250*time.Millisecond {
		t.Errorf("cold sampled drill-down took %s, want < 250ms (exact path: %s)", provDur, exactDur)
	}
	if len(e.Root().Children) == 0 {
		t.Fatal("sampled drill-down returned no rules")
	}
	for _, n := range e.Root().Children {
		if n.Exact {
			t.Fatalf("rule %v claims exactness straight off the sample", n.Rule)
		}
		if lo, hi := e.ConfidenceInterval(n); !(lo <= n.Count && n.Count <= hi) || lo == hi {
			t.Fatalf("rule %v: estimate %g outside its own CI [%g, %g]", n.Rule, n.Count, lo, hi)
		}
	}

	// Refinement replaces every provisional count with the authoritative
	// one without restarting the session.
	for _, n := range e.ProvisionalNodes() {
		if !e.RefineNode(n) {
			t.Fatalf("provisional node %v did not refine", n.Rule)
		}
	}
	for _, n := range e.Root().Children {
		if !n.Exact {
			t.Fatalf("rule %v still provisional after refinement", n.Rule)
		}
		if truth := float64(tab.Count(n.Rule)); n.Count != truth {
			t.Fatalf("rule %v: refined count %g != exact count %g", n.Rule, n.Count, truth)
		}
	}
	t.Logf("1M rows: provisional in %s, exact BRS %s (%.0fx), %d rules refined",
		provDur, exactDur, exactDur.Seconds()/provDur.Seconds(), len(e.Root().Children))
}

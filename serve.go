package smartdrill

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Helpers for building services on top of Engine (used by internal/server,
// the client SDK's test server, and cmd/smartdrilld): stable node
// addressing by ID or child-index path, and construction of weighters from
// wire-format names.

// NodeByPath resolves a child-index path from the root: the empty path is
// the root itself, [2] is the root's third child, [2 0] that child's first
// child, and so on. Paths are positional — a mutation of an ancestor's
// child list re-targets them — so wire protocols should prefer the stable
// IDs of NodeByID.
//
// Deprecated: retained for the legacy path-addressed wire forms; new
// callers should use NodeByID.
func (e *Engine) NodeByPath(path []int) (*Node, error) {
	n := e.Root()
	for depth, idx := range path {
		if idx < 0 || idx >= len(n.Children) {
			return nil, fmt.Errorf("smartdrill: path %v invalid at depth %d: node has %d children", path, depth, len(n.Children))
		}
		n = n.Children[idx]
	}
	return n, nil
}

// ErrUnknownNode reports a well-formed node ID that no displayed node
// carries — it was never assigned, or a collapse/re-expansion removed its
// node from the tree. Serving layers map it to their not-found error.
var ErrUnknownNode = errors.New("smartdrill: unknown node")

// NodeID returns n's stable wire identifier ("n1" is the root). The ID is
// assigned when an expansion puts the node on display and never reused
// within the session; after the node leaves the tree, resolving the ID
// yields ErrUnknownNode.
func (e *Engine) NodeID(n *Node) string {
	return "n" + strconv.FormatUint(n.ID(), 10)
}

// NodeByID resolves a stable node ID (as produced by NodeID) in O(1) via
// the session's id index — no tree walk. Malformed IDs yield a formatting
// error; well-formed IDs with no displayed node yield ErrUnknownNode.
func (e *Engine) NodeByID(id string) (*Node, error) {
	raw, ok := strings.CutPrefix(id, "n")
	if !ok || raw == "" {
		return nil, fmt.Errorf("smartdrill: malformed node ID %q (want \"n<number>\")", id)
	}
	num, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("smartdrill: malformed node ID %q (want \"n<number>\")", id)
	}
	n := e.s.NodeByID(num)
	if n == nil {
		return nil, fmt.Errorf("%w: %q is not (or no longer) displayed", ErrUnknownNode, id)
	}
	return n, nil
}

// PathOf returns n's child-index address from the root (the legacy wire
// address), reporting false when n is no longer part of the displayed
// tree.
func (e *Engine) PathOf(n *Node) ([]int, bool) { return e.s.PathOf(n) }

// WeighterNames lists the weighting functions WeighterByName accepts.
func WeighterNames() []string { return []string{"size", "bits", "size-1"} }

// WeighterByName constructs one of the named weighting functions for t:
// "size" (paper default), "bits", or "size-1". The empty name means "size".
func WeighterByName(t *Table, name string) (Weighter, error) {
	switch name {
	case "", "size":
		return SizeWeight(t), nil
	case "bits":
		return BitsWeight(t), nil
	case "size-1":
		return SizeMinusOneWeight(), nil
	default:
		return nil, fmt.Errorf("smartdrill: unknown weighter %q (want %s)", name, strings.Join(WeighterNames(), ", "))
	}
}

// AggregateName reports the display name of the session's aggregate column
// ("Count", or "Sum(column)" under WithSum).
func (e *Engine) AggregateName() string { return e.agg().Name() }

// K reports the session's rules-per-expansion setting.
func (e *Engine) K() int { return e.s.K() }

package smartdrill

import (
	"fmt"
	"strings"
)

// Helpers for building services on top of Engine (used by internal/server
// and cmd/smartdrilld): stable node addressing by child-index path and
// construction of weighters from wire-format names.

// NodeByPath resolves a child-index path from the root: the empty path is
// the root itself, [2] is the root's third child, [2 0] that child's first
// child, and so on. Paths are stable between mutations of the addressed
// subtree, making them suitable session-wire addresses for nodes.
func (e *Engine) NodeByPath(path []int) (*Node, error) {
	n := e.Root()
	for depth, idx := range path {
		if idx < 0 || idx >= len(n.Children) {
			return nil, fmt.Errorf("smartdrill: path %v invalid at depth %d: node has %d children", path, depth, len(n.Children))
		}
		n = n.Children[idx]
	}
	return n, nil
}

// WeighterNames lists the weighting functions WeighterByName accepts.
func WeighterNames() []string { return []string{"size", "bits", "size-1"} }

// WeighterByName constructs one of the named weighting functions for t:
// "size" (paper default), "bits", or "size-1". The empty name means "size".
func WeighterByName(t *Table, name string) (Weighter, error) {
	switch name {
	case "", "size":
		return SizeWeight(t), nil
	case "bits":
		return BitsWeight(t), nil
	case "size-1":
		return SizeMinusOneWeight(), nil
	default:
		return nil, fmt.Errorf("smartdrill: unknown weighter %q (want %s)", name, strings.Join(WeighterNames(), ", "))
	}
}

// AggregateName reports the display name of the session's aggregate column
// ("Count", or "Sum(column)" under WithSum).
func (e *Engine) AggregateName() string { return e.agg().Name() }

// K reports the session's rules-per-expansion setting.
func (e *Engine) K() int { return e.s.K() }

// Package smartdrill is a Go implementation of the smart drill-down
// operator from "Interactive Data Exploration with Smart Drill-Down"
// (Joglekar, Garcia-Molina, Parameswaran — ICDE 2016).
//
// Smart drill-down explores a relational table through *rules*: patterns
// like (Walmart, ?, ?) that cover every tuple matching their non-wildcard
// values. Drilling down on a rule expands it into the k super-rules that
// jointly maximize Σ W(r)·MCount(r) — coverage of many tuples, weighted by
// how specific each rule is, with marginal counting driving diversity.
//
// Basic use:
//
//	t, _ := smartdrill.LoadCSV("sales.csv", nil)
//	e, _ := smartdrill.New(t, smartdrill.WithK(3))
//	_ = e.DrillDown(e.Root())            // expand the whole-table rule
//	fmt.Println(e.Render())              // paper-style rule table
//	_ = e.DrillDown(e.Root().Children[2]) // drill into one result
//
// Large tables can be explored from dynamically maintained in-memory
// samples (WithSampling), trading exact counts for interactive latency as
// in Section 4 of the paper.
package smartdrill

import (
	"context"
	"io"
	"math/rand"
	"time"

	"smartdrill/internal/brs"
	"smartdrill/internal/drill"
	"smartdrill/internal/rule"
	"smartdrill/internal/score"
	"smartdrill/internal/search"
	"smartdrill/internal/table"
	"smartdrill/internal/weight"
)

// Table is a dictionary-encoded relational table; build one with LoadCSV,
// ReadCSV, or NewTableBuilder.
type Table = table.Table

// TableBuilder assembles a Table row by row.
type TableBuilder = table.Builder

// Rule is a drill-down pattern: one value or wildcard per column.
type Rule = rule.Rule

// Node is one displayed rule in an Engine's drill-down tree.
type Node = drill.Node

// Weighter scores rules by their instantiated columns; see SizeWeight,
// BitsWeight, LinearWeight.
type Weighter = weight.Weighter

// Star is the wildcard value within a Rule.
const Star = rule.Star

// NewTableBuilder starts a table with the given categorical columns and
// optional measure (numeric) columns.
func NewTableBuilder(columns, measures []string) (*TableBuilder, error) {
	return table.NewBuilder(columns, measures)
}

// LoadCSV reads a table from a CSV file; columns named in measures are
// parsed as float64 measure columns, all others are categorical.
func LoadCSV(path string, measures []string) (*Table, error) {
	return table.ReadCSVFile(path, measures)
}

// ReadCSV reads a table from a CSV stream.
func ReadCSV(r io.Reader, measures []string) (*Table, error) {
	return table.ReadCSV(r, measures)
}

// AutoOptions tunes numeric-column detection in LoadCSVAuto/ReadCSVAuto.
type AutoOptions = table.AutoOptions

// LoadCSVAuto reads a CSV detecting numeric columns automatically: any
// all-numeric column with more distinct values than AutoOptions.MaxDistinct
// is bucketized into a categorical "<name>_bucket" column and kept as a
// measure for Sum aggregation (Section 6.2 of the paper). It returns the
// table and the names of the detected numeric columns.
func LoadCSVAuto(path string, opts AutoOptions) (*Table, []string, error) {
	return table.ReadCSVAutoFile(path, opts)
}

// ReadCSVAuto is LoadCSVAuto over a stream.
func ReadCSVAuto(r io.Reader, opts AutoOptions) (*Table, []string, error) {
	return table.ReadCSVAuto(r, opts)
}

// SizeWeight returns the paper's default Size weighting: W(r) = number of
// instantiated columns.
func SizeWeight(t *Table) Weighter { return weight.NewSize(t.NumCols()) }

// BitsWeight weighs each instantiated column by ⌈log2(distinct values)⌉,
// favoring columns that convey more information.
func BitsWeight(t *Table) Weighter { return weight.BitsFor(t) }

// SizeMinusOneWeight is W(r) = max(0, size−1): only multi-column rules
// score, reproducing Figure 7 of the paper.
func SizeMinusOneWeight() Weighter { return weight.SizeMinusOne{} }

// LinearWeight is the parametric family (Σ_c w_c)^power over instantiated
// columns; Size and Bits are special cases. Use it to favor or ignore
// specific columns.
func LinearWeight(perColumn []float64, power float64, label string) Weighter {
	return weight.NewLinear(perColumn, power, label)
}

// WithPreferences wraps a weighter with per-column interest adjustments
// (Section 6.1): favored columns earn bonus weight when instantiated,
// ignored columns contribute nothing. Unknown column names yield an error.
func WithPreferences(t *Table, inner Weighter, favor, ignore []string, bonus float64) (Weighter, error) {
	toMask := func(names []string) (rule.Mask, error) {
		var m rule.Mask
		for _, name := range names {
			c, err := t.ColumnIndex(name)
			if err != nil {
				return m, err
			}
			m.Set(c)
		}
		return m, nil
	}
	fav, err := toMask(favor)
	if err != nil {
		return nil, err
	}
	ign, err := toMask(ignore)
	if err != nil {
		return nil, err
	}
	return weight.Preference{Inner: inner, Favored: fav, Ignored: ign, Bonus: bonus}, nil
}

// Engine is an interactive smart drill-down session over one table.
type Engine struct {
	s   *drill.Session
	tab *Table
	cfg drill.Config
}

// Option configures an Engine.
type Option func(*drill.Config)

// WithK sets the number of rules returned per drill-down (default 3).
func WithK(k int) Option { return func(c *drill.Config) { c.K = k } }

// WithWeighter sets the rule-weighting function (default Size).
func WithWeighter(w Weighter) Option { return func(c *drill.Config) { c.Weighter = w } }

// WithMaxWeight sets BRS's mw pruning parameter. Larger values guarantee
// optimality for heavier rules at higher cost; 0 (default) estimates it
// from a sample per Section 6.1.
func WithMaxWeight(mw float64) Option { return func(c *drill.Config) { c.MaxWeight = mw } }

// WithSampling enables the dynamic sample handler: memory tuples of budget
// across samples and minSS minimum effective sample size per drill-down.
func WithSampling(memory, minSS int) Option {
	return func(c *drill.Config) {
		c.SampleMemory = memory
		c.MinSampleSize = minSS
	}
}

// WithSampleThreshold routes expansions by (sub)view size when sampling is
// enabled: views that can exceed rows tuples are searched on a uniform
// sample and display provisional, confidence-bounded counts; smaller views
// are searched exactly. 0 (the default) samples every expansion.
func WithSampleThreshold(rows int) Option {
	return func(c *drill.Config) { c.SampleThreshold = rows }
}

// WithSamplingDisabled forces every expansion down the exact path even when
// sampling options are set — the ablation switch: results are bit-identical
// to a session configured without sampling.
func WithSamplingDisabled() Option {
	return func(c *drill.Config) { c.DisableSampling = true }
}

// WithPrefetch enables background-style sample reallocation after each
// expansion, so the next drill-down is likely served from memory.
func WithPrefetch() Option { return func(c *drill.Config) { c.Prefetch = true } }

// WithSum displays and optimizes the Sum of the named measure column
// instead of tuple counts (Section 6.3).
func WithSum(t *Table, measure string) (Option, error) {
	m, err := t.MeasureIndex(measure)
	if err != nil {
		return nil, err
	}
	return func(c *drill.Config) {
		c.Agg = score.SumAgg{Measure: m, Label: measure}
	}, nil
}

// WithSeed fixes the sampling RNG for reproducible sessions.
func WithSeed(seed int64) Option { return func(c *drill.Config) { c.Seed = seed } }

// WithWorkers parallelizes drill-down computation across the given number
// of goroutines. Results are unchanged (bit-identical under Count). 0 (the
// default) saturates the hardware under Count; use WithParallelDisabled for
// a guaranteed-serial session.
func WithWorkers(n int) Option { return func(c *drill.Config) { c.Workers = n } }

// WithParallelDisabled forces every search pass serial regardless of
// WithWorkers and the hardware core count — the ablation switch mirroring
// WithSamplingDisabled: results are bit-identical under Count, so this
// trades speed for nothing but determinism guarantees under Sum.
func WithParallelDisabled() Option { return func(c *drill.Config) { c.DisableParallel = true } }

// WithBitmapDisabled turns off the packed-bitset counting kernel, leaving
// row scans and galloping posting intersections (ablation; results are
// bit-identical on every aggregate).
func WithBitmapDisabled() Option { return func(c *drill.Config) { c.DisableBitmap = true } }

// SearchService is the dataset-scoped seam every BRS invocation goes
// through: one answer cache of completed expansions, singleflight
// collapsing of concurrent identical searches, and cache counters.
// Engines on the same table that share a service share its cache; an
// engine built without one gets a private service, so repeated
// expansions within a single session are still served from cache.
type SearchService = search.Service

// SearchServiceConfig tunes a SearchService (cache bound, off switch).
type SearchServiceConfig = search.Config

// SearchServiceCounters is a snapshot of a service's cache activity.
type SearchServiceCounters = search.Counters

// NewSearchService builds a search service to share across engines on
// one dataset (see WithSearchService).
func NewSearchService(cfg SearchServiceConfig) *SearchService { return search.NewService(cfg) }

// WithSearchService routes the engine's searches through a shared
// dataset-scoped service: sessions sharing one service share its answer
// cache, and concurrent identical expansions collapse to one BRS run.
// The service must belong to the engine's table — cache keys carry rule
// identity, not table identity.
func WithSearchService(svc *SearchService) Option {
	return func(c *drill.Config) { c.Search = svc }
}

// WithCacheDisabled bypasses the search service's answer cache and
// singleflight for this engine — the ablation switch mirroring
// WithSamplingDisabled: every expansion executes, and results are
// bit-identical to the cached path.
func WithCacheDisabled() Option { return func(c *drill.Config) { c.DisableCache = true } }

// New starts a drill-down session on t.
func New(t *Table, opts ...Option) (*Engine, error) {
	var cfg drill.Config
	for _, o := range opts {
		o(&cfg)
	}
	s, err := drill.NewSession(t, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{s: s, tab: t, cfg: cfg}, nil
}

// Root returns the trivial rule covering the whole table — the starting
// point of every session.
func (e *Engine) Root() *Node { return e.s.Root() }

// Table returns the session's table.
func (e *Engine) Table() *Table { return e.tab }

// DrillDown expands n into the best rule list of super-rules of n's rule.
// If n is already expanded it is collapsed and re-expanded.
//
//sdlint:mutator
func (e *Engine) DrillDown(n *Node) error { return e.s.Expand(n) }

// DrillDownCtx is DrillDown under a cancellation context: the BRS search
// checks ctx between counting passes and aborts with ctx's error, so an
// abandoned request stops paying for table passes almost immediately. A
// canceled expansion leaves n collapsed, records the partial search's
// statistics, and leaves the session fully usable.
//
//sdlint:mutator
func (e *Engine) DrillDownCtx(ctx context.Context, n *Node) error {
	return e.s.ExpandCtx(ctx, n)
}

// DrillDownStar expands n like DrillDown but requires every returned rule
// to instantiate the named column — the paper's "click on a ?" operation.
//
//sdlint:mutator
func (e *Engine) DrillDownStar(n *Node, column string) error {
	return e.DrillDownStarCtx(context.Background(), n, column)
}

// DrillDownStarCtx is DrillDownStar under a cancellation context (see
// DrillDownCtx).
//
//sdlint:mutator
func (e *Engine) DrillDownStarCtx(ctx context.Context, n *Node, column string) error {
	c, err := e.tab.ColumnIndex(column)
	if err != nil {
		return err
	}
	return e.s.ExpandStarCtx(ctx, n, c)
}

// Collapse removes n's children (roll-up).
//
//sdlint:mutator
func (e *Engine) Collapse(n *Node) { e.s.Collapse(n) }

// DrillDownStream expands n incrementally: each rule is appended to n's
// children and passed to onRule as soon as the greedy search finds it
// (Section 6.1's anytime operation). The search stops when onRule returns
// false, after maxRules rules (0 = unbounded), or when budget elapses
// (0 = unbounded). onRule may be nil.
//
//sdlint:mutator
func (e *Engine) DrillDownStream(n *Node, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	return e.s.ExpandStream(n, maxRules, budget, onRule)
}

// DrillDownStreamCtx is DrillDownStream under a cancellation context: the
// search additionally stops between counting passes when ctx fires,
// returning ctx's error. Rules streamed before the cancellation stay in
// the tree; the session remains fully usable.
//
//sdlint:mutator
func (e *Engine) DrillDownStreamCtx(ctx context.Context, n *Node, maxRules int, budget time.Duration, onRule func(*Node) bool) error {
	return e.s.ExpandStreamCtx(ctx, n, maxRules, budget, onRule)
}

// WithDegraded marks ctx for degraded-mode expansion — the serving
// layer's graceful-degradation ladder. A degraded drill on a sampled
// session is forced through the sampled/provisional pipeline regardless
// of the session's SampleThreshold (a cheap, confidence-bounded answer
// instead of full table passes), and post-expansion sample prefetch is
// skipped. Sessions without sampling run unchanged apart from the
// prefetch skip. Serving layers set this when under admission pressure.
func WithDegraded(ctx context.Context) context.Context {
	return drill.WithDegraded(ctx)
}

// IsDegraded reports whether ctx carries the WithDegraded mark.
func IsDegraded(ctx context.Context) bool { return drill.DegradedFrom(ctx) }

// RefineNode replaces a provisional (sample-estimated) node count with the
// exact aggregate, learned with one accounted pass over the table — the
// provisional→exact half of the approximate pipeline. It reports whether
// the node changed; exact nodes and nodes no longer in the displayed tree
// (orphaned by a collapse or re-expansion) are untouched.
//
//sdlint:mutator
func (e *Engine) RefineNode(n *Node) bool { return e.s.RefineNode(n) }

// ProvisionalNodes lists displayed nodes whose counts are still sample
// estimates, in display order — the refiner's work queue.
func (e *Engine) ProvisionalNodes() []*Node { return e.s.ProvisionalNodes() }

// ProvisionalNodesIn is ProvisionalNodes restricted to n's subtree.
func (e *Engine) ProvisionalNodesIn(n *Node) []*Node { return e.s.ProvisionalNodesIn(n) }

// ConfidenceInterval returns 95% bounds on a node's true count. For exact
// counts — and for estimates without interval support (Sum aggregates) —
// both bounds equal Count. The node's explicit HasCI flag decides which, so
// a provisional count whose genuine bound happens to be [0, 0] is reported
// as that interval rather than misread as exact.
func (e *Engine) ConfidenceInterval(n *Node) (lo, hi float64) {
	if n.Exact || !n.HasCI {
		return n.Count, n.Count
	}
	return n.CILow, n.CIHigh
}

// Render returns the current drill-down tree as an aligned text table in
// the style of the paper's figures.
func (e *Engine) Render() string { return e.s.Render() }

// RenderNode renders only the subtree under n.
func (e *Engine) RenderNode(n *Node) string { return e.s.RenderNode(n) }

// DescribeRule renders a node's rule as human-readable column=value pairs.
func (e *Engine) DescribeRule(n *Node) string {
	cells := e.tab.DecodeRule(n.Rule)
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += ", "
		}
		out += c
	}
	return "(" + out + ")"
}

// LastAccessMethod reports how the most recent drill-down obtained tuples:
// "direct", "Find", "Combine", or "Create".
func (e *Engine) LastAccessMethod() string { return e.s.LastMethod }

// SearchStats holds BRS search statistics (passes, candidates counted,
// pruned and reused, rows scanned, posting entries read).
type SearchStats = brs.Stats

// LastSearchStats returns the BRS statistics of the most recent
// drill-down.
func (e *Engine) LastSearchStats() SearchStats { return e.s.LastStats }

// TotalSearchStats returns BRS statistics accumulated across every
// drill-down of this engine's session — the cross-expansion view of how
// much search work the candidate caches and posting lists absorbed.
func (e *Engine) TotalSearchStats() SearchStats { return e.s.TotalStats }

// TraditionalGroup is one value group of a classic drill-down.
type TraditionalGroup struct {
	Value string
	Count float64
}

// TraditionalDrillDown performs the classic OLAP drill-down on one column
// under n: every distinct value with its count, ordered by count. Provided
// for comparison (Figure 4); smart drill-down generalizes it.
func (e *Engine) TraditionalDrillDown(n *Node, column string) ([]TraditionalGroup, error) {
	c, err := e.tab.ColumnIndex(column)
	if err != nil {
		return nil, err
	}
	groups, err := e.s.Traditional(n, c)
	if err != nil {
		return nil, err
	}
	out := make([]TraditionalGroup, len(groups))
	for i, g := range groups {
		out[i] = TraditionalGroup{Value: g.Value, Count: g.Count}
	}
	return out, nil
}

// SearchService returns the engine's search service — the shared one it
// was configured with, or its private one — for cache-counter inspection.
func (e *Engine) SearchService() *SearchService { return e.s.Search() }

func (e *Engine) agg() score.Aggregator { return e.s.Agg() }

// EncodeRule translates column-name → value pairs into a Rule over e's
// table (unnamed columns are wildcards).
func (e *Engine) EncodeRule(pattern map[string]string) (Rule, error) {
	return e.tab.EncodeRule(pattern)
}

// FindNode locates the displayed node with the given rule, or nil.
func (e *Engine) FindNode(r Rule) *Node {
	var find func(n *Node) *Node
	find = func(n *Node) *Node {
		if n.Rule.Equal(r) {
			return n
		}
		for _, c := range n.Children {
			if f := find(c); f != nil {
				return f
			}
		}
		return nil
	}
	return find(e.Root())
}

// Validate sanity-checks a custom weighter against the paper's
// requirements (non-negativity and monotonicity) on random masks.
func Validate(w Weighter, t *Table) error {
	return weight.CheckMonotone(w, t.NumCols(), 200, rand.New(rand.NewSource(1)))
}

// SaveState writes the current drill-down tree as JSON, so an exploration
// can be resumed later with LoadState against the same dataset.
func (e *Engine) SaveState(w io.Writer) error { return e.s.Save(w) }

// LoadState replaces the drill-down tree with a previously saved one. The
// engine's table must have the same columns and contain every value the
// snapshot references.
func (e *Engine) LoadState(r io.Reader) error { return e.s.Load(r) }

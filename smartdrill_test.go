package smartdrill

import (
	"errors"
	"strings"
	"testing"

	"smartdrill/internal/datagen"
)

func storeEngine(t *testing.T, opts ...Option) *Engine {
	t.Helper()
	e, err := New(datagen.StoreSales(42), append([]Option{WithK(3)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEndToEndQuickstart(t *testing.T) {
	e := storeEngine(t)
	if e.Root().Count != 6000 {
		t.Fatalf("root count = %g", e.Root().Count)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	if len(e.Root().Children) != 3 {
		t.Fatalf("children = %d", len(e.Root().Children))
	}
	out := e.Render()
	for _, want := range []string{"Walmart", "comforters", "bicycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if e.LastAccessMethod() != "direct" {
		t.Fatalf("access = %q", e.LastAccessMethod())
	}
}

func TestDrillDownStarByName(t *testing.T) {
	e := storeEngine(t)
	if err := e.DrillDownStar(e.Root(), "Region"); err != nil {
		t.Fatal(err)
	}
	for _, c := range e.Root().Children {
		cells := e.Table().DecodeRule(c.Rule)
		if cells[2] == "?" {
			t.Fatalf("star drill returned %v", cells)
		}
	}
	if err := e.DrillDownStar(e.Root(), "Nope"); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestFindNodeAndEncodeRule(t *testing.T) {
	e := storeEngine(t)
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	r, err := e.EncodeRule(map[string]string{"Store": "Walmart"})
	if err != nil {
		t.Fatal(err)
	}
	n := e.FindNode(r)
	if n == nil {
		t.Fatal("Walmart node not found")
	}
	if got := e.DescribeRule(n); got != "(Walmart, ?, ?)" {
		t.Fatalf("DescribeRule = %q", got)
	}
	if e.FindNode(r.With(1, 0).With(2, 0)) != nil {
		t.Fatal("absent rule should not be found")
	}
}

func TestCollapse(t *testing.T) {
	e := storeEngine(t)
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	e.Collapse(e.Root())
	if len(e.Root().Children) != 0 {
		t.Fatal("collapse failed")
	}
}

func TestWithSum(t *testing.T) {
	tab := datagen.StoreSales(42)
	opt, err := WithSum(tab, "Sales")
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tab, WithK(3), opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Render(), "Sum(Sales)") {
		t.Fatal("render must show Sum aggregate")
	}
	if _, err := WithSum(tab, "Nope"); err == nil {
		t.Fatal("unknown measure must fail")
	}
}

func TestWeighterOptions(t *testing.T) {
	tab := datagen.StoreSales(42)
	for _, w := range []Weighter{SizeWeight(tab), BitsWeight(tab), SizeMinusOneWeight(),
		LinearWeight([]float64{1, 2, 3}, 1, "custom")} {
		if err := Validate(w, tab); err != nil {
			t.Fatalf("weighter %v rejected: %v", w, err)
		}
		e, err := New(tab, WithK(2), WithWeighter(w), WithMaxWeight(6))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.DrillDown(e.Root()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSamplingOptions(t *testing.T) {
	tab := datagen.CensusProjected(30000, 5, 4)
	e, err := New(tab, WithK(3), WithSampling(10000, 2000), WithPrefetch(), WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	if e.LastAccessMethod() != "Create" {
		t.Fatalf("first access = %q", e.LastAccessMethod())
	}
	if len(e.Root().Children) == 0 {
		t.Fatal("no rules returned")
	}
}

func TestTraditionalDrillDownAPI(t *testing.T) {
	e := storeEngine(t)
	groups, err := e.TraditionalDrillDown(e.Root(), "Store")
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 || groups[0].Value != "Walmart" || groups[0].Count != 1000 {
		t.Fatalf("top group = %+v", groups[0])
	}
	for i := 1; i < len(groups); i++ {
		if groups[i].Count > groups[i-1].Count {
			t.Fatal("groups not ordered")
		}
	}
	if _, err := e.TraditionalDrillDown(e.Root(), "Nope"); err == nil {
		t.Fatal("unknown column must fail")
	}
}

func TestReadCSVPublic(t *testing.T) {
	csv := "Store,Sales\nWalmart,5\nTarget,7\n"
	tab, err := ReadCSV(strings.NewReader(csv), []string{"Sales"})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tab, WithK(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	if len(e.Root().Children) != 2 {
		t.Fatalf("children = %d", len(e.Root().Children))
	}
}

func TestNewTableBuilderPublic(t *testing.T) {
	b, err := NewTableBuilder([]string{"A"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow([]string{"x"}, nil); err != nil {
		t.Fatal(err)
	}
	tab := b.Build()
	if tab.NumRows() != 1 {
		t.Fatal("builder row lost")
	}
}

func TestRenderNodeSubtree(t *testing.T) {
	e := storeEngine(t)
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	child := e.Root().Children[2]
	if err := e.DrillDown(child); err != nil {
		t.Fatal(err)
	}
	sub := e.RenderNode(child)
	if strings.Contains(sub, "bicycles") && !strings.Contains(e.DescribeRule(child), "bicycles") {
		t.Fatalf("RenderNode leaked sibling rows:\n%s", sub)
	}
}

// TestConfidenceIntervalSentinel pins the HasCI contract: a provisional
// node whose genuine 95% bound is [0, 0] reports that interval instead of
// being misread as exact, while estimates without interval support (and
// exact nodes) collapse to the displayed value.
func TestConfidenceIntervalSentinel(t *testing.T) {
	e := storeEngine(t)
	genuine := &Node{Count: 0, Exact: false, HasCI: true, CILow: 0, CIHigh: 0}
	if lo, hi := e.ConfidenceInterval(genuine); lo != 0 || hi != 0 {
		t.Fatalf("genuine [0,0] interval: got [%g,%g]", lo, hi)
	}
	// The same bounds WITHOUT the flag (a Sum estimate, say) must fall
	// back to the displayed value, not claim a zero interval.
	sumEst := &Node{Count: 123, Exact: false, HasCI: false, CILow: 0, CIHigh: 0}
	if lo, hi := e.ConfidenceInterval(sumEst); lo != 123 || hi != 123 {
		t.Fatalf("no-interval estimate: got [%g,%g], want [123,123]", lo, hi)
	}
	exact := &Node{Count: 7, Exact: true, HasCI: true, CILow: 1, CIHigh: 9}
	if lo, hi := e.ConfidenceInterval(exact); lo != 7 || hi != 7 {
		t.Fatalf("exact node: got [%g,%g], want [7,7]", lo, hi)
	}
}

// TestNodeIDSurface covers the engine's stable-ID wire helpers.
func TestNodeIDSurface(t *testing.T) {
	e := storeEngine(t)
	if got := e.NodeID(e.Root()); got != "n1" {
		t.Fatalf("root NodeID = %q, want n1", got)
	}
	if err := e.DrillDown(e.Root()); err != nil {
		t.Fatal(err)
	}
	child := e.Root().Children[0]
	id := e.NodeID(child)
	back, err := e.NodeByID(id)
	if err != nil || back != child {
		t.Fatalf("NodeByID(%q) = %v, %v", id, back, err)
	}
	if path, ok := e.PathOf(child); !ok || len(path) != 1 || path[0] != 0 {
		t.Fatalf("PathOf(child) = %v, %v", path, ok)
	}
	if _, err := e.NodeByID("banana"); err == nil {
		t.Fatal("malformed ID accepted")
	}
	e.Collapse(e.Root())
	if _, err := e.NodeByID(id); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("collapsed node ID: err %v, want ErrUnknownNode", err)
	}
}

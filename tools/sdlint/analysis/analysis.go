// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework, carrying exactly the surface
// sdlint's analyzers need: an Analyzer with a Run function over a Pass,
// Reportf diagnostics, and line-addressed suppression directives.
//
// It exists because sdlint must build in a hermetic environment where the
// main module stays dependency-free and x/tools may be unavailable. The
// API deliberately mirrors x/tools (same field and method names), so each
// analyzer would port to the real framework by changing one import path.
//
// Analyzer facts are supported in the x/tools shape — an analyzer lists
// its Fact types in FactTypes and calls Pass.ExportObjectFact /
// Pass.ImportObjectFact — with one deliberate narrowing: facts attach
// only to package-level functions and methods (*types.Func), because
// every cross-package contract sdlint checks (accounted I/O helpers,
// session mutators, goroutine drains) is a property of a function. See
// facts.go for the encoding and FactKey for the object identity.
// Requires chaining remains absent: each analyzer is self-contained.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer (flag name under `go vet -vettool`,
	// and the default suppression key).
	Name string
	// Doc is the help text; its first line is the one-line summary.
	Doc string
	// Run applies the check to one package. The interface{} result is
	// kept for x/tools signature compatibility; sdlint analyzers return
	// nil.
	Run func(*Pass) (interface{}, error)
	// AllowKeys lists extra `//sdlint:allow <key>` keys that suppress
	// this analyzer's diagnostics, beyond Name itself (detwalk, for
	// example, is suppressed by the more readable key "nondeterminism").
	AllowKeys []string
	// FactTypes lists the fact types this analyzer exports and imports,
	// one zero value per type (e.g. new(AccountedFact)). An analyzer
	// with an empty FactTypes runs only on the packages being vetted;
	// one that declares facts additionally runs over module-internal
	// dependency packages so its exports are available downstream.
	FactTypes []Fact
}

// A Fact is cross-package analyzer state attached to a function. Fact
// types are pointers to JSON-serializable structs and identify
// themselves with the marker method.
type Fact interface {
	AFact()
}

// Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Populated by the driver;
	// suppression directives are applied by the driver after Run
	// returns, so analyzers report unconditionally.
	Report func(Diagnostic)
	// ExportObjectFact associates fact with obj for downstream
	// packages. obj must be a function or method; facts on other
	// objects are silently dropped (see FactKey). Populated by the
	// driver.
	ExportObjectFact func(obj types.Object, fact Fact)
	// ImportObjectFact copies into fact the fact of that type
	// previously exported for obj (by a dependency package, or earlier
	// in this pass) and reports whether one existed. Populated by the
	// driver.
	ImportObjectFact func(obj types.Object, fact Fact) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the analyzer set for driver use.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no name or no Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		factNames := make(map[string]bool)
		for _, f := range a.FactTypes {
			t := reflect.TypeOf(f)
			if t == nil || t.Kind() != reflect.Ptr || t.Elem().Kind() != reflect.Struct {
				return fmt.Errorf("analysis: analyzer %q fact type %T is not a pointer to struct", a.Name, f)
			}
			name := t.Elem().Name()
			if factNames[name] {
				return fmt.Errorf("analysis: analyzer %q declares fact type %s twice", a.Name, name)
			}
			factNames[name] = true
		}
	}
	return nil
}

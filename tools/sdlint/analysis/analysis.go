// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis framework, carrying exactly the surface
// sdlint's analyzers need: an Analyzer with a Run function over a Pass,
// Reportf diagnostics, and line-addressed suppression directives.
//
// It exists because sdlint must build in a hermetic environment where the
// main module stays dependency-free and x/tools may be unavailable. The
// API deliberately mirrors x/tools (same field and method names), so each
// analyzer would port to the real framework by changing one import path.
// Two features of the real framework are intentionally absent: analyzer
// facts (cross-package state) and Requires chaining — every sdlint
// analyzer is self-contained within one package, and the docs of the
// analyzers that would benefit from facts (lockguard's cross-package
// guarded-field accesses) state the resulting limitation.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer (flag name under `go vet -vettool`,
	// and the default suppression key).
	Name string
	// Doc is the help text; its first line is the one-line summary.
	Doc string
	// Run applies the check to one package. The interface{} result is
	// kept for x/tools signature compatibility; sdlint analyzers return
	// nil.
	Run func(*Pass) (interface{}, error)
	// AllowKeys lists extra `//sdlint:allow <key>` keys that suppress
	// this analyzer's diagnostics, beyond Name itself (detwalk, for
	// example, is suppressed by the more readable key "nondeterminism").
	AllowKeys []string
}

// Pass presents one package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. Populated by the driver;
	// suppression directives are applied by the driver after Run
	// returns, so analyzers report unconditionally.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Validate checks the analyzer set for driver use.
func Validate(analyzers []*Analyzer) error {
	seen := make(map[string]bool)
	for _, a := range analyzers {
		if a.Name == "" || a.Run == nil {
			return fmt.Errorf("analysis: analyzer %q has no name or no Run", a.Name)
		}
		if seen[a.Name] {
			return fmt.Errorf("analysis: duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	return nil
}

// Package analysistest runs an analyzer over golden packages under a
// testdata directory and checks its diagnostics against "// want"
// expectations, mirroring golang.org/x/tools/go/analysis/analysistest on
// the standard library only.
//
// Layout: testdata/src/<pkgpath>/*.go. A line expecting a diagnostic
// carries a comment of the form
//
//	code() // want "regexp" "second regexp"
//
// with one quoted regexp per expected diagnostic on that line. Imports
// between testdata packages resolve within testdata/src; standard
// library imports resolve from source via go/importer, so no compiled
// export data is needed.
//
// Suppression directives are applied before matching, exactly as the
// unitchecker driver applies them, so golden packages can assert both
// that a pattern is flagged and that an annotated twin is not.
//
// Facts work as under the unitchecker driver: before a package is
// checked, the analyzer runs in fact-export mode (diagnostics
// discarded) over every testdata package loaded as a dependency, in
// dependency order, so a golden package can exercise cross-package fact
// import by simply importing a sibling.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"smartdrill/tools/sdlint/analysis"
)

// TestData returns the calling test's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(dir, "testdata")
}

// Run analyzes each package path (relative to dir/src) with a and
// reports mismatches against the package's want expectations on t.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(dir, "src"))
	facts := analysis.NewFactSet()
	exported := make(map[string]bool)
	for _, path := range pkgpaths {
		pkg, files, err := ld.load(path)
		if err != nil {
			t.Errorf("loading %s: %v", path, err)
			continue
		}
		// Mirror the unitchecker: dependencies are visited for facts
		// before the package under test runs. ld.order lists loaded
		// packages in dependency order (imports complete first).
		for _, dep := range ld.order {
			if dep == path || exported[dep] {
				continue
			}
			exportFacts(t, ld, a, facts, dep)
			exported[dep] = true
		}
		check(t, ld, a, facts, path, pkg, files)
		exported[path] = true
	}
}

// exportFacts runs a over a dependency package purely for its exported
// facts, as the unitchecker does for VetxOnly visits.
func exportFacts(t *testing.T, ld *loader, a *analysis.Analyzer, facts *analysis.FactSet, path string) {
	t.Helper()
	pass := &analysis.Pass{
		Analyzer:         a,
		Fset:             ld.fset,
		Files:            ld.asts[path],
		Pkg:              ld.pkgs[path],
		TypesInfo:        ld.info,
		Report:           func(analysis.Diagnostic) {},
		ExportObjectFact: facts.ExportFunc(a),
		ImportObjectFact: facts.ImportFunc(a),
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer %s failed on dependency visit: %v", path, a.Name, err)
	}
}

func check(t *testing.T, ld *loader, a *analysis.Analyzer, facts *analysis.FactSet, path string, pkg *types.Package, files []*ast.File) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:         a,
		Fset:             ld.fset,
		Files:            files,
		Pkg:              pkg,
		TypesInfo:        ld.info,
		Report:           func(d analysis.Diagnostic) { diags = append(diags, d) },
		ExportObjectFact: facts.ExportFunc(a),
		ImportObjectFact: facts.ImportFunc(a),
	}
	if _, err := a.Run(pass); err != nil {
		t.Errorf("%s: analyzer %s failed: %v", path, a.Name, err)
		return
	}
	diags = analysis.ApplySuppression(ld.fset, files, a, diags)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })

	wants := collectWants(t, ld.fset, files)
	for _, d := range diags {
		pos := ld.fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, w := range wants[key] {
			if w.used || !w.re.MatchString(d.Message) {
				continue
			}
			wants[key][i].used = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.re)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile(`(?:^|\s)want\s+(.*)$`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// collectWants parses `// want "re" ...` comments, keyed by the line the
// comment sits on.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]want {
	t.Helper()
	wants := make(map[wantKey][]want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// Accept both //-comments and /* */ blocks: the latter let a
				// want expectation share a line with an //sdlint directive.
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				text = strings.TrimSpace(text)
				m := wantRE.FindStringSubmatch(text)
				if m == nil || !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range quotedRE.FindAllString(m[1], -1) {
					lit, err := strconv.Unquote(q)
					if err != nil {
						t.Errorf("%s: bad want literal %s: %v", pos, q, err)
						continue
					}
					re, err := regexp.Compile(lit)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
						continue
					}
					key := wantKey{pos.Filename, pos.Line}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}

// loader parses and type-checks testdata packages, resolving sibling
// testdata imports first and standard library imports from GOROOT
// source. One shared Info carries the type facts of every loaded
// package; passes only receive their own files, so the surplus entries
// are invisible to analyzers.
type loader struct {
	srcdir string
	fset   *token.FileSet
	info   *types.Info
	std    types.Importer
	pkgs   map[string]*types.Package
	asts   map[string][]*ast.File
	order  []string // load-completion order: dependencies before dependents
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcdir: srcdir,
		fset:   fset,
		info: &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Instances:  make(map[*ast.Ident]types.Instance),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
		},
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*types.Package),
		asts: make(map[string][]*ast.File),
	}
}

func (l *loader) load(path string) (*types.Package, []*ast.File, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, l.asts[path], nil
	}
	dir := filepath.Join(l.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("no Go files in %s", dir)
	}
	tc := &types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := tc.Check(path, l.fset, files, l.info)
	if err != nil {
		return nil, nil, err
	}
	l.pkgs[path] = pkg
	l.asts[path] = files
	l.order = append(l.order, path)
	return pkg, files, nil
}

// importPkg prefers a sibling testdata package, falling back to the
// source importer for the standard library.
func (l *loader) importPkg(path string) (*types.Package, error) {
	if _, err := os.Stat(filepath.Join(l.srcdir, filepath.FromSlash(path))); err == nil {
		pkg, _, err := l.load(path)
		return pkg, err
	}
	return l.std.Import(path)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

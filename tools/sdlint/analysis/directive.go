package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. A diagnostic is suppressed by
//
//	//sdlint:allow <key> <reason>
//
// where <key> is the reporting analyzer's name or one of its AllowKeys,
// and <reason> is mandatory prose explaining why the flagged code is
// legitimate. The directive covers:
//
//   - the line it is written on (end-of-line comment),
//   - the line immediately below a standalone comment group, and
//   - the entire function, when it appears in a func declaration's doc
//     comment.
//
// A directive with no reason does NOT suppress: the diagnostic fires with
// a note that the reason is missing, so "because I said so" suppressions
// cannot land silently.

// allowDirective is one parsed //sdlint:allow comment.
type allowDirective struct {
	key      string
	reason   string
	fromLine int // first covered line
	toLine   int // last covered line
	pos      token.Pos
}

// LineDirective is one "//sdlint:<name> <args>" comment with its line
// coverage resolved against the AST: the line it is written on
// (end-of-line comment), additionally the line below (last line of a
// standalone comment group), or the whole declaration (func doc
// comment). Args is the trimmed text after the directive name, empty
// for a bare directive.
type LineDirective struct {
	Args     string
	FromLine int
	ToLine   int
	Pos      token.Pos
}

// Covers reports whether the directive's line range includes line.
func (d LineDirective) Covers(line int) bool {
	return d.FromLine <= line && line <= d.ToLine
}

// CollectLineDirectives gathers every "//sdlint:<name>" directive in the
// file with its line coverage resolved. It is the shared machinery
// behind //sdlint:allow and the statement-scoped directives (detached).
func CollectLineDirectives(fset *token.FileSet, file *ast.File, name string) []LineDirective {
	prefix := "//sdlint:" + name
	// Doc-comment directives cover their whole declaration.
	docRange := make(map[*ast.CommentGroup][2]int)
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			return true
		}
		docRange[fd.Doc] = [2]int{
			fset.Position(fd.Pos()).Line,
			fset.Position(fd.End()).Line,
		}
		return true
	})
	code := codeLines(fset, file)

	var out []LineDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, prefix)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			d := LineDirective{Args: strings.TrimSpace(rest), Pos: c.Pos()}
			if r, isDoc := docRange[cg]; isDoc {
				d.FromLine, d.ToLine = r[0], r[1]
			} else {
				// An end-of-line comment (code precedes it on the line)
				// covers its own line only; the last line of a standalone
				// group also covers the line below it.
				line := fset.Position(c.Pos()).Line
				d.FromLine, d.ToLine = line, line
				if !code[line] && line == fset.Position(cg.End()).Line {
					d.ToLine = line + 1
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// collectAllows gathers every allow directive in the file, splitting the
// args into the analyzer key and the mandatory reason.
func collectAllows(fset *token.FileSet, file *ast.File) []allowDirective {
	var out []allowDirective
	for _, d := range CollectLineDirectives(fset, file, "allow") {
		key, reason, _ := strings.Cut(d.Args, " ")
		if key == "" {
			continue
		}
		out = append(out, allowDirective{
			key:      key,
			reason:   strings.TrimSpace(reason),
			fromLine: d.FromLine,
			toLine:   d.ToLine,
			pos:      d.Pos,
		})
	}
	return out
}

// codeLines reports which lines hold code tokens, distinguishing
// end-of-line comments from standalone comment lines.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// ApplySuppression filters diags through the files' //sdlint:allow
// directives for the given analyzer. Directives carrying no reason do
// not suppress: the original diagnostic survives, and the bare directive
// earns its own diagnostic at the directive's position — a first-class
// finding rather than a note buried in another message — so "because I
// said so" suppressions cannot land silently.
func ApplySuppression(fset *token.FileSet, files []*ast.File, a *Analyzer, diags []Diagnostic) []Diagnostic {
	keys := map[string]bool{a.Name: true}
	for _, k := range a.AllowKeys {
		keys[k] = true
	}
	byFile := make(map[string][]allowDirective)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		byFile[name] = collectAllows(fset, f)
	}
	var out []Diagnostic
	bare := make(map[token.Pos]bool) // bare directives already reported, by position
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range byFile[pos.Filename] {
			if !keys[dir.key] || pos.Line < dir.fromLine || pos.Line > dir.toLine {
				continue
			}
			if dir.reason == "" {
				if !bare[dir.pos] {
					bare[dir.pos] = true
					out = append(out, Diagnostic{
						Pos:     dir.pos,
						Message: fmt.Sprintf("sdlint:allow %s ignored: missing reason (write //sdlint:allow %s <reason>)", dir.key, dir.key),
					})
				}
				continue
			}
			suppressed = true
			break
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// FuncDirectives returns the trimmed argument text of every
// "//sdlint:<name> <args>" line in fn's doc comment, in order. It is the
// shared parser behind the declaration-scoped directives (io, mutator,
// holds): one entry per occurrence, empty string for a bare directive.
func FuncDirectives(fn *ast.FuncDecl, name string) []string {
	if fn == nil || fn.Doc == nil {
		return nil
	}
	prefix := "//sdlint:" + name
	var out []string
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, prefix)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		out = append(out, strings.TrimSpace(rest))
	}
	return out
}

// Holds reports whether fn's doc comment carries "//sdlint:holds <guard>"
// — the caller-acquires-the-lock escape hatch lockguard honors.
func Holds(fn *ast.FuncDecl, guard string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		const p = "//sdlint:holds"
		if !strings.HasPrefix(c.Text, p) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, p))
		name, _, _ := strings.Cut(rest, " ")
		if name == guard {
			return true
		}
	}
	return false
}

// FieldDirective returns the trimmed argument text of the first
// "//sdlint:<name> <args>" comment attached to a struct field (doc or
// trailing comment), reporting ok=false when no such directive exists.
func FieldDirective(field *ast.Field, name string) (args string, ok bool) {
	prefix := "//sdlint:" + name
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, prefix)
			if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// GuardedBy extracts the "guardedby: <mutex>" annotation from a struct
// field's doc or trailing comment, reporting ok=false when absent. The
// annotation is free-form prose after the mutex name, e.g.
//
//	// guardedby: mu (held by the owning server session)
//	eng *smartdrill.Engine
func GuardedBy(field *ast.Field) (guard string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSpace(text)
			const p = "guardedby:"
			if !strings.HasPrefix(text, p) {
				continue
			}
			rest := strings.TrimSpace(text[len(p):])
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSuffix(name, ".")
			if name != "" {
				return name, true
			}
		}
	}
	return "", false
}

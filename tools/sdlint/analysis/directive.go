package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives. A diagnostic is suppressed by
//
//	//sdlint:allow <key> <reason>
//
// where <key> is the reporting analyzer's name or one of its AllowKeys,
// and <reason> is mandatory prose explaining why the flagged code is
// legitimate. The directive covers:
//
//   - the line it is written on (end-of-line comment),
//   - the line immediately below a standalone comment group, and
//   - the entire function, when it appears in a func declaration's doc
//     comment.
//
// A directive with no reason does NOT suppress: the diagnostic fires with
// a note that the reason is missing, so "because I said so" suppressions
// cannot land silently.

// allowDirective is one parsed //sdlint:allow comment.
type allowDirective struct {
	key      string
	reason   string
	fromLine int // first covered line
	toLine   int // last covered line
	pos      token.Pos
}

const allowPrefix = "//sdlint:allow"

// parseAllow parses one comment, reporting ok=false for non-directives.
func parseAllow(c *ast.Comment) (key, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, allowPrefix) {
		return "", "", false
	}
	rest := strings.TrimSpace(text[len(allowPrefix):])
	key, reason, _ = strings.Cut(rest, " ")
	return key, strings.TrimSpace(reason), key != ""
}

// collectAllows gathers every allow directive in the file with its line
// coverage resolved against the AST.
func collectAllows(fset *token.FileSet, file *ast.File) []allowDirective {
	// Doc-comment directives cover their whole declaration.
	docRange := make(map[*ast.CommentGroup][2]int)
	ast.Inspect(file, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			return true
		}
		docRange[fd.Doc] = [2]int{
			fset.Position(fd.Pos()).Line,
			fset.Position(fd.End()).Line,
		}
		return true
	})
	code := codeLines(fset, file)

	var out []allowDirective
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			key, reason, ok := parseAllow(c)
			if !ok {
				continue
			}
			d := allowDirective{key: key, reason: reason, pos: c.Pos()}
			if r, isDoc := docRange[cg]; isDoc {
				d.fromLine, d.toLine = r[0], r[1]
			} else {
				// An end-of-line comment (code precedes it on the line)
				// covers its own line only; the last line of a standalone
				// group also covers the line below it.
				line := fset.Position(c.Pos()).Line
				d.fromLine, d.toLine = line, line
				if !code[line] && line == fset.Position(cg.End()).Line {
					d.toLine = line + 1
				}
			}
			out = append(out, d)
		}
	}
	return out
}

// codeLines reports which lines hold code tokens, distinguishing
// end-of-line comments from standalone comment lines.
func codeLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.Comment, *ast.CommentGroup:
			return false
		case *ast.File:
			return true
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()).Line] = true
		return true
	})
	return lines
}

// ApplySuppression filters diags through the files' //sdlint:allow
// directives for the given analyzer. Directives carrying no reason do not
// suppress; the surviving diagnostic gains a note instead, so the linter
// itself enforces that every suppression is written down.
func ApplySuppression(fset *token.FileSet, files []*ast.File, a *Analyzer, diags []Diagnostic) []Diagnostic {
	keys := map[string]bool{a.Name: true}
	for _, k := range a.AllowKeys {
		keys[k] = true
	}
	byFile := make(map[string][]allowDirective)
	for _, f := range files {
		name := fset.Position(f.Pos()).Filename
		byFile[name] = collectAllows(fset, f)
	}
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, dir := range byFile[pos.Filename] {
			if !keys[dir.key] || pos.Line < dir.fromLine || pos.Line > dir.toLine {
				continue
			}
			if dir.reason == "" {
				d.Message += " (sdlint:allow directive ignored: missing reason)"
				continue
			}
			suppressed = true
			break
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}

// Holds reports whether fn's doc comment carries "//sdlint:holds <guard>"
// — the caller-acquires-the-lock escape hatch lockguard honors.
func Holds(fn *ast.FuncDecl, guard string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		const p = "//sdlint:holds"
		if !strings.HasPrefix(c.Text, p) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(c.Text, p))
		name, _, _ := strings.Cut(rest, " ")
		if name == guard {
			return true
		}
	}
	return false
}

// GuardedBy extracts the "guardedby: <mutex>" annotation from a struct
// field's doc or trailing comment, reporting ok=false when absent. The
// annotation is free-form prose after the mutex name, e.g.
//
//	// guardedby: mu (held by the owning server session)
//	eng *smartdrill.Engine
func GuardedBy(field *ast.Field) (guard string, ok bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimPrefix(text, "/*")
			text = strings.TrimSpace(text)
			const p = "guardedby:"
			if !strings.HasPrefix(text, p) {
				continue
			}
			rest := strings.TrimSpace(text[len(p):])
			name, _, _ := strings.Cut(rest, " ")
			name = strings.TrimSuffix(name, ".")
			if name != "" {
				return name, true
			}
		}
	}
	return "", false
}

package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact serialization. The unitchecker driver persists each package's
// facts to the .vetx file cmd/go asks for (VetxOutput) and feeds the
// .vetx files of dependencies (PackageVetx) back in, so facts flow in
// dependency order exactly like export data. The wire format is a JSON
// array of SerializedFact, one element per (analyzer, function, fact
// type) triple; a package's output is the union of what it imported and
// what its analyzers exported, which makes facts transitive without a
// reachability analysis.

// SerializedFact is the wire form of one exported fact.
type SerializedFact struct {
	Analyzer string          // Analyzer.Name that owns the fact
	Object   string          // FactKey of the function it attaches to
	Type     string          // struct name of the fact type
	Data     json.RawMessage // the fact's JSON encoding
}

// FactKey renders the cross-package identity facts are stored under:
// "<pkgpath>.<recvtype>.<name>", with an empty <recvtype> for plain
// functions. Only package-level functions and methods have such an
// identity; ok is false for every other object (and for builtins with
// no package), which callers treat as "carries no facts".
func FactKey(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if n, isNamed := t.(*types.Named); isNamed {
			recv = n.Obj().Name()
		}
	}
	return fn.Pkg().Path() + "." + recv + "." + fn.Name(), true
}

// factID distinguishes facts within a set.
type factID struct {
	analyzer string
	object   string
	typ      string
}

// A FactSet accumulates the facts visible to one driver invocation:
// everything decoded from dependency .vetx files plus everything the
// analyzers export while running here.
type FactSet struct {
	facts map[factID]json.RawMessage
}

func NewFactSet() *FactSet {
	return &FactSet{facts: make(map[factID]json.RawMessage)}
}

// Decode merges one .vetx payload into the set. Empty payloads (the
// answer for fact-free packages) are valid and add nothing.
func (s *FactSet) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var sfs []SerializedFact
	if err := json.Unmarshal(data, &sfs); err != nil {
		return fmt.Errorf("decoding facts: %w", err)
	}
	for _, sf := range sfs {
		s.facts[factID{sf.Analyzer, sf.Object, sf.Type}] = sf.Data
	}
	return nil
}

// Encode renders the whole set — imported and exported alike — in a
// deterministic order, for writing to this package's .vetx file.
func (s *FactSet) Encode() ([]byte, error) {
	if len(s.facts) == 0 {
		return nil, nil
	}
	sfs := make([]SerializedFact, 0, len(s.facts))
	for id, data := range s.facts {
		sfs = append(sfs, SerializedFact{Analyzer: id.analyzer, Object: id.object, Type: id.typ, Data: data})
	}
	sort.Slice(sfs, func(i, j int) bool {
		a, b := sfs[i], sfs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Type < b.Type
	})
	return json.Marshal(sfs)
}

// factTypeName names a fact by its struct type, the Type field of its
// wire form.
func factTypeName(f Fact) string {
	return reflect.TypeOf(f).Elem().Name()
}

// ExportFunc builds the Pass.ExportObjectFact implementation for one
// analyzer: facts land in s keyed by the analyzer's name, so two
// analyzers' facts never collide even on the same function.
func (s *FactSet) ExportFunc(a *Analyzer) func(types.Object, Fact) {
	return func(obj types.Object, fact Fact) {
		key, ok := FactKey(obj)
		if !ok {
			return
		}
		data, err := json.Marshal(fact)
		if err != nil {
			panic(fmt.Sprintf("analysis: marshaling %s fact %T: %v", a.Name, fact, err))
		}
		s.facts[factID{a.Name, key, factTypeName(fact)}] = data
	}
}

// ImportFunc builds the Pass.ImportObjectFact implementation for one
// analyzer.
func (s *FactSet) ImportFunc(a *Analyzer) func(types.Object, Fact) bool {
	return func(obj types.Object, fact Fact) bool {
		key, ok := FactKey(obj)
		if !ok {
			return false
		}
		data, ok := s.facts[factID{a.Name, key, factTypeName(fact)}]
		if !ok {
			return false
		}
		if err := json.Unmarshal(data, fact); err != nil {
			panic(fmt.Sprintf("analysis: unmarshaling %s fact %T for %s: %v", a.Name, fact, key, err))
		}
		return true
	}
}

// Package unitchecker implements the `go vet -vettool` driver protocol
// for sdlint's miniature analysis framework, using only the standard
// library: cmd/go compiles each package, writes a JSON "vet config"
// describing its files and the export data of its imports, and invokes
// the tool as
//
//	sdlint [flags] <dir>/vet.cfg
//
// The tool must also answer two introspection invocations cmd/go makes
// before any analysis: `-flags` (print a JSON description of supported
// flags, used to split the `go vet` command line) and `-V=full` (print a
// version line including a content hash, used as the cache key so edits
// to sdlint invalidate cached vet results).
//
// The driver speaks the same facts protocol as
// golang.org/x/tools/go/analysis/unitchecker: cmd/go visits dependency
// packages in "VetxOnly" mode purely to produce fact files (.vetx),
// then hands each package the .vetx files of its dependencies, so facts
// flow in dependency order exactly like export data and the vet result
// cache keys them by the tool's -V=full hash. Standard-library
// dependencies (recognized by an empty ModulePath in their vet config)
// are answered with an empty facts file without even parsing — sdlint's
// facts only describe this repository's functions — while
// module-internal dependencies are parsed, type-checked and run through
// the fact-declaring analyzers with diagnostics discarded.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"smartdrill/tools/sdlint/analysis"
)

// Config is the JSON schema of cmd/go's vet.cfg, mirroring
// cmd/go/internal/work.vetConfig. Unused fields are retained so the
// decoder tolerates every field cmd/go writes.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a multichecker built on this driver.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	log.SetFlags(0)
	log.SetPrefix(progname + ": ")
	if err := analysis.Validate(analyzers); err != nil {
		log.Fatal(err)
	}

	printFlags := flag.Bool("flags", false, "print flags in JSON for cmd/go")
	flag.Var(versionFlag{}, "V", "print version and exit (-V=full for a build hash)")
	enabled := make(map[string]*bool)
	for _, a := range analyzers {
		doc, _, _ := strings.Cut(a.Doc, "\n")
		enabled[a.Name] = flag.Bool(a.Name, false, doc)
	}
	flag.Parse()

	if *printFlags {
		emitFlags()
		os.Exit(0)
	}

	// cmd/go semantics: naming any analyzer flag runs only the named
	// ones; otherwise all run.
	var selected []*analysis.Analyzer
	for _, a := range analyzers {
		if *enabled[a.Name] {
			selected = append(selected, a)
		}
	}
	if len(selected) == 0 {
		selected = analyzers
	}

	args := flag.Args()
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		log.Fatalf(`invoking sdlint directly is unsupported; use "go vet -vettool=$(command -v sdlint)" (or "make lint")`)
	}
	run(args[0], selected)
}

// run loads one vet.cfg, analyzes the package, prints diagnostics to
// stderr, and exits nonzero when any survive suppression.
func run(cfgFile string, analyzers []*analysis.Analyzer) {
	raw, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		log.Fatalf("parsing %s: %v", cfgFile, err)
	}

	// Gather the facts exported by this package's dependencies. The map
	// is iterated in sorted order so fact files are byte-reproducible.
	facts := analysis.NewFactSet()
	depPaths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		depPaths = append(depPaths, path)
	}
	sort.Strings(depPaths)
	for _, path := range depPaths {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			log.Fatalf("reading facts of %s: %v", path, err)
		}
		if err := facts.Decode(data); err != nil {
			log.Fatalf("facts of %s: %v", path, err)
		}
	}
	writeFacts := func() {
		if cfg.VetxOutput == "" {
			return
		}
		data, err := facts.Encode()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			log.Fatal(err)
		}
	}

	// cmd/go visits dependencies only for their facts. Standard-library
	// packages (no module path) carry none of ours: re-export the
	// imported set without parsing. Module packages — smartdrill's own,
	// in any build this repo runs — are analyzed for fact export below.
	if cfg.VetxOnly && cfg.ModulePath == "" {
		writeFacts()
		os.Exit(0)
	}
	if cfg.VetxOnly {
		var factful []*analysis.Analyzer
		for _, a := range analyzers {
			if len(a.FactTypes) > 0 {
				factful = append(factful, a)
			}
		}
		analyzers = factful
		if len(analyzers) == 0 {
			writeFacts()
			os.Exit(0)
		}
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeFacts() // pass the imported facts through
				os.Exit(0)   // the compiler will report it better
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			return nil, fmt.Errorf("can't resolve import %q", importPath)
		}
		return compilerImporter.Import(path)
	})
	tc := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor("gc", build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeFacts()
			os.Exit(0)
		}
		log.Fatalf("typechecking %s: %v", cfg.ImportPath, err)
	}

	exit := 0
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:         a,
			Fset:             fset,
			Files:            files,
			Pkg:              pkg,
			TypesInfo:        info,
			Report:           func(d analysis.Diagnostic) { diags = append(diags, d) },
			ExportObjectFact: facts.ExportFunc(a),
			ImportObjectFact: facts.ImportFunc(a),
		}
		if _, err := a.Run(pass); err != nil {
			log.Fatalf("analyzer %s: %v", a.Name, err)
		}
		if cfg.VetxOnly {
			continue // fact-export visit: diagnostics belong to the real vet of this package
		}
		diags = analysis.ApplySuppression(fset, files, a, diags)
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), a.Name, d.Message)
			exit = 2
		}
	}
	writeFacts()
	os.Exit(exit)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// emitFlags prints the JSON flag inventory cmd/go requests with -flags.
func emitFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	var out []jsonFlag
	flag.VisitAll(func(f *flag.Flag) {
		isBool := false
		if b, ok := f.Value.(interface{ IsBoolFlag() bool }); ok {
			isBool = b.IsBoolFlag()
		}
		out = append(out, jsonFlag{Name: f.Name, Bool: isBool, Usage: f.Usage})
	})
	data, err := json.MarshalIndent(out, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
	fmt.Println()
}

// versionFlag implements -V=full: cmd/go keys its vet-result cache on
// this output, so it must change whenever the binary does — hence the
// content hash.
type versionFlag struct{}

func (versionFlag) IsBoolFlag() bool { return true }
func (versionFlag) Get() interface{} { return nil }
func (versionFlag) String() string   { return "" }
func (versionFlag) Set(s string) error {
	if s != "full" {
		log.Fatalf("unsupported flag value: -V=%s", s)
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel buildID=%02x\n", filepath.Base(os.Args[0]), sha256.Sum256(data))
	os.Exit(0)
	return nil
}

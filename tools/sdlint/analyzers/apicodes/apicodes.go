// Package apicodes checks that the API error-code vocabulary stays in
// sync across its three homes: the ErrorCode constants in package api,
// the HTTPStatus mapping, and the published OpenAPI spec
// (docs/openapi.yaml).
//
// Every ErrorCode constant must (a) appear as an explicit case in
// HTTPStatus — relying on the default arm means a new code silently
// inherits an arbitrary status — and (b) occur in the spec's error-code
// enum, so clients generated from the spec can name it. Codes that are
// deliberately unpublished would carry //sdlint:allow apicodes <reason>
// on the constant.
package apicodes

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"

	"smartdrill/tools/sdlint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "apicodes",
	Doc: "flag api.ErrorCode constants missing from HTTPStatus or docs/openapi.yaml\n\n" +
		"The error-code vocabulary lives in three places (constants, status mapping,\n" +
		"OpenAPI spec); this keeps them from drifting apart.",
	Run: run,
}

// code is one ErrorCode constant.
type code struct {
	obj   *types.Const
	value string
	pos   token.Pos
}

func run(pass *analysis.Pass) (interface{}, error) {
	if pass.Pkg.Name() != "api" {
		return nil, nil
	}
	codes := collectCodes(pass)
	if len(codes) == 0 {
		return nil, nil
	}

	mapped, haveStatus := statusCases(pass)
	for _, c := range codes {
		if !haveStatus {
			pass.Reportf(c.pos, "error code %s declared but no HTTPStatus function maps ErrorCode to statuses", c.obj.Name())
			continue
		}
		if !mapped[c.obj] {
			pass.Reportf(c.pos, "error code %s has no explicit case in HTTPStatus: map it rather than fall through to the default arm", c.obj.Name())
		}
	}

	spec, specPath, err := loadSpec(pass)
	if err != nil {
		pass.Reportf(codes[0].pos, "cannot locate the OpenAPI spec to validate error codes against: %v", err)
		return nil, nil
	}
	for _, c := range codes {
		re := regexp.MustCompile(`(^|[^a-zA-Z0-9_])` + regexp.QuoteMeta(c.value) + `($|[^a-zA-Z0-9_])`)
		if !re.Match(spec) {
			pass.Reportf(c.pos, "error code %q is not listed in %s: add it to the spec's error-code enum", c.value, filepath.Base(specPath))
		}
	}
	return nil, nil
}

// collectCodes gathers the package's string constants of type ErrorCode.
func collectCodes(pass *analysis.Pass) []code {
	var codes []code
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			spec, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, name := range spec.Names {
				cst, ok := pass.TypesInfo.Defs[name].(*types.Const)
				if !ok {
					continue
				}
				named, ok := cst.Type().(*types.Named)
				if !ok || named.Obj().Pkg() != pass.Pkg || named.Obj().Name() != "ErrorCode" {
					continue
				}
				if cst.Val().Kind() != constant.String {
					continue
				}
				codes = append(codes, code{obj: cst, value: constant.StringVal(cst.Val()), pos: name.Pos()})
			}
			return true
		})
	}
	return codes
}

// statusCases returns the set of ErrorCode constants appearing as
// explicit switch cases inside the HTTPStatus function.
func statusCases(pass *analysis.Pass) (map[*types.Const]bool, bool) {
	mapped := make(map[*types.Const]bool)
	found := false
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "HTTPStatus" || fd.Body == nil {
				continue
			}
			found = true
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cc, ok := n.(*ast.CaseClause)
				if !ok {
					return true
				}
				for _, e := range cc.List {
					id, ok := ast.Unparen(e).(*ast.Ident)
					if !ok {
						continue
					}
					if cst, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
						mapped[cst] = true
					}
				}
				return true
			})
		}
	}
	return mapped, found
}

// loadSpec finds the OpenAPI document: openapi.yaml beside the package
// (analysistest layout), else docs/openapi.yaml walking up toward the
// repository root.
func loadSpec(pass *analysis.Pass) ([]byte, string, error) {
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	if abs, err := filepath.Abs(dir); err == nil {
		dir = abs
	}
	if data, err := os.ReadFile(filepath.Join(dir, "openapi.yaml")); err == nil {
		return data, filepath.Join(dir, "openapi.yaml"), nil
	}
	for d, depth := dir, 0; depth < 8; d, depth = filepath.Dir(d), depth+1 {
		p := filepath.Join(d, "docs", "openapi.yaml")
		if data, err := os.ReadFile(p); err == nil {
			return data, p, nil
		}
		if filepath.Dir(d) == d {
			break
		}
	}
	return nil, "", fmt.Errorf("no openapi.yaml beside %s and no docs/openapi.yaml above it", dir)
}

package apicodes_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/apicodes"
)

func TestApicodes(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), apicodes.Analyzer, "api")
}

package api

type ErrorCode string

const (
	ErrBadRequest ErrorCode = "bad_request"
	ErrNotFound   ErrorCode = "not_found" // want "error code ErrNotFound has no explicit case in HTTPStatus"
	ErrSecret     ErrorCode = "secret"    //sdlint:allow apicodes internal-only code, deliberately absent from the published spec
	ErrGhost      ErrorCode = "ghost"     // want "error code .ghost. is not listed in openapi.yaml"
)

func HTTPStatus(code ErrorCode) int {
	switch code {
	case ErrBadRequest, ErrGhost, ErrSecret:
		return 400
	default:
		return 500
	}
}

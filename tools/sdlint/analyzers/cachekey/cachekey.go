// Package cachekey checks that the answer cache's key stays complete.
//
// The dataset-scoped search service deduplicates expansions by a
// comparable key struct canonicalized from search.Request by
// Service.keyOf. The cache's whole correctness contract is that two
// requests mapping to the same key are interchangeable: every field of
// Request that can affect the answer must therefore be consumed by
// keyOf (and land in the key struct), and every field that deliberately
// is not — execution plumbing like Yield, or cache-routing flags like
// NoCache — must say so in source:
//
//	//sdlint:nonidentity <reason>
//
// Adding a Request field without either keying it or annotating it
// fails make lint, so the cache can never silently serve answers across
// requests that differ in a new dimension. The analyzer also verifies
// the key struct itself remains comparable (usable as a map key), and
// flags contradictory annotations (a nonidentity field keyOf consumes).
package cachekey

import (
	"go/ast"
	"go/types"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "cachekey",
	Doc: "flag search.Request fields neither consumed by Service.keyOf nor marked //sdlint:nonidentity\n\n" +
		"The answer cache treats requests with equal keys as interchangeable; an\n" +
		"identity-bearing field missing from the key lets distinct requests collide.\n" +
		"Mark deliberate non-identity fields with //sdlint:nonidentity <reason>.",
	Run: run,
}

var scope = []string{"internal/search"}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PathIn(pass.Pkg.Path(), scope...) {
		return nil, nil
	}

	var request *ast.StructType
	var requestSpec, keySpec *ast.TypeSpec
	var keyOf *ast.FuncDecl
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				st, isStruct := n.Type.(*ast.StructType)
				if !isStruct {
					return true
				}
				switch n.Name.Name {
				case "Request":
					request, requestSpec = st, n
				case "key":
					keySpec = n
				}
			case *ast.FuncDecl:
				if fn := funcObj(pass, n); fn != nil && n.Name.Name == "keyOf" && lintutil.RecvTypeName(fn) == "Service" {
					keyOf = n
				}
			}
			return true
		})
	}
	if request == nil {
		return nil, nil // not the service package (e.g. a helper subpackage)
	}
	if keyOf == nil || keyOf.Body == nil {
		pass.Reportf(requestSpec.Pos(), "Request has no Service.keyOf canonicalizer: the answer cache cannot key requests")
		return nil, nil
	}
	if keySpec != nil {
		if tn, ok := pass.TypesInfo.Defs[keySpec.Name].(*types.TypeName); ok && !types.Comparable(tn.Type()) {
			pass.Reportf(keySpec.Pos(), "cache key struct %s is not comparable: it cannot index the answer cache's maps", keySpec.Name.Name)
		}
	}

	used := fieldsUsed(pass, keyOf)
	for _, f := range request.Fields.List {
		reason, hasDir := analysis.FieldDirective(f, "nonidentity")
		for _, name := range f.Names {
			obj := pass.TypesInfo.Defs[name]
			switch {
			case hasDir && reason == "":
				pass.Reportf(f.Pos(), "//sdlint:nonidentity on Request.%s ignored: missing reason (write //sdlint:nonidentity <reason>)", name.Name)
			case hasDir && used[obj]:
				pass.Reportf(f.Pos(), "Request.%s is marked //sdlint:nonidentity but Service.keyOf consumes it: drop the directive or stop keying the field", name.Name)
			case !hasDir && !used[obj]:
				pass.Reportf(f.Pos(), "Request.%s is not captured by the cache key: consume it in Service.keyOf or mark it //sdlint:nonidentity <reason> — an unkeyed identity field lets distinct requests collide in the answer cache", name.Name)
			}
		}
		if len(f.Names) == 0 && !hasDir {
			pass.Reportf(f.Pos(), "embedded Request field is not captured by the cache key: name it and key it, or mark it //sdlint:nonidentity <reason>")
		}
	}
	return nil, nil
}

// fieldsUsed collects every struct field object referenced anywhere in
// fn's body (req.Kind, req.Rule.PackKey(...), ...).
func fieldsUsed(pass *analysis.Pass, fn *ast.FuncDecl) map[types.Object]bool {
	used := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
			used[obj] = true
		}
		return true
	})
	return used
}

// funcObj returns fd's *types.Func, or nil.
func funcObj(pass *analysis.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

package cachekey_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/cachekey"
)

func TestCachekey(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), cachekey.Analyzer,
		"internal/search", "internal/search/badkey", "internal/search/nokey")
}

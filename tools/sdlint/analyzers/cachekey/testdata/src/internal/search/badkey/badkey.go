// Package badkey plants a cache key struct that cannot index a map.
package badkey

type key struct { // want "cache key struct key is not comparable"
	rules []int
}

type Service struct{}

type Request struct {
	K int
}

func (s *Service) keyOf(req Request) key {
	_ = req.K
	return key{}
}

// Package nokey plants a Request with no canonicalizer at all.
package nokey

type Request struct { // want "Request has no Service.keyOf canonicalizer"
	K int
}

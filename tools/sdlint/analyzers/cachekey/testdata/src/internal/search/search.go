// Package search mirrors the answer-cache service surface cachekey
// guards: a Request canonicalized into a comparable key by
// Service.keyOf, with deliberate non-identity fields annotated.
package search

type Kind uint8

type key struct {
	kind Kind
	k    int
}

type Service struct{ version uint64 }

type Request struct {
	Kind Kind
	K    int
	// Unkeyed is the acceptance scenario: an identity-bearing field
	// added without keying or annotating it.
	Unkeyed int // want "Request.Unkeyed is not captured by the cache key"
	//sdlint:nonidentity replayed identically on hits, cannot change the answer
	Yield func(int) bool
	Bare  bool /* want "missing reason" */ //sdlint:nonidentity
	//sdlint:nonidentity claims to be execution plumbing
	Contradict int /* want "marked //sdlint:nonidentity but Service.keyOf consumes it" */
}

func (s *Service) keyOf(req Request) key {
	k := key{kind: req.Kind, k: req.K}
	if req.Contradict != 0 {
		k.k++
	}
	return k
}

// Package ctxflow checks that context.Context threads through the engine
// instead of being dropped at an internal boundary — the cancellation
// contract the streaming API depends on.
//
// Four rules:
//
//  1. A function that has a context.Context (or *net/http.Request) in
//     scope must not call the context-free form of a function that has a
//     Ctx variant: call ExpandCtx(ctx, ...), not Expand(...).
//  2. A declared context.Context parameter must be used (or be named _):
//     accepting ctx and ignoring it silently breaks cancellation for
//     every caller upstream.
//  3. In internal/brs, any loop that drives counting passes must poll
//     cancellation between passes (rn.canceled(), run.ctxErr, ctx.Err(),
//     or ctx.Done()): passes are the unit of interruption, so a loop
//     that never polls can outlive its caller by an entire search.
//  4. A goroutine closure that captures a context — a ctx-typed local or
//     field declared outside the closure — has that context in scope
//     exactly as a parameter would be: non-Ctx calls inside the spawned
//     body are flagged even when the enclosing function declares no ctx
//     parameter. Spawned work is where a dropped context hurts most,
//     because nothing upstream can cancel it once it detaches.
//
// _test.go files are exempt. Suppress deliberate exceptions (e.g. an
// interface implementation that genuinely cannot honor cancellation)
// with //sdlint:allow ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "flag dropped contexts: non-Ctx calls with a ctx in scope (including goroutine closures capturing one), unused ctx params, unpolled counting loops\n\n" +
		"Cancellation flows through Ctx variants and per-pass polling; a single dropped\n" +
		"context breaks the whole chain. Suppress deliberate exceptions with\n" +
		"//sdlint:allow ctxflow <reason>.",
	Run: run,
}

// passFuncs are the BRS counting passes: the units of work between which
// cancellation is polled (internal/brs only, rule 3).
var passFuncs = map[string]bool{
	"findBestMarginal":     true,
	"countCandidates":      true,
	"countLevelOne":        true,
	"countCandidatesScan":  true,
	"countCandidatesIndex": true,
	"expandParents":        true,
	"applySelection":       true,
	"rebuildTopW":          true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	brs := lintutil.PathIn(pass.Pkg.Path(), "internal/brs")
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxCalls(pass, fd)
			checkGoClosures(pass, fd)
			checkUnusedCtx(pass, fd)
			if brs {
				checkLoopPolling(pass, fd)
			}
		}
	}
	return nil, nil
}

// checkCtxCalls implements rule 1: with a ctx (or request) parameter in
// scope, prefer the Ctx variant of any callee that has one.
func checkCtxCalls(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !hasCtxParam(pass.TypesInfo, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := lintutil.Callee(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if sib := ctxSibling(fn); sib != nil {
			pass.Reportf(call.Pos(), "call to %s with a context in scope: use %s so cancellation propagates", fn.Name(), sib.Name())
		}
		return true
	})
}

// checkGoClosures implements rule 4: a goroutine closure capturing a
// context from its enclosing scope has that context in scope just as a
// parameter would be. Skipped when the enclosing function declares a ctx
// parameter — rule 1 already walks the whole body, nested closures
// included, and would double-report.
func checkGoClosures(pass *analysis.Pass, fd *ast.FuncDecl) {
	if hasCtxParam(pass.TypesInfo, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok || !capturesContext(pass.TypesInfo, lit) {
			return true
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintutil.Callee(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if sib := ctxSibling(fn); sib != nil {
				pass.Reportf(call.Pos(), "call to %s inside a goroutine that captures a context: use %s so the spawned work honors cancellation", fn.Name(), sib.Name())
			}
			return true
		})
		return true
	})
}

// capturesContext reports whether lit references a context-typed
// variable declared outside the literal (a captured local or a struct
// field), as opposed to one of its own parameters.
func capturesContext(info *types.Info, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj, isVar := info.Uses[id].(*types.Var); isVar &&
				lintutil.IsContextType(obj.Type()) &&
				(obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// checkUnusedCtx implements rule 2: a named context.Context parameter
// must appear in the body.
func checkUnusedCtx(pass *analysis.Pass, fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		if t := pass.TypesInfo.TypeOf(field.Type); t == nil || !lintutil.IsContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil || usesObject(pass.TypesInfo, fd.Body, obj) {
				continue
			}
			pass.Reportf(name.Pos(), "context parameter %s is never used: thread it into the calls below or rename it _", name.Name)
		}
	}
}

// checkLoopPolling implements rule 3 for internal/brs.
func checkLoopPolling(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			body = n.Body
		case *ast.RangeStmt:
			body = n.Body
		default:
			return true
		}
		if drivesPasses(pass.TypesInfo, body) && !pollsCancellation(pass.TypesInfo, body) {
			pass.Reportf(n.Pos(), "loop drives counting passes but never polls cancellation: check rn.canceled() / run.ctxErr between passes")
		}
		return true
	})
}

// drivesPasses reports whether the loop body calls a counting pass.
func drivesPasses(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := lintutil.Callee(info, call); fn != nil && passFuncs[fn.Name()] {
				found = true
			}
		}
		return !found
	})
	return found
}

// pollsCancellation reports whether the loop body observes cancellation:
// a call to a method named canceled or Err on a context, a read of a
// ctxErr field, or a receive from ctx.Done().
func pollsCancellation(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := lintutil.Callee(info, n); fn != nil {
				switch fn.Name() {
				case "canceled", "Done":
					found = true
				case "Err":
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && lintutil.IsContextType(sig.Recv().Type()) {
						found = true
					}
				}
			}
		case *ast.SelectorExpr:
			if n.Sel.Name == "ctxErr" {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasCtxParam reports whether fd declares a context.Context or
// *net/http.Request parameter.
func hasCtxParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if lintutil.IsContextType(t) || lintutil.IsHTTPRequest(t) {
			return true
		}
	}
	return false
}

// ctxSibling returns fn's Ctx variant — a function or method named
// fn.Name()+"Ctx" in the same scope whose first parameter is a
// context.Context — or nil.
func ctxSibling(fn *types.Func) *types.Func {
	if strings.HasSuffix(fn.Name(), "Ctx") {
		return nil
	}
	var obj types.Object
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		named, isNamed := t.(*types.Named)
		if !isNamed {
			return nil
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == fn.Name()+"Ctx" {
				obj = m
				break
			}
		}
	} else if fn.Pkg() != nil {
		obj = fn.Pkg().Scope().Lookup(fn.Name() + "Ctx")
	}
	sib, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sibSig, ok := sib.Type().(*types.Signature)
	if !ok || sibSig.Params().Len() == 0 || !lintutil.IsContextType(sibSig.Params().At(0).Type()) {
		return nil
	}
	return sib
}

// usesObject reports whether obj is referenced anywhere under n.
func usesObject(info *types.Info, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

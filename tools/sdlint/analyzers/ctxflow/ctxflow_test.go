package ctxflow_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), ctxflow.Analyzer, "ctxpkg", "internal/brs")
}

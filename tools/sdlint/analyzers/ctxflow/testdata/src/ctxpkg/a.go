package ctxpkg

import "context"

type Engine struct{}

func (e *Engine) Expand(n int) error                         { return nil }
func (e *Engine) ExpandCtx(ctx context.Context, n int) error { _ = ctx; return nil }

func search(v int) error                         { return nil }
func searchCtx(ctx context.Context, v int) error { _ = ctx; return nil }

func drive(ctx context.Context, e *Engine) error {
	if err := searchCtx(ctx, 1); err != nil {
		return err
	}
	if err := search(2); err != nil { // want "call to search with a context in scope: use searchCtx"
		return err
	}
	return e.Expand(1) // want "call to Expand with a context in scope: use ExpandCtx"
}

func dropped(ctx context.Context, e *Engine) error { // want "context parameter ctx is never used"
	return e.ExpandCtx(context.Background(), 1)
}

func anonymous(_ context.Context, e *Engine) error { // blank ctx: deliberate, not flagged
	return e.ExpandCtx(context.Background(), 1)
}

// legacy satisfies an interface that cannot thread a context.
//
//sdlint:allow ctxflow interface-pinned signature; the caller's watchdog cancels via Engine state
func legacy(ctx context.Context, e *Engine) error {
	return e.Expand(1)
}

package ctxpkg

import "context"

type Engine struct{}

func (e *Engine) Expand(n int) error                         { return nil }
func (e *Engine) ExpandCtx(ctx context.Context, n int) error { _ = ctx; return nil }

func search(v int) error                         { return nil }
func searchCtx(ctx context.Context, v int) error { _ = ctx; return nil }

func drive(ctx context.Context, e *Engine) error {
	if err := searchCtx(ctx, 1); err != nil {
		return err
	}
	if err := search(2); err != nil { // want "call to search with a context in scope: use searchCtx"
		return err
	}
	return e.Expand(1) // want "call to Expand with a context in scope: use ExpandCtx"
}

func dropped(ctx context.Context, e *Engine) error { // want "context parameter ctx is never used"
	return e.ExpandCtx(context.Background(), 1)
}

func anonymous(_ context.Context, e *Engine) error { // blank ctx: deliberate, not flagged
	return e.ExpandCtx(context.Background(), 1)
}

// legacy satisfies an interface that cannot thread a context.
//
//sdlint:allow ctxflow interface-pinned signature; the caller's watchdog cancels via Engine state
func legacy(ctx context.Context, e *Engine) error {
	return e.Expand(1)
}

// spawnCaptured has no ctx parameter, but the goroutine closure captures
// a ctx-typed local: rule 4 treats the closure body like a function with
// ctx in scope.
func spawnCaptured(e *Engine) {
	ctx := context.Background()
	go func() {
		_ = searchCtx(ctx, 1)
		_ = search(2)   // want "call to search inside a goroutine that captures a context: use searchCtx"
		_ = e.Expand(1) // want "call to Expand inside a goroutine that captures a context: use ExpandCtx"
	}()
}

// spawnPlain's closure captures no context: there is nothing to thread,
// so its non-Ctx calls are legitimate.
func spawnPlain(e *Engine) {
	go func() {
		_ = search(2)
		_ = e.Expand(1)
	}()
}

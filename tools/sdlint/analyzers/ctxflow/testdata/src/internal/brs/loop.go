package brs

type runner struct {
	ctxErr error
}

func (rn *runner) canceled() bool       { return rn.ctxErr != nil }
func (rn *runner) countCandidates() int { return 0 }
func (rn *runner) applySelection()      {}
func (rn *runner) housekeeping()        {}

func (rn *runner) searchPolledMethod() {
	for i := 0; i < 10; i++ {
		rn.countCandidates()
		if rn.canceled() {
			return
		}
		rn.applySelection()
	}
}

func (rn *runner) searchPolledField() int {
	total := 0
	for i := 0; i < 10; i++ {
		total += rn.countCandidates()
		if rn.ctxErr != nil {
			break
		}
	}
	return total
}

func (rn *runner) searchUnpolled() {
	for i := 0; i < 10; i++ { // want "loop drives counting passes but never polls cancellation"
		rn.countCandidates()
		rn.applySelection()
	}
}

func (rn *runner) idleLoop() {
	for i := 0; i < 10; i++ { // no counting passes: polling not required
		rn.housekeeping()
	}
}

// drain runs the tail passes after the search has already ended; there is
// no caller left to cancel for.
//
//sdlint:allow ctxflow teardown loop after the search result is sealed; nothing upstream is waiting
func (rn *runner) drain() {
	for i := 0; i < 2; i++ {
		rn.applySelection()
	}
}

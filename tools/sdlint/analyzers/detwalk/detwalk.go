// Package detwalk checks that result-producing paths are deterministic.
//
// The smart drill-down engine's regression suite (and the paper's
// experiments) depend on byte-identical output for identical input: the
// BRS greedy loop, rule scoring, and the API encoding must not depend on
// map iteration order, the wall clock, or math/rand. detwalk flags, in
// the packages that produce results (internal/brs, internal/rule,
// internal/score, api):
//
//   - `range` statements over map types,
//   - calls to time.Now,
//   - imports of math/rand and math/rand/v2.
//
// _test.go files are exempt. Legitimate sites — such as the anytime
// deadline check in internal/brs/incremental.go, which reads the clock
// but only decides *when* to stop, never *what* is returned — carry
//
//	//sdlint:allow nondeterminism <reason>
package detwalk

import (
	"go/ast"
	"go/types"
	"strconv"

	"smartdrill/tools/sdlint/analysis"
	"smartdrill/tools/sdlint/internal/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "detwalk",
	Doc: "flag nondeterminism (map range, time.Now, math/rand) in result-producing packages\n\n" +
		"Identical input must yield identical output in internal/brs, internal/rule,\n" +
		"internal/score and api. Suppress legitimate sites (e.g. anytime deadlines that\n" +
		"only decide when to stop) with //sdlint:allow nondeterminism <reason>.",
	Run:       run,
	AllowKeys: []string{"nondeterminism"},
}

// scope lists the result-producing packages, matched on path-element
// boundaries so analysistest trees qualify too.
var scope = []string{"internal/brs", "internal/rule", "internal/score", "api"}

func run(pass *analysis.Pass) (interface{}, error) {
	if !lintutil.PathIn(pass.Pkg.Path(), scope...) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset, file) {
			continue
		}
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "import of %s in a result-producing package: results must be deterministic", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "range over a map has nondeterministic order: iterate a sorted key slice instead")
					}
				}
			case *ast.CallExpr:
				if fn := lintutil.Callee(pass.TypesInfo, n); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
					pass.Reportf(n.Pos(), "time.Now in a result-producing package: results must not depend on the wall clock")
				}
			}
			return true
		})
	}
	return nil, nil
}

package detwalk_test

import (
	"testing"

	"smartdrill/tools/sdlint/analysis/analysistest"
	"smartdrill/tools/sdlint/analyzers/detwalk"
)

func TestDetwalk(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), detwalk.Analyzer, "internal/brs", "outofscope")
}

package brs

import "time"

func sumCounts(m map[string]int) int {
	total := 0
	for _, v := range m { // want "range over a map has nondeterministic order"
		total += v
	}
	return total
}

func sumSorted(keys []string, m map[string]int) int {
	total := 0
	for _, k := range keys { // slice range: deterministic, not flagged
		total += m[k]
	}
	return total
}

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now in a result-producing package"
}

func deadlineOK(deadline time.Time) bool {
	return !time.Now().Before(deadline) //sdlint:allow nondeterminism anytime deadline: decides when to stop, never what is returned
}

func missingReason(deadline time.Time) bool {
	// The bare directive does not suppress: the original diagnostic
	// survives AND the directive is flagged at its own position.
	return time.Now().After(deadline) /* want "missing reason" "time.Now in a result-producing package" */ //sdlint:allow nondeterminism
}

package brs

import "math/rand" // want "import of math/rand in a result-producing package"

func roll() int { return rand.Intn(6) }
